/** Tests for the stream lookahead buffer. */

#include <gtest/gtest.h>

#include "ndp/slb.h"

namespace ndpext {
namespace {

TEST(Slb, FirstLookupMisses)
{
    Slb slb(4, 2, 100);
    EXPECT_EQ(slb.lookup(7), 100u);
    EXPECT_EQ(slb.misses(), 1u);
    EXPECT_EQ(slb.lookup(7), 2u);
    EXPECT_EQ(slb.hits(), 1u);
}

TEST(Slb, CapacityEviction)
{
    Slb slb(2, 2, 100);
    slb.lookup(1);
    slb.lookup(2);
    slb.lookup(3); // evicts 1 (LRU)
    EXPECT_EQ(slb.lookup(2), 2u);   // still resident
    EXPECT_EQ(slb.lookup(1), 100u); // was evicted
}

TEST(Slb, LruOrderRespectsTouches)
{
    Slb slb(2, 2, 100);
    slb.lookup(1);
    slb.lookup(2);
    slb.lookup(1); // 2 becomes LRU
    slb.lookup(3); // evicts 2
    EXPECT_EQ(slb.lookup(1), 2u);
    EXPECT_EQ(slb.lookup(2), 100u);
}

TEST(Slb, InvalidateSingle)
{
    Slb slb(4, 2, 100);
    slb.lookup(5);
    slb.invalidate(5);
    EXPECT_EQ(slb.lookup(5), 100u);
}

TEST(Slb, InvalidateAll)
{
    Slb slb(4, 2, 100);
    slb.lookup(1);
    slb.lookup(2);
    slb.invalidateAll();
    EXPECT_EQ(slb.lookup(1), 100u);
    EXPECT_EQ(slb.lookup(2), 100u);
}

TEST(Slb, ReportCounts)
{
    Slb slb(4, 2, 100);
    slb.lookup(1);
    slb.lookup(1);
    StatGroup stats;
    slb.report(stats, "slb");
    EXPECT_DOUBLE_EQ(stats.get("slb.hits"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("slb.misses"), 1.0);
}

/** Property: a working set within capacity always hits after warmup. */
class SlbCapacityTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SlbCapacityTest, ResidentSetHits)
{
    const std::uint32_t entries = GetParam();
    Slb slb(entries, 2, 100);
    for (StreamId s = 0; s < entries; ++s) {
        slb.lookup(s);
    }
    for (StreamId s = 0; s < entries; ++s) {
        EXPECT_EQ(slb.lookup(s), 2u) << "stream " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlbCapacityTest,
                         ::testing::Values(1u, 2u, 8u, 32u));

} // namespace
} // namespace ndpext
