/**
 * Crash-recovery chaos test: repeatedly SIGKILL a checkpointing run at
 * randomized points, resuming each attempt from the newest valid image
 * (the supervisor's strategy), and assert that the final resumed run is
 * bit-identical to an uninterrupted golden run. This exercises the full
 * kill-at-any-instant story end to end: atomic image writes, newest-
 * valid discovery, and epoch-barrier restore.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/checkpoint.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 20'000;
    cfg.numThreads = 2;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

/**
 * One attempt: fork a child that resumes from the newest valid image
 * (if any), runs with per-epoch checkpointing, and exits 0 on
 * completion. The parent kills it after `kill_after` unless it finishes
 * first. Returns true when the child completed the run.
 */
bool
runAttempt(const Workload& w, const std::string& prefix,
           std::chrono::milliseconds kill_after)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        NdpSystem sys(tinyConfig(), PolicyKind::NdpExt);
        sys.setCheckpointing(prefix, 1);
        std::string image;
        std::string error;
        if (ckpt::findLatestValidCheckpoint(prefix, &image, nullptr,
                                            &error)) {
            if (!sys.setResume(image, w, &error)) {
                ::_exit(3);
            }
        }
        sys.run(w);
        ::_exit(0);
    }
    if (pid < 0) {
        ADD_FAILURE() << "fork failed";
        return false;
    }

    const auto deadline = std::chrono::steady_clock::now() + kill_after;
    int status = 0;
    for (;;) {
        const pid_t done = ::waitpid(pid, &status, WNOHANG);
        if (done == pid) {
            EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
                << "child failed with status " << status;
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            ::kill(pid, SIGKILL);
            while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
            }
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

TEST(CrashRecovery, KillAnywhereConvergesToGolden)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());

    NdpSystem goldenSys(tinyConfig(), PolicyKind::NdpExt);
    const RunResult golden = goldenSys.run(*w);

    // Fresh directory per invocation: a stale frontier from a previous
    // test run would let the first attempt resume straight to the end.
    std::string dir = ::testing::TempDir() + "chaosXXXXXX";
    ASSERT_NE(::mkdtemp(dir.data()), nullptr);
    const std::string prefix = dir + "/chaos";
    std::mt19937 rng(20260808);
    std::uniform_int_distribution<int> slice(5, 40);

    // Chaos phase: kill the run at short randomized slices. Each
    // attempt resumes from the checkpoint frontier of the previous
    // ones, so progress is monotone even under constant kills. An
    // attempt may finish inside its slice once the frontier is near the
    // end; that just ends the phase early.
    bool completed = false;
    int kills = 0;
    for (int attempt = 0; attempt < 25 && !completed; ++attempt) {
        completed = runAttempt(
            *w, prefix, std::chrono::milliseconds(slice(rng)));
        if (!completed) {
            ++kills;
        }
    }
    EXPECT_GT(kills, 0) << "no attempt was actually killed; the chaos "
                           "slice is too generous to test recovery";

    // Completion phase: one undisturbed attempt resumes from whatever
    // frontier the kills left behind and must finish.
    if (!completed) {
        completed = runAttempt(*w, prefix, std::chrono::hours(1));
    }
    ASSERT_TRUE(completed) << "run failed to complete from the frontier";

    // A checkpoint frontier must exist, and resuming from it in-process
    // must reproduce the uninterrupted result bit for bit.
    std::string image;
    std::string error;
    ckpt::CheckpointHeader header;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &image, &header, &error))
        << error;
    EXPECT_GE(header.epoch, 1u);

    NdpSystem resumed(tinyConfig(), PolicyKind::NdpExt);
    ASSERT_TRUE(resumed.setResume(image, *w, &error)) << error;
    const RunResult got = resumed.run(*w);

    EXPECT_EQ(golden.cycles, got.cycles);
    EXPECT_EQ(golden.accesses, got.accesses);
    EXPECT_EQ(golden.l1Hits, got.l1Hits);
    EXPECT_EQ(golden.bd.requests, got.bd.requests);
    EXPECT_EQ(golden.bd.dramCache, got.bd.dramCache);
    EXPECT_EQ(golden.bd.extMem, got.bd.extMem);
    EXPECT_DOUBLE_EQ(golden.missRate, got.missRate);
    EXPECT_DOUBLE_EQ(golden.energy.totalNj(), got.energy.totalNj());
    EXPECT_EQ(golden.writeExceptions, got.writeExceptions);
    EXPECT_EQ(golden.reconfigurations, got.reconfigurations);

    const auto isWallClock = [](const std::string& name) {
        return name.size() >= 6
            && name.compare(name.size() - 6, 6, "Micros") == 0;
    };
    for (const auto& [name, value] : golden.stats.raw()) {
        EXPECT_TRUE(got.stats.has(name)) << "missing stat " << name;
        if (!isWallClock(name)) {
            EXPECT_DOUBLE_EQ(value, got.stats.get(name))
                << "stat " << name;
        }
    }
    EXPECT_EQ(golden.stats.raw().size(), got.stats.raw().size());
}

} // namespace
} // namespace ndpext
