/**
 * @file
 * Calendar-queue EventQueue: firing order must be exactly the old
 * binary heap's (when, seq) order. A heap-based reference oracle pins
 * that equivalence under randomized schedules, and directed tests cover
 * the wheel-specific machinery (bucket wrap, far-future overflow
 * migration, same-tick FIFO, boundary semantics of runUntil).
 */

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ndpext {
namespace {

TEST(EventCallbackTest, InlineAndHeapCallablesBothInvoke)
{
    int hits = 0;
    EventCallback small([&hits](Cycles now) {
        hits += static_cast<int>(now);
    });
    small(2);
    EXPECT_EQ(hits, 2);

    // A capture larger than the inline buffer exercises the heap path.
    std::array<std::uint64_t, 16> big{};
    big[7] = 5;
    EventCallback large([&hits, big](Cycles now) {
        hits += static_cast<int>(big[7] + now);
    });
    large(1);
    EXPECT_EQ(hits, 8);

    // Move transfers the callable; the source becomes empty.
    EventCallback moved = std::move(large);
    EXPECT_TRUE(static_cast<bool>(moved));
    EXPECT_FALSE(static_cast<bool>(large)); // NOLINT: post-move probe
    moved(1);
    EXPECT_EQ(hits, 14);
}

TEST(EventQueueCalendarTest, BucketWrapFiresInTimeOrder)
{
    // Ticks chosen to collide modulo the wheel width (256): the wheel
    // window must keep them apart via the overflow list, not mix them
    // into one bucket.
    EventQueue q;
    std::vector<Cycles> fired;
    for (const Cycles t : {Cycles(5 + 3 * EventQueue::kBuckets),
                           Cycles(5), Cycles(5 + EventQueue::kBuckets)}) {
        q.schedule(t, [&fired](Cycles now) { fired.push_back(now); });
    }
    q.runAll();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 5u);
    EXPECT_EQ(fired[1], 5u + EventQueue::kBuckets);
    EXPECT_EQ(fired[2], 5u + 3 * EventQueue::kBuckets);
    EXPECT_EQ(q.now(), 5u + 3 * EventQueue::kBuckets);
}

TEST(EventQueueCalendarTest, OverflowMigrationPreservesSameTickFifo)
{
    // Event A lands at tick 1000 while 1000 is far outside the window
    // (scheduled at now=0). After now advances, B is scheduled at the
    // same tick from within the window. A was scheduled first and must
    // fire first.
    EventQueue q;
    std::vector<std::string> order;
    q.schedule(1000, [&order](Cycles) { order.push_back("A"); });
    q.schedule(900, [&order, &q](Cycles) {
        order.push_back("early");
        q.schedule(1000, [&order](Cycles) { order.push_back("B"); });
    });
    q.runAll();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "early");
    EXPECT_EQ(order[1], "A");
    EXPECT_EQ(order[2], "B");
}

TEST(EventQueueCalendarTest, RunUntilBetweenEventsMigratesOverflow)
{
    // Advancing now via runUntil (no events fired) slides the window;
    // a far-future event must still fire exactly once, in order.
    EventQueue q;
    std::vector<Cycles> fired;
    q.schedule(2000, [&fired](Cycles now) { fired.push_back(now); });
    q.runUntil(1900); // 2000 now within [1900, 1900 + 256)
    EXPECT_EQ(q.now(), 1900u);
    EXPECT_EQ(q.nextTick(), 2000u);
    q.schedule(2000, [&fired](Cycles now) {
        fired.push_back(now + 1); // marker: second same-tick event
    });
    q.runAll();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 2000u);
    EXPECT_EQ(fired[1], 2001u);
}

TEST(EventQueueCalendarTest, EmptyRunUntilAdvancesNow)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
    // Regression: scheduling at exactly now after an empty advance is
    // legal (not "in the past") and fires on the next run.
    bool fired = false;
    q.schedule(500, [&fired](Cycles) { fired = true; });
    q.runUntil(500);
    EXPECT_TRUE(fired);
}

TEST(EventQueueCalendarTest, CallbackAtBoundarySchedulingAtBoundaryFires)
{
    // Regression for the runUntil boundary: a callback firing at
    // exactly `until` may scheduleIn(0) (landing at `until`); that is
    // not "in the past" and must fire within the same runUntil call.
    EventQueue q;
    std::vector<std::string> order;
    q.schedule(10, [&](Cycles) {
        order.push_back("outer");
        q.scheduleIn(0, [&order](Cycles) { order.push_back("inner"); });
    });
    q.runUntil(10);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], "inner");
    EXPECT_EQ(q.now(), 10u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueCalendarTest, TelemetryCountersTrack)
{
    EventQueue q;
    EXPECT_EQ(q.eventsFired(), 0u);
    for (int i = 0; i < 10; ++i) {
        q.schedule(static_cast<Cycles>(i), [](Cycles) {});
    }
    EXPECT_EQ(q.highWater(), 10u);
    q.runAll();
    EXPECT_EQ(q.eventsFired(), 10u);
    EXPECT_EQ(q.highWater(), 10u);
    // Recycled nodes: scheduling again must not grow the slab count.
    const std::uint64_t allocated = q.nodesAllocated();
    q.schedule(q.now() + 1, [](Cycles) {});
    q.runAll();
    EXPECT_EQ(q.nodesAllocated(), allocated);
    EXPECT_EQ(q.eventsFired(), 11u);
}

/**
 * Reference oracle: the old std::priority_queue implementation's
 * ordering, min (when, seq). Events are identified by their schedule
 * index; the oracle and the calendar queue must fire identical
 * sequences.
 */
struct HeapOracle
{
    struct Ev
    {
        Cycles when;
        std::uint64_t seq;
        int id;
    };
    struct Later
    {
        bool
        operator()(const Ev& a, const Ev& b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };
    std::priority_queue<Ev, std::vector<Ev>, Later> heap;
    std::uint64_t nextSeq = 0;

    void
    schedule(Cycles when, int id)
    {
        heap.push(Ev{when, nextSeq++, id});
    }

    std::vector<int>
    drain()
    {
        std::vector<int> order;
        while (!heap.empty()) {
            order.push_back(heap.top().id);
            heap.pop();
        }
        return order;
    }
};

TEST(EventQueueCalendarTest, RandomizedDifferentialVsHeapOracle)
{
    // Random schedules spanning in-window deltas, wheel wraps and deep
    // overflow, interleaved with partial runUntil drains; firing order
    // must match the heap oracle exactly.
    Rng rng(1234);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue q;
        HeapOracle oracle;
        std::vector<int> fired;
        int next_id = 0;

        for (int round = 0; round < 8; ++round) {
            const int n = 1 + static_cast<int>(rng.nextBounded(40));
            for (int i = 0; i < n; ++i) {
                // Mix of near (same tick .. in-window), wrap (~kBuckets)
                // and far-future (overflow) deltas.
                const std::uint64_t kind = rng.nextBounded(3);
                Cycles delta = 0;
                if (kind == 0) {
                    delta = rng.nextBounded(8); // dense same-tick ties
                } else if (kind == 1) {
                    delta = rng.nextBounded(2 * EventQueue::kBuckets);
                } else {
                    delta = rng.nextBounded(20 * EventQueue::kBuckets);
                }
                const Cycles when = q.now() + delta;
                const int id = next_id++;
                oracle.schedule(when, id);
                q.schedule(when, [&fired, id](Cycles) {
                    fired.push_back(id);
                });
            }
            // Partial drain to a random horizon.
            const Cycles until =
                q.now() + rng.nextBounded(4 * EventQueue::kBuckets);
            q.runUntil(until);
        }
        q.runAll();

        // The oracle drains fully ordered; both orderings are over the
        // same (when, seq) pairs because schedules were issued in
        // lockstep (partial drains never reorder a min-heap).
        const std::vector<int> expected = oracle.drain();
        ASSERT_EQ(fired.size(), expected.size()) << "trial " << trial;
        EXPECT_EQ(fired, expected) << "trial " << trial;
    }
}

TEST(EventQueueCalendarTest, ReentrantSchedulingMatchesOracleOrder)
{
    // Callbacks scheduling new events mid-run get fresh (larger) seqs:
    // a same-tick event scheduled from a callback fires after all
    // previously queued same-tick events, exactly like the old heap.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&](Cycles) {
        order.push_back(0);
        q.schedule(10, [&order](Cycles) { order.push_back(3); });
    });
    q.schedule(10, [&order](Cycles) { order.push_back(1); });
    q.schedule(10, [&order](Cycles) { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace ndpext
