/** Integration tests: full systems running real workloads (small scale). */

#include <gtest/gtest.h>

#include "system/host_system.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 200'000;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

TEST(SystemConfig, PresetsAreConsistent)
{
    const auto scaled = SystemConfig::scaledDefault();
    EXPECT_EQ(scaled.numUnits(), 64u);
    const auto paper = SystemConfig::paperScale();
    EXPECT_EQ(paper.numUnits(), 128u);
    EXPECT_EQ(paper.unitCacheBytes, 256_MiB);
    EXPECT_EQ(paper.cache.affineCapBytesPerUnit, 16_MiB);
    EXPECT_EQ(paper.runtime.epochCycles, 50'000'000u);
}

TEST(SystemConfig, PolicyNamesRoundTrip)
{
    for (const auto kind :
         {PolicyKind::NdpExt, PolicyKind::NdpExtStatic, PolicyKind::Jigsaw,
          PolicyKind::Whirlpool, PolicyKind::Nexus,
          PolicyKind::StaticInterleave}) {
        EXPECT_EQ(policyFromName(policyName(kind)), kind);
    }
}

TEST(NdpSystem, RunsPageRankToCompletion)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    NdpSystem sys(tinyConfig(), PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_EQ(res.accesses, 8u * 4000u);
    EXPECT_GT(res.bd.requests, 0u);
    EXPECT_GT(res.energy.totalNj(), 0.0);
    EXPECT_GE(res.missRate, 0.0);
    EXPECT_LE(res.missRate, 1.0);
}

TEST(NdpSystem, DeterministicAcrossRuns)
{
    auto w = makeWorkload("bfs");
    w->prepare(tinyParams());
    NdpSystem s1(tinyConfig(), PolicyKind::NdpExt);
    NdpSystem s2(tinyConfig(), PolicyKind::NdpExt);
    const auto r1 = s1.run(*w);
    const auto r2 = s2.run(*w);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.bd.requests, r2.bd.requests);
    EXPECT_DOUBLE_EQ(r1.missRate, r2.missRate);
}

class PolicyRunTest : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyRunTest, CompletesAndAccountsLatency)
{
    auto w = makeWorkload("recsys");
    w->prepare(tinyParams());
    NdpSystem sys(tinyConfig(), GetParam());
    const auto res = sys.run(*w);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_EQ(res.accesses, 8u * 4000u);
    // Latency breakdown buckets only accumulate for L1 misses.
    EXPECT_GT(res.bd.requests, 0u);
    EXPECT_GT(res.bd.total(), 0u);
    if (isCachelinePolicy(GetParam())) {
        EXPECT_LE(res.metadataHitRate, 1.0);
    } else {
        // Stream policies pay no per-line metadata DRAM accesses.
        EXPECT_DOUBLE_EQ(res.metadataHitRate, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyRunTest,
    ::testing::Values(PolicyKind::NdpExt, PolicyKind::NdpExtStatic,
                      PolicyKind::Jigsaw, PolicyKind::Whirlpool,
                      PolicyKind::Nexus, PolicyKind::StaticInterleave),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
        std::string n = policyName(info.param);
        for (auto& c : n) {
            if (c == '-') {
                c = '_';
            }
        }
        return n;
    });

TEST(NdpSystem, NdpExtBeatsStaticInterleaveOnPageRank)
{
    auto w = makeWorkload("pr");
    WorkloadParams p = tinyParams();
    p.accessesPerCore = 8000;
    w->prepare(p);
    NdpSystem a(tinyConfig(), PolicyKind::NdpExt);
    NdpSystem b(tinyConfig(), PolicyKind::StaticInterleave);
    const auto ra = a.run(*w);
    const auto rb = b.run(*w);
    EXPECT_LT(ra.cycles, rb.cycles)
        << "NDPExt should outperform static cacheline interleaving";
}

TEST(NdpSystem, HmcVariantRuns)
{
    auto w = makeWorkload("hotspot");
    w->prepare(tinyParams());
    SystemConfig cfg = tinyConfig();
    cfg.memType = NdpMemType::Hmc2;
    cfg.finalize();
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    EXPECT_GT(res.cycles, 0u);
}

TEST(HostSystem, RunsAndIsSlowerThanNdp)
{
    auto w = makeWorkload("pr");
    WorkloadParams p = tinyParams();
    p.numCores = 64; // host core count
    w->prepare(p);
    HostParams hp;
    HostSystem host(hp);
    const auto rh = host.run(*w);
    EXPECT_GT(rh.cycles, 0u);
    EXPECT_EQ(rh.accesses, 64u * 4000u);
    EXPECT_EQ(rh.policy, "host");
}

TEST(NdpSystem, WriteHeavyWorkloadTriggersExceptions)
{
    auto w = makeWorkload("backprop");
    w->prepare(tinyParams());
    NdpSystem sys(tinyConfig(), PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    // backprop writes the (initially read-only) weight matrix in phase 2.
    EXPECT_GE(res.writeExceptions, 1u);
}

TEST(NdpSystem, AccountingInvariantsHold)
{
    auto w = makeWorkload("recsys");
    w->prepare(tinyParams());
    NdpSystem sys(tinyConfig(), PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    // Request accounting: every L1 miss is a memory-system request.
    EXPECT_EQ(res.bd.requests, res.accesses - res.l1Hits);
    // Hit/miss/uncached/bypass partition the requests.
    const double parts = res.stats.get("cache.hits")
        + res.stats.get("cache.misses") + res.stats.get("cache.uncached")
        + res.stats.get("cache.bypasses");
    EXPECT_DOUBLE_EQ(parts, static_cast<double>(res.bd.requests));
    // Energy components are all non-negative and total is positive.
    EXPECT_GE(res.energy.staticNj, 0.0);
    EXPECT_GE(res.energy.ndpDramNj, 0.0);
    EXPECT_GE(res.energy.extDramNj, 0.0);
    EXPECT_GE(res.energy.cxlLinkNj, 0.0);
    EXPECT_GE(res.energy.icnNj, 0.0);
    EXPECT_GT(res.energy.totalNj(), 0.0);
    // Completion time covers the per-core maximum.
    for (CoreId c = 0; c < 8; ++c) {
        EXPECT_LE(res.stats.get("core" + std::to_string(c) + ".cycles"),
                  static_cast<double>(res.cycles));
    }
}

TEST(NdpSystem, MshrAblationSlowsThingsDown)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    SystemConfig cfg = tinyConfig();
    cfg.core.mshrs = 1; // strict stall-on-miss
    NdpSystem strict(cfg, PolicyKind::NdpExt);
    NdpSystem mlp(tinyConfig(), PolicyKind::NdpExt);
    const auto r1 = strict.run(*w);
    const auto r8 = mlp.run(*w);
    EXPECT_GT(r1.cycles, r8.cycles)
        << "memory-level parallelism should hide latency";
}

TEST(NdpSystem, ReconfigurationHappens)
{
    auto w = makeWorkload("pr");
    WorkloadParams p = tinyParams();
    p.accessesPerCore = 8000;
    w->prepare(p);
    NdpSystem sys(tinyConfig(), PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    EXPECT_GE(res.reconfigurations, 1u);
}

} // namespace
} // namespace ndpext
