/** Tests for Algorithm 1 (sizing + placement + replication co-opt). */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "runtime/config_algorithm.h"

namespace ndpext {
namespace {

constexpr std::uint32_t kUnits = 8;
constexpr std::uint32_t kRowsPerUnit = 32;
constexpr std::uint32_t kRowBytes = 2048;

struct Fixture
{
    MeshTopology topo{2, 1, 2, 2};
    NocModel noc{topo, NocParams{}};

    ConfigParams
    params() const
    {
        ConfigParams p;
        p.numUnits = kUnits;
        p.rowsPerUnit = kRowsPerUnit;
        p.rowBytes = kRowBytes;
        p.dramLatency = 40;
        return p;
    }
};

/** A miss curve where capacity up to `useful` steadily removes misses. */
MissCurve
linearCurve(std::uint64_t useful, double misses)
{
    std::vector<std::uint64_t> caps;
    std::vector<double> m;
    for (std::uint64_t c = 2048; c <= useful * 2; c *= 2) {
        caps.push_back(c);
        const double frac = std::min(
            1.0, static_cast<double>(c) / static_cast<double>(useful));
        m.push_back(misses * (1.0 - frac));
    }
    MissCurve curve(caps, std::move(m));
    curve.setZeroMisses(misses);
    return curve;
}

StreamDemand
demand(StreamId sid, std::vector<UnitId> units, std::uint64_t accesses,
       std::uint64_t footprint, bool read_only)
{
    StreamDemand d;
    d.sid = sid;
    d.accUnits = std::move(units);
    d.accCounts.assign(d.accUnits.size(),
                       accesses / std::max<std::size_t>(
                           1, d.accUnits.size()));
    d.footprintBytes = footprint;
    d.readOnly = read_only;
    d.granuleBytes = 8;
    d.curve = linearCurve(footprint, static_cast<double>(accesses));
    return d;
}

std::uint64_t
totalRowsOnUnit(const std::vector<std::pair<StreamId, StreamAlloc>>& out,
                UnitId u)
{
    std::uint64_t rows = 0;
    for (const auto& [sid, alloc] : out) {
        (void)sid;
        rows += alloc.shareRows[u];
    }
    return rows;
}

TEST(ConfigAlgorithm, RespectsPerUnitCapacity)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    for (StreamId s = 0; s < 6; ++s) {
        std::vector<UnitId> units(kUnits);
        std::iota(units.begin(), units.end(), 0);
        demands.push_back(demand(s, units, 10000, 256_KiB, true));
    }
    const auto out = algo.run(demands);
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(totalRowsOnUnit(out, u), kRowsPerUnit);
    }
}

TEST(ConfigAlgorithm, ReadWriteStreamsKeepOneGroup)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    demands.push_back(demand(0, {0, 1, 4, 5}, 10000, 64_KiB, false));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second.numGroups, 1u);
}

TEST(ConfigAlgorithm, ReadOnlyStreamsReplicateWhenSpaceIsAmple)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    // Small hot read-only stream accessed from both stacks.
    demands.push_back(demand(0, {0, 7}, 10000, 16_KiB, true));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    // With abundant space, both accessing units keep their own replica.
    EXPECT_EQ(out[0].second.numGroups, 2u);
    EXPECT_GT(out[0].second.shareRows[0], 0u);
    EXPECT_GT(out[0].second.shareRows[7], 0u);
}

TEST(ConfigAlgorithm, AllocationLandsOnAccessingUnits)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    demands.push_back(demand(0, {2, 3}, 10000, 16_KiB, true));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    const auto& alloc = out[0].second;
    EXPECT_GT(alloc.shareRows[2], 0u);
    EXPECT_GT(alloc.shareRows[3], 0u);
    EXPECT_EQ(alloc.shareRows[6], 0u); // non-accessing, no pressure
}

TEST(ConfigAlgorithm, HotterStreamsGetMoreSpace)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    demands.push_back(demand(0, {0}, 100000, 512_KiB, false));
    demands.push_back(demand(1, {0}, 100, 512_KiB, false));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 2u);
    std::uint64_t hot = 0;
    std::uint64_t cold = 0;
    for (const auto& [sid, alloc] : out) {
        const std::uint64_t rows = alloc.totalRows();
        if (sid == 0) {
            hot = rows;
        } else {
            cold = rows;
        }
    }
    EXPECT_GT(hot, cold);
}

TEST(ConfigAlgorithm, CapacityPressureConsolidatesReplication)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    // A read-only stream accessed by everyone whose footprint is far
    // beyond what full replication could hold: the degree must end well
    // below one group per accessing unit, within capacity.
    std::vector<UnitId> all(kUnits);
    std::iota(all.begin(), all.end(), 0);
    const std::uint64_t total_bytes =
        std::uint64_t{kUnits} * kRowsPerUnit * kRowBytes;
    demands.push_back(demand(0, all, 100000, total_bytes * 2, true));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    const auto& alloc = out[0].second;
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(alloc.shareRows[u], kRowsPerUnit);
    }
    EXPECT_LT(alloc.numGroups, kUnits);
}

TEST(ConfigAlgorithm, SingleAccessorSpillsToNearbyUnits)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    // Unit 0 is the only accessor and wants far more than its local
    // rows: allocation must extend to neighboring units.
    const std::uint64_t unit_bytes =
        std::uint64_t{kRowsPerUnit} * kRowBytes;
    demands.push_back(demand(0, {0}, 100000, unit_bytes * 4, false));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    const auto& alloc = out[0].second;
    EXPECT_EQ(alloc.shareRows[0], kRowsPerUnit); // local space maxed
    std::uint64_t remote = 0;
    for (UnitId u = 1; u < kUnits; ++u) {
        remote += alloc.shareRows[u];
    }
    EXPECT_GT(remote, 0u) << "allocation should spill off-unit";
    EXPECT_GT(algo.lastExtends(), 0u);
}

TEST(ConfigAlgorithm, HotSmallStreamReplicatesThenYieldsUnderPressure)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    std::vector<UnitId> all(kUnits);
    std::iota(all.begin(), all.end(), 0);
    // Hot tiny read-only stream: replicates widely.
    demands.push_back(demand(0, all, 1000000, 8_KiB, true));
    // Big hot read-write stream: consumes the rest of the machine.
    const std::uint64_t total_bytes =
        std::uint64_t{kUnits} * kRowsPerUnit * kRowBytes;
    demands.push_back(demand(1, all, 900000, total_bytes, false));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 2u);
    const auto& hot = out[0].first == 0 ? out[0].second : out[1].second;
    EXPECT_GT(hot.numGroups, 1u) << "hot small stream should replicate";
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(totalRowsOnUnit(out, u), kRowsPerUnit);
    }
}

TEST(ConfigAlgorithm, AffineCapRespected)
{
    Fixture f;
    ConfigParams p = f.params();
    p.affineCapBytesPerUnit = 4 * kRowBytes; // 4 rows per unit
    ConfigAlgorithm algo(p, f.noc);
    std::vector<StreamDemand> demands;
    auto d = demand(0, {0}, 100000, 1_MiB, true);
    d.affine = true;
    demands.push_back(d);
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(out[0].second.shareRows[u], 4u) << "unit " << u;
    }
}

TEST(ConfigAlgorithm, RowBasesDoNotOverlap)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    std::vector<UnitId> all(kUnits);
    std::iota(all.begin(), all.end(), 0);
    for (StreamId s = 0; s < 4; ++s) {
        demands.push_back(demand(s, all, 10000, 128_KiB, s % 2 == 0));
    }
    const auto out = algo.run(demands);
    for (UnitId u = 0; u < kUnits; ++u) {
        // Collect [base, base+rows) intervals; they must be disjoint.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> ivs;
        for (const auto& [sid, alloc] : out) {
            (void)sid;
            if (alloc.shareRows[u] > 0) {
                ivs.emplace_back(alloc.rowBase[u],
                                 alloc.rowBase[u] + alloc.shareRows[u]);
            }
        }
        std::sort(ivs.begin(), ivs.end());
        for (std::size_t i = 1; i < ivs.size(); ++i) {
            EXPECT_LE(ivs[i - 1].second, ivs[i].first);
        }
        if (!ivs.empty()) {
            EXPECT_LE(ivs.back().second, kRowsPerUnit);
        }
    }
}

TEST(ConfigAlgorithm, EmptyDemandsYieldEmptyConfig)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    const auto out = algo.run({});
    EXPECT_TRUE(out.empty());
}

TEST(ConfigAlgorithm, GroupIdsAreDense)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    demands.push_back(demand(0, {0, 3, 5}, 10000, 16_KiB, true));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    const auto& alloc = out[0].second;
    for (UnitId u = 0; u < kUnits; ++u) {
        if (alloc.shareRows[u] > 0) {
            EXPECT_LT(alloc.groupOf[u], alloc.numGroups);
        }
    }
}

TEST(ConfigAlgorithm, GroupCapacityStaysNearFootprint)
{
    // Regression: with clustered replica groups, each iteration must
    // grow every copy by ONE segment (not one per accessor), or a
    // single-group stream ends up holding accessors x footprint bytes.
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    std::vector<UnitId> all(kUnits);
    std::iota(all.begin(), all.end(), 0);
    // Small read-only stream: capacity beyond its footprint is waste.
    const std::uint64_t fp = 32_KiB;
    demands.push_back(demand(0, all, 1000000, fp, true));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    const auto& alloc = out[0].second;
    // Every replica group's capacity is bounded by the footprint plus
    // one row of rounding slack.
    for (std::uint16_t g = 0; g < alloc.numGroups; ++g) {
        const std::uint64_t bytes =
            alloc.rowsOfGroup(g) * kRowBytes;
        EXPECT_LE(bytes, fp + kRowBytes * (kRowsPerUnit / 8 + 1))
            << "group " << g << " over-allocated";
    }
}

TEST(ConfigAlgorithm, ReplicationAblationForcesSingleGroup)
{
    Fixture f;
    ConfigParams p = f.params();
    p.allowReplication = false;
    ConfigAlgorithm algo(p, f.noc);
    std::vector<StreamDemand> demands;
    // A hot tiny read-only stream that would otherwise replicate widely.
    demands.push_back(demand(0, {0, 1, 4, 5, 6, 7}, 1000000, 8_KiB, true));
    const auto out = algo.run(demands);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second.numGroups, 1u);
}

/** Property sweep: capacity invariants hold across stream counts. */
class ConfigScaleTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ConfigScaleTest, CapacityInvariant)
{
    Fixture f;
    ConfigAlgorithm algo(f.params(), f.noc);
    std::vector<StreamDemand> demands;
    Rng rng(GetParam());
    for (StreamId s = 0; s < GetParam(); ++s) {
        std::vector<UnitId> units;
        for (UnitId u = 0; u < kUnits; ++u) {
            if (rng.nextBool(0.5)) {
                units.push_back(u);
            }
        }
        if (units.empty()) {
            units.push_back(static_cast<UnitId>(s % kUnits));
        }
        demands.push_back(demand(s, units, 1000 + 100 * s,
                                 (64u + s * 32) * 1024, s % 3 != 0));
    }
    const auto out = algo.run(demands);
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(totalRowsOnUnit(out, u), kRowsPerUnit) << "unit " << u;
    }
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, ConfigScaleTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

} // namespace
} // namespace ndpext
