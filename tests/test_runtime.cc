/** Tests for the epoch runtime and static configuration. */

#include <gtest/gtest.h>

#include "ndp/stream_cache.h"
#include "runtime/ndp_runtime.h"
#include "runtime/static_config.h"

namespace ndpext {
namespace {

struct Rig
{
    MeshTopology topo{2, 1, 2, 2};
    NocModel noc{topo, NocParams{}};
    CxlParams cxlParams;
    ExtendedMemory ext{cxlParams, DramTimingParams::ddr5Extended(), 2000};
    StreamTable table;
    StreamCacheParams params;
    std::unique_ptr<StreamCacheController> cache;

    Rig()
    {
        params.sampler.minCapacityBytes = 1_KiB;
        params.sampler.maxCapacityBytes = 256_KiB;
        params.sampler.numCapacities = 8;
        params.affineCapBytesPerUnit = 64_KiB;
        cache = std::make_unique<StreamCacheController>(
            params, table, noc, ext, DramTimingParams::hbm3Unit(),
            256_KiB, 2000);
    }

    StreamId
    addStream(StreamType type, std::uint64_t bytes, std::uint32_t elem,
              bool read_only)
    {
        auto cfg = StreamConfig::dense(
            "s" + std::to_string(table.numStreams()), type,
            0x100000 + table.numStreams() * 0x1000000, bytes, elem);
        cfg.readOnly = read_only;
        return table.configureStream(cfg);
    }

    ConfigParams
    configParams() const
    {
        ConfigParams p;
        p.numUnits = cache->numUnits();
        p.rowsPerUnit = cache->rowsPerUnit();
        p.rowBytes = cache->rowBytes();
        p.dramLatency = 40;
        return p;
    }
};

TEST(StaticConfig, CoversAllStreamsWithinCapacity)
{
    Rig rig;
    for (int i = 0; i < 4; ++i) {
        rig.addStream(i % 2 == 0 ? StreamType::Affine
                                 : StreamType::Indirect,
                      64_KiB, 8, true);
    }
    const auto out = makeStaticEqualConfig(
        rig.table, rig.cache->numUnits(), rig.cache->rowsPerUnit(),
        rig.cache->rowBytes(), rig.params.affineCapBytesPerUnit);
    EXPECT_EQ(out.size(), 4u);
    std::vector<std::uint64_t> used(rig.cache->numUnits(), 0);
    for (const auto& [sid, a] : out) {
        (void)sid;
        EXPECT_EQ(a.numGroups, 1u);
        EXPECT_GT(a.totalRows(), 0u);
        for (UnitId u = 0; u < rig.cache->numUnits(); ++u) {
            used[u] += a.shareRows[u];
        }
    }
    for (const auto rows : used) {
        EXPECT_LE(rows, rig.cache->rowsPerUnit());
    }
}

TEST(StaticConfig, AffineCapClampsAffineStreams)
{
    Rig rig;
    rig.addStream(StreamType::Affine, 8_MiB, 8, true);
    const auto out = makeStaticEqualConfig(
        rig.table, rig.cache->numUnits(), rig.cache->rowsPerUnit(),
        rig.cache->rowBytes(), 4 * rig.cache->rowBytes());
    ASSERT_EQ(out.size(), 1u);
    for (UnitId u = 0; u < rig.cache->numUnits(); ++u) {
        EXPECT_LE(out[0].second.shareRows[u], 4u);
    }
}

TEST(Runtime, StartAssignsSamplers)
{
    Rig rig;
    const auto s0 = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    const auto s1 = rig.addStream(StreamType::Affine, 64_KiB, 8, true);
    ConfigParams cp = rig.configParams();
    NdpRuntime runtime(
        RuntimeParams{}, *rig.cache,
        std::make_unique<NdpExtConfigurator>(cp, rig.noc));
    runtime.start();
    // Both streams covered somewhere.
    bool covered0 = false;
    bool covered1 = false;
    for (UnitId u = 0; u < rig.cache->numUnits(); ++u) {
        covered0 |= rig.cache->samplerBank(u).samplerFor(s0) != nullptr;
        covered1 |= rig.cache->samplerBank(u).samplerFor(s1) != nullptr;
    }
    EXPECT_TRUE(covered0);
    EXPECT_TRUE(covered1);
    EXPECT_GE(runtime.streamsCovered(), 2u);
}

TEST(Runtime, StaticConfiguratorAllocatesAtStart)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    NdpRuntime runtime(RuntimeParams{}, *rig.cache,
                       std::make_unique<StaticEqualConfigurator>(
                           *rig.cache));
    runtime.start();
    EXPECT_EQ(runtime.reconfigurations(), 1u);
    EXPECT_NE(rig.cache->remap().alloc(sid), nullptr);
    EXPECT_GT(rig.cache->remap().alloc(sid)->totalRows(), 0u);
}

TEST(Runtime, EpochReconfiguresFromProfile)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    ConfigParams cp = rig.configParams();
    NdpRuntime runtime(
        RuntimeParams{}, *rig.cache,
        std::make_unique<NdpExtConfigurator>(cp, rig.noc));
    runtime.start();
    // Drive accesses from unit 2 so the profile shows demand there.
    const StreamConfig& cfg = rig.table.stream(sid);
    Cycles t = 0;
    for (ElemId e = 0; e < 2000; ++e) {
        Access a;
        a.sid = sid;
        a.elem = e % cfg.numElems();
        a.addr = cfg.addrOf(a.elem);
        t = rig.cache->access(2, a, t).done;
    }
    runtime.onEpochEnd(t);
    // One initial (default) configuration at start plus the epoch one.
    EXPECT_EQ(runtime.reconfigurations(), 2u);
    const StreamAlloc* alloc = rig.cache->remap().alloc(sid);
    ASSERT_NE(alloc, nullptr);
    EXPECT_GT(alloc->shareRows[2], 0u) << "space should land on unit 2";
}

TEST(Runtime, PartialMethodStopsAdapting)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    RuntimeParams rp;
    rp.method = RuntimeParams::Method::Partial;
    rp.partialUntilCycles = 1000;
    ConfigParams cp = rig.configParams();
    NdpRuntime runtime(
        rp, *rig.cache,
        std::make_unique<NdpExtConfigurator>(cp, rig.noc));
    runtime.start();
    const StreamConfig& cfg = rig.table.stream(sid);
    Access a;
    a.sid = sid;
    a.elem = 1;
    a.addr = cfg.addrOf(1);
    rig.cache->access(0, a, 0);
    runtime.onEpochEnd(500); // within the partial window
    EXPECT_EQ(runtime.reconfigurations(), 2u); // initial + this epoch
    rig.cache->access(0, a, 2000);
    runtime.onEpochEnd(5000); // beyond it
    EXPECT_EQ(runtime.reconfigurations(), 2u);
}

TEST(Runtime, StableConfigsAreSkipped)
{
    // If the profile barely changes between epochs, the runtime must not
    // reapply (and thereby invalidate) a near-identical configuration.
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    ConfigParams cp = rig.configParams();
    NdpRuntime runtime(
        RuntimeParams{}, *rig.cache,
        std::make_unique<NdpExtConfigurator>(cp, rig.noc));
    runtime.start();
    const StreamConfig& cfg = rig.table.stream(sid);
    // Same access pattern in two consecutive epochs.
    Cycles t = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (ElemId e = 0; e < 2000; ++e) {
            Access a;
            a.sid = sid;
            a.elem = e % cfg.numElems();
            a.addr = cfg.addrOf(a.elem);
            t = rig.cache->access(0, a, t).done;
        }
        runtime.onEpochEnd(t);
    }
    // With an identical profile every epoch, later configurations are
    // near-identical and at least one must have been skipped.
    EXPECT_GE(runtime.skippedReconfigurations(), 1u);
    EXPECT_GE(runtime.reconfigurations(), 1u);
}

TEST(Runtime, ReportsTimings)
{
    Rig rig;
    rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    ConfigParams cp = rig.configParams();
    NdpRuntime runtime(
        RuntimeParams{}, *rig.cache,
        std::make_unique<NdpExtConfigurator>(cp, rig.noc));
    runtime.start();
    StatGroup stats;
    runtime.report(stats, "rt");
    EXPECT_TRUE(stats.has("rt.lastAssignMicros"));
    EXPECT_GE(stats.get("rt.lastAssignMicros"), 0.0);
}

} // namespace
} // namespace ndpext
