/** Tests for miss curves and the set-based samplers. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sampler/miss_curve.h"
#include "sampler/sampler.h"

namespace ndpext {
namespace {

SamplerParams
smallParams()
{
    SamplerParams p;
    p.kSets = 32;
    p.numCapacities = 16;
    p.minCapacityBytes = 1_KiB;
    p.maxCapacityBytes = 1_MiB;
    return p;
}

TEST(MissCurve, InterpolationAndClamping)
{
    MissCurve c({1024, 4096, 16384}, {100.0, 50.0, 10.0});
    EXPECT_DOUBLE_EQ(c.missesAt(512), 100.0);
    EXPECT_DOUBLE_EQ(c.missesAt(1024), 100.0);
    EXPECT_DOUBLE_EQ(c.missesAt(16384), 10.0);
    EXPECT_DOUBLE_EQ(c.missesAt(1_MiB), 10.0);
    const double mid = c.missesAt(2048);
    EXPECT_LT(mid, 100.0);
    EXPECT_GT(mid, 50.0);
}

TEST(MissCurve, EnforcesMonotonicity)
{
    MissCurve c({1024, 4096}, {50.0, 80.0}); // noisy increase clamped
    EXPECT_DOUBLE_EQ(c.missesAt(4096), 50.0);
}

TEST(MissCurve, NextPointAndSlope)
{
    MissCurve c({1024, 4096, 16384}, {100.0, 50.0, 10.0});
    EXPECT_EQ(c.nextPointAbove(0), 1024u);
    EXPECT_EQ(c.nextPointAbove(1024), 4096u);
    EXPECT_EQ(c.nextPointAbove(16384), 0u);
    EXPECT_GT(c.slopeAt(1024), 0.0);
    EXPECT_DOUBLE_EQ(c.slopeAt(16384), 0.0);
}

TEST(MissCurve, EmptyCurveIsSafe)
{
    MissCurve c;
    EXPECT_TRUE(c.empty());
    EXPECT_DOUBLE_EQ(c.missesAt(1024), 0.0);
    EXPECT_EQ(c.nextPointAbove(0), 0u);
}

TEST(Sampler, GeometricCapacities)
{
    MissCurveSampler s(smallParams());
    const auto& caps = s.capacities();
    ASSERT_EQ(caps.size(), 16u);
    EXPECT_EQ(caps.front(), 1_KiB);
    EXPECT_EQ(caps.back(), 1_MiB);
    for (std::size_t i = 1; i < caps.size(); ++i) {
        EXPECT_GT(caps[i], caps[i - 1]);
    }
}

TEST(Sampler, SmallWorkingSetHitsAtLargeCapacity)
{
    MissCurveSampler s(smallParams());
    s.configure(0, 64);
    // Working set of 64 granules x 64 B = 4 kB, looped many times.
    for (int rep = 0; rep < 200; ++rep) {
        for (std::uint64_t g = 0; g < 64; ++g) {
            s.observe(g);
        }
    }
    const MissCurve c = s.curve(12800);
    // At 1 MiB everything fits: near-zero miss rate.
    EXPECT_LT(c.missesAt(1_MiB) / 12800.0, 0.1);
    // At 1 KiB the set does not fit: high miss rate.
    EXPECT_GT(c.missesAt(1_KiB) / 12800.0, 0.5);
}

TEST(Sampler, RandomStreamKeepsMissingEverywhere)
{
    MissCurveSampler s(smallParams());
    s.configure(0, 64);
    Rng rng(5);
    // Working set far beyond max capacity, uniformly random.
    for (int i = 0; i < 100000; ++i) {
        s.observe(rng.nextBounded(1u << 22));
    }
    const MissCurve c = s.curve(100000);
    EXPECT_GT(c.missesAt(1_MiB) / 100000.0, 0.7);
}

TEST(Sampler, CurveIsMonotoneNonIncreasing)
{
    MissCurveSampler s(smallParams());
    s.configure(0, 64);
    Rng rng(9);
    ZipfSampler zipf(1 << 16, 0.8, 11);
    for (int i = 0; i < 50000; ++i) {
        s.observe(zipf.next());
    }
    const MissCurve c = s.curve(50000);
    for (std::size_t i = 1; i < c.numPoints(); ++i) {
        EXPECT_LE(c.misses()[i], c.misses()[i - 1] + 1e-9);
    }
}

TEST(Sampler, DeassignClearsState)
{
    MissCurveSampler s(smallParams());
    s.configure(3, 64);
    s.observe(1);
    EXPECT_TRUE(s.assigned());
    s.configure(kNoStream, 0);
    EXPECT_FALSE(s.assigned());
    EXPECT_EQ(s.accesses(), 0u);
}

TEST(SamplerBank, TracksBitvectorAndCounts)
{
    SamplerBank bank(4, smallParams());
    bank.assign({{2, 64}, {5, 8}});
    bank.observe(2, 10);
    bank.observe(2, 11);
    bank.observe(9, 1); // not sampled, still counted
    EXPECT_TRUE(bank.accessedBitvector()[2]);
    EXPECT_TRUE(bank.accessedBitvector()[9]);
    EXPECT_FALSE(bank.accessedBitvector()[3]);
    EXPECT_EQ(bank.accessCount(2), 2u);
    EXPECT_EQ(bank.accessCount(9), 1u);
    ASSERT_NE(bank.samplerFor(2), nullptr);
    EXPECT_EQ(bank.samplerFor(2)->accesses(), 2u);
    EXPECT_EQ(bank.samplerFor(9), nullptr);
}

TEST(SamplerBank, NewEpochClearsCountersNotAssignments)
{
    SamplerBank bank(4, smallParams());
    bank.assign({{2, 64}});
    bank.observe(2, 10);
    bank.newEpoch();
    EXPECT_FALSE(bank.accessedBitvector()[2]);
    EXPECT_EQ(bank.accessCount(2), 0u);
    ASSERT_NE(bank.samplerFor(2), nullptr); // still assigned
}

TEST(MissCurve, ZeroMissesEnablesFirstSegmentSlope)
{
    MissCurve c({1024, 4096}, {100.0, 100.0}); // flat measured curve
    EXPECT_DOUBLE_EQ(c.slopeAt(0), 0.0);
    c.setZeroMisses(1000.0);
    EXPECT_GT(c.slopeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(c.missesAt(0), 1000.0);
    EXPECT_DOUBLE_EQ(c.missesAt(1024), 100.0);
}

TEST(MissCurve, ZeroMissesClampedToFirstPoint)
{
    MissCurve c({1024}, {100.0});
    c.setZeroMisses(5.0); // below the first point: clamped up
    EXPECT_DOUBLE_EQ(c.zeroMisses(), 100.0);
}

TEST(MissCurve, BestSegmentSeesPastFlatRegions)
{
    // Flat from 1k to 4k, cliff at 16k: one-point slope at 1024 is zero
    // but the lookahead must find the 16k target.
    MissCurve c({1024, 4096, 16384}, {100.0, 100.0, 10.0});
    EXPECT_DOUBLE_EQ(c.slopeAt(1024), 0.0);
    const auto seg = c.bestSegment(1024);
    EXPECT_EQ(seg.target, 16384u);
    EXPECT_GT(seg.slope, 0.0);
}

TEST(MissCurve, BestSegmentAtEndIsEmpty)
{
    MissCurve c({1024, 4096}, {100.0, 50.0});
    const auto seg = c.bestSegment(4096);
    EXPECT_EQ(seg.target, 0u);
    EXPECT_DOUBLE_EQ(seg.slope, 0.0);
}

TEST(MissCurve, PointwiseMinBlends)
{
    MissCurve a({1024, 4096}, {100.0, 80.0});
    MissCurve b({1024, 4096}, {90.0, 95.0});
    a.setZeroMisses(120.0);
    b.setZeroMisses(110.0);
    const auto m = MissCurve::pointwiseMin(a, b);
    EXPECT_DOUBLE_EQ(m.missesAt(1024), 90.0);
    EXPECT_DOUBLE_EQ(m.missesAt(4096), 80.0);
    EXPECT_DOUBLE_EQ(m.zeroMisses(), 120.0);
}

TEST(SamplerBank, ReassignmentKeepsMatchingStreams)
{
    SamplerBank bank(4, smallParams());
    bank.assign({{2, 64}, {5, 8}});
    bank.observe(2, 10);
    bank.observe(2, 10);
    // Stream 2 stays assigned: its shadow-set state must persist so
    // reuse accumulates across epochs.
    bank.assign({{2, 64}, {7, 8}});
    ASSERT_NE(bank.samplerFor(2), nullptr);
    EXPECT_EQ(bank.samplerFor(2)->accesses(), 2u);
    // Stream 5 was dropped, 7 added fresh.
    EXPECT_EQ(bank.samplerFor(5), nullptr);
    ASSERT_NE(bank.samplerFor(7), nullptr);
    EXPECT_EQ(bank.samplerFor(7)->accesses(), 0u);
}

/** Property: different k values produce consistent curve shapes. */
class SamplerKTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SamplerKTest, WorkingSetKneeDetected)
{
    SamplerParams p = smallParams();
    p.kSets = GetParam();
    MissCurveSampler s(p);
    s.configure(0, 64);
    // 256-granule working set = 16 kB.
    for (int rep = 0; rep < 100; ++rep) {
        for (std::uint64_t g = 0; g < 256; ++g) {
            s.observe(g);
        }
    }
    const MissCurve c = s.curve(25600);
    // Well above the knee: low misses; well below: high misses.
    EXPECT_LT(c.missesAt(256_KiB), c.missesAt(2_KiB));
}

INSTANTIATE_TEST_SUITE_P(KSets, SamplerKTest,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

} // namespace
} // namespace ndpext
