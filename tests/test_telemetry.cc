/**
 * Telemetry subsystem tests: metric registry semantics, per-packet
 * LatencyBreakdown accumulation, the observer-only determinism contract,
 * and the schema of the emitted files (DESIGN.md §6).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ndp/stream_cache.h"
#include "runtime/static_config.h"
#include "sim/packet.h"
#include "system/ndp_system.h"
#include "telemetry/telemetry.h"
#include "telemetry/tiny_json.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

// --- MetricRegistry -----------------------------------------------------

TEST(MetricRegistry, DuplicateNamesSumAcrossSources)
{
    MetricRegistry reg;
    double a = 3.0;
    double b = 4.0;
    reg.registerCounter("x.count", [&a] { return a; });
    reg.registerCounter("x.count", [&b] { return b; });
    reg.registerGauge("x.rate", [] { return 0.5; });
    EXPECT_EQ(reg.numMetrics(), 2u);
    reg.sample(0, 100);
    EXPECT_DOUBLE_EQ(reg.latest("x.count"), 7.0);
    EXPECT_DOUBLE_EQ(reg.latest("x.rate"), 0.5);
    a = 10.0;
    reg.sample(1, 200);
    EXPECT_DOUBLE_EQ(reg.latest("x.count"), 14.0);
    EXPECT_DOUBLE_EQ(reg.latest("nonexistent"), 0.0);
}

TEST(MetricRegistry, RingDropsOldestBeyondCapacity)
{
    MetricRegistry reg(2);
    reg.registerCounter("c", [] { return 1.0; });
    reg.sample(0, 10);
    reg.sample(1, 20);
    reg.sample(2, 30);
    EXPECT_EQ(reg.numSamples(), 2u);
    EXPECT_EQ(reg.droppedSamples(), 1u);
    EXPECT_EQ(reg.samples().front().epoch, 1u);
}

TEST(MetricRegistry, JsonlRoundTripsThroughParser)
{
    MetricRegistry reg;
    Histogram hist(100.0, 10);
    hist.add(5.0);
    hist.add(50.0);
    reg.registerCounter("cache.hits", [] { return 42.0; });
    reg.registerHistogram("lat", &hist);
    reg.sample(0, 1000);
    reg.sample(1, 2000);

    std::ostringstream os;
    reg.writeJsonl(os);
    std::vector<json::ValuePtr> lines;
    std::string error;
    ASSERT_TRUE(json::parseLines(os.str(), lines, &error)) << error;
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_DOUBLE_EQ(lines[1]->num("epoch"), 1.0);
    EXPECT_DOUBLE_EQ(lines[1]->num("cycles"), 2000.0);
    const json::Value* metrics = lines[0]->get("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_DOUBLE_EQ(metrics->num("cache.hits"), 42.0);
    const json::Value* hists = lines[0]->get("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value* lat = hists->get("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_DOUBLE_EQ(lat->num("count"), 2.0);
}

// --- LatencyBreakdown end-to-end accumulation ---------------------------

/** Minimal controller rig (same shape as test_stream_cache). */
struct Rig
{
    MeshTopology topo{2, 1, 2, 2}; // 8 units
    NocParams nocParams;
    NocModel noc{topo, nocParams};
    CxlParams cxlParams;
    ExtendedMemory ext{cxlParams, DramTimingParams::ddr5Extended(), 2000};
    StreamTable table;
    StreamCacheParams params;
    std::unique_ptr<StreamCacheController> cache;

    Rig()
    {
        params.sampler.minCapacityBytes = 1_KiB;
        params.sampler.maxCapacityBytes = 256_KiB;
        params.sampler.numCapacities = 8;
        params.affineCapBytesPerUnit = 64_KiB;
        cache = std::make_unique<StreamCacheController>(
            params, table, noc, ext, DramTimingParams::hbm3Unit(), 256_KiB,
            2000);
    }

    StreamId
    addStream(std::uint64_t bytes)
    {
        auto cfg = StreamConfig::dense(
            "s" + std::to_string(table.numStreams()), StreamType::Indirect,
            0x100000 + table.numStreams() * 0x1000000, bytes, 8);
        cfg.readOnly = true;
        return table.configureStream(cfg);
    }

    void
    allocateEverything()
    {
        cache->applyConfiguration(makeStaticEqualConfig(
            table, cache->numUnits(), cache->rowsPerUnit(),
            cache->rowBytes(), params.affineCapBytesPerUnit));
    }
};

/**
 * The breakdown must account for every cycle of a packet's service: the
 * stage buckets sum to exactly (ready - issue) on every path through the
 * datapath (hit, miss, uncached stream, non-stream bypass, write).
 */
TEST(LatencyBreakdown, PacketStageSumsEqualTotalLatency)
{
    Rig rig;
    const StreamId sid = rig.addStream(64_KiB);
    rig.cache->applyConfiguration(makeStaticEqualConfig(
        rig.table, rig.cache->numUnits(), rig.cache->rowsPerUnit(),
        rig.cache->rowBytes(), rig.params.affineCapBytesPerUnit));
    // Configured after the allocation pass, so this stream stays
    // unallocated and its accesses go to extended memory.
    const StreamId uncached = rig.addStream(64_KiB);

    std::uint64_t verified = 0;
    auto verify = [&](Packet pkt) {
        const Cycles issue = pkt.ready;
        rig.cache->handleRequest(pkt);
        EXPECT_EQ(pkt.ready - issue, pkt.bd.total())
            << "unaccounted cycles on packet " << verified;
        EXPECT_EQ(pkt.bd.requests, 1u);
        ++verified;
        return pkt.ready - issue;
    };

    const StreamConfig& cfg = rig.table.stream(sid);
    for (ElemId e = 0; e < 64; ++e) {
        Access a;
        a.sid = sid;
        a.elem = e;
        a.addr = cfg.addrOf(e);
        verify(Packet::request(a, /*core=*/e % 8, /*now=*/e * 10));
    }
    // Re-touch the first elements: now hits, still fully accounted.
    for (ElemId e = 0; e < 8; ++e) {
        Access a;
        a.sid = sid;
        a.elem = e;
        a.addr = cfg.addrOf(e);
        verify(Packet::request(a, 0, 10'000 + e * 10));
    }
    // Uncached stream -> extended memory.
    const StreamConfig& ucfg = rig.table.stream(uncached);
    Access ua;
    ua.sid = uncached;
    ua.elem = 3;
    ua.addr = ucfg.addrOf(3);
    const Cycles uncached_lat = verify(Packet::request(ua, 1, 20'000));
    EXPECT_GT(uncached_lat, 0u);
    // Non-stream bypass.
    Access ba;
    ba.sid = kNoStream;
    ba.addr = 0x40;
    EXPECT_GT(verify(Packet::request(ba, 2, 30'000)), 0u);
    EXPECT_GE(verified, 74u);
}

// --- System-level telemetry ---------------------------------------------

SystemConfig
tinyConfig(std::uint32_t threads = 1)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 200'000;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

std::unique_ptr<Telemetry>
makeTelemetry(const std::string& prefix = "",
              std::uint64_t sample_every = 1)
{
    TelemetryConfig tc;
    tc.outPrefix = prefix;
    tc.packetSampleEvery = sample_every;
    return std::make_unique<Telemetry>(tc);
}

/**
 * The observer-only contract: attaching telemetry (at any sampling rate)
 * and changing --threads must not change the RunResult.
 */
TEST(Telemetry, ObserverOnlyAcrossThreadsAndSampling)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());

    NdpSystem plain(tinyConfig(1), PolicyKind::NdpExt);
    const RunResult base = plain.run(*w);

    struct Variant
    {
        std::uint32_t threads;
        std::uint64_t sampleEvery;
    };
    for (const Variant v : {Variant{1, 1}, Variant{2, 1}, Variant{2, 64}}) {
        auto tel = makeTelemetry("", v.sampleEvery);
        NdpSystem sys(tinyConfig(v.threads), PolicyKind::NdpExt);
        sys.attachTelemetry(tel.get());
        const RunResult r = sys.run(*w);
        EXPECT_EQ(r.cycles, base.cycles) << "threads=" << v.threads;
        EXPECT_EQ(r.accesses, base.accesses);
        EXPECT_EQ(r.l1Hits, base.l1Hits);
        EXPECT_EQ(r.bd.requests, base.bd.requests);
        EXPECT_EQ(r.bd.metadata, base.bd.metadata);
        EXPECT_EQ(r.bd.icnIntra, base.bd.icnIntra);
        EXPECT_EQ(r.bd.icnInter, base.bd.icnInter);
        EXPECT_EQ(r.bd.dramCache, base.bd.dramCache);
        EXPECT_EQ(r.bd.extMem, base.bd.extMem);
        EXPECT_DOUBLE_EQ(r.missRate, base.missRate);
        EXPECT_DOUBLE_EQ(r.energy.totalNj(), base.energy.totalNj());
        EXPECT_EQ(r.reconfigurations, base.reconfigurations);
    }
}

/** Epoch series, packet samples, and decisions are all populated. */
TEST(Telemetry, CollectsMetricsSamplesAndDecisions)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    auto tel = makeTelemetry();
    SystemConfig cfg = tinyConfig(2);
    cfg.runtime.epochCycles = 50'000; // several epochs within the run
    cfg.finalize();
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    sys.attachTelemetry(tel.get());
    const RunResult res = sys.run(*w);

    // The final epoch snapshot agrees with the run's own statistics.
    EXPECT_GE(tel->metrics().numSamples(), 2u);
    EXPECT_DOUBLE_EQ(tel->metrics().latest("cache.hits"),
                     res.stats.get("cache.hits"));
    EXPECT_DOUBLE_EQ(tel->metrics().latest("cache.misses"),
                     res.stats.get("cache.misses"));
    EXPECT_DOUBLE_EQ(tel->metrics().latest("cores.accesses"),
                     static_cast<double>(res.accesses));

    // Sampled packets: every stage split is internally consistent and
    // feeds the latency histogram.
    ASSERT_FALSE(tel->drainedSamples().empty());
    for (const PacketSample& s : tel->drainedSamples()) {
        EXPECT_EQ(s.total(),
                  s.metadata + s.icnIntra + s.icnInter + s.dramCache
                      + s.extMem);
        EXPECT_GT(s.total(), 0u);
        EXPECT_LT(s.core, 8u);
    }
    EXPECT_EQ(tel->packetLatencyHist().count(),
              tel->drainedSamples().size());

    // Decision log: an initial record plus one per completed epoch.
    const auto& decisions = tel->decisions().records();
    ASSERT_GE(decisions.size(), 2u);
    EXPECT_EQ(decisions.front().kind, "initial");
    EXPECT_FALSE(decisions.front().allocs.empty());
    bool sawEpoch = false;
    for (const DecisionRecord& d : decisions) {
        EXPECT_EQ(d.samplerAssignment.size(), 8u);
        if (d.kind == "epoch") {
            sawEpoch = true;
            EXPECT_GT(d.cycles, 0u);
            EXPECT_FALSE(d.demands.empty());
        }
    }
    EXPECT_TRUE(sawEpoch);
}

/** writeAll emits the three files and each parses with the schema. */
TEST(Telemetry, WriteAllEmitsParseableFiles)
{
    auto w = makeWorkload("bfs");
    w->prepare(tinyParams());
    const std::string prefix = ::testing::TempDir() + "ndpext_tel_test";
    auto tel = makeTelemetry(prefix, 8);
    NdpSystem sys(tinyConfig(1), PolicyKind::NdpExt);
    sys.attachTelemetry(tel.get());
    (void)sys.run(*w);
    std::string error;
    ASSERT_TRUE(tel->writeAll(&error)) << error;

    auto slurp = [](const std::string& path) {
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };

    std::vector<json::ValuePtr> lines;
    ASSERT_TRUE(json::parseLines(slurp(prefix + ".metrics.jsonl"), lines,
                                 &error))
        << error;
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.back()->get("metrics"), nullptr);

    lines.clear();
    ASSERT_TRUE(json::parseLines(slurp(prefix + ".decisions.jsonl"), lines,
                                 &error))
        << error;
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.front()->str("kind"), "initial");
    ASSERT_NE(lines.front()->get("allocs"), nullptr);
    EXPECT_TRUE(lines.front()->get("allocs")->isArray());

    const json::ValuePtr trace =
        json::parse(slurp(prefix + ".trace.json"), &error);
    ASSERT_NE(trace, nullptr) << error;
    const json::Value* events = trace->get("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_FALSE(events->array.empty());
    bool sawEpochSpan = false;
    bool sawPacket = false;
    for (const auto& ev : events->array) {
        if (ev->str("ph") == "X" && ev->str("cat") == "epoch") {
            sawEpochSpan = true;
        }
        if (ev->str("cat") == "packet") {
            sawPacket = true;
        }
    }
    EXPECT_TRUE(sawEpochSpan);
    EXPECT_TRUE(sawPacket);
}

/** An empty output prefix collects in memory and writes nothing. */
TEST(Telemetry, EmptyPrefixWriteAllIsNoOp)
{
    auto tel = makeTelemetry();
    tel->metrics().registerCounter("c", [] { return 1.0; });
    tel->sampleEpoch(0, 100);
    std::string error;
    EXPECT_TRUE(tel->writeAll(&error));
    EXPECT_TRUE(error.empty());
}

} // namespace
} // namespace ndpext
