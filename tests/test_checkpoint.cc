/**
 * Checkpoint/restore coverage: byte-stream primitives, on-disk image
 * validation (every corruption class is a recoverable error, not an
 * abort), newest-valid discovery with fallback past corrupt images, and
 * the core resume invariant -- a run resumed from any epoch-barrier
 * image is bit-identical to the uninterrupted run at any thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

std::vector<std::uint8_t>
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeFile(const std::string& path, const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

TEST(CheckpointStream, RoundTripAllPrimitives)
{
    ckpt::Writer w;
    w.section(7);
    w.u8(0xAB);
    w.b(true);
    w.b(false);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFULL);
    w.d(-1234.5678e-9);
    w.str("stream-based placement");
    w.vecU64({1, 2, 3});
    w.vecU32({});
    w.vecD({0.5, -0.25});
    w.vecB({true, false, true});

    ckpt::Reader r(w.bytes());
    r.section(7);
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.d(), -1234.5678e-9);
    EXPECT_EQ(r.str(), "stream-based placement");
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_TRUE(r.vecU32().empty());
    EXPECT_EQ(r.vecD(), (std::vector<double>{0.5, -0.25}));
    EXPECT_EQ(r.vecB(), (std::vector<bool>{true, false, true}));
    EXPECT_TRUE(r.atEnd());
}

TEST(CheckpointStream, DoubleBitPatternsSurvive)
{
    // NaN payload bits and signed zero must survive the round trip
    // bit-exactly (values are stored as raw IEEE-754 words).
    const double nan = std::nan("0x5ca1ab1e");
    const double negzero = -0.0;
    ckpt::Writer w;
    w.d(nan);
    w.d(negzero);
    ckpt::Reader r(w.bytes());
    const double nan2 = r.d();
    const double negzero2 = r.d();
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &nan, 8);
    std::memcpy(&b, &nan2, 8);
    EXPECT_EQ(a, b);
    std::memcpy(&a, &negzero, 8);
    std::memcpy(&b, &negzero2, 8);
    EXPECT_EQ(a, b);
}

class CheckpointFileTest : public ::testing::Test
{
  protected:
    std::string
    path(const std::string& name) const
    {
        return ::testing::TempDir() + "ckpt_"
            + ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()
            + "_" + name;
    }

    std::vector<std::uint8_t>
    samplePayload() const
    {
        ckpt::Writer w;
        w.section(1);
        w.vecU64({10, 20, 30});
        w.str("payload");
        return w.bytes();
    }
};

TEST_F(CheckpointFileTest, SaveLoadRoundTrip)
{
    const std::string file = path("a.ckpt");
    const auto payload = samplePayload();
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 42, 7, payload, &error)) << error;

    ckpt::CheckpointHeader h;
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(ckpt::loadCheckpoint(file, 42, &h, &got, &error)) << error;
    EXPECT_EQ(h.version, ckpt::kCheckpointVersion);
    EXPECT_EQ(h.configHash, 42u);
    EXPECT_EQ(h.epoch, 7u);
    EXPECT_EQ(h.payloadSize, payload.size());
    EXPECT_EQ(got, payload);

    // No stray temp file left behind.
    std::ifstream tmp(file + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointFileTest, MissingFileIsRecoverable)
{
    std::string error;
    EXPECT_FALSE(
        ckpt::loadCheckpoint(path("nope.ckpt"), 0, nullptr, nullptr,
                             &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, TruncatedHeaderIsRecoverable)
{
    const std::string file = path("a.ckpt");
    writeFile(file, {'N', 'D', 'P', 'X'});
    std::string error;
    EXPECT_FALSE(ckpt::probeCheckpoint(file, nullptr, &error));
    EXPECT_NE(error.find("truncated header"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, BadMagicIsRecoverable)
{
    const std::string file = path("a.ckpt");
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 1, 1, samplePayload(), &error));
    auto bytes = readFile(file);
    bytes[0] ^= 0xFF;
    writeFile(file, bytes);
    EXPECT_FALSE(ckpt::probeCheckpoint(file, nullptr, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, UnsupportedVersionIsRecoverable)
{
    const std::string file = path("a.ckpt");
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 1, 1, samplePayload(), &error));
    auto bytes = readFile(file);
    bytes[8] = 99; // version u32 little-endian at offset 8
    writeFile(file, bytes);
    EXPECT_FALSE(ckpt::probeCheckpoint(file, nullptr, &error));
    EXPECT_NE(error.find("unsupported version 99"), std::string::npos)
        << error;
}

TEST_F(CheckpointFileTest, TruncatedPayloadIsRecoverable)
{
    const std::string file = path("a.ckpt");
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 1, 1, samplePayload(), &error));
    auto bytes = readFile(file);
    bytes.pop_back();
    writeFile(file, bytes);
    EXPECT_FALSE(ckpt::probeCheckpoint(file, nullptr, &error));
    EXPECT_NE(error.find("truncated payload"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, TrailingBytesAreRecoverable)
{
    const std::string file = path("a.ckpt");
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 1, 1, samplePayload(), &error));
    auto bytes = readFile(file);
    bytes.push_back(0x00);
    writeFile(file, bytes);
    EXPECT_FALSE(ckpt::probeCheckpoint(file, nullptr, &error));
    EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, PayloadCorruptionFailsCrc)
{
    const std::string file = path("a.ckpt");
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 1, 1, samplePayload(), &error));
    auto bytes = readFile(file);
    bytes[bytes.size() - 3] ^= 0x40; // inside the payload
    writeFile(file, bytes);
    EXPECT_FALSE(ckpt::probeCheckpoint(file, nullptr, &error));
    EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST_F(CheckpointFileTest, ConfigHashMismatchIsRecoverable)
{
    const std::string file = path("a.ckpt");
    std::string error;
    ASSERT_TRUE(ckpt::saveCheckpoint(file, 42, 1, samplePayload(), &error));
    EXPECT_FALSE(
        ckpt::loadCheckpoint(file, 43, nullptr, nullptr, &error));
    EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
    // Hash 0 means "don't check" (probe-style loads).
    EXPECT_TRUE(ckpt::loadCheckpoint(file, 0, nullptr, nullptr, &error))
        << error;
}

TEST_F(CheckpointFileTest, FindLatestPicksNewestValid)
{
    const std::string prefix = path("run");
    std::string error;
    ASSERT_TRUE(
        ckpt::saveCheckpoint(prefix + ".2.ckpt", 1, 2, samplePayload(),
                             &error));
    ASSERT_TRUE(
        ckpt::saveCheckpoint(prefix + ".10.ckpt", 1, 10, samplePayload(),
                             &error));
    std::string found;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &found, &h, &error))
        << error;
    EXPECT_EQ(found, prefix + ".10.ckpt");
    EXPECT_EQ(h.epoch, 10u);
}

TEST_F(CheckpointFileTest, FindLatestSkipsCorruptNewest)
{
    // The supervisor-fallback path: a damaged newest image must not end
    // the run; discovery falls back to the previous valid one.
    const std::string prefix = path("run");
    std::string error;
    ASSERT_TRUE(
        ckpt::saveCheckpoint(prefix + ".2.ckpt", 1, 2, samplePayload(),
                             &error));
    ASSERT_TRUE(
        ckpt::saveCheckpoint(prefix + ".10.ckpt", 1, 10, samplePayload(),
                             &error));
    auto bytes = readFile(prefix + ".10.ckpt");
    bytes.back() ^= 0xFF;
    writeFile(prefix + ".10.ckpt", bytes);

    std::string found;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &found, &h, &error))
        << error;
    EXPECT_EQ(found, prefix + ".2.ckpt");
    EXPECT_EQ(h.epoch, 2u);
}

TEST_F(CheckpointFileTest, FindLatestReportsWhyWhenAllInvalid)
{
    const std::string prefix = path("run");
    writeFile(prefix + ".5.ckpt", {'j', 'u', 'n', 'k'});
    std::string error;
    EXPECT_FALSE(
        ckpt::findLatestValidCheckpoint(prefix, nullptr, nullptr, &error));
    EXPECT_NE(error.find("no valid checkpoint"), std::string::npos)
        << error;
    EXPECT_NE(error.find("truncated header"), std::string::npos) << error;
}

// --- Resume determinism -------------------------------------------------

SystemConfig
tinyConfig(std::uint32_t threads)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 20'000; // many epoch barriers per run
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

/** Bit-identity check over every deterministic reported quantity. */
void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.bd.requests, b.bd.requests);
    EXPECT_EQ(a.bd.metadata, b.bd.metadata);
    EXPECT_EQ(a.bd.icnIntra, b.bd.icnIntra);
    EXPECT_EQ(a.bd.icnInter, b.bd.icnInter);
    EXPECT_EQ(a.bd.dramCache, b.bd.dramCache);
    EXPECT_EQ(a.bd.extMem, b.bd.extMem);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_DOUBLE_EQ(a.energy.totalNj(), b.energy.totalNj());
    EXPECT_EQ(a.writeExceptions, b.writeExceptions);
    EXPECT_EQ(a.reconfigurations, b.reconfigurations);
    EXPECT_EQ(a.slbMisses, b.slbMisses);
    EXPECT_EQ(a.degraded.failedUnits, b.degraded.failedUnits);
    EXPECT_EQ(a.degraded.linkRetries, b.degraded.linkRetries);

    // Full counter map; stats ending in "Micros" are host wall-clock
    // and outside the determinism contract (DESIGN.md section 5.3).
    const auto isWallClock = [](const std::string& name) {
        return name.size() >= 6
            && name.compare(name.size() - 6, 6, "Micros") == 0;
    };
    for (const auto& [name, value] : a.stats.raw()) {
        EXPECT_TRUE(b.stats.has(name)) << "missing stat " << name;
        if (!isWallClock(name)) {
            EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << "stat " << name;
        }
    }
    EXPECT_EQ(a.stats.raw().size(), b.stats.raw().size());
}

class CheckpointResumeTest : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    std::string
    prefix() const
    {
        return ::testing::TempDir() + "resume_t"
            + std::to_string(GetParam());
    }
};

TEST_P(CheckpointResumeTest, ResumeIsBitIdenticalAtAnyThreadCount)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());

    // Golden: uninterrupted single-threaded run, no checkpointing.
    NdpSystem golden(tinyConfig(1), PolicyKind::NdpExt);
    const RunResult want = golden.run(*w);

    // Checkpointing is observer-only: the emitting run matches golden.
    NdpSystem emitter(tinyConfig(1), PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix(), 1);
    const RunResult emitted = emitter.run(*w);
    expectIdentical(want, emitted);

    std::string newest;
    std::string error;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix(), &newest, &h, &error))
        << error;
    ASSERT_GE(h.epoch, 3u) << "run too short to exercise resume";

    // Resume from the first, a middle, and the newest image, each at
    // the parameterized thread count (shards are per stack, so any
    // thread count must reproduce the same trajectory).
    for (const std::uint64_t epoch :
         {std::uint64_t{1}, h.epoch / 2, h.epoch}) {
        NdpSystem resumed(tinyConfig(GetParam()), PolicyKind::NdpExt);
        const std::string image =
            prefix() + "." + std::to_string(epoch) + ".ckpt";
        ASSERT_TRUE(resumed.setResume(image, *w, &error)) << error;
        EXPECT_EQ(resumed.resumeEpoch(), epoch);
        const RunResult got = resumed.run(*w);
        expectIdentical(want, got);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, CheckpointResumeTest,
                         ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<std::uint32_t>&
                                info) {
                             return "t" + std::to_string(info.param);
                         });

TEST(CheckpointResume, WrongWorkloadIsRejected)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    const std::string prefix = ::testing::TempDir() + "resume_wrong";

    NdpSystem emitter(tinyConfig(1), PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix, 1);
    emitter.run(*w);

    std::string newest;
    std::string error;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &newest, nullptr, &error))
        << error;

    // Same workload name, different seed: the trajectory differs, so
    // the config hash must reject the image.
    auto other = makeWorkload("pr");
    WorkloadParams p = tinyParams();
    p.seed = 8;
    other->prepare(p);
    NdpSystem resumed(tinyConfig(1), PolicyKind::NdpExt);
    EXPECT_FALSE(resumed.setResume(newest, *other, &error));
    EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

TEST(CheckpointResume, DifferentPolicyIsRejected)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    const std::string prefix = ::testing::TempDir() + "resume_policy";

    NdpSystem emitter(tinyConfig(1), PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix, 1);
    emitter.run(*w);

    std::string newest;
    std::string error;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &newest, nullptr, &error))
        << error;

    NdpSystem resumed(tinyConfig(1), PolicyKind::Nexus);
    EXPECT_FALSE(resumed.setResume(newest, *w, &error));
    EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

} // namespace
} // namespace ndpext
