/** Tests for the workload generators (all 13, parameterized). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/gap_workloads.h"
#include "workloads/graph.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 8_MiB;
    p.accessesPerCore = 2000;
    p.seed = 42;
    return p;
}

TEST(Graph, RmatShapeAndDegrees)
{
    const auto g = makeRmatGraph(10, 8, 1);
    EXPECT_EQ(g.numVertices, 1024u);
    EXPECT_EQ(g.numEdges, 8192u);
    EXPECT_EQ(g.offsets.size(), 1025u);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), g.numEdges);
    for (std::uint64_t v = 0; v < g.numVertices; ++v) {
        EXPECT_LE(g.offsets[v], g.offsets[v + 1]);
    }
    for (const auto dst : g.edges) {
        EXPECT_LT(dst, g.numVertices);
    }
}

TEST(Graph, RmatIsSkewed)
{
    const auto g = makeRmatGraph(12, 16, 2);
    // Power law: the max degree dwarfs the average.
    std::uint64_t max_deg = 0;
    for (std::uint64_t v = 0; v < g.numVertices; ++v) {
        max_deg = std::max(max_deg, g.degree(v));
    }
    EXPECT_GT(max_deg, 16u * 10);
}

TEST(Graph, Deterministic)
{
    const auto a = makeRmatGraph(8, 4, 7);
    const auto b = makeRmatGraph(8, 4, 7);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.offsets, b.offsets);
}

TEST(Graph, ScaleForFootprint)
{
    const auto s = scaleForFootprint(12_MiB, 16);
    const std::uint64_t v = 1ULL << s;
    EXPECT_LE(v * 8 + v * 16 * 4, 12_MiB);
    EXPECT_GT((v * 2) * 8 + (v * 2) * 16 * 4, 12_MiB);
}

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, PreparesAndRegisters)
{
    auto w = makeWorkload(GetParam());
    EXPECT_EQ(w->name(), GetParam());
    w->prepare(smallParams());
    EXPECT_TRUE(w->prepared());
    EXPECT_GE(w->streamConfigs().size(), 2u);
    StreamTable table;
    w->registerStreams(table);
    EXPECT_EQ(table.numStreams(), w->streamConfigs().size());
}

TEST_P(WorkloadSuite, GeneratorsEmitBoundedValidAccesses)
{
    auto w = makeWorkload(GetParam());
    w->prepare(smallParams());
    StreamTable table;
    w->registerStreams(table);
    for (CoreId c = 0; c < 8; c += 7) { // first and last core
        auto gen = w->makeGenerator(c);
        Access a;
        std::uint64_t count = 0;
        while (gen->next(a)) {
            ++count;
            ASSERT_NE(a.sid, kNoStream);
            const StreamConfig& cfg = table.stream(a.sid);
            ASSERT_TRUE(cfg.contains(a.addr))
                << GetParam() << " stream " << cfg.name;
            ASSERT_EQ(cfg.addrOf(a.elem), a.addr);
            ASSERT_GE(a.computeCycles, 1u);
        }
        EXPECT_EQ(count, smallParams().accessesPerCore);
    }
}

TEST_P(WorkloadSuite, GeneratorsAreDeterministic)
{
    auto w = makeWorkload(GetParam());
    w->prepare(smallParams());
    auto g1 = w->makeGenerator(3);
    auto g2 = w->makeGenerator(3);
    Access a1;
    Access a2;
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(g1->next(a1));
        ASSERT_TRUE(g2->next(a2));
        ASSERT_EQ(a1.addr, a2.addr);
        ASSERT_EQ(a1.sid, a2.sid);
        ASSERT_EQ(a1.isWrite, a2.isWrite);
    }
}

TEST_P(WorkloadSuite, DifferentCoresDiffer)
{
    auto w = makeWorkload(GetParam());
    w->prepare(smallParams());
    auto g0 = w->makeGenerator(0);
    auto g5 = w->makeGenerator(5);
    Access a0;
    Access a5;
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(g0->next(a0));
        ASSERT_TRUE(g5->next(a5));
        same += a0.addr == a5.addr ? 1 : 0;
    }
    EXPECT_LT(same, 200); // not an identical trace
}

TEST_P(WorkloadSuite, WritesTouchOnlyWritableStreamsEventually)
{
    // Streams marked read-only may still be written (backprop phase 2
    // flips w); but streams marked read-write must actually see writes
    // OR reads -- sanity that isWrite is populated at all.
    auto w = makeWorkload(GetParam());
    w->prepare(smallParams());
    auto gen = w->makeGenerator(0);
    Access a;
    bool any_read = false;
    while (gen->next(a)) {
        any_read = any_read || !a.isWrite;
    }
    EXPECT_TRUE(any_read);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        return info.param;
    });

TEST(WorkloadFidelity, RecsysEmbeddingLookupsAreSkewed)
{
    auto w = makeWorkload("recsys");
    w->prepare(smallParams());
    auto gen = w->makeGenerator(0);
    Access a;
    std::map<Addr, int> counts;
    std::uint64_t emb_accesses = 0;
    while (gen->next(a)) {
        // Embedding streams are the indirect ones.
        const auto& cfg = w->streamConfigs()[a.sid];
        if (cfg.type == StreamType::Indirect) {
            ++counts[a.addr];
            ++emb_accesses;
        }
    }
    ASSERT_GT(emb_accesses, 100u);
    // Zipf skew: the hottest 10% of touched rows take far more than 10%
    // of the accesses.
    std::vector<int> sorted;
    for (const auto& [addr, c] : counts) {
        sorted.push_back(c);
    }
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t hot = 0;
    for (std::size_t i = 0; i < sorted.size() / 10 + 1; ++i) {
        hot += sorted[i];
    }
    // (Loose bound: the exact head mass depends on the scaled table
    // size; uniform access would give ~0.1.)
    EXPECT_GT(static_cast<double>(hot) / emb_accesses, 0.15);
}

TEST(WorkloadFidelity, HotspotHaloReadsCrossBandBoundaries)
{
    // The stencil's up-neighbor read from the first row of core 1's band
    // must target a row inside core 0's band (halo sharing).
    auto w = makeWorkload("hotspot");
    w->prepare(smallParams());
    const StreamConfig& temp = w->streamConfigs()[0];
    ASSERT_EQ(temp.name, "temp");
    auto g1 = w->makeGenerator(1);
    Access a;
    Addr min_temp_addr = temp.end();
    for (int i = 0; i < 2000 && g1->next(a); ++i) {
        if (a.sid == temp.sid) {
            min_temp_addr = std::min(min_temp_addr, a.addr);
        }
    }
    // Core 1's band starts at rows/8 (8 cores); its up-halo read reaches
    // one row below that, i.e., below the band-start address.
    const std::uint64_t rows =
        temp.numElems() / 4096; // cols fixed at 4096 in the workload
    const Addr band_start =
        temp.base + (rows / 8) * 4096 * 4;
    EXPECT_LT(min_temp_addr, band_start)
        << "core 1 should read into core 0's band (halo)";
}

TEST(WorkloadFidelity, BackpropFlipsToWritesLate)
{
    auto w = makeWorkload("backprop");
    w->prepare(smallParams());
    auto gen = w->makeGenerator(0);
    Access a;
    std::uint64_t i = 0;
    std::uint64_t early_writes = 0;
    std::uint64_t late_writes = 0;
    const std::uint64_t half = smallParams().accessesPerCore / 2;
    while (gen->next(a)) {
        if (a.isWrite) {
            (i < half ? early_writes : late_writes) += 1;
        }
        ++i;
    }
    // Phase 2 (adjust_weights) is write-heavy; phase 1 is read-heavy.
    EXPECT_GT(late_writes, early_writes * 2);
}

TEST(WorkloadFidelity, GraphGathersFollowEdges)
{
    // pr's rank gathers must target exactly the neighbor ids of the
    // synthetic graph (the indirection is real, not random).
    auto w = makeWorkload("pr");
    w->prepare(smallParams());
    auto* gap = dynamic_cast<PageRankWorkload*>(w.get());
    ASSERT_NE(gap, nullptr);
    const CsrGraph& g = gap->graph();
    auto gen = w->makeGenerator(0);
    Access a;
    // Collect the set of vertex ids the rank stream touches.
    std::set<ElemId> touched;
    StreamId ranks_sid = kNoStream;
    for (const auto& cfg : w->streamConfigs()) {
        if (cfg.name == "ranks") {
            ranks_sid = cfg.sid;
        }
    }
    ASSERT_NE(ranks_sid, kNoStream);
    while (gen->next(a)) {
        if (a.sid == ranks_sid) {
            touched.insert(a.elem);
        }
    }
    ASSERT_FALSE(touched.empty());
    for (const auto v : touched) {
        ASSERT_LT(v, g.numVertices);
    }
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_DEATH(makeWorkload("nope"), "unknown workload");
}

TEST(WorkloadRegistry, ThirteenWorkloads)
{
    EXPECT_EQ(allWorkloadNames().size(), 13u);
}

TEST(Workload, StreamsAnnotatedWithTypes)
{
    // recsys should expose indirect embedding tables + affine weights,
    // mirroring the paper's affine/indirect mix.
    auto w = makeWorkload("recsys");
    w->prepare(smallParams());
    bool has_indirect = false;
    bool has_affine = false;
    bool has_read_only = false;
    bool has_read_write = false;
    for (const auto& cfg : w->streamConfigs()) {
        has_indirect |= cfg.type == StreamType::Indirect;
        has_affine |= cfg.type == StreamType::Affine;
        has_read_only |= cfg.readOnly;
        has_read_write |= !cfg.readOnly;
    }
    EXPECT_TRUE(has_indirect);
    EXPECT_TRUE(has_affine);
    EXPECT_TRUE(has_read_only);
    EXPECT_TRUE(has_read_write);
}

} // namespace
} // namespace ndpext
