/**
 * Tests for fault injection and graceful degradation: the FaultInjector
 * itself, CXL retry/poison behavior, failed-unit redirects, emergency
 * reconfiguration, and end-to-end degraded runs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "ndp/stream_cache.h"
#include "runtime/ndp_runtime.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

// ------------------------------------------------------ FaultInjector

TEST(FaultInjector, DisabledByDefault)
{
    FaultInjector f;
    EXPECT_FALSE(f.enabled());
    EXPECT_FALSE(f.linkError());
    EXPECT_FALSE(f.poisonRead(0x1000));
    EXPECT_FALSE(f.dramBitFault());
    EXPECT_EQ(f.nextFailureAt(), FaultInjector::kNoFailure);
}

TEST(FaultInjector, DeterministicAcrossInstances)
{
    FaultParams p;
    p.seed = 99;
    p.cxlTransientProb = 0.25;
    p.dramBitProb = 0.1;
    FaultInjector a(p);
    FaultInjector b(p);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.linkError(), b.linkError());
        EXPECT_EQ(a.dramBitFault(), b.dramBitFault());
    }
    EXPECT_EQ(a.linkErrorsInjected(), b.linkErrorsInjected());
    EXPECT_GT(a.linkErrorsInjected(), 0u);
}

TEST(FaultInjector, FaultClassesDrawIndependentStreams)
{
    // Enabling poison must not change the link-error sequence: each
    // class owns a separate seeded RNG.
    FaultParams link_only;
    link_only.seed = 7;
    link_only.cxlTransientProb = 0.3;
    FaultParams both = link_only;
    both.cxlPoisonProb = 0.5;

    FaultInjector a(link_only);
    FaultInjector b(both);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.linkError(), b.linkError()) << "draw " << i;
        b.poisonRead(static_cast<Addr>(i) * 64); // interleaved draws
    }
}

TEST(FaultInjector, PoisonIsStickyPerCacheline)
{
    FaultParams p;
    p.cxlPoisonProb = 1.0;
    FaultInjector f(p);
    EXPECT_TRUE(f.poisonRead(0x1000));
    EXPECT_TRUE(f.isPoisoned(0x1000));
    EXPECT_TRUE(f.isPoisoned(0x103f)); // same 64 B line
    EXPECT_FALSE(f.isPoisoned(0x1040)); // next line untouched
    EXPECT_TRUE(f.poisonRead(0x1000)); // still poisoned
    EXPECT_EQ(f.linesPoisoned(), 1u);
}

TEST(FaultInjector, ScheduledFailuresFireInOrderOnce)
{
    FaultParams p;
    p.unitFailures = {{3, 500}, {1, 100}, {3, 900}};
    FaultInjector f(p);
    EXPECT_EQ(f.nextFailureAt(), 100u);
    EXPECT_TRUE(f.popFailuresUpTo(50).empty());
    const auto first = f.popFailuresUpTo(100);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0], 1u);
    EXPECT_TRUE(f.unitFailed(1));
    EXPECT_FALSE(f.unitFailed(3));
    // Unit 3 is scheduled twice; it must fire only once.
    const auto rest = f.popFailuresUpTo(1000);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], 3u);
    EXPECT_EQ(f.nextFailureAt(), FaultInjector::kNoFailure);
    EXPECT_EQ(f.firstFailureAt(), 100u);
    EXPECT_EQ(f.failedUnitCount(), 2u);
}

// ------------------------------------------------------ parseFaultSpec

TEST(ParseFaultSpec, AcceptsAllClasses)
{
    FaultParams p;
    std::string err;
    EXPECT_TRUE(parseFaultSpec("unit:12@5M", 8, p, &err)) << err;
    ASSERT_EQ(p.unitFailures.size(), 1u);
    EXPECT_EQ(p.unitFailures[0].unit, 12u);
    EXPECT_EQ(p.unitFailures[0].at, 5'000'000u);

    EXPECT_TRUE(parseFaultSpec("stack:1@2K", 8, p, &err)) << err;
    EXPECT_EQ(p.unitFailures.size(), 9u); // 1 + the stack's 8 units
    EXPECT_EQ(p.unitFailures[1].unit, 8u);
    EXPECT_EQ(p.unitFailures.back().unit, 15u);

    EXPECT_TRUE(parseFaultSpec("cxl-transient:p=0.5", 8, p, &err)) << err;
    EXPECT_DOUBLE_EQ(p.cxlTransientProb, 0.5);
    EXPECT_TRUE(parseFaultSpec("cxl-poison:p=1e-5", 8, p, &err)) << err;
    EXPECT_DOUBLE_EQ(p.cxlPoisonProb, 1e-5);
    EXPECT_TRUE(parseFaultSpec("dram-bit:p=0.25", 8, p, &err)) << err;
    EXPECT_DOUBLE_EQ(p.dramBitProb, 0.25);
    EXPECT_TRUE(p.anyFaults());
}

TEST(ParseFaultSpec, RejectsMalformedSpecs)
{
    FaultParams p;
    std::string err;
    for (const char* bad :
         {"", "unit", "unit:", "unit:3", "unit:3@", "unit:x@5M",
          "unit:3@5X", "unit:3@-1", "cxl-poison", "cxl-poison:0.5",
          "cxl-poison:p=", "cxl-poison:p=2.0", "cxl-poison:p=-0.1",
          "cxl-poison:p=abc", "dram-bit:q=0.5", "nonsense:p=0.5"}) {
        err.clear();
        EXPECT_FALSE(parseFaultSpec(bad, 8, p, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
    // stack specs need units-per-stack.
    EXPECT_FALSE(parseFaultSpec("stack:0@1K", 0, p, &err));
}

// ------------------------------------------------- CXL degraded paths

TEST(ExtendedMemory, TransientErrorsRetryWithBackoff)
{
    const CxlParams cxl;
    ExtendedMemory clean(cxl, DramTimingParams::ddr5Extended(), 2000);
    ExtendedMemory faulty(cxl, DramTimingParams::ddr5Extended(), 2000);

    FaultParams p;
    p.cxlTransientProb = 1.0; // every attempt fails
    p.maxLinkRetries = 3;
    FaultInjector f(p);
    faulty.setFaultInjector(&f);

    const Cycles ok = clean.access(0x1000, 64, false, 0).done;
    const Cycles degraded = faulty.access(0x1000, 64, false, 0).done;
    EXPECT_GT(degraded, ok); // retries cost link latency + backoff
    EXPECT_EQ(faulty.linkRetries(), 3u);
    EXPECT_EQ(faulty.retriesExhausted(), 1u);
}

TEST(ExtendedMemory, PoisonedReadIsFlagged)
{
    ExtendedMemory ext(CxlParams{}, DramTimingParams::ddr5Extended(),
                       2000);
    FaultParams p;
    p.cxlPoisonProb = 1.0;
    FaultInjector f(p);
    ext.setFaultInjector(&f);

    EXPECT_TRUE(ext.access(0x2000, 64, false, 0).poisoned);
    EXPECT_FALSE(ext.access(0x2000, 64, true, 0).poisoned); // writes never
    EXPECT_EQ(ext.poisonedReads(), 1u);
}

// ------------------------------------- unit failure + reconfiguration

struct Rig
{
    MeshTopology topo{2, 1, 2, 2}; // 8 units
    NocModel noc{topo, NocParams{}};
    CxlParams cxlParams;
    ExtendedMemory ext{cxlParams, DramTimingParams::ddr5Extended(), 2000};
    StreamTable table;
    StreamCacheParams params;
    std::unique_ptr<StreamCacheController> cache;

    Rig()
    {
        params.sampler.minCapacityBytes = 1_KiB;
        params.sampler.maxCapacityBytes = 256_KiB;
        params.sampler.numCapacities = 8;
        params.affineCapBytesPerUnit = 64_KiB;
        cache = std::make_unique<StreamCacheController>(
            params, table, noc, ext, DramTimingParams::hbm3Unit(),
            256_KiB, 2000);
    }

    StreamId
    addStream(StreamType type, std::uint64_t bytes, std::uint32_t elem)
    {
        auto cfg = StreamConfig::dense(
            "s" + std::to_string(table.numStreams()), type,
            0x100000 + table.numStreams() * 0x1000000, bytes, elem);
        cfg.readOnly = true;
        return table.configureStream(cfg);
    }

    ConfigParams
    configParams() const
    {
        ConfigParams p;
        p.numUnits = cache->numUnits();
        p.rowsPerUnit = cache->rowsPerUnit();
        p.rowBytes = cache->rowBytes();
        p.dramLatency = 40;
        return p;
    }

    /** Drive accesses from every core so samplers observe demand. */
    Cycles
    touchAll(const std::vector<StreamId>& sids, Cycles t)
    {
        for (const StreamId sid : sids) {
            const StreamConfig& cfg = table.stream(sid);
            for (CoreId c = 0; c < cache->numUnits(); ++c) {
                for (ElemId e = 0; e < 64; ++e) {
                    Access acc;
                    acc.sid = sid;
                    acc.elem = (e * 7 + c) % cfg.numElems();
                    acc.addr = cfg.addrOf(acc.elem);
                    acc.size = cfg.elemSize;
                    acc.isWrite = false;
                    t = cache->access(c, acc, t).done;
                }
            }
        }
        return t;
    }
};

TEST(UnitFailure, EmergencyReconfigExcludesFailedUnit)
{
    Rig rig;
    std::vector<StreamId> sids;
    sids.push_back(rig.addStream(StreamType::Indirect, 128_KiB, 8));
    sids.push_back(rig.addStream(StreamType::Affine, 128_KiB, 8));

    NdpRuntime runtime(
        RuntimeParams{}, *rig.cache,
        std::make_unique<NdpExtConfigurator>(rig.configParams(), rig.noc));
    runtime.start();
    rig.touchAll(sids, 0);

    const UnitId dead = 3;
    runtime.onUnitFailure(dead);
    EXPECT_EQ(runtime.emergencyReconfigurations(), 1u);
    EXPECT_EQ(runtime.failedUnits(), 1u);
    EXPECT_TRUE(runtime.unitFailed(dead));
    EXPECT_TRUE(rig.cache->unitFailed(dead));

    // Acceptance: the post-failure configuration allocates zero capacity
    // on the failed unit, for every stream.
    std::size_t allocated = 0;
    for (const StreamId sid : sids) {
        const StreamAlloc* alloc = rig.cache->remap().alloc(sid);
        if (alloc == nullptr) {
            continue;
        }
        ++allocated;
        EXPECT_EQ(alloc->shareRows[dead], 0u)
            << "stream " << sid << " still holds rows on the dead unit";
        EXPECT_GT(alloc->totalRows(), 0u)
            << "stream " << sid << " lost all capacity";
    }
    EXPECT_GT(allocated, 0u) << "emergency config allocated nothing";

    // Accesses after the failure never touch the dead unit's DRAM (the
    // controller asserts on any DRAM access to a failed unit) and the
    // accounting invariant still holds.
    rig.touchAll(sids, 1'000'000);
    const auto& bd = rig.cache->breakdown();
    EXPECT_EQ(rig.cache->cacheHits() + rig.cache->cacheMisses()
                  + rig.cache->uncachedStreamAccesses()
                  + rig.cache->bypasses(),
              bd.requests);

    // A second failure of the same unit is a no-op.
    runtime.onUnitFailure(dead);
    EXPECT_EQ(runtime.emergencyReconfigurations(), 1u);
    EXPECT_EQ(runtime.failedUnits(), 1u);
}

TEST(UnitFailure, StaticPolicyRedirectsInsteadOfReconfiguring)
{
    Rig rig;
    std::vector<StreamId> sids;
    sids.push_back(rig.addStream(StreamType::Indirect, 256_KiB, 8));

    NdpRuntime runtime(
        RuntimeParams{}, *rig.cache,
        std::make_unique<StaticEqualConfigurator>(*rig.cache));
    runtime.start();
    rig.touchAll(sids, 0);

    runtime.onUnitFailure(2);
    EXPECT_EQ(runtime.emergencyReconfigurations(), 0u);

    // The dead unit's share is still in the remap table; accesses that
    // hash there must redirect to extended memory, not wedge or abort.
    rig.touchAll(sids, 2'000'000);
    EXPECT_GT(rig.cache->failedUnitRedirects(), 0u);
    const auto& bd = rig.cache->breakdown();
    EXPECT_EQ(rig.cache->cacheHits() + rig.cache->cacheMisses()
                  + rig.cache->uncachedStreamAccesses()
                  + rig.cache->bypasses(),
              bd.requests);
}

TEST(UnitFailure, ConfigAlgorithmExcludesFailedUnits)
{
    Rig rig;
    const StreamId sid = rig.addStream(StreamType::Indirect, 512_KiB, 8);

    ConfigAlgorithm algo(rig.configParams(), rig.noc);
    StreamDemand d;
    d.sid = sid;
    d.granuleBytes = 64;
    d.readOnly = true;
    d.footprintBytes = 512_KiB;
    std::vector<std::uint64_t> caps;
    for (std::uint64_t c = 1_KiB; c <= 256_KiB; c *= 2) {
        caps.push_back(c);
    }
    std::vector<double> misses(caps.size(), 100.0);
    d.curve = MissCurve(caps, std::move(misses));
    d.curve.setZeroMisses(1000.0);
    for (UnitId u = 0; u < rig.cache->numUnits(); ++u) {
        d.accUnits.push_back(u);
        d.accCounts.push_back(100);
    }

    std::vector<bool> failed(rig.cache->numUnits(), false);
    failed[0] = failed[5] = true;
    algo.setFailedUnits(failed);
    const auto out = algo.run({d});
    ASSERT_FALSE(out.empty());
    for (const auto& [id, alloc] : out) {
        (void)id;
        EXPECT_EQ(alloc.shareRows[0], 0u);
        EXPECT_EQ(alloc.shareRows[5], 0u);
    }
}

// ------------------------------------------------- end-to-end degraded

SystemConfig
tinyConfig()
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 200'000;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

TEST(DegradedRun, SurvivesUnitFailureWithNonzeroCounters)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());

    SystemConfig cfg = tinyConfig();
    cfg.faults.seed = 3;
    cfg.faults.unitFailures = {{5, 100'000}};
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    const auto res = sys.run(*w);

    // Acceptance: the run completes with nonzero degraded counters.
    EXPECT_GT(res.cycles, 100'000u);
    EXPECT_EQ(res.accesses, 8u * 4000u);
    EXPECT_EQ(res.degraded.failedUnits, 1u);
    EXPECT_EQ(res.degraded.emergencyReconfigs, 1u);
    EXPECT_GT(res.degraded.cyclesDegraded, 0u);
    EXPECT_TRUE(res.degraded.any());
}

TEST(DegradedRun, AllFaultClassesPreserveAccounting)
{
    auto w = makeWorkload("bfs");
    w->prepare(tinyParams());

    SystemConfig cfg = tinyConfig();
    cfg.faults.seed = 11;
    cfg.faults.cxlTransientProb = 1e-2;
    cfg.faults.cxlPoisonProb = 1e-3;
    cfg.faults.dramBitProb = 1e-2;
    cfg.faults.unitFailures = {{2, 100'000}};
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    const auto res = sys.run(*w);

    EXPECT_GT(res.degraded.linkRetries, 0u);
    EXPECT_GT(res.degraded.dramFaultRefetches, 0u);
    EXPECT_EQ(res.degraded.failedUnits, 1u);
    // hits + misses + uncached + bypasses == requests, faults and all.
    const double hits = res.stats.get("cache.hits");
    const double misses = res.stats.get("cache.misses");
    const double uncached = res.stats.get("cache.uncached");
    const double bypasses = res.stats.get("cache.bypasses");
    EXPECT_DOUBLE_EQ(hits + misses + uncached + bypasses,
                     static_cast<double>(res.bd.requests));
}

TEST(DegradedRun, DeterministicForSameSeed)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());

    auto faulty = []() {
        SystemConfig cfg = tinyConfig();
        cfg.faults.seed = 21;
        cfg.faults.cxlTransientProb = 1e-3;
        cfg.faults.dramBitProb = 1e-3;
        cfg.faults.unitFailures = {{1, 120'000}};
        return cfg;
    };
    NdpSystem s1(faulty(), PolicyKind::NdpExt);
    NdpSystem s2(faulty(), PolicyKind::NdpExt);
    const auto r1 = s1.run(*w);
    const auto r2 = s2.run(*w);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.bd.requests, r2.bd.requests);
    EXPECT_EQ(r1.degraded.linkRetries, r2.degraded.linkRetries);
    EXPECT_EQ(r1.degraded.dramFaultRefetches,
              r2.degraded.dramFaultRefetches);
    EXPECT_EQ(r1.degraded.failedUnitRedirects,
              r2.degraded.failedUnitRedirects);
    EXPECT_DOUBLE_EQ(r1.missRate, r2.missRate);
}

TEST(DegradedRun, FaultFreeRunsAreUnaffectedByWiring)
{
    // The fault hooks must cost nothing when no injector is attached:
    // a run with default (empty) FaultParams behaves identically to the
    // seed simulator and reports all-zero degraded counters.
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    NdpSystem sys(tinyConfig(), PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    EXPECT_FALSE(res.degraded.any());
    EXPECT_EQ(res.degraded.cyclesDegraded, 0u);
}

} // namespace
} // namespace ndpext
