/** Tests for the trace-file workload front end. */

#include <gtest/gtest.h>

#include <sstream>

#include "system/ndp_system.h"
#include "workloads/trace_workload.h"

namespace ndpext {
namespace {

const char* kSmallTrace = R"(# a tiny two-stream trace
stream edges affine 0x100000 4096 4 ro
stream ranks indirect 0x200000 8192 8 rw

a 0 0 0 r 2
a 0 0 1 r
a 1 1 7 w 3
a 0 1 3 r
a 1 0 100 r
)";

TEST(TraceWorkload, ParsesStreamsAndAccesses)
{
    std::istringstream in(kSmallTrace);
    auto w = TraceWorkload::parse(in, 2);
    EXPECT_TRUE(w->prepared());
    ASSERT_EQ(w->streamConfigs().size(), 2u);
    EXPECT_EQ(w->streamConfigs()[0].name, "edges");
    EXPECT_EQ(w->streamConfigs()[0].type, StreamType::Affine);
    EXPECT_TRUE(w->streamConfigs()[0].readOnly);
    EXPECT_EQ(w->streamConfigs()[1].elemSize, 8u);
    EXPECT_FALSE(w->streamConfigs()[1].readOnly);
    EXPECT_EQ(w->accessCount(0), 3u);
    EXPECT_EQ(w->accessCount(1), 2u);
}

TEST(TraceWorkload, GeneratorReplaysInOrder)
{
    std::istringstream in(kSmallTrace);
    auto w = TraceWorkload::parse(in, 2);
    auto gen = w->makeGenerator(0);
    Access a;
    ASSERT_TRUE(gen->next(a));
    EXPECT_EQ(a.sid, 0u);
    EXPECT_EQ(a.elem, 0u);
    EXPECT_EQ(a.addr, 0x100000u);
    EXPECT_FALSE(a.isWrite);
    EXPECT_EQ(a.computeCycles, 2u);
    ASSERT_TRUE(gen->next(a));
    EXPECT_EQ(a.elem, 1u);
    EXPECT_EQ(a.addr, 0x100004u);
    ASSERT_TRUE(gen->next(a));
    EXPECT_EQ(a.sid, 1u);
    EXPECT_EQ(a.elem, 3u);
    EXPECT_FALSE(gen->next(a));
}

TEST(TraceWorkload, WritesAndComputeParsed)
{
    std::istringstream in(kSmallTrace);
    auto w = TraceWorkload::parse(in, 2);
    auto gen = w->makeGenerator(1);
    Access a;
    ASSERT_TRUE(gen->next(a));
    EXPECT_TRUE(a.isWrite);
    EXPECT_EQ(a.computeCycles, 3u);
}

TEST(TraceWorkload, RegistersIntoStreamTable)
{
    std::istringstream in(kSmallTrace);
    auto w = TraceWorkload::parse(in, 2);
    StreamTable table;
    w->registerStreams(table);
    EXPECT_EQ(table.numStreams(), 2u);
    EXPECT_EQ(table.findByAddr(0x100010), 0u);
}

TEST(TraceWorkload, RunsThroughTheFullSystem)
{
    // Build a trace with enough accesses to exercise the cache, sized
    // for a tiny 8-unit machine.
    std::ostringstream trace;
    trace << "stream data indirect 0x100000 65536 8 ro\n";
    for (int core = 0; core < 8; ++core) {
        for (int i = 0; i < 300; ++i) {
            trace << "a " << core << " 0 " << ((core * 131 + i * 7) % 8192)
                  << " r\n";
        }
    }
    std::istringstream in(trace.str());
    auto w = TraceWorkload::parse(in, 8);

    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2;
    cfg.unitCacheBytes = 256_KiB;
    cfg.finalize();
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    const auto res = sys.run(*w);
    EXPECT_EQ(res.accesses, 8u * 300u);
    EXPECT_GT(res.cycles, 0u);
}

TEST(TraceWorkload, MalformedInputIsFatal)
{
    {
        std::istringstream in("bogus line\n");
        EXPECT_DEATH(TraceWorkload::parse(in, 1), "unknown record");
    }
    {
        std::istringstream in("stream s affine 0x0 64 8\n"); // missing rw
        EXPECT_DEATH(TraceWorkload::parse(in, 1), "malformed stream");
    }
    {
        std::istringstream in(
            "stream s affine 0x1000 64 8 ro\na 0 5 0 r\n");
        EXPECT_DEATH(TraceWorkload::parse(in, 1), "unknown sid");
    }
    {
        std::istringstream in(
            "stream s affine 0x1000 64 8 ro\na 9 0 0 r\n");
        EXPECT_DEATH(TraceWorkload::parse(in, 1), "core 9");
    }
    {
        std::istringstream in(
            "stream s affine 0x1000 64 8 ro\na 0 0 999 r\n");
        EXPECT_DEATH(TraceWorkload::parse(in, 1), "out of range");
    }
}

TEST(TraceWorkload, RecoverableParseReportsSourceAndLine)
{
    std::istringstream in("stream s affine 0x1000 64 8 ro\n"
                          "a 0 0 0 r\n"
                          "bogus 1 2 3\n");
    std::string error;
    auto w = TraceWorkload::parse(in, 1, "inline.trace", &error);
    EXPECT_EQ(w, nullptr);
    EXPECT_NE(error.find("inline.trace:3: "), std::string::npos) << error;
    EXPECT_NE(error.find("unknown record 'bogus'"), std::string::npos)
        << error;
}

TEST(TraceWorkload, ParseFileDiagnosesCorruptFixture)
{
    const std::string path =
        std::string(NDPEXT_EXAMPLES_DIR) + "/data/corrupt.trace";
    std::string error;
    auto w = TraceWorkload::parseFile(path, 1, &error);
    EXPECT_EQ(w, nullptr);
    // The defect sits on line 5 of the fixture; the diagnostic must name
    // the file and that line so users can fix their own traces.
    EXPECT_NE(error.find("corrupt.trace:5: "), std::string::npos) << error;
    EXPECT_NE(error.find("unknown record"), std::string::npos) << error;
}

TEST(TraceWorkload, ParseFileLoadsSampleFixture)
{
    const std::string path =
        std::string(NDPEXT_EXAMPLES_DIR) + "/data/sample.trace";
    std::string error;
    auto w = TraceWorkload::parseFile(path, 4, &error);
    ASSERT_NE(w, nullptr) << error;
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(w->streamConfigs().size(), 2u);
}

TEST(TraceWorkload, ParseFileMissingFileIsRecoverable)
{
    std::string error;
    auto w = TraceWorkload::parseFile("/nonexistent/nope.trace", 1, &error);
    EXPECT_EQ(w, nullptr);
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

} // namespace
} // namespace ndpext
