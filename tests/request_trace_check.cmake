# Request-trace forensics gate (ctest): a short overloaded serving run
# with --trace-requests must emit a schema-clean exemplar JSONL and a
# flow-linked trace (`ndpext_report check`), `report trace` must name a
# dominant stage per tenant, `report watch` must read the heartbeat of
# the finished run, and `report slo` must print `n/a` -- never nan/inf
# -- for a tenant that departed before the run ended. Invoked with
# -DSIM=... -DREPORT=... -DOUT_DIR=... (see tests/CMakeLists.txt).

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
    COMMAND ${SIM}
            --tenant=name=emb,workload=recsys,arrival=fixed,period=3000,qos=reserved,reserve-pct=25,slo=60000
            --tenant=name=gone,workload=mv,arrival=fixed,period=4000,slo=80000,depart=2
            --horizon=150000 --epoch=20000 --accesses=4000
            --telemetry=${OUT_DIR}/run --telemetry-sample=16
            --trace-requests=4
            --stats-json=${OUT_DIR}/run.stats.json
    RESULT_VARIABLE sim_rc
    OUTPUT_QUIET)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR "ndpext_sim --trace-requests failed (rc=${sim_rc})")
endif()

foreach(suffix metrics.jsonl trace.json decisions.jsonl exemplars.jsonl
        heartbeat.json)
    if(NOT EXISTS ${OUT_DIR}/run.${suffix})
        message(FATAL_ERROR "missing telemetry file run.${suffix}")
    endif()
endforeach()

# Schema gate: validates the exemplar lines (stage sums, enums) and the
# flow-event pairing in the trace alongside the base telemetry schema.
execute_process(
    COMMAND ${REPORT} check ${OUT_DIR}/run
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "ndpext_report check failed: ${check_out}${check_err}")
endif()

# Tail exemplars were actually retained for the p99 view.
file(STRINGS ${OUT_DIR}/run.exemplars.jsonl slow_lines
     REGEX "\"kind\":\"slow\"")
list(LENGTH slow_lines num_slow)
if(num_slow LESS 4)
    message(FATAL_ERROR
        "expected >= 4 slow exemplars, found ${num_slow}")
endif()

# Span forensics: full per-stage breakdown plus per-tenant p99 blame.
execute_process(
    COMMAND ${REPORT} trace ${OUT_DIR}/run
    RESULT_VARIABLE trace_rc
    OUTPUT_VARIABLE trace_out
    ERROR_VARIABLE trace_err)
if(NOT trace_rc EQUAL 0)
    message(FATAL_ERROR
        "ndpext_report trace failed: ${trace_out}${trace_err}")
endif()
if(NOT trace_out MATCHES "p99-dominant stage per tenant:")
    message(FATAL_ERROR "report trace lacks the blame line:\n${trace_out}")
endif()
foreach(name emb gone)
    if(NOT trace_out MATCHES "${name}")
        message(FATAL_ERROR
            "report trace lost tenant ${name}:\n${trace_out}")
    endif()
endforeach()

# Live monitoring view against the finished run's heartbeat.
execute_process(
    COMMAND ${REPORT} watch ${OUT_DIR}/run
    RESULT_VARIABLE watch_rc
    OUTPUT_VARIABLE watch_out
    ERROR_VARIABLE watch_err)
if(NOT watch_rc EQUAL 0)
    message(FATAL_ERROR
        "ndpext_report watch failed: ${watch_out}${watch_err}")
endif()
if(NOT watch_out MATCHES "finished")
    message(FATAL_ERROR "report watch missed completion:\n${watch_out}")
endif()

# SLO trend regression: tenant `gone` departs after epoch 2, so later
# epochs have no new retirements for it -- the trend column must print
# n/a, and nan/inf must never leak into the report.
execute_process(
    COMMAND ${REPORT} slo ${OUT_DIR}/run
    RESULT_VARIABLE slo_rc
    OUTPUT_VARIABLE slo_out
    ERROR_VARIABLE slo_err)
if(NOT slo_rc EQUAL 0)
    message(FATAL_ERROR "ndpext_report slo failed: ${slo_out}${slo_err}")
endif()
if(NOT slo_out MATCHES "n/a")
    message(FATAL_ERROR
        "report slo should print n/a for the departed tenant:\n${slo_out}")
endif()
# Word boundary: "tenant" contains "nan", so anchor on a non-letter.
string(TOLOWER "${slo_out}" slo_lower)
if(slo_lower MATCHES "(^|[^a-z])-?(nan|inf)")
    message(FATAL_ERROR "report slo leaked nan/inf:\n${slo_out}")
endif()
