/** Tests for the CXL extended-memory model. */

#include <gtest/gtest.h>

#include "cxl/extended_memory.h"

namespace ndpext {
namespace {

constexpr std::uint64_t kFreq = 2000;

ExtendedMemory
makeExt(Cycles link_latency = 400)
{
    CxlParams cxl;
    cxl.linkLatencyCycles = link_latency;
    return ExtendedMemory(cxl, DramTimingParams::ddr5Extended(), kFreq);
}

TEST(ExtendedMemory, PaysLinkRoundTrip)
{
    auto ext = makeExt(400);
    const auto r = ext.access(0x1000, 64, false, 0);
    // At least two link traversals plus a DRAM access.
    EXPECT_GE(r.done, 2u * 400u);
}

TEST(ExtendedMemory, LatencyScalesWithLink)
{
    auto slow = makeExt(400);
    auto fast = makeExt(100);
    const auto rs = slow.access(0x1000, 64, false, 0);
    const auto rf = fast.access(0x1000, 64, false, 0);
    EXPECT_EQ(rs.done - rf.done, 2u * 300u);
}

TEST(ExtendedMemory, LinkBandwidthQueues)
{
    auto ext = makeExt(10);
    // Saturate the link with large transfers issued at the same time.
    const auto r1 = ext.access(0, 4096, false, 0);
    const auto r2 = ext.access(1_MiB, 4096, false, 0);
    EXPECT_GT(r2.done, r1.done);
}

TEST(ExtendedMemory, CountsAccessesAndEnergy)
{
    auto ext = makeExt();
    ext.access(0, 64, false, 0);
    ext.access(4096, 64, true, 0);
    EXPECT_EQ(ext.accesses(), 2u);
    EXPECT_GT(ext.linkEnergyNj(), 0.0);
    EXPECT_GT(ext.dramEnergyNj(), 0.0);
}

TEST(ExtendedMemory, ResetClears)
{
    auto ext = makeExt();
    ext.access(0, 64, false, 0);
    ext.reset();
    EXPECT_EQ(ext.accesses(), 0u);
    EXPECT_DOUBLE_EQ(ext.linkEnergyNj(), 0.0);
}

TEST(ExtendedMemory, ReportPopulatesStats)
{
    auto ext = makeExt();
    ext.access(0, 64, false, 0);
    StatGroup stats;
    ext.report(stats, "ext");
    EXPECT_DOUBLE_EQ(stats.get("ext.accesses"), 1.0);
    EXPECT_GT(stats.get("ext.dram.bytesRead"), 0.0);
}

/** Property: completion time is monotone in request time. */
class CxlMonotoneTest : public ::testing::TestWithParam<Cycles>
{
};

TEST_P(CxlMonotoneTest, LaterRequestsFinishLater)
{
    auto ext = makeExt();
    const Cycles t = GetParam();
    const auto r1 = ext.access(0, 64, false, t);
    const auto r2 = ext.access(1_MiB, 64, false, t + 10000);
    EXPECT_GT(r2.done, r1.done);
    EXPECT_GE(r1.done, t);
}

INSTANTIATE_TEST_SUITE_P(StartTimes, CxlMonotoneTest,
                         ::testing::Values(0u, 100u, 12345u, 1000000u));

} // namespace
} // namespace ndpext
