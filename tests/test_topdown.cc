/**
 * Top-down CPI stack and per-stream cost attribution invariants.
 *
 * Unit level: the core's stall windows are split over the blocking
 * packet's LatencyBreakdown with largest-remainder rounding, so the six
 * integer buckets (five service classes + mshrQueue) sum EXACTLY to
 * memStallCycles(), and every stall cycle lands on the blocking packet's
 * stream id.
 *
 * System level: the machine-wide stack, per-stream stall cycles, service
 * cycles, and attributed energy must cover the machine totals — exactly
 * for integer cycle counters, and within float-association slack for
 * derived energies — and all of it bit-identical for any --threads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "sim/packet.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

// --- unit level: InOrderCore stall attribution --------------------------

/** Generator replaying a fixed access list. */
class ListGen : public AccessGenerator
{
  public:
    explicit ListGen(std::vector<Access> accs) : accs_(std::move(accs)) {}

    bool
    next(Access& out) override
    {
        if (pos_ >= accs_.size()) {
            return false;
        }
        out = accs_[pos_++];
        return true;
    }

  private:
    std::vector<Access> accs_;
    std::size_t pos_ = 0;
};

/** Memory stub: fixed service latency with a fixed breakdown split. */
class FixedLatencyMem : public MemPort
{
  public:
    FixedLatencyMem(Cycles metadata, Cycles ext_mem)
        : MemPort("stub"), metadata_(metadata), extMem_(ext_mem)
    {
    }

    void
    recvAtomic(Packet& pkt) override
    {
        pkt.bd.metadata += metadata_;
        pkt.bd.extMem += extMem_;
        pkt.ready += metadata_ + extMem_;
    }

  private:
    Cycles metadata_;
    Cycles extMem_;
};

Access
missAt(std::uint64_t line, StreamId sid)
{
    Access a;
    a.addr = line * kCachelineBytes;
    a.sid = sid;
    a.computeCycles = 0;
    return a;
}

TEST(CoreStall, LargestRemainderSplitSumsExactly)
{
    CoreParams params;
    params.mshrs = 1; // strict stall-on-miss: every wait is attributed
    params.l1HitCycles = 2;
    InOrderCore core(0, params);
    FixedLatencyMem mem(3, 7); // service 10: 30% metadata, 70% extMem
    core.memPort().bind(mem);

    ListGen gen({missAt(0, 5), missAt(1, 5)});
    while (core.step(gen)) {
    }

    // Miss 1 issues at 0, frees at 10; the core moves to 2 (issue slot).
    // Miss 2 waits 10-2 = 8 cycles on a 3/7 split: floor shares 2 + 5,
    // the leftover cycle goes to the largest remainder (extMem, 6 vs 4).
    // It issues at 10, frees at 20; the drain from 12 waits another 8
    // with the same split. Total stall 16 = metadata 4 + extMem 12.
    EXPECT_EQ(core.memStallCycles(), 16u);
    EXPECT_EQ(core.stallBreakdown().metadata, 4u);
    EXPECT_EQ(core.stallBreakdown().extMem, 12u);
    EXPECT_EQ(core.stallBreakdown().mshrQueue, 0u);
    EXPECT_EQ(core.stallBreakdown().total(), core.memStallCycles());

    // Cycle identity and stream attribution.
    EXPECT_EQ(core.now(),
              core.computeCycles() + core.l1Cycles()
                  + core.memStallCycles());
    EXPECT_EQ(core.streamStallCycles(5), core.memStallCycles());
    EXPECT_EQ(core.noStreamStallCycles(), 0u);
}

TEST(CoreStall, ZeroServiceBreakdownFallsToMshrQueue)
{
    // A stub that advances time without recording any breakdown: the
    // stall has no service profile to blame, so it must land in the
    // explicit queueing bucket rather than vanish.
    class OpaqueMem : public MemPort
    {
      public:
        OpaqueMem() : MemPort("opaque") {}
        void
        recvAtomic(Packet& pkt) override
        {
            pkt.ready += 10;
        }
    } mem;

    CoreParams params;
    params.mshrs = 1;
    InOrderCore core(0, params);
    core.memPort().bind(mem);

    ListGen gen({missAt(0, kNoStream), missAt(1, kNoStream)});
    while (core.step(gen)) {
    }

    EXPECT_GT(core.memStallCycles(), 0u);
    EXPECT_EQ(core.stallBreakdown().mshrQueue, core.memStallCycles());
    EXPECT_EQ(core.stallBreakdown().total(), core.memStallCycles());
    EXPECT_EQ(core.noStreamStallCycles(), core.memStallCycles());
}

TEST(CoreStall, SplitIsExactForAdversarialRatios)
{
    // Sweep awkward wait/service ratios; the rounded shares must sum to
    // the wait in every case (the invariant the report tool later
    // re-checks from JSON).
    for (Cycles meta = 0; meta <= 13; ++meta) {
        for (Cycles ext = 1; ext <= 17; ext += 3) {
            CoreParams params;
            params.mshrs = 1;
            InOrderCore core(0, params);
            FixedLatencyMem mem(meta, ext);
            core.memPort().bind(mem);
            ListGen gen({missAt(0, 1), missAt(1, 2), missAt(2, 3)});
            while (core.step(gen)) {
            }
            EXPECT_EQ(core.stallBreakdown().total(),
                      core.memStallCycles())
                << "meta=" << meta << " ext=" << ext;
            EXPECT_EQ(core.streamStallCycles(1) + core.streamStallCycles(2)
                          + core.streamStallCycles(3)
                          + core.noStreamStallCycles(),
                      core.memStallCycles());
        }
    }
}

// --- system level: machine-wide coverage --------------------------------

SystemConfig
tinyConfig(std::uint32_t threads)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2;
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 200'000;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

RunResult
tinyRun(std::uint32_t threads)
{
    auto w = makeWorkload("pr");
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    w->prepare(p);
    NdpSystem sys(tinyConfig(threads), PolicyKind::NdpExt);
    return sys.run(*w);
}

/** Names of the per-stream metric roots present in `stats`. */
std::vector<std::string>
streamBases(const StatGroup& stats)
{
    std::vector<std::string> bases;
    const std::string suffix = ".stallCycles";
    for (const auto& [name, value] : stats.raw()) {
        (void)value;
        if (name.rfind("stream.", 0) == 0 && name.size() > suffix.size()
            && name.compare(name.size() - suffix.size(), suffix.size(),
                            suffix)
                == 0) {
            bases.push_back(name.substr(0, name.size() - suffix.size()));
        }
    }
    return bases;
}

TEST(TopdownSystem, StallBucketsPartitionMemStallCycles)
{
    const RunResult res = tinyRun(1);
    const StatGroup& s = res.stats;
    ASSERT_TRUE(s.has("cores.memStallCycles"));
    const double bucket_sum = s.get("cores.stall.metadata")
        + s.get("cores.stall.icnIntra") + s.get("cores.stall.icnInter")
        + s.get("cores.stall.dramCache") + s.get("cores.stall.extMem")
        + s.get("cores.stall.mshrQueue");
    EXPECT_EQ(bucket_sum, s.get("cores.memStallCycles"));
    EXPECT_GT(s.get("cores.memStallCycles"), 0.0);

    // Per-core: identical invariant plus the cycle identity.
    for (int i = 0; s.has("core" + std::to_string(i) + ".cycles"); ++i) {
        const std::string c = "core" + std::to_string(i);
        const double per_core = s.get(c + ".stall.metadata")
            + s.get(c + ".stall.icnIntra") + s.get(c + ".stall.icnInter")
            + s.get(c + ".stall.dramCache") + s.get(c + ".stall.extMem")
            + s.get(c + ".stall.mshrQueue");
        EXPECT_EQ(per_core, s.get(c + ".memStallCycles")) << c;
        EXPECT_EQ(s.get(c + ".cycles"),
                  s.get(c + ".computeCycles") + s.get(c + ".l1Cycles")
                      + s.get(c + ".memStallCycles"))
            << c;
    }
}

TEST(TopdownSystem, PerStreamCyclesCoverMachineTotals)
{
    const RunResult res = tinyRun(1);
    const StatGroup& s = res.stats;
    const std::vector<std::string> bases = streamBases(s);
    ASSERT_GE(bases.size(), 2u); // at least one stream + "stream.none"

    double stall = 0.0;
    double metadata = 0.0;
    double icn_intra = 0.0;
    double icn_inter = 0.0;
    double dram_cache = 0.0;
    double ext_mem = 0.0;
    for (const std::string& base : bases) {
        stall += s.get(base + ".stallCycles");
        metadata += s.get(base + ".serviceCycles.metadata");
        icn_intra += s.get(base + ".serviceCycles.icnIntra");
        icn_inter += s.get(base + ".serviceCycles.icnInter");
        dram_cache += s.get(base + ".serviceCycles.dramCache");
        ext_mem += s.get(base + ".serviceCycles.extMem");
    }
    // Integer counters: exact coverage, no cycle left behind.
    EXPECT_EQ(stall, s.get("cores.memStallCycles"));
    EXPECT_EQ(metadata, static_cast<double>(res.bd.metadata));
    EXPECT_EQ(icn_intra, static_cast<double>(res.bd.icnIntra));
    EXPECT_EQ(icn_inter, static_cast<double>(res.bd.icnInter));
    EXPECT_EQ(dram_cache, static_cast<double>(res.bd.dramCache));
    EXPECT_EQ(ext_mem, static_cast<double>(res.bd.extMem));
}

TEST(TopdownSystem, PerStreamEnergyCoversMachineTotals)
{
    const RunResult res = tinyRun(1);
    const StatGroup& s = res.stats;

    double icn = 0.0;
    double link = 0.0;
    double ext_dram = 0.0;
    double dram_cache = 0.0;
    double sram = 0.0;
    for (const std::string& base : streamBases(s)) {
        icn += s.get(base + ".energyNj.icn");
        link += s.get(base + ".energyNj.cxlLink");
        ext_dram += s.get(base + ".energyNj.extDram");
        dram_cache += s.get(base + ".energyNj.dramCache");
        sram += s.get(base + ".energyNj.sram");
    }
    // Per-stream energies are derived from integer event counters with
    // the same coefficients the accumulators use, so the sums agree up
    // to floating-point association order.
    const double rel = 1e-9;
    EXPECT_NEAR(icn, res.energy.icnNj, rel * res.energy.icnNj);
    EXPECT_NEAR(link, res.energy.cxlLinkNj, rel * res.energy.cxlLinkNj);
    EXPECT_NEAR(ext_dram, res.energy.extDramNj,
                rel * res.energy.extDramNj);
    EXPECT_NEAR(dram_cache, res.energy.ndpDramNj,
                rel * res.energy.ndpDramNj);
    EXPECT_NEAR(sram, res.energy.sramNj, rel * res.energy.sramNj);
    EXPECT_GT(icn, 0.0);
    EXPECT_GT(ext_dram, 0.0);
}

TEST(TopdownSystem, AttributionBitIdenticalAcrossThreads)
{
    const RunResult a = tinyRun(1);
    const RunResult b = tinyRun(8);
    std::size_t compared = 0;
    for (const auto& [name, value] : a.stats.raw()) {
        if (name.rfind("stream.", 0) != 0 && name.rfind("cores.", 0) != 0) {
            continue;
        }
        ASSERT_TRUE(b.stats.has(name)) << name;
        EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << name;
        ++compared;
    }
    EXPECT_GT(compared, 20u);
}

} // namespace
} // namespace ndpext
