/**
 * tiny_json parser tests: the telemetry tool chain (ndpext_report,
 * ndpext_bench_compare, the ctest schema gate) trusts this parser, so
 * its edge cases are pinned here — deep nesting, escape handling
 * (\uXXXX, \\, \"), numeric overflow/underflow, and truncated input.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/tiny_json.h"

namespace ndpext {
namespace {

json::ValuePtr
mustParse(const std::string& text)
{
    std::string err;
    json::ValuePtr v = json::parse(text, &err);
    EXPECT_NE(v, nullptr) << "unexpected parse error: " << err;
    return v;
}

std::string
mustFail(const std::string& text)
{
    std::string err;
    json::ValuePtr v = json::parse(text, &err);
    EXPECT_EQ(v, nullptr) << "expected a parse error for: " << text;
    EXPECT_FALSE(err.empty());
    return err;
}

// --- basics -------------------------------------------------------------

TEST(TinyJson, ScalarsAndContainers)
{
    EXPECT_TRUE(mustParse("null")->isNull());
    EXPECT_TRUE(mustParse("true")->boolean);
    EXPECT_FALSE(mustParse("false")->boolean);
    EXPECT_DOUBLE_EQ(mustParse("-12.5e2")->number, -1250.0);
    EXPECT_EQ(mustParse("\"hi\"")->string, "hi");
    EXPECT_EQ(mustParse("[1, 2, 3]")->array.size(), 3u);
    const json::ValuePtr obj = mustParse("{\"a\": 1, \"b\": \"x\"}");
    EXPECT_DOUBLE_EQ(obj->num("a"), 1.0);
    EXPECT_EQ(obj->str("b"), "x");
    EXPECT_EQ(obj->get("absent"), nullptr);
}

TEST(TinyJson, ObjectPreservesInsertionOrderAndDuplicates)
{
    const json::ValuePtr v = mustParse("{\"z\": 1, \"a\": 2, \"z\": 3}");
    ASSERT_EQ(v->object.size(), 3u);
    EXPECT_EQ(v->object[0].first, "z");
    EXPECT_EQ(v->object[1].first, "a");
    // get() returns the first match; the duplicate stays addressable
    // through the raw member list.
    EXPECT_DOUBLE_EQ(v->num("z"), 1.0);
    EXPECT_DOUBLE_EQ(v->object[2].second->number, 3.0);
}

// --- deep nesting -------------------------------------------------------

TEST(TinyJson, DeeplyNestedArrays)
{
    // 1000 levels: enough to catch accidental O(depth^2) or a tiny
    // recursion budget, small enough to stay clear of stack limits.
    constexpr int kDepth = 1000;
    std::string text;
    text.reserve(2 * kDepth + 1);
    for (int i = 0; i < kDepth; ++i) {
        text += '[';
    }
    text += '7';
    for (int i = 0; i < kDepth; ++i) {
        text += ']';
    }
    const json::ValuePtr root = mustParse(text);
    const json::Value* v = root.get();
    for (int i = 0; i < kDepth; ++i) {
        ASSERT_TRUE(v->isArray());
        ASSERT_EQ(v->array.size(), 1u);
        v = v->array[0].get();
    }
    EXPECT_DOUBLE_EQ(v->number, 7.0);
}

TEST(TinyJson, DeeplyNestedObjects)
{
    constexpr int kDepth = 200;
    std::string text;
    for (int i = 0; i < kDepth; ++i) {
        text += "{\"k\":";
    }
    text += "true";
    for (int i = 0; i < kDepth; ++i) {
        text += '}';
    }
    const json::ValuePtr root = mustParse(text);
    const json::Value* v = root.get();
    for (int i = 0; i < kDepth; ++i) {
        ASSERT_TRUE(v->isObject());
        v = v->get("k");
        ASSERT_NE(v, nullptr);
    }
    EXPECT_TRUE(v->boolean);
}

// --- string escapes -----------------------------------------------------

TEST(TinyJson, SimpleEscapes)
{
    EXPECT_EQ(mustParse("\"a\\\\b\"")->string, "a\\b");
    EXPECT_EQ(mustParse("\"a\\\"b\"")->string, "a\"b");
    EXPECT_EQ(mustParse("\"a\\/b\"")->string, "a/b");
    EXPECT_EQ(mustParse("\"\\b\\f\\n\\r\\t\"")->string, "\b\f\n\r\t");
}

TEST(TinyJson, UnicodeEscapesAsciiAndReplacement)
{
    EXPECT_EQ(mustParse("\"\\u0041\"")->string, "A");
    EXPECT_EQ(mustParse("\"\\u007f\"")->string, "\x7f");
    // The parser documents ASCII-only telemetry: non-ASCII code points
    // (and surrogate halves) degrade to '?' rather than UTF-8.
    EXPECT_EQ(mustParse("\"\\u00e9\"")->string, "?");
    EXPECT_EQ(mustParse("\"\\ud83d\"")->string, "?");
    EXPECT_EQ(mustParse("\"x\\u0041y\\u2603z\"")->string, "xAy?z");
}

TEST(TinyJson, BadEscapesAreErrors)
{
    EXPECT_NE(mustFail("\"\\q\"").find("bad escape"), std::string::npos);
    // \u with fewer than 4 hex digits before end-of-input.
    EXPECT_NE(mustFail("\"\\u00\"").find("bad \\u escape"),
              std::string::npos);
}

// --- numbers: overflow / underflow --------------------------------------

TEST(TinyJson, NumericOverflowBecomesInfinity)
{
    // strtod semantics: magnitudes past DBL_MAX saturate to +/-inf
    // rather than failing the parse. Pin it so a parser swap can't
    // silently change how a corrupt metric reads.
    EXPECT_TRUE(std::isinf(mustParse("1e400")->number));
    EXPECT_GT(mustParse("1e400")->number, 0.0);
    EXPECT_TRUE(std::isinf(mustParse("-1e400")->number));
    EXPECT_LT(mustParse("-1e400")->number, 0.0);
}

TEST(TinyJson, NumericUnderflowBecomesZeroOrDenormal)
{
    const double tiny = mustParse("1e-400")->number;
    EXPECT_GE(tiny, 0.0);
    EXPECT_LT(tiny, std::numeric_limits<double>::min());
    EXPECT_DOUBLE_EQ(mustParse("-0.0")->number, 0.0);
}

TEST(TinyJson, LargeExactIntegers)
{
    // 2^53: the largest contiguously-representable integer. Cycle
    // counters stay below this; the parse must be exact there.
    EXPECT_DOUBLE_EQ(mustParse("9007199254740992")->number,
                     9007199254740992.0);
}

// --- truncated / malformed input ----------------------------------------

TEST(TinyJson, TruncatedInputsFailWithOffsets)
{
    EXPECT_NE(mustFail("").find("unexpected end of input"),
              std::string::npos);
    EXPECT_NE(mustFail("{\"a\": 1").find("expected ',' or '}'"),
              std::string::npos);
    EXPECT_NE(mustFail("[1, 2").find("expected ',' or ']'"),
              std::string::npos);
    EXPECT_NE(mustFail("\"abc").find("unterminated string"),
              std::string::npos);
    EXPECT_NE(mustFail("\"abc\\").find("unterminated string"),
              std::string::npos);
    EXPECT_NE(mustFail("{\"a\" 1}").find("expected ':'"),
              std::string::npos);
    EXPECT_NE(mustFail("tru").find("bad keyword"), std::string::npos);
    // Errors carry a byte offset for debuggability.
    EXPECT_NE(mustFail("[1, 2").find("offset"), std::string::npos);
}

TEST(TinyJson, TrailingGarbageRejected)
{
    EXPECT_NE(mustFail("{} x").find("trailing garbage"),
              std::string::npos);
    EXPECT_NE(mustFail("1 2").find("trailing garbage"), std::string::npos);
}

// --- JSONL --------------------------------------------------------------

TEST(TinyJson, ParseLinesSkipsBlanksAndNamesBadLine)
{
    std::vector<json::ValuePtr> out;
    std::string err;
    EXPECT_TRUE(json::parseLines("{\"a\":1}\n\n  \t\n{\"b\":2}\n", out,
                                 &err));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[1]->num("b"), 2.0);

    out.clear();
    EXPECT_FALSE(json::parseLines("{\"a\":1}\n{bad}\n", out, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
}

} // namespace
} // namespace ndpext
