/** Tests for the hash-addressed TagStore. */

#include <gtest/gtest.h>

#include "ndp/tag_store.h"

namespace ndpext {
namespace {

TEST(TagStore, DirectMappedMissThenHit)
{
    TagStore ts(16, 1);
    const auto r1 = ts.accessFill(3, 100, false);
    EXPECT_FALSE(r1.hit);
    EXPECT_FALSE(r1.evicted);
    const auto r2 = ts.accessFill(3, 100, false);
    EXPECT_TRUE(r2.hit);
}

TEST(TagStore, DirectMappedConflictEvicts)
{
    TagStore ts(16, 1);
    ts.accessFill(3, 100, false);
    const auto r = ts.accessFill(3, 200, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedKey, 100u);
    EXPECT_FALSE(ts.probe(3, 100));
    EXPECT_TRUE(ts.probe(3, 200));
}

TEST(TagStore, DirtyEviction)
{
    TagStore ts(16, 1);
    ts.accessFill(3, 100, true);
    const auto r = ts.accessFill(3, 200, false);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(TagStore, WriteOnHitSetsDirty)
{
    TagStore ts(16, 1);
    ts.accessFill(3, 100, false);
    ts.accessFill(3, 100, true);
    const auto r = ts.accessFill(3, 200, false);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(TagStore, TwoWayKeepsBoth)
{
    TagStore ts(16, 2); // 8 sets x 2 ways
    ts.accessFill(0, 100, false);
    ts.accessFill(8, 200, false); // same set (slot % 8)
    EXPECT_TRUE(ts.probe(0, 100));
    EXPECT_TRUE(ts.probe(8, 200));
}

TEST(TagStore, TwoWayLruEviction)
{
    TagStore ts(16, 2);
    ts.accessFill(0, 100, false);
    ts.accessFill(8, 200, false);
    ts.accessFill(0, 100, false); // touch 100; 200 is LRU
    const auto r = ts.accessFill(0, 300, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedKey, 200u);
}

TEST(TagStore, ZeroSlotsUnusable)
{
    TagStore ts(0, 1);
    EXPECT_FALSE(ts.usable());
    EXPECT_FALSE(ts.probe(0, 1));
}

TEST(TagStore, Occupancy)
{
    TagStore ts(16, 1);
    EXPECT_EQ(ts.occupancy(), 0u);
    ts.accessFill(1, 10, false);
    ts.accessFill(2, 20, false);
    EXPECT_EQ(ts.occupancy(), 2u);
    ts.accessFill(1, 30, false); // replace, not grow
    EXPECT_EQ(ts.occupancy(), 2u);
}

TEST(TagStore, CopyRangeCarriesTagsAndDirty)
{
    TagStore src(16, 1);
    src.accessFill(4, 40, true);
    src.accessFill(5, 50, false);
    TagStore dst(16, 1);
    dst.copyRange(src, 4, 10, 2);
    EXPECT_TRUE(dst.probe(10, 40));
    EXPECT_TRUE(dst.probe(11, 50));
    const auto r = dst.accessFill(10, 99, false);
    EXPECT_TRUE(r.evictedDirty); // dirty bit travelled
}

TEST(TagStore, CopyRangeSkipsOutOfBounds)
{
    TagStore src(4, 1);
    src.accessFill(3, 30, false);
    TagStore dst(4, 1);
    dst.copyRange(src, 3, 2, 10); // runs off both ends harmlessly
    EXPECT_TRUE(dst.probe(2, 30));
}

TEST(TagStore, MruWayPredictsLastTouch)
{
    TagStore ts(16, 4); // 4 sets x 4 ways
    ts.accessFill(0, 100, false); // way 0
    ts.accessFill(4, 200, false); // same set, way 1
    EXPECT_EQ(ts.mruWay(0), 1u);
    const auto r = ts.accessFill(0, 100, false); // hit in way 0
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 0u);
    EXPECT_EQ(r.predictedWay, 1u); // predictor guessed the MRU way
    EXPECT_EQ(ts.mruWay(0), 0u);   // now way 0 is MRU
}

TEST(TagStore, DirectMappedAlwaysPredictsWayZero)
{
    TagStore ts(16, 1);
    ts.accessFill(3, 100, false);
    const auto r = ts.accessFill(3, 100, false);
    EXPECT_EQ(r.way, 0u);
    EXPECT_EQ(r.predictedWay, 0u);
}

/** Property: higher associativity never loses a working set that fits. */
class TagStoreAssocTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TagStoreAssocTest, WorkingSetWithinWaysStays)
{
    const std::uint32_t ways = GetParam();
    TagStore ts(64 * ways, ways); // 64 sets
    // `ways` keys mapping to the same set.
    for (std::uint32_t w = 0; w < ways; ++w) {
        ts.accessFill(w * 64, 1000 + w, false);
    }
    for (std::uint32_t w = 0; w < ways; ++w) {
        EXPECT_TRUE(ts.probe(w * 64, 1000 + w));
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, TagStoreAssocTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u));

} // namespace
} // namespace ndpext
