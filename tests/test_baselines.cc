/** Tests for the adapted NUCA baseline policies and the host LLC. */

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/host_llc.h"
#include "baselines/nuca_policies.h"
#include "common/rng.h"

namespace ndpext {
namespace {

constexpr std::uint32_t kUnits = 8;
constexpr std::uint32_t kRowsPerUnit = 32;
constexpr std::uint32_t kRowBytes = 2048;

struct Fixture
{
    MeshTopology topo{2, 1, 2, 2};
    NocModel noc{topo, NocParams{}};

    BaselineContext
    ctx() const
    {
        BaselineContext c;
        c.numUnits = kUnits;
        c.rowsPerUnit = kRowsPerUnit;
        c.rowBytes = kRowBytes;
        c.dramLatency = 40;
        return c;
    }
};

MissCurve
linearCurve(std::uint64_t useful, double misses)
{
    std::vector<std::uint64_t> caps;
    std::vector<double> m;
    for (std::uint64_t c = 2048; c <= useful * 2; c *= 2) {
        caps.push_back(c);
        m.push_back(misses
                    * (1.0
                       - std::min(1.0,
                                  static_cast<double>(c)
                                      / static_cast<double>(useful))));
    }
    MissCurve curve(caps, std::move(m));
    curve.setZeroMisses(misses);
    return curve;
}

StreamDemand
demand(StreamId sid, std::vector<UnitId> units, std::uint64_t accesses,
       std::uint64_t footprint, bool read_only)
{
    StreamDemand d;
    d.sid = sid;
    d.accUnits = std::move(units);
    d.accCounts.assign(
        d.accUnits.size(),
        accesses / std::max<std::size_t>(1, d.accUnits.size()));
    d.footprintBytes = footprint;
    d.readOnly = read_only;
    d.granuleBytes = 64;
    d.curve = linearCurve(footprint, static_cast<double>(accesses));
    return d;
}

std::uint64_t
rowsOnUnit(const std::vector<std::pair<StreamId, StreamAlloc>>& out,
           UnitId u)
{
    std::uint64_t rows = 0;
    for (const auto& [sid, a] : out) {
        (void)sid;
        rows += a.shareRows[u];
    }
    return rows;
}

TEST(PlaceCenterOfMass, PrefersAccessingUnits)
{
    Fixture f;
    std::vector<std::uint32_t> free_rows(kUnits, kRowsPerUnit);
    const auto d = demand(0, {2}, 1000, 16_KiB, true);
    const auto placed = placeCenterOfMass(d, 4, free_rows, f.noc);
    // Rows interleave over the accessor's neighborhood: the accessor
    // holds some, and everything stays within its stack (units 0..3).
    EXPECT_GT(placed[2], 0u);
    EXPECT_EQ(placed[0] + placed[1] + placed[2] + placed[3], 4u);
    EXPECT_EQ(placed[4] + placed[5] + placed[6] + placed[7], 0u);
}

TEST(PlaceCenterOfMass, OverflowsToNearestUnits)
{
    Fixture f;
    std::vector<std::uint32_t> free_rows(kUnits, 2);
    const auto d = demand(0, {0}, 1000, 1_MiB, true);
    const auto placed = placeCenterOfMass(d, 6, free_rows, f.noc);
    // All rows placed, the accessor holds some, and the same-stack units
    // (0..3) collectively hold at least as much as the remote stack.
    std::uint64_t total = 0;
    for (const auto r : placed) {
        total += r;
    }
    EXPECT_EQ(total, 6u);
    EXPECT_GT(placed[0], 0u);
    const std::uint64_t near =
        placed[0] + placed[1] + placed[2] + placed[3];
    const std::uint64_t far =
        placed[4] + placed[5] + placed[6] + placed[7];
    EXPECT_GE(near, far);
}

TEST(PlaceCenterOfMass, SpreadsAcrossUnits)
{
    // Large partitions interleave across many units instead of stacking
    // whole units (bank-level load balance; DESIGN.md 4.1).
    Fixture f;
    std::vector<std::uint32_t> free_rows(kUnits, kRowsPerUnit);
    const auto d = demand(0, {0}, 1000, 1_MiB, true);
    const auto placed =
        placeCenterOfMass(d, std::uint64_t{kUnits} * 4, free_rows, f.noc);
    std::uint32_t units_used = 0;
    for (const auto r : placed) {
        units_used += r > 0 ? 1 : 0;
    }
    EXPECT_GE(units_used, kUnits / 2);
}

TEST(StaticInterleavePolicy, ProportionalAndSingleGroup)
{
    Fixture f;
    StaticInterleaveConfigurator cfg(f.ctx(), f.noc);
    EXPECT_FALSE(cfg.reconfigures());
    const auto out = cfg.configure({
        demand(0, {0}, 1000, 192_KiB, true),
        demand(1, {1}, 1000, 64_KiB, false),
    });
    ASSERT_EQ(out.size(), 2u);
    for (const auto& [sid, a] : out) {
        (void)sid;
        EXPECT_EQ(a.numGroups, 1u);
        // Interleaved across every unit.
        for (UnitId u = 0; u < kUnits; ++u) {
            EXPECT_GT(a.shareRows[u], 0u);
        }
    }
    // 3x footprint -> ~3x rows.
    EXPECT_GT(out[0].second.totalRows(), out[1].second.totalRows());
}

TEST(JigsawPolicy, SizesByCurveAndPlacesNearAccessors)
{
    Fixture f;
    JigsawConfigurator cfg(f.ctx(), f.noc);
    EXPECT_TRUE(cfg.reconfigures());
    const auto out = cfg.configure({
        demand(0, {0, 1}, 100000, 64_KiB, true),
        demand(1, {6, 7}, 100, 64_KiB, true),
    });
    ASSERT_EQ(out.size(), 2u);
    for (const auto& [sid, a] : out) {
        EXPECT_EQ(a.numGroups, 1u) << "jigsaw never replicates";
        (void)sid;
    }
    // The hot stream's rows are on/near its accessors (stack 0).
    const auto& hot = out[0].first == 0 ? out[0].second : out[1].second;
    std::uint64_t near = hot.shareRows[0] + hot.shareRows[1]
        + hot.shareRows[2] + hot.shareRows[3];
    std::uint64_t far = hot.shareRows[4] + hot.shareRows[5]
        + hot.shareRows[6] + hot.shareRows[7];
    EXPECT_GT(near, far);
}

TEST(JigsawPolicy, CapacityRespected)
{
    Fixture f;
    JigsawConfigurator cfg(f.ctx(), f.noc);
    std::vector<StreamDemand> demands;
    std::vector<UnitId> all(kUnits);
    std::iota(all.begin(), all.end(), 0);
    for (StreamId s = 0; s < 10; ++s) {
        demands.push_back(demand(s, all, 10000, 1_MiB, true));
    }
    const auto out = cfg.configure(demands);
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(rowsOnUnit(out, u), kRowsPerUnit);
    }
}

TEST(WhirlpoolPolicy, FootprintProportional)
{
    Fixture f;
    WhirlpoolConfigurator cfg(f.ctx(), f.noc);
    EXPECT_FALSE(cfg.reconfigures());
    const auto out = cfg.configure({
        demand(0, {0}, 10, 256_KiB, true),
        demand(1, {1}, 10, 64_KiB, true),
    });
    ASSERT_EQ(out.size(), 2u);
    EXPECT_GT(out[0].second.totalRows(), out[1].second.totalRows());
}

TEST(NexusPolicy, ReplicatesReadOnlyData)
{
    Fixture f;
    NexusConfigurator cfg(f.ctx(), f.noc);
    // Small hot read-only stream shared by units in both stacks.
    const auto out = cfg.configure({
        demand(0, {0, 1, 4, 5, 6, 7}, 100000, 8_KiB, true),
    });
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(cfg.lastDegree(), 1u);
    EXPECT_GE(out[0].second.numGroups, 1u);
    // Capacity respected.
    for (UnitId u = 0; u < kUnits; ++u) {
        EXPECT_LE(out[0].second.shareRows[u], kRowsPerUnit);
    }
}

TEST(NexusPolicy, ReadWriteNeverReplicated)
{
    Fixture f;
    NexusConfigurator cfg(f.ctx(), f.noc);
    const auto out = cfg.configure({
        demand(0, {0, 1, 4, 5}, 100000, 8_KiB, false),
    });
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].second.numGroups, 1u);
}

TEST(HostLlc, HitFasterThanMiss)
{
    HostLlcController llc{HostParams{}};
    Access a;
    a.addr = 0x4000;
    const auto r1 = llc.access(0, a, 0);
    const auto r2 = llc.access(0, a, r1.done);
    EXPECT_LT(r2.done - r1.done, r1.done);
    EXPECT_EQ(llc.llcHits(), 1u);
    EXPECT_EQ(llc.llcMisses(), 1u);
}

TEST(HostLlc, RemoteBankCostsHops)
{
    HostLlcController llc{HostParams{}};
    // Find two addresses: one whose bank is core 0, one far away.
    Access near;
    Access far;
    bool have_near = false;
    bool have_far = false;
    for (Addr addr = 0; addr < 1_MiB && !(have_near && have_far);
         addr += 64) {
        const std::uint32_t bank =
            static_cast<std::uint32_t>(mix64(addr / 64) % 64);
        if (bank == 0 && !have_near) {
            near.addr = addr;
            have_near = true;
        }
        if (bank == 63 && !have_far) {
            far.addr = addr;
            have_far = true;
        }
    }
    ASSERT_TRUE(have_near && have_far);
    // Warm both, then compare hit latencies from core 0.
    Cycles t = llc.access(0, near, 0).done;
    t = llc.access(0, far, t).done;
    const auto hn = llc.access(0, near, t);
    const auto hf = llc.access(0, far, hn.done);
    EXPECT_LT(hn.done - t, hf.done - hn.done);
}

TEST(HostLlc, DramEnergyAccrues)
{
    HostLlcController llc{HostParams{}};
    Access a;
    a.addr = 0x9000;
    llc.access(3, a, 0);
    EXPECT_GT(llc.dramEnergyNj(), 0.0);
}

} // namespace
} // namespace ndpext
