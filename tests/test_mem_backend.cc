/**
 * Memory-backend registry and implementation coverage: registration /
 * lookup / did-you-mean, CLI spec parsing, per-backend timing semantics
 * (FR-FCFS reordering vs FCFS order, queue backpressure, starvation cap,
 * refresh blackouts, power-down wake penalties), checkpoint roundtrips
 * for every registered backend, and backend-mismatch rejection on
 * system resume.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mem/backend_refresh.h"
#include "mem/backend_sched.h"
#include "mem/dram.h"
#include "mem/mem_backend_registry.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

constexpr std::uint64_t kFreq = 2000; // 2 GHz core clock

MemBackendConfig
hbmConfig(const std::string& backend)
{
    return MemBackendConfig{backend, DramTimingParams::hbm3Unit()};
}

// --- Registry -----------------------------------------------------------

TEST(MemBackendRegistry, ShipsAllFourBackends)
{
    const auto names = MemBackendRegistry::instance().names();
    for (const char* expected : {"banked", "fcfs", "frfcfs", "refresh"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected << " is not registered";
    }
}

TEST(MemBackendRegistry, InfoCarriesDescriptionAndTunables)
{
    const MemBackendInfo* info =
        MemBackendRegistry::instance().find("frfcfs");
    ASSERT_NE(info, nullptr);
    EXPECT_FALSE(info->description.empty());
    ASSERT_TRUE(info->factory);
    std::vector<std::string> keys;
    for (const MemTunable& t : info->tunables) {
        keys.push_back(t.key);
    }
    EXPECT_NE(std::find(keys.begin(), keys.end(), "queue"), keys.end());
    EXPECT_NE(std::find(keys.begin(), keys.end(), "cap"), keys.end());
}

TEST(MemBackendRegistry, FindUnknownReturnsNull)
{
    EXPECT_EQ(MemBackendRegistry::instance().find("no-such-backend"),
              nullptr);
}

TEST(MemBackendRegistry, SuggestsNearbyNames)
{
    auto& registry = MemBackendRegistry::instance();
    EXPECT_EQ(registry.suggest("frfcs"), "frfcfs");
    EXPECT_EQ(registry.suggest("refrsh"), "refresh");
    // Nothing plausible within the edit-distance budget.
    EXPECT_EQ(registry.suggest("zzzzzzzzzz"), "");
}

TEST(MemBackendRegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_DEATH(
        {
            MemBackendInfo dup;
            dup.name = "banked";
            dup.description = "imposter";
            dup.factory = [](const MemBackendConfig& cfg,
                             std::uint64_t core_freq_mhz) {
                return std::make_unique<DramDevice>(cfg.timing,
                                                    core_freq_mhz);
            };
            MemBackendRegistry::instance().add(std::move(dup));
        },
        "duplicate memory backend");
}

TEST(MemBackendCreate, SetsBackendNameOnEveryRegisteredBackend)
{
    for (const std::string& name :
         MemBackendRegistry::instance().names()) {
        const auto backend = createMemBackend(hbmConfig(name), kFreq);
        ASSERT_NE(backend, nullptr) << name;
        EXPECT_EQ(backend->backendName(), name);
    }
}

TEST(MemBackendCreateDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(createMemBackend(hbmConfig("bogus"), kFreq),
                 "unknown memory backend");
}

// --- Spec parsing -------------------------------------------------------

TEST(MemBackendSpec, ParsesNameAndTunables)
{
    MemBackendConfig cfg;
    std::string error;
    ASSERT_TRUE(
        MemBackendConfig::parseSpec("frfcfs,queue=16,cap=2", &cfg, &error))
        << error;
    EXPECT_EQ(cfg.backend, "frfcfs");
    EXPECT_DOUBLE_EQ(cfg.tunable("queue", 0.0), 16.0);
    EXPECT_DOUBLE_EQ(cfg.tunable("cap", 0.0), 2.0);
    EXPECT_FALSE(cfg.timingSet); // no preset given: role default applies
}

TEST(MemBackendSpec, PresetResolvesTiming)
{
    MemBackendConfig cfg;
    std::string error;
    ASSERT_TRUE(
        MemBackendConfig::parseSpec("refresh,preset=lpddr5x", &cfg, &error))
        << error;
    EXPECT_TRUE(cfg.timingSet);
    EXPECT_EQ(cfg.timing.name, DramTimingParams::lpddr5x().name);
}

TEST(MemBackendSpec, RejectsMalformedInput)
{
    MemBackendConfig cfg;
    std::string error;
    EXPECT_FALSE(MemBackendConfig::parseSpec("", &cfg, &error));
    EXPECT_FALSE(MemBackendConfig::parseSpec("frfcfs,queue", &cfg, &error));
    EXPECT_NE(error.find("key=value"), std::string::npos) << error;
    EXPECT_FALSE(
        MemBackendConfig::parseSpec("frfcfs,queue=abc", &cfg, &error));
    EXPECT_NE(error.find("numeric"), std::string::npos) << error;
    EXPECT_FALSE(
        MemBackendConfig::parseSpec("banked,preset=ddr9", &cfg, &error));
    EXPECT_NE(error.find("unknown timing preset"), std::string::npos)
        << error;
}

TEST(MemBackendSpec, ValidateRejectsUnknownNameWithSuggestion)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.memBackendExt.backend = "frfcs";
    std::string error;
    EXPECT_FALSE(cfg.validate(&error));
    EXPECT_NE(error.find("did you mean 'frfcfs'"), std::string::npos)
        << error;
}

TEST(MemBackendSpec, ValidateRejectsUndeclaredTunable)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.memBackendExt.backend = "frfcfs";
    cfg.memBackendExt.setTunable("depth", "8"); // real key is "queue"
    std::string error;
    EXPECT_FALSE(cfg.validate(&error));
    EXPECT_NE(error.find("no tunable 'depth'"), std::string::npos)
        << error;
}

// --- Scheduler backends -------------------------------------------------

TEST(SchedBackend, FrFcfsReordersRowHitAheadOfConflict)
{
    // A(row 1), B(row 2), C(row 1) all arrive at t=0 on one bank. An
    // FR-FCFS controller serves C with the row-1 traffic (row hit); a
    // strict FCFS controller services in order and C pays the conflict.
    SchedDramBackend frfcfs(hbmConfig("frfcfs"), kFreq, true);
    frfcfs.accessRow(0, 1, 64, false, 0);
    frfcfs.accessRow(0, 2, 64, false, 0);
    EXPECT_TRUE(frfcfs.accessRow(0, 1, 64, false, 0).rowHit);

    SchedDramBackend fcfs(hbmConfig("fcfs"), kFreq, false);
    fcfs.accessRow(0, 1, 64, false, 0);
    fcfs.accessRow(0, 2, 64, false, 0);
    EXPECT_FALSE(fcfs.accessRow(0, 1, 64, false, 0).rowHit);
}

TEST(SchedBackend, FcfsSeesRowLeftByYoungestQueuedRequest)
{
    SchedDramBackend fcfs(hbmConfig("fcfs"), kFreq, false);
    fcfs.accessRow(0, 2, 64, false, 0);
    // Row 2 is still in flight; an in-order controller services this
    // request after it, against an open row 2.
    EXPECT_TRUE(fcfs.accessRow(0, 2, 64, false, 0).rowHit);
}

TEST(SchedBackend, FullQueueBackpressures)
{
    MemBackendConfig cfg = hbmConfig("frfcfs");
    cfg.setTunable("queue", "1");
    SchedDramBackend d(cfg, kFreq, true);
    const auto r1 = d.accessRow(0, 1, 64, false, 0);
    const auto r2 = d.accessRow(0, 1, 64, false, 0);
    // The second request waits for the only queue slot, then serializes
    // behind the first on the bank.
    EXPECT_GT(r2.done, r1.done);
    StatGroup stats;
    d.report(stats, "d");
    EXPECT_DOUBLE_EQ(stats.get("d.queueFullStalls"), 1.0);
    EXPECT_GT(stats.get("d.queueStallCycles"), 0.0);
}

TEST(SchedBackend, StarvationCapDemotesEndlessRowHits)
{
    MemBackendConfig cfg = hbmConfig("frfcfs");
    cfg.setTunable("cap", "1");
    SchedDramBackend d(cfg, kFreq, true);
    d.accessRow(0, 9, 64, false, 0); // conflicting traffic, stays queued
    d.accessRow(0, 1, 64, false, 0); // row-1 stream starts
    // First reordered hit is allowed (streak 1)...
    EXPECT_TRUE(d.accessRow(0, 1, 64, false, 0).rowHit);
    // ...the next would starve the row-9 request past the cap.
    EXPECT_FALSE(d.accessRow(0, 1, 64, false, 0).rowHit);
    StatGroup stats;
    d.report(stats, "d");
    EXPECT_DOUBLE_EQ(stats.get("d.starvationRounds"), 1.0);
}

TEST(SchedBackend, MatchesBankedLatencyWithoutContention)
{
    // A lone access sees the same closed-row latency under every
    // controller: scheduling only matters under contention.
    DramDevice banked(DramTimingParams::hbm3Unit(), kFreq);
    SchedDramBackend frfcfs(hbmConfig("frfcfs"), kFreq, true);
    const auto rb = banked.accessRow(0, 5, 64, false, 1000);
    const auto rs = frfcfs.accessRow(0, 5, 64, false, 1000);
    EXPECT_EQ(rb.done, rs.done);
    EXPECT_EQ(rb.rowHit, rs.rowHit);
}

// --- Refresh / power-down backend ---------------------------------------

/** Refresh backend with power-down management pushed out of the way. */
MemBackendConfig
refreshOnlyConfig()
{
    MemBackendConfig cfg{"refresh", DramTimingParams::ddr5Extended()};
    cfg.setTunable("pd-idle", "1000000000");
    cfg.setTunable("sr-idle", "2000000000");
    return cfg;
}

TEST(RefreshBackend, BlackoutWindowStallsAccesses)
{
    RefreshDramBackend d(refreshOnlyConfig(), kFreq);
    // t=0 is the start of a refresh blackout: the access waits out tRFC
    // (708 DDR cycles at 2400 MHz = 590 core cycles at 2 GHz).
    const auto r = d.accessRow(0, 5, 64, false, 0);
    EXPECT_EQ(r.done, 590 + d.rowClosedLatency());
    StatGroup stats;
    d.report(stats, "d");
    EXPECT_DOUBLE_EQ(stats.get("d.refreshStalls"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("d.refreshStallCycles"), 590.0);
}

TEST(RefreshBackend, RefreshClosesOpenRows)
{
    RefreshDramBackend d(refreshOnlyConfig(), kFreq);
    // 9360 DDR cycles at 2400 MHz = 7800 core cycles between refreshes.
    const auto r1 = d.accessRow(0, 5, 64, false, 600);
    EXPECT_FALSE(r1.rowHit);
    // Within the same refresh window the row stays open...
    EXPECT_TRUE(d.accessRow(0, 5, 64, false, r1.done).rowHit);
    // ...but the next window's all-bank refresh precharges it.
    EXPECT_FALSE(d.accessRow(0, 5, 64, false, 7800 + 600).rowHit);
}

TEST(RefreshBackend, PowerDownWakePaysExitLatency)
{
    MemBackendConfig cfg{"refresh", DramTimingParams::ddr5Extended()};
    cfg.setTunable("refi", "1000000000");
    cfg.setTunable("rfc", "1");
    cfg.setTunable("pd-idle", "2000");
    cfg.setTunable("pd-exit", "30");
    RefreshDramBackend d(cfg, kFreq);
    const auto r1 = d.accessRow(0, 5, 64, false, 10);
    // Long idle gap: the device entered fast-exit power-down; the row
    // buffer survives but the access pays the wake penalty.
    const Cycles later = r1.done + 5000;
    const auto r2 = d.accessRow(0, 5, 64, false, later);
    EXPECT_TRUE(r2.rowHit);
    EXPECT_EQ(r2.done, later + 30 + d.rowHitLatency());
    StatGroup stats;
    d.report(stats, "d");
    EXPECT_DOUBLE_EQ(stats.get("d.pdWakes"), 1.0);
    EXPECT_GT(stats.get("d.pdResidencyCycles"), 0.0);
}

TEST(RefreshBackend, SelfRefreshWakeLosesRowBuffer)
{
    MemBackendConfig cfg{"refresh", DramTimingParams::ddr5Extended()};
    cfg.setTunable("refi", "1000000000");
    cfg.setTunable("rfc", "1");
    cfg.setTunable("pd-idle", "1000");
    cfg.setTunable("sr-idle", "5000");
    cfg.setTunable("sr-exit", "500");
    RefreshDramBackend d(cfg, kFreq);
    const auto r1 = d.accessRow(0, 5, 64, false, 10);
    const Cycles later = r1.done + 20000; // beyond the sr-idle threshold
    const auto r2 = d.accessRow(0, 5, 64, false, later);
    EXPECT_FALSE(r2.rowHit); // self-refresh precharged the row
    EXPECT_EQ(r2.done, later + 500 + d.rowClosedLatency());
    StatGroup stats;
    d.report(stats, "d");
    EXPECT_DOUBLE_EQ(stats.get("d.srWakes"), 1.0);
}

// --- Checkpoint roundtrips ----------------------------------------------

/**
 * Drive a deterministic access mix, snapshot, restore into a fresh
 * instance, and require the restored device to time the future
 * identically to the original (the definition of complete state
 * capture).
 */
TEST(MemBackendCheckpoint, EveryBackendRoundTrips)
{
    for (const std::string& name :
         MemBackendRegistry::instance().names()) {
        const MemBackendConfig cfg = hbmConfig(name);
        const auto original = createMemBackend(cfg, kFreq);
        for (std::uint64_t i = 0; i < 200; ++i) {
            original->access(i * 1216, 64, i % 3 == 0, i * 7);
        }

        ckpt::Writer w;
        original->serialize(w);
        const auto restored = createMemBackend(cfg, kFreq);
        ckpt::Reader r(w.bytes());
        restored->deserialize(r);
        EXPECT_TRUE(r.atEnd()) << name;

        EXPECT_EQ(original->rowHits(), restored->rowHits()) << name;
        EXPECT_DOUBLE_EQ(original->dynamicEnergyNj(),
                         restored->dynamicEnergyNj())
            << name;
        for (std::uint64_t i = 0; i < 50; ++i) {
            const auto a = original->access(i * 4096, 64, false, 2000 + i);
            const auto b = restored->access(i * 4096, 64, false, 2000 + i);
            EXPECT_EQ(a.done, b.done) << name << " access " << i;
            EXPECT_EQ(a.rowHit, b.rowHit) << name << " access " << i;
        }
    }
}

TEST(MemBackendCheckpoint, HashDiffersAcrossBackendsAndTunables)
{
    const auto hashOf = [](const MemBackendConfig& cfg) {
        ckpt::Writer w;
        cfg.hashInto(w);
        return w.bytes();
    };
    const MemBackendConfig banked = hbmConfig("banked");
    const MemBackendConfig frfcfs = hbmConfig("frfcfs");
    MemBackendConfig tuned = frfcfs;
    tuned.setTunable("queue", "16");
    EXPECT_NE(hashOf(banked), hashOf(frfcfs));
    EXPECT_NE(hashOf(frfcfs), hashOf(tuned));
}

// --- System-level resume ------------------------------------------------

SystemConfig
tinyConfig(const std::string& ext_backend)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 20'000;
    cfg.memBackendExt.backend = ext_backend;
    cfg.finalize();
    return cfg;
}

std::unique_ptr<Workload>
tinyWorkload()
{
    auto w = makeWorkload("pr");
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    w->prepare(p);
    return w;
}

TEST(MemBackendResume, FrFcfsResumesBitIdentically)
{
    const auto w = tinyWorkload();
    const std::string prefix =
        ::testing::TempDir() + "mem_backend_frfcfs_resume";

    NdpSystem golden(tinyConfig("frfcfs"), PolicyKind::NdpExt);
    const RunResult want = golden.run(*w);

    NdpSystem emitter(tinyConfig("frfcfs"), PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix, 1);
    emitter.run(*w);

    std::string newest;
    std::string error;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &newest, &h, &error))
        << error;
    ASSERT_GE(h.epoch, 2u) << "run too short to exercise resume";

    NdpSystem resumed(tinyConfig("frfcfs"), PolicyKind::NdpExt);
    ASSERT_TRUE(resumed.setResume(newest, *w, &error)) << error;
    const RunResult got = resumed.run(*w);
    EXPECT_EQ(want.cycles, got.cycles);
    EXPECT_EQ(want.accesses, got.accesses);
    EXPECT_EQ(want.l1Hits, got.l1Hits);
    EXPECT_DOUBLE_EQ(want.missRate, got.missRate);
    EXPECT_DOUBLE_EQ(want.energy.totalNj(), got.energy.totalNj());
    // Scheduler state made it into the image: the resumed run reports
    // the same controller counters as the uninterrupted one.
    EXPECT_DOUBLE_EQ(want.stats.get("ext.dram.queueSamples"),
                     got.stats.get("ext.dram.queueSamples"));
}

TEST(MemBackendResume, BackendMismatchIsRejected)
{
    const auto w = tinyWorkload();
    const std::string prefix =
        ::testing::TempDir() + "mem_backend_mismatch";

    NdpSystem emitter(tinyConfig("banked"), PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix, 1);
    emitter.run(*w);

    std::string newest;
    std::string error;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &newest, nullptr, &error))
        << error;

    // The image was taken under the banked extended memory; resuming
    // under an FR-FCFS controller must fail the config-hash check.
    NdpSystem resumed(tinyConfig("frfcfs"), PolicyKind::NdpExt);
    EXPECT_FALSE(resumed.setResume(newest, *w, &error));
    EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

} // namespace
} // namespace ndpext
