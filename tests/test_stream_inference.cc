/** Tests for automatic stream classification (paper future work). */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stream/stream_inference.h"

namespace ndpext {
namespace {

TEST(StreamInference, DenseScanIsAffine)
{
    std::vector<Addr> trace;
    for (Addr a = 0x1000; a < 0x1000 + 512 * 8; a += 8) {
        trace.push_back(a);
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    EXPECT_EQ(inferred->type, StreamType::Affine);
    EXPECT_EQ(inferred->elemSize, 8u);
    EXPECT_EQ(inferred->strideElems, 1);
    EXPECT_GT(inferred->regularity, 0.99);
}

TEST(StreamInference, StridedScanIsAffineWithStride)
{
    std::vector<Addr> trace;
    for (Addr a = 0x2000; a < 0x2000 + 256 * 32; a += 32) {
        trace.push_back(a); // stride 32 over 4 B elements
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    EXPECT_EQ(inferred->type, StreamType::Affine);
    EXPECT_EQ(inferred->elemSize, 32u);
    EXPECT_EQ(inferred->strideElems, 1);
}

TEST(StreamInference, ReverseScanIsAffine)
{
    std::vector<Addr> trace;
    for (int i = 511; i >= 0; --i) {
        trace.push_back(0x8000 + static_cast<Addr>(i) * 8);
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    EXPECT_EQ(inferred->type, StreamType::Affine);
    EXPECT_EQ(inferred->strideElems, -1);
}

TEST(StreamInference, RandomAccessIsIndirect)
{
    Rng rng(7);
    std::vector<Addr> trace;
    for (int i = 0; i < 2000; ++i) {
        trace.push_back(0x10000 + rng.nextBounded(1 << 16) * 8);
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    EXPECT_EQ(inferred->type, StreamType::Indirect);
    EXPECT_LT(inferred->regularity, 0.5);
}

TEST(StreamInference, ZipfGatherIsIndirectWithReuse)
{
    ZipfSampler zipf(4096, 0.8, 11);
    std::vector<Addr> trace;
    for (int i = 0; i < 5000; ++i) {
        trace.push_back(0x40000 + zipf.next() * 8);
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    EXPECT_EQ(inferred->type, StreamType::Indirect);
    EXPECT_GT(inferred->reuse, 0.05); // hot head revisited
}

TEST(StreamInference, TooFewSamplesIsNullopt)
{
    StreamClassifier c;
    for (int i = 0; i < 8; ++i) {
        c.observe(0x1000 + static_cast<Addr>(i) * 8);
    }
    EXPECT_FALSE(c.infer().has_value());
}

TEST(StreamInference, RangeCoversObservations)
{
    std::vector<Addr> trace;
    for (Addr a = 0x5000; a < 0x5000 + 100 * 4; a += 4) {
        trace.push_back(a);
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    EXPECT_LE(inferred->base, trace.front());
    EXPECT_GT(inferred->end, trace.back());
}

TEST(StreamInference, ToConfigRoundTrips)
{
    std::vector<Addr> trace;
    for (Addr a = 0x7008; a < 0x7008 + 64 * 8; a += 8) {
        trace.push_back(a);
    }
    const auto inferred = inferStream(trace);
    ASSERT_TRUE(inferred.has_value());
    const StreamConfig cfg = inferred->toConfig("auto", true);
    EXPECT_EQ(cfg.type, StreamType::Affine);
    EXPECT_TRUE(cfg.readOnly);
    for (const Addr a : trace) {
        EXPECT_TRUE(cfg.contains(a));
    }
    cfg.validate();
}

TEST(StreamInference, ResetClears)
{
    StreamClassifier c;
    for (int i = 0; i < 100; ++i) {
        c.observe(0x1000 + static_cast<Addr>(i) * 8);
    }
    ASSERT_TRUE(c.infer().has_value());
    c.reset();
    EXPECT_EQ(c.samples(), 0u);
    EXPECT_FALSE(c.infer().has_value());
}

/** Property: classification is stable across mixed thresholds. */
class InferenceThresholdTest : public ::testing::TestWithParam<double>
{
};

TEST_P(InferenceThresholdTest, ScanAlwaysAffine)
{
    std::vector<Addr> trace;
    for (Addr a = 0; a < 4096; a += 4) {
        trace.push_back(0x9000 + a);
    }
    const auto inferred = inferStream(trace, GetParam());
    ASSERT_TRUE(inferred.has_value());
    EXPECT_EQ(inferred->type, StreamType::Affine);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, InferenceThresholdTest,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

} // namespace
} // namespace ndpext
