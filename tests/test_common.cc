/** Unit tests for the common substrate: RNG, bit utilities, histogram. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bitutils.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"

namespace ndpext {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.nextDouble();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Zipf, StaysInDomain)
{
    ZipfSampler z(1000, 0.8, 5);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(z.next(), 1000u);
    }
}

TEST(Zipf, IsSkewedTowardSmallIds)
{
    ZipfSampler z(100000, 0.8, 5);
    std::uint64_t low = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        low += z.next() < 1000 ? 1 : 0; // top 1% of ids
    }
    // Under uniform sampling low/n would be ~1%; zipf(0.8) gives far more.
    EXPECT_GT(static_cast<double>(low) / n, 0.2);
}

TEST(Mix64, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        outputs.insert(mix64(i) % 64);
    }
    EXPECT_EQ(outputs.size(), 64u); // hits every bucket
}

TEST(BitUtils, Pow2AndLogs)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(ceilLog2(1023), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(BitUtils, DivAndAlign)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(alignUp(10, 8), 16u);
    EXPECT_EQ(alignUp(16, 8), 16u);
    EXPECT_EQ(alignDown(15, 8), 8u);
}

TEST(SizeLiterals, Work)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Histogram, TracksMoments)
{
    Histogram h(100.0, 10);
    for (int i = 0; i < 100; ++i) {
        h.add(static_cast<double>(i));
    }
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 49.5);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 99.0);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
}

TEST(Histogram, OverflowCounted)
{
    Histogram h(10.0, 10);
    h.add(5.0);
    h.add(500.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.maxValue(), 500.0);
}

/** Empty histograms summarize to zeros instead of NaN/garbage. */
TEST(Histogram, EmptyIsZeroSafe)
{
    Histogram h(100.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    const std::string s = h.summary();
    EXPECT_NE(s.find("n=0"), std::string::npos);
    EXPECT_EQ(s.find("nan"), std::string::npos);
}

/** A single wide bucket cannot report quantiles outside [min, max]. */
TEST(Histogram, SingleBucketClampsToObservedRange)
{
    Histogram h(1000.0, 1);
    h.add(10.0);
    h.add(12.0);
    EXPECT_GE(h.percentile(0.5), 10.0);
    EXPECT_LE(h.percentile(0.5), 12.0);
    EXPECT_GE(h.percentile(0.99), 10.0);
    EXPECT_LE(h.percentile(0.99), 12.0);
}

/** Out-of-range and NaN quantile requests are clamped / zeroed. */
TEST(Histogram, PercentileArgumentGuards)
{
    Histogram h(100.0, 10);
    for (int i = 0; i < 10; ++i) {
        h.add(static_cast<double>(i * 10));
    }
    EXPECT_DOUBLE_EQ(h.percentile(0.0), h.minValue());
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.minValue());
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_DOUBLE_EQ(h.percentile(std::nan("")), 0.0);
}

/** NaN samples are dropped instead of poisoning the moments. */
TEST(Histogram, NanSamplesIgnored)
{
    Histogram h(100.0, 10);
    h.add(std::nan(""));
    EXPECT_EQ(h.count(), 0u);
    h.add(5.0);
    h.add(std::nan(""));
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 5.0);
}

/** Property: shuffle preserves multiset. */
TEST(Shuffle, IsPermutation)
{
    Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    shuffle(v, rng);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

} // namespace
} // namespace ndpext
