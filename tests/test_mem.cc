/** Tests for the DRAM timing/energy model. */

#include <gtest/gtest.h>

#include "mem/dram.h"

namespace ndpext {
namespace {

constexpr std::uint64_t kFreq = 2000; // 2 GHz core clock

TEST(DramPresets, TableIIValues)
{
    const auto hbm = DramTimingParams::hbm3Unit();
    EXPECT_EQ(hbm.tRcd, 24u);
    EXPECT_EQ(hbm.tCas, 24u);
    EXPECT_EQ(hbm.tRp, 24u);
    EXPECT_DOUBLE_EQ(hbm.clockMhz, 1600.0);
    EXPECT_DOUBLE_EQ(hbm.rdWrPjPerBit, 1.7);
    EXPECT_DOUBLE_EQ(hbm.actPreNj, 0.6);

    const auto hmc = DramTimingParams::hmc2Unit();
    EXPECT_EQ(hmc.tRcd, 14u);
    EXPECT_DOUBLE_EQ(hmc.clockMhz, 1250.0);

    const auto ddr = DramTimingParams::ddr5Extended();
    EXPECT_EQ(ddr.tRcd, 40u);
    // Table II: 4 channels x 2 ranks x 16 banks, timed as 128 flat banks.
    EXPECT_EQ(ddr.channels, 4u);
    EXPECT_EQ(ddr.ranks, 2u);
    EXPECT_EQ(ddr.banks, 16u);
    EXPECT_EQ(ddr.totalBanks(), 4u * 2 * 16);
    EXPECT_DOUBLE_EQ(ddr.rdWrPjPerBit, 3.2);
    EXPECT_DOUBLE_EQ(ddr.actPreNj, 3.3);
}

TEST(DramDevice, RowHitFasterThanMiss)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    EXPECT_LT(d.rowHitLatency(), d.rowClosedLatency());
    EXPECT_LT(d.rowClosedLatency(), d.rowMissLatency());
}

TEST(DramDevice, FirstAccessOpensRow)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    const auto r = d.accessRow(0, 5, 64, false, 1000);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(r.done, 1000 + d.rowClosedLatency());
}

TEST(DramDevice, SecondAccessSameRowHits)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    const auto r1 = d.accessRow(0, 5, 64, false, 0);
    const auto r2 = d.accessRow(0, 5, 64, false, r1.done);
    EXPECT_TRUE(r2.rowHit);
    EXPECT_EQ(r2.done - r1.done, d.rowHitLatency());
}

TEST(DramDevice, RowConflictPaysPrecharge)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    const auto r1 = d.accessRow(0, 5, 64, false, 0);
    const auto r2 = d.accessRow(0, 9, 64, false, r1.done);
    EXPECT_FALSE(r2.rowHit);
    EXPECT_EQ(r2.done - r1.done, d.rowMissLatency());
}

TEST(DramDevice, BanksOperateIndependently)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    const auto r1 = d.accessRow(0, 5, 64, false, 0);
    const auto r2 = d.accessRow(1, 5, 64, false, 0);
    // Same start time, different banks: no serialization beyond timing.
    EXPECT_EQ(r1.done, r2.done);
}

TEST(DramDevice, SameBankSerializes)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    const auto r1 = d.accessRow(0, 5, 64, false, 0);
    const auto r2 = d.accessRow(0, 5, 64, false, 0); // arrives at same time
    EXPECT_GT(r2.done, r1.done);
}

TEST(DramDevice, AddressMapInterleavesBanks)
{
    const auto params = DramTimingParams::hbm3Unit();
    DramDevice d(params, kFreq);
    // Consecutive rows land on different banks -> parallel at same time.
    const auto r1 = d.access(0, 64, false, 0);
    const auto r2 = d.access(params.rowBytes, 64, false, 0);
    EXPECT_EQ(r1.done, r2.done);
}

TEST(DramDevice, EnergyAccounting)
{
    const auto params = DramTimingParams::hbm3Unit();
    DramDevice d(params, kFreq);
    d.accessRow(0, 5, 64, false, 0); // 1 activation + 64 B read
    const double expect =
        64.0 * 8.0 * params.rdWrPjPerBit * 1e-3 + params.actPreNj;
    EXPECT_NEAR(d.dynamicEnergyNj(), expect, 1e-9);
}

TEST(DramDevice, BurstScalesWithSize)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    EXPECT_LT(d.burstCycles(64), d.burstCycles(1024));
}

TEST(DramDevice, ResetClearsState)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    d.accessRow(0, 5, 64, false, 0);
    d.reset();
    EXPECT_DOUBLE_EQ(d.dynamicEnergyNj(), 0.0);
    const auto r = d.accessRow(0, 5, 64, false, 0);
    EXPECT_FALSE(r.rowHit); // row closed again
}

TEST(DramDevice, ReportPopulatesStats)
{
    DramDevice d(DramTimingParams::hbm3Unit(), kFreq);
    d.accessRow(0, 5, 64, true, 0);
    d.accessRow(0, 5, 64, false, 1000);
    StatGroup stats;
    d.report(stats, "dram");
    EXPECT_DOUBLE_EQ(stats.get("dram.rowHits"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("dram.rowMisses"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("dram.bytesWritten"), 64.0);
    EXPECT_DOUBLE_EQ(stats.get("dram.bytesRead"), 64.0);
}

/** Property sweep: timing conversion is sane across technologies. */
class DramTechTest : public ::testing::TestWithParam<DramTimingParams>
{
};

TEST_P(DramTechTest, LatencyOrderingHolds)
{
    DramDevice d(GetParam(), kFreq);
    EXPECT_GT(d.rowHitLatency(), 0u);
    EXPECT_LT(d.rowHitLatency(), d.rowMissLatency());
    // Hit latency is ~tCAS at the core clock plus one burst.
    const double dram_cycle_ns = 1000.0 / GetParam().clockMhz;
    const double expect_ns = GetParam().tCas * dram_cycle_ns;
    const double got_ns =
        static_cast<double>(d.rowHitLatency() - d.burstCycles(64)) / 2.0;
    EXPECT_NEAR(got_ns, expect_ns, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechs, DramTechTest,
    ::testing::Values(DramTimingParams::hbm3Unit(),
                      DramTimingParams::hmc2Unit(),
                      DramTimingParams::ddr5Extended()),
    [](const ::testing::TestParamInfo<DramTimingParams>& info) {
        std::string name = info.param.name;
        for (auto& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace ndpext
