/**
 * @file
 * PacketPool: slab allocation, free-list recycling, high-water stats,
 * and the double-release hard error.
 */

#include "sim/packet_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ndpext {
namespace {

TEST(PacketPoolTest, AcquireReturnsDefaultInitialisedPacket)
{
    PacketPool pool;
    Packet* pkt = pool.acquire();
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->addr, 0u);
    EXPECT_EQ(pkt->bytes, kCachelineBytes);
    EXPECT_EQ(pkt->op, MemOp::Read);
    EXPECT_EQ(pkt->sid, kNoStream);
    EXPECT_EQ(pkt->ready, 0u);
    EXPECT_EQ(pkt->bd.total(), 0u);
    EXPECT_FALSE(pkt->pooled);
    EXPECT_EQ(pkt->poolNext, nullptr);
}

TEST(PacketPoolTest, ReleaseThenAcquireRecyclesTheSameObject)
{
    PacketPool pool;
    Packet* first = pool.acquire();
    first->addr = 0xdead;
    first->ready = 42;
    first->bd.extMem = 7;
    pool.release(first);

    Packet* second = pool.acquire();
    EXPECT_EQ(second, first) << "LIFO free list must reuse the object";
    // Recycled packets come back fully reset.
    EXPECT_EQ(second->addr, 0u);
    EXPECT_EQ(second->ready, 0u);
    EXPECT_EQ(second->bd.total(), 0u);
    EXPECT_FALSE(second->pooled);
    EXPECT_EQ(pool.allocated(), 1u) << "recycling is not an allocation";
}

TEST(PacketPoolTest, HighWaterTracksPeakNotCurrent)
{
    PacketPool pool;
    std::vector<Packet*> live;
    for (int i = 0; i < 10; ++i) {
        live.push_back(pool.acquire());
    }
    EXPECT_EQ(pool.inUse(), 10u);
    EXPECT_EQ(pool.highWater(), 10u);
    for (Packet* pkt : live) {
        pool.release(pkt);
    }
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.highWater(), 10u);
    Packet* one = pool.acquire();
    EXPECT_EQ(pool.inUse(), 1u);
    EXPECT_EQ(pool.highWater(), 10u);
    pool.release(one);
}

TEST(PacketPoolTest, SlabGrowthYieldsDistinctStablePointers)
{
    PacketPool pool;
    // Span several slabs and check every pointer is distinct and stays
    // valid (slabs never move or free while the pool lives).
    const std::size_t n = PacketPool::kSlabPackets * 3 + 5;
    std::vector<Packet*> live;
    std::set<Packet*> seen;
    for (std::size_t i = 0; i < n; ++i) {
        Packet* pkt = pool.acquire();
        pkt->elem = i;
        live.push_back(pkt);
        EXPECT_TRUE(seen.insert(pkt).second) << "duplicate live pointer";
    }
    EXPECT_EQ(pool.allocated(), n);
    EXPECT_EQ(pool.highWater(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(live[i]->elem, i);
    }
    for (Packet* pkt : live) {
        pool.release(pkt);
    }
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(PacketPoolTest, InterleavedChurnKeepsCountsConsistent)
{
    PacketPool pool;
    Packet* a = pool.acquire();
    Packet* b = pool.acquire();
    pool.release(a);
    Packet* c = pool.acquire(); // recycles a
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.inUse(), 2u);
    EXPECT_EQ(pool.highWater(), 2u);
    EXPECT_EQ(pool.allocated(), 2u);
    pool.release(b);
    pool.release(c);
}

TEST(PacketPoolDeathTest, DoubleReleaseIsAHardError)
{
    PacketPool pool;
    Packet* pkt = pool.acquire();
    pool.release(pkt);
    EXPECT_DEATH(pool.release(pkt), "double release");
}

} // namespace
} // namespace ndpext
