/**
 * End-to-end request tracing (DESIGN.md §6): the per-stage identity
 * (stage cycles sum exactly to request latency), the bounded
 * deterministic exemplar reservoirs, the observer-only contract
 * (tracing on/off and --threads never change a RunResult or the
 * exemplar stream), flow-event rendering and tenant-churn robustness in
 * the TraceWriter, checkpoint kill/resume byte-identity of every
 * telemetry artifact through the .part flush protocol, the
 * flat-checkpoint-image guarantee, and the heartbeat file contract.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serving/serving_config.h"
#include "serving/serving_workload.h"
#include "sim/checkpoint.h"
#include "system/ndp_system.h"
#include "telemetry/request_trace.h"
#include "telemetry/telemetry.h"
#include "telemetry/tiny_json.h"
#include "telemetry/trace_writer.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

// --- RequestTraceCollector unit tests -----------------------------------

RequestTraceRecord
record(std::uint32_t tenant, CoreId core, Cycles arrival, Cycles latency)
{
    RequestTraceRecord r;
    r.tenant = tenant;
    r.core = core;
    r.arrival = arrival;
    r.start = arrival + latency / 4;
    r.done = arrival + latency;
    r.queueWait = r.start - r.arrival;
    r.compute = r.done - r.start;
    return r;
}

std::vector<RequestTraceCollector::TenantMeta>
twoTenantMetas()
{
    return {{"emb", true, 50'000}, {"lin", false, 80'000}};
}

TEST(RequestTraceCollector, ReservoirIsBoundedAndKeepsTheSlowest)
{
    RequestTraceCollector::Params p;
    p.slowK = 4;
    p.uniformK = 4;
    RequestTraceCollector col(p);
    col.init(2, twoTenantMetas(), nullptr);
    ASSERT_TRUE(col.active());

    // 100 tenant-0 requests with distinct latencies, interleaved across
    // both cores; far more than the reservoir can hold.
    for (std::uint32_t i = 0; i < 100; ++i) {
        col.buffer(i % 2)->push(
            record(0, i % 2, 1000 + i * 10, 500 + i * 7));
    }
    col.drain();
    col.finalizeEpoch(0);

    const auto& kept = col.retained();
    ASSERT_FALSE(kept.empty());
    EXPECT_LE(kept.size(), p.slowK + p.uniformK);
    std::uint64_t slow = 0;
    for (const auto& e : kept) {
        EXPECT_EQ(e.epoch, 0u);
        EXPECT_EQ(e.rec.tenant, 0u);
        EXPECT_EQ(e.rec.stageSum(), e.rec.latency());
        if (e.slow) {
            ++slow;
            // The slow set must be exactly the largest latencies: every
            // non-retained request (latency < 500 + 96*7) is slower
            // than none of them.
            EXPECT_GE(e.rec.latency(), 500u + 96u * 7u);
        }
    }
    EXPECT_EQ(slow, p.slowK);
}

TEST(RequestTraceCollector, IdenticalInputGivesIdenticalExemplars)
{
    RequestTraceCollector::Params p;
    p.slowK = 3;
    p.uniformK = 3;
    const auto feed = [&p] {
        auto col = std::make_unique<RequestTraceCollector>(p);
        col->init(2, twoTenantMetas(), nullptr);
        for (std::uint32_t i = 0; i < 64; ++i) {
            col->buffer(i % 2)->push(record(i % 2, i % 2, i * 100,
                                            300 + (i * 37) % 900));
        }
        col->drain();
        col->finalizeEpoch(0);
        for (std::uint32_t i = 0; i < 64; ++i) {
            col->buffer(0)->push(
                record(1, 0, 100'000 + i * 50, 200 + (i * 13) % 700));
        }
        col->drain();
        col->finalizeEpoch(1);
        std::ostringstream os;
        col->writeJsonl(os);
        return os.str();
    };
    const std::string a = feed();
    EXPECT_EQ(a, feed());
    EXPECT_FALSE(a.empty());

    // Every line parses and matches the published schema fields.
    std::vector<json::ValuePtr> lines;
    std::string error;
    ASSERT_TRUE(json::parseLines(a, lines, &error)) << error;
    for (const auto& line : lines) {
        EXPECT_EQ(line->num("done") - line->num("arrival"),
                  line->num("latency"));
        const json::Value* stages = line->get("stages");
        ASSERT_NE(stages, nullptr);
        double sum = 0.0;
        for (const char* k :
             {"queueWait", "compute", "l1", "metadata", "icnIntra",
              "icnInter", "dramCache", "extMem", "mshrQueue"}) {
            ASSERT_NE(stages->get(k), nullptr) << k;
            sum += stages->num(k);
        }
        EXPECT_DOUBLE_EQ(sum, line->num("latency"));
    }
}

TEST(RequestTraceCollector, FlushedPlusRemainderEqualsFullDump)
{
    RequestTraceCollector::Params p;
    p.slowK = 2;
    p.uniformK = 2;
    RequestTraceCollector full(p);
    RequestTraceCollector flushing(p);
    full.init(1, twoTenantMetas(), nullptr);
    flushing.init(1, twoTenantMetas(), nullptr);
    std::ostringstream flushed;
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
        for (std::uint32_t i = 0; i < 16; ++i) {
            const RequestTraceRecord r =
                record(i % 2, 0, epoch * 10'000 + i * 100, 400 + i * 11);
            full.buffer(0)->push(r);
            flushing.buffer(0)->push(r);
        }
        full.drain();
        flushing.drain();
        full.finalizeEpoch(epoch);
        flushing.finalizeEpoch(epoch);
        flushing.flushJsonl(flushed); // mid-run flush every epoch
    }
    std::ostringstream want;
    full.writeJsonl(want);
    EXPECT_EQ(flushed.str(), want.str());
    EXPECT_TRUE(flushing.retained().empty());
    EXPECT_GT(flushing.flushedExemplars(), 0u);
}

// --- TraceWriter: flows, churn, duplicate metadata ----------------------

TEST(TraceWriter, FlowEventsRenderWithSharedIdAndBindingPoint)
{
    TraceWriter tw;
    tw.flowStart("request", "req", TraceWriter::kPidRequests, 0, 100, 7);
    tw.flowStep("request", "req", TraceWriter::kPidRequests, 0, 150, 7);
    tw.flowEnd("request", "req", TraceWriter::kPidRequests, 0, 200, 7);
    std::ostringstream os;
    tw.write(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(out.find("\"bp\":\"e\""), std::string::npos);
    // All three phases carry the shared id.
    std::size_t ids = 0;
    for (std::size_t at = out.find("\"id\":7"); at != std::string::npos;
         at = out.find("\"id\":7", at + 1)) {
        ++ids;
    }
    EXPECT_EQ(ids, 3u);
}

/**
 * Tenant churn: a departed tenant's exemplar spans are emitted after
 * its window closed, and a restore-time duplicate processName for pid 4
 * must not corrupt the trace. Every flow id still pairs exactly one
 * start with one end.
 */
TEST(TraceWriter, ChurnAndDuplicatePidGroupsKeepFlowsPaired)
{
    RequestTraceCollector::Params p;
    p.slowK = 2;
    p.uniformK = 1;
    TraceWriter tw;
    tw.processName(TraceWriter::kPidRequests, "requests"); // duplicate
    RequestTraceCollector col(p);
    col.init(1, twoTenantMetas(), &tw);

    // Tenant 1 departs after epoch 0: its spans land in epoch 0 only,
    // tenant 0 keeps going; finalize both epochs.
    for (std::uint32_t i = 0; i < 8; ++i) {
        col.buffer(0)->push(record(1, 0, i * 500, 900 + i * 31));
        col.buffer(0)->push(record(0, 0, i * 500 + 7, 800 + i * 17));
    }
    col.drain();
    col.finalizeEpoch(0);
    for (std::uint32_t i = 0; i < 8; ++i) {
        col.buffer(0)->push(record(0, 0, 50'000 + i * 500, 600 + i * 23));
    }
    col.drain();
    col.finalizeEpoch(1);

    std::ostringstream os;
    tw.write(os);
    std::string error;
    const json::ValuePtr doc = json::parse(os.str(), &error);
    ASSERT_NE(doc, nullptr) << error;
    const json::Value* events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);

    std::map<std::uint64_t, std::pair<int, int>> flows;
    bool sawTenant1Span = false;
    for (const auto& ev : events->array) {
        const std::string ph = ev->str("ph");
        if (ph == "s") {
            flows[static_cast<std::uint64_t>(ev->num("id"))].first++;
        } else if (ph == "f") {
            flows[static_cast<std::uint64_t>(ev->num("id"))].second++;
        } else if (ph == "X" && ev->num("tid") == 1.0) {
            sawTenant1Span = true;
        }
    }
    EXPECT_TRUE(sawTenant1Span) << "departed tenant's spans were lost";
    ASSERT_FALSE(flows.empty());
    for (const auto& [id, se] : flows) {
        EXPECT_EQ(se.first, 1) << "flow " << id;
        EXPECT_EQ(se.second, 1) << "flow " << id;
    }
}

TEST(TraceWriter, FlushedStitchedOutputMatchesUnflushedWrite)
{
    const auto feed = [](TraceWriter& tw, int from, int to) {
        for (int i = from; i < to; ++i) {
            tw.completeSpan("request", "r" + std::to_string(i),
                            TraceWriter::kPidRequests, i % 3,
                            static_cast<Cycles>(i * 10), 5);
            tw.flowStart("request", "req", TraceWriter::kPidRequests,
                         i % 3, static_cast<Cycles>(i * 10),
                         static_cast<std::uint64_t>(i + 1));
            tw.flowEnd("request", "req", TraceWriter::kPidRequests,
                       i % 3, static_cast<Cycles>(i * 10 + 5),
                       static_cast<std::uint64_t>(i + 1));
        }
    };
    TraceWriter plain;
    feed(plain, 0, 20);
    std::ostringstream want;
    plain.write(want);

    TraceWriter flushed;
    feed(flushed, 0, 11);
    std::ostringstream part;
    flushed.flushEventsTo(part);
    EXPECT_EQ(flushed.flushedEvents(), 33u);
    feed(flushed, 11, 20);
    std::vector<std::string> lines;
    std::istringstream in(part.str());
    for (std::string line; std::getline(in, line);) {
        lines.push_back(line);
    }
    std::ostringstream got;
    flushed.writeStitched(got, lines);
    EXPECT_EQ(got.str(), want.str());
}

// --- Full-system serving runs with tracing ------------------------------

SystemConfig
tinySystem(std::uint32_t threads)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 20'000;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

TenantSpec
tenant(const std::string& name, const std::string& workload,
       double period)
{
    TenantSpec t;
    t.name = name;
    t.workload = workload;
    t.periodCycles = period;
    return t;
}

/** Overloaded mix (queueing builds up; tail exemplars are interesting). */
ServingConfig
busyTenants()
{
    ServingConfig cfg;
    cfg.horizonCycles = 150'000;
    cfg.tenants.push_back(tenant("emb", "recsys", 3000.0));
    cfg.tenants[0].reserved = true;
    cfg.tenants[0].reservePct = 25.0;
    cfg.tenants[0].sloCycles = 60'000;
    cfg.tenants.push_back(tenant("lin", "mv", 4000.0));
    cfg.tenants[1].sloCycles = 80'000;
    return cfg;
}

std::unique_ptr<Telemetry>
tracingTelemetry(const std::string& prefix, std::uint64_t k = 4)
{
    TelemetryConfig tc;
    tc.outPrefix = prefix;
    tc.packetSampleEvery = 64;
    tc.traceRequests = true;
    tc.traceSlowK = k;
    tc.traceUniformK = k;
    return std::make_unique<Telemetry>(tc);
}

void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_DOUBLE_EQ(a.energy.totalNj(), b.energy.totalNj());
    EXPECT_EQ(a.reconfigurations, b.reconfigurations);
    const auto isWallClock = [](const std::string& name) {
        return name.size() >= 6
            && name.compare(name.size() - 6, 6, "Micros") == 0;
    };
    for (const auto& [name, value] : a.stats.raw()) {
        EXPECT_TRUE(b.stats.has(name)) << "missing stat " << name;
        if (!isWallClock(name)) {
            EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << "stat " << name;
        }
    }
    EXPECT_EQ(a.stats.raw().size(), b.stats.raw().size());
}

struct TracedRun
{
    RunResult result;
    /** The exemplar JSONL rendering (captures the full retained set). */
    std::string exemplars;
};

TracedRun
runTraced(const ServingConfig& serving, std::uint32_t threads,
          std::uint64_t k = 4)
{
    SystemConfig cfg = tinySystem(threads);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());
    auto tel = tracingTelemetry("", k);
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    sys.attachTelemetry(tel.get());
    TracedRun out;
    out.result = sys.run(w);
    std::ostringstream os;
    tel->requestTrace().writeJsonl(os);
    out.exemplars = os.str();
    return out;
}

/**
 * The tentpole contract: request tracing is observer-only (identical
 * RunResult with tracing on or off, at any thread count) and the
 * exemplar stream itself is bit-identical across --threads.
 */
TEST(RequestTraceSystem, ObserverOnlyAndDeterministicAcrossThreads)
{
    const ServingConfig serving = busyTenants();

    SystemConfig cfg = tinySystem(1);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());
    NdpSystem plain(cfg, PolicyKind::NdpExt);
    const RunResult base = plain.run(w);

    const TracedRun t1 = runTraced(serving, 1);
    const TracedRun t8 = runTraced(serving, 8);
    expectIdentical(base, t1.result);
    expectIdentical(base, t8.result);
    EXPECT_FALSE(t1.exemplars.empty());
    EXPECT_EQ(t1.exemplars, t8.exemplars)
        << "exemplar stream depends on --threads";
}

/**
 * Every retained exemplar reconstructs the full causal span path: the
 * nine stage cycles sum exactly to the request latency, and per tenant
 * and epoch at most slowK + uniformK exemplars are kept, always
 * including the slow set.
 */
TEST(RequestTraceSystem, StageSumEqualsLatencyAndReservoirIsBounded)
{
    const std::uint64_t k = 3;
    const ServingConfig serving = busyTenants();
    SystemConfig cfg = tinySystem(2);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());
    auto tel = tracingTelemetry("", k);
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    sys.attachTelemetry(tel.get());
    const RunResult res = sys.run(w);

    const auto& kept = tel->requestTrace().retained();
    ASSERT_FALSE(kept.empty());
    std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> per;
    std::map<std::uint32_t, std::uint64_t> slowPerTenant;
    std::uint64_t tenant1 = 0;
    for (const auto& e : kept) {
        EXPECT_EQ(e.rec.stageSum(), e.rec.latency())
            << "unattributed cycles in exemplar (tenant " << e.rec.tenant
            << ", arrival " << e.rec.arrival << ")";
        EXPECT_GE(e.rec.start, e.rec.arrival);
        EXPECT_GE(e.rec.done, e.rec.start);
        EXPECT_LT(e.rec.core, 8u);
        ASSERT_LT(e.rec.tenant, 2u);
        per[{e.epoch, e.rec.tenant}]++;
        if (e.slow) {
            slowPerTenant[e.rec.tenant]++;
        }
        tenant1 += e.rec.tenant == 1 ? 1 : 0;
    }
    for (const auto& [key, count] : per) {
        EXPECT_LE(count, 2 * k)
            << "epoch " << key.first << " tenant " << key.second;
    }
    // Both tenants retire requests in this mix, so both must retain
    // slow exemplars -- the p99 blame view needs them.
    EXPECT_GE(slowPerTenant[0], k);
    EXPECT_GE(slowPerTenant[1], k);
    EXPECT_GT(tenant1, 0u);
    // Exemplars describe real retired requests.
    EXPECT_GT(res.stats.get("tenant.emb.retired"), 0.0);
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Kill/resume byte-identity through the flush protocol: a run that
 * checkpoints every epoch (flushing telemetry to .part side files
 * before each snapshot), abandoned mid-run and resumed from a mid-run
 * image by a fresh process-equivalent, must produce byte-identical
 * metrics/trace/decisions/exemplars files to an uninterrupted run.
 */
TEST(RequestTraceSystem, ResumeStitchesByteIdenticalArtifacts)
{
    const ServingConfig serving = busyTenants();
    SystemConfig cfg = tinySystem(1);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());

    // Golden: no checkpointing, everything written from memory.
    const std::string gold = ::testing::TempDir() + "reqtrace_gold";
    {
        auto tel = tracingTelemetry(gold);
        NdpSystem sys(cfg, PolicyKind::NdpExt);
        sys.attachTelemetry(tel.get());
        (void)sys.run(w);
        std::string error;
        ASSERT_TRUE(tel->writeAll(&error)) << error;
    }

    // Emitter: checkpoint + flush every epoch. Its in-memory tail is
    // thrown away (no writeAll) -- only the images and .part files
    // survive, exactly like a killed process.
    const std::string prefix = ::testing::TempDir() + "reqtrace_resume";
    const std::string ckpt = prefix + ".ckpt";
    {
        auto tel = tracingTelemetry(prefix);
        NdpSystem sys(cfg, PolicyKind::NdpExt);
        sys.attachTelemetry(tel.get());
        sys.setCheckpointing(ckpt, 1);
        (void)sys.run(w);
    }
    ASSERT_FALSE(slurp(prefix + ".exemplars.part").empty());

    std::string newest;
    std::string error;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(ckpt, &newest, &h, &error))
        << error;
    ASSERT_GE(h.epoch, 3u) << "run too short to exercise resume";

    // Resume from a mid-run image: deserialize truncates the .part
    // files back to the snapshot's flush cursors, the rerun appends the
    // rest, and writeAll stitches the final files.
    const std::string image =
        ckpt + "." + std::to_string(h.epoch / 2) + ".ckpt";
    auto tel = tracingTelemetry(prefix);
    NdpSystem resumed(cfg, PolicyKind::NdpExt);
    resumed.attachTelemetry(tel.get());
    ASSERT_TRUE(resumed.setResume(image, w, &error)) << error;
    (void)resumed.run(w);
    ASSERT_TRUE(tel->writeAll(&error)) << error;

    for (const char* suffix :
         {".exemplars.jsonl", ".metrics.jsonl", ".decisions.jsonl",
          ".trace.json"}) {
        const std::string got = slurp(prefix + suffix);
        EXPECT_FALSE(got.empty()) << suffix;
        EXPECT_EQ(got, slurp(gold + suffix)) << suffix;
    }
}

std::uint64_t
fileSize(const std::string& path)
{
    struct ::stat st = {};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
    return static_cast<std::uint64_t>(st.st_size);
}

/**
 * Satellite: flushing telemetry before each snapshot bounds checkpoint
 * growth. The telemetry contribution to the image (with-telemetry size
 * minus the paired no-telemetry size -- observer-only, so the sim state
 * inside both images is identical) must be flat across epochs even at
 * packet-sample-every-miss rates.
 */
TEST(RequestTraceSystem, CheckpointImageStaysFlatAcrossEpochs)
{
    ServingConfig serving;
    serving.horizonCycles = 150'000;
    serving.tenants.push_back(tenant("emb", "recsys", 15'000.0));
    serving.tenants[0].arrival = "fixed";
    serving.tenants.push_back(tenant("lin", "mv", 18'000.0));
    serving.tenants[1].arrival = "fixed";
    SystemConfig cfg = tinySystem(1);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());

    const std::string bare = ::testing::TempDir() + "reqtrace_img_bare";
    {
        NdpSystem sys(cfg, PolicyKind::NdpExt);
        sys.setCheckpointing(bare, 1);
        (void)sys.run(w);
    }
    const std::string tele = ::testing::TempDir() + "reqtrace_img_tele";
    {
        TelemetryConfig tc;
        tc.outPrefix = tele;
        // Aggressive sampling: without the pre-snapshot flush this
        // would grow the image every epoch.
        tc.packetSampleEvery = 1;
        tc.traceRequests = true;
        tc.traceSlowK = 4;
        tc.traceUniformK = 4;
        auto tel = std::make_unique<Telemetry>(tc);
        NdpSystem sys(cfg, PolicyKind::NdpExt);
        sys.attachTelemetry(tel.get());
        sys.setCheckpointing(tele + ".ckpt", 1);
        (void)sys.run(w);
    }

    std::vector<std::uint64_t> deltas;
    for (std::uint64_t epoch = 1;; ++epoch) {
        const std::string suffix = "." + std::to_string(epoch) + ".ckpt";
        struct ::stat st = {};
        if (::stat((bare + suffix).c_str(), &st) != 0) {
            break;
        }
        const std::uint64_t with = fileSize(tele + ".ckpt" + suffix);
        const std::uint64_t without = fileSize(bare + suffix);
        ASSERT_GT(with, without);
        deltas.push_back(with - without);
    }
    ASSERT_GE(deltas.size(), 4u) << "run too short to measure growth";
    for (std::size_t i = 1; i < deltas.size(); ++i) {
        EXPECT_LE(deltas[i], deltas[0] + 512)
            << "telemetry checkpoint footprint grew by epoch " << i + 1;
    }
}

/**
 * The heartbeat file: atomically rewritten at every epoch barrier,
 * final write has done=true, and the tenant rows cover the serving
 * config (DESIGN.md §6).
 */
TEST(RequestTraceSystem, HeartbeatFileIsCompleteAndFinal)
{
    const ServingConfig serving = busyTenants();
    SystemConfig cfg = tinySystem(2);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());
    const std::string hb =
        ::testing::TempDir() + "reqtrace_heartbeat.json";
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    sys.addHeartbeatPath(hb);
    const RunResult res = sys.run(w);

    std::string error;
    const json::ValuePtr doc = json::parse(slurp(hb), &error);
    ASSERT_NE(doc, nullptr) << error;
    const json::Value* done = doc->get("done");
    ASSERT_NE(done, nullptr);
    EXPECT_TRUE(done->isBool() && done->boolean);
    EXPECT_EQ(static_cast<std::uint64_t>(doc->num("cycles")), res.cycles);
    EXPECT_GT(doc->num("epoch"), 0.0);
    EXPECT_EQ(doc->num("epochCycles"),
              static_cast<double>(cfg.runtime.epochCycles));
    EXPECT_EQ(doc->num("horizonCycles"),
              static_cast<double>(serving.horizonCycles));
    EXPECT_EQ(static_cast<std::uint64_t>(doc->num("accesses")),
              res.accesses);
    EXPECT_GT(doc->num("wallUnixMs"), 0.0);
    const json::Value* tenants = doc->get("tenants");
    ASSERT_NE(tenants, nullptr);
    ASSERT_TRUE(tenants->isArray());
    ASSERT_EQ(tenants->array.size(), 2u);
    EXPECT_EQ(tenants->array[0]->str("name"), "emb");
    EXPECT_EQ(tenants->array[0]->num("reserved"), 1.0);
    EXPECT_DOUBLE_EQ(tenants->array[0]->num("retired"),
                     res.stats.get("tenant.emb.retired"));
    EXPECT_DOUBLE_EQ(tenants->array[1]->num("violations"),
                     res.stats.get("tenant.lin.sloViolations"));
}

} // namespace
} // namespace ndpext
