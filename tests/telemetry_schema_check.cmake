# Telemetry schema gate (ctest): a short --telemetry run must produce a
# per-epoch metrics JSONL, a Perfetto-loadable trace, and a decision log
# that all pass `ndpext_report check`, and the summary/diff subcommands
# must run cleanly against them. Invoked with -DSIM=... -DREPORT=...
# -DOUT_DIR=... (see tests/CMakeLists.txt).

file(MAKE_DIRECTORY ${OUT_DIR})

execute_process(
    COMMAND ${SIM} --workload=pr --accesses=2000 --epoch=50000
            --telemetry=${OUT_DIR}/run --telemetry-sample=16
            --stats-json=${OUT_DIR}/run.stats.json
    RESULT_VARIABLE sim_rc
    OUTPUT_QUIET)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR "ndpext_sim --telemetry failed (rc=${sim_rc})")
endif()

foreach(suffix metrics.jsonl trace.json decisions.jsonl)
    if(NOT EXISTS ${OUT_DIR}/run.${suffix})
        message(FATAL_ERROR "missing telemetry file run.${suffix}")
    endif()
endforeach()

execute_process(
    COMMAND ${REPORT} check ${OUT_DIR}/run
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "ndpext_report check failed: ${check_out}${check_err}")
endif()

execute_process(
    COMMAND ${REPORT} summary ${OUT_DIR}/run
    RESULT_VARIABLE summary_rc
    OUTPUT_QUIET)
if(NOT summary_rc EQUAL 0)
    message(FATAL_ERROR "ndpext_report summary failed")
endif()

execute_process(
    COMMAND ${REPORT} diff ${OUT_DIR}/run ${OUT_DIR}/run
    RESULT_VARIABLE diff_rc
    OUTPUT_QUIET)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "ndpext_report diff failed")
endif()
