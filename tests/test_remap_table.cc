/** Tests for the stream remap table (RShares/RRowBase/RGroups). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ndp/remap_table.h"

namespace ndpext {
namespace {

constexpr std::uint32_t kUnits = 8;
constexpr std::uint32_t kRowsPerUnit = 64;
constexpr std::uint32_t kRowBytes = 2048;

struct Fixture
{
    MeshTopology topo{2, 1, 2, 2}; // 2 stacks x 4 units = 8 units
    NocParams nocParams;
    NocModel noc{topo, nocParams};
};

StreamAlloc
twoGroupAlloc()
{
    StreamAlloc a(kUnits);
    a.numGroups = 2;
    a.shareRows = {8, 6, 0, 0, 4, 2, 0, 0};
    a.groupOf = {0, 0, 0, 0, 1, 1, 0, 0};
    a.rowBase = {0, 0, 0, 0, 0, 0, 0, 0};
    return a;
}

TEST(StreamAlloc, TotalsAndGroups)
{
    const auto a = twoGroupAlloc();
    EXPECT_EQ(a.totalRows(), 20u);
    EXPECT_EQ(a.rowsOfGroup(0), 14u);
    EXPECT_EQ(a.rowsOfGroup(1), 6u);
    EXPECT_FALSE(a.empty());
}

TEST(RemapTable, AllocAccounting)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    EXPECT_EQ(t.freeRows(0), kRowsPerUnit);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    EXPECT_EQ(t.usedRows(0), 8u);
    EXPECT_EQ(t.freeRows(0), kRowsPerUnit - 8);
    EXPECT_EQ(t.usedRows(4), 4u);
    t.clearAlloc(0);
    EXPECT_EQ(t.usedRows(0), 0u);
    EXPECT_EQ(t.alloc(0), nullptr);
}

TEST(RemapTable, UnitSlotsFromShares)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    EXPECT_EQ(t.unitSlots(0, 0), 8u * kRowBytes / 8);
    EXPECT_EQ(t.unitSlots(0, 2), 0u);
}

TEST(RemapTable, ServingGroupPrefersNearby)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    // Units 0/1 (stack 0) hold group 0; units 4/5 (stack 1) hold group 1.
    EXPECT_EQ(t.servingGroup(0, 0), 0u);
    EXPECT_EQ(t.servingGroup(0, 1), 0u);
    EXPECT_EQ(t.servingGroup(0, 4), 1u);
    EXPECT_EQ(t.servingGroup(0, 5), 1u);
}

TEST(RemapTable, LocateStaysInServingGroup)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    for (std::uint64_t g = 0; g < 5000; ++g) {
        const auto loc0 = t.locate(0, g, /*from=*/0);
        EXPECT_TRUE(loc0.unit == 0 || loc0.unit == 1) << loc0.unit;
        const auto loc1 = t.locate(0, g, /*from=*/4);
        EXPECT_TRUE(loc1.unit == 4 || loc1.unit == 5) << loc1.unit;
    }
}

TEST(RemapTable, LocateRowWithinAllocation)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    auto alloc = twoGroupAlloc();
    alloc.rowBase = {10, 20, 0, 0, 30, 40, 0, 0};
    t.setAlloc(0, alloc, 8, f.noc);
    for (std::uint64_t g = 0; g < 5000; ++g) {
        const auto loc = t.locate(0, g, 0);
        const std::uint32_t base = alloc.rowBase[loc.unit];
        const std::uint32_t rows = alloc.shareRows[loc.unit];
        EXPECT_GE(loc.deviceRow, base);
        EXPECT_LT(loc.deviceRow, base + rows);
        EXPECT_LT(loc.unitSlot, t.unitSlots(0, loc.unit));
    }
}

TEST(RemapTable, LocateSpreadsAcrossUnitsByShare)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    std::map<UnitId, int> counts;
    for (std::uint64_t g = 0; g < 20000; ++g) {
        ++counts[t.locate(0, g, 0).unit];
    }
    // Unit 0 has 8 rows vs unit 1's 6: expect roughly 8:6 split.
    const double ratio =
        static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
    EXPECT_NEAR(ratio, 8.0 / 6.0, 0.15);
}

TEST(RemapTable, OverAllocationFailsValidation)
{
    Fixture f;
    StreamRemapTable t(kUnits, 4, kRowBytes, RemapMode::Modulo);
    StreamAlloc a(kUnits);
    a.numGroups = 1;
    a.shareRows[0] = 5; // > 4 rows per unit
    t.setAlloc(0, a, 8, f.noc); // batch members may transiently overshoot
    EXPECT_EQ(t.freeRows(0), 0u);
    EXPECT_DEATH(t.validateCapacity(), "over-allocated");
}

TEST(RemapTable, ConsistentHashSurvivalOnShrink)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes,
                       RemapMode::ConsistentHash);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    auto shrunk = twoGroupAlloc();
    shrunk.shareRows = {6, 6, 0, 0, 4, 2, 0, 0}; // unit 0 loses 2 rows
    t.setAlloc(0, shrunk, 8, f.noc);
    EXPECT_NEAR(t.lastSurvivalFraction(0), 18.0 / 20.0, 1e-9);
    EXPECT_EQ(t.survivingRows(0).size(), 18u);
}

TEST(RemapTable, ModuloSurvivalOnlyWhenIdentical)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, RemapMode::Modulo);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc);
    t.setAlloc(0, twoGroupAlloc(), 8, f.noc); // identical
    EXPECT_DOUBLE_EQ(t.lastSurvivalFraction(0), 1.0);
    auto changed = twoGroupAlloc();
    changed.shareRows[0] = 7;
    t.setAlloc(0, changed, 8, f.noc);
    EXPECT_DOUBLE_EQ(t.lastSurvivalFraction(0), 0.0);
}

TEST(RemapTable, ConsistentHashKeepsMostMappingsStable)
{
    Fixture f;
    StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes,
                       RemapMode::ConsistentHash);
    StreamAlloc a(kUnits);
    a.numGroups = 1;
    a.shareRows = {16, 16, 16, 16, 0, 0, 0, 0};
    t.setAlloc(0, a, 8, f.noc);
    std::map<std::uint64_t, CacheLocation> before;
    for (std::uint64_t g = 0; g < 4000; ++g) {
        before[g] = t.locate(0, g, 0);
    }
    // Shrink one unit slightly.
    auto b = a;
    b.shareRows[3] = 12;
    t.setAlloc(0, b, 8, f.noc);
    int moved = 0;
    for (std::uint64_t g = 0; g < 4000; ++g) {
        const auto loc = t.locate(0, g, 0);
        if (loc.unit != before[g].unit
            || loc.deviceRow != before[g].deviceRow) {
            ++moved;
        }
    }
    // Only ~4/64 of the spots vanished; far fewer than half the keys move.
    EXPECT_LT(moved, 4000 / 2);
    EXPECT_GT(moved, 0);
}

/** Property sweep over granule sizes: locate() is always in-bounds. */
class RemapGranuleTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RemapGranuleTest, LocateInBounds)
{
    Fixture f;
    const std::uint32_t granule = GetParam();
    for (const auto mode :
         {RemapMode::Modulo, RemapMode::ConsistentHash}) {
        StreamRemapTable t(kUnits, kRowsPerUnit, kRowBytes, mode);
        t.setAlloc(0, twoGroupAlloc(), granule, f.noc);
        for (std::uint64_t g = 0; g < 2000; ++g) {
            for (UnitId from = 0; from < kUnits; ++from) {
                const auto loc = t.locate(0, g, from);
                ASSERT_LT(loc.unit, kUnits);
                ASSERT_GT(t.unitSlots(0, loc.unit), loc.unitSlot);
                ASSERT_LT(loc.deviceRow, kRowsPerUnit);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Granules, RemapGranuleTest,
                         ::testing::Values(4u, 8u, 64u, 128u, 1024u,
                                           4096u));

} // namespace
} // namespace ndpext
