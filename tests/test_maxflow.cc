/** Tests for Edmonds-Karp max-flow and the sampler assignment. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "runtime/max_flow.h"
#include "runtime/sampler_assign.h"

namespace ndpext {
namespace {

TEST(MaxFlow, SimpleChain)
{
    MaxFlow f(3);
    f.addEdge(0, 1, 5);
    f.addEdge(1, 2, 3);
    EXPECT_EQ(f.solve(0, 2), 3);
}

TEST(MaxFlow, ParallelPaths)
{
    MaxFlow f(4);
    f.addEdge(0, 1, 2);
    f.addEdge(0, 2, 2);
    f.addEdge(1, 3, 2);
    f.addEdge(2, 3, 2);
    EXPECT_EQ(f.solve(0, 3), 4);
}

TEST(MaxFlow, ClassicCrossEdge)
{
    // The textbook example where augmenting must use the residual edge.
    MaxFlow f(4);
    f.addEdge(0, 1, 1);
    f.addEdge(0, 2, 1);
    const auto cross = f.addEdge(1, 2, 1);
    f.addEdge(1, 3, 1);
    f.addEdge(2, 3, 1);
    EXPECT_EQ(f.solve(0, 3), 2);
    (void)cross;
}

TEST(MaxFlow, FlowOnReportsPerEdge)
{
    MaxFlow f(3);
    const auto e1 = f.addEdge(0, 1, 5);
    const auto e2 = f.addEdge(1, 2, 3);
    f.solve(0, 2);
    EXPECT_EQ(f.flowOn(e1), 3);
    EXPECT_EQ(f.flowOn(e2), 3);
}

TEST(MaxFlow, DisconnectedIsZero)
{
    MaxFlow f(4);
    f.addEdge(0, 1, 5);
    f.addEdge(2, 3, 5);
    EXPECT_EQ(f.solve(0, 3), 0);
}

/**
 * Property: on random bipartite graphs, max-flow matching size equals a
 * greedy-augmenting (Hungarian-style) reference matcher.
 */
class BipartiteMatchTest : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static bool
    tryKuhn(std::uint32_t u,
            const std::vector<std::vector<std::uint32_t>>& adj,
            std::vector<std::int32_t>& match_right,
            std::vector<bool>& used)
    {
        for (const auto v : adj[u]) {
            if (used[v]) {
                continue;
            }
            used[v] = true;
            if (match_right[v] < 0
                || tryKuhn(static_cast<std::uint32_t>(match_right[v]), adj,
                           match_right, used)) {
                match_right[v] = static_cast<std::int32_t>(u);
                return true;
            }
        }
        return false;
    }
};

TEST_P(BipartiteMatchTest, MatchesReferenceMatching)
{
    Rng rng(GetParam());
    const std::uint32_t left = 8;
    const std::uint32_t right = 10;
    std::vector<std::vector<std::uint32_t>> adj(left);
    for (std::uint32_t u = 0; u < left; ++u) {
        for (std::uint32_t v = 0; v < right; ++v) {
            if (rng.nextBool(0.3)) {
                adj[u].push_back(v);
            }
        }
    }

    // Reference: Kuhn's algorithm.
    std::vector<std::int32_t> match_right(right, -1);
    std::uint32_t ref = 0;
    for (std::uint32_t u = 0; u < left; ++u) {
        std::vector<bool> used(right, false);
        ref += tryKuhn(u, adj, match_right, used) ? 1 : 0;
    }

    // Max-flow formulation (capacity 1 everywhere).
    MaxFlow f(left + right + 2);
    const std::uint32_t s = left + right;
    const std::uint32_t t = s + 1;
    for (std::uint32_t u = 0; u < left; ++u) {
        f.addEdge(s, u, 1);
        for (const auto v : adj[u]) {
            f.addEdge(u, left + v, 1);
        }
    }
    for (std::uint32_t v = 0; v < right; ++v) {
        f.addEdge(left + v, t, 1);
    }
    EXPECT_EQ(f.solve(s, t), static_cast<std::int64_t>(ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BipartiteMatchTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

TEST(SamplerAssigner, CoversAllWhenCapacitySuffices)
{
    // 3 units x 4 samplers, 6 streams, everyone accesses everything.
    std::vector<std::vector<bool>> accessed(
        3, std::vector<bool>(16, false));
    std::vector<StreamId> streams;
    for (StreamId s = 0; s < 6; ++s) {
        streams.push_back(s);
        for (auto& unit : accessed) {
            unit[s] = true;
        }
    }
    const auto a = SamplerAssigner(4).assign(accessed, streams);
    EXPECT_EQ(a.covered, 6u);
    EXPECT_TRUE(a.uncovered.empty());
    // No unit exceeds its sampler budget; every stream appears once.
    std::vector<int> count(6, 0);
    for (const auto& unit : a.perUnit) {
        EXPECT_LE(unit.size(), 4u);
        for (const auto sid : unit) {
            ++count[sid];
        }
    }
    for (const int c : count) {
        EXPECT_EQ(c, 1);
    }
}

TEST(SamplerAssigner, OnlyAccessingUnitsSample)
{
    std::vector<std::vector<bool>> accessed(
        2, std::vector<bool>(8, false));
    accessed[0][3] = true; // only unit 0 touches stream 3
    const auto a = SamplerAssigner(4).assign(accessed, {3});
    EXPECT_EQ(a.covered, 1u);
    ASSERT_EQ(a.perUnit[0].size(), 1u);
    EXPECT_EQ(a.perUnit[0][0], 3u);
    EXPECT_TRUE(a.perUnit[1].empty());
}

TEST(SamplerAssigner, ReportsUncoveredWhenOversubscribed)
{
    // 1 unit x 2 samplers but 5 streams all on that unit.
    std::vector<std::vector<bool>> accessed(
        1, std::vector<bool>(8, false));
    std::vector<StreamId> streams;
    for (StreamId s = 0; s < 5; ++s) {
        accessed[0][s] = true;
        streams.push_back(s);
    }
    const auto a = SamplerAssigner(2).assign(accessed, streams);
    EXPECT_EQ(a.covered, 2u);
    EXPECT_EQ(a.uncovered.size(), 3u);
}

TEST(SamplerAssigner, SharedStreamsSpreadAcrossUnits)
{
    // 2 units x 1 sampler, 2 streams accessed by both: max-flow must give
    // one stream to each unit (greedy could double-book one unit).
    std::vector<std::vector<bool>> accessed(
        2, std::vector<bool>(8, false));
    accessed[0][0] = accessed[0][1] = true;
    accessed[1][0] = accessed[1][1] = true;
    const auto a = SamplerAssigner(1).assign(accessed, {0, 1});
    EXPECT_EQ(a.covered, 2u);
    EXPECT_EQ(a.perUnit[0].size(), 1u);
    EXPECT_EQ(a.perUnit[1].size(), 1u);
}

} // namespace
} // namespace ndpext
