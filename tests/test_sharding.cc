/**
 * Determinism regression for the sharded epoch-parallel executor: the
 * shard decomposition is fixed (one shard per stack), so every
 * numThreads value must produce a bit-identical RunResult -- cycles,
 * latency breakdown, energy, degraded counters, and the full StatGroup.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

SystemConfig
tinyConfig(std::uint32_t threads)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 200'000;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

/** Assert two runs are bit-identical in every reported quantity. */
void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);

    EXPECT_EQ(a.bd.requests, b.bd.requests);
    EXPECT_EQ(a.bd.metadata, b.bd.metadata);
    EXPECT_EQ(a.bd.icnIntra, b.bd.icnIntra);
    EXPECT_EQ(a.bd.icnInter, b.bd.icnInter);
    EXPECT_EQ(a.bd.dramCache, b.bd.dramCache);
    EXPECT_EQ(a.bd.extMem, b.bd.extMem);

    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_DOUBLE_EQ(a.metadataHitRate, b.metadataHitRate);

    EXPECT_DOUBLE_EQ(a.energy.staticNj, b.energy.staticNj);
    EXPECT_DOUBLE_EQ(a.energy.ndpDramNj, b.energy.ndpDramNj);
    EXPECT_DOUBLE_EQ(a.energy.extDramNj, b.energy.extDramNj);
    EXPECT_DOUBLE_EQ(a.energy.cxlLinkNj, b.energy.cxlLinkNj);
    EXPECT_DOUBLE_EQ(a.energy.icnNj, b.energy.icnNj);
    EXPECT_DOUBLE_EQ(a.energy.sramNj, b.energy.sramNj);

    EXPECT_EQ(a.writeExceptions, b.writeExceptions);
    EXPECT_EQ(a.invalidatedRows, b.invalidatedRows);
    EXPECT_EQ(a.survivedRows, b.survivedRows);
    EXPECT_EQ(a.reconfigurations, b.reconfigurations);
    EXPECT_EQ(a.slbMisses, b.slbMisses);

    EXPECT_EQ(a.degraded.linkRetries, b.degraded.linkRetries);
    EXPECT_EQ(a.degraded.retriesExhausted, b.degraded.retriesExhausted);
    EXPECT_EQ(a.degraded.poisonedReads, b.degraded.poisonedReads);
    EXPECT_EQ(a.degraded.poisonEscalations, b.degraded.poisonEscalations);
    EXPECT_EQ(a.degraded.failedUnitRedirects,
              b.degraded.failedUnitRedirects);
    EXPECT_EQ(a.degraded.dramFaultRefetches, b.degraded.dramFaultRefetches);
    EXPECT_EQ(a.degraded.failedUnits, b.degraded.failedUnits);
    EXPECT_EQ(a.degraded.emergencyReconfigs, b.degraded.emergencyReconfigs);
    EXPECT_EQ(a.degraded.cyclesDegraded, b.degraded.cyclesDegraded);

    // The full counter map, bit for bit. Stats ending in "Micros" are
    // host wall-clock measurements of the simulator itself (solver
    // timing); they vary between any two runs and are outside the
    // determinism contract (DESIGN.md section 5.3).
    const auto isWallClock = [](const std::string& name) {
        return name.size() >= 6
            && name.compare(name.size() - 6, 6, "Micros") == 0;
    };
    for (const auto& [name, value] : a.stats.raw()) {
        EXPECT_TRUE(b.stats.has(name)) << "missing stat " << name;
        if (!isWallClock(name)) {
            EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << "stat " << name;
        }
    }
    EXPECT_EQ(a.stats.raw().size(), b.stats.raw().size());
}

RunResult
runWith(std::uint32_t threads, const Workload& w, PolicyKind policy,
        const FaultParams* faults = nullptr)
{
    SystemConfig cfg = tinyConfig(threads);
    if (faults != nullptr) {
        cfg.faults = *faults;
    }
    NdpSystem sys(cfg, policy);
    return sys.run(w);
}

class ThreadCountTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ThreadCountTest, BitIdenticalToSingleThread)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    const RunResult base = runWith(1, *w, PolicyKind::NdpExt);
    const RunResult got = runWith(GetParam(), *w, PolicyKind::NdpExt);
    expectIdentical(base, got);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(2u, 8u),
                         [](const ::testing::TestParamInfo<std::uint32_t>&
                                info) {
                             return "t" + std::to_string(info.param);
                         });

TEST(Sharding, CachelineBaselineIdenticalAcrossThreads)
{
    auto w = makeWorkload("bfs");
    w->prepare(tinyParams());
    const RunResult base = runWith(1, *w, PolicyKind::StaticInterleave);
    const RunResult got = runWith(8, *w, PolicyKind::StaticInterleave);
    expectIdentical(base, got);
}

TEST(Sharding, WriteHeavyWorkloadIdenticalAcrossThreads)
{
    // backprop raises write-to-read-only exceptions, exercising the
    // deferred (barrier-applied) markWritten/collapseReplication path.
    auto w = makeWorkload("backprop");
    w->prepare(tinyParams());
    const RunResult base = runWith(1, *w, PolicyKind::NdpExt);
    const RunResult got = runWith(8, *w, PolicyKind::NdpExt);
    EXPECT_GE(base.writeExceptions, 1u);
    expectIdentical(base, got);
}

TEST(Sharding, FaultyRunIdenticalAcrossThreads)
{
    auto w = makeWorkload("pr");
    w->prepare(tinyParams());
    FaultParams faults;
    faults.seed = 99;
    faults.cxlTransientProb = 1e-3;
    faults.cxlPoisonProb = 1e-5;
    faults.dramBitProb = 1e-5;
    faults.unitFailures.push_back({3, 150'000});
    const RunResult base = runWith(1, *w, PolicyKind::NdpExt, &faults);
    const RunResult got = runWith(8, *w, PolicyKind::NdpExt, &faults);
    EXPECT_EQ(base.degraded.failedUnits, 1u);
    EXPECT_EQ(base.degraded.emergencyReconfigs, 1u);
    expectIdentical(base, got);
}

TEST(Sharding, ExcessThreadsAreClamped)
{
    auto w = makeWorkload("mv");
    w->prepare(tinyParams());
    // More threads than shards (2 stacks) must still work and match.
    const RunResult base = runWith(1, *w, PolicyKind::NdpExt);
    const RunResult got = runWith(64, *w, PolicyKind::NdpExt);
    expectIdentical(base, got);
}

} // namespace
} // namespace ndpext
