/** End-to-end tests of the StreamCacheController datapath. */

#include <gtest/gtest.h>

#include "ndp/stream_cache.h"
#include "runtime/static_config.h"

namespace ndpext {
namespace {

struct Rig
{
    MeshTopology topo{2, 1, 2, 2}; // 8 units
    NocParams nocParams;
    NocModel noc{topo, nocParams};
    CxlParams cxlParams;
    ExtendedMemory ext{cxlParams, DramTimingParams::ddr5Extended(), 2000};
    StreamTable table;
    StreamCacheParams params;
    std::unique_ptr<StreamCacheController> cache;

    explicit Rig(bool cacheline_mode = false,
                 RemapMode mode = RemapMode::ConsistentHash)
    {
        params.cachelineMode = cacheline_mode;
        params.remapMode = mode;
        params.sampler.minCapacityBytes = 1_KiB;
        params.sampler.maxCapacityBytes = 256_KiB;
        params.sampler.numCapacities = 8;
        params.affineCapBytesPerUnit = 64_KiB;
        cache = std::make_unique<StreamCacheController>(
            params, table, noc, ext, DramTimingParams::hbm3Unit(),
            256_KiB, 2000);
    }

    StreamId
    addStream(StreamType type, std::uint64_t bytes, std::uint32_t elem,
              bool read_only)
    {
        auto cfg = StreamConfig::dense(
            "s" + std::to_string(table.numStreams()), type,
            0x100000 + table.numStreams() * 0x1000000, bytes, elem);
        cfg.readOnly = read_only;
        return table.configureStream(cfg);
    }

    void
    allocateEverything()
    {
        cache->applyConfiguration(makeStaticEqualConfig(
            table, cache->numUnits(), cache->rowsPerUnit(),
            cache->rowBytes(), params.affineCapBytesPerUnit));
    }

    Access
    accessOf(StreamId sid, ElemId elem, bool write = false)
    {
        const StreamConfig& cfg = table.stream(sid);
        Access a;
        a.sid = sid;
        a.elem = elem;
        a.addr = cfg.addrOf(elem);
        a.isWrite = write;
        return a;
    }
};

TEST(StreamCache, NonStreamAccessBypasses)
{
    Rig rig;
    Access a;
    a.sid = kNoStream;
    a.addr = 0x10;
    const auto r = rig.cache->access(0, a, 0);
    EXPECT_GT(r.done, 800u); // paid the CXL round trip
    EXPECT_EQ(rig.cache->bypasses(), 1u);
}

TEST(StreamCache, UnallocatedStreamGoesToExtendedMemory)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    const auto r = rig.cache->access(0, rig.accessOf(sid, 5), 0);
    EXPECT_GT(r.done, 800u);
    EXPECT_EQ(rig.cache->uncachedStreamAccesses(), 1u);
}

TEST(StreamCache, MissThenHitIndirect)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    rig.allocateEverything();
    const auto r1 = rig.cache->access(0, rig.accessOf(sid, 5), 0);
    EXPECT_EQ(rig.cache->cacheMisses(), 1u);
    const auto r2 = rig.cache->access(0, rig.accessOf(sid, 5), r1.done);
    EXPECT_EQ(rig.cache->cacheHits(), 1u);
    EXPECT_LT(r2.done - r1.done, r1.done); // hit far cheaper than miss
}

TEST(StreamCache, AffineBlockGivesSpatialHits)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Affine, 256_KiB, 8, true);
    rig.allocateEverything();
    Cycles t = 0;
    // First element misses and fetches a 1 kB block = 128 elements.
    t = rig.cache->access(0, rig.accessOf(sid, 0), t).done;
    EXPECT_EQ(rig.cache->cacheMisses(), 1u);
    for (ElemId e = 1; e < 128; ++e) {
        t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
    }
    EXPECT_EQ(rig.cache->cacheMisses(), 1u); // all spatial hits
    EXPECT_EQ(rig.cache->cacheHits(), 127u);
}

TEST(StreamCache, WriteToReadOnlyRaisesExceptionOnce)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    rig.allocateEverything();
    rig.cache->access(0, rig.accessOf(sid, 1, true), 0);
    EXPECT_EQ(rig.cache->writeExceptions(), 1u);
    EXPECT_FALSE(rig.table.stream(sid).readOnly);
    rig.cache->access(0, rig.accessOf(sid, 2, true), 100000);
    EXPECT_EQ(rig.cache->writeExceptions(), 1u); // only the first write
}

TEST(StreamCache, CollapseReplicationMergesGroups)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    // Hand-build a 2-group replicated allocation.
    StreamAlloc alloc(rig.cache->numUnits());
    alloc.numGroups = 2;
    alloc.shareRows = {8, 8, 0, 0, 8, 8, 0, 0};
    alloc.groupOf = {0, 0, 0, 0, 1, 1, 0, 0};
    rig.cache->applyConfiguration({{sid, alloc}});
    ASSERT_EQ(rig.cache->remap().alloc(sid)->numGroups, 2u);
    rig.cache->access(0, rig.accessOf(sid, 1, true), 0);
    EXPECT_EQ(rig.cache->remap().alloc(sid)->numGroups, 1u);
}

TEST(StreamCache, RemoteAccessesCostInterconnect)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 256_KiB, 8, true);
    // All space on unit 7, accessed from unit 0 (different stack).
    StreamAlloc alloc(rig.cache->numUnits());
    alloc.numGroups = 1;
    alloc.shareRows[7] = 32;
    rig.cache->applyConfiguration({{sid, alloc}});
    rig.cache->access(0, rig.accessOf(sid, 3), 0);
    const auto& bd = rig.cache->breakdown();
    EXPECT_GT(bd.icnIntra + bd.icnInter, 0u);
}

TEST(StreamCache, LocalPlacementAvoidsInterconnect)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 256_KiB, 8, true);
    StreamAlloc alloc(rig.cache->numUnits());
    alloc.numGroups = 1;
    alloc.shareRows[0] = 32;
    rig.cache->applyConfiguration({{sid, alloc}});
    // Warm then hit locally from unit 0.
    const auto r1 = rig.cache->access(0, rig.accessOf(sid, 3), 0);
    const Cycles icn_after_miss =
        rig.cache->breakdown().icnIntra + rig.cache->breakdown().icnInter;
    rig.cache->access(0, rig.accessOf(sid, 3), r1.done);
    const Cycles icn_after_hit =
        rig.cache->breakdown().icnIntra + rig.cache->breakdown().icnInter;
    // The hit added no interconnect cycles (local unit, no CXL).
    EXPECT_EQ(icn_after_hit, icn_after_miss);
}

TEST(StreamCache, SamplersObserveAccesses)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    rig.allocateEverything();
    rig.cache->samplerBank(0).assign({{sid, 8}});
    for (ElemId e = 0; e < 100; ++e) {
        rig.cache->access(0, rig.accessOf(sid, e), e * 10000);
    }
    EXPECT_TRUE(rig.cache->samplerBank(0).accessedBitvector()[sid]);
    EXPECT_EQ(rig.cache->samplerBank(0).accessCount(sid), 100u);
    ASSERT_NE(rig.cache->samplerBank(0).samplerFor(sid), nullptr);
    EXPECT_EQ(rig.cache->samplerBank(0).samplerFor(sid)->accesses(), 100u);
}

TEST(StreamCache, ReconfigurationAccountsInvalidations)
{
    Rig rig(false, RemapMode::Modulo);
    const auto sid = rig.addStream(StreamType::Indirect, 256_KiB, 8, true);
    StreamAlloc a1(rig.cache->numUnits());
    a1.numGroups = 1;
    a1.shareRows[0] = 16;
    rig.cache->applyConfiguration({{sid, a1}});
    StreamAlloc a2(rig.cache->numUnits());
    a2.numGroups = 1;
    a2.shareRows[0] = 8;
    a2.shareRows[1] = 8;
    rig.cache->applyConfiguration({{sid, a2}});
    // Modulo mode invalidates everything on a change.
    EXPECT_EQ(rig.cache->invalidatedRows(), 16u);
    EXPECT_EQ(rig.cache->survivedRows(), 0u);
}

TEST(StreamCache, ConsistentHashPreservesRows)
{
    Rig rig(false, RemapMode::ConsistentHash);
    const auto sid = rig.addStream(StreamType::Indirect, 256_KiB, 8, true);
    StreamAlloc a1(rig.cache->numUnits());
    a1.numGroups = 1;
    a1.shareRows[0] = 16;
    rig.cache->applyConfiguration({{sid, a1}});
    StreamAlloc a2 = a1;
    a2.shareRows[0] = 12; // shrink
    rig.cache->applyConfiguration({{sid, a2}});
    EXPECT_EQ(rig.cache->survivedRows(), 12u);
    EXPECT_EQ(rig.cache->invalidatedRows(), 4u);
}

TEST(StreamCache, SurvivingRowsKeepCachedData)
{
    Rig rig(false, RemapMode::ConsistentHash);
    const auto sid = rig.addStream(StreamType::Indirect, 256_KiB, 8, true);
    StreamAlloc a1(rig.cache->numUnits());
    a1.numGroups = 1;
    a1.shareRows[0] = 16;
    rig.cache->applyConfiguration({{sid, a1}});
    // Warm a bunch of elements.
    Cycles t = 0;
    for (ElemId e = 0; e < 64; ++e) {
        t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
    }
    const auto misses_before = rig.cache->cacheMisses();
    // Re-apply the identical allocation: cached rows survive, so the
    // re-scan only re-misses direct-mapped conflict victims (the same
    // handful that would re-miss without any reconfiguration), not the
    // whole working set as bulk invalidation would.
    rig.cache->applyConfiguration({{sid, a1}});
    for (ElemId e = 0; e < 64; ++e) {
        t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
    }
    const auto new_misses = rig.cache->cacheMisses() - misses_before;
    EXPECT_LT(new_misses, 16u) << "survival should avoid a full re-fetch";
}

TEST(StreamCacheBaseline, MetadataCacheTracksHitRate)
{
    Rig rig(/*cacheline_mode=*/true);
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, false);
    rig.allocateEverything();
    Cycles t = 0;
    for (int rep = 0; rep < 3; ++rep) {
        for (ElemId e = 0; e < 512; ++e) {
            t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
        }
    }
    // Small working set: metadata cache should hit most of the time.
    EXPECT_GT(rig.cache->metadataHitRate(), 0.5);
    EXPECT_GT(rig.cache->breakdown().metadata, 0u);
}

TEST(StreamCacheBaseline, CachelineModeMissThenHit)
{
    Rig rig(/*cacheline_mode=*/true);
    const auto sid = rig.addStream(StreamType::Affine, 64_KiB, 8, true);
    rig.allocateEverything();
    const auto r1 = rig.cache->access(0, rig.accessOf(sid, 0), 0);
    EXPECT_EQ(rig.cache->cacheMisses(), 1u);
    rig.cache->access(0, rig.accessOf(sid, 0), r1.done);
    EXPECT_EQ(rig.cache->cacheHits(), 1u);
    // Next line misses again: no 1 kB block prefetch for baselines.
    rig.cache->access(0, rig.accessOf(sid, 8), 2 * r1.done);
    EXPECT_EQ(rig.cache->cacheMisses(), 2u);
}

TEST(StreamCache, WayPredictionTracksAccuracy)
{
    Rig rig;
    rig.params.indirectWays = 4;
    rig.params.indirectWayPrediction = true;
    rig.cache = std::make_unique<StreamCacheController>(
        rig.params, rig.table, rig.noc, rig.ext,
        DramTimingParams::hbm3Unit(), 256_KiB, 2000);
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    rig.allocateEverything();
    Cycles t = 0;
    // Alternate between two elements that collide into one set so the
    // MRU predictor keeps missing, then re-touch one so it hits.
    for (int rep = 0; rep < 50; ++rep) {
        for (ElemId e = 0; e < 64; ++e) {
            t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
        }
    }
    const double rate = rig.cache->wayPredictionRate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    EXPECT_GT(rig.cache->cacheHits(), 0u);
}

TEST(StreamCache, AssociativeWithoutPredictionStillWorks)
{
    Rig rig;
    rig.params.indirectWays = 4;
    rig.cache = std::make_unique<StreamCacheController>(
        rig.params, rig.table, rig.noc, rig.ext,
        DramTimingParams::hbm3Unit(), 256_KiB, 2000);
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    rig.allocateEverything();
    Cycles t = 0;
    for (ElemId e = 0; e < 128; ++e) {
        t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
    }
    for (ElemId e = 0; e < 128; ++e) {
        t = rig.cache->access(0, rig.accessOf(sid, e), t).done;
    }
    // Second pass hits (working set fits).
    EXPECT_GE(rig.cache->cacheHits(), 100u);
    EXPECT_DOUBLE_EQ(rig.cache->wayPredictionRate(), 1.0);
}

TEST(StreamCache, BreakdownRequestsMatchAccesses)
{
    Rig rig;
    const auto sid = rig.addStream(StreamType::Indirect, 64_KiB, 8, true);
    rig.allocateEverything();
    for (ElemId e = 0; e < 50; ++e) {
        rig.cache->access(0, rig.accessOf(sid, e), e * 100000);
    }
    EXPECT_EQ(rig.cache->breakdown().requests, 50u);
    EXPECT_EQ(rig.cache->cacheHits() + rig.cache->cacheMisses(), 50u);
}

} // namespace
} // namespace ndpext
