/** Tests for the simulation substrate: stats, events, resources. */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/breakdown.h"
#include "sim/event_queue.h"
#include "sim/resource.h"
#include "sim/stats.h"

namespace ndpext {
namespace {

TEST(StatGroup, AddSetGet)
{
    StatGroup s;
    s.add("a.x", 2.0);
    s.add("a.x", 3.0);
    s.set("a.y", 7.0);
    EXPECT_DOUBLE_EQ(s.get("a.x"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("a.y"), 7.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    EXPECT_TRUE(s.has("a.x"));
    EXPECT_FALSE(s.has("missing"));
}

TEST(StatGroup, MergeWithPrefix)
{
    StatGroup a;
    a.add("x", 1.0);
    StatGroup b;
    b.merge(a, "unit0");
    EXPECT_DOUBLE_EQ(b.get("unit0.x"), 1.0);
}

TEST(StatGroup, SumPrefix)
{
    StatGroup s;
    s.add("dram.reads", 5.0);
    s.add("dram.writes", 3.0);
    s.add("noc.hops", 11.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("dram."), 8.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("noc."), 11.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("zzz"), 0.0);
}

TEST(StatGroup, SumPrefixMatchesWholeSegmentsOnly)
{
    // "unit1" must not swallow "unit1x.*": prefixes match whole
    // dot-separated segments, not raw characters.
    StatGroup s;
    s.add("unit1", 1.0);
    s.add("unit1.dram.reads", 2.0);
    s.add("unit1.dram.writes", 4.0);
    s.add("unit1x.dram.reads", 100.0);
    s.add("unit10.dram.reads", 200.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("unit1"), 7.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("unit1x"), 100.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("unit1.dram"), 6.0);
    // Trailing dot keeps plain string-prefix semantics (no exact-name
    // match, no segment check).
    EXPECT_DOUBLE_EQ(s.sumPrefix("unit1."), 6.0);
    // Empty prefix sums everything.
    EXPECT_DOUBLE_EQ(s.sumPrefix(""), 307.0);
}

TEST(StatGroup, MergePrefixCollisionAccumulates)
{
    // Merging under a prefix that collides with an existing name adds
    // into it rather than overwriting.
    StatGroup a;
    a.add("x", 1.0);
    StatGroup b;
    b.add("unit1.x", 10.0);
    b.merge(a, "unit1");
    EXPECT_DOUBLE_EQ(b.get("unit1.x"), 11.0);
}

TEST(StatGroup, AbsorbIsSameNameReduction)
{
    StatGroup shard0;
    shard0.add("noc.hops", 5.0);
    shard0.add("noc.flits", 2.0);
    StatGroup shard1;
    shard1.add("noc.hops", 7.0);
    shard1.add("ext.reads", 3.0);
    shard0.absorb(shard1);
    EXPECT_DOUBLE_EQ(shard0.get("noc.hops"), 12.0);
    EXPECT_DOUBLE_EQ(shard0.get("noc.flits"), 2.0);
    EXPECT_DOUBLE_EQ(shard0.get("ext.reads"), 3.0);
}

TEST(StatGroup, DumpJsonOrderedAndRoundTrippable)
{
    StatGroup s;
    s.add("b.y", 2.5);
    s.add("a.x", 1.0);
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{\n  \"a.x\": 1,\n  \"b.y\": 2.5\n}");
}

TEST(StatGroup, DumpJsonEmptyGroup)
{
    StatGroup s;
    std::ostringstream oss;
    s.dumpJson(oss);
    EXPECT_EQ(oss.str(), "{}");
}

TEST(StatGroup, DumpOrdered)
{
    StatGroup s;
    s.add("b", 2.0);
    s.add("a", 1.0);
    std::ostringstream oss;
    s.dump(oss);
    EXPECT_EQ(oss.str(), "a 1\nb 2\n");
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&](Cycles) { fired.push_back(3); });
    q.schedule(10, [&](Cycles) { fired.push_back(1); });
    q.schedule(20, [&](Cycles) { fired.push_back(2); });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5, [&](Cycles) { fired.push_back(1); });
    q.schedule(5, [&](Cycles) { fired.push_back(2); });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&](Cycles) { ++count; });
    q.schedule(100, [&](Cycles) { ++count; });
    q.runUntil(50);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextTick(), 100u);
}

TEST(EventQueue, RunUntilKeepsSameTickFifoOrder)
{
    // Draining up to a boundary must preserve FIFO order among
    // same-tick events, including ones scheduled from callbacks.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&](Cycles now) {
        fired.push_back(1);
        q.schedule(now, [&](Cycles) { fired.push_back(3); });
    });
    q.schedule(10, [&](Cycles) { fired.push_back(2); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTickAfterPartialDrain)
{
    EventQueue q;
    q.schedule(10, [](Cycles) {});
    q.schedule(20, [](Cycles) {});
    q.schedule(30, [](Cycles) {});
    EXPECT_EQ(q.nextTick(), 10u);
    q.runUntil(15);
    EXPECT_EQ(q.nextTick(), 20u);
    EXPECT_EQ(q.size(), 2u);
    q.runUntil(20);
    EXPECT_EQ(q.nextTick(), 30u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, RunUntilBoundaryIsInclusive)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&](Cycles) { ++count; });
    q.runUntil(10);
    EXPECT_EQ(count, 1) << "events at exactly `until` must fire";
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, CallbackCanReschedule)
{
    EventQueue q;
    int count = 0;
    std::function<void(Cycles)> cb = [&](Cycles now) {
        ++count;
        if (count < 3) {
            q.schedule(now + 10, cb);
        }
    };
    q.schedule(0, cb);
    q.runAll();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueueDeathTest, SchedulingInThePastIsAHardError)
{
    // A past-dated event would silently reorder time; the queue must
    // reject it loudly rather than fire it out of order.
    EventQueue q;
    q.schedule(10, [](Cycles) {});
    q.runAll();
    EXPECT_EQ(q.now(), 10u);
    EXPECT_DEATH(q.schedule(5, [](Cycles) {}), "scheduling in the past");
}

TEST(BandwidthResource, NoContentionStartsImmediately)
{
    BandwidthResource r(16.0);
    EXPECT_EQ(r.reserve(64, 100), 100u);
    EXPECT_EQ(r.serviceCycles(64), 4u);
}

TEST(BandwidthResource, BackToBackQueues)
{
    BandwidthResource r(16.0);
    EXPECT_EQ(r.reserve(64, 0), 0u);  // busy until 4
    EXPECT_EQ(r.reserve(64, 0), 4u);  // queued
    EXPECT_EQ(r.reserve(64, 100), 100u); // idle again
    EXPECT_EQ(r.reservations(), 3u);
    EXPECT_EQ(r.totalQueueCycles(), 4u);
}

TEST(BandwidthResource, FractionalBandwidthRoundsUp)
{
    BandwidthResource r(0.5); // half a byte per cycle
    EXPECT_EQ(r.serviceCycles(3), 6u);
    EXPECT_EQ(r.serviceCycles(1), 2u);
}

TEST(BandwidthResource, OutOfOrderReservationFillsGaps)
{
    // A reservation far in the future must not delay an earlier request:
    // the gap-filling interval model is what keeps end-to-end analytic
    // evaluation from fabricating phantom queueing.
    BandwidthResource r(16.0);
    EXPECT_EQ(r.reserve(64, 10000), 10000u);
    EXPECT_EQ(r.reserve(64, 0), 0u); // earlier arrival, free gap
    EXPECT_EQ(r.reserve(64, 9998), 9998u + 6u)
        << "overlap with the future interval queues behind it";
}

TEST(BandwidthResource, GapTooSmallSkipsToNextSlot)
{
    BandwidthResource r(16.0); // 64 B = 4 cycles
    r.reserveFor(4, 0);   // [0,4)
    r.reserveFor(4, 6);   // [6,10)
    // A 4-cycle job arriving at 3 cannot fit into [4,6); lands at 10.
    EXPECT_EQ(r.reserveFor(4, 3), 10u);
    // A 2-cycle job arriving at 3 fits the [4,6) gap.
    EXPECT_EQ(r.reserveFor(2, 3), 4u);
}

TEST(BandwidthResource, ReserveForZeroTakesOneCycle)
{
    BandwidthResource r(1.0);
    EXPECT_EQ(r.reserveFor(0, 5), 5u);
    EXPECT_EQ(r.reserveFor(0, 5), 6u);
}

TEST(BandwidthResource, NextFreeTracksLatestInterval)
{
    BandwidthResource r(16.0);
    r.reserve(64, 100);
    r.reserve(64, 10);
    EXPECT_EQ(r.nextFree(), 104u);
}

TEST(LatencyBreakdown, TotalsAndAverages)
{
    LatencyBreakdown bd;
    bd.metadata = 10;
    bd.icnIntra = 20;
    bd.icnInter = 30;
    bd.dramCache = 40;
    bd.extMem = 50;
    bd.requests = 10;
    EXPECT_EQ(bd.total(), 150u);
    EXPECT_EQ(bd.icn(), 50u);
    EXPECT_DOUBLE_EQ(bd.avg(bd.extMem), 5.0);
}

} // namespace
} // namespace ndpext
