/**
 * Incremental placement control plane: max-flow warm-start seeding,
 * cold-vs-warm sampler assignment equivalence (bit-identical on an
 * empty delta, coverage parity under churn), the anytime iteration
 * budget in Algorithm 1 (cap honored, bounded regret, off-by-default
 * bit-identity), delta-set derivation from demand fingerprints and
 * churn notifications, and checkpoint/resume byte-identity with the
 * solver flags enabled at 1 and 8 threads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ndp/stream_cache.h"
#include "runtime/config_algorithm.h"
#include "runtime/max_flow.h"
#include "runtime/ndp_runtime.h"
#include "runtime/sampler_assign.h"
#include "sim/checkpoint.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

// --- MaxFlow warm-start seeding -----------------------------------------

TEST(MaxFlowSeed, SeedPathPushesOneUnit)
{
    MaxFlow f(3);
    const auto e1 = f.addEdge(0, 1, 2);
    const auto e2 = f.addEdge(1, 2, 2);
    EXPECT_TRUE(f.seedPath({e1, e2}));
    EXPECT_EQ(f.flowOn(e1), 1);
    EXPECT_EQ(f.flowOn(e2), 1);
    EXPECT_EQ(f.augmentingPaths(), 0u);
}

TEST(MaxFlowSeed, SeedPathRejectsSaturatedEdge)
{
    MaxFlow f(3);
    const auto e1 = f.addEdge(0, 1, 1);
    const auto e2 = f.addEdge(1, 2, 2);
    EXPECT_TRUE(f.seedPath({e1, e2}));
    // e1 is now full: the second seed must be refused atomically,
    // leaving the first unit of flow intact.
    EXPECT_FALSE(f.seedPath({e1, e2}));
    EXPECT_EQ(f.flowOn(e1), 1);
    EXPECT_EQ(f.flowOn(e2), 1);
}

TEST(MaxFlowSeed, SeededSolveReachesColdValue)
{
    // Max-flow value is unique, so any feasible seed must end at the
    // same total; solve() on a fully seeded graph needs zero BFS work.
    MaxFlow cold(4);
    cold.addEdge(0, 1, 1);
    cold.addEdge(0, 2, 1);
    cold.addEdge(1, 3, 1);
    cold.addEdge(2, 3, 1);
    const auto want = cold.solve(0, 3);
    ASSERT_EQ(want, 2);

    MaxFlow warm(4);
    const auto a = warm.addEdge(0, 1, 1);
    const auto b = warm.addEdge(0, 2, 1);
    const auto c = warm.addEdge(1, 3, 1);
    const auto d = warm.addEdge(2, 3, 1);
    EXPECT_TRUE(warm.seedPath({a, c}));
    EXPECT_TRUE(warm.seedPath({b, d}));
    EXPECT_EQ(warm.solve(0, 3), want);
    EXPECT_EQ(warm.augmentingPaths(), 0u);
}

// --- Cold vs warm sampler assignment ------------------------------------

std::vector<std::vector<bool>>
randomAccessed(std::uint32_t units, std::uint32_t streams,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<bool>> accessed(
        units, std::vector<bool>(streams, false));
    for (std::uint32_t s = 0; s < streams; ++s) {
        accessed[s % units][s] = true;
        for (std::uint32_t u = 0; u < units; ++u) {
            if (rng.nextBool(0.3)) {
                accessed[u][s] = true;
            }
        }
    }
    return accessed;
}

std::vector<StreamId>
allStreams(std::uint32_t streams)
{
    std::vector<StreamId> out(streams);
    for (std::uint32_t s = 0; s < streams; ++s) {
        out[s] = s;
    }
    return out;
}

TEST(SamplerWarm, EmptyDeltaIsBitIdenticalWithZeroWork)
{
    const SamplerAssigner assigner(2);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto accessed = randomAccessed(6, 40, seed);
        const auto streams = allStreams(40);
        SamplerAssignStats cold_stats;
        const auto cold = assigner.assign(accessed, streams, &cold_stats);
        SamplerAssignStats warm_stats;
        const auto warm =
            assigner.assignWarm(accessed, streams, cold, {}, &warm_stats);
        EXPECT_EQ(warm.perUnit, cold.perUnit) << "seed " << seed;
        EXPECT_EQ(warm.uncovered, cold.uncovered) << "seed " << seed;
        EXPECT_EQ(warm.covered, cold.covered) << "seed " << seed;
        EXPECT_EQ(warm_stats.augmentingPaths, 0u) << "seed " << seed;
        EXPECT_EQ(warm_stats.seededPairs, cold.covered) << "seed " << seed;
        EXPECT_GT(cold_stats.augmentingPaths, 0u) << "seed " << seed;
    }
}

TEST(SamplerWarm, CoverageParityUnderChurn)
{
    const SamplerAssigner assigner(2);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto accessed = randomAccessed(6, 40, seed);
        const auto streams = allStreams(40);
        const auto previous = assigner.assign(accessed, streams);

        // Re-roll every 5th stream's accessor set (the delta).
        std::vector<StreamId> delta;
        Rng churn(seed * 977);
        for (std::uint32_t s = 0; s < 40; s += 5) {
            delta.push_back(s);
            for (std::uint32_t u = 0; u < 6; ++u) {
                accessed[u][s] = churn.nextBool(0.3);
            }
            accessed[s % 6][s] = true;
        }
        const auto cold = assigner.assign(accessed, streams);
        SamplerAssignStats warm_stats;
        const auto warm = assigner.assignWarm(accessed, streams, previous,
                                              delta, &warm_stats);
        // Matchings are not unique in WHICH streams they cover, but the
        // max-flow value is: coverage counts must agree exactly.
        EXPECT_EQ(warm.covered, cold.covered) << "seed " << seed;
        EXPECT_EQ(warm.perUnit.size(), cold.perUnit.size());
        // The warm solve only re-derives the churned part.
        EXPECT_GT(warm_stats.seededPairs, 0u) << "seed " << seed;
    }
}

TEST(SamplerWarm, DepartedStreamsAreNeverSeeded)
{
    const SamplerAssigner assigner(2);
    auto accessed = randomAccessed(4, 20, 3);
    const auto streams = allStreams(20);
    const auto previous = assigner.assign(accessed, streams);

    // Streams 17..19 depart entirely.
    std::vector<StreamId> remaining = allStreams(17);
    for (auto& row : accessed) {
        row.resize(17);
    }
    const auto cold = assigner.assign(accessed, remaining);
    const auto warm =
        assigner.assignWarm(accessed, remaining, previous, {17, 18, 19});
    EXPECT_EQ(warm.covered, cold.covered);
    for (const auto& unit : warm.perUnit) {
        for (const auto sid : unit) {
            EXPECT_LT(sid, 17u);
        }
    }
}

// --- Anytime budget in Algorithm 1 --------------------------------------

constexpr std::uint32_t kCfgUnits = 8;
constexpr std::uint32_t kCfgRowsPerUnit = 32;
constexpr std::uint32_t kCfgRowBytes = 2048;

struct CfgFixture
{
    MeshTopology topo{2, 1, 2, 2};
    NocModel noc{topo, NocParams{}};

    ConfigParams
    params() const
    {
        ConfigParams p;
        p.numUnits = kCfgUnits;
        p.rowsPerUnit = kCfgRowsPerUnit;
        p.rowBytes = kCfgRowBytes;
        p.dramLatency = 40;
        return p;
    }
};

MissCurve
linearCurve(std::uint64_t useful, double misses)
{
    std::vector<std::uint64_t> caps;
    std::vector<double> m;
    for (std::uint64_t c = 2048; c <= useful * 2; c *= 2) {
        caps.push_back(c);
        const double frac = std::min(
            1.0, static_cast<double>(c) / static_cast<double>(useful));
        m.push_back(misses * (1.0 - frac));
    }
    MissCurve curve(caps, std::move(m));
    curve.setZeroMisses(misses);
    return curve;
}

std::vector<StreamDemand>
denseDemands(std::uint32_t count)
{
    std::vector<StreamDemand> demands;
    for (std::uint32_t s = 0; s < count; ++s) {
        StreamDemand d;
        d.sid = s;
        d.footprintBytes = 64 * 1024;
        d.readOnly = true;
        d.granuleBytes = 8;
        for (std::uint32_t u = 0; u < kCfgUnits; ++u) {
            d.accUnits.push_back(u);
            d.accCounts.push_back(1000 + s * 37 + u * 13);
        }
        d.curve = linearCurve(d.footprintBytes, 5000.0 + s * 100);
        demands.push_back(std::move(d));
    }
    return demands;
}

std::uint64_t
rowsOnUnit(const std::vector<std::pair<StreamId, StreamAlloc>>& out,
           UnitId u)
{
    std::uint64_t rows = 0;
    for (const auto& [sid, alloc] : out) {
        (void)sid;
        rows += alloc.shareRows[u];
    }
    return rows;
}

TEST(ConfigBudget, IterationCapHonoredAndCounted)
{
    CfgFixture fix;
    ConfigAlgorithm full(fix.params(), fix.noc);
    const auto full_out = full.run(denseDemands(16));
    ASSERT_GT(full.lastIterations(), 8u)
        << "fixture too small to exercise the budget";
    EXPECT_FALSE(full.lastBudgetHit());
    EXPECT_EQ(full.budgetHits(), 0u);

    ConfigParams capped_params = fix.params();
    capped_params.budgetIterations = 8;
    ConfigAlgorithm capped(capped_params, fix.noc);
    const auto capped_out = capped.run(denseDemands(16));
    EXPECT_LE(capped.lastIterations(), 8u);
    EXPECT_TRUE(capped.lastBudgetHit());
    EXPECT_EQ(capped.budgetHits(), 1u);

    // An interrupted run still emits a valid placement: per-unit
    // capacity respected, some bytes placed, objective bounded by the
    // converged solve's.
    for (UnitId u = 0; u < kCfgUnits; ++u) {
        EXPECT_LE(rowsOnUnit(capped_out, u), kCfgRowsPerUnit);
    }
    EXPECT_GT(capped.lastObjectiveBytes(), 0u);
    EXPECT_LE(capped.lastObjectiveBytes(), full.lastObjectiveBytes());
    EXPECT_GT(full_out.size(), 0u);
}

TEST(ConfigBudget, ZeroBudgetIsBitIdenticalToUnlimited)
{
    CfgFixture fix;
    ConfigAlgorithm base(fix.params(), fix.noc);
    const auto want = base.run(denseDemands(12));

    ConfigParams zero = fix.params();
    zero.budgetIterations = 0;
    zero.budgetMicros = 0;
    ConfigAlgorithm same(zero, fix.noc);
    const auto got = same.run(denseDemands(12));

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first);
        EXPECT_EQ(got[i].second.shareRows, want[i].second.shareRows);
        EXPECT_EQ(got[i].second.numGroups, want[i].second.numGroups);
    }
    EXPECT_EQ(same.lastIterations(), base.lastIterations());
    EXPECT_EQ(same.lastObjectiveBytes(), base.lastObjectiveBytes());
}

TEST(ConfigBudget, LargerBudgetNeverLosesIterations)
{
    CfgFixture fix;
    std::uint64_t prev_iters = 0;
    for (const std::uint64_t budget : {4ull, 16ull, 64ull}) {
        ConfigParams p = fix.params();
        p.budgetIterations = budget;
        ConfigAlgorithm algo(p, fix.noc);
        algo.run(denseDemands(16));
        EXPECT_LE(algo.lastIterations(), budget);
        EXPECT_GE(algo.lastIterations(), prev_iters);
        prev_iters = algo.lastIterations();
    }
}

// --- Delta-set derivation ------------------------------------------------

StreamDemand
fingerprintDemand()
{
    StreamDemand d;
    d.sid = 5;
    d.footprintBytes = 1 << 20;
    d.readOnly = true;
    d.accUnits = {0, 3};
    d.accCounts = {100, 200};
    d.curve = linearCurve(1 << 20, 10000.0);
    return d;
}

TEST(DemandFingerprint, StableAcrossCopies)
{
    const auto a = fingerprintDemand();
    const auto b = fingerprintDemand();
    EXPECT_EQ(demandFingerprint(a), demandFingerprint(b));
}

TEST(DemandFingerprint, QuantizationAbsorbsSamplerJitter)
{
    // Miss counts are bucketed (~19% wide in log space): small sampler
    // noise must not mark a stream dirty and defeat the warm start.
    // Bucket-centered values (2^(k/4) - 1, integer k) stay in their
    // bucket under a few percent of jitter; values near a boundary may
    // legitimately flip, so the test pins the centers.
    std::vector<std::uint64_t> caps;
    std::vector<double> centered;
    for (std::uint32_t i = 0; i < 8; ++i) {
        caps.push_back(2048ull << i);
        centered.push_back(std::exp2((56.0 - 4.0 * i) / 4.0) - 1.0);
    }
    auto a = fingerprintDemand();
    a.curve = MissCurve(caps, std::vector<double>(centered));
    auto b = fingerprintDemand();
    std::vector<double> jittered = centered;
    for (auto& m : jittered) {
        m *= 1.02;
    }
    b.curve = MissCurve(caps, std::move(jittered));
    EXPECT_EQ(demandFingerprint(a), demandFingerprint(b));
}

TEST(DemandFingerprint, DetectsRealChanges)
{
    const auto base = fingerprintDemand();

    auto bigger = fingerprintDemand();
    bigger.footprintBytes *= 2;
    EXPECT_NE(demandFingerprint(base), demandFingerprint(bigger));

    auto rw = fingerprintDemand();
    rw.readOnly = false;
    EXPECT_NE(demandFingerprint(base), demandFingerprint(rw));

    auto moved = fingerprintDemand();
    moved.accUnits = {1, 3};
    EXPECT_NE(demandFingerprint(base), demandFingerprint(moved));

    auto hotter = fingerprintDemand();
    std::vector<double> doubled = hotter.curve.misses();
    for (auto& m : doubled) {
        m *= 2.0;
    }
    hotter.curve =
        MissCurve(hotter.curve.capacities(), std::move(doubled));
    EXPECT_NE(demandFingerprint(base), demandFingerprint(hotter));
}

// --- Runtime-level churn and delta accounting ----------------------------

struct RuntimeRig
{
    MeshTopology topo{2, 1, 2, 2};
    NocModel noc{topo, NocParams{}};
    CxlParams cxlParams;
    ExtendedMemory ext{cxlParams, DramTimingParams::ddr5Extended(), 2000};
    StreamTable table;
    StreamCacheParams params;
    std::unique_ptr<StreamCacheController> cache;

    RuntimeRig()
    {
        params.sampler.minCapacityBytes = 1_KiB;
        params.sampler.maxCapacityBytes = 256_KiB;
        params.sampler.numCapacities = 8;
        params.affineCapBytesPerUnit = 64_KiB;
        cache = std::make_unique<StreamCacheController>(
            params, table, noc, ext, DramTimingParams::hbm3Unit(),
            256_KiB, 2000);
    }

    StreamId
    addStream(std::uint64_t bytes)
    {
        auto cfg = StreamConfig::dense(
            "s" + std::to_string(table.numStreams()),
            StreamType::Indirect,
            0x100000 + table.numStreams() * 0x1000000, bytes, 8);
        cfg.readOnly = true;
        return table.configureStream(cfg);
    }

    ConfigParams
    configParams() const
    {
        ConfigParams p;
        p.numUnits = cache->numUnits();
        p.rowsPerUnit = cache->rowsPerUnit();
        p.rowBytes = cache->rowBytes();
        p.dramLatency = 40;
        return p;
    }

    Cycles
    touch(StreamId sid, Cycles t)
    {
        const StreamConfig& cfg = table.stream(sid);
        for (ElemId e = 0; e < 2000; ++e) {
            Access a;
            a.sid = sid;
            a.elem = e % cfg.numElems();
            a.addr = cfg.addrOf(a.elem);
            t = cache->access(0, a, t).done;
        }
        return t;
    }
};

TEST(RuntimeDelta, ChurnNotificationsEnterTheDeltaSet)
{
    // Twin runtimes over identical traffic; only one is churn-notified.
    // Fingerprint-driven delta contributions are identical by
    // determinism, so the difference isolates the churn path exactly
    // (no assumption that curves stabilize across epochs). The churned
    // stream is a third, never-touched one: its fingerprint is stable,
    // so the set union cannot absorb the notification into a
    // fingerprint-dirty entry.
    RuntimeRig plain_rig;
    RuntimeRig churn_rig;
    const auto p0 = plain_rig.addStream(64_KiB);
    const auto p1 = plain_rig.addStream(64_KiB);
    plain_rig.addStream(64_KiB); // quiet
    const auto c0 = churn_rig.addStream(64_KiB);
    const auto c1 = churn_rig.addStream(64_KiB);
    const auto c2 = churn_rig.addStream(64_KiB); // quiet
    ASSERT_EQ(p0, c0);
    ASSERT_EQ(p1, c1);
    RuntimeParams rp;
    rp.solverWarmStart = true;
    NdpRuntime plain(rp, *plain_rig.cache,
                     std::make_unique<NdpExtConfigurator>(
                         plain_rig.configParams(), plain_rig.noc));
    NdpRuntime churned(rp, *churn_rig.cache,
                       std::make_unique<NdpExtConfigurator>(
                           churn_rig.configParams(), churn_rig.noc));
    plain.start();
    churned.start();

    const auto epoch = [&](Cycles& tp, Cycles& tc) {
        tp = plain_rig.touch(p0, tp);
        tp = plain_rig.touch(p1, tp);
        tc = churn_rig.touch(c0, tc);
        tc = churn_rig.touch(c1, tc);
        plain.onEpochEnd(tp);
        churned.onEpochEnd(tc);
    };

    Cycles tp = 0;
    Cycles tc = 0;
    epoch(tp, tc);
    EXPECT_EQ(churned.solverDeltaStreams(), plain.solverDeltaStreams());

    // A notification adds exactly that stream to the next barrier's
    // delta: the quiet stream is never fingerprint-dirty after its
    // arrival epoch, so the twins differ by exactly one.
    churned.noteStreamChurn({c2});
    epoch(tp, tc);
    const auto plain_total = plain.solverDeltaStreams();
    const auto churn_total = churned.solverDeltaStreams();
    EXPECT_EQ(churn_total, plain_total + 1);

    // The churn list is consumed at the barrier, not sticky: the twins
    // advance in lockstep afterwards.
    const auto plain_before = plain.solverDeltaStreams();
    const auto churn_before = churned.solverDeltaStreams();
    epoch(tp, tc);
    EXPECT_EQ(churned.solverDeltaStreams() - churn_before,
              plain.solverDeltaStreams() - plain_before);
}

TEST(RuntimeDelta, WarmStartMatchesColdCoverage)
{
    // Two runtimes over identical traffic, warm start on vs off: every
    // epoch must cover the same number of streams.
    RuntimeRig cold_rig;
    RuntimeRig warm_rig;
    for (int i = 0; i < 4; ++i) {
        cold_rig.addStream(64_KiB);
        warm_rig.addStream(64_KiB);
    }
    RuntimeParams cold_rp;
    RuntimeParams warm_rp;
    warm_rp.solverWarmStart = true;
    NdpRuntime cold(cold_rp, *cold_rig.cache,
                    std::make_unique<NdpExtConfigurator>(
                        cold_rig.configParams(), cold_rig.noc));
    NdpRuntime warm(warm_rp, *warm_rig.cache,
                    std::make_unique<NdpExtConfigurator>(
                        warm_rig.configParams(), warm_rig.noc));
    cold.start();
    warm.start();
    Cycles tc = 0;
    Cycles tw = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (StreamId s = 0; s < 4; ++s) {
            tc = cold_rig.touch(s, tc);
            tw = warm_rig.touch(s, tw);
        }
        cold.onEpochEnd(tc);
        warm.onEpochEnd(tw);
        EXPECT_EQ(warm.streamsCovered(), cold.streamsCovered())
            << "epoch " << epoch;
    }
    EXPECT_GT(warm.solverWarmReused(), 0u);
    EXPECT_EQ(cold.solverWarmReused(), 0u);
}

// --- Checkpoint/resume byte-identity with solver flags on ----------------

SystemConfig
solverConfig(std::uint32_t threads)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 20'000;
    cfg.runtime.solverWarmStart = true;
    cfg.runtime.solverBudgetIters = 64;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

WorkloadParams
solverWorkloadParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 11;
    return p;
}

void
expectSameRun(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_EQ(a.reconfigurations, b.reconfigurations);
    const auto isWallClock = [](const std::string& name) {
        return name.size() >= 6
            && name.compare(name.size() - 6, 6, "Micros") == 0;
    };
    for (const auto& [name, value] : a.stats.raw()) {
        EXPECT_TRUE(b.stats.has(name)) << "missing stat " << name;
        if (!isWallClock(name)) {
            EXPECT_DOUBLE_EQ(value, b.stats.get(name))
                << "stat " << name;
        }
    }
    EXPECT_EQ(a.stats.raw().size(), b.stats.raw().size());
}

class SolverResumeTest : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    std::string
    prefix() const
    {
        return ::testing::TempDir() + "solver_resume_t"
            + std::to_string(GetParam());
    }
};

TEST_P(SolverResumeTest, WarmStartStateSurvivesResume)
{
    auto w = makeWorkload("pr");
    w->prepare(solverWorkloadParams());

    NdpSystem golden(solverConfig(1), PolicyKind::NdpExt);
    const RunResult want = golden.run(*w);
    EXPECT_GT(want.stats.get("runtime.solver.warmStartReused"), 0.0)
        << "warm start never engaged; test is vacuous";

    NdpSystem emitter(solverConfig(1), PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix(), 1);
    const RunResult emitted = emitter.run(*w);
    expectSameRun(want, emitted);

    std::string newest;
    std::string error;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix(), &newest, &h, &error))
        << error;
    ASSERT_GE(h.epoch, 2u) << "run too short to exercise resume";

    // Resuming mid-run must restore the fingerprint map, the previous
    // assignment, and the solver counters: the completed run is
    // bit-identical to the uninterrupted one at any thread count.
    for (const std::uint64_t epoch : {std::uint64_t{1}, h.epoch}) {
        NdpSystem resumed(solverConfig(GetParam()), PolicyKind::NdpExt);
        const std::string image =
            prefix() + "." + std::to_string(epoch) + ".ckpt";
        ASSERT_TRUE(resumed.setResume(image, *w, &error)) << error;
        const RunResult got = resumed.run(*w);
        expectSameRun(want, got);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, SolverResumeTest,
                         ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<std::uint32_t>&
                                info) {
                             return "t" + std::to_string(info.param);
                         });

} // namespace
} // namespace ndpext
