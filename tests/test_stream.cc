/** Tests for stream configs, affine reordering, and the stream table. */

#include <gtest/gtest.h>

#include <set>

#include "stream/stream_config.h"
#include "stream/stream_table.h"

namespace ndpext {
namespace {

TEST(StreamConfig, DenseBasics)
{
    const auto cfg =
        StreamConfig::dense("s", StreamType::Indirect, 0x1000, 4096, 8);
    EXPECT_EQ(cfg.numElems(), 512u);
    EXPECT_EQ(cfg.end(), 0x2000u);
    EXPECT_TRUE(cfg.contains(0x1000));
    EXPECT_TRUE(cfg.contains(0x1fff));
    EXPECT_FALSE(cfg.contains(0x2000));
    EXPECT_FALSE(cfg.isReordered());
}

TEST(StreamConfig, DenseElemIdRoundTrip)
{
    const auto cfg =
        StreamConfig::dense("s", StreamType::Affine, 0x1000, 4096, 8);
    for (ElemId e = 0; e < cfg.numElems(); ++e) {
        const Addr a = cfg.addrOf(e);
        EXPECT_EQ(cfg.elemIdOf(a), e);
    }
}

TEST(StreamConfig, ColMajorMatrixIsReordered)
{
    const auto cfg =
        StreamConfig::matrix2d("m", 0x1000, 8, 16, 4, /*col_major=*/true);
    EXPECT_TRUE(cfg.isReordered());
    // Element 0 in access order = (row 0, col 0); element 1 = (row 1,
    // col 0) -> one full row stride away in memory.
    EXPECT_EQ(cfg.addrOf(0), 0x1000u);
    EXPECT_EQ(cfg.addrOf(1), 0x1000u + 16 * 4);
}

TEST(StreamConfig, RowMajorMatrixIsNot)
{
    const auto cfg =
        StreamConfig::matrix2d("m", 0x1000, 8, 16, 4, /*col_major=*/false);
    EXPECT_FALSE(cfg.isReordered());
    EXPECT_EQ(cfg.addrOf(1), 0x1000u + 4);
}

TEST(StreamConfig, ReorderingGroupsColumnNeighbors)
{
    // Column-major access order: consecutive elem ids walk down a column,
    // so a 1 kB cache block of ids covers one column chunk -- the
    // spatial-locality improvement Section IV-A describes.
    const auto cfg =
        StreamConfig::matrix2d("m", 0, 64, 64, 4, /*col_major=*/true);
    // ids 0..63 are all of column 0.
    for (ElemId e = 0; e < 64; ++e) {
        const Addr a = cfg.addrOf(e);
        EXPECT_EQ((a / 4) % 64, 0u) << "elem " << e << " not in column 0";
    }
}

/** Property: elemIdOf(addrOf(e)) == e for diverse shapes and orders. */
struct ShapeCase
{
    std::uint64_t rows;
    std::uint64_t cols;
    std::uint32_t elem;
    bool colMajor;
};

class StreamBijectionTest : public ::testing::TestWithParam<ShapeCase>
{
};

TEST_P(StreamBijectionTest, RoundTripsAndCoversUniquely)
{
    const auto p = GetParam();
    const auto cfg = StreamConfig::matrix2d("m", 0x10000, p.rows, p.cols,
                                            p.elem, p.colMajor);
    std::set<Addr> seen;
    for (ElemId e = 0; e < cfg.numElems(); ++e) {
        const Addr a = cfg.addrOf(e);
        EXPECT_TRUE(cfg.contains(a));
        EXPECT_EQ(cfg.elemIdOf(a), e);
        EXPECT_TRUE(seen.insert(a).second) << "duplicate address";
    }
    EXPECT_EQ(seen.size(), cfg.numElems());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StreamBijectionTest,
    ::testing::Values(ShapeCase{4, 4, 4, false}, ShapeCase{4, 4, 4, true},
                      ShapeCase{16, 64, 8, true},
                      ShapeCase{64, 16, 8, true},
                      ShapeCase{1, 128, 4, false},
                      ShapeCase{128, 1, 4, true},
                      ShapeCase{31, 17, 8, true}));

TEST(StreamConfig, ThreeDimReorder)
{
    StreamConfig cfg;
    cfg.name = "t3";
    cfg.type = StreamType::Affine;
    cfg.base = 0;
    cfg.elemSize = 4;
    cfg.dims = 3;
    cfg.length = {4, 8, 2};
    cfg.stride = {4, 16, 128};
    cfg.size = 4 * 8 * 2 * 4;
    cfg.order = {2, 0, 1}; // iterate dim2 innermost, then dim0, then dim1
    cfg.validate();
    std::set<Addr> seen;
    for (ElemId e = 0; e < cfg.numElems(); ++e) {
        const Addr a = cfg.addrOf(e);
        EXPECT_EQ(cfg.elemIdOf(a), e);
        EXPECT_TRUE(seen.insert(a).second);
    }
    EXPECT_EQ(seen.size(), cfg.numElems());
}

TEST(StreamConfig, MalformedConfigsDie)
{
    StreamConfig cfg;
    cfg.name = "bad";
    cfg.type = StreamType::Affine;
    cfg.base = 0;
    cfg.elemSize = 8;
    cfg.size = 0; // zero size
    EXPECT_DEATH(cfg.validate(), "assertion failed");

    cfg.size = 100; // not a multiple of elemSize
    EXPECT_DEATH(cfg.validate(), "multiple of elemSize");

    cfg.size = 4 * 8 * 8;
    cfg.dims = 2;
    cfg.elemSize = 8;
    cfg.stride = {8, 48, 0}; // non-nested (should be 8*4=32)
    cfg.length = {4, 8, 0};
    EXPECT_DEATH(cfg.validate(), "non-nested stride");

    cfg.stride = {8, 32, 0};
    cfg.order = {0, 0, 2}; // not a permutation
    EXPECT_DEATH(cfg.validate(), "not a permutation");
}

TEST(StreamConfig, AddrOutOfRangeDies)
{
    const auto cfg =
        StreamConfig::dense("s", StreamType::Affine, 0x1000, 64, 8);
    EXPECT_DEATH(cfg.elemIdOf(0x2000), "out of range");
    EXPECT_DEATH(cfg.addrOf(100), "out of range");
}

TEST(StreamTable, AssignsSequentialSids)
{
    StreamTable t;
    const auto a = t.configureStream(
        StreamConfig::dense("a", StreamType::Affine, 0x1000, 4096, 8));
    const auto b = t.configureStream(
        StreamConfig::dense("b", StreamType::Affine, 0x3000, 4096, 8));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(t.numStreams(), 2u);
}

TEST(StreamTable, FindByAddr)
{
    StreamTable t;
    t.configureStream(
        StreamConfig::dense("a", StreamType::Affine, 0x1000, 4096, 8));
    t.configureStream(
        StreamConfig::dense("b", StreamType::Affine, 0x3000, 4096, 8));
    EXPECT_EQ(t.findByAddr(0x1000), 0u);
    EXPECT_EQ(t.findByAddr(0x1fff), 0u);
    EXPECT_EQ(t.findByAddr(0x3000), 1u);
    EXPECT_EQ(t.findByAddr(0x2000), kNoStream); // gap
    EXPECT_EQ(t.findByAddr(0x0), kNoStream);
    EXPECT_EQ(t.findByAddr(0x8000), kNoStream);
}

TEST(StreamTable, OverlapIsFatal)
{
    StreamTable t;
    t.configureStream(
        StreamConfig::dense("a", StreamType::Affine, 0x1000, 4096, 8));
    EXPECT_DEATH(t.configureStream(StreamConfig::dense(
                     "b", StreamType::Affine, 0x1800, 4096, 8)),
                 "overlaps");
}

TEST(StreamTable, MarkWrittenClearsReadOnly)
{
    StreamTable t;
    auto cfg = StreamConfig::dense("a", StreamType::Affine, 0x1000, 4096,
                                   8);
    cfg.readOnly = true;
    const auto sid = t.configureStream(cfg);
    EXPECT_TRUE(t.stream(sid).readOnly);
    t.markWritten(sid);
    EXPECT_FALSE(t.stream(sid).readOnly);
}

} // namespace
} // namespace ndpext
