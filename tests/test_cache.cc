/** Tests for the generic set-associative SRAM cache. */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.h"

namespace ndpext {
namespace {

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(4, 2);
    EXPECT_FALSE(c.access(10, false));
    c.insert(10, false);
    EXPECT_TRUE(c.access(10, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    SetAssocCache c(1, 2); // one set, two ways
    c.insert(1, false);
    c.insert(2, false);
    c.access(1, false); // 2 is now LRU
    const auto ev = c.insert(3, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.key, 2u);
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.contains(3));
    EXPECT_FALSE(c.contains(2));
}

TEST(SetAssocCache, DirtyBitPropagatesToEviction)
{
    SetAssocCache c(1, 1);
    c.insert(1, false);
    c.access(1, true); // mark dirty
    const auto ev = c.insert(2, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
}

TEST(SetAssocCache, CleanEvictionNotDirty)
{
    SetAssocCache c(1, 1);
    c.insert(1, false);
    const auto ev = c.insert(2, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_FALSE(ev.dirty);
}

TEST(SetAssocCache, InvalidateRemoves)
{
    SetAssocCache c(4, 2);
    c.insert(10, false);
    EXPECT_TRUE(c.invalidate(10));
    EXPECT_FALSE(c.contains(10));
    EXPECT_FALSE(c.invalidate(10));
}

TEST(SetAssocCache, InvalidateAllCounts)
{
    SetAssocCache c(4, 2);
    c.insert(1, false);
    c.insert(2, false);
    c.insert(3, false);
    EXPECT_EQ(c.invalidateAll(), 3u);
    EXPECT_EQ(c.invalidateAll(), 0u);
}

TEST(SetAssocCache, DifferentSetsDoNotConflict)
{
    SetAssocCache c(4, 1);
    c.insert(0, false); // set 0
    c.insert(1, false); // set 1
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(1));
}

TEST(SetAssocCache, FromCapacity)
{
    const auto c = SetAssocCache::fromCapacity(64_KiB, 64, 4);
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.numWays(), 4u);
}

TEST(SramCache, AllocatesOnMiss)
{
    SramCache c(1_KiB, 64, 2);
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x13f, false)); // same 64 B line
    EXPECT_FALSE(c.access(0x140, false)); // next line
}

TEST(SramCache, InvalidateAllDropsEverything)
{
    SramCache c(1_KiB, 64, 2);
    c.access(0x100, false);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x100, false));
}

/** Property: a working set no larger than capacity never conflicts. */
class CacheFitTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(CacheFitTest, FullyAssociativeSetNeverThrashesWithinWays)
{
    const auto [sets, ways] = GetParam();
    SetAssocCache c(sets, ways);
    // Fill one set exactly to its associativity.
    for (std::uint32_t w = 0; w < ways; ++w) {
        c.insert(static_cast<std::uint64_t>(w) * sets, false);
    }
    // All remain resident.
    for (std::uint32_t w = 0; w < ways; ++w) {
        EXPECT_TRUE(c.contains(static_cast<std::uint64_t>(w) * sets));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheFitTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 8u),
                      std::make_pair(16u, 4u), std::make_pair(64u, 16u),
                      std::make_pair(256u, 2u)));

} // namespace
} // namespace ndpext
