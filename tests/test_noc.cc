/** Tests for mesh geometry and the NoC timing/energy model. */

#include <gtest/gtest.h>

#include "noc/mesh.h"
#include "noc/noc_model.h"

namespace ndpext {
namespace {

MeshTopology
paperTopo()
{
    return MeshTopology(4, 2, 4, 4); // Table II: 4x2 stacks of 4x4 units
}

TEST(Mesh, Counts)
{
    const auto t = paperTopo();
    EXPECT_EQ(t.numStacks(), 8u);
    EXPECT_EQ(t.unitsPerStack(), 16u);
    EXPECT_EQ(t.numUnits(), 128u);
}

TEST(Mesh, CoordinateRoundTrip)
{
    const auto t = paperTopo();
    for (UnitId u = 0; u < t.numUnits(); ++u) {
        const StackId s = t.stackOf(u);
        const Coord c = t.localCoord(u);
        EXPECT_EQ(t.unitAt(s, c), u);
    }
}

TEST(Mesh, StackDistanceIsManhattan)
{
    const auto t = paperTopo();
    // Stack 0 at (0,0), stack 7 at (3,1): distance 4.
    EXPECT_EQ(t.stackDistance(0, 7), 4u);
    EXPECT_EQ(t.stackDistance(3, 3), 0u);
    EXPECT_EQ(t.stackDistance(0, 1), 1u);
}

TEST(Mesh, SameStackRouteHasNoInterHops)
{
    const auto t = paperTopo();
    const auto h = t.route(0, 5);
    EXPECT_EQ(h.inter, 0u);
    EXPECT_GT(h.intra, 0u);
}

TEST(Mesh, CrossStackRouteUsesPortals)
{
    const auto t = paperTopo();
    const UnitId a = 0;                      // stack 0
    const UnitId b = t.unitsPerStack() * 7;  // stack 7
    const auto h = t.route(a, b);
    EXPECT_EQ(h.inter, t.stackDistance(0, 7));
    EXPECT_EQ(h.intra, t.hopsToPortal(a) + t.hopsToPortal(b));
}

TEST(Mesh, SelfRouteIsZero)
{
    const auto t = paperTopo();
    const auto h = t.route(9, 9);
    EXPECT_EQ(h.intra, 0u);
    EXPECT_EQ(h.inter, 0u);
}

TEST(Mesh, CenterUnitsCloserToPortal)
{
    const auto t = paperTopo();
    // Unit at local (1,1) is the portal; corner (3,3) is farthest.
    const UnitId center = t.unitAt(0, Coord{1, 1});
    const UnitId corner = t.unitAt(0, Coord{3, 3});
    EXPECT_EQ(t.hopsToPortal(center), 0u);
    EXPECT_EQ(t.hopsToPortal(corner), 4u);
}

TEST(NocModel, ZeroLoadLatencyMatchesHops)
{
    const auto t = paperTopo();
    NocParams p;
    NocModel noc(t, p);
    const UnitId a = 0;
    const UnitId b = 3; // same stack, 3 hops
    EXPECT_EQ(noc.pureLatency(a, b), 3 * p.intraHopCycles);
    EXPECT_EQ(noc.pureLatency(a, a), 0u);
}

TEST(NocModel, TransferMatchesZeroLoadWhenIdle)
{
    const auto t = paperTopo();
    NocParams p;
    NocModel noc(t, p);
    const auto r = noc.transfer(0, 3, 64, 1000);
    EXPECT_EQ(r.done, 1000 + noc.pureLatency(0, 3));
}

TEST(NocModel, InterStackTransferQueuesUnderLoad)
{
    const auto t = paperTopo();
    NocParams p;
    NocModel noc(t, p);
    const UnitId a = t.unitAt(0, Coord{1, 1}); // at portal
    const UnitId b = t.unitAt(1, Coord{1, 1});
    const auto r1 = noc.transfer(a, b, 4096, 0);
    const auto r2 = noc.transfer(a, b, 4096, 0);
    EXPECT_GT(r2.done, r1.done); // shared egress link serializes
}

TEST(NocModel, FartherStacksTakeLonger)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    const UnitId a = 0;
    const UnitId near = t.unitsPerStack() * 1;
    const UnitId far = t.unitsPerStack() * 3;
    EXPECT_LT(noc.pureLatency(a, near), noc.pureLatency(a, far));
}

TEST(NocModel, AttenuationDecreasesWithDistance)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    const double local = noc.attenuation(0, 0, 40);
    const double remote = noc.attenuation(0, 127, 40);
    EXPECT_DOUBLE_EQ(local, 1.0);
    EXPECT_LT(remote, local);
    EXPECT_GT(remote, 0.0);
}

TEST(NocModel, EnergyGrowsWithHopsAndBytes)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    noc.transfer(0, 1, 64, 0);
    const double e1 = noc.energyNj();
    noc.transfer(0, 127, 64, 0);
    const double e2 = noc.energyNj() - e1;
    EXPECT_GT(e2, e1); // cross-stack hop energy dominates
}

TEST(NocModel, CxlPortalTransfers)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    // From a unit in the CXL stack: only intra hops.
    const auto r1 = noc.transferToCxl(0, 64, 0);
    EXPECT_EQ(r1.interHops, 0u);
    // From a remote stack: inter hops too.
    const auto r2 = noc.transferToCxl(t.unitsPerStack() * 7, 64, 0);
    EXPECT_GT(r2.interHops, 0u);
    const auto r3 = noc.transferFromCxl(t.unitsPerStack() * 7, 64, 0);
    EXPECT_GT(r3.interHops, 0u);
}

TEST(NocModel, EnergyMatchesHopArithmetic)
{
    const auto t = paperTopo();
    NocParams p;
    NocModel noc(t, p);
    // 3 intra hops, 0 inter: energy = bytes*8 * intraPj * 3.
    const std::uint32_t bytes = 128;
    noc.transfer(0, 3, bytes, 0);
    const double expect =
        bytes * 8.0 * p.intraPjPerBit * 1e-3 * 3.0;
    EXPECT_NEAR(noc.energyNj(), expect, 1e-9);
}

TEST(NocModel, CxlPortalSerializesUnderBurst)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    // Many simultaneous big transfers from a remote stack toward the CXL
    // portal share the inter-stack links: completions must spread out.
    const UnitId src = t.unitsPerStack() * 7; // farthest stack
    Cycles first = 0;
    Cycles last = 0;
    for (int i = 0; i < 16; ++i) {
        const auto r = noc.transferToCxl(src, 4096, 0);
        if (i == 0) {
            first = r.done;
        }
        last = r.done;
    }
    EXPECT_GT(last, first);
}

TEST(NocModel, ReportIncludesQueueCounters)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    noc.transfer(0, 127, 64, 0);
    StatGroup stats;
    noc.report(stats, "noc");
    EXPECT_DOUBLE_EQ(stats.get("noc.transfers"), 1.0);
    EXPECT_TRUE(stats.has("noc.linkReservations"));
}

TEST(NocModel, ResetClearsEverything)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    noc.transfer(0, 127, 64, 0);
    noc.reset();
    EXPECT_EQ(noc.transfers(), 0u);
    EXPECT_DOUBLE_EQ(noc.energyNj(), 0.0);
    EXPECT_EQ(noc.totalTransferCycles(), 0u);
}

/** Property: latency symmetric in zero-load conditions. */
class NocSymmetryTest
    : public ::testing::TestWithParam<std::pair<UnitId, UnitId>>
{
};

TEST_P(NocSymmetryTest, PureLatencySymmetric)
{
    const auto t = paperTopo();
    NocModel noc(t, NocParams{});
    const auto [a, b] = GetParam();
    EXPECT_EQ(noc.pureLatency(a, b), noc.pureLatency(b, a));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, NocSymmetryTest,
    ::testing::Values(std::make_pair(0u, 5u), std::make_pair(0u, 17u),
                      std::make_pair(3u, 127u), std::make_pair(64u, 80u),
                      std::make_pair(15u, 16u), std::make_pair(40u, 90u)));

} // namespace
} // namespace ndpext
