/**
 * Serving-frontend coverage: the arrival-process registry and every
 * registered process (determinism, gap bounds, mid-stream checkpoint),
 * tenant-spec parsing and validation diagnostics, the composed
 * multi-tenant workload (stream ownership, churn windows, config hash),
 * the open-loop generator (window-confined arrivals, reserved-first
 * scheduling, SLO accounting, byte-identical checkpoint round trips),
 * and full-system invariants: thread-count invariance, resume
 * bit-identity, drained-run stat conservation, and reserved-QoS p99
 * attainment beating best-effort under overload.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "serving/arrival_process.h"
#include "serving/serving_config.h"
#include "serving/serving_workload.h"
#include "sim/checkpoint.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace {

// --- Arrival registry ---------------------------------------------------

TEST(ArrivalRegistry, BuiltinProcessesAreRegistered)
{
    const auto names = ArrivalRegistry::instance().names();
    for (const char* want : {"poisson", "bursty", "diurnal", "fixed"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << want;
    }
    const ArrivalInfo* info = ArrivalRegistry::instance().find("bursty");
    ASSERT_NE(info, nullptr);
    EXPECT_FALSE(info->description.empty());
    EXPECT_FALSE(info->tunables.empty());
    EXPECT_EQ(ArrivalRegistry::instance().find("nope"), nullptr);
}

TEST(ArrivalRegistry, SuggestsClosestName)
{
    EXPECT_EQ(ArrivalRegistry::instance().suggest("posson"), "poisson");
    EXPECT_EQ(ArrivalRegistry::instance().suggest("burstee"), "bursty");
    EXPECT_EQ(ArrivalRegistry::instance().suggest("qqqqqqqqqq"), "");
}

// --- Arrival processes --------------------------------------------------

ArrivalParams
params(double period)
{
    ArrivalParams p;
    p.periodCycles = period;
    return p;
}

TEST(ArrivalProcess, FixedGapIsExactlyThePeriod)
{
    auto p = createArrivalProcess("fixed", params(1234.0), 1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(p->nextGap(), 1234u);
    }
}

TEST(ArrivalProcess, GapsAreAtLeastOneCycle)
{
    // Sub-cycle mean periods must still produce strictly increasing
    // arrival times.
    for (const auto& name : ArrivalRegistry::instance().names()) {
        auto p = createArrivalProcess(name, params(1.5), 99);
        for (int i = 0; i < 2000; ++i) {
            EXPECT_GE(p->nextGap(), 1u) << name;
        }
    }
}

TEST(ArrivalProcess, SameSeedSameSequence)
{
    for (const auto& name : ArrivalRegistry::instance().names()) {
        auto a = createArrivalProcess(name, params(800.0), 7);
        auto b = createArrivalProcess(name, params(800.0), 7);
        for (int i = 0; i < 500; ++i) {
            EXPECT_EQ(a->nextGap(), b->nextGap()) << name << " @" << i;
        }
    }
}

TEST(ArrivalProcess, DifferentSeedsDiverge)
{
    for (const auto& name : ArrivalRegistry::instance().names()) {
        if (name == "fixed") {
            continue; // deterministic gap, seed-independent by design
        }
        auto a = createArrivalProcess(name, params(800.0), 7);
        auto b = createArrivalProcess(name, params(800.0), 8);
        bool differ = false;
        for (int i = 0; i < 500 && !differ; ++i) {
            differ = a->nextGap() != b->nextGap();
        }
        EXPECT_TRUE(differ) << name;
    }
}

TEST(ArrivalProcess, PoissonMeanTracksPeriod)
{
    auto p = createArrivalProcess("poisson", params(1000.0), 3);
    double sum = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        sum += static_cast<double>(p->nextGap());
    }
    EXPECT_NEAR(sum / n, 1000.0, 50.0);
}

TEST(ArrivalProcess, CheckpointResumesMidStream)
{
    // Serialize after 57 draws, restore into an instance built with a
    // *different* seed: the continuation must match the original
    // exactly (deserialize restores all state, including the Rng).
    for (const auto& name : ArrivalRegistry::instance().names()) {
        auto a = createArrivalProcess(name, params(600.0), 11);
        for (int i = 0; i < 57; ++i) {
            a->nextGap();
        }
        ckpt::Writer w;
        a->serialize(w);

        auto b = createArrivalProcess(name, params(600.0), 999);
        ckpt::Reader r(w.bytes());
        b->deserialize(r);
        for (int i = 0; i < 300; ++i) {
            EXPECT_EQ(a->nextGap(), b->nextGap()) << name << " @" << i;
        }
    }
}

// --- Tenant-spec parsing ------------------------------------------------

TEST(TenantSpec, ParsesFullSpec)
{
    TenantSpec t;
    std::string error;
    ASSERT_TRUE(parseTenantSpec(
        "name=emb,workload=recsys,arrival=bursty,period=1500,req=32,"
        "qos=reserved,reserve-pct=25,slo=40000,arrive=2,depart=9,"
        "footprint-mb=8,burst-factor=4",
        &t, &error))
        << error;
    EXPECT_EQ(t.name, "emb");
    EXPECT_EQ(t.workload, "recsys");
    EXPECT_EQ(t.arrival, "bursty");
    EXPECT_DOUBLE_EQ(t.periodCycles, 1500.0);
    EXPECT_EQ(t.requestAccesses, 32u);
    EXPECT_TRUE(t.reserved);
    EXPECT_DOUBLE_EQ(t.reservePct, 25.0);
    EXPECT_EQ(t.sloCycles, 40'000u);
    EXPECT_EQ(t.arriveEpoch, 2u);
    EXPECT_EQ(t.departEpoch, 9u);
    EXPECT_EQ(t.footprintBytes, 8_MiB);
    ASSERT_EQ(t.arrivalTunables.size(), 1u);
    EXPECT_EQ(t.arrivalTunables[0].first, "burst-factor");
    EXPECT_DOUBLE_EQ(t.arrivalTunables[0].second, 4.0);
}

TEST(TenantSpec, DefaultsArePoissonBestEffort)
{
    TenantSpec t;
    std::string error;
    ASSERT_TRUE(parseTenantSpec("workload=mv,period=2000", &t, &error))
        << error;
    EXPECT_EQ(t.arrival, "poisson");
    EXPECT_FALSE(t.reserved);
    EXPECT_GT(t.sloCycles, 0u);
    EXPECT_GE(t.requestAccesses, 1u);
}

TEST(TenantSpec, ParseErrorsNameTheOffendingKey)
{
    TenantSpec t;
    std::string error;
    EXPECT_FALSE(parseTenantSpec("", &t, &error));
    EXPECT_NE(error.find("empty spec"), std::string::npos) << error;

    EXPECT_FALSE(parseTenantSpec("workload=mv,period", &t, &error));
    EXPECT_NE(error.find("key=value"), std::string::npos) << error;

    EXPECT_FALSE(parseTenantSpec("workload=mv,qos=gold", &t, &error));
    EXPECT_NE(error.find("qos"), std::string::npos) << error;

    EXPECT_FALSE(parseTenantSpec("workload=mv,period=abc", &t, &error));
    EXPECT_NE(error.find("period"), std::string::npos) << error;

    EXPECT_FALSE(parseTenantSpec("workload=mv,slo=-5", &t, &error));
    EXPECT_NE(error.find("slo"), std::string::npos) << error;

    TenantSpec fresh;
    EXPECT_FALSE(parseTenantSpec("period=100", &fresh, &error));
    EXPECT_NE(error.find("workload"), std::string::npos) << error;
}

// --- Serving-config validation ------------------------------------------

TenantSpec
tenant(const std::string& name, const std::string& workload,
       double period)
{
    TenantSpec t;
    t.name = name;
    t.workload = workload;
    t.periodCycles = period;
    return t;
}

std::string
validationError(const ServingConfig& cfg)
{
    std::string error;
    EXPECT_FALSE(validateServingConfig(cfg, &error));
    return error;
}

TEST(ValidateServing, EmptyConfigIsValid)
{
    std::string error;
    EXPECT_TRUE(validateServingConfig(ServingConfig{}, &error)) << error;
}

TEST(ValidateServing, RejectsNonPositiveArrivalRate)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a", "mv", 0.0));
    std::string error = validationError(cfg);
    EXPECT_NE(error.find("--tenant[0]"), std::string::npos) << error;
    EXPECT_NE(error.find("arrival rate must be positive"),
              std::string::npos)
        << error;

    cfg.tenants[0].periodCycles = -3.0;
    error = validationError(cfg);
    EXPECT_NE(error.find("arrival rate must be positive"),
              std::string::npos)
        << error;
}

TEST(ValidateServing, RejectsTooManyTenants)
{
    ServingConfig cfg;
    for (std::size_t i = 0; i <= kMaxTenants; ++i) {
        cfg.tenants.push_back(
            tenant("t" + std::to_string(i), "mv", 1000.0));
    }
    const std::string error = validationError(cfg);
    EXPECT_NE(error.find("exceeds the limit"), std::string::npos)
        << error;
}

TEST(ValidateServing, UnknownNamesGetDidYouMean)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a", "recsyss", 1000.0));
    std::string error = validationError(cfg);
    EXPECT_NE(error.find("did you mean 'recsys'"), std::string::npos)
        << error;

    cfg.tenants[0].workload = "recsys";
    cfg.tenants[0].arrival = "posson";
    error = validationError(cfg);
    EXPECT_NE(error.find("did you mean 'poisson'"), std::string::npos)
        << error;

    cfg.tenants[0].arrival = "bursty";
    cfg.tenants[0].arrivalTunables.emplace_back("burst-fac", 3.0);
    error = validationError(cfg);
    EXPECT_NE(error.find("did you mean 'burst-frac'"), std::string::npos)
        << error;
}

TEST(ValidateServing, RejectsMetricUnsafeTenantNames)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a.b", "mv", 1000.0));
    const std::string error = validationError(cfg);
    EXPECT_NE(error.find("letters, digits"), std::string::npos) << error;
}

TEST(ValidateServing, RejectsDuplicateTenantNames)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a", "mv", 1000.0));
    cfg.tenants.push_back(tenant("a", "pr", 1000.0));
    const std::string error = validationError(cfg);
    EXPECT_NE(error.find("duplicate tenant name"), std::string::npos)
        << error;
}

TEST(ValidateServing, RejectsBadQosCombinations)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a", "mv", 1000.0));
    cfg.tenants[0].reservePct = 10.0; // without qos=reserved
    std::string error = validationError(cfg);
    EXPECT_NE(error.find("requires qos=reserved"), std::string::npos)
        << error;

    cfg.tenants[0].reserved = true;
    cfg.tenants[0].reservePct = 60.0;
    cfg.tenants.push_back(tenant("b", "mv", 1000.0));
    cfg.tenants[1].reserved = true;
    cfg.tenants[1].reservePct = 50.0;
    error = validationError(cfg);
    EXPECT_NE(error.find("at most 90%"), std::string::npos) << error;
}

TEST(ValidateServing, RejectsEmptyChurnWindow)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a", "mv", 1000.0));
    cfg.tenants[0].arriveEpoch = 4;
    cfg.tenants[0].departEpoch = 4;
    const std::string error = validationError(cfg);
    EXPECT_NE(error.find("churn window is empty"), std::string::npos)
        << error;
}

TEST(ValidateServing, RejectsZeroHorizonAndZeroSlo)
{
    ServingConfig cfg;
    cfg.tenants.push_back(tenant("a", "mv", 1000.0));
    cfg.horizonCycles = 0;
    std::string error = validationError(cfg);
    EXPECT_NE(error.find("--horizon"), std::string::npos) << error;

    cfg.horizonCycles = 100'000;
    cfg.tenants[0].sloCycles = 0;
    error = validationError(cfg);
    EXPECT_NE(error.find("slo must be > 0"), std::string::npos) << error;
}

TEST(ValidateServing, PropagatesThroughSystemConfigValidate)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.serving.tenants.push_back(tenant("a", "mv", -1.0));
    std::string error;
    EXPECT_FALSE(cfg.validate(&error));
    EXPECT_NE(error.find("arrival rate must be positive"),
              std::string::npos)
        << error;
}

// --- The composed workload ----------------------------------------------

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.numCores = 8;
    p.footprintBytes = 16_MiB;
    p.accessesPerCore = 4000;
    p.seed = 7;
    return p;
}

ServingConfig
twoTenantConfig()
{
    ServingConfig cfg;
    cfg.horizonCycles = 100'000;
    cfg.tenants.push_back(tenant("emb", "recsys", 4000.0));
    cfg.tenants.push_back(tenant("lin", "mv", 5000.0));
    cfg.tenants[0].arrival = "fixed";
    cfg.tenants[1].arrival = "fixed";
    return cfg;
}

TEST(ServingWorkload, ComposesTenantStreamsWithOwnership)
{
    ServingWorkload w(twoTenantConfig(), 10'000);
    w.prepare(tinyParams());

    const auto& configs = w.streamConfigs();
    ASSERT_GT(configs.size(), 1u);
    bool sawEmb = false;
    bool sawLin = false;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(configs[i].sid, i);
        const std::uint32_t owner = w.streamTenant(i);
        ASSERT_LT(owner, 2u);
        const std::string& prefix = owner == 0 ? "emb." : "lin.";
        EXPECT_EQ(configs[i].name.rfind(prefix, 0), 0u)
            << configs[i].name;
        sawEmb = sawEmb || owner == 0;
        sawLin = sawLin || owner == 1;
    }
    EXPECT_TRUE(sawEmb);
    EXPECT_TRUE(sawLin);

    // Default windows span [0, horizon).
    EXPECT_EQ(w.activeStart(0), 0u);
    EXPECT_EQ(w.activeEnd(0), 100'000u);
}

TEST(ServingWorkload, ChurnWindowsAreEpochAligned)
{
    ServingConfig cfg = twoTenantConfig();
    cfg.tenants[1].arriveEpoch = 2;
    cfg.tenants[1].departEpoch = 7;
    ServingWorkload w(cfg, 10'000);
    w.prepare(tinyParams());
    EXPECT_EQ(w.activeStart(1), 20'000u);
    EXPECT_EQ(w.activeEnd(1), 70'000u);

    // Windows past the horizon clamp to it.
    ServingConfig late = twoTenantConfig();
    late.tenants[0].arriveEpoch = 50; // 500k > 100k horizon
    ServingWorkload w2(late, 10'000);
    w2.prepare(tinyParams());
    EXPECT_EQ(w2.activeStart(0), 100'000u);
}

TEST(ServingWorkload, HashExtraCoversServingConfig)
{
    const auto hashOf = [](const ServingConfig& cfg, Cycles epoch) {
        ServingWorkload w(cfg, epoch);
        ckpt::Writer wr;
        w.hashExtra(wr);
        return wr.bytes();
    };
    const ServingConfig base = twoTenantConfig();
    ServingConfig slo = base;
    slo.tenants[0].sloCycles += 1;
    ServingConfig qos = base;
    qos.tenants[0].reserved = true;
    qos.tenants[0].reservePct = 10.0;
    EXPECT_NE(hashOf(base, 10'000), hashOf(slo, 10'000));
    EXPECT_NE(hashOf(base, 10'000), hashOf(qos, 10'000));
    EXPECT_NE(hashOf(base, 10'000), hashOf(base, 20'000));
    EXPECT_EQ(hashOf(base, 10'000), hashOf(twoTenantConfig(), 10'000));
}

// --- The open-loop generator --------------------------------------------

/** Drive a generator like a core: idle to notBefore, charge a fixed
 *  service time per access, and retire end-of-request accesses. */
struct DriveRecord
{
    std::vector<Access> accesses;
    Cycles now = 0;
};

DriveRecord
drive(AccessGenerator& gen, std::size_t max_accesses,
      Cycles service = 200)
{
    DriveRecord rec;
    Access a;
    while (rec.accesses.size() < max_accesses && gen.next(a, rec.now)) {
        rec.now = std::max(rec.now, a.notBefore) + service;
        rec.accesses.push_back(a);
        if (a.endOfRequest) {
            gen.onRetire(a, rec.now);
        }
    }
    return rec;
}

TEST(ServingGenerator, ArrivalsConfinedToChurnWindow)
{
    ServingConfig cfg = twoTenantConfig();
    cfg.tenants[1].arriveEpoch = 3;
    cfg.tenants[1].departEpoch = 6; // active cycles [30k, 60k)
    ServingWorkload w(cfg, 10'000);
    w.prepare(tinyParams());

    auto gen = w.makeGenerator(0);
    const DriveRecord rec = drive(*gen, 1 << 20);

    // Requests are delimited by endOfRequest; the first access of each
    // carries the arrival cycle in notBefore.
    std::size_t linRequests = 0;
    bool first = true;
    for (const Access& a : rec.accesses) {
        if (first && w.streamTenant(a.sid) == 1) {
            ++linRequests;
            EXPECT_GE(a.notBefore, 30'000u);
            EXPECT_LT(a.notBefore, 60'000u);
        }
        first = a.endOfRequest;
    }
    // fixed @5000 from 30k: arrivals at 35k..55k.
    EXPECT_EQ(linRequests, 5u);

    const auto* sg = dynamic_cast<const ServingGenerator*>(gen.get());
    ASSERT_NE(sg, nullptr);
    EXPECT_EQ(sg->tenantStats(1).arrivals, 5u);
    EXPECT_EQ(sg->tenantStats(1).started, 5u);
    EXPECT_EQ(sg->tenantStats(1).retired, 5u);
    EXPECT_EQ(sg->tenantStats(1).latency.count(), 5u);
}

TEST(ServingGenerator, ReservedRequestsAreServedFirstUnderBacklog)
{
    ServingConfig cfg = twoTenantConfig();
    cfg.tenants[0].reserved = true; // same fixed arrivals, tenant 0 wins
    ServingWorkload w(cfg, 10'000);
    w.prepare(tinyParams());

    auto gen = w.makeGenerator(0);
    // A huge first service time builds a backlog of both classes; every
    // reserved request must then be served before any best-effort one
    // that arrived no later.
    Access a;
    ASSERT_TRUE(gen->next(a, 0));
    const Cycles now = 95'000; // everything has arrived
    std::vector<std::uint32_t> order;
    bool first = false;
    while (gen->next(a, now)) {
        // Only requests that had arrived by `now` compete for priority;
        // the tail past the backlog is served in plain arrival order.
        if (first && a.notBefore <= now) {
            order.push_back(w.streamTenant(a.sid));
        }
        first = a.endOfRequest;
        if (a.endOfRequest) {
            gen->onRetire(a, now);
        }
    }
    ASSERT_GT(order.size(), 10u);
    const auto firstBestEffort =
        std::find(order.begin(), order.end(), 1u);
    // All reserved (tenant 0) requests drain before the first
    // best-effort one.
    EXPECT_EQ(std::count(firstBestEffort, order.end(), 0u), 0);
}

TEST(ServingGenerator, SloViolationsCountRetiredOverTarget)
{
    ServingConfig cfg = twoTenantConfig();
    cfg.tenants.resize(1);
    cfg.tenants[0].sloCycles = 1000;
    ServingWorkload w(cfg, 10'000);
    w.prepare(tinyParams());

    auto gen = w.makeGenerator(0);
    auto* sg = dynamic_cast<ServingGenerator*>(gen.get());
    ASSERT_NE(sg, nullptr);

    // First request: retire exactly at the SLO -- not a violation.
    Access a;
    Cycles arrival = 0;
    do {
        ASSERT_TRUE(gen->next(a, 0));
        if (a.notBefore != 0) {
            arrival = a.notBefore;
        }
    } while (!a.endOfRequest);
    gen->onRetire(a, arrival + 1000);
    EXPECT_EQ(sg->tenantStats(0).sloViolations, 0u);

    // Second request: one cycle over -- a violation.
    do {
        ASSERT_TRUE(gen->next(a, arrival + 1000));
        if (a.notBefore != 0) {
            arrival = a.notBefore;
        }
    } while (!a.endOfRequest);
    gen->onRetire(a, arrival + 1001);
    EXPECT_EQ(sg->tenantStats(0).sloViolations, 1u);
    EXPECT_EQ(sg->tenantStats(0).retired, 2u);
}

TEST(ServingGenerator, CheckpointRoundTripIsByteIdentical)
{
    ServingConfig cfg = twoTenantConfig();
    cfg.tenants[0].arrival = "poisson";
    cfg.tenants[1].arrival = "bursty";
    ServingWorkload w(cfg, 10'000);
    w.prepare(tinyParams());

    auto gen = w.makeGenerator(2);
    drive(*gen, 300); // mid-run: queues, in-flight and stats populated

    ckpt::Writer snap;
    gen->serializeExtra(snap);

    auto resumed = w.makeGenerator(2);
    ckpt::Reader r(snap.bytes());
    resumed->deserializeExtra(r);

    // Both must emit identical traffic from here on and then serialize
    // to identical bytes.
    Access a;
    Access b;
    Cycles now = 300 * 200;
    for (int i = 0; i < 500; ++i) {
        const bool okA = gen->next(a, now);
        const bool okB = resumed->next(b, now);
        ASSERT_EQ(okA, okB) << i;
        if (!okA) {
            break;
        }
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.sid, b.sid) << i;
        EXPECT_EQ(a.notBefore, b.notBefore) << i;
        EXPECT_EQ(a.endOfRequest, b.endOfRequest) << i;
        now += 150;
        if (a.endOfRequest) {
            gen->onRetire(a, now);
            resumed->onRetire(b, now);
        }
    }
    ckpt::Writer wa;
    ckpt::Writer wb;
    gen->serializeExtra(wa);
    resumed->serializeExtra(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());
}

// --- Full-system serving runs -------------------------------------------

SystemConfig
tinySystem(std::uint32_t threads)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2; // 8 units, 2 shards
    cfg.unitCacheBytes = 256_KiB;
    cfg.runtime.epochCycles = 20'000;
    cfg.numThreads = threads;
    cfg.finalize();
    return cfg;
}

ServingConfig
mixedTenants()
{
    ServingConfig cfg;
    cfg.horizonCycles = 150'000;
    cfg.tenants.push_back(tenant("emb", "recsys", 8000.0));
    cfg.tenants[0].reserved = true;
    cfg.tenants[0].reservePct = 25.0;
    cfg.tenants[0].sloCycles = 60'000;
    cfg.tenants.push_back(tenant("graph", "pr", 10'000.0));
    cfg.tenants[1].arrival = "bursty";
    cfg.tenants.push_back(tenant("lin", "mv", 12'000.0));
    cfg.tenants[2].arriveEpoch = 1;
    cfg.tenants[2].departEpoch = 5;
    return cfg;
}

/** Bit-identity over every deterministic reported quantity, including
 *  the per-tenant serving stats. */
void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_DOUBLE_EQ(a.energy.totalNj(), b.energy.totalNj());
    EXPECT_EQ(a.reconfigurations, b.reconfigurations);
    const auto isWallClock = [](const std::string& name) {
        return name.size() >= 6
            && name.compare(name.size() - 6, 6, "Micros") == 0;
    };
    for (const auto& [name, value] : a.stats.raw()) {
        EXPECT_TRUE(b.stats.has(name)) << "missing stat " << name;
        if (!isWallClock(name)) {
            EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << "stat " << name;
        }
    }
    EXPECT_EQ(a.stats.raw().size(), b.stats.raw().size());
}

RunResult
runServing(const ServingConfig& serving, std::uint32_t threads)
{
    SystemConfig cfg = tinySystem(threads);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());
    NdpSystem sys(cfg, PolicyKind::NdpExt);
    return sys.run(w);
}

TEST(ServingSystem, DrainedRunConservesRequestCounts)
{
    const RunResult res = runServing(mixedTenants(), 1);
    ASSERT_TRUE(res.stats.has("serving.tenants"));
    EXPECT_DOUBLE_EQ(res.stats.get("serving.tenants"), 3.0);
    for (const char* name : {"emb", "graph", "lin"}) {
        const std::string base = std::string("tenant.") + name;
        const double arrivals = res.stats.get(base + ".arrivals");
        EXPECT_GT(arrivals, 0.0) << name;
        // A run ends only when every generator drains, so every drawn
        // arrival was started and retired.
        EXPECT_DOUBLE_EQ(res.stats.get(base + ".started"), arrivals)
            << name;
        EXPECT_DOUBLE_EQ(res.stats.get(base + ".retired"), arrivals)
            << name;
        const double attainment = res.stats.get(base + ".sloAttainment");
        EXPECT_GE(attainment, 0.0) << name;
        EXPECT_LE(attainment, 1.0) << name;
        EXPECT_GT(res.stats.get(base + ".latencyP99"), 0.0) << name;
        EXPECT_GE(res.stats.get(base + ".latencyP99"),
                  res.stats.get(base + ".latencyP50"))
            << name;
    }
    EXPECT_DOUBLE_EQ(res.stats.get("tenant.emb.reserved"), 1.0);
    EXPECT_DOUBLE_EQ(res.stats.get("tenant.graph.reserved"), 0.0);
}

TEST(ServingSystem, ThreadCountInvariance)
{
    const RunResult a = runServing(mixedTenants(), 1);
    const RunResult b = runServing(mixedTenants(), 8);
    expectIdentical(a, b);
}

TEST(ServingSystem, ResumeIsBitIdentical)
{
    const ServingConfig serving = mixedTenants();
    SystemConfig cfg = tinySystem(1);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());

    NdpSystem golden(cfg, PolicyKind::NdpExt);
    const RunResult want = golden.run(w);

    const std::string prefix = ::testing::TempDir() + "serving_resume";
    NdpSystem emitter(cfg, PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix, 1);
    const RunResult emitted = emitter.run(w);
    expectIdentical(want, emitted);

    std::string newest;
    std::string error;
    ckpt::CheckpointHeader h;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &newest, &h, &error))
        << error;
    ASSERT_GE(h.epoch, 3u) << "run too short to exercise resume";

    for (const std::uint64_t epoch :
         {std::uint64_t{1}, h.epoch / 2, h.epoch}) {
        SystemConfig rcfg = tinySystem(8);
        rcfg.serving = serving;
        NdpSystem resumed(rcfg, PolicyKind::NdpExt);
        const std::string image =
            prefix + "." + std::to_string(epoch) + ".ckpt";
        ASSERT_TRUE(resumed.setResume(image, w, &error)) << error;
        const RunResult got = resumed.run(w);
        expectIdentical(want, got);
    }
}

TEST(ServingSystem, ResumeRejectsDifferentServingConfig)
{
    const ServingConfig serving = mixedTenants();
    SystemConfig cfg = tinySystem(1);
    cfg.serving = serving;
    ServingWorkload w(serving, cfg.runtime.epochCycles);
    w.prepare(tinyParams());

    const std::string prefix =
        ::testing::TempDir() + "serving_resume_cfg";
    NdpSystem emitter(cfg, PolicyKind::NdpExt);
    emitter.setCheckpointing(prefix, 1);
    emitter.run(w);

    std::string newest;
    std::string error;
    ASSERT_TRUE(
        ckpt::findLatestValidCheckpoint(prefix, &newest, nullptr, &error))
        << error;

    // Same tenants, different SLO: the serving config is part of the
    // config hash, so the image must be rejected.
    ServingConfig other = mixedTenants();
    other.tenants[0].sloCycles += 1;
    ServingWorkload w2(other, cfg.runtime.epochCycles);
    w2.prepare(tinyParams());
    NdpSystem resumed(cfg, PolicyKind::NdpExt);
    EXPECT_FALSE(resumed.setResume(newest, w2, &error));
    EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

TEST(ServingSystem, ReservedBeatsBestEffortUnderOverload)
{
    // Two tenants with the same workload, arrivals and SLO; only the
    // QoS class differs. Under overload the reserved tenant's p99
    // attainment must be strictly better (priority scheduling plus the
    // Algorithm 1 capacity carve-out).
    ServingConfig cfg;
    cfg.horizonCycles = 150'000;
    cfg.tenants.push_back(tenant("res", "recsys", 2500.0));
    cfg.tenants[0].reserved = true;
    cfg.tenants[0].reservePct = 30.0;
    cfg.tenants[0].sloCycles = 50'000;
    cfg.tenants.push_back(tenant("be", "recsys", 2500.0));
    cfg.tenants[1].sloCycles = 50'000;

    const RunResult res = runServing(cfg, 1);
    const double resAttain = res.stats.get("tenant.res.sloAttainment");
    const double beAttain = res.stats.get("tenant.be.sloAttainment");
    EXPECT_GT(resAttain, beAttain);
    EXPECT_LE(res.stats.get("tenant.res.latencyP99"),
              res.stats.get("tenant.be.latencyP99"));
}

} // namespace
} // namespace ndpext
