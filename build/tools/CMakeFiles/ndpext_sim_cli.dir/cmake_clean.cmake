file(REMOVE_RECURSE
  "CMakeFiles/ndpext_sim_cli.dir/ndpext_sim.cc.o"
  "CMakeFiles/ndpext_sim_cli.dir/ndpext_sim.cc.o.d"
  "ndpext_sim"
  "ndpext_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
