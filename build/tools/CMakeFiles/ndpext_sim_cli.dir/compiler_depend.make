# Empty compiler generated dependencies file for ndpext_sim_cli.
# This may be replaced when dependencies are built.
