file(REMOVE_RECURSE
  "CMakeFiles/test_stream_cache.dir/test_stream_cache.cc.o"
  "CMakeFiles/test_stream_cache.dir/test_stream_cache.cc.o.d"
  "test_stream_cache"
  "test_stream_cache.pdb"
  "test_stream_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
