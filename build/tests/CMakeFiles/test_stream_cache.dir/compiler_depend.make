# Empty compiler generated dependencies file for test_stream_cache.
# This may be replaced when dependencies are built.
