file(REMOVE_RECURSE
  "CMakeFiles/test_stream_inference.dir/test_stream_inference.cc.o"
  "CMakeFiles/test_stream_inference.dir/test_stream_inference.cc.o.d"
  "test_stream_inference"
  "test_stream_inference.pdb"
  "test_stream_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
