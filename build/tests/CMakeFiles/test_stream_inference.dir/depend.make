# Empty dependencies file for test_stream_inference.
# This may be replaced when dependencies are built.
