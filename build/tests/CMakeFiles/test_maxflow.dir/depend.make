# Empty dependencies file for test_maxflow.
# This may be replaced when dependencies are built.
