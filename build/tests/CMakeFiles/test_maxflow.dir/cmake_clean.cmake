file(REMOVE_RECURSE
  "CMakeFiles/test_maxflow.dir/test_maxflow.cc.o"
  "CMakeFiles/test_maxflow.dir/test_maxflow.cc.o.d"
  "test_maxflow"
  "test_maxflow.pdb"
  "test_maxflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
