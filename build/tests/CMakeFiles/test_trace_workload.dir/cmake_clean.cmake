file(REMOVE_RECURSE
  "CMakeFiles/test_trace_workload.dir/test_trace_workload.cc.o"
  "CMakeFiles/test_trace_workload.dir/test_trace_workload.cc.o.d"
  "test_trace_workload"
  "test_trace_workload.pdb"
  "test_trace_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
