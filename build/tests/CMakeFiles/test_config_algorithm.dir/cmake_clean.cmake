file(REMOVE_RECURSE
  "CMakeFiles/test_config_algorithm.dir/test_config_algorithm.cc.o"
  "CMakeFiles/test_config_algorithm.dir/test_config_algorithm.cc.o.d"
  "test_config_algorithm"
  "test_config_algorithm.pdb"
  "test_config_algorithm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
