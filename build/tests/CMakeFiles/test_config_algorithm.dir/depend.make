# Empty dependencies file for test_config_algorithm.
# This may be replaced when dependencies are built.
