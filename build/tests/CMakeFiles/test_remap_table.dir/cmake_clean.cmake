file(REMOVE_RECURSE
  "CMakeFiles/test_remap_table.dir/test_remap_table.cc.o"
  "CMakeFiles/test_remap_table.dir/test_remap_table.cc.o.d"
  "test_remap_table"
  "test_remap_table.pdb"
  "test_remap_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
