# Empty dependencies file for test_slb.
# This may be replaced when dependencies are built.
