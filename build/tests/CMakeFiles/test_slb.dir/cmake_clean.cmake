file(REMOVE_RECURSE
  "CMakeFiles/test_slb.dir/test_slb.cc.o"
  "CMakeFiles/test_slb.dir/test_slb.cc.o.d"
  "test_slb"
  "test_slb.pdb"
  "test_slb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
