
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_slb.cc" "tests/CMakeFiles/test_slb.dir/test_slb.cc.o" "gcc" "tests/CMakeFiles/test_slb.dir/test_slb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/ndpext_system.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ndpext_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ndpext_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/ndpext_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ndpext_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/ndpext_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ndpext_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sampler/CMakeFiles/ndpext_sampler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ndpext_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ndpext_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ndpext_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ndpext_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ndpext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ndpext_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
