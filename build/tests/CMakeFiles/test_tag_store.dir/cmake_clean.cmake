file(REMOVE_RECURSE
  "CMakeFiles/test_tag_store.dir/test_tag_store.cc.o"
  "CMakeFiles/test_tag_store.dir/test_tag_store.cc.o.d"
  "test_tag_store"
  "test_tag_store.pdb"
  "test_tag_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tag_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
