# Empty compiler generated dependencies file for test_tag_store.
# This may be replaced when dependencies are built.
