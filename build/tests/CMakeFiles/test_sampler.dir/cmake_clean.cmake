file(REMOVE_RECURSE
  "CMakeFiles/test_sampler.dir/test_sampler.cc.o"
  "CMakeFiles/test_sampler.dir/test_sampler.cc.o.d"
  "test_sampler"
  "test_sampler.pdb"
  "test_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
