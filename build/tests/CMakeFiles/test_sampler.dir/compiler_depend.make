# Empty compiler generated dependencies file for test_sampler.
# This may be replaced when dependencies are built.
