# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_cxl[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_tag_store[1]_include.cmake")
include("/root/repo/build/tests/test_remap_table[1]_include.cmake")
include("/root/repo/build/tests/test_slb[1]_include.cmake")
include("/root/repo/build/tests/test_sampler[1]_include.cmake")
include("/root/repo/build/tests/test_maxflow[1]_include.cmake")
include("/root/repo/build/tests/test_config_algorithm[1]_include.cmake")
include("/root/repo/build/tests/test_stream_cache[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_stream_inference[1]_include.cmake")
include("/root/repo/build/tests/test_trace_workload[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
