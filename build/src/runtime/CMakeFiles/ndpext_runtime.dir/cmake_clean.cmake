file(REMOVE_RECURSE
  "CMakeFiles/ndpext_runtime.dir/config_algorithm.cc.o"
  "CMakeFiles/ndpext_runtime.dir/config_algorithm.cc.o.d"
  "CMakeFiles/ndpext_runtime.dir/max_flow.cc.o"
  "CMakeFiles/ndpext_runtime.dir/max_flow.cc.o.d"
  "CMakeFiles/ndpext_runtime.dir/ndp_runtime.cc.o"
  "CMakeFiles/ndpext_runtime.dir/ndp_runtime.cc.o.d"
  "CMakeFiles/ndpext_runtime.dir/sampler_assign.cc.o"
  "CMakeFiles/ndpext_runtime.dir/sampler_assign.cc.o.d"
  "CMakeFiles/ndpext_runtime.dir/static_config.cc.o"
  "CMakeFiles/ndpext_runtime.dir/static_config.cc.o.d"
  "libndpext_runtime.a"
  "libndpext_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
