# Empty dependencies file for ndpext_runtime.
# This may be replaced when dependencies are built.
