file(REMOVE_RECURSE
  "libndpext_runtime.a"
)
