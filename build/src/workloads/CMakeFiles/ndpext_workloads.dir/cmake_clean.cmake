file(REMOVE_RECURSE
  "CMakeFiles/ndpext_workloads.dir/gap_workloads.cc.o"
  "CMakeFiles/ndpext_workloads.dir/gap_workloads.cc.o.d"
  "CMakeFiles/ndpext_workloads.dir/graph.cc.o"
  "CMakeFiles/ndpext_workloads.dir/graph.cc.o.d"
  "CMakeFiles/ndpext_workloads.dir/rodinia_workloads.cc.o"
  "CMakeFiles/ndpext_workloads.dir/rodinia_workloads.cc.o.d"
  "CMakeFiles/ndpext_workloads.dir/tensor_workloads.cc.o"
  "CMakeFiles/ndpext_workloads.dir/tensor_workloads.cc.o.d"
  "CMakeFiles/ndpext_workloads.dir/trace_workload.cc.o"
  "CMakeFiles/ndpext_workloads.dir/trace_workload.cc.o.d"
  "CMakeFiles/ndpext_workloads.dir/workload.cc.o"
  "CMakeFiles/ndpext_workloads.dir/workload.cc.o.d"
  "libndpext_workloads.a"
  "libndpext_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
