# Empty dependencies file for ndpext_workloads.
# This may be replaced when dependencies are built.
