
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gap_workloads.cc" "src/workloads/CMakeFiles/ndpext_workloads.dir/gap_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ndpext_workloads.dir/gap_workloads.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/ndpext_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/ndpext_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/rodinia_workloads.cc" "src/workloads/CMakeFiles/ndpext_workloads.dir/rodinia_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ndpext_workloads.dir/rodinia_workloads.cc.o.d"
  "/root/repo/src/workloads/tensor_workloads.cc" "src/workloads/CMakeFiles/ndpext_workloads.dir/tensor_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ndpext_workloads.dir/tensor_workloads.cc.o.d"
  "/root/repo/src/workloads/trace_workload.cc" "src/workloads/CMakeFiles/ndpext_workloads.dir/trace_workload.cc.o" "gcc" "src/workloads/CMakeFiles/ndpext_workloads.dir/trace_workload.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/ndpext_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/ndpext_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/ndpext_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ndpext_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ndpext_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ndpext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ndpext_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
