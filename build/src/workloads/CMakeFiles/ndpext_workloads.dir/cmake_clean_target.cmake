file(REMOVE_RECURSE
  "libndpext_workloads.a"
)
