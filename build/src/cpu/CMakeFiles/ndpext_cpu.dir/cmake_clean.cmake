file(REMOVE_RECURSE
  "CMakeFiles/ndpext_cpu.dir/core.cc.o"
  "CMakeFiles/ndpext_cpu.dir/core.cc.o.d"
  "libndpext_cpu.a"
  "libndpext_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
