# Empty compiler generated dependencies file for ndpext_cpu.
# This may be replaced when dependencies are built.
