file(REMOVE_RECURSE
  "libndpext_cpu.a"
)
