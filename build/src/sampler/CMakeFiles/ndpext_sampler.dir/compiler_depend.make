# Empty compiler generated dependencies file for ndpext_sampler.
# This may be replaced when dependencies are built.
