
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampler/miss_curve.cc" "src/sampler/CMakeFiles/ndpext_sampler.dir/miss_curve.cc.o" "gcc" "src/sampler/CMakeFiles/ndpext_sampler.dir/miss_curve.cc.o.d"
  "/root/repo/src/sampler/sampler.cc" "src/sampler/CMakeFiles/ndpext_sampler.dir/sampler.cc.o" "gcc" "src/sampler/CMakeFiles/ndpext_sampler.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ndpext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ndpext_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ndpext_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
