file(REMOVE_RECURSE
  "CMakeFiles/ndpext_sampler.dir/miss_curve.cc.o"
  "CMakeFiles/ndpext_sampler.dir/miss_curve.cc.o.d"
  "CMakeFiles/ndpext_sampler.dir/sampler.cc.o"
  "CMakeFiles/ndpext_sampler.dir/sampler.cc.o.d"
  "libndpext_sampler.a"
  "libndpext_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
