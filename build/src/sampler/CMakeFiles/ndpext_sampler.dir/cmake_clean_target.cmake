file(REMOVE_RECURSE
  "libndpext_sampler.a"
)
