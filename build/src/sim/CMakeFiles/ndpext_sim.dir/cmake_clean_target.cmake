file(REMOVE_RECURSE
  "libndpext_sim.a"
)
