# Empty dependencies file for ndpext_sim.
# This may be replaced when dependencies are built.
