file(REMOVE_RECURSE
  "CMakeFiles/ndpext_sim.dir/event_queue.cc.o"
  "CMakeFiles/ndpext_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ndpext_sim.dir/stats.cc.o"
  "CMakeFiles/ndpext_sim.dir/stats.cc.o.d"
  "libndpext_sim.a"
  "libndpext_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
