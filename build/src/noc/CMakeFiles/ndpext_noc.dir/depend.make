# Empty dependencies file for ndpext_noc.
# This may be replaced when dependencies are built.
