file(REMOVE_RECURSE
  "libndpext_noc.a"
)
