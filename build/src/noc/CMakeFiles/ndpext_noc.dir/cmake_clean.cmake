file(REMOVE_RECURSE
  "CMakeFiles/ndpext_noc.dir/mesh.cc.o"
  "CMakeFiles/ndpext_noc.dir/mesh.cc.o.d"
  "CMakeFiles/ndpext_noc.dir/noc_model.cc.o"
  "CMakeFiles/ndpext_noc.dir/noc_model.cc.o.d"
  "libndpext_noc.a"
  "libndpext_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
