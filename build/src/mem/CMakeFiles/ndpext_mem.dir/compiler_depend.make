# Empty compiler generated dependencies file for ndpext_mem.
# This may be replaced when dependencies are built.
