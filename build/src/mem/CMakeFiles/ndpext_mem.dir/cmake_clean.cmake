file(REMOVE_RECURSE
  "CMakeFiles/ndpext_mem.dir/dram.cc.o"
  "CMakeFiles/ndpext_mem.dir/dram.cc.o.d"
  "libndpext_mem.a"
  "libndpext_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
