file(REMOVE_RECURSE
  "libndpext_mem.a"
)
