# Empty compiler generated dependencies file for ndpext_system.
# This may be replaced when dependencies are built.
