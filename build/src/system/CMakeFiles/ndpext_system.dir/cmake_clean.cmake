file(REMOVE_RECURSE
  "CMakeFiles/ndpext_system.dir/host_system.cc.o"
  "CMakeFiles/ndpext_system.dir/host_system.cc.o.d"
  "CMakeFiles/ndpext_system.dir/ndp_system.cc.o"
  "CMakeFiles/ndpext_system.dir/ndp_system.cc.o.d"
  "CMakeFiles/ndpext_system.dir/system_config.cc.o"
  "CMakeFiles/ndpext_system.dir/system_config.cc.o.d"
  "libndpext_system.a"
  "libndpext_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
