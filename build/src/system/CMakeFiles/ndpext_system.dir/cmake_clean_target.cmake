file(REMOVE_RECURSE
  "libndpext_system.a"
)
