# Empty dependencies file for ndpext_cache.
# This may be replaced when dependencies are built.
