file(REMOVE_RECURSE
  "CMakeFiles/ndpext_cache.dir/set_assoc_cache.cc.o"
  "CMakeFiles/ndpext_cache.dir/set_assoc_cache.cc.o.d"
  "libndpext_cache.a"
  "libndpext_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
