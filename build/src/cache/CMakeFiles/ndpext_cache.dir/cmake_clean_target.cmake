file(REMOVE_RECURSE
  "libndpext_cache.a"
)
