file(REMOVE_RECURSE
  "libndpext_common.a"
)
