# Empty compiler generated dependencies file for ndpext_common.
# This may be replaced when dependencies are built.
