file(REMOVE_RECURSE
  "CMakeFiles/ndpext_common.dir/histogram.cc.o"
  "CMakeFiles/ndpext_common.dir/histogram.cc.o.d"
  "CMakeFiles/ndpext_common.dir/logging.cc.o"
  "CMakeFiles/ndpext_common.dir/logging.cc.o.d"
  "CMakeFiles/ndpext_common.dir/rng.cc.o"
  "CMakeFiles/ndpext_common.dir/rng.cc.o.d"
  "libndpext_common.a"
  "libndpext_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
