file(REMOVE_RECURSE
  "libndpext_cxl.a"
)
