# Empty dependencies file for ndpext_cxl.
# This may be replaced when dependencies are built.
