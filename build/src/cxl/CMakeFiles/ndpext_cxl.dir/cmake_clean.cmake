file(REMOVE_RECURSE
  "CMakeFiles/ndpext_cxl.dir/extended_memory.cc.o"
  "CMakeFiles/ndpext_cxl.dir/extended_memory.cc.o.d"
  "libndpext_cxl.a"
  "libndpext_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
