# Empty compiler generated dependencies file for ndpext_ndp.
# This may be replaced when dependencies are built.
