file(REMOVE_RECURSE
  "libndpext_ndp.a"
)
