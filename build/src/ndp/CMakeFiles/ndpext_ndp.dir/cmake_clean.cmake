file(REMOVE_RECURSE
  "CMakeFiles/ndpext_ndp.dir/remap_table.cc.o"
  "CMakeFiles/ndpext_ndp.dir/remap_table.cc.o.d"
  "CMakeFiles/ndpext_ndp.dir/slb.cc.o"
  "CMakeFiles/ndpext_ndp.dir/slb.cc.o.d"
  "CMakeFiles/ndpext_ndp.dir/stream_cache.cc.o"
  "CMakeFiles/ndpext_ndp.dir/stream_cache.cc.o.d"
  "libndpext_ndp.a"
  "libndpext_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
