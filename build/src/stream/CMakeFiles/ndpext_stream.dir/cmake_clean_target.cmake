file(REMOVE_RECURSE
  "libndpext_stream.a"
)
