file(REMOVE_RECURSE
  "CMakeFiles/ndpext_stream.dir/stream_config.cc.o"
  "CMakeFiles/ndpext_stream.dir/stream_config.cc.o.d"
  "CMakeFiles/ndpext_stream.dir/stream_inference.cc.o"
  "CMakeFiles/ndpext_stream.dir/stream_inference.cc.o.d"
  "CMakeFiles/ndpext_stream.dir/stream_table.cc.o"
  "CMakeFiles/ndpext_stream.dir/stream_table.cc.o.d"
  "libndpext_stream.a"
  "libndpext_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
