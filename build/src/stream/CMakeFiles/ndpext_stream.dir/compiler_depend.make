# Empty compiler generated dependencies file for ndpext_stream.
# This may be replaced when dependencies are built.
