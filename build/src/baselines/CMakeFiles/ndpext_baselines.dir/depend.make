# Empty dependencies file for ndpext_baselines.
# This may be replaced when dependencies are built.
