file(REMOVE_RECURSE
  "CMakeFiles/ndpext_baselines.dir/host_llc.cc.o"
  "CMakeFiles/ndpext_baselines.dir/host_llc.cc.o.d"
  "CMakeFiles/ndpext_baselines.dir/nuca_policies.cc.o"
  "CMakeFiles/ndpext_baselines.dir/nuca_policies.cc.o.d"
  "libndpext_baselines.a"
  "libndpext_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
