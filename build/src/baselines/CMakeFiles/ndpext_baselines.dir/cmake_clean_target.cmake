file(REMOVE_RECURSE
  "libndpext_baselines.a"
)
