file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_motivation.dir/bench_fig02_motivation.cc.o"
  "CMakeFiles/bench_fig02_motivation.dir/bench_fig02_motivation.cc.o.d"
  "bench_fig02_motivation"
  "bench_fig02_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
