# Empty dependencies file for bench_fig05_overall.
# This may be replaced when dependencies are built.
