file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_overall.dir/bench_fig05_overall.cc.o"
  "CMakeFiles/bench_fig05_overall.dir/bench_fig05_overall.cc.o.d"
  "bench_fig05_overall"
  "bench_fig05_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
