# Empty dependencies file for bench_secVd_consistent_hash.
# This may be replaced when dependencies are built.
