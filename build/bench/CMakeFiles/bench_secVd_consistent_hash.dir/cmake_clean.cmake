file(REMOVE_RECURSE
  "CMakeFiles/bench_secVd_consistent_hash.dir/bench_secVd_consistent_hash.cc.o"
  "CMakeFiles/bench_secVd_consistent_hash.dir/bench_secVd_consistent_hash.cc.o.d"
  "bench_secVd_consistent_hash"
  "bench_secVd_consistent_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secVd_consistent_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
