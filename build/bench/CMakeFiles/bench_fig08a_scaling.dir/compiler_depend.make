# Empty compiler generated dependencies file for bench_fig08a_scaling.
# This may be replaced when dependencies are built.
