file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08a_scaling.dir/bench_fig08a_scaling.cc.o"
  "CMakeFiles/bench_fig08a_scaling.dir/bench_fig08a_scaling.cc.o.d"
  "bench_fig08a_scaling"
  "bench_fig08a_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08a_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
