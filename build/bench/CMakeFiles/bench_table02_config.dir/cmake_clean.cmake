file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_config.dir/bench_table02_config.cc.o"
  "CMakeFiles/bench_table02_config.dir/bench_table02_config.cc.o.d"
  "bench_table02_config"
  "bench_table02_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
