# Empty dependencies file for bench_fig08b_cxl.
# This may be replaced when dependencies are built.
