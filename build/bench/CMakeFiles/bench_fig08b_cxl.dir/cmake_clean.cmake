file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08b_cxl.dir/bench_fig08b_cxl.cc.o"
  "CMakeFiles/bench_fig08b_cxl.dir/bench_fig08b_cxl.cc.o.d"
  "bench_fig08b_cxl"
  "bench_fig08b_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08b_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
