file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_maxflow.dir/bench_fig04_maxflow.cc.o"
  "CMakeFiles/bench_fig04_maxflow.dir/bench_fig04_maxflow.cc.o.d"
  "bench_fig04_maxflow"
  "bench_fig04_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
