file(REMOVE_RECURSE
  "CMakeFiles/ndpext_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ndpext_bench_util.dir/bench_util.cc.o.d"
  "libndpext_bench_util.a"
  "libndpext_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpext_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
