file(REMOVE_RECURSE
  "libndpext_bench_util.a"
)
