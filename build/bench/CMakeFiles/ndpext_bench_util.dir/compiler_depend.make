# Empty compiler generated dependencies file for ndpext_bench_util.
# This may be replaced when dependencies are built.
