file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_energy.dir/bench_fig06_energy.cc.o"
  "CMakeFiles/bench_fig06_energy.dir/bench_fig06_energy.cc.o.d"
  "bench_fig06_energy"
  "bench_fig06_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
