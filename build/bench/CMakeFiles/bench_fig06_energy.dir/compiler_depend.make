# Empty compiler generated dependencies file for bench_fig06_energy.
# This may be replaced when dependencies are built.
