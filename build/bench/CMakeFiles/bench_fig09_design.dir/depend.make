# Empty dependencies file for bench_fig09_design.
# This may be replaced when dependencies are built.
