file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_design.dir/bench_fig09_design.cc.o"
  "CMakeFiles/bench_fig09_design.dir/bench_fig09_design.cc.o.d"
  "bench_fig09_design"
  "bench_fig09_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
