# Empty compiler generated dependencies file for bench_fig07_placement.
# This may be replaced when dependencies are built.
