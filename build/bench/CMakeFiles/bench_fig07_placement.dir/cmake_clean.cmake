file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_placement.dir/bench_fig07_placement.cc.o"
  "CMakeFiles/bench_fig07_placement.dir/bench_fig07_placement.cc.o.d"
  "bench_fig07_placement"
  "bench_fig07_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
