/**
 * Trace replay + automatic stream inference: the adoption path for users
 * with their own applications.
 *
 * 1. Builds a small trace programmatically (normally you would load a
 *    file with TraceWorkload::parseFile).
 * 2. Shows the StreamClassifier inferring stream types from raw address
 *    sequences -- the runtime-side building block for the automatic
 *    annotation the paper leaves to future work.
 * 3. Replays the trace through the full NDPExt system.
 */

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "stream/stream_inference.h"
#include "system/ndp_system.h"
#include "workloads/trace_workload.h"

using namespace ndpext;

int
main()
{
    // --- 1. Infer stream types from raw address observations. ---
    std::vector<Addr> scan;
    for (Addr a = 0x100000; a < 0x100000 + 4096 * 4; a += 4) {
        scan.push_back(a);
    }
    ZipfSampler zipf(8192, 0.8, 3);
    std::vector<Addr> gather;
    for (int i = 0; i < 4000; ++i) {
        gather.push_back(0x200000 + zipf.next() * 8);
    }

    const auto scan_info = inferStream(scan);
    const auto gather_info = inferStream(gather);
    std::printf("inferred 'scan'  : %s, elem %u B, stride %lld, "
                "regularity %.2f\n",
                scan_info->type == StreamType::Affine ? "affine"
                                                      : "indirect",
                scan_info->elemSize,
                static_cast<long long>(scan_info->strideElems),
                scan_info->regularity);
    std::printf("inferred 'gather': %s, elem %u B, reuse %.2f\n",
                gather_info->type == StreamType::Affine ? "affine"
                                                        : "indirect",
                gather_info->elemSize, gather_info->reuse);

    // --- 2. Build a trace (stream decls + per-core accesses). ---
    std::ostringstream trace;
    trace << "stream scan affine 0x100000 " << 4096 * 4 << " 4 ro\n";
    trace << "stream gather indirect 0x200000 " << 8192 * 8 << " 8 rw\n";
    Rng rng(5);
    for (int core = 0; core < 8; ++core) {
        for (int i = 0; i < 500; ++i) {
            if (i % 3 != 0) {
                trace << "a " << core << " 0 " << (core * 512 + i) % 4096
                      << " r\n";
            } else {
                trace << "a " << core << " 1 " << rng.nextBounded(8192)
                      << (rng.nextBool(0.2) ? " w" : " r") << "\n";
            }
        }
    }

    // --- 3. Replay on an 8-unit NDPExt machine. ---
    std::istringstream in(trace.str());
    auto workload = TraceWorkload::parse(in, 8);

    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = 2;
    cfg.stacksY = 1;
    cfg.unitsX = 2;
    cfg.unitsY = 2;
    cfg.unitCacheBytes = 256_KiB;
    cfg.finalize();
    NdpSystem system(cfg, PolicyKind::NdpExt);
    const RunResult result = system.run(*workload);

    std::printf("\nreplayed %llu accesses in %llu cycles "
                "(miss rate %.2f, %llu write exceptions)\n",
                static_cast<unsigned long long>(result.accesses),
                static_cast<unsigned long long>(result.cycles),
                result.missRate,
                static_cast<unsigned long long>(result.writeExceptions));
    return 0;
}
