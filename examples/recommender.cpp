/**
 * Recommendation-inference scenario (the paper's headline workload,
 * recsys): read-only embedding tables are hot, shared, and skewed --
 * prime candidates for NDPExt's per-stream replication. This example
 * shows how the epoch runtime allocates and replicates the tables, and
 * how the first write to a "read-only" stream collapses its replicas.
 */

#include <cstdio>

#include "system/ndp_system.h"
#include "workloads/workload.h"

using namespace ndpext;

int
main()
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.finalize();

    WorkloadParams params;
    params.numCores = config.numUnits();
    params.footprintBytes = 96_MiB;
    params.accessesPerCore = 20000;
    auto workload = makeWorkload("recsys");
    workload->prepare(params);

    std::printf("streams defined by the workload:\n");
    for (const auto& cfg : workload->streamConfigs()) {
        std::printf("  [%2u] %-14s %-8s %-10s %8.1f MB\n", cfg.sid,
                    cfg.name.c_str(),
                    cfg.type == StreamType::Affine ? "affine" : "indirect",
                    cfg.readOnly ? "read-only" : "read-write",
                    static_cast<double>(cfg.size) / 1_MiB);
    }

    NdpSystem ndpext_sys(config, PolicyKind::NdpExt);
    const RunResult ndpext = ndpext_sys.run(*workload);
    NdpSystem nexus_sys(config, PolicyKind::Nexus);
    const RunResult nexus = nexus_sys.run(*workload);

    std::printf("\nNDPExt vs Nexus on recsys:\n");
    std::printf("  cycles          %10.2fM vs %10.2fM  (%.2fx)\n",
                static_cast<double>(ndpext.cycles) / 1e6,
                static_cast<double>(nexus.cycles) / 1e6,
                static_cast<double>(nexus.cycles)
                    / static_cast<double>(ndpext.cycles));
    std::printf("  avg icn latency %10.0f vs %10.0f cycles\n",
                ndpext.avgIcnCycles(), nexus.avgIcnCycles());
    std::printf("  miss rate       %10.2f vs %10.2f\n", ndpext.missRate,
                nexus.missRate);
    std::printf("  write exceptions %llu (outputs stream flips to "
                "read-write once)\n",
                static_cast<unsigned long long>(ndpext.writeExceptions));
    std::printf("  energy          %10.2f vs %10.2f mJ\n",
                ndpext.energy.totalNj() * 1e-6,
                nexus.energy.totalNj() * 1e-6);
    return 0;
}
