/**
 * Quickstart: simulate PageRank on an NDPExt system and print the
 * headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "system/ndp_system.h"
#include "workloads/workload.h"

using namespace ndpext;

int
main()
{
    // 1. Pick a system configuration. scaledDefault() is the Table II
    //    machine with capacities scaled for fast simulation; tweak any
    //    field before finalize().
    SystemConfig config = SystemConfig::scaledDefault();
    config.finalize();

    // 2. Prepare a workload: 13 are built in (see allWorkloadNames()).
    //    prepare() synthesizes the dataset and defines the streams.
    WorkloadParams params;
    params.numCores = config.numUnits();
    params.footprintBytes = 96_MiB; // 1.5x the aggregate DRAM cache
    params.accessesPerCore = 20000;
    auto workload = makeWorkload("pr");
    workload->prepare(params);

    // 3. Run it under a cache-management policy.
    NdpSystem system(config, PolicyKind::NdpExt);
    const RunResult result = system.run(*workload);

    // 4. Inspect the results.
    std::printf("workload            %s\n", result.workload.c_str());
    std::printf("policy              %s\n", result.policy.c_str());
    std::printf("cycles              %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("accesses            %llu\n",
                static_cast<unsigned long long>(result.accesses));
    std::printf("DRAM-cache miss     %.1f %%\n", 100.0 * result.missRate);
    std::printf("avg mem latency     %.0f cycles\n",
                result.avgMemLatency());
    std::printf("avg icn latency     %.0f cycles\n", result.avgIcnCycles());
    std::printf("reconfigurations    %llu\n",
                static_cast<unsigned long long>(result.reconfigurations));
    std::printf("energy              %.2f mJ\n",
                result.energy.totalNj() * 1e-6);

    // Every simulator counter is also available as a named stat:
    std::printf("SLB misses          %.0f\n",
                result.stats.get("cache.slbMisses"));
    return 0;
}
