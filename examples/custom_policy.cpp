/**
 * Custom placement policy: the Configurator interface lets you plug your
 * own cache-configuration algorithm into the epoch runtime. This example
 * implements a naive "home-unit" policy -- each stream gets all of its
 * space on one hashed unit -- wires up the full machine by hand (the
 * lower-level API beneath NdpSystem), runs PageRank, and compares against
 * NDPExt's Algorithm 1.
 */

#include <cstdio>
#include <queue>

#include "common/rng.h"
#include "ndp/stream_cache.h"
#include "runtime/ndp_runtime.h"
#include "system/system_config.h"
#include "workloads/workload.h"

using namespace ndpext;

namespace {

/** All of a stream's space on one hashed "home" unit: terrible placement
 *  on purpose, to show how much co-location matters. */
class HomeUnitConfigurator : public Configurator
{
  public:
    HomeUnitConfigurator(std::uint32_t num_units,
                         std::uint32_t rows_per_unit)
        : numUnits_(num_units), rowsPerUnit_(rows_per_unit)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override
    {
        std::vector<std::pair<StreamId, StreamAlloc>> out;
        std::vector<std::uint32_t> used(numUnits_, 0);
        for (const auto& d : demands) {
            StreamAlloc alloc(numUnits_);
            alloc.numGroups = 1;
            const UnitId home =
                static_cast<UnitId>(mix64(d.sid + 1) % numUnits_);
            alloc.shareRows[home] = rowsPerUnit_ - used[home];
            alloc.rowBase[home] = used[home];
            used[home] = rowsPerUnit_;
            out.emplace_back(d.sid, std::move(alloc));
        }
        return out;
    }

    bool reconfigures() const override { return false; }
    std::string name() const override { return "home-unit"; }

  private:
    std::uint32_t numUnits_;
    std::uint32_t rowsPerUnit_;
};

/** Drive one full run with an arbitrary configurator. */
Cycles
runWith(const SystemConfig& cfg, const Workload& workload,
        std::unique_ptr<Configurator> configurator)
{
    StreamTable table;
    workload.registerStreams(table);
    MeshTopology topo(cfg.stacksX, cfg.stacksY, cfg.unitsX, cfg.unitsY);
    NocModel noc(topo, cfg.noc);
    ExtendedMemory ext(cfg.cxl, DramTimingParams::ddr5Extended(),
                       cfg.coreFreqMhz);
    StreamCacheController cache(cfg.cache, table, noc, ext,
                                cfg.unitDram(), cfg.unitCacheBytes,
                                cfg.coreFreqMhz);
    NdpRuntime runtime(cfg.runtime, cache, std::move(configurator));

    std::vector<InOrderCore> cores;
    std::vector<std::unique_ptr<AccessGenerator>> gens;
    for (CoreId c = 0; c < cfg.numUnits(); ++c) {
        cores.emplace_back(c, cfg.core);
        cores.back().memPort().bind(cache.port("cpu_side"));
        gens.push_back(workload.makeGenerator(c));
    }
    runtime.start();

    using HeapItem = std::pair<Cycles, CoreId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        ready;
    for (CoreId c = 0; c < cfg.numUnits(); ++c) {
        ready.emplace(0, c);
    }
    Cycles next_epoch = cfg.runtime.epochCycles;
    Cycles finish = 0;
    while (!ready.empty()) {
        const auto [when, c] = ready.top();
        ready.pop();
        if (when >= next_epoch) {
            runtime.onEpochEnd(next_epoch);
            next_epoch += cfg.runtime.epochCycles;
            ready.emplace(when, c);
            continue;
        }
        if (cores[c].step(*gens[c])) {
            ready.emplace(cores[c].now(), c);
        } else {
            finish = std::max(finish, cores[c].now());
        }
    }
    return finish;
}

} // namespace

int
main()
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.finalize();

    WorkloadParams params;
    params.numCores = cfg.numUnits();
    params.footprintBytes = 96_MiB;
    params.accessesPerCore = 15000;
    auto workload = makeWorkload("pr");
    workload->prepare(params);

    const std::uint32_t rows_per_unit = static_cast<std::uint32_t>(
        cfg.unitCacheBytes / cfg.unitDram().rowBytes);

    const Cycles naive = runWith(
        cfg, *workload,
        std::make_unique<HomeUnitConfigurator>(cfg.numUnits(),
                                               rows_per_unit));

    // NDPExt's Algorithm 1 through the same API.
    MeshTopology topo(cfg.stacksX, cfg.stacksY, cfg.unitsX, cfg.unitsY);
    NocModel noc(topo, cfg.noc);
    ConfigParams cp;
    cp.numUnits = cfg.numUnits();
    cp.rowsPerUnit = rows_per_unit;
    cp.rowBytes = static_cast<std::uint32_t>(cfg.unitDram().rowBytes);
    cp.affineCapBytesPerUnit = cfg.cache.affineCapBytesPerUnit;
    const Cycles ndpext = runWith(
        cfg, *workload, std::make_unique<NdpExtConfigurator>(cp, noc));

    std::printf("home-unit policy : %10.2f Mcycles\n",
                static_cast<double>(naive) / 1e6);
    std::printf("NDPExt Algorithm1: %10.2f Mcycles  (%.2fx faster)\n",
                static_cast<double>(ndpext) / 1e6,
                static_cast<double>(naive) / static_cast<double>(ndpext));
    return 0;
}
