/**
 * Graph analytics scenario: the paper's motivating use case of running
 * large-scale graph kernels on NDP with CXL-extended memory. Runs the
 * GAP-derived kernels under NDPExt and the strongest NUCA baseline
 * (Nexus), and reports the per-kernel speedup and where it comes from
 * (interconnect latency vs miss rate).
 */

#include <cstdio>
#include <vector>

#include "system/ndp_system.h"
#include "workloads/workload.h"

using namespace ndpext;

int
main()
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.finalize();

    WorkloadParams params;
    params.numCores = config.numUnits();
    params.footprintBytes = 96_MiB;
    params.accessesPerCore = 20000;

    const std::vector<std::string> kernels = {"bfs", "pr", "cc", "bc",
                                              "tc"};
    std::printf("%-6s %10s %10s %8s %12s %12s\n", "kernel", "nexus Mcyc",
                "ndpext Mcyc", "speedup", "icn ns (N/E)", "miss (N/E)");
    for (const auto& name : kernels) {
        auto workload = makeWorkload(name);
        workload->prepare(params);

        NdpSystem nexus_sys(config, PolicyKind::Nexus);
        const RunResult nexus = nexus_sys.run(*workload);
        NdpSystem ndpext_sys(config, PolicyKind::NdpExt);
        const RunResult ndpext = ndpext_sys.run(*workload);

        std::printf("%-6s %10.2f %10.2f %7.2fx %5.0f/%-5.0f %6.2f/%-5.2f\n",
                    name.c_str(), static_cast<double>(nexus.cycles) / 1e6,
                    static_cast<double>(ndpext.cycles) / 1e6,
                    static_cast<double>(nexus.cycles)
                        / static_cast<double>(ndpext.cycles),
                    nexus.avgIcnCycles() / 2.0, ndpext.avgIcnCycles() / 2.0,
                    nexus.missRate, ndpext.missRate);
    }
    return 0;
}
