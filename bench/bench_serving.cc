/**
 * Multi-tenant serving frontend: a four-tenant mixed colocation
 * (embedding lookups, two graph workloads, a tensor kernel) driven
 * open-loop, once at nominal load and once overloaded, under Poisson
 * and bursty (MMPP) arrival processes. Deterministic columns
 * (arrivals, retired, p50/p99 request latency, SLO attainment) pin the
 * serving path under bench/baselines/; run cycles are recorded per
 * regime.
 *
 * Expected shape: at nominal load every tenant meets its SLO; under
 * overload the reserved tenant (emb: 25% NDP-cache carve-out, served
 * first) keeps strictly better p99 SLO attainment than the best-effort
 * tenants, and bursty arrivals hurt tails more than Poisson at the
 * same mean rate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serving/serving_workload.h"

using namespace ndpext;

namespace {

struct Regime
{
    const char* label;
    const char* arrival;
    double loadMult; // divides the mean inter-arrival period
};

ServingConfig
servingConfig(const Regime& regime, Cycles horizon)
{
    const auto tenant = [&regime](const char* name, const char* wl,
                                  double period, bool reserved) {
        TenantSpec t;
        t.name = name;
        t.workload = wl;
        t.arrival = regime.arrival;
        t.periodCycles = period / regime.loadMult;
        t.requestAccesses = 64;
        t.reserved = reserved;
        t.reservePct = reserved ? 25.0 : 0.0;
        t.sloCycles = 120'000;
        return t;
    };
    ServingConfig cfg;
    cfg.horizonCycles = horizon;
    cfg.tenants = {
        tenant("emb", "recsys", 60'000, true),
        tenant("graph", "pr", 80'000, false),
        tenant("tensor", "mv", 80'000, false),
        tenant("web", "bfs", 80'000, false),
    };
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const Cycles horizon = args.quick ? 1'200'000 : 4'000'000;
    const std::vector<Regime> regimes = {
        {"poisson-nominal", "poisson", 1.0},
        {"poisson-overload", "poisson", 8.0},
        {"bursty-nominal", "bursty", 1.0},
        {"bursty-overload", "bursty", 8.0},
    };

    std::printf("Four-tenant open-loop serving (reserved tenant: emb, "
                "25%% carve-out):\n\n");
    bench::Table table(
        {"arrivals", "retired", "latP50", "latP99", "attain"});
    for (const Regime& regime : regimes) {
        SystemConfig cfg = bench::benchConfig(args);
        const ServingConfig sc = servingConfig(regime, horizon);
        ServingWorkload w(sc, cfg.runtime.epochCycles);
        w.prepare(bench::benchWorkloadParams(args, cfg.numUnits()));
        const RunResult r = bench::runPolicy(cfg, PolicyKind::NdpExt, w);

        bench::recordStat(std::string(regime.label) + ".cycles",
                          static_cast<double>(r.cycles));
        for (const TenantSpec& t : sc.tenants) {
            const std::string base = "tenant." + t.name;
            table.addRow(
                std::string(regime.label) + "." + t.name,
                {r.stats.get(base + ".arrivals"),
                 r.stats.get(base + ".retired"),
                 r.stats.get(base + ".latencyP50"),
                 r.stats.get(base + ".latencyP99"),
                 r.stats.get(base + ".sloAttainment")});
        }
    }
    table.print();
    std::printf("\nshape: nominal load meets every SLO; under overload "
                "the reserved tenant keeps the best p99 attainment.\n");
    return bench::finishStats(args);
}
