/**
 * Multi-tenant serving frontend: a four-tenant mixed colocation
 * (embedding lookups, two graph workloads, a tensor kernel) driven
 * open-loop, once at nominal load and once overloaded, under Poisson
 * and bursty (MMPP) arrival processes. Deterministic columns
 * (arrivals, retired, p50/p99 request latency, SLO attainment) pin the
 * serving path under bench/baselines/; run cycles are recorded per
 * regime.
 *
 * Expected shape: at nominal load every tenant meets its SLO; under
 * overload the reserved tenant (emb: 25% NDP-cache carve-out, served
 * first) keeps strictly better p99 SLO attainment than the best-effort
 * tenants, and bursty arrivals hurt tails more than Poisson at the
 * same mean rate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serving/serving_workload.h"
#include "telemetry/telemetry.h"

using namespace ndpext;

namespace {

struct Regime
{
    const char* label;
    const char* arrival;
    double loadMult; // divides the mean inter-arrival period
};

ServingConfig
servingConfig(const Regime& regime, Cycles horizon)
{
    const auto tenant = [&regime](const char* name, const char* wl,
                                  double period, bool reserved) {
        TenantSpec t;
        t.name = name;
        t.workload = wl;
        t.arrival = regime.arrival;
        t.periodCycles = period / regime.loadMult;
        t.requestAccesses = 64;
        t.reserved = reserved;
        t.reservePct = reserved ? 25.0 : 0.0;
        t.sloCycles = 120'000;
        return t;
    };
    ServingConfig cfg;
    cfg.horizonCycles = horizon;
    cfg.tenants = {
        tenant("emb", "recsys", 60'000, true),
        tenant("graph", "pr", 80'000, false),
        tenant("tensor", "mv", 80'000, false),
        tenant("web", "bfs", 80'000, false),
    };
    return cfg;
}

/**
 * Where each tenant's tail goes: the dominant stage (by summed cycles)
 * across the slow exemplars the request tracer retained. Printed as
 * context under the table; not a recorded baseline column (telemetry
 * is observer-only and the deterministic columns already pin the run).
 */
std::string
tailBlame(const Telemetry& tel, const ServingConfig& sc)
{
    struct StageView
    {
        const char* name;
        Cycles RequestTraceRecord::*field;
    };
    static const StageView kStages[] = {
        {"queueWait", &RequestTraceRecord::queueWait},
        {"compute", &RequestTraceRecord::compute},
        {"l1", &RequestTraceRecord::l1},
        {"metadata", &RequestTraceRecord::metadata},
        {"icnIntra", &RequestTraceRecord::icnIntra},
        {"icnInter", &RequestTraceRecord::icnInter},
        {"dramCache", &RequestTraceRecord::dramCache},
        {"extMem", &RequestTraceRecord::extMem},
        {"mshrQueue", &RequestTraceRecord::mshrQueue},
    };
    std::string out;
    for (std::size_t t = 0; t < sc.tenants.size(); ++t) {
        Cycles total = 0;
        Cycles perStage[9] = {};
        for (const auto& e : tel.requestTrace().retained()) {
            if (!e.slow || e.rec.tenant != t) {
                continue;
            }
            total += e.rec.latency();
            for (std::size_t s = 0; s < 9; ++s) {
                perStage[s] += e.rec.*kStages[s].field;
            }
        }
        std::size_t top = 0;
        for (std::size_t s = 1; s < 9; ++s) {
            if (perStage[s] > perStage[top]) {
                top = s;
            }
        }
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s%s=%s(%.0f%%)",
                      t == 0 ? "" : " ", sc.tenants[t].name.c_str(),
                      total == 0 ? "none" : kStages[top].name,
                      total == 0 ? 0.0
                                 : 100.0
                              * static_cast<double>(perStage[top])
                              / static_cast<double>(total));
        out += buf;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const Cycles horizon = args.quick ? 1'200'000 : 4'000'000;
    const std::vector<Regime> regimes = {
        {"poisson-nominal", "poisson", 1.0},
        {"poisson-overload", "poisson", 8.0},
        {"bursty-nominal", "bursty", 1.0},
        {"bursty-overload", "bursty", 8.0},
    };

    std::printf("Four-tenant open-loop serving (reserved tenant: emb, "
                "25%% carve-out):\n\n");
    bench::Table table(
        {"arrivals", "retired", "latP50", "latP99", "attain"});
    for (const Regime& regime : regimes) {
        SystemConfig cfg = bench::benchConfig(args);
        const ServingConfig sc = servingConfig(regime, horizon);
        ServingWorkload w(sc, cfg.runtime.epochCycles);
        w.prepare(bench::benchWorkloadParams(args, cfg.numUnits()));
        TelemetryConfig tc;
        tc.traceRequests = true; // in-memory tail exemplars only
        Telemetry tel(tc);
        const RunResult r =
            bench::runPolicy(cfg, PolicyKind::NdpExt, w, &tel);
        std::printf("  %-17s tail blame: %s\n", regime.label,
                    tailBlame(tel, sc).c_str());

        bench::recordStat(std::string(regime.label) + ".cycles",
                          static_cast<double>(r.cycles));
        for (const TenantSpec& t : sc.tenants) {
            const std::string base = "tenant." + t.name;
            table.addRow(
                std::string(regime.label) + "." + t.name,
                {r.stats.get(base + ".arrivals"),
                 r.stats.get(base + ".retired"),
                 r.stats.get(base + ".latencyP50"),
                 r.stats.get(base + ".latencyP99"),
                 r.stats.get(base + ".sloAttainment")});
        }
    }
    table.print();
    std::printf("\nshape: nominal load meets every SLO; under overload "
                "the reserved tenant keeps the best p99 attainment.\n");
    return bench::finishStats(args);
}
