#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/logging.h"
#include "telemetry/json_out.h"

namespace ndpext {
namespace bench {

BenchArgs
BenchArgs::parse(int argc, char** argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            args.quick = true;
        } else if (arg.rfind("--mem=", 0) == 0) {
            const std::string mem = arg.substr(6);
            if (mem == "hbm") {
                args.memType = NdpMemType::Hbm3;
            } else if (mem == "hmc") {
                args.memType = NdpMemType::Hmc2;
            } else {
                NDP_FATAL("unknown --mem value: ", mem);
            }
        } else if (arg.rfind("--exp=", 0) == 0) {
            args.exp = arg.substr(6);
        } else if (arg.rfind("--threads=", 0) == 0) {
            const long v = std::strtol(arg.c_str() + 10, nullptr, 10);
            if (v < 1 || v > 1024) {
                NDP_FATAL("--threads must be in [1, 1024], got ",
                          arg.substr(10));
            }
            args.threads = static_cast<std::uint32_t>(v);
        } else if (arg.rfind("--workloads=", 0) == 0) {
            std::stringstream ss(arg.substr(12));
            std::string item;
            while (std::getline(ss, item, ',')) {
                args.workloads.push_back(item);
            }
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            args.statsJson = arg.substr(13);
        } else {
            NDP_FATAL("unknown argument: ", arg,
                      " (expected --quick, --mem=, --exp=, --threads=,"
                      " --workloads=, --stats-json=)");
        }
    }
    return args;
}

SystemConfig
benchConfig(const BenchArgs& args)
{
    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.memType = args.memType;
    cfg.numThreads = args.threads;
    cfg.finalize();
    return cfg;
}

WorkloadParams
benchWorkloadParams(const BenchArgs& args, std::uint32_t num_cores)
{
    WorkloadParams p;
    p.numCores = num_cores;
    p.footprintBytes = 96_MiB; // 1.5x the 64 MB aggregate DRAM cache
    p.accessesPerCore = args.quick ? 8000 : 20000;
    p.seed = 42;
    return p;
}

Workload&
preparedWorkload(const std::string& name, const BenchArgs& args,
                 std::uint32_t num_cores)
{
    struct Key
    {
        std::string name;
        bool quick;
        std::uint32_t cores;

        bool
        operator<(const Key& o) const
        {
            return std::tie(name, quick, cores)
                < std::tie(o.name, o.quick, o.cores);
        }
    };
    static std::map<Key, std::unique_ptr<Workload>> cache;
    const Key key{name, args.quick, num_cores};
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto w = makeWorkload(name);
        w->prepare(benchWorkloadParams(args, num_cores));
        it = cache.emplace(key, std::move(w)).first;
    }
    return *it->second;
}

RunResult
runPolicy(const SystemConfig& cfg, PolicyKind policy,
          const Workload& workload)
{
    return runPolicy(cfg, policy, workload, nullptr);
}

RunResult
runPolicy(const SystemConfig& cfg, PolicyKind policy,
          const Workload& workload, Telemetry* telemetry)
{
    NdpSystem sys(cfg, policy);
    if (telemetry != nullptr) {
        sys.attachTelemetry(telemetry);
    }
    return sys.run(workload);
}

RunResult
runHost(const Workload& workload)
{
    HostParams hp;
    // Scale the host LLC with the rest of the memory system: the paper
    // pits a 32 MB LLC against >16 GB footprints (~600:1); the scaled
    // 96 MiB footprint gets a 256 kB LLC (384:1, still host-favorable).
    hp.llcBankBytes = 4_KiB;
    hp.numCores = workload.params().numCores;
    // Host mesh follows the core count (numCores must be a square grid
    // at the default 64; other counts use an 8-wide mesh).
    if (hp.numCores == 64) {
        hp.meshX = hp.meshY = 8;
    } else {
        hp.meshX = 8;
        hp.meshY = (hp.numCores + 7) / 8;
        hp.numCores = hp.meshX * hp.meshY;
    }
    HostSystem host(hp);
    return host.run(workload);
}

const std::vector<std::string>&
analysisWorkloads()
{
    static const std::vector<std::string> kSet = {"recsys", "mv", "hotspot",
                                                  "pr", "bfs"};
    return kSet;
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (const double v : values) {
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

namespace {

/** Insertion-ordered process-wide results for --stats-json. */
std::vector<std::pair<std::string, double>>&
statRecords()
{
    static std::vector<std::pair<std::string, double>> records;
    return records;
}

} // namespace

void
recordStat(const std::string& name, double value)
{
    for (auto& [existing, v] : statRecords()) {
        if (existing == name) {
            v = value; // last write wins (e.g. a rerun sub-experiment)
            return;
        }
    }
    statRecords().emplace_back(name, value);
}

int
finishStats(const BenchArgs& args)
{
    if (args.statsJson.empty()) {
        return 0;
    }
    std::string error;
    const bool ok = writeFileAtomic(
        args.statsJson,
        [](std::ostream& out) {
            out << "{\n  \"stats\": {";
            bool first = true;
            for (const auto& [name, value] : statRecords()) {
                out << (first ? "\n    " : ",\n    ")
                    << jsonout::str(name) << ": " << jsonout::num(value);
                first = false;
            }
            out << "\n  }\n}\n";
        },
        &error);
    if (!ok) {
        std::fprintf(stderr, "cannot write --stats-json file '%s': %s\n",
                     args.statsJson.c_str(), error.c_str());
        return 1;
    }
    return 0;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
}

void
Table::addRow(const std::string& label, const std::vector<double>& values)
{
    for (std::size_t i = 0; i < values.size() && i < columns_.size(); ++i) {
        std::string name = label;
        name += '.';
        name += columns_[i];
        recordStat(name, values[i]);
    }
    rows_.emplace_back(label, values);
}

void
Table::print() const
{
    std::printf("%-14s", "");
    for (const auto& col : columns_) {
        std::printf(" %12s", col.c_str());
    }
    std::printf("\n");
    for (const auto& [label, values] : rows_) {
        std::printf("%-14s", label.c_str());
        for (const double v : values) {
            std::printf(" %12.3f", v);
        }
        std::printf("\n");
    }
}

} // namespace bench
} // namespace ndpext
