/**
 * Fig. 9 reproduction: design-choice studies. Each sub-experiment sweeps
 * one parameter and reports performance normalized to the NDPExt default
 * (geomean over the analysis workload subset):
 *
 *   --exp=assoc       Fig. 9(a) indirect-cache associativity 1..64
 *   --exp=block       Fig. 9(b) affine block size 256 B..4 kB
 *   --exp=affine_cap  Fig. 9(c) affine space restriction
 *   --exp=ksets       Fig. 9(d) sampler sets k = 8..128
 *   --exp=method      Fig. 9(e) reconfiguration method S/P/F
 *   --exp=interval    Fig. 9(f) reconfiguration interval
 *
 * Run without --exp to execute all six.
 */

#include <cstdio>
#include <functional>

#include "bench_util.h"

using namespace ndpext;

namespace {

using ConfigTweak = std::function<void(SystemConfig&)>;

double
geomeanCycles(const bench::BenchArgs& args, const SystemConfig& cfg,
              PolicyKind policy = PolicyKind::NdpExt)
{
    // A 3-workload subset keeps the 28-variant sweep tractable on one
    // core; pass --workloads= to widen it.
    static const std::vector<std::string> kSubset = {"recsys", "pr",
                                                     "hotspot"};
    const auto& names = args.workloads.empty() ? kSubset : args.workloads;
    std::vector<double> cycles;
    for (const auto& name : names) {
        Workload& w = bench::preparedWorkload(name, args, cfg.numUnits());
        const RunResult r = bench::runPolicy(cfg, policy, w);
        cycles.push_back(static_cast<double>(r.cycles));
    }
    return bench::geomean(cycles);
}

void
sweep(const char* title, const bench::BenchArgs& args,
      const std::vector<std::pair<std::string, ConfigTweak>>& variants,
      std::size_t default_index)
{
    std::printf("%s\n", title);
    std::vector<double> results;
    for (const auto& [label, tweak] : variants) {
        SystemConfig cfg = bench::benchConfig(args);
        tweak(cfg);
        cfg.finalize();
        results.push_back(geomeanCycles(args, cfg));
    }
    const double base = results[default_index];
    bench::Table table({"norm. perf"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
        table.addRow(variants[i].first, {base / results[i]});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const bool all = args.exp.empty();

    if (all || args.exp == "assoc") {
        std::vector<std::pair<std::string, ConfigTweak>> v;
        for (const std::uint32_t ways : {1u, 2u, 4u, 16u, 64u}) {
            v.emplace_back("ways=" + std::to_string(ways),
                           [ways](SystemConfig& cfg) {
                               cfg.cache.indirectWays = ways;
                           });
        }
        // The way-predicted alternative design (Section IV-C mentions
        // CAMEO/Unison-style prediction as an option).
        for (const std::uint32_t ways : {2u, 4u}) {
            v.emplace_back("ways=" + std::to_string(ways) + "+pred",
                           [ways](SystemConfig& cfg) {
                               cfg.cache.indirectWays = ways;
                               cfg.cache.indirectWayPrediction = true;
                           });
        }
        sweep("Fig. 9(a): indirect-cache associativity "
              "(paper: direct-mapped within a few % of 64-way)",
              args, v, 0);
    }
    if (all || args.exp == "block") {
        std::vector<std::pair<std::string, ConfigTweak>> v;
        for (const std::uint32_t bytes : {256u, 512u, 1024u, 2048u,
                                          4096u}) {
            v.emplace_back("block=" + std::to_string(bytes),
                           [bytes](SystemConfig& cfg) {
                               cfg.cache.affineBlockBytes = bytes;
                           });
        }
        sweep("Fig. 9(b): affine block size "
              "(paper: >=1 kB slightly better for spatial workloads)",
              args, v, 2);
    }
    if (all || args.exp == "affine_cap") {
        std::vector<std::pair<std::string, ConfigTweak>> v;
        // Fractions of the unit cache, plus unrestricted.
        const std::vector<std::pair<std::string, std::uint64_t>> caps = {
            {"1/64", 64}, {"1/16", 16}, {"1/4 (dflt)", 4}, {"1/1", 1},
        };
        for (const auto& [label, divisor] : caps) {
            const std::uint64_t div = divisor;
            v.emplace_back(label, [div](SystemConfig& cfg) {
                cfg.cache.affineCapBytesPerUnit =
                    cfg.unitCacheBytes / div;
            });
        }
        v.emplace_back("unlimited", [](SystemConfig& cfg) {
            cfg.cache.affineCapBytesPerUnit = 0;
        });
        sweep("Fig. 9(c): affine space restriction "
              "(paper: 16 MB/256 MB restriction costs ~2% vs unlimited)",
              args, v, 2);
    }
    if (all || args.exp == "ksets") {
        std::vector<std::pair<std::string, ConfigTweak>> v;
        for (const std::uint32_t k : {8u, 16u, 32u, 64u, 128u}) {
            v.emplace_back("k=" + std::to_string(k),
                           [k](SystemConfig& cfg) {
                               cfg.cache.sampler.kSets = k;
                           });
        }
        sweep("Fig. 9(d): sampling sets per capacity case "
              "(paper: insensitive to k)",
              args, v, 2);
    }
    if (all || args.exp == "method") {
        // S = equal static allocation (the NDPExt-static policy);
        // P = reconfigure only during the first epochs; F = every epoch.
        std::printf("Fig. 9(e): reconfiguration method "
                    "(paper: Full > Partial > Static, esp. mv/pr)\n");
        SystemConfig base = bench::benchConfig(args);
        const double s_cycles =
            geomeanCycles(args, base, PolicyKind::NdpExtStatic);
        SystemConfig partial = bench::benchConfig(args);
        partial.runtime.method = RuntimeParams::Method::Partial;
        partial.runtime.partialUntilCycles =
            partial.runtime.epochCycles * 2;
        partial.finalize();
        const double p_cycles = geomeanCycles(args, partial);
        const double f_cycles = geomeanCycles(args, base);
        bench::Table table({"norm. perf"});
        table.addRow("S(tatic)", {f_cycles / s_cycles});
        table.addRow("P(artial)", {f_cycles / p_cycles});
        table.addRow("F(ull)", {1.0});
        table.print();
        std::printf("\n");
    }
    if (all || args.exp == "interval") {
        std::vector<std::pair<std::string, ConfigTweak>> v;
        const std::vector<std::pair<std::string, Cycles>> intervals = {
            {"0.125M", 125'000}, {"0.25M", 250'000},
            {"0.5M (dflt)", 500'000}, {"1M", 1'000'000},
            {"2M", 2'000'000},
        };
        for (const auto& [label, cycles] : intervals) {
            const Cycles c = cycles;
            v.emplace_back(label, [c](SystemConfig& cfg) {
                cfg.runtime.epochCycles = c;
            });
        }
        sweep("Fig. 9(f): reconfiguration interval "
              "(paper: 50M cycles sufficient; 2x longer costs ~26%)",
              args, v, 2);
    }
    return bench::finishStats(args);
}
