/**
 * Fig. 8(b) reproduction: NDPExt speedup over Nexus at different CXL link
 * latencies (optimistic 50/70 ns projections up to the measured 200 ns,
 * plus a pessimistic 400 ns point). The paper's shape: slower links make
 * extended-memory misses more expensive, so NDPExt's better placement
 * and miss reduction pay off more (1.33x -> 1.50x from 50 ns to 200 ns).
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const std::vector<double> latencies_ns = {50, 70, 100, 200, 400};

    std::printf("Fig. 8(b): NDPExt speedup over Nexus vs CXL link "
                "latency\n\n");
    bench::Table table({"ndpext/nexus"});
    for (const double ns : latencies_ns) {
        SystemConfig cfg = bench::benchConfig(args);
        cfg.cxl.linkLatencyCycles =
            static_cast<Cycles>(ns * 2.0); // 2 GHz core clock
        cfg.finalize();

        std::vector<double> ratios;
        for (const auto& name : bench::analysisWorkloads()) {
            Workload& w =
                bench::preparedWorkload(name, args, cfg.numUnits());
            const RunResult nexus =
                bench::runPolicy(cfg, PolicyKind::Nexus, w);
            const RunResult ndpext =
                bench::runPolicy(cfg, PolicyKind::NdpExt, w);
            ratios.push_back(static_cast<double>(nexus.cycles)
                             / static_cast<double>(ndpext.cycles));
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f ns", ns);
        table.addRow(label, {bench::geomean(ratios)});
    }
    table.print();
    std::printf("\npaper shape: speedup increases with link latency "
                "(1.33x at 50 ns -> 1.50x at 200 ns).\n");
    return bench::finishStats(args);
}
