/**
 * Fig. 5 reproduction: overall performance of every cache-management
 * scheme on all 13 workloads, normalized to the non-NDP host, for the
 * HBM-style (--mem=hbm, Fig. 5a) or HMC-style (--mem=hmc, Fig. 5b) NDP
 * system. The shapes to reproduce: every NDP scheme beats the host by
 * several x; NDPExt is the best scheme on (almost) every workload; Nexus
 * is the strongest baseline; NDPExt-static trails NDPExt.
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const SystemConfig cfg = bench::benchConfig(args);

    const std::vector<std::string>& names =
        args.workloads.empty() ? allWorkloadNames() : args.workloads;
    const std::vector<PolicyKind> policies = {
        PolicyKind::Jigsaw,       PolicyKind::Whirlpool,
        PolicyKind::Nexus,        PolicyKind::NdpExtStatic,
        PolicyKind::NdpExt,
    };

    std::printf("Fig. 5(%s): speedup over non-NDP host (%s NDP)\n\n",
                args.memType == NdpMemType::Hbm3 ? "a" : "b",
                args.memType == NdpMemType::Hbm3 ? "HBM3" : "HMC2");

    std::vector<std::string> cols;
    for (const auto p : policies) {
        cols.push_back(policyName(p));
    }
    cols.push_back("best/nexus");
    bench::Table table(cols);

    std::map<std::string, std::vector<double>> speedups;
    for (const auto& name : names) {
        Workload& w = bench::preparedWorkload(name, args, cfg.numUnits());
        const RunResult host = bench::runHost(w);
        std::vector<double> row;
        double nexus_speedup = 1.0;
        double ndpext_speedup = 1.0;
        for (const auto policy : policies) {
            const RunResult r = bench::runPolicy(cfg, policy, w);
            const double speedup = static_cast<double>(host.cycles)
                / static_cast<double>(r.cycles);
            row.push_back(speedup);
            speedups[policyName(policy)].push_back(speedup);
            if (policy == PolicyKind::Nexus) {
                nexus_speedup = speedup;
            }
            if (policy == PolicyKind::NdpExt) {
                ndpext_speedup = speedup;
            }
        }
        row.push_back(ndpext_speedup / nexus_speedup);
        speedups["ndpext/nexus"].push_back(ndpext_speedup / nexus_speedup);
        table.addRow(name, row);
    }

    // Geomean row.
    std::vector<double> gm;
    for (const auto p : policies) {
        gm.push_back(bench::geomean(speedups[policyName(p)]));
    }
    gm.push_back(bench::geomean(speedups["ndpext/nexus"]));
    table.addRow("geomean", gm);
    table.print();

    std::printf("\npaper shape: NDP gains 4.3x-7.3x over host; "
                "NDPExt/Nexus ~1.41x avg (HBM) / 1.48x (HMC), "
                "up to 2.43x on recsys;\n"
                "NDPExt/NDPExt-static ~1.2x avg.\n"
                "note: the scaled simulation runs 64 NDP cores vs the "
                "paper's 128 (the host keeps its 64),\n"
                "so host-relative bars under-credit NDP by ~2x; the "
                "scheme-vs-scheme columns are unaffected.\n");
    return bench::finishStats(args);
}
