/**
 * Section V-D reproduction: consistent hashing vs bulk invalidation at
 * reconfiguration time. The paper reports 9.4% less invalidation traffic
 * and a 3.7% speedup on average. We run NDPExt with both remap modes and
 * compare invalidated rows (traffic) and cycles.
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const std::vector<std::string>& names = args.workloads.empty()
        ? bench::analysisWorkloads()
        : args.workloads;

    std::printf("Section V-D: consistent hashing vs bulk invalidation\n\n");
    bench::Table table({"inval rows CH", "inval rows bulk",
                        "traffic saved", "speedup"});
    std::vector<double> saved;
    std::vector<double> speedups;
    for (const auto& name : names) {
        SystemConfig ch_cfg = bench::benchConfig(args);
        ch_cfg.cache.remapMode = RemapMode::ConsistentHash;
        SystemConfig bulk_cfg = bench::benchConfig(args);
        bulk_cfg.cache.remapMode = RemapMode::Modulo;

        Workload& w =
            bench::preparedWorkload(name, args, ch_cfg.numUnits());
        const RunResult ch =
            bench::runPolicy(ch_cfg, PolicyKind::NdpExt, w);
        const RunResult bulk =
            bench::runPolicy(bulk_cfg, PolicyKind::NdpExt, w);

        const double save = bulk.invalidatedRows == 0
            ? 0.0
            : 1.0
                - static_cast<double>(ch.invalidatedRows)
                    / static_cast<double>(bulk.invalidatedRows);
        const double speedup = static_cast<double>(bulk.cycles)
            / static_cast<double>(ch.cycles);
        table.addRow(name, {static_cast<double>(ch.invalidatedRows),
                            static_cast<double>(bulk.invalidatedRows),
                            save, speedup});
        saved.push_back(save);
        speedups.push_back(speedup);
    }
    table.print();
    double avg_save = 0.0;
    for (const double s : saved) {
        avg_save += s;
    }
    avg_save /= static_cast<double>(saved.size());
    std::printf("\navg traffic saved: %.1f%% (paper: 9.4%%), "
                "geomean speedup: %.3fx (paper: 1.037x)\n",
                100.0 * avg_save, bench::geomean(speedups));
    return bench::finishStats(args);
}
