/**
 * Fig. 4(b) reproduction: host-processor execution time of the max-flow
 * sampler assignment as a function of the stream count. The paper reports
 * well under half a millisecond for 512 streams; the shape to reproduce
 * is sub-millisecond growth with stream count. Uses google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "runtime/sampler_assign.h"
#include "stream/stream_table.h"

using namespace ndpext;

namespace {

/** Build the bitvectors: 64 units, each stream touched by ~25% of units. */
std::vector<std::vector<bool>>
makeBitvectors(std::uint32_t num_units, std::uint32_t num_streams,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<bool>> accessed(
        num_units, std::vector<bool>(StreamTable::kMaxStreams, false));
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        bool any = false;
        for (std::uint32_t u = 0; u < num_units; ++u) {
            if (rng.nextBool(0.25)) {
                accessed[u][s] = true;
                any = true;
            }
        }
        if (!any) {
            accessed[s % num_units][s] = true;
        }
    }
    return accessed;
}

void
BM_SamplerAssignment(benchmark::State& state)
{
    const auto num_streams = static_cast<std::uint32_t>(state.range(0));
    const std::uint32_t num_units = 64;
    const auto accessed = makeBitvectors(num_units, num_streams, 7);
    std::vector<StreamId> streams;
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        streams.push_back(static_cast<StreamId>(s));
    }
    const SamplerAssigner assigner(4);

    std::uint64_t covered = 0;
    for (auto _ : state) {
        const auto result = assigner.assign(accessed, streams);
        covered = result.covered;
        benchmark::DoNotOptimize(covered);
    }
    state.counters["streams"] = num_streams;
    state.counters["covered"] = static_cast<double>(covered);
}

} // namespace

BENCHMARK(BM_SamplerAssignment)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

/**
 * Custom main instead of BENCHMARK_MAIN(): translate the repo-wide
 * --stats-json=FILE flag into google-benchmark's JSON reporter flags and
 * swallow --quick (the microbenchmark is already smoke-fast), so this
 * binary takes the same flags as every other bench.
 */
int
main(int argc, char** argv)
{
    std::vector<std::string> translated;
    translated.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            std::string out = "--benchmark_out=";
            out += arg.substr(13);
            translated.push_back(std::move(out));
            translated.emplace_back("--benchmark_out_format=json");
        } else if (arg == "--quick") {
            // accepted for flag uniformity; each case runs in microseconds
        } else {
            translated.push_back(arg);
        }
    }
    std::vector<char*> cargv;
    cargv.reserve(translated.size());
    for (auto& arg : translated) {
        cargv.push_back(arg.data());
    }
    int cargc = static_cast<int>(cargv.size());
    benchmark::Initialize(&cargc, cargv.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
