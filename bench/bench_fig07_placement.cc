/**
 * Fig. 7 reproduction: average interconnect latency (bars) and DRAM-cache
 * miss rate (dots) for Nexus vs NDPExt on representative workloads. The
 * shape: NDPExt cuts the interconnect latency substantially via placement
 * and replication (e.g., hotspot 113 ns -> 38 ns in the paper) while
 * keeping miss rates comparable or better (stream prefetching).
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const SystemConfig cfg = bench::benchConfig(args);
    const std::vector<std::string>& names = args.workloads.empty()
        ? bench::analysisWorkloads()
        : args.workloads;

    std::printf("Fig. 7: interconnect latency (ns) and miss rate, "
                "Nexus vs NDPExt\n\n");
    bench::Table table({"nexus icn ns", "ndpext icn ns", "nexus miss",
                        "ndpext miss"});
    for (const auto& name : names) {
        Workload& w = bench::preparedWorkload(name, args, cfg.numUnits());
        const RunResult nexus =
            bench::runPolicy(cfg, PolicyKind::Nexus, w);
        const RunResult ndpext =
            bench::runPolicy(cfg, PolicyKind::NdpExt, w);
        // Cycles at 2 GHz -> ns: divide by 2.
        table.addRow(name, {nexus.avgIcnCycles() / 2.0,
                            ndpext.avgIcnCycles() / 2.0, nexus.missRate,
                            ndpext.missRate});
    }
    table.print();
    std::printf("\npaper shape: NDPExt interconnect latency well below "
                "Nexus; miss rates comparable,\nlower for spatial "
                "workloads (hotspot, pathfinder), slightly higher where "
                "replication\ntrades capacity (mv).\n");
    return bench::finishStats(args);
}
