/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses: argument
 * parsing, the standard workload/policy matrix, and table printing.
 *
 * Every bench binary prints the rows/series of one paper figure or table.
 * Absolute numbers come from this repo's simulator, not the authors'
 * testbed; the reproduction target is the *shape* (ordering, rough
 * factors, crossovers). See EXPERIMENTS.md.
 *
 * --stats-json emits one of two schemas, both consumed by
 * tools/ndpext_bench_compare (and pinned under bench/baselines/):
 *
 *   A. StatGroup dump (this file's finishStats(), and ndpext_sim):
 *        { "stats": { "<metric>": <number>, ... } }
 *      ndpext_sim additionally places scalars ("cycles", "energyNj",
 *      ...) and one nested object ("degraded") at the top level; the
 *      comparer flattens those to dotted names. All values are
 *      deterministic simulation results: bit-identical for any
 *      --threads value, so baselines compare exactly.
 *
 *   B. google-benchmark --benchmark_out JSON (bench_fig04_maxflow,
 *      whose main() translates --stats-json into --benchmark_out):
 *        { "context": {...}, "benchmarks": [ { "name": ...,
 *          "real_time": ..., "cpu_time": ..., "iterations": ...,
 *          <user counters> }, ... ] }
 *      Entries become "<name>.<field>" metrics. Wall-clock fields are
 *      host-dependent and therefore advisory in comparisons.
 */

#ifndef NDPEXT_BENCH_BENCH_UTIL_H
#define NDPEXT_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "system/host_system.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {
namespace bench {

struct BenchArgs
{
    /** Smaller runs for smoke testing (--quick). */
    bool quick = false;
    /** NDP memory type (--mem=hbm|hmc). */
    NdpMemType memType = NdpMemType::Hbm3;
    /** Sub-experiment selector (--exp=...). */
    std::string exp;
    /**
     * Simulation threads (--threads=N). Results are identical for any
     * value; this only changes wall-clock time.
     */
    std::uint32_t threads = 1;
    /** Workload filter (--workloads=pr,bfs,...). Empty = bench default. */
    std::vector<std::string> workloads;
    /** Write recorded results as JSON (--stats-json=FILE). Empty = off. */
    std::string statsJson;

    static BenchArgs parse(int argc, char** argv);
};

/** The standard scaled system configuration used by every figure. */
SystemConfig benchConfig(const BenchArgs& args);

/** Standard workload parameters for the scaled system. */
WorkloadParams benchWorkloadParams(const BenchArgs& args,
                                   std::uint32_t num_cores);

/** Prepare one workload (cached per name within a process). */
Workload& preparedWorkload(const std::string& name, const BenchArgs& args,
                           std::uint32_t num_cores);

/** Run one NDP policy on a prepared workload. */
RunResult runPolicy(const SystemConfig& cfg, PolicyKind policy,
                    const Workload& workload);

/**
 * Same run with a telemetry observer attached (may be null). Telemetry
 * is observer-only, so the RunResult -- and every recorded baseline
 * column -- is identical to the plain overload's.
 */
RunResult runPolicy(const SystemConfig& cfg, PolicyKind policy,
                    const Workload& workload, Telemetry* telemetry);

/** Run the non-NDP host baseline on a prepared workload. */
RunResult runHost(const Workload& workload);

/** The representative subset used by the analysis figures (Figs. 7-9). */
const std::vector<std::string>& analysisWorkloads();

/** Geometric mean helper. */
double geomean(const std::vector<double>& values);

/**
 * Record one named result for --stats-json. Table::addRow records its
 * cells automatically ("<row label>.<column>"); benches that print
 * free-form text call this for their headline numbers.
 */
void recordStat(const std::string& name, double value);

/**
 * Write every recorded stat as one JSON object to args.statsJson (no-op
 * when the flag was not given) and return the process exit code, so
 * mains end with `return bench::finishStats(args);`.
 */
int finishStats(const BenchArgs& args);

/** Print a header row followed by aligned numeric rows. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns);

    void addRow(const std::string& label,
                const std::vector<double>& values);
    void print() const;

  private:
    std::vector<std::string> columns_;
    std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

} // namespace bench
} // namespace ndpext

#endif // NDPEXT_BENCH_BENCH_UTIL_H
