/**
 * Memory-backend comparison: the same workload through each registered
 * backend on the extended-memory role. Deterministic columns (cycles,
 * extended-DRAM row-hit rate, controller stall counters) pin the
 * backends' modelled behavior under bench/baselines/; the accesses/s
 * column is host wall clock and therefore advisory.
 *
 * Expected shape: FR-FCFS recovers the most row hits by reordering
 * around conflicting streams; refresh loses hits to periodic all-bank
 * precharge and adds blackout/wake stall cycles.
 */

#include <cstdio>

#include "bench_util.h"
#include "mem/mem_backend_registry.h"

using namespace ndpext;

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const std::string workload = "pr";

    std::printf("Memory backends on the extended-memory role "
                "(workload %s):\n\n",
                workload.c_str());
    bench::Table table(
        {"cycles", "extRowHitRate", "extStallCyc", "engineAccPerSec"});
    for (const std::string& name :
         MemBackendRegistry::instance().names()) {
        SystemConfig cfg = bench::benchConfig(args);
        cfg.memBackendExt.backend = name;
        cfg.finalize();

        Workload& w =
            bench::preparedWorkload(workload, args, cfg.numUnits());
        const RunResult r =
            bench::runPolicy(cfg, PolicyKind::NdpExt, w);

        const double hits = r.stats.get("ext.dram.rowHits");
        const double misses = r.stats.get("ext.dram.rowMisses");
        const double hit_rate =
            hits + misses == 0.0 ? 0.0 : hits / (hits + misses);
        // Stalls the simple banked model does not have: scheduler queue
        // backpressure or refresh/wake windows (0 where not modelled).
        const double stall_cycles =
            r.stats.get("ext.dram.queueStallCycles")
            + r.stats.get("ext.dram.refreshStallCycles");
        table.addRow(name, {static_cast<double>(r.cycles), hit_rate,
                            stall_cycles, r.engineAccessesPerSec()});
    }
    table.print();
    std::printf("\nshape: frfcfs reorders for the highest row-hit rate; "
                "refresh loses hits and cycles to refresh windows.\n");
    return bench::finishStats(args);
}
