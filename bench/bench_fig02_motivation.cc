/**
 * Fig. 2(a) reproduction: average access-latency breakdown of PageRank
 * under a simple static cacheline-interleaving policy, on (1) the NDP
 * system and (2) a conventional NUCA host. The paper's observations to
 * reproduce: the NDP system spends a much larger latency fraction on the
 * interconnect (32% vs 13%) and visible cycles on remote metadata/tag
 * accesses (~10%), while achieving a much higher cache hit rate (70% vs
 * 47%) thanks to its larger capacity.
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const SystemConfig cfg = bench::benchConfig(args);
    Workload& pr = bench::preparedWorkload("pr", args, cfg.numUnits());

    std::printf("Fig. 2(a): PageRank latency breakdown, static "
                "cacheline interleaving\n\n");

    // --- NDP system with the static-interleave baseline policy ---
    const RunResult ndp =
        bench::runPolicy(cfg, PolicyKind::StaticInterleave, pr);
    const double ndp_total = static_cast<double>(ndp.bd.total());
    std::printf("NDP (static interleave):\n");
    std::printf("  metadata/tags   %5.1f %%\n",
                100.0 * static_cast<double>(ndp.bd.metadata) / ndp_total);
    std::printf("  intra-stack icn %5.1f %%\n",
                100.0 * static_cast<double>(ndp.bd.icnIntra) / ndp_total);
    std::printf("  inter-stack icn %5.1f %%\n",
                100.0 * static_cast<double>(ndp.bd.icnInter) / ndp_total);
    std::printf("  DRAM cache      %5.1f %%\n",
                100.0 * static_cast<double>(ndp.bd.dramCache) / ndp_total);
    std::printf("  next level      %5.1f %%\n",
                100.0 * static_cast<double>(ndp.bd.extMem) / ndp_total);
    std::printf("  cache hit rate  %5.1f %%  (paper: ~70%%)\n",
                100.0 * (1.0 - ndp.missRate));
    std::printf("  icn share       %5.1f %%  (paper: ~32%%)\n\n",
                100.0 * static_cast<double>(ndp.bd.icn()) / ndp_total);
    bench::recordStat("ndp.hitRate", 1.0 - ndp.missRate);
    bench::recordStat("ndp.icnShare",
                      static_cast<double>(ndp.bd.icn()) / ndp_total);
    bench::recordStat("ndp.metadataShare",
                      static_cast<double>(ndp.bd.metadata) / ndp_total);

    // --- Conventional NUCA host ---
    const RunResult host = bench::runHost(pr);
    const double host_total = static_cast<double>(host.bd.total());
    std::printf("NUCA host (S-NUCA LLC):\n");
    std::printf("  interconnect    %5.1f %%\n",
                100.0 * static_cast<double>(host.bd.icn()) / host_total);
    std::printf("  LLC array       %5.1f %%\n",
                100.0 * static_cast<double>(host.bd.dramCache)
                    / host_total);
    std::printf("  main memory     %5.1f %%\n",
                100.0 * static_cast<double>(host.bd.extMem) / host_total);
    std::printf("  cache hit rate  %5.1f %%  (paper: ~47%%)\n",
                100.0 * (1.0 - host.missRate));
    std::printf("  icn share       %5.1f %%  (paper: ~13%%)\n",
                100.0 * static_cast<double>(host.bd.icn()) / host_total);
    bench::recordStat("host.hitRate", 1.0 - host.missRate);
    bench::recordStat("host.icnShare",
                      static_cast<double>(host.bd.icn()) / host_total);
    return bench::finishStats(args);
}
