/**
 * @file
 * Placement control-plane scaling: cold vs warm-start sampler
 * assignment and full vs budget-capped Algorithm 1 on synthetic
 * 1k/10k/100k-stream populations (the serving north star: tenants x
 * cores x sub-workloads re-placed every epoch under a time budget).
 *
 * Unlike the figure benches this one is self-checking: it fails (exit
 * 1) when warm-start parity or the deterministic speedup floor is
 * violated, so the --quick ctest smoke and the CI solver-regress gate
 * double as correctness tests.
 *
 * Recorded stats (--stats-json, schema A; pinned in
 * bench/baselines/solver_quick.json):
 *   assignNk.covered / coldAugPaths / seededPairs / warmSteadyAugPaths
 *     / churnDelta / churnColdAugPaths / churnWarmAugPaths
 *   cfgNk.fullSteps / cappedSteps / fullObjectiveBytes /
 *     cappedObjectiveBytes
 * plus advisory *WallMicros wall-clock columns.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "noc/mesh.h"
#include "noc/noc_model.h"
#include "runtime/config_algorithm.h"
#include "runtime/sampler_assign.h"

namespace ndpext {
namespace {

constexpr std::uint32_t kUnits = 64;          // 8 stacks x 8 units
constexpr std::uint32_t kSamplersPerUnit = 4; // S in the paper
constexpr std::uint32_t kRowsPerUnit = 512;
constexpr std::uint32_t kRowBytes = 2048;

double
wallMicros(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::micro>(dt).count();
}

/**
 * Synthetic access bitvectors: every stream is touched by its home
 * unit plus a ~25% random subset of the machine, mirroring the shared
 * read-mostly streams that dominate serving populations.
 */
std::vector<std::vector<bool>>
makeAccessed(std::uint32_t num_units, std::uint32_t num_streams,
             std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<bool>> accessed(
        num_units, std::vector<bool>(num_streams, false));
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        accessed[s % num_units][s] = true;
        for (std::uint32_t u = 0; u < num_units; ++u) {
            if (rng.nextBool(0.25)) {
                accessed[u][s] = true;
            }
        }
    }
    return accessed;
}

bool
runAssignCase(const std::string& name, std::uint32_t num_streams)
{
    const SamplerAssigner assigner(kSamplersPerUnit);
    auto accessed = makeAccessed(kUnits, num_streams, num_streams);
    std::vector<StreamId> streams(num_streams);
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        streams[s] = s;
    }

    // Cold solve: the from-scratch reference.
    SamplerAssignStats cold_stats;
    const auto t0 = std::chrono::steady_clock::now();
    const SamplerAssignment cold =
        assigner.assign(accessed, streams, &cold_stats);
    const double cold_us = wallMicros(t0);

    // Warm steady state: identical demands, empty delta. Must reproduce
    // the previous assignment bit-identically with zero augmenting
    // paths -- the epoch-over-epoch fast path.
    SamplerAssignStats steady_stats;
    const auto t1 = std::chrono::steady_clock::now();
    const SamplerAssignment steady =
        assigner.assignWarm(accessed, streams, cold, {}, &steady_stats);
    const double steady_us = wallMicros(t1);

    bool ok = true;
    if (steady.perUnit != cold.perUnit
        || steady.covered != cold.covered) {
        std::printf("  %s: FAIL steady warm-start diverged from cold\n",
                    name.c_str());
        ok = false;
    }
    if (steady_stats.augmentingPaths != 0) {
        std::printf("  %s: FAIL steady warm-start ran %llu augmenting "
                    "path(s), expected 0\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        steady_stats.augmentingPaths));
        ok = false;
    }
    // Deterministic speedup floor: the warm solve must save at least 5x
    // the cold solve's BFS work in steady state.
    if (cold_stats.augmentingPaths
        < 5 * std::max<std::uint64_t>(1, steady_stats.augmentingPaths)) {
        std::printf("  %s: FAIL cold work %llu < 5x warm work %llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        cold_stats.augmentingPaths),
                    static_cast<unsigned long long>(
                        steady_stats.augmentingPaths));
        ok = false;
    }

    // Churn: every 16th stream re-rolls its accessor set (tenant
    // arrival/departure scale). Warm solve seeded from the stale
    // assignment must still match the cold solve's coverage.
    std::vector<StreamId> delta;
    Rng churn(num_streams ^ 0x9e3779b97f4a7c15ull);
    for (std::uint32_t s = 0; s < num_streams; s += 16) {
        delta.push_back(s);
        for (std::uint32_t u = 0; u < kUnits; ++u) {
            accessed[u][s] = churn.nextBool(0.25);
        }
        accessed[s % kUnits][s] = true;
    }
    SamplerAssignStats churn_cold_stats;
    const SamplerAssignment churn_cold =
        assigner.assign(accessed, streams, &churn_cold_stats);
    SamplerAssignStats churn_warm_stats;
    const auto t2 = std::chrono::steady_clock::now();
    const SamplerAssignment churn_warm = assigner.assignWarm(
        accessed, streams, cold, delta, &churn_warm_stats);
    const double churn_us = wallMicros(t2);
    if (churn_warm.covered != churn_cold.covered) {
        std::printf("  %s: FAIL churn warm covers %llu, cold %llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(churn_warm.covered),
                    static_cast<unsigned long long>(churn_cold.covered));
        ok = false;
    }

    std::printf("  %-10s covered=%-5llu coldAug=%-5llu steadyAug=%llu "
                "churnAug=%-5llu coldMs=%.2f steadyMs=%.3f churnMs=%.2f "
                "(%.0fx steady speedup)\n",
                name.c_str(),
                static_cast<unsigned long long>(cold.covered),
                static_cast<unsigned long long>(
                    cold_stats.augmentingPaths),
                static_cast<unsigned long long>(
                    steady_stats.augmentingPaths),
                static_cast<unsigned long long>(
                    churn_warm_stats.augmentingPaths),
                cold_us / 1000.0, steady_us / 1000.0, churn_us / 1000.0,
                steady_us > 0.0 ? cold_us / steady_us : 0.0);

    bench::recordStat(name + ".covered",
                      static_cast<double>(cold.covered));
    bench::recordStat(name + ".coldAugPaths",
                      static_cast<double>(cold_stats.augmentingPaths));
    bench::recordStat(name + ".seededPairs",
                      static_cast<double>(steady_stats.seededPairs));
    bench::recordStat(name + ".warmSteadyAugPaths",
                      static_cast<double>(steady_stats.augmentingPaths));
    bench::recordStat(name + ".churnDelta",
                      static_cast<double>(delta.size()));
    bench::recordStat(
        name + ".churnColdAugPaths",
        static_cast<double>(churn_cold_stats.augmentingPaths));
    bench::recordStat(
        name + ".churnWarmAugPaths",
        static_cast<double>(churn_warm_stats.augmentingPaths));
    bench::recordStat(name + ".coldWallMicros", cold_us);
    bench::recordStat(name + ".warmSteadyWallMicros", steady_us);
    bench::recordStat(name + ".churnWarmWallMicros", churn_us);
    return ok;
}

/** Synthetic demand population for the Algorithm 1 scaling cases. */
std::vector<StreamDemand>
makeDemands(std::uint32_t num_streams)
{
    std::vector<StreamDemand> demands;
    demands.reserve(num_streams);
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        StreamDemand d;
        d.sid = s;
        d.footprintBytes =
            (1ull + s % 64) * 1024 * 1024; // 1..64 MiB
        d.readOnly = (s % 4) != 0;
        const std::uint32_t fanout = 1 + s % 4;
        for (std::uint32_t i = 0; i < fanout; ++i) {
            d.accUnits.push_back((s + i * 17) % kUnits);
            d.accCounts.push_back(1 + (s * 7 + i * 131) % 100);
        }
        std::vector<std::uint64_t> caps;
        std::vector<double> misses;
        const double total = static_cast<double>(1000 + s % 1000);
        for (std::uint32_t i = 0; i < 10; ++i) {
            caps.push_back(4096ull << i); // 4 KiB .. 2 MiB
            misses.push_back(total / static_cast<double>(i + 2));
        }
        d.curve = MissCurve(std::move(caps), std::move(misses));
        d.curve.setZeroMisses(total);
        demands.push_back(std::move(d));
    }
    return demands;
}

bool
runCfgCase(const std::string& name, std::uint32_t num_streams,
           std::uint64_t full_steps, std::uint64_t budget_steps)
{
    const MeshTopology topo{4, 2, 2, 4}; // 64 units
    const NocModel noc{topo, NocParams{}};
    ConfigParams params;
    params.numUnits = kUnits;
    params.rowsPerUnit = kRowsPerUnit;
    params.rowBytes = kRowBytes;
    params.maxIterations = full_steps;
    ConfigParams capped_params = params;
    capped_params.budgetIterations = budget_steps;

    const std::vector<StreamDemand> demands = makeDemands(num_streams);

    ConfigAlgorithm full(params, noc);
    const auto t0 = std::chrono::steady_clock::now();
    full.run(demands);
    const double full_us = wallMicros(t0);

    ConfigAlgorithm capped(capped_params, noc);
    const auto t1 = std::chrono::steady_clock::now();
    capped.run(demands);
    const double capped_us = wallMicros(t1);

    const double full_obj =
        static_cast<double>(full.lastObjectiveBytes());
    const double capped_obj =
        static_cast<double>(capped.lastObjectiveBytes());
    const double regret_pct =
        full_obj == 0.0 ? 0.0 : 100.0 * (1.0 - capped_obj / full_obj);

    bool ok = true;
    if (capped.lastIterations() > budget_steps) {
        std::printf("  %s: FAIL budget overran: %llu > %llu steps\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        capped.lastIterations()),
                    static_cast<unsigned long long>(budget_steps));
        ok = false;
    }
    // Bounded regret: the anytime placement keeps at least half the
    // full solve's placed bytes (the floor allocation alone guarantees
    // a valid placement well above zero).
    if (capped_obj < 0.5 * full_obj) {
        std::printf("  %s: FAIL regret %.1f%% exceeds 50%%\n",
                    name.c_str(), regret_pct);
        ok = false;
    }

    std::printf("  %-10s fullSteps=%-6llu cappedSteps=%-6llu "
                "objective=%.1fMB capped=%.1fMB regret=%.2f%% "
                "fullMs=%.1f cappedMs=%.1f\n",
                name.c_str(),
                static_cast<unsigned long long>(full.lastIterations()),
                static_cast<unsigned long long>(capped.lastIterations()),
                full_obj / 1e6, capped_obj / 1e6, regret_pct,
                full_us / 1000.0, capped_us / 1000.0);

    bench::recordStat(name + ".fullSteps",
                      static_cast<double>(full.lastIterations()));
    bench::recordStat(name + ".cappedSteps",
                      static_cast<double>(capped.lastIterations()));
    bench::recordStat(name + ".fullObjectiveBytes", full_obj);
    bench::recordStat(name + ".cappedObjectiveBytes", capped_obj);
    bench::recordStat(name + ".budgetHits",
                      static_cast<double>(capped.budgetHits()));
    bench::recordStat(name + ".fullWallMicros", full_us);
    bench::recordStat(name + ".cappedWallMicros", capped_us);
    return ok;
}

} // namespace
} // namespace ndpext

int
main(int argc, char** argv)
{
    using namespace ndpext;
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

    std::printf("solver scaling (%u units, S=%u, %u rows/unit):\n",
                kUnits, kSamplersPerUnit, kRowsPerUnit);
    std::printf("sampler assignment (cold vs warm-start):\n");
    bool ok = runAssignCase("assign1k", 1000);
    ok = runAssignCase("assign10k", 10000) && ok;
    if (!args.quick) {
        ok = runAssignCase("assign100k", 100000) && ok;
    }

    std::printf("algorithm 1 (full vs anytime budget):\n");
    ok = runCfgCase("cfg1k", 1000, 1 << 20, 4096) && ok;
    if (!args.quick) {
        ok = runCfgCase("cfg10k", 10000, 1 << 20, 8192) && ok;
    }

    if (!ok) {
        std::printf("solver bench: FAIL\n");
        return 1;
    }
    const int rc = bench::finishStats(args);
    return rc;
}
