/**
 * Table II reproduction: print the system configurations (paper-scale and
 * the scaled simulation default) so every parameter is auditable.
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

namespace {

void
printConfig(const char* title, const SystemConfig& cfg)
{
    const DramTimingParams dram = cfg.unitDram();
    const DramTimingParams ext = DramTimingParams::ddr5Extended();
    std::printf("=== %s ===\n", title);
    std::printf("NDP system        %ux%u inter-stack mesh, %u units/stack; "
                "%u NDP cores total\n",
                cfg.stacksX, cfg.stacksY, cfg.unitsX * cfg.unitsY,
                cfg.numUnits());
    std::printf("NDP core          %.1f GHz, in-order; L1D %lu kB %u-way, "
                "%u B lines\n",
                static_cast<double>(cfg.coreFreqMhz) / 1000.0,
                static_cast<unsigned long>(cfg.core.l1dCapacityBytes / 1024),
                cfg.core.l1dWays, cfg.core.lineBytes);
    std::printf("NDP %-5s         %.0f MHz, RCD-CAS-RP %u-%u-%u; "
                "%lu MB cache/unit; RD/WR %.1f pJ/b, ACT/PRE %.1f nJ\n",
                cfg.memType == NdpMemType::Hbm3 ? "HBM3" : "HMC2",
                dram.clockMhz, dram.tRcd, dram.tCas, dram.tRp,
                static_cast<unsigned long>(cfg.unitCacheBytes / 1_MiB),
                dram.rdWrPjPerBit, dram.actPreNj);
    std::printf("Extended memory   DDR5-4800, %u banks, RCD-CAS-RP "
                "%u-%u-%u; RD/WR %.1f pJ/b, ACT/PRE %.1f nJ\n",
                ext.banks, ext.tRcd, ext.tCas, ext.tRp, ext.rdWrPjPerBit,
                ext.actPreNj);
    std::printf("Intra-stack net   %lu cycles/hop, %.1f pJ/b\n",
                static_cast<unsigned long>(cfg.noc.intraHopCycles),
                cfg.noc.intraPjPerBit);
    std::printf("Inter-stack net   %.0f GB/s per dir, %lu cycles/hop, "
                "%.1f pJ/b\n",
                cfg.noc.interLinkBytesPerCycle * 2.0,
                static_cast<unsigned long>(cfg.noc.interHopCycles),
                cfg.noc.interPjPerBit);
    std::printf("CXL link          %lu cycles (%.0f ns), %.1f GB/s, "
                "%.1f pJ/b\n",
                static_cast<unsigned long>(cfg.cxl.linkLatencyCycles),
                static_cast<double>(cfg.cxl.linkLatencyCycles) / 2.0,
                cfg.cxl.linkBytesPerCycle * 2.0, cfg.cxl.pjPerBit);
    std::printf("Stream cache      affine block %u B, affine cap %lu kB/u, "
                "SLB %u entries, %u samplers x (k=%u, c=%u)\n",
                cfg.cache.affineBlockBytes,
                static_cast<unsigned long>(
                    cfg.cache.affineCapBytesPerUnit / 1024),
                cfg.cache.slbEntries, cfg.cache.samplersPerUnit,
                cfg.cache.sampler.kSets, cfg.cache.sampler.numCapacities);
    std::printf("Runtime           epoch %lu cycles, method Full\n\n",
                static_cast<unsigned long>(cfg.runtime.epochCycles));
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    std::printf("Table II: system configurations\n\n");
    const SystemConfig scaled = bench::benchConfig(args);
    printConfig("scaled simulation default", scaled);
    printConfig("paper scale (Table II)", SystemConfig::paperScale());
    bench::recordStat("scaled.numUnits", scaled.numUnits());
    bench::recordStat("scaled.unitCacheBytes",
                      static_cast<double>(scaled.unitCacheBytes));
    bench::recordStat("scaled.epochCycles",
                      static_cast<double>(scaled.runtime.epochCycles));
    return bench::finishStats(args);
}
