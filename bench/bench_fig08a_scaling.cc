/**
 * Fig. 8(a) reproduction: NDPExt speedup over Nexus across system sizes.
 * The paper varies (#stacks x #cores/stack): more stacks at the same core
 * count increase interconnect distances and NDPExt's advantage (up to
 * 1.65x at 16 stacks); a small 4-stack/32-core system still gains ~9%;
 * a big 16-stack/256-core system reaches ~1.75x; a single NDP unit keeps
 * ~1.16x purely from the stream abstraction's metadata savings.
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

namespace {

struct Geometry
{
    const char* label;
    std::uint32_t stacksX;
    std::uint32_t stacksY;
    std::uint32_t unitsX;
    std::uint32_t unitsY;
};

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);

    // Same total core count across the first three rows, then smaller and
    // larger machines, then the single-unit fallback.
    const std::vector<Geometry> geometries = {
        {"2x32 (64c)", 2, 1, 4, 8},  {"8x8 (64c)", 4, 2, 2, 4},
        {"16x4 (64c)", 4, 4, 2, 2},  {"4x8 (32c)", 2, 2, 2, 4},
        {"16x16 (256c)", 4, 4, 4, 4}, {"1 unit", 1, 1, 1, 1},
    };

    std::printf("Fig. 8(a): NDPExt speedup over Nexus vs system size "
                "(stacks x cores/stack)\n\n");
    bench::Table table({"ndpext/nexus"});
    for (const auto& g : geometries) {
        SystemConfig cfg = bench::benchConfig(args);
        cfg.stacksX = g.stacksX;
        cfg.stacksY = g.stacksY;
        cfg.unitsX = g.unitsX;
        cfg.unitsY = g.unitsY;
        cfg.finalize();

        std::vector<double> ratios;
        for (const auto& name : bench::analysisWorkloads()) {
            Workload& w =
                bench::preparedWorkload(name, args, cfg.numUnits());
            const RunResult nexus =
                bench::runPolicy(cfg, PolicyKind::Nexus, w);
            const RunResult ndpext =
                bench::runPolicy(cfg, PolicyKind::NdpExt, w);
            ratios.push_back(static_cast<double>(nexus.cycles)
                             / static_cast<double>(ndpext.cycles));
        }
        table.addRow(g.label, {bench::geomean(ratios)});
    }
    table.print();
    std::printf("\npaper shape: advantage grows with stack count "
                "(1.41x..1.65x at 64c, 1.75x at 256c),\nshrinks on small "
                "systems (1.09x at 32c), and stays >1 on a single unit "
                "(1.16x).\n");
    return bench::finishStats(args);
}
