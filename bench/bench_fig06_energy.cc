/**
 * Fig. 6 reproduction: energy-consumption breakdown of NDPExt vs Nexus,
 * per workload, normalized to Nexus. The paper reports NDPExt saving
 * ~40% energy on average: static energy follows execution time, DRAM
 * energy drops (no tag traffic, fewer extended-memory accesses), and
 * interconnect energy roughly halves.
 */

#include <cstdio>

#include "bench_util.h"

using namespace ndpext;

namespace {

void
printBreakdown(const char* tag, const EnergyBreakdown& e, double norm)
{
    std::printf("  %-8s static %5.1f%%  ndpDram %5.1f%%  extDram %5.1f%%  "
                "cxl %5.1f%%  icn %5.1f%%  sram %5.1f%%  total %.3f\n",
                tag, 100.0 * e.staticNj / e.totalNj(),
                100.0 * e.ndpDramNj / e.totalNj(),
                100.0 * e.extDramNj / e.totalNj(),
                100.0 * e.cxlLinkNj / e.totalNj(),
                100.0 * e.icnNj / e.totalNj(),
                100.0 * e.sramNj / e.totalNj(), e.totalNj() / norm);
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    const SystemConfig cfg = bench::benchConfig(args);
    const std::vector<std::string>& names =
        args.workloads.empty() ? allWorkloadNames() : args.workloads;

    std::printf("Fig. 6: energy breakdown, NDPExt vs Nexus "
                "(totals normalized to Nexus)\n\n");

    std::vector<double> ratios;
    for (const auto& name : names) {
        Workload& w = bench::preparedWorkload(name, args, cfg.numUnits());
        const RunResult nexus =
            bench::runPolicy(cfg, PolicyKind::Nexus, w);
        const RunResult ndpext =
            bench::runPolicy(cfg, PolicyKind::NdpExt, w);
        std::printf("%s:\n", name.c_str());
        printBreakdown("nexus", nexus.energy, nexus.energy.totalNj());
        printBreakdown("ndpext", ndpext.energy, nexus.energy.totalNj());
        const double ratio =
            ndpext.energy.totalNj() / nexus.energy.totalNj();
        ratios.push_back(ratio);
        bench::recordStat(name + ".energyRatio", ratio);
    }
    std::printf("\ngeomean NDPExt/Nexus energy: %.3f "
                "(paper: ~0.60, i.e. 40.3%% savings)\n",
                bench::geomean(ratios));
    bench::recordStat("geomean.energyRatio", bench::geomean(ratios));
    return bench::finishStats(args);
}
