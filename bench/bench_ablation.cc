/**
 * Ablation study (beyond the paper's figures; DESIGN.md design-choice
 * inventory): isolate the contribution of each NDPExt mechanism by
 * disabling it and measuring the slowdown relative to full NDPExt.
 *
 *   no-replication : Algorithm 1 restricted to one global group/stream
 *   modulo-hash    : consistent hashing replaced with modulo rehash
 *   no-block       : affine blocks shrunk to one cacheline (no prefetch)
 *   long-slb-miss  : 10x SLB refill cost (metadata locality sensitivity)
 *   static-equal   : no runtime optimization at all (NDPExt-static)
 */

#include <cstdio>
#include <functional>

#include "bench_util.h"

using namespace ndpext;

namespace {

struct Variant
{
    const char* label;
    PolicyKind policy;
    std::function<void(SystemConfig&)> tweak;
};

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);

    const std::vector<Variant> variants = {
        {"full ndpext", PolicyKind::NdpExt, [](SystemConfig&) {}},
        {"no-replication", PolicyKind::NdpExt,
         [](SystemConfig& cfg) { cfg.allowReplication = false; }},
        {"modulo-hash", PolicyKind::NdpExt,
         [](SystemConfig& cfg) {
             cfg.cache.remapMode = RemapMode::Modulo;
         }},
        {"no-block", PolicyKind::NdpExt,
         [](SystemConfig& cfg) { cfg.cache.affineBlockBytes = 64; }},
        {"long-slb-miss", PolicyKind::NdpExt,
         [](SystemConfig& cfg) { cfg.cache.slbMissCycles *= 10; }},
        {"static-equal", PolicyKind::NdpExtStatic, [](SystemConfig&) {}},
    };

    std::printf("Ablation: slowdown when disabling each NDPExt "
                "mechanism (geomean over analysis workloads)\n\n");
    bench::Table table({"norm. perf"});

    std::vector<double> base_cycles;
    for (const auto& v : variants) {
        SystemConfig cfg = bench::benchConfig(args);
        v.tweak(cfg);
        cfg.finalize();
        std::vector<double> cycles;
        for (const auto& name : bench::analysisWorkloads()) {
            Workload& w =
                bench::preparedWorkload(name, args, cfg.numUnits());
            const RunResult r = bench::runPolicy(cfg, v.policy, w);
            cycles.push_back(static_cast<double>(r.cycles));
        }
        const double gm = bench::geomean(cycles);
        if (base_cycles.empty()) {
            base_cycles.push_back(gm);
        }
        table.addRow(v.label, {base_cycles.front() / gm});
    }
    table.print();
    std::printf("\nvalues < 1 mean the ablated design is slower than "
                "full NDPExt.\n");
    return bench::finishStats(args);
}
