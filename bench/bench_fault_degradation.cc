/**
 * Graceful degradation under injected faults (robustness study beyond the
 * paper's figures; DESIGN.md "Fault model & degraded-mode semantics").
 *
 * Default experiment: kill one NDP unit, then a whole stack (8 of 64
 * units), ~30% into each run, and compare policies. NDPExt's runtime
 * reconfigures out-of-epoch and re-places every stream around the dead
 * units, so it keeps almost all of its performance. Static placements
 * cannot re-place: every access that hashes to a dead slice redirects to
 * extended memory for the rest of the run -- the headline gap of this
 * harness (at one dead stack, static-interleave loses ~4x more
 * performance than NDPExt).
 *
 * --exp=sweep instead sweeps the CXL transient link-error rate and
 * reports the slowdown from retry/backoff traffic.
 *
 * Columns: norm. perf = fault-free cycles / faulty cycles (1.0 = no loss)
 *          redirects  = accesses served from ext memory because their
 *                       cache location sat on a failed unit
 *          emerg.rcfg = out-of-epoch reconfigurations
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace ndpext;

namespace {

struct PolicyRow
{
    const char* label;
    PolicyKind policy;
};

const std::vector<PolicyRow> kPolicies = {
    {"ndpext", PolicyKind::NdpExt},
    {"ndpext-static", PolicyKind::NdpExtStatic},
    {"static-interleave", PolicyKind::StaticInterleave},
};

void
unitFailureStudy(const bench::BenchArgs& args)
{
    const SystemConfig clean = bench::benchConfig(args);
    const UnitId stack_base =
        clean.numUnits() / 2; // mid-mesh stack, first unit
    const std::uint32_t stack_units = clean.unitsX * clean.unitsY;

    // Fault-free baselines, shared by both failure scenarios.
    std::vector<std::vector<RunResult>> base(kPolicies.size());
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        for (const auto& name : bench::analysisWorkloads()) {
            const Workload& w =
                bench::preparedWorkload(name, args, clean.numUnits());
            base[p].push_back(
                bench::runPolicy(clean, kPolicies[p].policy, w));
        }
    }

    struct Scenario
    {
        const char* title;
        std::uint32_t units;
    };
    for (const Scenario sc : {Scenario{"1 unit fails", 1u},
                              Scenario{"1 stack fails", stack_units}}) {
        std::printf("%s ~30%% into the run "
                    "(geomean over analysis workloads)\n\n",
                    sc.title);
        bench::Table table({"norm. perf", "redirects", "emerg.rcfg"});
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            std::vector<double> perf;
            double redirects = 0.0;
            double reconfigs = 0.0;
            for (std::size_t i = 0;
                 i < bench::analysisWorkloads().size(); ++i) {
                const Workload& w = bench::preparedWorkload(
                    bench::analysisWorkloads()[i], args,
                    clean.numUnits());
                // Fail the units once the caches are warm and the epoch
                // runtime has profiled the streams.
                SystemConfig faulty = clean;
                faulty.faults.seed = 13;
                const Cycles at = static_cast<Cycles>(
                    static_cast<double>(base[p][i].cycles) * 0.3);
                for (std::uint32_t u = 0; u < sc.units; ++u) {
                    faulty.faults.unitFailures.push_back(
                        UnitFailure{stack_base + u, at});
                }
                const RunResult r =
                    bench::runPolicy(faulty, kPolicies[p].policy, w);
                perf.push_back(static_cast<double>(base[p][i].cycles)
                               / static_cast<double>(r.cycles));
                redirects += static_cast<double>(
                    r.degraded.failedUnitRedirects);
                reconfigs += static_cast<double>(
                    r.degraded.emergencyReconfigs);
            }
            table.addRow(kPolicies[p].label,
                         {bench::geomean(perf), redirects, reconfigs});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("ndpext re-places streams around dead units (emergency "
                "reconfig); static placements redirect to extended "
                "memory until the run ends.\n");
}

void
linkErrorSweep(const bench::BenchArgs& args)
{
    std::printf("CXL transient link-error sweep, ndpext "
                "(geomean over analysis workloads)\n\n");
    bench::Table table({"norm. perf", "link retries"});

    const std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2};
    std::vector<double> base_cycles;
    for (const double rate : rates) {
        SystemConfig cfg = bench::benchConfig(args);
        cfg.faults.seed = 13;
        cfg.faults.cxlTransientProb = rate;
        std::vector<double> cycles;
        double retries = 0.0;
        for (const auto& name : bench::analysisWorkloads()) {
            const Workload& w =
                bench::preparedWorkload(name, args, cfg.numUnits());
            const RunResult r =
                bench::runPolicy(cfg, PolicyKind::NdpExt, w);
            cycles.push_back(static_cast<double>(r.cycles));
            retries += static_cast<double>(r.degraded.linkRetries);
        }
        const double gm = bench::geomean(cycles);
        if (base_cycles.empty()) {
            base_cycles.push_back(gm);
        }
        char label[32];
        std::snprintf(label, sizeof(label), "p=%g", rate);
        table.addRow(label, {base_cycles.front() / gm, retries});
    }
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    const auto args = bench::BenchArgs::parse(argc, argv);
    if (args.exp == "sweep") {
        linkErrorSweep(args);
    } else {
        unitFailureStudy(args);
    }
    return bench::finishStats(args);
}
