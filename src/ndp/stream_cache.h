/**
 * @file
 * The NDPExt stream cache controller (Section IV): the full hardware
 * datapath from an L1 miss to data return.
 *
 * Datapath for an access from the core on unit U to stream S:
 *   1. SLB lookup at U (TCAM range match; miss -> host remap-table refill).
 *      Non-stream addresses bypass the DRAM cache to extended memory.
 *   2. Element id -> granule id (1 kB block for affine, element for
 *      indirect); hashed within the serving replication group to a
 *      (unit, DRAM row, slot) location.
 *   3. Remote locations are reached over the intra/inter-stack network.
 *   4. Affine: SRAM affine-tag-array check, then a DRAM access on a hit.
 *      Indirect: a single DRAM access returns tag+data (direct-mapped,
 *      tag-with-data as in Alloy-style DRAM caches).
 *   5. Misses fetch the granule from CXL extended memory and install it;
 *      dirty victims are written back without stalling the requester.
 *   6. The first write to a read-only stream raises the host exception
 *      that collapses its replication groups (Section IV-B).
 *
 * Port/packet architecture: the controller is a MemObject whose
 * "cpu_side" response port receives core Packets; internally the packet
 * is threaded through per-shard request ports into the NocModel
 * ("noc_side") and ExtendedMemory ("ext_side"), each leg advancing
 * pkt.ready and charging the matching LatencyBreakdown bucket.
 *
 * Sharded execution (enableSharding): units are partitioned by stack
 * into shards that run in parallel between epoch barriers. A shard owns
 * its units' SLBs, samplers, tag stores, DRAM banks and counters
 * outright; for traffic that *serves* on another shard's unit, the
 * shard uses private proxy TagStore/MemBackend instances derived from
 * the shared (read-only between barriers) remap geometry, and its own
 * NoC/CXL models with a fair share of the global bandwidth. Cross-
 * cutting side effects -- the write-to-read-only exception's
 * markWritten + replica collapse -- are deferred to the next barrier
 * (applyDeferredWriteExceptions) and applied in sorted-stream order, so
 * results are a pure function of the shard decomposition, never of the
 * thread count. See DESIGN.md section 5.
 *
 * Degraded mode (FaultInjector attached): a failed NDP unit loses its
 * DRAM-cache slice, tag stores and samplers -- an immediate capacity
 * loss. Accesses that resolve to a failed unit miss straight to extended
 * memory instead of wedging, replication groups containing the failed
 * unit collapse via the Section IV-B exception path, and the runtime is
 * expected to re-place around the unit out-of-epoch. ECC-detected DRAM
 * bit faults in cached data force a re-fetch from extended memory;
 * poisoned extended-memory reads escalate to the host (penalty cycles)
 * and are counted per occurrence.
 */

#ifndef NDPEXT_NDP_STREAM_CACHE_H
#define NDPEXT_NDP_STREAM_CACHE_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/types.h"
#include "cpu/core.h"
#include "cxl/extended_memory.h"
#include "mem/mem_backend.h"
#include "ndp/remap_table.h"
#include "ndp/slb.h"
#include "ndp/tag_store.h"
#include "noc/noc_model.h"
#include "sampler/sampler.h"
#include "sim/breakdown.h"
#include "sim/packet.h"
#include "sim/packet_pool.h"
#include "sim/port.h"
#include "stream/stream_table.h"

namespace ndpext {

struct StreamCacheParams
{
    /** Affine cache block (Section IV-C; Fig. 9b sweeps this). */
    std::uint32_t affineBlockBytes = 1024;
    /**
     * Total DRAM-cache space usable by affine streams per unit, so the
     * affine tags fit in SRAM (paper: 16 MB of 256 MB). Scaled configs set
     * this to the same 1/16 fraction. 0 = unrestricted (Fig. 9c).
     */
    std::uint64_t affineCapBytesPerUnit = 16_MiB;
    /** ATA associativity. */
    std::uint32_t affineWays = 4;
    /** Indirect-cache associativity (1 = paper default; Fig. 9a). */
    std::uint32_t indirectWays = 1;
    /**
     * Way prediction for associative indirect caches (the CAMEO/Unison
     * alternative the paper mentions in Section IV-C): one DRAM access
     * reads the predicted (MRU) way; a mispredicted hit pays a second
     * access. Without prediction, an associative lookup reads all ways
     * of the set in one wider DRAM access.
     */
    bool indirectWayPrediction = false;
    /** SRAM affine tag array lookup latency. */
    Cycles ataCycles = 2;
    std::uint32_t slbEntries = 32;
    Cycles slbHitCycles = 2;
    /** Host round trip to refill an SLB entry. */
    Cycles slbMissCycles = 1000;
    /** Request-handling pipeline at the destination unit. */
    Cycles unitHandlerCycles = 1;
    /** Host exception on the first write to a read-only stream. */
    Cycles writeExceptionCycles = 2000;
    /** Control flit size for remote requests. */
    std::uint32_t reqBytes = 32;
    /** Data response size back to the requesting core. */
    std::uint32_t rspBytes = 64;
    /** SRAM lookup energies (CACTI-class structures), pJ per lookup. */
    double slbPjPerLookup = 5.0;
    double ataPjPerLookup = 10.0;
    /** Samplers per unit (Section V-A). */
    std::uint32_t samplersPerUnit = 4;
    SamplerParams sampler;
    RemapMode remapMode = RemapMode::ConsistentHash;

    /**
     * Cacheline-grained baseline mode (Section VI "Baseline designs"):
     * the adapted NUCA comparators (Jigsaw/Whirlpool/Nexus/static
     * interleaving) cache 64 B lines, keep per-line tags in DRAM, and
     * front them with a per-unit dual-granularity metadata cache
     * (Bi-Modal style: one metadata entry per 512 B block, 64 B data
     * migration). Every access performs a metadata lookup; metadata-cache
     * misses cost a (possibly remote) DRAM access.
     */
    bool cachelineMode = false;
    std::uint64_t metadataCacheBytes = 128_KiB;
    std::uint32_t metadataGranuleBytes = 512;
    std::uint32_t metadataCacheWays = 8;
    Cycles metadataHitCycles = 2;
};

/**
 * The distributed stream cache across all NDP units. Owns per-unit local
 * DRAM devices, SLBs, tag stores and sampler banks; reaches the NoC and
 * extended-memory models through request ports.
 */
class StreamCacheController : public MemObject
{
  public:
    /**
     * @param unit_cache_bytes DRAM-cache capacity per unit.
     * @param unit_dram        Backend + timing of each unit's local
     *                         DRAM slice (a bare DramTimingParams selects
     *                         the default "banked" backend).
     */
    StreamCacheController(const StreamCacheParams& params,
                          StreamTable& streams, NocModel& noc,
                          ExtendedMemory& ext,
                          const MemBackendConfig& unit_dram,
                          std::uint64_t unit_cache_bytes,
                          std::uint64_t core_freq_mhz);

    StreamCacheController(const StreamCacheController&) = delete;
    StreamCacheController& operator=(const StreamCacheController&) = delete;

    /** One shard's private backing resources (see enableSharding). */
    struct ShardResources
    {
        NocModel* noc = nullptr;
        ExtendedMemory* ext = nullptr;
        /** Optional per-shard fault injector (derived seed). */
        FaultInjector* fault = nullptr;
    };

    /**
     * Switch to sharded execution: one shard per stack, each using
     * `resources[s]` for its NoC/CXL traffic and deferring write-to-
     * read-only side effects to applyDeferredWriteExceptions(). Must be
     * called before the first access; `resources.size()` must equal the
     * topology's stack count.
     */
    void enableSharding(const std::vector<ShardResources>& resources);

    /** True once enableSharding() has been called. */
    bool sharded() const { return sharded_; }

    /**
     * Barrier-side: apply the markWritten + replica-collapse side effects
     * of write exceptions raised during the last parallel interval, in
     * sorted stream order (thread-count independent). No-op when not
     * sharded (side effects were applied inline).
     */
    void applyDeferredWriteExceptions();

    /** Port entry ("cpu_side"): dispatches accesses and writebacks. */
    void handleRequest(Packet& pkt);

    /** Convenience wrappers building a Packet (tests, host-style use). */
    MemResult access(CoreId core, const Access& access, Cycles now);
    void writeback(CoreId core, Addr line_addr, Cycles now);

    /** Granule (caching unit) of a stream in bytes. */
    std::uint32_t granuleOf(const StreamConfig& cfg) const;

    /** Granule id of an element of a stream. */
    std::uint64_t granuleIdOf(const StreamConfig& cfg, ElemId elem) const;

    StreamRemapTable& remap() { return remap_; }
    const StreamRemapTable& remap() const { return remap_; }
    SamplerBank& samplerBank(UnitId unit);
    const SamplerBank& samplerBank(UnitId unit) const;
    std::uint32_t numUnits() const
    {
        return static_cast<std::uint32_t>(units_.size());
    }
    std::uint32_t rowsPerUnit() const { return rowsPerUnit_; }
    std::uint32_t rowBytes() const { return rowBytes_; }
    const StreamCacheParams& params() const { return params_; }
    const StreamTable& streams() const { return streams_; }

    /**
     * Install a new epoch configuration: per-stream allocations from the
     * configuration algorithm. Rebuilds tag stores, carrying surviving
     * rows under consistent hashing, and accounts invalidation traffic.
     * Barrier-side only in sharded mode.
     */
    void applyConfiguration(
        const std::vector<std::pair<StreamId, StreamAlloc>>& allocs);

    /** Collapse a stream's replication to one group (write exception). */
    void collapseReplication(StreamId sid);

    /** Attach (or detach with nullptr) the fault injector. */
    void setFaultInjector(FaultInjector* fault);

    /**
     * A whole NDP unit failed: its cached contents and capacity are gone.
     * Tag stores are dropped, sampler state cleared, and replication
     * groups spanning the unit collapse. Until the runtime installs a
     * fresh configuration, accesses resolving to the unit redirect to
     * extended memory. Barrier-side only in sharded mode.
     */
    void onUnitFailed(UnitId unit);

    /** Has `unit` been marked failed? */
    bool unitFailed(UnitId unit) const
    {
        return unit < unitFailed_.size() && unitFailed_[unit];
    }

    // --- statistics (aggregated across shards) ---
    LatencyBreakdown breakdown() const;
    std::uint64_t cacheHits() const;
    std::uint64_t cacheMisses() const;
    std::uint64_t uncachedStreamAccesses() const;
    std::uint64_t bypasses() const;
    std::uint64_t writeExceptions() const;
    /** Way-prediction accuracy (1.0 when prediction is off/unused). */
    double wayPredictionRate() const;
    std::uint64_t slbMissTotal() const;
    double missRate() const;
    /** Baseline metadata-cache hit rate (cachelineMode only). */
    double metadataHitRate() const;
    /** Rows invalidated / preserved across all reconfigurations. */
    std::uint64_t invalidatedRows() const { return invalidatedRows_; }
    std::uint64_t survivedRows() const { return survivedRows_; }
    /** Accesses redirected to extended memory because their cache
     *  location sat on a failed unit. */
    std::uint64_t failedUnitRedirects() const;
    /** ECC-detected DRAM bit faults that forced a re-fetch. */
    std::uint64_t dramFaultRefetches() const;
    /** Poisoned extended-memory reads escalated to the host. */
    std::uint64_t poisonEscalations() const;
    /** Per-stream hit/miss counts (0 for never-accessed sids). */
    std::uint64_t streamHits(StreamId sid) const;
    std::uint64_t streamMisses(StreamId sid) const;
    double dramCacheEnergyNj() const;
    double sramEnergyNj() const;

    /**
     * Per-stream cost attribution. Service latency is merged per owning
     * sid on request completion, so summed over every stream plus the
     * non-stream slot it equals breakdown() exactly (integer cycles).
     * SRAM and DRAM-cache energy shares are derived from per-stream
     * integer counters (lookups, bytes, activations) with the same
     * coefficients as the machine totals, so the shares sum to
     * sramEnergyNj()/dramCacheEnergyNj() up to float association order.
     */
    LatencyBreakdown streamBreakdown(StreamId sid) const;
    LatencyBreakdown nonStreamBreakdown() const;
    double streamSramEnergyNj(StreamId sid) const;
    double nonStreamSramEnergyNj() const;
    double streamDramCacheEnergyNj(StreamId sid) const;
    double nonStreamDramCacheEnergyNj() const;
    const MemBackend& unitDram(UnitId unit) const;

    /** Packet-pool telemetry summed over shard contexts. */
    std::uint64_t packetPoolHighWater() const;
    std::uint64_t packetPoolAllocated() const;

    void report(StatGroup& stats, const std::string& prefix) const;

    /** Registers "cache.*" series, including per-stream hits/misses. */
    void registerMetrics(MetricRegistry& registry) override;

    /**
     * Checkpoint hooks. Barrier-side only: every shard must be quiescent
     * and deferred write exceptions applied. Tag stores (including
     * cross-shard proxies) are written in sorted (unit, sid) order with
     * their geometry so restore can reconstruct stores that
     * applyConfiguration never built in this process. The shard NoC/CXL/
     * fault models referenced by each context are serialized by their
     * owner (NdpSystem), not here.
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  protected:
    MemPort* getPort(const std::string& port_name) override
    {
        return port_name == "cpu_side" ? &cpuSide_ : nullptr;
    }

  private:
    /** Response port adapter forwarding into handleRequest(). */
    class CpuSidePort final : public MemPort
    {
      public:
        explicit CpuSidePort(StreamCacheController& owner)
            : MemPort("stream_cache.cpu_side"), owner_(owner)
        {
        }
        void recvAtomic(Packet& pkt) final
        {
            owner_.handleRequest(pkt);
        }

      private:
        StreamCacheController& owner_;
    };

    struct UnitState
    {
        std::unique_ptr<MemBackend> dram;
        Slb slb;
        SamplerBank samplers;
        std::unordered_map<StreamId, TagStore> stores;
        /** Only in cachelineMode: the baseline metadata cache. */
        std::unique_ptr<SetAssocCache> metaCache;

        UnitState(const MemBackendConfig& dram_cfg,
                  std::uint64_t core_freq_mhz,
                  const StreamCacheParams& params)
            : dram(createMemBackend(dram_cfg, core_freq_mhz)),
              slb(params.slbEntries, params.slbHitCycles,
                  params.slbMissCycles),
              samplers(params.samplersPerUnit, params.sampler)
        {
            if (params.cachelineMode) {
                // One 4 B metadata entry per metadataGranule block.
                const std::uint64_t entries =
                    params.metadataCacheBytes / 4;
                metaCache = std::make_unique<SetAssocCache>(
                    static_cast<std::uint32_t>(
                        entries / params.metadataCacheWays),
                    params.metadataCacheWays);
            }
        }
    };

    /**
     * Per-shard execution context: request ports into the shard's NoC
     * and extended-memory models, the shard's fault injector, all hot
     * counters, deferred write-exception state, and proxy tag/DRAM
     * models for units served on other shards. In non-sharded mode a
     * single context (bound to the constructor's NoC/ext) covers all
     * units and the proxies are never used.
     */
    /** Integer cost counters of one stream within one shard; energy is
     *  derived from these so the attribution shards exactly. */
    struct StreamCost
    {
        std::uint64_t slbLookups = 0;
        std::uint64_t ataLookups = 0;
        std::uint64_t dramBytes = 0;
        std::uint64_t dramActivations = 0;
    };

    struct ShardCtx
    {
        std::uint32_t id = 0;
        RequestPort nocPort{"stream_cache.noc_side"};
        RequestPort extPort{"stream_cache.ext_side"};
        /**
         * Devirtualized peers of the ports above: the models a shard
         * talks to are fixed at binding time, so the hot path calls
         * their recvAtomic() directly instead of going through two
         * virtual dispatches per leg. The ports stay bound as the
         * authoritative topology record.
         */
        NocModel* noc = nullptr;
        ExtendedMemory* ext = nullptr;
        FaultInjector* fault = nullptr;

        LatencyBreakdown bd;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t uncached = 0;
        std::uint64_t bypasses = 0;
        std::uint64_t writeExceptions = 0;
        std::uint64_t wayPredictions = 0;
        std::uint64_t wayMispredictions = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t failedRedirects = 0;
        std::uint64_t dramFaults = 0;
        std::uint64_t poisonEscalations = 0;
        double sramEnergyNj = 0.0;
        /** Per-stream hit/miss counters (index = sid). */
        std::vector<std::uint64_t> streamHits;
        std::vector<std::uint64_t> streamMisses;
        /** Per-stream service latency (index = sid; kNoStream separate);
         *  excludes core writebacks, mirroring `bd`. */
        std::vector<LatencyBreakdown> streamBd;
        LatencyBreakdown noStreamBd;
        /** Per-stream SRAM/DRAM-cache cost counters. */
        std::vector<StreamCost> streamCost;
        StreamCost noStreamCost;

        StreamCost&
        costFor(StreamId sid)
        {
            if (sid == kNoStream) {
                return noStreamCost;
            }
            if (streamCost.size() <= sid) {
                streamCost.resize(sid + 1);
            }
            return streamCost[sid];
        }

        /** Streams whose first write was observed this interval. */
        std::vector<StreamId> pendingWritten;
        /** Guard: at most one exception per stream per shard. */
        std::vector<bool> writtenSeen;

        /** Proxy tag stores for cross-shard serving units,
         *  keyed (unit << 16) | sid. */
        std::unordered_map<std::uint64_t, TagStore> remoteStores;
        /** Proxy DRAM bank timing for cross-shard serving units. */
        std::unordered_map<UnitId, std::unique_ptr<MemBackend>>
            remoteDrams;

        /**
         * Flat (unit * stride + sid) -> TagStore* memo over the per-unit
         * store maps and remoteStores. Map nodes are pointer-stable
         * until erased, so entries stay valid across inserts; the memo
         * is dropped wholesale whenever tag-store geometry changes
         * (reconfiguration, replica collapse, unit failure -- all of
         * which funnel through clearRemoteStores()).
         */
        std::vector<TagStore*> storeCache;
        std::uint32_t storeCacheStride = 0;

        /** Shard-private pool for victim-writeback scratch packets. */
        PacketPool pool;
    };

    ShardCtx&
    ctxFor(UnitId unit)
    {
        return *ctxs_[sharded_ ? shardOfUnit_[unit] : 0];
    }

    /** The full L1-miss service path (old access()). */
    void handleAccess(ShardCtx& ctx, Packet& pkt);
    void handleWriteback(ShardCtx& ctx, Packet& pkt);

    /** Access path for stream data resident (or installable) in cache. */
    void accessCached(ShardCtx& ctx, UnitId src, const StreamConfig& cfg,
                      Packet& pkt);

    /** One NoC leg: src -> dst (Packet::kCxlEndpoint = portal). */
    void nocLeg(ShardCtx& ctx, Packet& pkt, UnitId src, UnitId dst,
                std::uint32_t bytes);

    /**
     * One extended-memory leg at the packet's current time, including
     * poison escalation; the packet's addr/bytes/op are preserved.
     */
    void extLeg(ShardCtx& ctx, Packet& pkt, Addr addr,
                std::uint32_t bytes, bool is_write);

    /** Direct extended-memory round trip (non-stream or uncached). */
    void bypassToExt(ShardCtx& ctx, UnitId unit, Packet& pkt, Addr addr,
                     std::uint32_t bytes, bool is_write);

    /** Did this cache hit's data suffer an ECC-detected bit fault? */
    bool eccFaultOnHit(ShardCtx& ctx, bool hit);

    /** CXL fetch + DRAM install of a granule at `loc`. */
    void fetchFill(ShardCtx& ctx, Packet& pkt, UnitId unit,
                   const StreamConfig& cfg, std::uint64_t granule,
                   const CacheLocation& loc);

    /** Non-blocking dirty-victim writeback to extended memory. */
    void writebackVictim(ShardCtx& ctx, UnitId unit,
                         const StreamConfig& cfg,
                         std::uint64_t victim_granule, Cycles t);

    /**
     * Baseline metadata lookup at the requesting unit: metadata cache
     * probe, on miss a (possibly remote) DRAM tag access.
     */
    void metadataLookup(ShardCtx& ctx, UnitId unit, Packet& pkt);

    /** Granule id of an access (mode-dependent). */
    std::uint64_t granuleForPacket(const StreamConfig& cfg,
                                   const Packet& pkt) const;

    /** DRAM access at a resolved cache location, charged to `sid`. */
    DramResult dramAt(ShardCtx& ctx, const CacheLocation& loc,
                      std::uint32_t bytes, bool is_write, Cycles t,
                      StreamId sid);

    /** Energy of a stream's cost counters (machine coefficients). */
    double sramEnergyFor(const StreamCost& c) const;
    double dramCacheEnergyFor(const StreamCost& c) const;

    /**
     * The tag store consulted by `ctx` for (unit, sid): the real store
     * for same-shard units, a shard-private proxy otherwise.
     */
    TagStore& storeFor(ShardCtx& ctx, UnitId unit, StreamId sid);

    /** Likewise for the unit's DRAM device. */
    MemBackend& dramFor(ShardCtx& ctx, UnitId unit);

    /**
     * Record a write-to-read-only exception. Inline in non-sharded mode;
     * deferred to the barrier otherwise. Returns true if this call
     * raised (and should be charged) the exception.
     */
    bool raiseWriteException(ShardCtx& ctx, StreamId sid);

    /** Drop all cross-shard tag-store proxies (geometry changed). */
    void clearRemoteStores();

    Addr granuleAddr(const StreamConfig& cfg, std::uint64_t granule) const;
    std::uint32_t granuleFetchBytes(const StreamConfig& cfg) const;

    StreamCacheParams params_;
    StreamTable& streams_;
    NocModel& noc_;
    ExtendedMemory& ext_;
    CpuSidePort cpuSide_{*this};
    std::uint32_t rowBytes_;
    std::uint32_t rowsPerUnit_;
    MemBackendConfig unitDramCfg_;
    std::uint64_t coreFreqMhz_;
    StreamRemapTable remap_;
    std::vector<std::unique_ptr<UnitState>> units_;
    /** Per-unit failed flag (degraded mode). */
    std::vector<bool> unitFailed_;

    bool sharded_ = false;
    /** unit -> owning shard (stack) index; all 0 when not sharded. */
    std::vector<std::uint32_t> shardOfUnit_;
    std::vector<std::unique_ptr<ShardCtx>> ctxs_;

    /** Barrier-side row accounting (reconfigurations, collapses). */
    std::uint64_t invalidatedRows_ = 0;
    std::uint64_t survivedRows_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_NDP_STREAM_CACHE_H
