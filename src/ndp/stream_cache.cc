#include "ndp/stream_cache.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/rng.h"

namespace ndpext {

StreamCacheController::StreamCacheController(
    const StreamCacheParams& params, StreamTable& streams, NocModel& noc,
    ExtendedMemory& ext, const DramTimingParams& unit_dram,
    std::uint64_t unit_cache_bytes, std::uint64_t core_freq_mhz)
    : params_(params), streams_(streams), noc_(noc), ext_(ext),
      rowBytes_(static_cast<std::uint32_t>(unit_dram.rowBytes)),
      rowsPerUnit_(
          static_cast<std::uint32_t>(unit_cache_bytes / unit_dram.rowBytes)),
      remap_(noc.topology().numUnits(), rowsPerUnit_, rowBytes_,
             params.remapMode)
{
    NDP_ASSERT(rowsPerUnit_ > 0, "unit cache smaller than one DRAM row");
    const std::uint32_t n = noc.topology().numUnits();
    units_.reserve(n);
    for (std::uint32_t u = 0; u < n; ++u) {
        units_.push_back(
            std::make_unique<UnitState>(unit_dram, core_freq_mhz, params_));
    }
    unitFailed_.assign(n, false);
}

std::uint32_t
StreamCacheController::granuleOf(const StreamConfig& cfg) const
{
    if (params_.cachelineMode) {
        return kCachelineBytes;
    }
    if (cfg.type == StreamType::Affine) {
        return std::max(params_.affineBlockBytes, cfg.elemSize);
    }
    // Indirect elements are cached individually (Section IV-C), but a
    // DRAM burst is one cacheline, so sub-line elements are grouped into
    // one burst-sized unit (adjacent element ids share it).
    return std::max<std::uint32_t>(cfg.elemSize, kCachelineBytes);
}

std::uint64_t
StreamCacheController::granuleForAccess(const StreamConfig& cfg,
                                        const Access& acc) const
{
    if (params_.cachelineMode) {
        // Baselines track physical 64 B lines.
        return acc.addr / kCachelineBytes;
    }
    return granuleIdOf(cfg, acc.elem);
}

std::uint64_t
StreamCacheController::granuleIdOf(const StreamConfig& cfg,
                                   ElemId elem) const
{
    const std::uint32_t granule = granuleOf(cfg);
    const std::uint64_t elems_per_granule =
        std::max<std::uint64_t>(1, granule / cfg.elemSize);
    return elem / elems_per_granule;
}

Addr
StreamCacheController::granuleAddr(const StreamConfig& cfg,
                                   std::uint64_t granule) const
{
    if (params_.cachelineMode) {
        return granule * kCachelineBytes; // granule is a global line id
    }
    const std::uint32_t g = granuleOf(cfg);
    const std::uint64_t elems_per_granule =
        std::max<std::uint64_t>(1, g / cfg.elemSize);
    const ElemId first = granule * elems_per_granule;
    return cfg.addrOf(std::min<ElemId>(first, cfg.numElems() - 1));
}

std::uint32_t
StreamCacheController::granuleFetchBytes(const StreamConfig& cfg) const
{
    // Extended-memory transfers are at least one cacheline.
    return std::max<std::uint32_t>(granuleOf(cfg), kCachelineBytes);
}

SamplerBank&
StreamCacheController::samplerBank(UnitId unit)
{
    NDP_ASSERT(unit < units_.size());
    return units_[unit]->samplers;
}

const SamplerBank&
StreamCacheController::samplerBank(UnitId unit) const
{
    NDP_ASSERT(unit < units_.size());
    return units_[unit]->samplers;
}

const DramDevice&
StreamCacheController::unitDram(UnitId unit) const
{
    NDP_ASSERT(unit < units_.size());
    return units_[unit]->dram;
}

TagStore&
StreamCacheController::storeFor(UnitId unit, StreamId sid)
{
    auto& stores = units_[unit]->stores;
    auto it = stores.find(sid);
    if (it != stores.end()) {
        return it->second;
    }
    const StreamConfig& cfg = streams_.stream(sid);
    const std::uint32_t ways = params_.cachelineMode
        ? 1
        : (cfg.type == StreamType::Affine ? params_.affineWays
                                          : params_.indirectWays);
    const std::uint64_t slots = remap_.unitSlots(sid, unit);
    auto [ins, ok] = stores.emplace(sid, TagStore(slots, ways));
    NDP_ASSERT(ok);
    return ins->second;
}

DramResult
StreamCacheController::dramAt(const CacheLocation& loc, std::uint32_t bytes,
                              bool is_write, Cycles t)
{
    NDP_ASSERT(!unitFailed(loc.unit),
               "DRAM access on failed unit ", loc.unit);
    DramDevice& dram = units_[loc.unit]->dram;
    const std::uint32_t banks = dram.params().banks;
    const std::uint32_t bank = loc.deviceRow % banks;
    const std::uint64_t row = loc.deviceRow / banks;
    return dram.accessRow(bank, row, bytes, is_write, t);
}

Cycles
StreamCacheController::extAccess(Addr addr, std::uint32_t bytes,
                                 bool is_write, Cycles at)
{
    const CxlResult er = ext_.access(addr, bytes, is_write, at);
    Cycles done = er.done;
    if (er.poisoned) {
        // Poisoned read: the host exception handler repairs the line
        // (re-materialises it from the source copy) and the access
        // completes with the repaired data after the penalty.
        ++poisonEscalations_;
        done += fault_ != nullptr ? fault_->params().poisonPenaltyCycles
                                  : Cycles(0);
    }
    return done;
}

bool
StreamCacheController::eccFaultOnHit(bool hit)
{
    if (!hit || fault_ == nullptr || !fault_->dramBitFault()) {
        return false;
    }
    // ECC detected an uncorrectable bit fault in the cached copy: the
    // data is unusable and must be re-fetched from extended memory.
    ++dramFaults_;
    return true;
}

Cycles
StreamCacheController::bypassToExt(UnitId unit, Addr addr,
                                   std::uint32_t bytes, bool is_write,
                                   Cycles t)
{
    const NocResult to = noc_.transferToCxl(unit, params_.reqBytes, t);
    bd_.icnIntra +=
        static_cast<Cycles>(to.intraHops) * noc_.params().intraHopCycles;
    bd_.icnInter += (to.done - t)
        - static_cast<Cycles>(to.intraHops) * noc_.params().intraHopCycles;
    Cycles at = to.done;

    const Cycles ext_done = extAccess(addr, bytes, is_write, at);
    bd_.extMem += ext_done - at;
    at = ext_done;

    const NocResult back = noc_.transferFromCxl(unit, bytes, at);
    bd_.icnIntra +=
        static_cast<Cycles>(back.intraHops) * noc_.params().intraHopCycles;
    bd_.icnInter += (back.done - at)
        - static_cast<Cycles>(back.intraHops) * noc_.params().intraHopCycles;
    return back.done;
}

Cycles
StreamCacheController::fetchFill(UnitId unit, const StreamConfig& cfg,
                                 std::uint64_t granule,
                                 const CacheLocation& loc, Cycles t)
{
    const std::uint32_t bytes = granuleFetchBytes(cfg);
    const Addr addr = granuleAddr(cfg, granule);

    const NocResult to = noc_.transferToCxl(unit, params_.reqBytes, t);
    bd_.icnIntra +=
        static_cast<Cycles>(to.intraHops) * noc_.params().intraHopCycles;
    bd_.icnInter += (to.done - t)
        - static_cast<Cycles>(to.intraHops) * noc_.params().intraHopCycles;
    Cycles at = to.done;

    const Cycles ext_done = extAccess(addr, bytes, false, at);
    bd_.extMem += ext_done - at;
    at = ext_done;

    const NocResult back = noc_.transferFromCxl(unit, bytes, at);
    bd_.icnIntra +=
        static_cast<Cycles>(back.intraHops) * noc_.params().intraHopCycles;
    bd_.icnInter += (back.done - at)
        - static_cast<Cycles>(back.intraHops) * noc_.params().intraHopCycles;
    at = back.done;

    // Install into the local DRAM row(s); critical word forwarded in
    // parallel, so the requester sees the fill completion time.
    const DramResult dr = dramAt(loc, bytes, true, at);
    bd_.dramCache += dr.done - at;
    return dr.done;
}

void
StreamCacheController::writebackVictim(UnitId unit, const StreamConfig& cfg,
                                       std::uint64_t victim_granule,
                                       Cycles t)
{
    // Off the critical path: reserve bandwidth, do not stall the requester.
    const std::uint32_t bytes = granuleFetchBytes(cfg);
    const NocResult to = noc_.transferToCxl(unit, bytes, t);
    ext_.access(granuleAddr(cfg, victim_granule), bytes, true, to.done);
    ++writebacks_;
}

Cycles
StreamCacheController::metadataLookup(UnitId unit, Addr addr, Cycles t)
{
    SetAssocCache& meta = *units_[unit]->metaCache;
    const std::uint64_t key = addr / params_.metadataGranuleBytes;
    if (meta.access(key, false)) {
        bd_.metadata += params_.metadataHitCycles;
        return t + params_.metadataHitCycles;
    }
    meta.insert(key, false);

    // Metadata lives in DRAM, distributed by address hash; a miss costs a
    // (often remote) DRAM access on the critical path (Section III-B).
    const UnitId home =
        static_cast<UnitId>(mix64(key) % units_.size());
    Cycles at = t;
    if (home != unit) {
        const NocResult nr = noc_.transfer(unit, home, 32, at);
        bd_.icnIntra += static_cast<Cycles>(nr.intraHops)
            * noc_.params().intraHopCycles;
        bd_.icnInter += (nr.done - at)
            - static_cast<Cycles>(nr.intraHops)
                * noc_.params().intraHopCycles;
        at = nr.done;
    }
    const DramResult dr =
        units_[home]->dram.access(key * 4, kCachelineBytes, false, at);
    bd_.metadata += dr.done - at;
    at = dr.done;
    if (home != unit) {
        const Cycles before = at;
        const NocResult nr = noc_.transfer(home, unit, 32, at);
        bd_.icnIntra += static_cast<Cycles>(nr.intraHops)
            * noc_.params().intraHopCycles;
        bd_.icnInter += (nr.done - before)
            - static_cast<Cycles>(nr.intraHops)
                * noc_.params().intraHopCycles;
        at = nr.done;
    }
    return at;
}

MemResult
StreamCacheController::access(CoreId core, const Access& acc, Cycles now)
{
    const UnitId u = core; // one core per NDP unit
    NDP_ASSERT(u < units_.size(), "core=", core);
    ++bd_.requests;
    Cycles t = now;

    if (params_.cachelineMode) {
        // Baselines: per-access metadata lookup instead of the SLB.
        t = metadataLookup(u, acc.addr, t);
    } else if (acc.sid == kNoStream) {
        // SLB TCAM search finds no stream: bypass (rare, Section IV-C).
        t += params_.slbHitCycles;
        bd_.metadata += params_.slbHitCycles;
        sramEnergyNj_ += params_.slbPjPerLookup * 1e-3;
        ++bypasses_;
        return MemResult{bypassToExt(u, acc.addr, kCachelineBytes,
                                     acc.isWrite, t)};
    } else {
        const Cycles slb_lat = units_[u]->slb.lookup(acc.sid);
        t += slb_lat;
        bd_.metadata += slb_lat;
        sramEnergyNj_ += params_.slbPjPerLookup * 1e-3;
    }

    if (acc.sid == kNoStream) {
        ++bypasses_;
        return MemResult{bypassToExt(u, acc.addr, kCachelineBytes,
                                     acc.isWrite, t)};
    }

    StreamConfig& cfg = streams_.stream(acc.sid);
    NDP_ASSERT(cfg.contains(acc.addr), "access outside stream ", cfg.name);

    // Write to a read-only stream: host exception, collapse replicas.
    if (acc.isWrite && cfg.readOnly) {
        streams_.markWritten(acc.sid);
        collapseReplication(acc.sid);
        ++writeExceptions_;
        t += params_.writeExceptionCycles;
        bd_.metadata += params_.writeExceptionCycles;
    }

    // Sampling hardware observes the (granule-level) access.
    const std::uint64_t granule = granuleForAccess(cfg, acc);
    units_[u]->samplers.observe(acc.sid, granule);

    return accessCached(u, cfg, acc, t);
}

namespace {

void
bumpStreamCounter(std::vector<std::uint64_t>& v, StreamId sid)
{
    if (v.size() <= sid) {
        v.resize(sid + 1, 0);
    }
    ++v[sid];
}

} // namespace

std::uint64_t
StreamCacheController::streamHits(StreamId sid) const
{
    return sid < streamHits_.size() ? streamHits_[sid] : 0;
}

std::uint64_t
StreamCacheController::streamMisses(StreamId sid) const
{
    return sid < streamMisses_.size() ? streamMisses_[sid] : 0;
}

MemResult
StreamCacheController::accessCached(UnitId u, const StreamConfig& cfg,
                                    const Access& acc, Cycles t)
{
    const std::uint64_t granule = granuleForAccess(cfg, acc);

    if (remap_.groupSlots(cfg.sid, u) == 0) {
        // No cache space allocated (e.g., affine space restriction or
        // pre-first-epoch): stream directly from extended memory.
        ++uncached_;
        bumpStreamCounter(streamMisses_, cfg.sid);
        return MemResult{bypassToExt(u, acc.addr, kCachelineBytes,
                                     acc.isWrite, t)};
    }

    const CacheLocation loc = remap_.locate(cfg.sid, granule, u);
    if (unitFailed(loc.unit)) {
        // The serving unit's cache slice is gone: degrade to an
        // extended-memory access instead of wedging. The runtime's
        // emergency reconfiguration will re-place the stream.
        ++failedRedirects_;
        ++uncached_;
        bumpStreamCounter(streamMisses_, cfg.sid);
        return MemResult{bypassToExt(u, acc.addr, kCachelineBytes,
                                     acc.isWrite, t)};
    }
    const bool remote = loc.unit != u;

    if (remote) {
        const NocResult nr = noc_.transfer(u, loc.unit, params_.reqBytes, t);
        bd_.icnIntra += static_cast<Cycles>(nr.intraHops)
            * noc_.params().intraHopCycles;
        bd_.icnInter += (nr.done - t)
            - static_cast<Cycles>(nr.intraHops)
                * noc_.params().intraHopCycles;
        t = nr.done;
    }
    t += params_.unitHandlerCycles;

    TagStore& ts = storeFor(loc.unit, cfg.sid);
    if (!ts.usable()) {
        ++uncached_;
        return MemResult{bypassToExt(u, acc.addr, kCachelineBytes,
                                     acc.isWrite, t)};
    }

    if (params_.cachelineMode) {
        // Baseline path: the metadata lookup already resolved the tag;
        // a hit needs one DRAM data access, a miss fetches the line.
        const auto res = ts.accessFill(loc.unitSlot, granule, acc.isWrite);
        if (res.hit && !eccFaultOnHit(true)) {
            ++hits_;
            bumpStreamCounter(streamHits_, cfg.sid);
            const DramResult dr =
                dramAt(loc, kCachelineBytes, acc.isWrite, t);
            bd_.dramCache += dr.done - t;
            t = dr.done;
        } else {
            ++misses_;
            bumpStreamCounter(streamMisses_, cfg.sid);
            if (!res.hit && res.evictedDirty) {
                writebackVictim(loc.unit, cfg, res.evictedKey, t);
            }
            t = fetchFill(loc.unit, cfg, granule, loc, t);
        }
    } else if (cfg.type == StreamType::Affine) {
        // SRAM tag array first; DRAM touched only as needed.
        t += params_.ataCycles;
        bd_.metadata += params_.ataCycles;
        sramEnergyNj_ += params_.ataPjPerLookup * 1e-3;

        const auto res = ts.accessFill(loc.unitSlot, granule, acc.isWrite);
        if (res.hit && !eccFaultOnHit(true)) {
            ++hits_;
            bumpStreamCounter(streamHits_, cfg.sid);
            const DramResult dr =
                dramAt(loc, kCachelineBytes, acc.isWrite, t);
            bd_.dramCache += dr.done - t;
            t = dr.done;
        } else {
            ++misses_;
            bumpStreamCounter(streamMisses_, cfg.sid);
            if (!res.hit && res.evictedDirty) {
                writebackVictim(loc.unit, cfg, res.evictedKey, t);
            }
            t = fetchFill(loc.unit, cfg, granule, loc, t);
        }
    } else {
        // Indirect: tag-with-data. Direct-mapped (default): one DRAM
        // access returns tag + data. Associative without prediction: one
        // wider access reads the whole set. With way prediction, read
        // only the predicted (MRU) way and pay a second access when a
        // hit lands in another way.
        const std::uint32_t set_factor =
            (params_.indirectWays > 1 && !params_.indirectWayPrediction)
            ? params_.indirectWays
            : 1;
        const std::uint32_t probe_bytes = std::min<std::uint32_t>(
            (granuleOf(cfg) + 8) * set_factor, rowBytes_);
        const DramResult dr = dramAt(loc, probe_bytes, acc.isWrite, t);
        bd_.dramCache += dr.done - t;
        t = dr.done;

        const auto res = ts.accessFill(loc.unitSlot, granule, acc.isWrite);
        if (params_.indirectWays > 1 && params_.indirectWayPrediction) {
            ++wayPredictions_;
            if (res.hit && res.way != res.predictedWay) {
                ++wayMispredictions_;
                const DramResult retry = dramAt(
                    loc,
                    std::min<std::uint32_t>(granuleOf(cfg) + 8, rowBytes_),
                    acc.isWrite, t);
                bd_.dramCache += retry.done - t;
                t = retry.done;
            }
        }
        if (res.hit && !eccFaultOnHit(true)) {
            ++hits_;
            bumpStreamCounter(streamHits_, cfg.sid);
        } else {
            ++misses_;
            bumpStreamCounter(streamMisses_, cfg.sid);
            if (!res.hit && res.evictedDirty) {
                writebackVictim(loc.unit, cfg, res.evictedKey, t);
            }
            t = fetchFill(loc.unit, cfg, granule, loc, t);
        }
    }

    if (remote) {
        const Cycles before = t;
        const NocResult nr =
            noc_.transfer(loc.unit, u, params_.rspBytes, t);
        bd_.icnIntra += static_cast<Cycles>(nr.intraHops)
            * noc_.params().intraHopCycles;
        bd_.icnInter += (nr.done - before)
            - static_cast<Cycles>(nr.intraHops)
                * noc_.params().intraHopCycles;
        t = nr.done;
    }
    return MemResult{t};
}

void
StreamCacheController::writeback(CoreId core, Addr line_addr, Cycles now)
{
    const UnitId u = core;
    const StreamId sid = streams_.findByAddr(line_addr);
    if (sid == kNoStream) {
        // Non-stream dirty line: write straight to extended memory.
        const NocResult to =
            noc_.transferToCxl(u, kCachelineBytes, now);
        ext_.access(line_addr, kCachelineBytes, true, to.done);
        return;
    }
    StreamConfig& cfg = streams_.stream(sid);
    if (cfg.readOnly) {
        streams_.markWritten(sid);
        collapseReplication(sid);
        ++writeExceptions_;
    }
    if (remap_.groupSlots(sid, u) == 0) {
        const NocResult to =
            noc_.transferToCxl(u, kCachelineBytes, now);
        ext_.access(line_addr, kCachelineBytes, true, to.done);
        return;
    }
    const std::uint64_t granule = params_.cachelineMode
        ? line_addr / kCachelineBytes
        : granuleIdOf(cfg, cfg.elemIdOf(line_addr));
    const CacheLocation loc = remap_.locate(sid, granule, u);
    if (unitFailed(loc.unit)) {
        // Serving unit is dead: write through to extended memory.
        ++failedRedirects_;
        const NocResult to =
            noc_.transferToCxl(u, kCachelineBytes, now);
        ext_.access(line_addr, kCachelineBytes, true, to.done);
        return;
    }
    if (loc.unit != u) {
        noc_.transfer(u, loc.unit, kCachelineBytes, now);
    }
    TagStore& ts = storeFor(loc.unit, sid);
    if (ts.usable() && ts.probe(loc.unitSlot, granule)) {
        ts.accessFill(loc.unitSlot, granule, true); // mark dirty
        dramAt(loc, kCachelineBytes, true, now);
    } else {
        // Not cached: write through to extended memory.
        const NocResult to =
            noc_.transferToCxl(loc.unit, kCachelineBytes, now);
        ext_.access(line_addr, kCachelineBytes, true, to.done);
    }
}

void
StreamCacheController::collapseReplication(StreamId sid)
{
    const StreamAlloc* cur = remap_.alloc(sid);
    if (cur == nullptr || cur->numGroups <= 1) {
        return;
    }
    // Keep only the serving-group capacity shape but merge all units into
    // one global group; replicas become plain distributed capacity.
    StreamAlloc merged = *cur;
    for (auto& g : merged.groupOf) {
        g = 0;
    }
    merged.numGroups = 1;
    const StreamConfig& cfg = streams_.stream(sid);
    remap_.setAlloc(sid, std::move(merged), granuleOf(cfg), noc_);

    // Invalidate the stream's cached data everywhere (clean: no writeback
    // needed, Section IV-B) and its SLB entries.
    for (UnitId u = 0; u < units_.size(); ++u) {
        auto it = units_[u]->stores.find(sid);
        if (it != units_[u]->stores.end()) {
            invalidatedRows_ += remap_.alloc(sid)->shareRows[u];
            units_[u]->stores.erase(it);
        }
        units_[u]->slb.invalidate(sid);
    }
}

void
StreamCacheController::onUnitFailed(UnitId unit)
{
    NDP_ASSERT(unit < units_.size(), "unit=", unit);
    if (unitFailed_[unit]) {
        return;
    }

    // Replication groups spanning the failed unit lose a replica: the
    // same Section IV-B exception path that handles a first write also
    // collapses them to one global group. Do this before marking the
    // unit failed so the collapse can still count its rows.
    for (std::uint32_t s = 0; s < streams_.numStreams(); ++s) {
        const StreamId sid = static_cast<StreamId>(s);
        const StreamAlloc* alloc = remap_.alloc(sid);
        if (alloc == nullptr || alloc->numGroups <= 1) {
            continue;
        }
        if (unit < alloc->shareRows.size()
            && alloc->shareRows[unit] > 0) {
            collapseReplication(sid);
        }
    }

    unitFailed_[unit] = true;

    // The unit's cache slice, tag stores and sampler state are gone.
    // Accesses hashing there redirect to extended memory until the
    // runtime installs a fresh configuration around the unit.
    for (const auto& [sid, store] : units_[unit]->stores) {
        const StreamAlloc* alloc = remap_.alloc(sid);
        if (alloc != nullptr && unit < alloc->shareRows.size()) {
            invalidatedRows_ += alloc->shareRows[unit];
        }
    }
    units_[unit]->stores.clear();
    units_[unit]->slb.invalidateAll();
    units_[unit]->samplers.newEpoch();
}

void
StreamCacheController::applyConfiguration(
    const std::vector<std::pair<StreamId, StreamAlloc>>& allocs)
{
    // A reconfiguration repartitions the whole cache: streams absent from
    // the new scheme lose their space (and their cached data).
    std::vector<bool> in_config(streams_.numStreams(), false);
    for (const auto& [sid, alloc] : allocs) {
        (void)alloc;
        if (sid < in_config.size()) {
            in_config[sid] = true;
        }
    }
    for (std::size_t s = 0; s < in_config.size(); ++s) {
        const StreamId sid = static_cast<StreamId>(s);
        if (in_config[s] || remap_.alloc(sid) == nullptr) {
            continue;
        }
        invalidatedRows_ += remap_.alloc(sid)->totalRows();
        remap_.clearAlloc(sid);
        for (auto& unit : units_) {
            unit->stores.erase(sid);
        }
    }

    for (const auto& [sid, alloc] : allocs) {
        const StreamConfig& cfg = streams_.stream(sid);
        const std::uint32_t granule = granuleOf(cfg);
        const std::uint32_t ways = params_.cachelineMode
            ? 1
            : (cfg.type == StreamType::Affine ? params_.affineWays
                                              : params_.indirectWays);

        // Capture the outgoing stores to carry surviving rows over.
        std::unordered_map<UnitId, TagStore> old_stores;
        std::uint64_t old_rows = 0;
        const StreamAlloc* prev = remap_.alloc(sid);
        if (prev != nullptr) {
            old_rows = prev->totalRows();
            for (UnitId u = 0; u < units_.size(); ++u) {
                auto it = units_[u]->stores.find(sid);
                if (it != units_[u]->stores.end()) {
                    old_stores.emplace(u, std::move(it->second));
                    units_[u]->stores.erase(it);
                }
            }
        }

        remap_.setAlloc(sid, alloc, granule, noc_);

        // Build fresh stores for every unit with space.
        for (UnitId u = 0; u < units_.size(); ++u) {
            const std::uint64_t slots = remap_.unitSlots(sid, u);
            if (slots == 0) {
                continue;
            }
            units_[u]->stores.emplace(sid, TagStore(slots, ways));
        }

        // Carry rows preserved by consistent hashing.
        const auto& surviving = remap_.survivingRows(sid);
        const std::uint64_t sets_per_row = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(rowBytes_) / granule / ways);
        for (const auto& row : surviving) {
            auto oit = old_stores.find(row.unit);
            auto nit = units_[row.unit]->stores.find(sid);
            if (oit == old_stores.end()
                || nit == units_[row.unit]->stores.end()) {
                continue;
            }
            nit->second.copyRange(
                oit->second,
                static_cast<std::uint64_t>(row.oldRowOffset) * sets_per_row,
                static_cast<std::uint64_t>(row.newRowOffset) * sets_per_row,
                sets_per_row);
        }
        const std::uint64_t survived = surviving.size();
        survivedRows_ += survived;
        invalidatedRows_ += old_rows > survived ? old_rows - survived : 0;
    }

    remap_.validateCapacity();

    // Remap-table contents changed: all SLB copies are stale.
    for (auto& unit : units_) {
        unit->slb.invalidateAll();
    }
}

std::uint64_t
StreamCacheController::slbMissTotal() const
{
    std::uint64_t total = 0;
    for (const auto& unit : units_) {
        total += unit->slb.misses();
    }
    return total;
}

double
StreamCacheController::missRate() const
{
    const double denom = static_cast<double>(hits_ + misses_ + uncached_);
    return denom == 0.0
        ? 0.0
        : static_cast<double>(misses_ + uncached_) / denom;
}

double
StreamCacheController::wayPredictionRate() const
{
    if (wayPredictions_ == 0) {
        return 1.0;
    }
    return 1.0
        - static_cast<double>(wayMispredictions_)
            / static_cast<double>(wayPredictions_);
}

double
StreamCacheController::metadataHitRate() const
{
    if (!params_.cachelineMode) {
        return 1.0;
    }
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& unit : units_) {
        hits += unit->metaCache->hits();
        misses += unit->metaCache->misses();
    }
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 1.0 : static_cast<double>(hits) / total;
}

double
StreamCacheController::dramCacheEnergyNj() const
{
    double total = 0.0;
    for (const auto& unit : units_) {
        total += unit->dram.dynamicEnergyNj();
    }
    return total;
}

void
StreamCacheController::report(StatGroup& stats,
                              const std::string& prefix) const
{
    bd_.report(stats, prefix + ".lat");
    stats.add(prefix + ".hits", static_cast<double>(hits_));
    stats.add(prefix + ".misses", static_cast<double>(misses_));
    stats.add(prefix + ".uncached", static_cast<double>(uncached_));
    stats.add(prefix + ".bypasses", static_cast<double>(bypasses_));
    stats.add(prefix + ".writeExceptions",
              static_cast<double>(writeExceptions_));
    stats.add(prefix + ".writebacks", static_cast<double>(writebacks_));
    stats.add(prefix + ".invalidatedRows",
              static_cast<double>(invalidatedRows_));
    stats.add(prefix + ".survivedRows", static_cast<double>(survivedRows_));
    stats.add(prefix + ".slbMisses",
              static_cast<double>(slbMissTotal()));
    stats.add(prefix + ".degraded.failedUnitRedirects",
              static_cast<double>(failedRedirects_));
    stats.add(prefix + ".degraded.dramFaultRefetches",
              static_cast<double>(dramFaults_));
    stats.add(prefix + ".degraded.poisonEscalations",
              static_cast<double>(poisonEscalations_));
    stats.add(prefix + ".dramCacheEnergyNj", dramCacheEnergyNj());
    stats.add(prefix + ".sramEnergyNj", sramEnergyNj_);
}

} // namespace ndpext
