#include "ndp/stream_cache.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/metric_registry.h"

namespace ndpext {

StreamCacheController::StreamCacheController(
    const StreamCacheParams& params, StreamTable& streams, NocModel& noc,
    ExtendedMemory& ext, const MemBackendConfig& unit_dram,
    std::uint64_t unit_cache_bytes, std::uint64_t core_freq_mhz)
    : MemObject("stream_cache"), params_(params), streams_(streams),
      noc_(noc), ext_(ext),
      rowBytes_(static_cast<std::uint32_t>(unit_dram.timing.rowBytes)),
      rowsPerUnit_(
          static_cast<std::uint32_t>(unit_cache_bytes
                                     / unit_dram.timing.rowBytes)),
      unitDramCfg_(unit_dram), coreFreqMhz_(core_freq_mhz),
      remap_(noc.topology().numUnits(), rowsPerUnit_, rowBytes_,
             params.remapMode)
{
    NDP_ASSERT(rowsPerUnit_ > 0, "unit cache smaller than one DRAM row");
    const std::uint32_t n = noc.topology().numUnits();
    units_.reserve(n);
    for (std::uint32_t u = 0; u < n; ++u) {
        units_.push_back(
            std::make_unique<UnitState>(unit_dram, core_freq_mhz, params_));
    }
    unitFailed_.assign(n, false);
    shardOfUnit_.assign(n, 0);

    // Single default context covering every unit, wired to the
    // constructor's NoC/ext models (exact legacy behavior).
    auto ctx = std::make_unique<ShardCtx>();
    ctx->nocPort.bind(noc_.port("in"));
    ctx->extPort.bind(ext_.port("in"));
    ctx->noc = &noc_;
    ctx->ext = &ext_;
    ctxs_.push_back(std::move(ctx));
}

void
StreamCacheController::enableSharding(
    const std::vector<ShardResources>& resources)
{
    const MeshTopology& topo = noc_.topology();
    NDP_ASSERT(resources.size() == topo.numStacks(),
               "need one ShardResources per stack: ", resources.size(),
               " != ", topo.numStacks());
    sharded_ = true;
    for (UnitId u = 0; u < units_.size(); ++u) {
        shardOfUnit_[u] = topo.stackOf(u);
    }
    ctxs_.clear();
    for (std::size_t s = 0; s < resources.size(); ++s) {
        const ShardResources& res = resources[s];
        NDP_ASSERT(res.noc != nullptr && res.ext != nullptr,
                   "shard ", s, " missing NoC/ext models");
        auto ctx = std::make_unique<ShardCtx>();
        ctx->id = static_cast<std::uint32_t>(s);
        ctx->nocPort.bind(res.noc->port("in"));
        ctx->extPort.bind(res.ext->port("in"));
        ctx->noc = res.noc;
        ctx->ext = res.ext;
        ctx->fault = res.fault;
        ctxs_.push_back(std::move(ctx));
    }
}

void
StreamCacheController::setFaultInjector(FaultInjector* fault)
{
    for (auto& ctx : ctxs_) {
        ctx->fault = fault;
    }
}

std::uint32_t
StreamCacheController::granuleOf(const StreamConfig& cfg) const
{
    if (params_.cachelineMode) {
        return kCachelineBytes;
    }
    if (cfg.type == StreamType::Affine) {
        return std::max(params_.affineBlockBytes, cfg.elemSize);
    }
    // Indirect elements are cached individually (Section IV-C), but a
    // DRAM burst is one cacheline, so sub-line elements are grouped into
    // one burst-sized unit (adjacent element ids share it).
    return std::max<std::uint32_t>(cfg.elemSize, kCachelineBytes);
}

std::uint64_t
StreamCacheController::granuleForPacket(const StreamConfig& cfg,
                                        const Packet& pkt) const
{
    if (params_.cachelineMode) {
        // Baselines track physical 64 B lines.
        return pkt.addr / kCachelineBytes;
    }
    return granuleIdOf(cfg, pkt.elem);
}

std::uint64_t
StreamCacheController::granuleIdOf(const StreamConfig& cfg,
                                   ElemId elem) const
{
    const std::uint32_t granule = granuleOf(cfg);
    const std::uint64_t elems_per_granule =
        std::max<std::uint64_t>(1, granule / cfg.elemSize);
    return elem / elems_per_granule;
}

Addr
StreamCacheController::granuleAddr(const StreamConfig& cfg,
                                   std::uint64_t granule) const
{
    if (params_.cachelineMode) {
        return granule * kCachelineBytes; // granule is a global line id
    }
    const std::uint32_t g = granuleOf(cfg);
    const std::uint64_t elems_per_granule =
        std::max<std::uint64_t>(1, g / cfg.elemSize);
    const ElemId first = granule * elems_per_granule;
    return cfg.addrOf(std::min<ElemId>(first, cfg.numElems() - 1));
}

std::uint32_t
StreamCacheController::granuleFetchBytes(const StreamConfig& cfg) const
{
    // Extended-memory transfers are at least one cacheline.
    return std::max<std::uint32_t>(granuleOf(cfg), kCachelineBytes);
}

SamplerBank&
StreamCacheController::samplerBank(UnitId unit)
{
    NDP_ASSERT(unit < units_.size());
    return units_[unit]->samplers;
}

const SamplerBank&
StreamCacheController::samplerBank(UnitId unit) const
{
    NDP_ASSERT(unit < units_.size());
    return units_[unit]->samplers;
}

const MemBackend&
StreamCacheController::unitDram(UnitId unit) const
{
    NDP_ASSERT(unit < units_.size());
    return *units_[unit]->dram;
}

TagStore&
StreamCacheController::storeFor(ShardCtx& ctx, UnitId unit, StreamId sid)
{
    // Memoized fast path: hash lookups into the store maps dominated
    // the access path; a flat pointer table turns the common repeat
    // lookup into one load. Map nodes are stable until erased, and
    // every erase point drops the memo via clearRemoteStores().
    const std::uint32_t stride =
        static_cast<std::uint32_t>(streams_.numStreams());
    if (ctx.storeCacheStride != stride) {
        ctx.storeCache.assign(
            units_.size() * static_cast<std::size_t>(stride), nullptr);
        ctx.storeCacheStride = stride;
    }
    const std::size_t memo =
        static_cast<std::size_t>(unit) * stride + sid;
    if (TagStore* cached = ctx.storeCache[memo]) {
        return *cached;
    }

    TagStore* found = nullptr;
    if (!sharded_ || shardOfUnit_[unit] == ctx.id) {
        auto& stores = units_[unit]->stores;
        auto it = stores.find(sid);
        if (it != stores.end()) {
            found = &it->second;
        } else {
            const StreamConfig& cfg = streams_.stream(sid);
            const std::uint32_t ways = params_.cachelineMode
                ? 1
                : (cfg.type == StreamType::Affine ? params_.affineWays
                                                  : params_.indirectWays);
            const std::uint64_t slots = remap_.unitSlots(sid, unit);
            auto [ins, ok] = stores.emplace(sid, TagStore(slots, ways));
            NDP_ASSERT(ok);
            found = &ins->second;
        }
    } else {
        // Cross-shard serving unit: consult a shard-private proxy built
        // from the shared (read-only between barriers) remap geometry.
        // The proxy approximates the remote slice's tag state with this
        // shard's own access history -- deterministic for any thread
        // count.
        const std::uint64_t key =
            (static_cast<std::uint64_t>(unit) << 16) | sid;
        auto it = ctx.remoteStores.find(key);
        if (it != ctx.remoteStores.end()) {
            found = &it->second;
        } else {
            const StreamConfig& cfg = streams_.stream(sid);
            const std::uint32_t ways = params_.cachelineMode
                ? 1
                : (cfg.type == StreamType::Affine ? params_.affineWays
                                                  : params_.indirectWays);
            const std::uint64_t slots = remap_.unitSlots(sid, unit);
            found = &ctx.remoteStores.emplace(key, TagStore(slots, ways))
                         .first->second;
        }
    }
    ctx.storeCache[memo] = found;
    return *found;
}

MemBackend&
StreamCacheController::dramFor(ShardCtx& ctx, UnitId unit)
{
    if (!sharded_ || shardOfUnit_[unit] == ctx.id) {
        return *units_[unit]->dram;
    }
    auto it = ctx.remoteDrams.find(unit);
    if (it == ctx.remoteDrams.end()) {
        it = ctx.remoteDrams
                 .emplace(unit, createMemBackend(unitDramCfg_,
                                                 coreFreqMhz_))
                 .first;
    }
    return *it->second;
}

DramResult
StreamCacheController::dramAt(ShardCtx& ctx, const CacheLocation& loc,
                              std::uint32_t bytes, bool is_write, Cycles t,
                              StreamId sid)
{
    NDP_ASSERT(!unitFailed(loc.unit),
               "DRAM access on failed unit ", loc.unit);
    MemBackend& dram = dramFor(ctx, loc.unit);
    const std::uint32_t banks = dram.params().totalBanks();
    const std::uint32_t bank = loc.deviceRow % banks;
    const std::uint64_t row = loc.deviceRow / banks;
    const DramResult dr = dram.accessRow(bank, row, bytes, is_write, t);
    StreamCost& cost = ctx.costFor(sid);
    cost.dramBytes += bytes;
    if (!dr.rowHit) {
        ++cost.dramActivations; // backends activate on every non-hit
    }
    return dr;
}

void
StreamCacheController::nocLeg(ShardCtx& ctx, Packet& pkt, UnitId src,
                              UnitId dst, std::uint32_t bytes)
{
    pkt.hopSrc = src;
    pkt.hopDst = dst;
    pkt.bytes = bytes;
    ctx.noc->recvAtomic(pkt); // devirtualized ctx.nocPort.sendAtomic

}

void
StreamCacheController::extLeg(ShardCtx& ctx, Packet& pkt, Addr addr,
                              std::uint32_t bytes, bool is_write)
{
    const Addr addr0 = pkt.addr;
    const std::uint32_t bytes0 = pkt.bytes;
    const MemOp op0 = pkt.op;
    pkt.addr = addr;
    pkt.bytes = bytes;
    pkt.op = is_write ? MemOp::Write : MemOp::Read;
    ctx.ext->recvAtomic(pkt); // devirtualized ctx.extPort.sendAtomic
    if (pkt.poisoned) {
        // Poisoned read: the host exception handler repairs the line
        // (re-materialises it from the source copy) and the access
        // completes with the repaired data after the penalty.
        ++ctx.poisonEscalations;
        const Cycles penalty = ctx.fault != nullptr
            ? ctx.fault->params().poisonPenaltyCycles
            : Cycles(0);
        pkt.ready += penalty;
        pkt.bd.extMem += penalty;
        pkt.poisoned = false;
    }
    pkt.addr = addr0;
    pkt.bytes = bytes0;
    pkt.op = op0;
}

bool
StreamCacheController::eccFaultOnHit(ShardCtx& ctx, bool hit)
{
    if (!hit || ctx.fault == nullptr || !ctx.fault->dramBitFault()) {
        return false;
    }
    // ECC detected an uncorrectable bit fault in the cached copy: the
    // data is unusable and must be re-fetched from extended memory.
    ++ctx.dramFaults;
    return true;
}

void
StreamCacheController::bypassToExt(ShardCtx& ctx, UnitId unit, Packet& pkt,
                                   Addr addr, std::uint32_t bytes,
                                   bool is_write)
{
    nocLeg(ctx, pkt, unit, Packet::kCxlEndpoint, params_.reqBytes);
    extLeg(ctx, pkt, addr, bytes, is_write);
    nocLeg(ctx, pkt, Packet::kCxlEndpoint, unit, bytes);
}

void
StreamCacheController::fetchFill(ShardCtx& ctx, Packet& pkt, UnitId unit,
                                 const StreamConfig& cfg,
                                 std::uint64_t granule,
                                 const CacheLocation& loc)
{
    const std::uint32_t bytes = granuleFetchBytes(cfg);
    const Addr addr = granuleAddr(cfg, granule);

    nocLeg(ctx, pkt, unit, Packet::kCxlEndpoint, params_.reqBytes);
    extLeg(ctx, pkt, addr, bytes, false);
    nocLeg(ctx, pkt, Packet::kCxlEndpoint, unit, bytes);

    // Install into the local DRAM row(s); critical word forwarded in
    // parallel, so the requester sees the fill completion time.
    const DramResult dr = dramAt(ctx, loc, bytes, true, pkt.ready, cfg.sid);
    pkt.bd.dramCache += dr.done - pkt.ready;
    pkt.ready = dr.done;
}

void
StreamCacheController::writebackVictim(ShardCtx& ctx, UnitId unit,
                                       const StreamConfig& cfg,
                                       std::uint64_t victim_granule,
                                       Cycles t)
{
    // Off the critical path: reserve bandwidth, do not stall the
    // requester. The scratch packet's latency breakdown is discarded.
    const std::uint32_t bytes = granuleFetchBytes(cfg);
    Packet* wb = ctx.pool.acquire();
    wb->addr = granuleAddr(cfg, victim_granule);
    wb->op = MemOp::Writeback;
    wb->src = kNoUnit;
    wb->ready = t;
    wb->sid = cfg.sid; // the victim's stream owns the writeback energy
    nocLeg(ctx, *wb, unit, Packet::kCxlEndpoint, bytes);
    extLeg(ctx, *wb, wb->addr, bytes, true);
    ctx.pool.release(wb);
    ++ctx.writebacks;
}

void
StreamCacheController::metadataLookup(ShardCtx& ctx, UnitId unit,
                                      Packet& pkt)
{
    SetAssocCache& meta = *units_[unit]->metaCache;
    const std::uint64_t key = pkt.addr / params_.metadataGranuleBytes;
    if (meta.access(key, false)) {
        pkt.bd.metadata += params_.metadataHitCycles;
        pkt.ready += params_.metadataHitCycles;
        return;
    }
    meta.insert(key, false);

    // Metadata lives in DRAM, distributed by address hash; a miss costs a
    // (often remote) DRAM access on the critical path (Section III-B).
    const UnitId home =
        static_cast<UnitId>(mix64(key) % units_.size());
    if (home != unit) {
        nocLeg(ctx, pkt, unit, home, 32);
    }
    const DramResult dr = dramFor(ctx, home).access(
        key * 4, kCachelineBytes, false, pkt.ready);
    StreamCost& cost = ctx.costFor(pkt.sid);
    cost.dramBytes += kCachelineBytes;
    if (!dr.rowHit) {
        ++cost.dramActivations;
    }
    pkt.bd.metadata += dr.done - pkt.ready;
    pkt.ready = dr.done;
    if (home != unit) {
        nocLeg(ctx, pkt, home, unit, 32);
    }
}

bool
StreamCacheController::raiseWriteException(ShardCtx& ctx, StreamId sid)
{
    if (!sharded_) {
        // Inline: flip the stream to writable and collapse replicas now.
        streams_.markWritten(sid);
        collapseReplication(sid);
        ++ctx.writeExceptions;
        return true;
    }
    // Deferred: the global side effects land at the next barrier. Each
    // shard raises (and charges) the exception at most once per stream.
    if (sid < ctx.writtenSeen.size() && ctx.writtenSeen[sid]) {
        return false;
    }
    if (ctx.writtenSeen.size() <= sid) {
        ctx.writtenSeen.resize(sid + 1, false);
    }
    ctx.writtenSeen[sid] = true;
    ctx.pendingWritten.push_back(sid);
    ++ctx.writeExceptions;
    return true;
}

void
StreamCacheController::applyDeferredWriteExceptions()
{
    if (!sharded_) {
        return;
    }
    std::vector<StreamId> sids;
    for (auto& ctx : ctxs_) {
        sids.insert(sids.end(), ctx->pendingWritten.begin(),
                    ctx->pendingWritten.end());
        ctx->pendingWritten.clear();
    }
    if (sids.empty()) {
        return;
    }
    std::sort(sids.begin(), sids.end());
    sids.erase(std::unique(sids.begin(), sids.end()), sids.end());
    for (const StreamId sid : sids) {
        if (streams_.stream(sid).readOnly) {
            streams_.markWritten(sid);
            collapseReplication(sid);
        }
    }
}

void
StreamCacheController::handleRequest(Packet& pkt)
{
    ShardCtx& ctx = ctxFor(pkt.src); // one core per NDP unit
    if (pkt.op == MemOp::Writeback) {
        handleWriteback(ctx, pkt);
        return;
    }
    handleAccess(ctx, pkt);
    pkt.bd.requests += 1;
    ctx.bd.merge(pkt.bd);
    if (pkt.sid == kNoStream) {
        ctx.noStreamBd.merge(pkt.bd);
    } else {
        if (ctx.streamBd.size() <= pkt.sid) {
            ctx.streamBd.resize(pkt.sid + 1);
        }
        ctx.streamBd[pkt.sid].merge(pkt.bd);
    }
}

MemResult
StreamCacheController::access(CoreId core, const Access& acc, Cycles now)
{
    Packet pkt = Packet::request(acc, core, now);
    handleRequest(pkt);
    return MemResult{pkt.ready};
}

void
StreamCacheController::writeback(CoreId core, Addr line_addr, Cycles now)
{
    Packet pkt = Packet::writeback(line_addr, core, now);
    handleRequest(pkt);
}

namespace {

void
bumpStreamCounter(std::vector<std::uint64_t>& v, StreamId sid)
{
    if (v.size() <= sid) {
        v.resize(sid + 1, 0);
    }
    ++v[sid];
}

} // namespace

void
StreamCacheController::handleAccess(ShardCtx& ctx, Packet& pkt)
{
    const UnitId u = pkt.src;
    NDP_ASSERT(u < units_.size(), "core=", pkt.src);

    if (params_.cachelineMode) {
        // Baselines: per-access metadata lookup instead of the SLB.
        metadataLookup(ctx, u, pkt);
    } else if (pkt.sid == kNoStream) {
        // SLB TCAM search finds no stream: bypass (rare, Section IV-C).
        pkt.ready += params_.slbHitCycles;
        pkt.bd.metadata += params_.slbHitCycles;
        ctx.sramEnergyNj += params_.slbPjPerLookup * 1e-3;
        ++ctx.noStreamCost.slbLookups;
        ++ctx.bypasses;
        bypassToExt(ctx, u, pkt, pkt.addr, kCachelineBytes,
                    pkt.isWrite());
        return;
    } else {
        const Cycles slb_lat = units_[u]->slb.lookup(pkt.sid);
        pkt.ready += slb_lat;
        pkt.bd.metadata += slb_lat;
        ctx.sramEnergyNj += params_.slbPjPerLookup * 1e-3;
        ++ctx.costFor(pkt.sid).slbLookups;
    }

    if (pkt.sid == kNoStream) {
        ++ctx.bypasses;
        bypassToExt(ctx, u, pkt, pkt.addr, kCachelineBytes,
                    pkt.isWrite());
        return;
    }

    const StreamConfig& cfg = streams_.stream(pkt.sid);
    NDP_ASSERT(cfg.contains(pkt.addr), "access outside stream ", cfg.name);

    // Write to a read-only stream: host exception, collapse replicas.
    if (pkt.isWrite() && cfg.readOnly
        && raiseWriteException(ctx, pkt.sid)) {
        pkt.ready += params_.writeExceptionCycles;
        pkt.bd.metadata += params_.writeExceptionCycles;
    }

    // Sampling hardware observes the (granule-level) access.
    const std::uint64_t granule = granuleForPacket(cfg, pkt);
    units_[u]->samplers.observe(pkt.sid, granule);

    accessCached(ctx, u, cfg, pkt);
}

std::uint64_t
StreamCacheController::streamHits(StreamId sid) const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += sid < ctx->streamHits.size() ? ctx->streamHits[sid] : 0;
    }
    return total;
}

std::uint64_t
StreamCacheController::streamMisses(StreamId sid) const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total +=
            sid < ctx->streamMisses.size() ? ctx->streamMisses[sid] : 0;
    }
    return total;
}

void
StreamCacheController::accessCached(ShardCtx& ctx, UnitId u,
                                    const StreamConfig& cfg, Packet& pkt)
{
    const std::uint64_t granule = granuleForPacket(cfg, pkt);

    if (remap_.groupSlots(cfg.sid, u) == 0) {
        // No cache space allocated (e.g., affine space restriction or
        // pre-first-epoch): stream directly from extended memory.
        ++ctx.uncached;
        bumpStreamCounter(ctx.streamMisses, cfg.sid);
        bypassToExt(ctx, u, pkt, pkt.addr, kCachelineBytes,
                    pkt.isWrite());
        return;
    }

    const CacheLocation loc = remap_.locate(cfg.sid, granule, u);
    if (unitFailed(loc.unit)) {
        // The serving unit's cache slice is gone: degrade to an
        // extended-memory access instead of wedging. The runtime's
        // emergency reconfiguration will re-place the stream.
        ++ctx.failedRedirects;
        ++ctx.uncached;
        bumpStreamCounter(ctx.streamMisses, cfg.sid);
        bypassToExt(ctx, u, pkt, pkt.addr, kCachelineBytes,
                    pkt.isWrite());
        return;
    }
    const bool remote = loc.unit != u;

    if (remote) {
        nocLeg(ctx, pkt, u, loc.unit, params_.reqBytes);
    }
    pkt.ready += params_.unitHandlerCycles;
    pkt.bd.metadata += params_.unitHandlerCycles;

    TagStore& ts = storeFor(ctx, loc.unit, cfg.sid);
    if (!ts.usable()) {
        ++ctx.uncached;
        bypassToExt(ctx, u, pkt, pkt.addr, kCachelineBytes,
                    pkt.isWrite());
        return;
    }

    const bool is_write = pkt.isWrite();
    if (params_.cachelineMode) {
        // Baseline path: the metadata lookup already resolved the tag;
        // a hit needs one DRAM data access, a miss fetches the line.
        const auto res = ts.accessFill(loc.unitSlot, granule, is_write);
        if (res.hit && !eccFaultOnHit(ctx, true)) {
            ++ctx.hits;
            bumpStreamCounter(ctx.streamHits, cfg.sid);
            const DramResult dr = dramAt(ctx, loc, kCachelineBytes,
                                         is_write, pkt.ready, cfg.sid);
            pkt.bd.dramCache += dr.done - pkt.ready;
            pkt.ready = dr.done;
        } else {
            ++ctx.misses;
            bumpStreamCounter(ctx.streamMisses, cfg.sid);
            if (!res.hit && res.evictedDirty) {
                writebackVictim(ctx, loc.unit, cfg, res.evictedKey,
                                pkt.ready);
            }
            fetchFill(ctx, pkt, loc.unit, cfg, granule, loc);
        }
    } else if (cfg.type == StreamType::Affine) {
        // SRAM tag array first; DRAM touched only as needed.
        pkt.ready += params_.ataCycles;
        pkt.bd.metadata += params_.ataCycles;
        ctx.sramEnergyNj += params_.ataPjPerLookup * 1e-3;
        ++ctx.costFor(cfg.sid).ataLookups;

        const auto res = ts.accessFill(loc.unitSlot, granule, is_write);
        if (res.hit && !eccFaultOnHit(ctx, true)) {
            ++ctx.hits;
            bumpStreamCounter(ctx.streamHits, cfg.sid);
            const DramResult dr = dramAt(ctx, loc, kCachelineBytes,
                                         is_write, pkt.ready, cfg.sid);
            pkt.bd.dramCache += dr.done - pkt.ready;
            pkt.ready = dr.done;
        } else {
            ++ctx.misses;
            bumpStreamCounter(ctx.streamMisses, cfg.sid);
            if (!res.hit && res.evictedDirty) {
                writebackVictim(ctx, loc.unit, cfg, res.evictedKey,
                                pkt.ready);
            }
            fetchFill(ctx, pkt, loc.unit, cfg, granule, loc);
        }
    } else {
        // Indirect: tag-with-data. Direct-mapped (default): one DRAM
        // access returns tag + data. Associative without prediction: one
        // wider access reads the whole set. With way prediction, read
        // only the predicted (MRU) way and pay a second access when a
        // hit lands in another way.
        const std::uint32_t set_factor =
            (params_.indirectWays > 1 && !params_.indirectWayPrediction)
            ? params_.indirectWays
            : 1;
        const std::uint32_t probe_bytes = std::min<std::uint32_t>(
            (granuleOf(cfg) + 8) * set_factor, rowBytes_);
        const DramResult dr =
            dramAt(ctx, loc, probe_bytes, is_write, pkt.ready, cfg.sid);
        pkt.bd.dramCache += dr.done - pkt.ready;
        pkt.ready = dr.done;

        const auto res = ts.accessFill(loc.unitSlot, granule, is_write);
        if (params_.indirectWays > 1 && params_.indirectWayPrediction) {
            ++ctx.wayPredictions;
            if (res.hit && res.way != res.predictedWay) {
                ++ctx.wayMispredictions;
                const DramResult retry = dramAt(
                    ctx, loc,
                    std::min<std::uint32_t>(granuleOf(cfg) + 8, rowBytes_),
                    is_write, pkt.ready, cfg.sid);
                pkt.bd.dramCache += retry.done - pkt.ready;
                pkt.ready = retry.done;
            }
        }
        if (res.hit && !eccFaultOnHit(ctx, true)) {
            ++ctx.hits;
            bumpStreamCounter(ctx.streamHits, cfg.sid);
        } else {
            ++ctx.misses;
            bumpStreamCounter(ctx.streamMisses, cfg.sid);
            if (!res.hit && res.evictedDirty) {
                writebackVictim(ctx, loc.unit, cfg, res.evictedKey,
                                pkt.ready);
            }
            fetchFill(ctx, pkt, loc.unit, cfg, granule, loc);
        }
    }

    if (remote) {
        nocLeg(ctx, pkt, loc.unit, u, params_.rspBytes);
    }
}

void
StreamCacheController::handleWriteback(ShardCtx& ctx, Packet& pkt)
{
    const UnitId u = pkt.src;
    const Addr line_addr = pkt.addr;
    const Cycles now = pkt.ready;
    const StreamId sid = streams_.findByAddr(line_addr);
    if (sid == kNoStream) {
        // Non-stream dirty line: write straight to extended memory.
        nocLeg(ctx, pkt, u, Packet::kCxlEndpoint, kCachelineBytes);
        extLeg(ctx, pkt, line_addr, kCachelineBytes, true);
        return;
    }
    const StreamConfig& cfg = streams_.stream(sid);
    pkt.sid = sid; // the owning stream pays the writeback energy
    if (cfg.readOnly) {
        raiseWriteException(ctx, sid);
    }
    if (remap_.groupSlots(sid, u) == 0) {
        nocLeg(ctx, pkt, u, Packet::kCxlEndpoint, kCachelineBytes);
        extLeg(ctx, pkt, line_addr, kCachelineBytes, true);
        return;
    }
    const std::uint64_t granule = params_.cachelineMode
        ? line_addr / kCachelineBytes
        : granuleIdOf(cfg, cfg.elemIdOf(line_addr));
    const CacheLocation loc = remap_.locate(sid, granule, u);
    if (unitFailed(loc.unit)) {
        // Serving unit is dead: write through to extended memory.
        ++ctx.failedRedirects;
        nocLeg(ctx, pkt, u, Packet::kCxlEndpoint, kCachelineBytes);
        extLeg(ctx, pkt, line_addr, kCachelineBytes, true);
        return;
    }
    if (loc.unit != u) {
        nocLeg(ctx, pkt, u, loc.unit, kCachelineBytes);
        pkt.ready = now; // fire-and-forget: requester is not stalled
    }
    TagStore& ts = storeFor(ctx, loc.unit, sid);
    if (ts.usable() && ts.probe(loc.unitSlot, granule)) {
        ts.accessFill(loc.unitSlot, granule, true); // mark dirty
        dramAt(ctx, loc, kCachelineBytes, true, now, sid);
    } else {
        // Not cached: write through to extended memory.
        nocLeg(ctx, pkt, loc.unit, Packet::kCxlEndpoint, kCachelineBytes);
        extLeg(ctx, pkt, line_addr, kCachelineBytes, true);
    }
}

void
StreamCacheController::clearRemoteStores()
{
    for (auto& ctx : ctxs_) {
        ctx->remoteStores.clear();
        // Geometry changed: every memoized TagStore* may now dangle.
        ctx->storeCache.clear();
        ctx->storeCacheStride = 0;
    }
}

void
StreamCacheController::collapseReplication(StreamId sid)
{
    const StreamAlloc* cur = remap_.alloc(sid);
    if (cur == nullptr || cur->numGroups <= 1) {
        return;
    }
    // Keep only the serving-group capacity shape but merge all units into
    // one global group; replicas become plain distributed capacity.
    StreamAlloc merged = *cur;
    for (auto& g : merged.groupOf) {
        g = 0;
    }
    merged.numGroups = 1;
    const StreamConfig& cfg = streams_.stream(sid);
    remap_.setAlloc(sid, std::move(merged), granuleOf(cfg), noc_);

    // Invalidate the stream's cached data everywhere (clean: no writeback
    // needed, Section IV-B) and its SLB entries.
    for (UnitId u = 0; u < units_.size(); ++u) {
        auto it = units_[u]->stores.find(sid);
        if (it != units_[u]->stores.end()) {
            invalidatedRows_ += remap_.alloc(sid)->shareRows[u];
            units_[u]->stores.erase(it);
        }
        units_[u]->slb.invalidate(sid);
    }
    clearRemoteStores();
}

void
StreamCacheController::onUnitFailed(UnitId unit)
{
    NDP_ASSERT(unit < units_.size(), "unit=", unit);
    if (unitFailed_[unit]) {
        return;
    }

    // Replication groups spanning the failed unit lose a replica: the
    // same Section IV-B exception path that handles a first write also
    // collapses them to one global group. Do this before marking the
    // unit failed so the collapse can still count its rows.
    for (std::uint32_t s = 0; s < streams_.numStreams(); ++s) {
        const StreamId sid = static_cast<StreamId>(s);
        const StreamAlloc* alloc = remap_.alloc(sid);
        if (alloc == nullptr || alloc->numGroups <= 1) {
            continue;
        }
        if (unit < alloc->shareRows.size()
            && alloc->shareRows[unit] > 0) {
            collapseReplication(sid);
        }
    }

    unitFailed_[unit] = true;

    // The unit's cache slice, tag stores and sampler state are gone.
    // Accesses hashing there redirect to extended memory until the
    // runtime installs a fresh configuration around the unit.
    for (const auto& [sid, store] : units_[unit]->stores) {
        const StreamAlloc* alloc = remap_.alloc(sid);
        if (alloc != nullptr && unit < alloc->shareRows.size()) {
            invalidatedRows_ += alloc->shareRows[unit];
        }
    }
    units_[unit]->stores.clear();
    units_[unit]->slb.invalidateAll();
    units_[unit]->samplers.newEpoch();
    clearRemoteStores();
}

void
StreamCacheController::applyConfiguration(
    const std::vector<std::pair<StreamId, StreamAlloc>>& allocs)
{
    // A reconfiguration repartitions the whole cache: streams absent from
    // the new scheme lose their space (and their cached data).
    std::vector<bool> in_config(streams_.numStreams(), false);
    for (const auto& [sid, alloc] : allocs) {
        (void)alloc;
        if (sid < in_config.size()) {
            in_config[sid] = true;
        }
    }
    for (std::size_t s = 0; s < in_config.size(); ++s) {
        const StreamId sid = static_cast<StreamId>(s);
        if (in_config[s] || remap_.alloc(sid) == nullptr) {
            continue;
        }
        invalidatedRows_ += remap_.alloc(sid)->totalRows();
        remap_.clearAlloc(sid);
        for (auto& unit : units_) {
            unit->stores.erase(sid);
        }
    }

    for (const auto& [sid, alloc] : allocs) {
        const StreamConfig& cfg = streams_.stream(sid);
        const std::uint32_t granule = granuleOf(cfg);
        const std::uint32_t ways = params_.cachelineMode
            ? 1
            : (cfg.type == StreamType::Affine ? params_.affineWays
                                              : params_.indirectWays);

        // Capture the outgoing stores to carry surviving rows over.
        std::unordered_map<UnitId, TagStore> old_stores;
        std::uint64_t old_rows = 0;
        const StreamAlloc* prev = remap_.alloc(sid);
        if (prev != nullptr) {
            old_rows = prev->totalRows();
            for (UnitId u = 0; u < units_.size(); ++u) {
                auto it = units_[u]->stores.find(sid);
                if (it != units_[u]->stores.end()) {
                    old_stores.emplace(u, std::move(it->second));
                    units_[u]->stores.erase(it);
                }
            }
        }

        remap_.setAlloc(sid, alloc, granule, noc_);

        // Build fresh stores for every unit with space.
        for (UnitId u = 0; u < units_.size(); ++u) {
            const std::uint64_t slots = remap_.unitSlots(sid, u);
            if (slots == 0) {
                continue;
            }
            units_[u]->stores.emplace(sid, TagStore(slots, ways));
        }

        // Carry rows preserved by consistent hashing.
        const auto& surviving = remap_.survivingRows(sid);
        const std::uint64_t sets_per_row = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(rowBytes_) / granule / ways);
        for (const auto& row : surviving) {
            auto oit = old_stores.find(row.unit);
            auto nit = units_[row.unit]->stores.find(sid);
            if (oit == old_stores.end()
                || nit == units_[row.unit]->stores.end()) {
                continue;
            }
            nit->second.copyRange(
                oit->second,
                static_cast<std::uint64_t>(row.oldRowOffset) * sets_per_row,
                static_cast<std::uint64_t>(row.newRowOffset) * sets_per_row,
                sets_per_row);
        }
        const std::uint64_t survived = surviving.size();
        survivedRows_ += survived;
        invalidatedRows_ += old_rows > survived ? old_rows - survived : 0;
    }

    remap_.validateCapacity();

    // Remap-table contents changed: all SLB copies are stale.
    for (auto& unit : units_) {
        unit->slb.invalidateAll();
    }
    clearRemoteStores();
}

LatencyBreakdown
StreamCacheController::breakdown() const
{
    LatencyBreakdown bd;
    for (const auto& ctx : ctxs_) {
        bd.merge(ctx->bd);
    }
    return bd;
}

std::uint64_t
StreamCacheController::cacheHits() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->hits;
    }
    return total;
}

std::uint64_t
StreamCacheController::cacheMisses() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->misses;
    }
    return total;
}

std::uint64_t
StreamCacheController::uncachedStreamAccesses() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->uncached;
    }
    return total;
}

std::uint64_t
StreamCacheController::bypasses() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->bypasses;
    }
    return total;
}

std::uint64_t
StreamCacheController::writeExceptions() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->writeExceptions;
    }
    return total;
}

std::uint64_t
StreamCacheController::failedUnitRedirects() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->failedRedirects;
    }
    return total;
}

std::uint64_t
StreamCacheController::dramFaultRefetches() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->dramFaults;
    }
    return total;
}

std::uint64_t
StreamCacheController::poisonEscalations() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->poisonEscalations;
    }
    return total;
}

std::uint64_t
StreamCacheController::packetPoolHighWater() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->pool.highWater();
    }
    return total;
}

std::uint64_t
StreamCacheController::packetPoolAllocated() const
{
    std::uint64_t total = 0;
    for (const auto& ctx : ctxs_) {
        total += ctx->pool.allocated();
    }
    return total;
}

double
StreamCacheController::sramEnergyNj() const
{
    double total = 0.0;
    for (const auto& ctx : ctxs_) {
        total += ctx->sramEnergyNj;
    }
    return total;
}

LatencyBreakdown
StreamCacheController::streamBreakdown(StreamId sid) const
{
    LatencyBreakdown bd;
    for (const auto& ctx : ctxs_) {
        if (sid < ctx->streamBd.size()) {
            bd.merge(ctx->streamBd[sid]);
        }
    }
    return bd;
}

LatencyBreakdown
StreamCacheController::nonStreamBreakdown() const
{
    LatencyBreakdown bd;
    for (const auto& ctx : ctxs_) {
        bd.merge(ctx->noStreamBd);
    }
    return bd;
}

double
StreamCacheController::sramEnergyFor(const StreamCost& c) const
{
    return static_cast<double>(c.slbLookups) * params_.slbPjPerLookup
        * 1e-3
        + static_cast<double>(c.ataLookups) * params_.ataPjPerLookup
        * 1e-3;
}

double
StreamCacheController::dramCacheEnergyFor(const StreamCost& c) const
{
    return static_cast<double>(c.dramBytes) * 8.0
        * unitDramCfg_.timing.rdWrPjPerBit * 1e-3
        + static_cast<double>(c.dramActivations)
        * unitDramCfg_.timing.actPreNj;
}

double
StreamCacheController::streamSramEnergyNj(StreamId sid) const
{
    StreamCost sum;
    for (const auto& ctx : ctxs_) {
        if (sid < ctx->streamCost.size()) {
            sum.slbLookups += ctx->streamCost[sid].slbLookups;
            sum.ataLookups += ctx->streamCost[sid].ataLookups;
        }
    }
    return sramEnergyFor(sum);
}

double
StreamCacheController::nonStreamSramEnergyNj() const
{
    StreamCost sum;
    for (const auto& ctx : ctxs_) {
        sum.slbLookups += ctx->noStreamCost.slbLookups;
        sum.ataLookups += ctx->noStreamCost.ataLookups;
    }
    return sramEnergyFor(sum);
}

double
StreamCacheController::streamDramCacheEnergyNj(StreamId sid) const
{
    StreamCost sum;
    for (const auto& ctx : ctxs_) {
        if (sid < ctx->streamCost.size()) {
            sum.dramBytes += ctx->streamCost[sid].dramBytes;
            sum.dramActivations += ctx->streamCost[sid].dramActivations;
        }
    }
    return dramCacheEnergyFor(sum);
}

double
StreamCacheController::nonStreamDramCacheEnergyNj() const
{
    StreamCost sum;
    for (const auto& ctx : ctxs_) {
        sum.dramBytes += ctx->noStreamCost.dramBytes;
        sum.dramActivations += ctx->noStreamCost.dramActivations;
    }
    return dramCacheEnergyFor(sum);
}

std::uint64_t
StreamCacheController::slbMissTotal() const
{
    std::uint64_t total = 0;
    for (const auto& unit : units_) {
        total += unit->slb.misses();
    }
    return total;
}

double
StreamCacheController::missRate() const
{
    const std::uint64_t hits = cacheHits();
    const std::uint64_t misses = cacheMisses();
    const std::uint64_t uncached = uncachedStreamAccesses();
    const double denom = static_cast<double>(hits + misses + uncached);
    return denom == 0.0
        ? 0.0
        : static_cast<double>(misses + uncached) / denom;
}

double
StreamCacheController::wayPredictionRate() const
{
    std::uint64_t predictions = 0;
    std::uint64_t mispredictions = 0;
    for (const auto& ctx : ctxs_) {
        predictions += ctx->wayPredictions;
        mispredictions += ctx->wayMispredictions;
    }
    if (predictions == 0) {
        return 1.0;
    }
    return 1.0
        - static_cast<double>(mispredictions)
            / static_cast<double>(predictions);
}

double
StreamCacheController::metadataHitRate() const
{
    if (!params_.cachelineMode) {
        return 1.0;
    }
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& unit : units_) {
        hits += unit->metaCache->hits();
        misses += unit->metaCache->misses();
    }
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 1.0 : static_cast<double>(hits) / total;
}

double
StreamCacheController::dramCacheEnergyNj() const
{
    double total = 0.0;
    for (const auto& unit : units_) {
        total += unit->dram->dynamicEnergyNj();
    }
    // Proxy devices model remote-unit traffic from other shards; their
    // energy belongs to the DRAM-cache bucket too. Summed in sorted
    // unit order so the float total is independent of hash-map
    // insertion history (a restored run must reproduce it exactly).
    for (const auto& ctx : ctxs_) {
        std::vector<UnitId> units;
        units.reserve(ctx->remoteDrams.size());
        for (const auto& [unit, dram] : ctx->remoteDrams) {
            (void)dram;
            units.push_back(unit);
        }
        std::sort(units.begin(), units.end());
        for (const UnitId unit : units) {
            total += ctx->remoteDrams.at(unit)->dynamicEnergyNj();
        }
    }
    return total;
}

void
StreamCacheController::report(StatGroup& stats,
                              const std::string& prefix) const
{
    breakdown().report(stats, prefix + ".lat");
    stats.add(prefix + ".hits", static_cast<double>(cacheHits()));
    stats.add(prefix + ".misses", static_cast<double>(cacheMisses()));
    stats.add(prefix + ".uncached",
              static_cast<double>(uncachedStreamAccesses()));
    stats.add(prefix + ".bypasses", static_cast<double>(bypasses()));
    stats.add(prefix + ".writeExceptions",
              static_cast<double>(writeExceptions()));
    std::uint64_t writebacks = 0;
    for (const auto& ctx : ctxs_) {
        writebacks += ctx->writebacks;
    }
    stats.add(prefix + ".writebacks", static_cast<double>(writebacks));
    stats.add(prefix + ".invalidatedRows",
              static_cast<double>(invalidatedRows_));
    stats.add(prefix + ".survivedRows", static_cast<double>(survivedRows_));
    stats.add(prefix + ".slbMisses",
              static_cast<double>(slbMissTotal()));
    stats.add(prefix + ".degraded.failedUnitRedirects",
              static_cast<double>(failedUnitRedirects()));
    stats.add(prefix + ".degraded.dramFaultRefetches",
              static_cast<double>(dramFaultRefetches()));
    stats.add(prefix + ".degraded.poisonEscalations",
              static_cast<double>(poisonEscalations()));
    stats.add(prefix + ".dramCacheEnergyNj", dramCacheEnergyNj());
    stats.add(prefix + ".sramEnergyNj", sramEnergyNj());
}

void
StreamCacheController::registerMetrics(MetricRegistry& registry)
{
    registry.registerCounter("cache.hits",
                             [this] { return double(cacheHits()); });
    registry.registerCounter("cache.misses",
                             [this] { return double(cacheMisses()); });
    registry.registerCounter("cache.uncached", [this] {
        return double(uncachedStreamAccesses());
    });
    registry.registerCounter("cache.bypasses",
                             [this] { return double(bypasses()); });
    registry.registerCounter("cache.writeExceptions", [this] {
        return double(writeExceptions());
    });
    registry.registerCounter("cache.slbMisses",
                             [this] { return double(slbMissTotal()); });
    registry.registerCounter("cache.invalidatedRows",
                             [this] { return double(invalidatedRows_); });
    registry.registerCounter("cache.survivedRows",
                             [this] { return double(survivedRows_); });
    registry.registerCounter("cache.degraded.failedUnitRedirects", [this] {
        return double(failedUnitRedirects());
    });
    registry.registerCounter("cache.degraded.dramFaultRefetches", [this] {
        return double(dramFaultRefetches());
    });
    registry.registerCounter("cache.degraded.poisonEscalations", [this] {
        return double(poisonEscalations());
    });
    registry.registerCounter("cache.dramCacheEnergyNj",
                             [this] { return dramCacheEnergyNj(); });
    registry.registerCounter("cache.sramEnergyNj",
                             [this] { return sramEnergyNj(); });
    // Backend telemetry: every unit device registers under one
    // "cache.dram" prefix; duplicate names sum, so the series is the
    // machine-wide total. (Cross-shard proxies are created lazily after
    // registration and are not sampled.)
    for (auto& unit : units_) {
        unit->dram->registerMetrics(registry, "cache.dram");
    }
    // Per-stream hit/miss series feed ndpext_report's per-stream hit-rate
    // table. Streams must be configured before metrics registration.
    for (const StreamConfig& cfg : streams_.all()) {
        const StreamId sid = cfg.sid;
        std::string base = "cache.stream.";
        base += std::to_string(sid);
        registry.registerCounter(base + ".hits", [this, sid] {
            return double(streamHits(sid));
        });
        registry.registerCounter(base + ".misses", [this, sid] {
            return double(streamMisses(sid));
        });
    }
}

namespace {

void
writeBd(ckpt::Writer& w, const LatencyBreakdown& bd)
{
    w.u64(bd.metadata);
    w.u64(bd.icnIntra);
    w.u64(bd.icnInter);
    w.u64(bd.dramCache);
    w.u64(bd.extMem);
    w.u64(bd.requests);
}

void
readBd(ckpt::Reader& r, LatencyBreakdown& bd)
{
    bd.metadata = r.u64();
    bd.icnIntra = r.u64();
    bd.icnInter = r.u64();
    bd.dramCache = r.u64();
    bd.extMem = r.u64();
    bd.requests = r.u64();
}

/** A tag store with its geometry, so restore can reconstruct it. */
void
writeStore(ckpt::Writer& w, const TagStore& ts)
{
    w.u32(ts.numWays());
    w.u64(ts.numSets() * ts.numWays()); // slots, the ctor argument
    ts.serialize(w);
}

TagStore
readStore(ckpt::Reader& r)
{
    const std::uint32_t ways = r.u32();
    const std::uint64_t slots = r.u64();
    TagStore ts(slots, ways);
    ts.deserialize(r);
    return ts;
}

} // namespace

void
StreamCacheController::serialize(ckpt::Writer& w) const
{
    w.section(0x0CAC);
    remap_.serialize(w);
    w.u64(units_.size());
    for (const auto& unit : units_) {
        unit->dram->serialize(w);
        unit->slb.serialize(w);
        unit->samplers.serialize(w);
        std::vector<StreamId> sids;
        sids.reserve(unit->stores.size());
        for (const auto& [sid, ts] : unit->stores) {
            (void)ts;
            sids.push_back(sid);
        }
        std::sort(sids.begin(), sids.end());
        w.u64(sids.size());
        for (const StreamId sid : sids) {
            w.u32(sid);
            writeStore(w, unit->stores.at(sid));
        }
        w.b(unit->metaCache != nullptr);
        if (unit->metaCache != nullptr) {
            unit->metaCache->serialize(w);
        }
    }
    w.vecB(unitFailed_);
    w.u64(ctxs_.size());
    for (const auto& ctx : ctxs_) {
        writeBd(w, ctx->bd);
        w.u64(ctx->hits);
        w.u64(ctx->misses);
        w.u64(ctx->uncached);
        w.u64(ctx->bypasses);
        w.u64(ctx->writeExceptions);
        w.u64(ctx->wayPredictions);
        w.u64(ctx->wayMispredictions);
        w.u64(ctx->writebacks);
        w.u64(ctx->failedRedirects);
        w.u64(ctx->dramFaults);
        w.u64(ctx->poisonEscalations);
        w.d(ctx->sramEnergyNj);
        w.vecU64(ctx->streamHits);
        w.vecU64(ctx->streamMisses);
        w.u64(ctx->streamBd.size());
        for (const LatencyBreakdown& bd : ctx->streamBd) {
            writeBd(w, bd);
        }
        writeBd(w, ctx->noStreamBd);
        w.u64(ctx->streamCost.size());
        for (const StreamCost& c : ctx->streamCost) {
            w.u64(c.slbLookups);
            w.u64(c.ataLookups);
            w.u64(c.dramBytes);
            w.u64(c.dramActivations);
        }
        w.u64(ctx->noStreamCost.slbLookups);
        w.u64(ctx->noStreamCost.ataLookups);
        w.u64(ctx->noStreamCost.dramBytes);
        w.u64(ctx->noStreamCost.dramActivations);
        // Deferred write exceptions are applied at the barrier before a
        // checkpoint is cut, but serialize them anyway for safety.
        w.u64(ctx->pendingWritten.size());
        for (const StreamId sid : ctx->pendingWritten) {
            w.u32(sid);
        }
        w.vecB(ctx->writtenSeen);
        std::vector<std::uint64_t> keys;
        keys.reserve(ctx->remoteStores.size());
        for (const auto& [key, ts] : ctx->remoteStores) {
            (void)ts;
            keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (const std::uint64_t key : keys) {
            w.u64(key);
            writeStore(w, ctx->remoteStores.at(key));
        }
        std::vector<UnitId> runits;
        runits.reserve(ctx->remoteDrams.size());
        for (const auto& [u, d] : ctx->remoteDrams) {
            (void)d;
            runits.push_back(u);
        }
        std::sort(runits.begin(), runits.end());
        w.u64(runits.size());
        for (const UnitId u : runits) {
            w.u32(u);
            ctx->remoteDrams.at(u)->serialize(w);
        }
        ctx->pool.serialize(w);
    }
    w.u64(invalidatedRows_);
    w.u64(survivedRows_);
}

void
StreamCacheController::deserialize(ckpt::Reader& r)
{
    r.section(0x0CAC);
    remap_.deserialize(r, noc_);
    const std::uint64_t nunits = r.u64();
    NDP_ASSERT(nunits == units_.size(), "checkpoint unit-count mismatch");
    for (auto& unit : units_) {
        unit->dram->deserialize(r);
        unit->slb.deserialize(r);
        unit->samplers.deserialize(r);
        unit->stores.clear();
        const std::uint64_t nstores = r.u64();
        for (std::uint64_t i = 0; i < nstores; ++i) {
            const StreamId sid = static_cast<StreamId>(r.u32());
            unit->stores.emplace(sid, readStore(r));
        }
        const bool has_meta = r.b();
        NDP_ASSERT(has_meta == (unit->metaCache != nullptr),
                   "metadata-cache mode mismatch");
        if (has_meta) {
            unit->metaCache->deserialize(r);
        }
    }
    unitFailed_ = r.vecB();
    NDP_ASSERT(unitFailed_.size() == units_.size());
    const std::uint64_t nctx = r.u64();
    NDP_ASSERT(nctx == ctxs_.size(), "checkpoint shard-count mismatch");
    for (auto& ctx : ctxs_) {
        readBd(r, ctx->bd);
        ctx->hits = r.u64();
        ctx->misses = r.u64();
        ctx->uncached = r.u64();
        ctx->bypasses = r.u64();
        ctx->writeExceptions = r.u64();
        ctx->wayPredictions = r.u64();
        ctx->wayMispredictions = r.u64();
        ctx->writebacks = r.u64();
        ctx->failedRedirects = r.u64();
        ctx->dramFaults = r.u64();
        ctx->poisonEscalations = r.u64();
        ctx->sramEnergyNj = r.d();
        ctx->streamHits = r.vecU64();
        ctx->streamMisses = r.vecU64();
        ctx->streamBd.assign(r.u64(), LatencyBreakdown{});
        for (LatencyBreakdown& bd : ctx->streamBd) {
            readBd(r, bd);
        }
        readBd(r, ctx->noStreamBd);
        ctx->streamCost.assign(r.u64(), StreamCost{});
        for (StreamCost& c : ctx->streamCost) {
            c.slbLookups = r.u64();
            c.ataLookups = r.u64();
            c.dramBytes = r.u64();
            c.dramActivations = r.u64();
        }
        ctx->noStreamCost.slbLookups = r.u64();
        ctx->noStreamCost.ataLookups = r.u64();
        ctx->noStreamCost.dramBytes = r.u64();
        ctx->noStreamCost.dramActivations = r.u64();
        ctx->pendingWritten.assign(r.u64(), kNoStream);
        for (StreamId& sid : ctx->pendingWritten) {
            sid = static_cast<StreamId>(r.u32());
        }
        ctx->writtenSeen = r.vecB();
        ctx->remoteStores.clear();
        const std::uint64_t nremote = r.u64();
        for (std::uint64_t i = 0; i < nremote; ++i) {
            const std::uint64_t key = r.u64();
            ctx->remoteStores.emplace(key, readStore(r));
        }
        ctx->remoteDrams.clear();
        const std::uint64_t ndrams = r.u64();
        for (std::uint64_t i = 0; i < ndrams; ++i) {
            const UnitId u = static_cast<UnitId>(r.u32());
            auto dram = createMemBackend(unitDramCfg_, coreFreqMhz_);
            dram->deserialize(r);
            ctx->remoteDrams.emplace(u, std::move(dram));
        }
        ctx->pool.deserialize(r);
        // Every memoized TagStore* referenced pre-restore storage.
        ctx->storeCache.clear();
        ctx->storeCacheStride = 0;
    }
    invalidatedRows_ = r.u64();
    survivedRows_ = r.u64();
}

} // namespace ndpext
