/**
 * @file
 * Functional tag array for one stream's allocation on one NDP unit.
 *
 * The stream cache is hash-addressed (direct-mapped by default); a slot
 * holds at most one granule (an element for indirect streams, a 1 kB block
 * for affine streams). Tags of affine blocks physically live in the SRAM
 * affine tag array; tags of indirect elements live in DRAM next to the
 * data (Section IV-C) -- in both cases the *contents* are what this class
 * tracks, while latency/energy are charged by the controller.
 *
 * Optional associativity (Fig. 9a study): slots are grouped into sets of
 * `ways` entries with LRU replacement inside the set.
 */

#ifndef NDPEXT_NDP_TAG_STORE_H
#define NDPEXT_NDP_TAG_STORE_H

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "sim/checkpoint.h"

namespace ndpext {

class TagStore
{
  public:
    /** Tags are stored as key+1 in 32 bits; 0 means empty. */
    static constexpr std::uint64_t kMaxKey = 0xfffffffdULL;

    TagStore(std::uint64_t slots, std::uint32_t ways = 1)
        : ways_(ways), sets_(ways == 0 ? 0 : slots / ways),
          tags_(sets_ * ways, 0), dirty_(sets_ * ways, false)
    {
        NDP_ASSERT(ways >= 1);
        if (ways_ > 1) {
            use_.assign(tags_.size(), 0);
        }
    }

    std::uint64_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }
    bool usable() const { return sets_ > 0; }

    struct Result
    {
        bool hit = false;
        bool evicted = false;
        bool evictedDirty = false;
        std::uint64_t evictedKey = 0;
        /** Way the key landed in (hit way or fill way). */
        std::uint32_t way = 0;
        /** MRU way of the set *before* this access (way predictor). */
        std::uint32_t predictedWay = 0;
    };

    /**
     * Probe the set derived from `slot` for `key`; on a miss, install the
     * key, evicting the set's LRU entry.
     */
    Result
    accessFill(std::uint64_t slot, std::uint64_t key, bool is_write)
    {
        NDP_ASSERT(usable());
        NDP_ASSERT(key <= kMaxKey, "granule key too large: ", key);
        const std::uint64_t set = slot % sets_;
        const std::uint64_t base = set * ways_;
        const std::uint32_t enc = static_cast<std::uint32_t>(key + 1);

        Result res;
        res.predictedWay = mruWay(set);
        std::uint64_t victim = base;
        bool have_empty = false;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::uint64_t i = base + w;
            if (tags_[i] == enc) {
                res.hit = true;
                res.way = w;
                if (is_write) {
                    dirty_[i] = true;
                }
                touch(i);
                return res;
            }
            if (tags_[i] == 0) {
                if (!have_empty) {
                    victim = i; // fill the first empty way
                    have_empty = true;
                }
            } else if (!have_empty && tags_[victim] != 0
                       && lastUse(i) < lastUse(victim)) {
                victim = i;
            }
        }
        if (tags_[victim] != 0) {
            res.evicted = true;
            res.evictedDirty = dirty_[victim];
            res.evictedKey = tags_[victim] - 1;
        }
        res.way = static_cast<std::uint32_t>(victim - base);
        tags_[victim] = enc;
        dirty_[victim] = is_write;
        touch(victim);
        return res;
    }

    /** Most-recently-used way of a set (the way predictor's guess). */
    std::uint32_t
    mruWay(std::uint64_t set) const
    {
        if (ways_ == 1) {
            return 0;
        }
        const std::uint64_t base = (set % sets_) * ways_;
        std::uint32_t best = 0;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (use_[base + w] > use_[base + best]) {
                best = w;
            }
        }
        return best;
    }

    /** Non-modifying probe. */
    bool
    probe(std::uint64_t slot, std::uint64_t key) const
    {
        if (!usable()) {
            return false;
        }
        const std::uint64_t base = (slot % sets_) * ways_;
        const std::uint32_t enc = static_cast<std::uint32_t>(key + 1);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (tags_[base + w] == enc) {
                return true;
            }
        }
        return false;
    }

    /** Number of occupied entries. */
    std::uint64_t
    occupancy() const
    {
        std::uint64_t n = 0;
        for (const auto t : tags_) {
            n += t != 0 ? 1 : 0;
        }
        return n;
    }

    /**
     * Copy a contiguous set range from another store (consistent-hashing
     * row survival carries whole DRAM rows across a reconfiguration).
     * Out-of-range sets are skipped; requires equal associativity.
     */
    void
    copyRange(const TagStore& src, std::uint64_t src_begin,
              std::uint64_t dst_begin, std::uint64_t count)
    {
        NDP_ASSERT(src.ways_ == ways_);
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t s = src_begin + i;
            const std::uint64_t d = dst_begin + i;
            if (s >= src.sets_ || d >= sets_) {
                continue;
            }
            for (std::uint32_t w = 0; w < ways_; ++w) {
                tags_[d * ways_ + w] = src.tags_[s * ways_ + w];
                dirty_[d * ways_ + w] = src.dirty_[s * ways_ + w];
            }
        }
    }

    /**
     * Checkpoint hooks. Geometry (slots, ways) is re-derived by the
     * owner from the restored remap allocation; only contents travel,
     * and the restored store must match the stored geometry exactly.
     */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u32(ways_);
        w.u64(sets_);
        w.vecU32(tags_);
        w.vecB(dirty_);
        w.vecU32(use_);
        w.u32(useClock_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        const std::uint32_t ways = r.u32();
        const std::uint64_t sets = r.u64();
        NDP_ASSERT(ways == ways_ && sets == sets_,
                   "tag store geometry mismatch: ", sets, "x", ways,
                   " != ", sets_, "x", ways_);
        tags_ = r.vecU32();
        dirty_ = r.vecB();
        use_ = r.vecU32();
        useClock_ = r.u32();
        NDP_ASSERT(tags_.size() == sets_ * ways_
                   && dirty_.size() == tags_.size());
    }

  private:
    void
    touch(std::uint64_t i)
    {
        if (ways_ > 1) {
            use_[i] = ++useClock_;
        }
    }

    std::uint32_t
    lastUse(std::uint64_t i) const
    {
        return ways_ > 1 ? use_[i] : 0;
    }

    std::uint32_t ways_;
    std::uint64_t sets_;
    std::vector<std::uint32_t> tags_;
    std::vector<bool> dirty_;
    std::vector<std::uint32_t> use_; // only allocated when ways_ > 1
    std::uint32_t useClock_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_NDP_TAG_STORE_H
