#include "ndp/remap_table.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace ndpext {

namespace {

/** Hash seed per stream so different streams interleave differently. */
std::uint64_t
streamSeed(StreamId sid)
{
    return mix64(0x5757ULL + sid);
}

/**
 * Virtual ring spots per DRAM row: smooths consistent-hash arcs. Scaled
 * with the row size so ring construction stays cheap for small-row
 * technologies (HMC vaults use 256 B rows).
 */
std::uint32_t
virtualSpotsPerRow(std::uint32_t row_bytes)
{
    const std::uint32_t v = row_bytes / 256;
    return std::max<std::uint32_t>(1, std::min<std::uint32_t>(8, v));
}

/** Ring spot identity: stable across epochs for the same logical row. */
std::uint64_t
spotHash(StreamId sid, UnitId unit, std::uint32_t row_offset,
         std::uint32_t vnode)
{
    return mix64((static_cast<std::uint64_t>(sid) << 48)
                 ^ (static_cast<std::uint64_t>(unit) << 32)
                 ^ (static_cast<std::uint64_t>(vnode) << 24) ^ row_offset);
}

} // namespace

std::uint64_t
StreamAlloc::totalRows() const
{
    return std::accumulate(shareRows.begin(), shareRows.end(),
                           std::uint64_t{0});
}

std::uint64_t
StreamAlloc::rowsOfGroup(std::uint16_t group) const
{
    std::uint64_t rows = 0;
    for (std::size_t u = 0; u < shareRows.size(); ++u) {
        if (shareRows[u] > 0 && groupOf[u] == group) {
            rows += shareRows[u];
        }
    }
    return rows;
}

StreamRemapTable::StreamRemapTable(std::uint32_t num_units,
                                   std::uint32_t rows_per_unit,
                                   std::uint32_t row_bytes, RemapMode mode)
    : numUnits_(num_units), rowsPerUnit_(rows_per_unit),
      rowBytes_(row_bytes), mode_(mode), usedRows_(num_units, 0)
{
    NDP_ASSERT(num_units > 0 && rows_per_unit > 0 && row_bytes > 0);
}

std::uint64_t
StreamRemapTable::slotsOf(const StreamAlloc& alloc, UnitId unit,
                          std::uint32_t granule_bytes) const
{
    return static_cast<std::uint64_t>(alloc.shareRows[unit]) * rowBytes_
        / granule_bytes;
}

void
StreamRemapTable::buildViews(Entry& entry, StreamId sid, const NocModel& noc)
{
    const StreamAlloc& alloc = entry.alloc;
    entry.groups.assign(alloc.numGroups, GroupView{});

    for (UnitId u = 0; u < numUnits_; ++u) {
        if (alloc.shareRows[u] == 0) {
            continue;
        }
        const std::uint16_t g = alloc.groupOf[u];
        NDP_ASSERT(g < alloc.numGroups, "sid=", sid, " bad group ", g);
        GroupView& gv = entry.groups[g];
        const std::uint64_t slots = slotsOf(alloc, u, entry.granuleBytes);
        gv.units.push_back(u);
        gv.slots.push_back(slots);
        gv.slotPrefix.push_back(gv.totalSlots);
        gv.totalSlots += slots;
        if (mode_ == RemapMode::ConsistentHash) {
            const std::uint32_t vnodes = virtualSpotsPerRow(rowBytes_);
            for (std::uint32_t r = 0; r < alloc.shareRows[u]; ++r) {
                for (std::uint32_t v = 0; v < vnodes; ++v) {
                    gv.ring.push_back(GroupView::Spot{
                        spotHash(sid, u, r, v),
                        static_cast<std::uint32_t>(gv.units.size() - 1),
                        r});
                }
            }
        }
    }
    for (auto& gv : entry.groups) {
        std::sort(gv.ring.begin(), gv.ring.end(),
                  [](const GroupView::Spot& a, const GroupView::Spot& b) {
                      return a.hash < b.hash;
                  });
    }

    // Serving group per from-unit: slot-weighted nearest group.
    entry.serving.assign(numUnits_, 0);
    for (UnitId from = 0; from < numUnits_; ++from) {
        double best = -1.0;
        std::uint16_t best_g = 0;
        for (std::uint16_t g = 0; g < alloc.numGroups; ++g) {
            const GroupView& gv = entry.groups[g];
            if (gv.totalSlots == 0) {
                continue;
            }
            double lat = 0.0;
            for (std::size_t m = 0; m < gv.units.size(); ++m) {
                lat += static_cast<double>(gv.slots[m])
                    * static_cast<double>(noc.pureLatency(from, gv.units[m]));
            }
            lat /= static_cast<double>(gv.totalSlots);
            if (best < 0.0 || lat < best) {
                best = lat;
                best_g = g;
            }
        }
        entry.serving[from] = best_g;
    }
}

void
StreamRemapTable::computeSurvival(Entry& old_entry, Entry& new_entry,
                                  StreamId sid)
{
    (void)sid;
    new_entry.survivalFraction = 0.0;
    new_entry.surviving.clear();
    if (!old_entry.valid) {
        return;
    }
    const std::uint64_t old_rows = old_entry.alloc.totalRows();
    if (old_rows == 0) {
        return;
    }

    if (mode_ == RemapMode::Modulo) {
        // Modulo hashing rehashes everything unless the allocation is
        // bit-identical (then no reconfiguration happened at all).
        if (old_entry.alloc.shareRows == new_entry.alloc.shareRows
            && old_entry.alloc.groupOf == new_entry.alloc.groupOf) {
            new_entry.survivalFraction = 1.0;
            for (UnitId u = 0; u < numUnits_; ++u) {
                for (std::uint32_t r = 0; r < new_entry.alloc.shareRows[u];
                     ++r) {
                    new_entry.surviving.push_back(SurvivingRow{u, r, r});
                }
            }
        }
        return;
    }

    // Consistent hashing: a logical row spot (unit, rowOffset) that exists
    // in both allocations keeps (approximately) the same key population.
    std::uint64_t survived = 0;
    for (UnitId u = 0; u < numUnits_; ++u) {
        const std::uint32_t common = std::min(
            old_entry.alloc.shareRows[u], new_entry.alloc.shareRows[u]);
        for (std::uint32_t r = 0; r < common; ++r) {
            new_entry.surviving.push_back(SurvivingRow{u, r, r});
        }
        survived += common;
    }
    new_entry.survivalFraction =
        static_cast<double>(survived) / static_cast<double>(old_rows);
}

void
StreamRemapTable::setAlloc(StreamId sid, StreamAlloc alloc,
                           std::uint32_t granule_bytes, const NocModel& noc)
{
    NDP_ASSERT(alloc.shareRows.size() == numUnits_, "sid=", sid);
    NDP_ASSERT(granule_bytes > 0);
    if (entries_.size() <= sid) {
        entries_.resize(sid + 1);
    }

    Entry fresh;
    fresh.alloc = std::move(alloc);
    fresh.granuleBytes = granule_bytes;
    fresh.valid = true;
    buildViews(fresh, sid, noc);
    computeSurvival(entries_[sid], fresh, sid);
    entries_[sid] = std::move(fresh);

    // Recompute per-unit usage. A batch of setAlloc calls may transiently
    // overshoot while old allocations of later streams are still in
    // place; callers run validateCapacity() after the batch.
    std::fill(usedRows_.begin(), usedRows_.end(), 0);
    for (const Entry& e : entries_) {
        if (!e.valid) {
            continue;
        }
        for (UnitId u = 0; u < numUnits_; ++u) {
            usedRows_[u] += e.alloc.shareRows[u];
        }
    }
}

void
StreamRemapTable::validateCapacity() const
{
    for (UnitId u = 0; u < numUnits_; ++u) {
        NDP_ASSERT(usedRows_[u] <= rowsPerUnit_, "unit ", u,
                   " over-allocated: ", usedRows_[u], " of ", rowsPerUnit_);
    }
}

void
StreamRemapTable::clearAlloc(StreamId sid)
{
    if (sid >= entries_.size() || !entries_[sid].valid) {
        return;
    }
    for (UnitId u = 0; u < numUnits_; ++u) {
        usedRows_[u] -= entries_[sid].alloc.shareRows[u];
    }
    Entry empty;
    entries_[sid] = std::move(empty);
}

const StreamAlloc*
StreamRemapTable::alloc(StreamId sid) const
{
    if (sid >= entries_.size() || !entries_[sid].valid) {
        return nullptr;
    }
    return &entries_[sid].alloc;
}

std::uint16_t
StreamRemapTable::servingGroup(StreamId sid, UnitId from_unit) const
{
    NDP_ASSERT(sid < entries_.size() && entries_[sid].valid);
    return entries_[sid].serving[from_unit];
}

CacheLocation
StreamRemapTable::locate(StreamId sid, std::uint64_t granule_id,
                         UnitId from_unit) const
{
    NDP_ASSERT(sid < entries_.size() && entries_[sid].valid,
               "locate on unallocated sid=", sid);
    const Entry& e = entries_[sid];
    const GroupView& gv = e.groups[e.serving[from_unit]];
    NDP_ASSERT(gv.totalSlots > 0, "locate in empty group, sid=", sid);

    const std::uint64_t h = mix64(granule_id ^ streamSeed(sid));
    CacheLocation loc;

    if (mode_ == RemapMode::Modulo || gv.ring.empty()) {
        const std::uint64_t idx = h % gv.totalSlots;
        // Find the member owning slot idx via the prefix sums.
        std::size_t m = gv.units.size() - 1;
        for (std::size_t i = 1; i < gv.units.size(); ++i) {
            if (idx < gv.slotPrefix[i]) {
                m = i - 1;
                break;
            }
        }
        const std::uint64_t local = idx - gv.slotPrefix[m];
        loc.unit = gv.units[m];
        loc.unitSlot = local;
        loc.deviceRow = e.alloc.rowBase[loc.unit]
            + static_cast<std::uint32_t>(local * e.granuleBytes
                                         / rowBytes_);
        return loc;
    }

    // Consistent hashing: first spot with hash >= h, wrapping.
    auto it = std::lower_bound(
        gv.ring.begin(), gv.ring.end(), h,
        [](const GroupView::Spot& s, std::uint64_t key) {
            return s.hash < key;
        });
    if (it == gv.ring.end()) {
        it = gv.ring.begin();
    }
    const std::size_t m = it->member;
    loc.unit = gv.units[m];
    if (e.granuleBytes <= rowBytes_) {
        const std::uint64_t slots_per_row = rowBytes_ / e.granuleBytes;
        loc.unitSlot = static_cast<std::uint64_t>(it->rowOffset)
                * slots_per_row
            + mix64(h) % slots_per_row;
        loc.deviceRow = e.alloc.rowBase[loc.unit] + it->rowOffset;
    } else {
        // Blocks larger than a row: the spot's row selects the block slot
        // containing it.
        const std::uint64_t rows_per_granule =
            e.granuleBytes / rowBytes_;
        std::uint64_t slot = it->rowOffset / rows_per_granule;
        const std::uint64_t slots = gv.slots[m];
        if (slot >= slots) {
            slot = slots == 0 ? 0 : slots - 1;
        }
        loc.unitSlot = slot;
        loc.deviceRow = e.alloc.rowBase[loc.unit]
            + static_cast<std::uint32_t>(slot * rows_per_granule);
    }
    return loc;
}

std::uint64_t
StreamRemapTable::unitSlots(StreamId sid, UnitId unit) const
{
    const StreamAlloc* a = alloc(sid);
    if (a == nullptr) {
        return 0;
    }
    return slotsOf(*a, unit, entries_[sid].granuleBytes);
}

std::uint64_t
StreamRemapTable::groupSlots(StreamId sid, UnitId from_unit) const
{
    if (sid >= entries_.size() || !entries_[sid].valid) {
        return 0;
    }
    const Entry& e = entries_[sid];
    if (e.groups.empty()) {
        return 0;
    }
    return e.groups[e.serving[from_unit]].totalSlots;
}

std::uint32_t
StreamRemapTable::freeRows(UnitId unit) const
{
    NDP_ASSERT(unit < numUnits_);
    return usedRows_[unit] >= rowsPerUnit_
        ? 0
        : rowsPerUnit_ - usedRows_[unit];
}

std::uint32_t
StreamRemapTable::usedRows(UnitId unit) const
{
    NDP_ASSERT(unit < numUnits_);
    return usedRows_[unit];
}

double
StreamRemapTable::lastSurvivalFraction(StreamId sid) const
{
    if (sid >= entries_.size() || !entries_[sid].valid) {
        return 0.0;
    }
    return entries_[sid].survivalFraction;
}

const std::vector<StreamRemapTable::SurvivingRow>&
StreamRemapTable::survivingRows(StreamId sid) const
{
    static const std::vector<SurvivingRow> kEmpty;
    if (sid >= entries_.size() || !entries_[sid].valid) {
        return kEmpty;
    }
    return entries_[sid].surviving;
}

void
StreamRemapTable::serialize(ckpt::Writer& w) const
{
    w.u64(entries_.size());
    for (const Entry& e : entries_) {
        w.b(e.valid);
        if (!e.valid) {
            continue;
        }
        w.vecU32(e.alloc.shareRows);
        w.vecU32(e.alloc.rowBase);
        w.u64(e.alloc.groupOf.size());
        for (const std::uint16_t g : e.alloc.groupOf) {
            w.u32(g);
        }
        w.u32(e.alloc.numGroups);
        w.u32(e.granuleBytes);
        w.d(e.survivalFraction);
        w.u64(e.surviving.size());
        for (const SurvivingRow& s : e.surviving) {
            w.u32(s.unit);
            w.u32(s.oldRowOffset);
            w.u32(s.newRowOffset);
        }
    }
}

void
StreamRemapTable::deserialize(ckpt::Reader& r, const NocModel& noc)
{
    const std::uint64_t n = r.u64();
    entries_.assign(n, Entry{});
    std::fill(usedRows_.begin(), usedRows_.end(), 0);
    for (std::size_t sid = 0; sid < entries_.size(); ++sid) {
        Entry& e = entries_[sid];
        e.valid = r.b();
        if (!e.valid) {
            continue;
        }
        e.alloc = StreamAlloc(numUnits_);
        e.alloc.shareRows = r.vecU32();
        e.alloc.rowBase = r.vecU32();
        const std::uint64_t gn = r.u64();
        e.alloc.groupOf.assign(gn, 0);
        for (std::uint16_t& g : e.alloc.groupOf) {
            g = static_cast<std::uint16_t>(r.u32());
        }
        e.alloc.numGroups = static_cast<std::uint16_t>(r.u32());
        NDP_ASSERT(e.alloc.shareRows.size() == numUnits_
                       && e.alloc.rowBase.size() == numUnits_
                       && e.alloc.groupOf.size() == numUnits_,
                   "remap allocation unit-count mismatch");
        e.granuleBytes = r.u32();
        e.survivalFraction = r.d();
        const std::uint64_t sn = r.u64();
        e.surviving.assign(sn, SurvivingRow{});
        for (SurvivingRow& s : e.surviving) {
            s.unit = static_cast<UnitId>(r.u32());
            s.oldRowOffset = r.u32();
            s.newRowOffset = r.u32();
        }
        buildViews(e, static_cast<StreamId>(sid), noc);
        for (UnitId u = 0; u < numUnits_; ++u) {
            usedRows_[u] += e.alloc.shareRows[u];
        }
    }
}

} // namespace ndpext
