#include "ndp/slb.h"

#include "common/logging.h"

namespace ndpext {

Slb::Slb(std::uint32_t entries, Cycles hit_cycles, Cycles miss_cycles)
    : entries_(entries), hitCycles_(hit_cycles), missCycles_(miss_cycles)
{
    NDP_ASSERT(entries > 0);
}

Cycles
Slb::lookupScan(StreamId sid)
{
    Entry* lru = &entries_[0];
    for (auto& e : entries_) {
        if (e.valid && e.sid == sid) {
            e.lastUse = ++useClock_;
            ++hits_;
            lastHit_ = &e;
            return hitCycles_;
        }
        if (!e.valid) {
            lru = &e;
        } else if (lru->valid && e.lastUse < lru->lastUse) {
            lru = &e;
        }
    }
    ++misses_;
    lru->sid = sid;
    lru->valid = true;
    lru->lastUse = ++useClock_;
    lastHit_ = lru;
    return missCycles_;
}

void
Slb::invalidate(StreamId sid)
{
    for (auto& e : entries_) {
        if (e.valid && e.sid == sid) {
            e.valid = false;
            if (lastHit_ == &e) {
                lastHit_ = nullptr;
            }
            return;
        }
    }
}

void
Slb::invalidateAll()
{
    for (auto& e : entries_) {
        e.valid = false;
    }
    lastHit_ = nullptr;
}

void
Slb::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".hits", static_cast<double>(hits_));
    stats.add(prefix + ".misses", static_cast<double>(misses_));
}

} // namespace ndpext
