/**
 * @file
 * The stream remap table: RShares, RRowBase, RGroups (Section IV-B,
 * Fig. 3b), plus the element-to-location resolution used by the hardware.
 *
 * For each stream, every NDP unit contributes `shareRows` DRAM rows of
 * cache space starting at `rowBase`. Units with nonzero shares are
 * partitioned into replication groups; each group independently caches one
 * copy of the stream. An accessing unit is served by one group (its
 * *serving group*: the member-weighted nearest one). Within a group,
 * elements map to (unit, row, slot) by hashing -- either plain modulo
 * hashing or consistent hashing (Section V-D), the latter keeping most
 * mappings stable across reconfigurations.
 */

#ifndef NDPEXT_NDP_REMAP_TABLE_H
#define NDPEXT_NDP_REMAP_TABLE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "noc/noc_model.h"
#include "sim/checkpoint.h"
#include "stream/stream_table.h"

namespace ndpext {

/** How elements map to row locations within a replication group. */
enum class RemapMode : std::uint8_t
{
    Modulo,         ///< hash % slots (bulk invalidation on reconfig)
    ConsistentHash, ///< ring of (unit, row) spots (Section V-D)
};

/** Resolved cache location of one granule (element or affine block). */
struct CacheLocation
{
    UnitId unit = kNoUnit;
    /** Row index within the unit's local DRAM (absolute device row). */
    std::uint32_t deviceRow = 0;
    /** Slot index within the stream's allocation on that unit. */
    std::uint64_t unitSlot = 0;
};

/** Per-stream allocation: the RShares / RRowBase / RGroups triple. */
struct StreamAlloc
{
    /** DRAM rows allocated on each unit (RShares). */
    std::vector<std::uint32_t> shareRows;
    /** First device row of the allocation on each unit (RRowBase). */
    std::vector<std::uint32_t> rowBase;
    /** Replication group of each unit (RGroups); valid where shares > 0. */
    std::vector<std::uint16_t> groupOf;
    std::uint16_t numGroups = 0;

    explicit StreamAlloc(std::uint32_t num_units = 0)
        : shareRows(num_units, 0), rowBase(num_units, 0),
          groupOf(num_units, 0)
    {
    }

    std::uint64_t totalRows() const;
    std::uint64_t rowsOfGroup(std::uint16_t group) const;
    bool empty() const { return totalRows() == 0; }
};

/**
 * The runtime-owned remap table plus the per-(stream, group) lookup
 * machinery the SLBs conceptually cache.
 */
class StreamRemapTable
{
  public:
    /**
     * @param num_units     NDP unit count.
     * @param rows_per_unit DRAM-cache rows available per unit.
     * @param row_bytes     DRAM row size in bytes.
     */
    StreamRemapTable(std::uint32_t num_units, std::uint32_t rows_per_unit,
                     std::uint32_t row_bytes, RemapMode mode);

    std::uint32_t numUnits() const { return numUnits_; }
    std::uint32_t rowsPerUnit() const { return rowsPerUnit_; }
    std::uint32_t rowBytes() const { return rowBytes_; }
    RemapMode mode() const { return mode_; }

    /**
     * Install a new allocation for a stream. Shares are validated against
     * per-unit capacity across all installed streams.
     * @param granule_bytes caching granule of the stream (element size for
     *        indirect, block size for affine).
     */
    void setAlloc(StreamId sid, StreamAlloc alloc,
                  std::uint32_t granule_bytes, const NocModel& noc);

    /** Remove a stream's allocation. */
    void clearAlloc(StreamId sid);

    /** Current allocation, or nullptr if the stream has none. */
    const StreamAlloc* alloc(StreamId sid) const;

    /** Replication group serving accesses issued from `from_unit`. */
    std::uint16_t servingGroup(StreamId sid, UnitId from_unit) const;

    /**
     * Resolve the cache location of a granule for an access from
     * `from_unit`. Requires a non-empty serving group.
     */
    CacheLocation locate(StreamId sid, std::uint64_t granule_id,
                         UnitId from_unit) const;

    /** Slots the stream owns on `unit` (allocBytes / granule). */
    std::uint64_t unitSlots(StreamId sid, UnitId unit) const;

    /** Total slots of the group that serves `from_unit`. */
    std::uint64_t groupSlots(StreamId sid, UnitId from_unit) const;

    /** Rows still unallocated on a unit. */
    std::uint32_t freeRows(UnitId unit) const;

    /**
     * Panic if any unit's rows are over-committed. Run after a batch of
     * setAlloc calls (one reconfiguration); individual calls may
     * transiently overshoot while later streams still hold old space.
     */
    void validateCapacity() const;

    /** Rows used on a unit across all streams. */
    std::uint32_t usedRows(UnitId unit) const;

    /**
     * Fraction of a stream's old row spots that survive in the new
     * allocation -- the consistent-hashing preservation metric. Computed by
     * setAlloc for the previous vs new allocation; 0 when mode is Modulo
     * or the stream had no prior allocation.
     */
    double lastSurvivalFraction(StreamId sid) const;

    /**
     * Row spots (unit, deviceRow) of the stream's previous allocation that
     * persist in the current one with identical ring meaning. Used by the
     * cache to carry tag contents across reconfigurations.
     */
    struct SurvivingRow
    {
        UnitId unit;
        std::uint32_t oldRowOffset; ///< row index within old unit alloc
        std::uint32_t newRowOffset; ///< row index within new unit alloc
    };
    const std::vector<SurvivingRow>& survivingRows(StreamId sid) const;

    /**
     * Checkpoint hooks. Only the authoritative per-stream allocations
     * travel; group views, serving maps and usedRows_ are rebuilt
     * deterministically by buildViews() at restore (it sorts by spot
     * hash / unit id, so the rebuilt views are byte-identical).
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r, const NocModel& noc);

  private:
    struct GroupView
    {
        /** Member units ordered by id. */
        std::vector<UnitId> units;
        /** Slots per member (same order), and exclusive prefix sums. */
        std::vector<std::uint64_t> slots;
        std::vector<std::uint64_t> slotPrefix;
        std::uint64_t totalSlots = 0;
        /** Consistent-hash ring: sorted (hash, member index, row) spots. */
        struct Spot
        {
            std::uint64_t hash;
            std::uint32_t member;
            std::uint32_t rowOffset;
        };
        std::vector<Spot> ring;
    };

    struct Entry
    {
        StreamAlloc alloc;
        std::uint32_t granuleBytes = 0;
        std::vector<GroupView> groups;
        /** Serving group per from-unit. */
        std::vector<std::uint16_t> serving;
        double survivalFraction = 0.0;
        std::vector<SurvivingRow> surviving;
        bool valid = false;
    };

    void buildViews(Entry& entry, StreamId sid, const NocModel& noc);
    void computeSurvival(Entry& old_entry, Entry& new_entry, StreamId sid);

    std::uint64_t slotsOf(const StreamAlloc& alloc, UnitId unit,
                          std::uint32_t granule_bytes) const;

    std::uint32_t numUnits_;
    std::uint32_t rowsPerUnit_;
    std::uint32_t rowBytes_;
    RemapMode mode_;
    std::vector<Entry> entries_; // indexed by sid (grown on demand)
    std::vector<std::uint32_t> usedRows_;
};

} // namespace ndpext

#endif // NDPEXT_NDP_REMAP_TABLE_H
