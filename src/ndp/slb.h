/**
 * @file
 * Stream Lookahead Buffer (Section IV-C, Fig. 3c).
 *
 * Each NDP unit caches simplified remap-table entries for up to 32 streams
 * in a TCAM-searchable SRAM structure (4.6 kB). A hit resolves the stream
 * and its in-group shares in one cycle class; a miss asks the host
 * processor to read the full stream remap table and refill the entry,
 * like a TLB walk (the paper's analogy to virtual memory translation).
 *
 * The functional content of an entry (shares, row base) lives in the
 * StreamRemapTable; the SLB models *which* streams are locally resident
 * and charges the refill penalty.
 */

#ifndef NDPEXT_NDP_SLB_H
#define NDPEXT_NDP_SLB_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"

namespace ndpext {

class Slb
{
  public:
    /**
     * @param entries      Capacity in streams (paper: 32).
     * @param hit_cycles   TCAM search latency on a hit.
     * @param miss_cycles  Host round trip to refill from the remap table.
     */
    Slb(std::uint32_t entries = 32, Cycles hit_cycles = 2,
        Cycles miss_cycles = 1000);

    /**
     * Look up a stream; installs it on a miss (LRU eviction).
     * @return lookup latency in cycles.
     *
     * Inline fast path: the common case (same stream as the previous
     * hit at this unit) touches one cached entry instead of scanning
     * the TCAM array. Side effects (use clock, hit count) are exactly
     * those of the full scan.
     */
    Cycles
    lookup(StreamId sid)
    {
        if (lastHit_ != nullptr && lastHit_->valid
            && lastHit_->sid == sid) {
            lastHit_->lastUse = ++useClock_;
            ++hits_;
            return hitCycles_;
        }
        return lookupScan(sid);
    }

    /** Drop one stream (remap-table update invalidates SLB copies). */
    void invalidate(StreamId sid);

    /** Drop everything (epoch reconfiguration). */
    void invalidateAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void report(StatGroup& stats, const std::string& prefix) const;

    /** Checkpoint hooks (capacity/latencies are configuration). */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(entries_.size());
        for (const Entry& e : entries_) {
            w.u32(e.sid);
            w.u64(e.lastUse);
            w.b(e.valid);
        }
        // lastHit_ as an index so the memoized fast path survives.
        std::uint64_t last = ~std::uint64_t{0};
        if (lastHit_ != nullptr) {
            last = static_cast<std::uint64_t>(lastHit_ - entries_.data());
        }
        w.u64(last);
        w.u64(useClock_);
        w.u64(hits_);
        w.u64(misses_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n == entries_.size(), "SLB capacity mismatch");
        for (Entry& e : entries_) {
            e.sid = static_cast<StreamId>(r.u32());
            e.lastUse = r.u64();
            e.valid = r.b();
        }
        const std::uint64_t last = r.u64();
        lastHit_ =
            last < entries_.size() ? entries_.data() + last : nullptr;
        useClock_ = r.u64();
        hits_ = r.u64();
        misses_ = r.u64();
    }

  private:
    struct Entry
    {
        StreamId sid = kNoStream;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Full TCAM scan (miss/refill path). */
    Cycles lookupScan(StreamId sid);

    std::vector<Entry> entries_;
    /** Most recently hit/installed entry (entries_ never reallocates). */
    Entry* lastHit_ = nullptr;
    Cycles hitCycles_;
    Cycles missCycles_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_NDP_SLB_H
