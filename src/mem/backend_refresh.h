/**
 * @file
 * Refresh- and power-down-aware memory backend.
 *
 * Extends the banked row-buffer model with two effects the default
 * backend ignores:
 *
 *  - All-bank refresh: every tREFI window the device is unavailable for
 *    tRFC. A request arriving inside the blackout stalls to its end
 *    (refreshStalls / refreshStallCycles), and a completed refresh
 *    closes every open row (the precharge-all before REF), so the first
 *    access per bank afterwards pays an activation.
 *  - Power-down idle states: a bank idle longer than `pd-idle` core
 *    cycles is assumed to have entered fast-exit power-down and pays
 *    `pd-exit` wake cycles; idle longer than `sr-idle` means slow-exit
 *    self-refresh and `sr-exit` wake cycles (which also loses the open
 *    row). Residency counters split idle time between the states.
 *
 * Both effects are functions of request timestamps only, preserving the
 * determinism contract. Tunables (all in cycles): refi/rfc (DRAM-clock),
 * pd-idle/pd-exit/sr-idle/sr-exit (core-clock).
 */

#ifndef NDPEXT_MEM_BACKEND_REFRESH_H
#define NDPEXT_MEM_BACKEND_REFRESH_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/mem_backend.h"
#include "sim/resource.h"

namespace ndpext {

class RefreshDramBackend : public MemBackend
{
  public:
    RefreshDramBackend(const MemBackendConfig& cfg,
                       std::uint64_t core_freq_mhz);

    DramResult access(Addr addr, std::uint32_t bytes, bool is_write,
                      Cycles now) override;

    DramResult accessRow(std::uint32_t bank, std::uint64_t row,
                         std::uint32_t bytes, bool is_write,
                         Cycles now) override;

    void report(StatGroup& stats, const std::string& prefix) const override;

    void registerMetrics(MetricRegistry& registry,
                         const std::string& prefix) override;

    void reset() override;

    void serialize(ckpt::Writer& w) const override;
    void deserialize(ckpt::Reader& r) override;

    Cycles refiCycles() const { return refiCycles_; }
    Cycles rfcCycles() const { return rfcCycles_; }
    Cycles pdExitCycles() const { return pdExitCycles_; }
    Cycles srExitCycles() const { return srExitCycles_; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        /** End time of this bank's last access (idle-gap reference). */
        Cycles lastDone = 0;
        /** Refresh window index already accounted by this bank. */
        std::uint64_t lastRefreshIndex = 0;
        BandwidthResource busy{1.0};
    };

    /** Push `t` past the refresh blackout it falls into, if any. */
    Cycles refreshAlign(Cycles t);

    Cycles refiCycles_;
    Cycles rfcCycles_;
    Cycles pdIdleCycles_;
    Cycles pdExitCycles_;
    Cycles srIdleCycles_;
    Cycles srExitCycles_;
    std::vector<Bank> banks_;

    // Refresh / power-state counters
    std::uint64_t refreshStalls_ = 0;
    std::uint64_t refreshStallCycles_ = 0;
    std::uint64_t pdWakes_ = 0;
    std::uint64_t srWakes_ = 0;
    std::uint64_t pdResidencyCycles_ = 0;
    std::uint64_t srResidencyCycles_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_MEM_BACKEND_REFRESH_H
