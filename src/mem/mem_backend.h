/**
 * @file
 * The abstract memory-backend interface and its per-role configuration.
 *
 * Every memory device in the simulated machine -- the DRAM-cache slice of
 * each NDP unit, the DDR5 behind the CXL expander, and host main memory --
 * is modelled by a MemBackend chosen at construction time from a
 * self-registering factory registry (see mem/mem_backend_registry.h,
 * ramulator2's `impl/` pattern). The default backend ("banked", the
 * DramDevice in mem/dram.h) is bit-identical to the historical monolithic
 * model; alternative controllers (FR-FCFS / FCFS scheduling, refresh +
 * power-down awareness) plug in per role via
 * `--mem-backend.<unit|ext|host>=NAME[,key=val...]`.
 *
 * Contracts every backend must honor (DESIGN.md "Memory backend
 * registry"):
 *  - Determinism: access timing is a pure function of the request
 *    sequence; no wall clock, no unseeded randomness. Shard-clone proxies
 *    are fresh instances of the same config, so results are bit-identical
 *    for any --threads value.
 *  - Checkpointing: serialize()/deserialize() capture all mutable state;
 *    the backend name is part of the system config hash, so resuming a
 *    checkpoint under a different backend is rejected up front.
 *  - Telemetry: counters are exported both through report() (--stats-json)
 *    and registerMetrics() (epoch time-series).
 */

#ifndef NDPEXT_MEM_MEM_BACKEND_H
#define NDPEXT_MEM_MEM_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"

namespace ndpext {

class MetricRegistry;

/** Timing/energy parameters of one DRAM technology. */
struct DramTimingParams
{
    std::string name;
    /** DRAM command clock, MHz. */
    double clockMhz = 1600.0;
    /** Row-to-column delay, CAS latency, precharge, in DRAM cycles. */
    std::uint32_t tRcd = 24;
    std::uint32_t tCas = 24;
    std::uint32_t tRp = 24;
    /** Row buffer size in bytes. */
    std::uint64_t rowBytes = 2048;
    /**
     * Device organization. Backends time channels x ranks x banks
     * independent banks behind one shared data bus (totalBanks()); the
     * split exists so presets document the real topology instead of a
     * pre-flattened bank count.
     */
    std::uint32_t channels = 1;
    std::uint32_t ranks = 1;
    /** Independently timed banks per rank. */
    std::uint32_t banks = 8;
    /** Data bus bandwidth of the whole device, bytes per core cycle. */
    double busBytesPerCycle = 16.0;
    /** Read/write dynamic energy, pJ per bit transferred. */
    double rdWrPjPerBit = 1.7;
    /** Activate+precharge energy, nJ per activation. */
    double actPreNj = 0.6;

    /** Flattened bank count actually timed by the backends. */
    std::uint32_t
    totalBanks() const
    {
        return channels * ranks * banks;
    }

    /** NDP-stack HBM3 slice owned by one NDP unit (Table II). */
    static DramTimingParams hbm3Unit();
    /** NDP-stack HMC2 vault owned by one NDP unit (Table II). */
    static DramTimingParams hmc2Unit();
    /** DDR5-4800 extended-memory device: 4 ch x 2 ranks x 16 banks. */
    static DramTimingParams ddr5Extended();
    /** Host-attached DDR5 main memory for the non-NDP baseline. */
    static DramTimingParams ddr5Host();
    /** LPDDR5X-class low-power expander device (Fig. 8(b) diversity). */
    static DramTimingParams lpddr5x();
};

/**
 * Named timing presets, constructible from the CLI (`preset=NAME`) and
 * the registry instead of the hard-coded statics above.
 */
const std::vector<std::string>& dramPresetNames();
bool dramPreset(const std::string& name, DramTimingParams* out);

/** Completion info of one DRAM access. */
struct DramResult
{
    /** Time the critical word is available at the device pins. */
    Cycles done = 0;
    /** True if the access hit the open row. */
    bool rowHit = false;
};

/**
 * One memory backend selection: registry name, resolved timing preset,
 * and backend-specific key=value tunables. Implicitly constructible from
 * a bare DramTimingParams (the default "banked" backend), so legacy call
 * sites that passed timing parameters keep working unchanged.
 */
struct MemBackendConfig
{
    /** Registry key (see mem/mem_backend_registry.h). */
    std::string backend = "banked";
    /** Resolved device timing (preset or role default). */
    DramTimingParams timing;
    /** True once `timing` holds a deliberate choice, not the
     *  default-constructed placeholder (roles fill defaults lazily). */
    bool timingSet = false;
    /** Backend-specific tunables, kept sorted by key (canonical order
     *  for hashing and describe()). Values are numeric strings. */
    std::vector<std::pair<std::string, std::string>> tunables;

    MemBackendConfig() = default;
    // NOLINTNEXTLINE(google-explicit-constructor): legacy timing-only
    // call sites (tests, HostParams) select the default backend.
    MemBackendConfig(const DramTimingParams& t) : timing(t), timingSet(true)
    {
    }
    MemBackendConfig(std::string backend_name, const DramTimingParams& t)
        : backend(std::move(backend_name)), timing(t), timingSet(true)
    {
    }

    /** Tunable lookup with a default (values are validated numeric). */
    double tunable(const std::string& key, double fallback) const;

    /** Set (or replace) one tunable, keeping the canonical sort order. */
    void setTunable(const std::string& key, const std::string& value);

    /** "name,preset=...,key=val,..." round-trippable description. */
    std::string describe() const;

    /**
     * Canonical encoding of the full backend identity (name, timing,
     * tunables) into a checkpoint-hash writer: a resumed image is only
     * valid under the exact backend that produced it.
     */
    void hashInto(ckpt::Writer& w) const;

    /**
     * Parse "NAME[,key=val...]" from the CLI. `preset=NAME` resolves the
     * timing preset immediately; every other key must be numeric and is
     * stored as a tunable (validated against the registry's declared
     * keys in SystemConfig::validate, not here). Returns false with a
     * diagnostic in `*error` on malformed input.
     */
    static bool parseSpec(const std::string& spec, MemBackendConfig* out,
                          std::string* error);
};

/**
 * A memory device: a set of banks behind one shared data bus. Concrete
 * backends implement the access path; the base class owns the timing
 * parameters (converted to core cycles once at construction), the common
 * traffic counters and the energy model, so every backend reports the
 * same baseline statistics under its extras.
 */
class MemBackend
{
  public:
    MemBackend(const DramTimingParams& params, std::uint64_t core_freq_mhz);
    virtual ~MemBackend() = default;

    MemBackend(const MemBackend&) = delete;
    MemBackend& operator=(const MemBackend&) = delete;

    /**
     * Issue an access. @param addr byte address within this device's
     * local address space; @param bytes transfer size; @param now request
     * time. Addresses map row-interleaved across banks.
     */
    virtual DramResult access(Addr addr, std::uint32_t bytes,
                              bool is_write, Cycles now) = 0;

    /**
     * Issue an access to an explicit (bank, row) pair, used by the
     * stream cache which manages DRAM rows directly.
     */
    virtual DramResult accessRow(std::uint32_t bank, std::uint64_t row,
                                 std::uint32_t bytes, bool is_write,
                                 Cycles now) = 0;

    /** Row-hit access latency in core cycles (tCAS + first-word burst). */
    Cycles rowHitLatency() const { return casCycles_ + burstCycles(64); }
    /** Closed-row access latency (tRCD + tCAS + first-word burst). */
    Cycles
    rowClosedLatency() const
    {
        return rcdCycles_ + casCycles_ + burstCycles(64);
    }
    /** Row-conflict latency (tRP + tRCD + tCAS + first-word burst). */
    Cycles
    rowMissLatency() const
    {
        return rpCycles_ + rcdCycles_ + casCycles_ + burstCycles(64);
    }

    /** Cycles to stream `bytes` over the device data bus. */
    Cycles burstCycles(std::uint32_t bytes) const;

    const DramTimingParams& params() const { return params_; }

    /** Registry name this backend was created under ("" if built
     *  directly, e.g. a DramDevice constructed in a unit test). */
    const std::string& backendName() const { return backendName_; }
    void setBackendName(std::string name) { backendName_ = std::move(name); }

    /** Total dynamic energy so far, in nanojoules. */
    virtual double dynamicEnergyNj() const;

    /** Row hits / (hits + misses); 1.0 before the first access. */
    double rowHitRate() const;

    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t activations() const { return activations_; }

    /** Aggregate counters under the given prefix. */
    virtual void report(StatGroup& stats, const std::string& prefix) const;

    /**
     * Register pull-mode telemetry series under `prefix` (duplicate
     * names sum across instances, so per-unit devices registered under
     * one prefix read as the machine-wide series).
     */
    virtual void registerMetrics(MetricRegistry& registry,
                                 const std::string& prefix);

    virtual void reset();

    /** Checkpoint hooks (timing parameters are configuration). */
    virtual void serialize(ckpt::Writer& w) const = 0;
    virtual void deserialize(ckpt::Reader& r) = 0;

  protected:
    /** Shared counter section of serialize()/deserialize(). */
    void serializeCounters(ckpt::Writer& w) const;
    void deserializeCounters(ckpt::Reader& r);

    DramTimingParams params_;
    Cycles rcdCycles_;
    Cycles casCycles_;
    Cycles rpCycles_;
    double busBytesPerCycle_;

    // Common traffic counters
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0; // conflict or closed
    std::uint64_t activations_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;

  private:
    std::string backendName_;
};

/**
 * Construct the backend selected by `cfg` (registry lookup by name).
 * Unknown names are a fatal error here -- CLI frontends validate first
 * (SystemConfig::validate) so users get a recoverable diagnostic with a
 * did-you-mean suggestion instead.
 */
std::unique_ptr<MemBackend> createMemBackend(const MemBackendConfig& cfg,
                                             std::uint64_t core_freq_mhz);

} // namespace ndpext

#endif // NDPEXT_MEM_MEM_BACKEND_H
