/**
 * @file
 * Scheduling memory-controller backends: FR-FCFS and FCFS.
 *
 * Both model a bounded per-bank request queue in front of the banked
 * row-buffer state machine. The atomic engine issues requests with
 * monotone-ish but reorderable timestamps, so the queue is kept as the
 * set of in-flight (not yet retired) requests per bank, ordered by
 * completion time:
 *
 *  - Retire every queued request whose completion is <= now.
 *  - If the queue is still at capacity, the new request stalls until the
 *    oldest in-flight entry drains (queueFullStalls / queueStallCycles).
 *  - Classify the access:
 *      FR-FCFS  row hit if the row matches the open row OR any queued
 *               request targets the same row (the controller reorders it
 *               ahead of row-conflicting traffic). A starvation cap
 *               bounds consecutive reordered hits per bank: after
 *               `cap` hits in a row while conflicting requests wait, the
 *               next same-row access is demoted to a conflict
 *               (starvationRounds counter) so older rows make progress.
 *      FCFS     requests are serviced strictly in arrival order, so a
 *               row hit requires matching the row of the *youngest*
 *               queued request (the row buffer the bank will hold when
 *               this request reaches the head), or the open row when
 *               the queue is idle.
 *  - Latency math and bank occupancy then follow the banked model.
 *
 * Tunables: queue (entries per bank, default 8), cap (FR-FCFS starvation
 * cap, default 4; ignored by FCFS).
 */

#ifndef NDPEXT_MEM_BACKEND_SCHED_H
#define NDPEXT_MEM_BACKEND_SCHED_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/mem_backend.h"
#include "sim/resource.h"

namespace ndpext {

class SchedDramBackend : public MemBackend
{
  public:
    SchedDramBackend(const MemBackendConfig& cfg,
                     std::uint64_t core_freq_mhz, bool row_hit_first);

    DramResult access(Addr addr, std::uint32_t bytes, bool is_write,
                      Cycles now) override;

    DramResult accessRow(std::uint32_t bank, std::uint64_t row,
                         std::uint32_t bytes, bool is_write,
                         Cycles now) override;

    void report(StatGroup& stats, const std::string& prefix) const override;

    void registerMetrics(MetricRegistry& registry,
                         const std::string& prefix) override;

    void reset() override;

    void serialize(ckpt::Writer& w) const override;
    void deserialize(ckpt::Reader& r) override;

    std::uint32_t queueDepth() const { return queueDepth_; }
    std::uint32_t starvationCap() const { return starvationCap_; }

  private:
    /** One in-flight request held in a bank queue. */
    struct Pending
    {
        std::uint64_t row = 0;
        Cycles done = 0;
    };

    struct Bank
    {
        std::int64_t openRow = -1;
        /** Consecutive reordered row hits while conflicts waited. */
        std::uint32_t hitStreak = 0;
        /** In-flight requests, sorted by ascending completion time. */
        std::vector<Pending> queue;
        BandwidthResource busy{1.0};
    };

    void retire(Bank& bank, Cycles now);

    const bool rowHitFirst_;
    std::uint32_t queueDepth_;
    std::uint32_t starvationCap_;
    std::vector<Bank> banks_;

    // Scheduler counters
    std::uint64_t queueFullStalls_ = 0;
    std::uint64_t queueStallCycles_ = 0;
    std::uint64_t starvationRounds_ = 0;
    std::uint64_t queueOccupancySum_ = 0; ///< occupancy sampled per access
    std::uint64_t queueSamples_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_MEM_BACKEND_SCHED_H
