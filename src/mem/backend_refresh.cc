#include "mem/backend_refresh.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "mem/mem_backend_registry.h"
#include "telemetry/metric_registry.h"

namespace ndpext {

namespace {

Cycles
toCoreCyclesRoundUp(double dram_cycles, double dram_mhz, double core_mhz)
{
    const double c = dram_cycles * core_mhz / dram_mhz;
    const auto whole = static_cast<Cycles>(c);
    return whole + (static_cast<double>(whole) < c ? 1 : 0);
}

} // namespace

RefreshDramBackend::RefreshDramBackend(const MemBackendConfig& cfg,
                                       std::uint64_t core_freq_mhz)
    : MemBackend(cfg.timing, core_freq_mhz),
      // JEDEC defaults: tREFI 3.9 us, tRFC ~295 ns at the device clock.
      refiCycles_(toCoreCyclesRoundUp(
          cfg.tunable("refi", 9360.0), cfg.timing.clockMhz,
          static_cast<double>(core_freq_mhz))),
      rfcCycles_(toCoreCyclesRoundUp(
          cfg.tunable("rfc", 708.0), cfg.timing.clockMhz,
          static_cast<double>(core_freq_mhz))),
      pdIdleCycles_(static_cast<Cycles>(cfg.tunable("pd-idle", 2000.0))),
      pdExitCycles_(static_cast<Cycles>(cfg.tunable("pd-exit", 30.0))),
      srIdleCycles_(static_cast<Cycles>(cfg.tunable("sr-idle", 200000.0))),
      srExitCycles_(static_cast<Cycles>(cfg.tunable("sr-exit", 500.0))),
      banks_(cfg.timing.totalBanks())
{
    NDP_ASSERT(refiCycles_ > rfcCycles_,
               "tREFI must exceed tRFC (refi=", refiCycles_,
               " rfc=", rfcCycles_, " core cycles)");
    NDP_ASSERT(srIdleCycles_ >= pdIdleCycles_,
               "self-refresh threshold below power-down threshold");
}

Cycles
RefreshDramBackend::refreshAlign(Cycles t)
{
    const Cycles phase = t % refiCycles_;
    if (phase < rfcCycles_) {
        const Cycles stall = rfcCycles_ - phase;
        ++refreshStalls_;
        refreshStallCycles_ += stall;
        return t + stall;
    }
    return t;
}

DramResult
RefreshDramBackend::access(Addr addr, std::uint32_t bytes, bool is_write,
                           Cycles now)
{
    const std::uint64_t row_linear = addr / params_.rowBytes;
    const std::uint32_t bank = row_linear % banks_.size();
    const std::uint64_t row = row_linear / banks_.size();
    return accessRow(bank, row, bytes, is_write, now);
}

DramResult
RefreshDramBackend::accessRow(std::uint32_t bank_idx, std::uint64_t row,
                              std::uint32_t bytes, bool is_write, Cycles now)
{
    NDP_ASSERT(bank_idx < banks_.size(), "bank=", bank_idx);
    Bank& bank = banks_[bank_idx];

    // A refresh window that elapsed since the bank's last access has
    // precharged all banks: the open row is gone.
    const std::uint64_t refresh_index = now / refiCycles_;
    if (refresh_index > bank.lastRefreshIndex) {
        bank.openRow = -1;
        bank.lastRefreshIndex = refresh_index;
    }

    // Power-state wake penalty, from the idle gap since the last access.
    Cycles issue = now;
    Cycles wake = 0;
    if (bank.lastDone > 0 && issue > bank.lastDone) {
        const Cycles gap = issue - bank.lastDone;
        if (gap >= srIdleCycles_) {
            wake = srExitCycles_;
            ++srWakes_;
            srResidencyCycles_ += gap - srIdleCycles_;
            pdResidencyCycles_ += srIdleCycles_ - pdIdleCycles_;
            bank.openRow = -1; // self-refresh loses the row buffer
        } else if (gap >= pdIdleCycles_) {
            wake = pdExitCycles_;
            ++pdWakes_;
            pdResidencyCycles_ += gap - pdIdleCycles_;
        }
    }

    // Stall out of the refresh blackout (after waking).
    issue = refreshAlign(issue + wake);

    Cycles lat;
    bool hit = false;
    if (bank.openRow == static_cast<std::int64_t>(row)) {
        lat = casCycles_;
        hit = true;
        ++rowHits_;
    } else if (bank.openRow >= 0) {
        lat = rpCycles_ + rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    } else {
        lat = rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    }
    bank.openRow = static_cast<std::int64_t>(row);

    const Cycles burst = burstCycles(bytes);
    const Cycles start = bank.busy.reserveFor(lat + burst, issue);
    const Cycles done = start + lat + burst;
    bank.lastDone = std::max(bank.lastDone, done);

    if (is_write) {
        bytesWritten_ += bytes;
    } else {
        bytesRead_ += bytes;
    }

    return DramResult{done, hit};
}

void
RefreshDramBackend::report(StatGroup& stats,
                           const std::string& prefix) const
{
    MemBackend::report(stats, prefix);
    stats.add(prefix + ".refreshStalls",
              static_cast<double>(refreshStalls_));
    stats.add(prefix + ".refreshStallCycles",
              static_cast<double>(refreshStallCycles_));
    stats.add(prefix + ".pdWakes", static_cast<double>(pdWakes_));
    stats.add(prefix + ".srWakes", static_cast<double>(srWakes_));
    stats.add(prefix + ".pdResidencyCycles",
              static_cast<double>(pdResidencyCycles_));
    stats.add(prefix + ".srResidencyCycles",
              static_cast<double>(srResidencyCycles_));
}

void
RefreshDramBackend::registerMetrics(MetricRegistry& registry,
                                    const std::string& prefix)
{
    MemBackend::registerMetrics(registry, prefix);
    registry.registerCounter(prefix + ".refreshStalls", [this]() {
        return static_cast<double>(refreshStalls_);
    });
    registry.registerCounter(prefix + ".refreshStallCycles", [this]() {
        return static_cast<double>(refreshStallCycles_);
    });
    registry.registerCounter(prefix + ".pdWakes", [this]() {
        return static_cast<double>(pdWakes_);
    });
    registry.registerCounter(prefix + ".srWakes", [this]() {
        return static_cast<double>(srWakes_);
    });
    registry.registerCounter(prefix + ".pdResidencyCycles", [this]() {
        return static_cast<double>(pdResidencyCycles_);
    });
    registry.registerCounter(prefix + ".srResidencyCycles", [this]() {
        return static_cast<double>(srResidencyCycles_);
    });
}

void
RefreshDramBackend::reset()
{
    for (auto& bank : banks_) {
        bank = Bank{};
    }
    refreshStalls_ = refreshStallCycles_ = 0;
    pdWakes_ = srWakes_ = 0;
    pdResidencyCycles_ = srResidencyCycles_ = 0;
    MemBackend::reset();
}

void
RefreshDramBackend::serialize(ckpt::Writer& w) const
{
    w.u64(banks_.size());
    for (const Bank& b : banks_) {
        w.u64(static_cast<std::uint64_t>(b.openRow));
        w.u64(b.lastDone);
        w.u64(b.lastRefreshIndex);
        b.busy.serialize(w);
    }
    serializeCounters(w);
    w.u64(refreshStalls_);
    w.u64(refreshStallCycles_);
    w.u64(pdWakes_);
    w.u64(srWakes_);
    w.u64(pdResidencyCycles_);
    w.u64(srResidencyCycles_);
}

void
RefreshDramBackend::deserialize(ckpt::Reader& r)
{
    const std::uint64_t n = r.u64();
    NDP_ASSERT(n == banks_.size(), "refresh bank count mismatch");
    for (Bank& b : banks_) {
        b.openRow = static_cast<std::int64_t>(r.u64());
        b.lastDone = r.u64();
        b.lastRefreshIndex = r.u64();
        b.busy.deserialize(r);
    }
    deserializeCounters(r);
    refreshStalls_ = r.u64();
    refreshStallCycles_ = r.u64();
    pdWakes_ = r.u64();
    srWakes_ = r.u64();
    pdResidencyCycles_ = r.u64();
    srResidencyCycles_ = r.u64();
}

// Link anchor called from forceLinkMemBackends(): an out-of-line
// function call the optimizer cannot fold away, so static-library links
// always pull this TU (and its registrar) in.
int
linkMemBackendRefresh()
{
    return 1;
}

namespace {

const MemBackendRegistrar refreshRegistrar{MemBackendInfo{
    "refresh",
    "Banked model plus tREFI/tRFC refresh blackouts and fast/slow-exit "
    "power-down idle states with wake penalties",
    {
        {"refi", "refresh interval tREFI in DRAM cycles (default 9360)"},
        {"rfc", "refresh cycle time tRFC in DRAM cycles (default 708)"},
        {"pd-idle", "idle core cycles before fast-exit power-down "
                    "(default 2000)"},
        {"pd-exit", "fast-exit wake penalty, core cycles (default 30)"},
        {"sr-idle", "idle core cycles before self-refresh "
                    "(default 200000)"},
        {"sr-exit", "self-refresh wake penalty, core cycles "
                    "(default 500)"},
    },
    [](const MemBackendConfig& cfg, std::uint64_t core_freq_mhz) {
        return std::make_unique<RefreshDramBackend>(cfg, core_freq_mhz);
    }}};

} // namespace

} // namespace ndpext
