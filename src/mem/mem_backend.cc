#include "mem/mem_backend.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.h"
#include "telemetry/metric_registry.h"

namespace ndpext {

namespace {

/** Convert DRAM-clock cycles to core cycles, rounding up. */
Cycles
toCoreCycles(std::uint32_t dram_cycles, double dram_mhz, double core_mhz)
{
    const double c = static_cast<double>(dram_cycles) * core_mhz / dram_mhz;
    const auto whole = static_cast<Cycles>(c);
    return whole + (static_cast<double>(whole) < c ? 1 : 0);
}

bool
isNumeric(const std::string& s)
{
    if (s.empty()) {
        return false;
    }
    const char* cstr = s.c_str();
    char* end = nullptr;
    std::strtod(cstr, &end);
    return end == cstr + s.size();
}

} // namespace

DramTimingParams
DramTimingParams::hbm3Unit()
{
    DramTimingParams p;
    p.name = "HBM3-unit";
    p.clockMhz = 1600.0;
    p.tRcd = p.tCas = p.tRp = 24;
    p.rowBytes = 2048;
    p.channels = 1;
    p.ranks = 1;
    p.banks = 8;
    // One unit owns 1/16 of a stack's bandwidth; HBM3 stack ~800 GB/s
    // -> ~50 GB/s per unit = 25 B per 2 GHz core cycle.
    p.busBytesPerCycle = 25.0;
    p.rdWrPjPerBit = 1.7;
    p.actPreNj = 0.6;
    return p;
}

DramTimingParams
DramTimingParams::hmc2Unit()
{
    DramTimingParams p;
    p.name = "HMC2-vault";
    p.clockMhz = 1250.0;
    p.tRcd = p.tCas = p.tRp = 14;
    p.rowBytes = 256; // HMC vaults use small rows
    p.channels = 1;
    p.ranks = 1;
    p.banks = 8;
    // 16 vaults x 10 GB/s = 160 GB/s per stack; 10 GB/s = 5 B/cycle.
    p.busBytesPerCycle = 5.0;
    p.rdWrPjPerBit = 1.7;
    p.actPreNj = 0.6;
    return p;
}

DramTimingParams
DramTimingParams::ddr5Extended()
{
    DramTimingParams p;
    p.name = "DDR5-4800-ext";
    p.clockMhz = 2400.0;
    p.tRcd = p.tCas = p.tRp = 40;
    p.rowBytes = 8192;
    p.channels = 4; // Table II: 4 channels x 2 ranks x 16 banks
    p.ranks = 2;
    p.banks = 16;
    // 4 channels x 38.4 GB/s = 153.6 GB/s = 76.8 B per core cycle.
    p.busBytesPerCycle = 76.8;
    p.rdWrPjPerBit = 3.2;
    p.actPreNj = 3.3;
    return p;
}

DramTimingParams
DramTimingParams::ddr5Host()
{
    DramTimingParams p = ddr5Extended();
    p.name = "DDR5-4800-host";
    return p;
}

DramTimingParams
DramTimingParams::lpddr5x()
{
    DramTimingParams p;
    p.name = "LPDDR5X-8533";
    // LPDDR5X-8533: slower core timing than DDR5 but far lower transfer
    // energy -- the low-power expander point for heterogeneous stacks.
    p.clockMhz = 1066.0;
    p.tRcd = 19;
    p.tCas = 17;
    p.tRp = 21;
    p.rowBytes = 2048;
    p.channels = 2;
    p.ranks = 1;
    p.banks = 16;
    // 2 x16 channels at 8533 MT/s ~ 34 GB/s = 17 B per core cycle.
    p.busBytesPerCycle = 17.0;
    p.rdWrPjPerBit = 1.2;
    p.actPreNj = 1.1;
    return p;
}

const std::vector<std::string>&
dramPresetNames()
{
    static const std::vector<std::string> names = {
        "ddr5-4800", "hbm3", "hmc2", "lpddr5x"};
    return names;
}

bool
dramPreset(const std::string& name, DramTimingParams* out)
{
    NDP_ASSERT(out != nullptr);
    if (name == "ddr5-4800") {
        *out = DramTimingParams::ddr5Extended();
        return true;
    }
    if (name == "hbm3") {
        *out = DramTimingParams::hbm3Unit();
        return true;
    }
    if (name == "hmc2") {
        *out = DramTimingParams::hmc2Unit();
        return true;
    }
    if (name == "lpddr5x") {
        *out = DramTimingParams::lpddr5x();
        return true;
    }
    return false;
}

double
MemBackendConfig::tunable(const std::string& key, double fallback) const
{
    for (const auto& [k, v] : tunables) {
        if (k == key) {
            return std::strtod(v.c_str(), nullptr);
        }
    }
    return fallback;
}

void
MemBackendConfig::setTunable(const std::string& key, const std::string& value)
{
    for (auto& [k, v] : tunables) {
        if (k == key) {
            v = value;
            return;
        }
    }
    tunables.emplace_back(key, value);
    std::sort(tunables.begin(), tunables.end());
}

std::string
MemBackendConfig::describe() const
{
    std::string out = backend;
    if (timingSet && !timing.name.empty()) {
        out += ",timing=" + timing.name;
    }
    for (const auto& [k, v] : tunables) {
        out += "," + k + "=" + v;
    }
    return out;
}

void
MemBackendConfig::hashInto(ckpt::Writer& w) const
{
    w.str(backend);
    w.str(timing.name);
    w.d(timing.clockMhz);
    w.u32(timing.tRcd);
    w.u32(timing.tCas);
    w.u32(timing.tRp);
    w.u64(timing.rowBytes);
    w.u32(timing.channels);
    w.u32(timing.ranks);
    w.u32(timing.banks);
    w.d(timing.busBytesPerCycle);
    w.d(timing.rdWrPjPerBit);
    w.d(timing.actPreNj);
    w.u64(tunables.size());
    for (const auto& [k, v] : tunables) {
        w.str(k);
        w.str(v);
    }
}

bool
MemBackendConfig::parseSpec(const std::string& spec, MemBackendConfig* out,
                            std::string* error)
{
    NDP_ASSERT(out != nullptr);
    const auto fail = [&](const std::string& why) {
        if (error != nullptr) {
            *error = why;
        }
        return false;
    };
    if (spec.empty()) {
        return fail("empty backend spec");
    }

    MemBackendConfig cfg;
    std::size_t pos = spec.find(',');
    cfg.backend = spec.substr(0, pos);
    if (cfg.backend.empty()) {
        return fail("backend spec '" + spec + "' has an empty name");
    }
    while (pos != std::string::npos) {
        const std::size_t start = pos + 1;
        pos = spec.find(',', start);
        const std::string item = spec.substr(
            start,
            pos == std::string::npos ? std::string::npos : pos - start);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
            return fail("backend option '" + item
                        + "' is not of the form key=value");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "preset") {
            if (!dramPreset(value, &cfg.timing)) {
                std::string known;
                for (const auto& n : dramPresetNames()) {
                    known += (known.empty() ? "" : ", ") + n;
                }
                return fail("unknown timing preset '" + value
                            + "' (known presets: " + known + ")");
            }
            cfg.timingSet = true;
            continue;
        }
        if (!isNumeric(value)) {
            return fail("backend option '" + key + "=" + value
                        + "' must have a numeric value");
        }
        cfg.setTunable(key, value);
    }
    *out = cfg;
    return true;
}

MemBackend::MemBackend(const DramTimingParams& params,
                       std::uint64_t core_freq_mhz)
    : params_(params),
      rcdCycles_(toCoreCycles(params.tRcd, params.clockMhz,
                              static_cast<double>(core_freq_mhz))),
      casCycles_(toCoreCycles(params.tCas, params.clockMhz,
                              static_cast<double>(core_freq_mhz))),
      rpCycles_(toCoreCycles(params.tRp, params.clockMhz,
                             static_cast<double>(core_freq_mhz))),
      busBytesPerCycle_(params.busBytesPerCycle)
{
    NDP_ASSERT(params.totalBanks() > 0 && params.rowBytes > 0);
}

Cycles
MemBackend::burstCycles(std::uint32_t bytes) const
{
    const double c = static_cast<double>(bytes) / busBytesPerCycle_;
    const auto whole = static_cast<Cycles>(c);
    return std::max<Cycles>(
        1, whole + (static_cast<double>(whole) < c ? 1 : 0));
}

double
MemBackend::dynamicEnergyNj() const
{
    const double bits =
        static_cast<double>(bytesRead_ + bytesWritten_) * 8.0;
    return bits * params_.rdWrPjPerBit * 1e-3
        + static_cast<double>(activations_) * params_.actPreNj;
}

double
MemBackend::rowHitRate() const
{
    const std::uint64_t total = rowHits_ + rowMisses_;
    return total == 0 ? 1.0
                      : static_cast<double>(rowHits_)
                            / static_cast<double>(total);
}

void
MemBackend::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".rowHits", static_cast<double>(rowHits_));
    stats.add(prefix + ".rowMisses", static_cast<double>(rowMisses_));
    stats.add(prefix + ".activations", static_cast<double>(activations_));
    stats.add(prefix + ".bytesRead", static_cast<double>(bytesRead_));
    stats.add(prefix + ".bytesWritten", static_cast<double>(bytesWritten_));
    stats.add(prefix + ".dynamicEnergyNj", dynamicEnergyNj());
}

void
MemBackend::registerMetrics(MetricRegistry& registry,
                            const std::string& prefix)
{
    registry.registerCounter(prefix + ".rowHits", [this]() {
        return static_cast<double>(rowHits_);
    });
    registry.registerCounter(prefix + ".rowMisses", [this]() {
        return static_cast<double>(rowMisses_);
    });
    registry.registerCounter(prefix + ".activations", [this]() {
        return static_cast<double>(activations_);
    });
    registry.registerCounter(prefix + ".bytesRead", [this]() {
        return static_cast<double>(bytesRead_);
    });
    registry.registerCounter(prefix + ".bytesWritten", [this]() {
        return static_cast<double>(bytesWritten_);
    });
}

void
MemBackend::reset()
{
    rowHits_ = rowMisses_ = activations_ = 0;
    bytesRead_ = bytesWritten_ = 0;
}

void
MemBackend::serializeCounters(ckpt::Writer& w) const
{
    w.u64(rowHits_);
    w.u64(rowMisses_);
    w.u64(activations_);
    w.u64(bytesRead_);
    w.u64(bytesWritten_);
}

void
MemBackend::deserializeCounters(ckpt::Reader& r)
{
    rowHits_ = r.u64();
    rowMisses_ = r.u64();
    activations_ = r.u64();
    bytesRead_ = r.u64();
    bytesWritten_ = r.u64();
}

} // namespace ndpext
