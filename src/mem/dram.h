/**
 * @file
 * Banked DRAM timing and energy model.
 *
 * Implements the row-buffer state machine with the Table II parameters:
 *   HBM3  1600 MHz, RCD-CAS-RP 24-24-24, RD/WR 1.7 pJ/bit, ACT+PRE 0.6 nJ
 *   HMC2  1250 MHz, RCD-CAS-RP 14-14-14
 *   DDR5-4800 (extended memory), RCD-CAS-RP 40-40-40, 3.2 pJ/bit, 3.3 nJ
 *
 * All latencies are converted to *core* cycles (2 GHz) at construction so
 * the access path is pure integer arithmetic. Bank-level contention is
 * modelled with gap-filling interval reservation per bank (see
 * sim/resource.h); the row-buffer state itself is a scalar approximation.
 */

#ifndef NDPEXT_MEM_DRAM_H
#define NDPEXT_MEM_DRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"
#include "sim/stats.h"

namespace ndpext {

/** Timing/energy parameters of one DRAM technology. */
struct DramTimingParams
{
    std::string name;
    /** DRAM command clock, MHz. */
    double clockMhz = 1600.0;
    /** Row-to-column delay, CAS latency, precharge, in DRAM cycles. */
    std::uint32_t tRcd = 24;
    std::uint32_t tCas = 24;
    std::uint32_t tRp = 24;
    /** Row buffer size in bytes. */
    std::uint64_t rowBytes = 2048;
    /** Number of independently timed banks in this device. */
    std::uint32_t banks = 8;
    /** Data bus bandwidth of the whole device, bytes per core cycle. */
    double busBytesPerCycle = 16.0;
    /** Read/write dynamic energy, pJ per bit transferred. */
    double rdWrPjPerBit = 1.7;
    /** Activate+precharge energy, nJ per activation. */
    double actPreNj = 0.6;

    /** NDP-stack HBM3 slice owned by one NDP unit (Table II). */
    static DramTimingParams hbm3Unit();
    /** NDP-stack HMC2 vault owned by one NDP unit (Table II). */
    static DramTimingParams hmc2Unit();
    /** DDR5-4800 extended-memory device: 4 ch x 2 ranks x 16 banks. */
    static DramTimingParams ddr5Extended();
    /** Host-attached DDR5 main memory for the non-NDP baseline. */
    static DramTimingParams ddr5Host();
};

/** Completion info of one DRAM access. */
struct DramResult
{
    /** Time the critical word is available at the device pins. */
    Cycles done = 0;
    /** True if the access hit the open row. */
    bool rowHit = false;
};

/**
 * A set of banks behind one shared data bus. Addresses are mapped
 * row-interleaved across banks: consecutive rows go to different banks,
 * maximizing bank-level parallelism for streaming patterns.
 */
class DramDevice
{
  public:
    DramDevice(const DramTimingParams& params, std::uint64_t core_freq_mhz);

    /**
     * Issue an access. @param addr byte address within this device's local
     * address space; @param bytes transfer size; @param now request time.
     */
    DramResult access(Addr addr, std::uint32_t bytes, bool is_write,
                      Cycles now);

    /**
     * Issue an access to an explicit (bank, row) pair, used by the stream
     * cache which manages DRAM rows directly.
     */
    DramResult accessRow(std::uint32_t bank, std::uint64_t row,
                         std::uint32_t bytes, bool is_write, Cycles now);

    /** Row-hit access latency in core cycles (tCAS + first-word burst). */
    Cycles rowHitLatency() const { return casCycles_ + burstCycles(64); }
    /** Closed-row access latency (tRCD + tCAS + first-word burst). */
    Cycles
    rowClosedLatency() const
    {
        return rcdCycles_ + casCycles_ + burstCycles(64);
    }
    /** Row-conflict latency (tRP + tRCD + tCAS + first-word burst). */
    Cycles
    rowMissLatency() const
    {
        return rpCycles_ + rcdCycles_ + casCycles_ + burstCycles(64);
    }

    /** Cycles to stream `bytes` over the device data bus. */
    Cycles burstCycles(std::uint32_t bytes) const;

    const DramTimingParams& params() const { return params_; }

    /** Total dynamic energy so far, in nanojoules. */
    double dynamicEnergyNj() const;

    /** Aggregate counters under the given prefix. */
    void report(StatGroup& stats, const std::string& prefix) const;

    void reset();

    /** Checkpoint hooks (timing parameters are configuration). */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(banks_.size());
        for (const Bank& b : banks_) {
            w.u64(static_cast<std::uint64_t>(b.openRow));
            b.busy.serialize(w);
        }
        w.u64(rowHits_);
        w.u64(rowMisses_);
        w.u64(activations_);
        w.u64(bytesRead_);
        w.u64(bytesWritten_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n == banks_.size(), "DRAM bank count mismatch");
        for (Bank& b : banks_) {
            b.openRow = static_cast<std::int64_t>(r.u64());
            b.busy.deserialize(r);
        }
        rowHits_ = r.u64();
        rowMisses_ = r.u64();
        activations_ = r.u64();
        bytesRead_ = r.u64();
        bytesWritten_ = r.u64();
    }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        /** Occupancy of the bank (command + data time), gap-filling. */
        BandwidthResource busy{1.0};
    };

    DramTimingParams params_;
    Cycles rcdCycles_;
    Cycles casCycles_;
    Cycles rpCycles_;
    double busBytesPerCycle_;
    std::vector<Bank> banks_;

    // Counters
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0; // conflict or closed
    std::uint64_t activations_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_MEM_DRAM_H
