/**
 * @file
 * Banked DRAM timing and energy model -- the default ("banked") memory
 * backend.
 *
 * Implements the row-buffer state machine with the Table II parameters:
 *   HBM3  1600 MHz, RCD-CAS-RP 24-24-24, RD/WR 1.7 pJ/bit, ACT+PRE 0.6 nJ
 *   HMC2  1250 MHz, RCD-CAS-RP 14-14-14
 *   DDR5-4800 (extended memory), RCD-CAS-RP 40-40-40, 3.2 pJ/bit, 3.3 nJ
 *
 * All latencies are converted to *core* cycles (2 GHz) at construction so
 * the access path is pure integer arithmetic. Bank-level contention is
 * modelled with gap-filling interval reservation per bank (see
 * sim/resource.h); the row-buffer state itself is a scalar approximation.
 *
 * DramDevice stays a concrete class (tests and tools construct it
 * directly); it is also registered as backend "banked" in the memory
 * backend registry (mem/mem_backend_registry.h) and is the bit-identical
 * default for every memory role.
 */

#ifndef NDPEXT_MEM_DRAM_H
#define NDPEXT_MEM_DRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/mem_backend.h"
#include "sim/resource.h"
#include "sim/stats.h"

namespace ndpext {

/**
 * A set of banks behind one shared data bus. Addresses are mapped
 * row-interleaved across banks: consecutive rows go to different banks,
 * maximizing bank-level parallelism for streaming patterns.
 */
class DramDevice : public MemBackend
{
  public:
    DramDevice(const DramTimingParams& params, std::uint64_t core_freq_mhz);

    DramResult access(Addr addr, std::uint32_t bytes, bool is_write,
                      Cycles now) override;

    DramResult accessRow(std::uint32_t bank, std::uint64_t row,
                         std::uint32_t bytes, bool is_write,
                         Cycles now) override;

    void reset() override;

    /** Checkpoint hooks (timing parameters are configuration). */
    void
    serialize(ckpt::Writer& w) const override
    {
        w.u64(banks_.size());
        for (const Bank& b : banks_) {
            w.u64(static_cast<std::uint64_t>(b.openRow));
            b.busy.serialize(w);
        }
        serializeCounters(w);
    }

    void
    deserialize(ckpt::Reader& r) override
    {
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n == banks_.size(), "DRAM bank count mismatch");
        for (Bank& b : banks_) {
            b.openRow = static_cast<std::int64_t>(r.u64());
            b.busy.deserialize(r);
        }
        deserializeCounters(r);
    }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        /** Occupancy of the bank (command + data time), gap-filling. */
        BandwidthResource busy{1.0};
    };

    std::vector<Bank> banks_;
};

} // namespace ndpext

#endif // NDPEXT_MEM_DRAM_H
