#include "mem/mem_backend_registry.h"

#include "common/logging.h"
#include "common/suggest.h"

namespace ndpext {

MemBackendRegistry&
MemBackendRegistry::instance()
{
    forceLinkMemBackends();
    static MemBackendRegistry registry;
    return registry;
}

void
MemBackendRegistry::add(MemBackendInfo info)
{
    NDP_ASSERT(!info.name.empty() && info.factory,
               "backend registration needs a name and a factory");
    const auto [it, inserted] =
        backends_.emplace(info.name, std::move(info));
    if (!inserted) {
        NDP_FATAL("duplicate memory backend registration: ", it->first);
    }
}

const MemBackendInfo*
MemBackendRegistry::find(const std::string& name) const
{
    const auto it = backends_.find(name);
    return it == backends_.end() ? nullptr : &it->second;
}

std::vector<std::string>
MemBackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto& [name, info] : backends_) {
        out.push_back(name);
    }
    return out; // std::map iteration is already sorted
}

std::string
MemBackendRegistry::suggest(const std::string& name) const
{
    return closestName(name, names());
}

MemBackendRegistrar::MemBackendRegistrar(MemBackendInfo info)
{
    MemBackendRegistry::instance().add(std::move(info));
}

std::unique_ptr<MemBackend>
createMemBackend(const MemBackendConfig& cfg, std::uint64_t core_freq_mhz)
{
    const MemBackendInfo* info =
        MemBackendRegistry::instance().find(cfg.backend);
    if (info == nullptr) {
        NDP_FATAL("unknown memory backend: ", cfg.backend,
                  " (validate configs with SystemConfig::validate first)");
    }
    std::unique_ptr<MemBackend> backend =
        info->factory(cfg, core_freq_mhz);
    NDP_ASSERT(backend != nullptr, "backend factory returned null");
    backend->setBackendName(cfg.backend);
    return backend;
}

int linkMemBackendBanked();
int linkMemBackendSched();
int linkMemBackendRefresh();

void
forceLinkMemBackends()
{
    // Calling one exported function per backend TU forces the linker to
    // pull those archive members (and run their registrars). A volatile
    // sink keeps the calls from being optimized out.
    static volatile int anchor = linkMemBackendBanked()
                                 + linkMemBackendSched()
                                 + linkMemBackendRefresh();
    (void)anchor;
}

} // namespace ndpext
