#include "mem/mem_backend_registry.h"

#include <algorithm>

#include "common/logging.h"

namespace ndpext {

namespace {

/** Classic two-row Levenshtein distance. */
std::size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) {
        prev[j] = j;
    }
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

MemBackendRegistry&
MemBackendRegistry::instance()
{
    forceLinkMemBackends();
    static MemBackendRegistry registry;
    return registry;
}

void
MemBackendRegistry::add(MemBackendInfo info)
{
    NDP_ASSERT(!info.name.empty() && info.factory,
               "backend registration needs a name and a factory");
    const auto [it, inserted] =
        backends_.emplace(info.name, std::move(info));
    if (!inserted) {
        NDP_FATAL("duplicate memory backend registration: ", it->first);
    }
}

const MemBackendInfo*
MemBackendRegistry::find(const std::string& name) const
{
    const auto it = backends_.find(name);
    return it == backends_.end() ? nullptr : &it->second;
}

std::vector<std::string>
MemBackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto& [name, info] : backends_) {
        out.push_back(name);
    }
    return out; // std::map iteration is already sorted
}

std::string
MemBackendRegistry::suggest(const std::string& name) const
{
    std::string best;
    std::size_t bestDist = std::max<std::size_t>(2, name.size() / 3) + 1;
    for (const auto& [candidate, info] : backends_) {
        const std::size_t d = editDistance(name, candidate);
        if (d < bestDist) {
            bestDist = d;
            best = candidate;
        }
    }
    return best;
}

MemBackendRegistrar::MemBackendRegistrar(MemBackendInfo info)
{
    MemBackendRegistry::instance().add(std::move(info));
}

std::unique_ptr<MemBackend>
createMemBackend(const MemBackendConfig& cfg, std::uint64_t core_freq_mhz)
{
    const MemBackendInfo* info =
        MemBackendRegistry::instance().find(cfg.backend);
    if (info == nullptr) {
        NDP_FATAL("unknown memory backend: ", cfg.backend,
                  " (validate configs with SystemConfig::validate first)");
    }
    std::unique_ptr<MemBackend> backend =
        info->factory(cfg, core_freq_mhz);
    NDP_ASSERT(backend != nullptr, "backend factory returned null");
    backend->setBackendName(cfg.backend);
    return backend;
}

int linkMemBackendBanked();
int linkMemBackendSched();
int linkMemBackendRefresh();

void
forceLinkMemBackends()
{
    // Calling one exported function per backend TU forces the linker to
    // pull those archive members (and run their registrars). A volatile
    // sink keeps the calls from being optimized out.
    static volatile int anchor = linkMemBackendBanked()
                                 + linkMemBackendSched()
                                 + linkMemBackendRefresh();
    (void)anchor;
}

} // namespace ndpext
