/**
 * @file
 * Self-registering factory registry for memory backends.
 *
 * Each backend implementation file defines a file-scope
 * `MemBackendRegistrar` whose constructor inserts a MemBackendInfo
 * (name, description, tunable schema, factory) into the process-wide
 * registry -- the ramulator2 `impl/` pattern. CLI frontends enumerate
 * the registry for `--list-mem-backends`, SystemConfig::validate checks
 * names and tunable keys against it (with an edit-distance did-you-mean
 * on unknown names), and createMemBackend() in mem/mem_backend.h
 * constructs by name.
 *
 * Registrars live in static libraries, which linkers happily dead-strip
 * when no symbol in the TU is otherwise referenced. Every backend TU
 * therefore exports an anchor function that mem_backend_registry.cc --
 * always linked, since createMemBackend lives there -- calls from
 * forceLinkMemBackends(). Adding a backend means adding its anchor
 * there; forgetting does not fail silently (the registry tests count
 * registered names).
 */

#ifndef NDPEXT_MEM_MEM_BACKEND_REGISTRY_H
#define NDPEXT_MEM_MEM_BACKEND_REGISTRY_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/mem_backend.h"

namespace ndpext {

/** One tunable a backend accepts via `--mem-backend.<role>=name,key=v`. */
struct MemTunable
{
    std::string key;
    std::string description;
};

/** Registry record of one backend implementation. */
struct MemBackendInfo
{
    std::string name;
    std::string description;
    /** Declared tunables; unknown keys are a validation error. */
    std::vector<MemTunable> tunables;
    std::function<std::unique_ptr<MemBackend>(const MemBackendConfig&,
                                              std::uint64_t core_freq_mhz)>
        factory;
};

class MemBackendRegistry
{
  public:
    static MemBackendRegistry& instance();

    /** Register a backend; duplicate names are a fatal error. */
    void add(MemBackendInfo info);

    /** Lookup by exact name; nullptr if absent. */
    const MemBackendInfo* find(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Closest registered name to `name` by Levenshtein distance, for
     * did-you-mean diagnostics. Empty if nothing is within
     * max(2, len/3) edits.
     */
    std::string suggest(const std::string& name) const;

  private:
    MemBackendRegistry() = default;
    std::map<std::string, MemBackendInfo> backends_;
};

/** Static-initialization helper: constructing one registers a backend. */
struct MemBackendRegistrar
{
    explicit MemBackendRegistrar(MemBackendInfo info);
};

/**
 * Touch every backend TU's anchor so static-library links retain the
 * registrars. Called from MemBackendRegistry::instance(); costs nothing
 * after the first call.
 */
void forceLinkMemBackends();

} // namespace ndpext

#endif // NDPEXT_MEM_MEM_BACKEND_REGISTRY_H
