#include "mem/dram.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

namespace {

/** Convert DRAM-clock cycles to core cycles, rounding up. */
Cycles
toCoreCycles(std::uint32_t dram_cycles, double dram_mhz, double core_mhz)
{
    const double c = static_cast<double>(dram_cycles) * core_mhz / dram_mhz;
    const auto whole = static_cast<Cycles>(c);
    return whole + (static_cast<double>(whole) < c ? 1 : 0);
}

} // namespace

DramTimingParams
DramTimingParams::hbm3Unit()
{
    DramTimingParams p;
    p.name = "HBM3-unit";
    p.clockMhz = 1600.0;
    p.tRcd = p.tCas = p.tRp = 24;
    p.rowBytes = 2048;
    p.banks = 8;
    // One unit owns 1/16 of a stack's bandwidth; HBM3 stack ~800 GB/s
    // -> ~50 GB/s per unit = 25 B per 2 GHz core cycle.
    p.busBytesPerCycle = 25.0;
    p.rdWrPjPerBit = 1.7;
    p.actPreNj = 0.6;
    return p;
}

DramTimingParams
DramTimingParams::hmc2Unit()
{
    DramTimingParams p;
    p.name = "HMC2-vault";
    p.clockMhz = 1250.0;
    p.tRcd = p.tCas = p.tRp = 14;
    p.rowBytes = 256; // HMC vaults use small rows
    p.banks = 8;
    // 16 vaults x 10 GB/s = 160 GB/s per stack; 10 GB/s = 5 B/cycle.
    p.busBytesPerCycle = 5.0;
    p.rdWrPjPerBit = 1.7;
    p.actPreNj = 0.6;
    return p;
}

DramTimingParams
DramTimingParams::ddr5Extended()
{
    DramTimingParams p;
    p.name = "DDR5-4800-ext";
    p.clockMhz = 2400.0;
    p.tRcd = p.tCas = p.tRp = 40;
    p.rowBytes = 8192;
    p.banks = 4 * 2 * 16; // 4 channels x 2 ranks x 16 banks (Table II)
    // 4 channels x 38.4 GB/s = 153.6 GB/s = 76.8 B per core cycle.
    p.busBytesPerCycle = 76.8;
    p.rdWrPjPerBit = 3.2;
    p.actPreNj = 3.3;
    return p;
}

DramTimingParams
DramTimingParams::ddr5Host()
{
    DramTimingParams p = ddr5Extended();
    p.name = "DDR5-4800-host";
    return p;
}

DramDevice::DramDevice(const DramTimingParams& params,
                       std::uint64_t core_freq_mhz)
    : params_(params),
      rcdCycles_(toCoreCycles(params.tRcd, params.clockMhz,
                              static_cast<double>(core_freq_mhz))),
      casCycles_(toCoreCycles(params.tCas, params.clockMhz,
                              static_cast<double>(core_freq_mhz))),
      rpCycles_(toCoreCycles(params.tRp, params.clockMhz,
                             static_cast<double>(core_freq_mhz))),
      busBytesPerCycle_(params.busBytesPerCycle),
      banks_(params.banks)
{
    NDP_ASSERT(params.banks > 0 && params.rowBytes > 0);
}

Cycles
DramDevice::burstCycles(std::uint32_t bytes) const
{
    const double c = static_cast<double>(bytes) / busBytesPerCycle_;
    const auto whole = static_cast<Cycles>(c);
    return std::max<Cycles>(
        1, whole + (static_cast<double>(whole) < c ? 1 : 0));
}

DramResult
DramDevice::access(Addr addr, std::uint32_t bytes, bool is_write, Cycles now)
{
    const std::uint64_t row_linear = addr / params_.rowBytes;
    const std::uint32_t bank = row_linear % params_.banks;
    const std::uint64_t row = row_linear / params_.banks;
    return accessRow(bank, row, bytes, is_write, now);
}

DramResult
DramDevice::accessRow(std::uint32_t bank_idx, std::uint64_t row,
                      std::uint32_t bytes, bool is_write, Cycles now)
{
    NDP_ASSERT(bank_idx < banks_.size(), "bank=", bank_idx);
    Bank& bank = banks_[bank_idx];

    // Row-buffer state is kept scalar (last access wins); out-of-order
    // evaluation makes it approximate, which is acceptable for hit-rate
    // statistics. Occupancy uses gap-filling intervals.
    Cycles lat;
    bool hit = false;
    if (bank.openRow == static_cast<std::int64_t>(row)) {
        lat = casCycles_;
        hit = true;
        ++rowHits_;
    } else if (bank.openRow >= 0) {
        lat = rpCycles_ + rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    } else {
        lat = rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    }
    bank.openRow = static_cast<std::int64_t>(row);

    const Cycles burst = burstCycles(bytes);
    const Cycles start = bank.busy.reserveFor(lat + burst, now);

    if (is_write) {
        bytesWritten_ += bytes;
    } else {
        bytesRead_ += bytes;
    }

    return DramResult{start + lat + burst, hit};
}

double
DramDevice::dynamicEnergyNj() const
{
    const double bits =
        static_cast<double>(bytesRead_ + bytesWritten_) * 8.0;
    return bits * params_.rdWrPjPerBit * 1e-3
        + static_cast<double>(activations_) * params_.actPreNj;
}

void
DramDevice::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".rowHits", static_cast<double>(rowHits_));
    stats.add(prefix + ".rowMisses", static_cast<double>(rowMisses_));
    stats.add(prefix + ".activations", static_cast<double>(activations_));
    stats.add(prefix + ".bytesRead", static_cast<double>(bytesRead_));
    stats.add(prefix + ".bytesWritten", static_cast<double>(bytesWritten_));
    stats.add(prefix + ".dynamicEnergyNj", dynamicEnergyNj());
}

void
DramDevice::reset()
{
    for (auto& bank : banks_) {
        bank = Bank{};
    }
    rowHits_ = rowMisses_ = activations_ = 0;
    bytesRead_ = bytesWritten_ = 0;
}

} // namespace ndpext
