#include "mem/dram.h"

#include <memory>

#include "common/logging.h"
#include "mem/mem_backend_registry.h"

namespace ndpext {

DramDevice::DramDevice(const DramTimingParams& params,
                       std::uint64_t core_freq_mhz)
    : MemBackend(params, core_freq_mhz), banks_(params.totalBanks())
{
}

DramResult
DramDevice::access(Addr addr, std::uint32_t bytes, bool is_write, Cycles now)
{
    const std::uint64_t row_linear = addr / params_.rowBytes;
    const std::uint32_t bank = row_linear % banks_.size();
    const std::uint64_t row = row_linear / banks_.size();
    return accessRow(bank, row, bytes, is_write, now);
}

DramResult
DramDevice::accessRow(std::uint32_t bank_idx, std::uint64_t row,
                      std::uint32_t bytes, bool is_write, Cycles now)
{
    NDP_ASSERT(bank_idx < banks_.size(), "bank=", bank_idx);
    Bank& bank = banks_[bank_idx];

    // Row-buffer state is kept scalar (last access wins); out-of-order
    // evaluation makes it approximate, which is acceptable for hit-rate
    // statistics. Occupancy uses gap-filling intervals.
    Cycles lat;
    bool hit = false;
    if (bank.openRow == static_cast<std::int64_t>(row)) {
        lat = casCycles_;
        hit = true;
        ++rowHits_;
    } else if (bank.openRow >= 0) {
        lat = rpCycles_ + rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    } else {
        lat = rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    }
    bank.openRow = static_cast<std::int64_t>(row);

    const Cycles burst = burstCycles(bytes);
    const Cycles start = bank.busy.reserveFor(lat + burst, now);

    if (is_write) {
        bytesWritten_ += bytes;
    } else {
        bytesRead_ += bytes;
    }

    return DramResult{start + lat + burst, hit};
}

void
DramDevice::reset()
{
    for (auto& bank : banks_) {
        bank = Bank{};
    }
    MemBackend::reset();
}

// Link anchor called from forceLinkMemBackends(): an out-of-line
// function call the optimizer cannot fold away, so static-library links
// always pull this TU (and its registrar) in.
int
linkMemBackendBanked()
{
    return 1;
}

namespace {

const MemBackendRegistrar bankedRegistrar{MemBackendInfo{
    "banked",
    "Banked row-buffer model with gap-filling bank occupancy (default; "
    "bit-identical to the historical monolithic DRAM model)",
    {},
    [](const MemBackendConfig& cfg, std::uint64_t core_freq_mhz) {
        return std::make_unique<DramDevice>(cfg.timing, core_freq_mhz);
    }}};

} // namespace

} // namespace ndpext
