#include "mem/backend_sched.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "mem/mem_backend_registry.h"
#include "telemetry/metric_registry.h"

namespace ndpext {

SchedDramBackend::SchedDramBackend(const MemBackendConfig& cfg,
                                   std::uint64_t core_freq_mhz,
                                   bool row_hit_first)
    : MemBackend(cfg.timing, core_freq_mhz),
      rowHitFirst_(row_hit_first),
      queueDepth_(static_cast<std::uint32_t>(cfg.tunable("queue", 8.0))),
      starvationCap_(static_cast<std::uint32_t>(cfg.tunable("cap", 4.0))),
      banks_(cfg.timing.totalBanks())
{
    NDP_ASSERT(queueDepth_ > 0, "scheduler queue depth must be nonzero");
    NDP_ASSERT(starvationCap_ > 0, "starvation cap must be nonzero");
}

void
SchedDramBackend::retire(Bank& bank, Cycles now)
{
    auto& q = bank.queue;
    const auto first_live = std::find_if(
        q.begin(), q.end(),
        [now](const Pending& p) { return p.done > now; });
    q.erase(q.begin(), first_live);
}

DramResult
SchedDramBackend::access(Addr addr, std::uint32_t bytes, bool is_write,
                         Cycles now)
{
    const std::uint64_t row_linear = addr / params_.rowBytes;
    const std::uint32_t bank = row_linear % banks_.size();
    const std::uint64_t row = row_linear / banks_.size();
    return accessRow(bank, row, bytes, is_write, now);
}

DramResult
SchedDramBackend::accessRow(std::uint32_t bank_idx, std::uint64_t row,
                            std::uint32_t bytes, bool is_write, Cycles now)
{
    NDP_ASSERT(bank_idx < banks_.size(), "bank=", bank_idx);
    Bank& bank = banks_[bank_idx];
    auto& q = bank.queue;

    retire(bank, now);

    queueOccupancySum_ += q.size();
    ++queueSamples_;

    // Bounded queue: a full queue backpressures the requester until the
    // oldest in-flight entry completes.
    Cycles issue = now;
    if (q.size() >= queueDepth_) {
        const Cycles drained = q.front().done;
        queueStallCycles_ += drained - issue;
        ++queueFullStalls_;
        issue = drained;
        retire(bank, issue);
    }

    // Classify against the queue the request joins.
    const auto same_row = [row](const Pending& p) { return p.row == row; };
    bool hit;
    if (rowHitFirst_) {
        // FR-FCFS: a request matching the open row or any in-flight row
        // is reordered ahead of conflicting traffic and hits.
        hit = bank.openRow == static_cast<std::int64_t>(row)
              || std::any_of(q.begin(), q.end(), same_row);
        const bool bypassed_conflict =
            hit
            && std::any_of(q.begin(), q.end(), [row](const Pending& p) {
                   return p.row != row;
               });
        if (bypassed_conflict && bank.hitStreak >= starvationCap_) {
            // Starvation cap: stop jumping the queue, pay the conflict.
            hit = false;
            ++starvationRounds_;
        }
        if (hit && bypassed_conflict) {
            ++bank.hitStreak;
        } else {
            bank.hitStreak = 0;
        }
    } else {
        // FCFS: in-order service; the row buffer seen by this request is
        // whatever the youngest queued request leaves behind.
        hit = q.empty() ? bank.openRow == static_cast<std::int64_t>(row)
                        : q.back().row == row;
    }

    Cycles lat;
    if (hit) {
        lat = casCycles_;
        ++rowHits_;
    } else if (bank.openRow >= 0 || !q.empty()) {
        lat = rpCycles_ + rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    } else {
        lat = rcdCycles_ + casCycles_;
        ++rowMisses_;
        ++activations_;
    }
    bank.openRow = static_cast<std::int64_t>(row);

    const Cycles burst = burstCycles(bytes);
    const Cycles start = bank.busy.reserveFor(lat + burst, issue);
    const Cycles done = start + lat + burst;

    Pending entry{row, done};
    q.insert(std::upper_bound(q.begin(), q.end(), entry,
                              [](const Pending& a, const Pending& b) {
                                  return a.done < b.done;
                              }),
             entry);

    if (is_write) {
        bytesWritten_ += bytes;
    } else {
        bytesRead_ += bytes;
    }

    return DramResult{done, hit};
}

void
SchedDramBackend::report(StatGroup& stats, const std::string& prefix) const
{
    MemBackend::report(stats, prefix);
    stats.add(prefix + ".queueFullStalls",
              static_cast<double>(queueFullStalls_));
    stats.add(prefix + ".queueStallCycles",
              static_cast<double>(queueStallCycles_));
    stats.add(prefix + ".starvationRounds",
              static_cast<double>(starvationRounds_));
    stats.add(prefix + ".queueOccupancySum",
              static_cast<double>(queueOccupancySum_));
    stats.add(prefix + ".queueSamples",
              static_cast<double>(queueSamples_));
}

void
SchedDramBackend::registerMetrics(MetricRegistry& registry,
                                  const std::string& prefix)
{
    MemBackend::registerMetrics(registry, prefix);
    registry.registerCounter(prefix + ".queueFullStalls", [this]() {
        return static_cast<double>(queueFullStalls_);
    });
    registry.registerCounter(prefix + ".queueStallCycles", [this]() {
        return static_cast<double>(queueStallCycles_);
    });
    registry.registerCounter(prefix + ".starvationRounds", [this]() {
        return static_cast<double>(starvationRounds_);
    });
    registry.registerCounter(prefix + ".queueOccupancySum", [this]() {
        return static_cast<double>(queueOccupancySum_);
    });
    registry.registerCounter(prefix + ".queueSamples", [this]() {
        return static_cast<double>(queueSamples_);
    });
}

void
SchedDramBackend::reset()
{
    for (auto& bank : banks_) {
        bank = Bank{};
    }
    queueFullStalls_ = queueStallCycles_ = starvationRounds_ = 0;
    queueOccupancySum_ = queueSamples_ = 0;
    MemBackend::reset();
}

void
SchedDramBackend::serialize(ckpt::Writer& w) const
{
    w.u64(banks_.size());
    for (const Bank& b : banks_) {
        w.u64(static_cast<std::uint64_t>(b.openRow));
        w.u32(b.hitStreak);
        w.u64(b.queue.size());
        for (const Pending& p : b.queue) {
            w.u64(p.row);
            w.u64(p.done);
        }
        b.busy.serialize(w);
    }
    serializeCounters(w);
    w.u64(queueFullStalls_);
    w.u64(queueStallCycles_);
    w.u64(starvationRounds_);
    w.u64(queueOccupancySum_);
    w.u64(queueSamples_);
}

void
SchedDramBackend::deserialize(ckpt::Reader& r)
{
    const std::uint64_t n = r.u64();
    NDP_ASSERT(n == banks_.size(), "scheduler bank count mismatch");
    for (Bank& b : banks_) {
        b.openRow = static_cast<std::int64_t>(r.u64());
        b.hitStreak = r.u32();
        b.queue.resize(r.u64());
        for (Pending& p : b.queue) {
            p.row = r.u64();
            p.done = r.u64();
        }
        b.busy.deserialize(r);
    }
    deserializeCounters(r);
    queueFullStalls_ = r.u64();
    queueStallCycles_ = r.u64();
    starvationRounds_ = r.u64();
    queueOccupancySum_ = r.u64();
    queueSamples_ = r.u64();
}

// Link anchor called from forceLinkMemBackends(): an out-of-line
// function call the optimizer cannot fold away, so static-library links
// always pull this TU (and its registrar) in.
int
linkMemBackendSched()
{
    return 1;
}

namespace {

const std::vector<MemTunable> schedTunables = {
    {"queue", "per-bank request queue entries (default 8)"},
    {"cap", "FR-FCFS starvation cap: max consecutive reordered row hits "
            "per bank (default 4)"},
};

const MemBackendRegistrar frfcfsRegistrar{MemBackendInfo{
    "frfcfs",
    "FR-FCFS controller: bounded per-bank queue, row-hit-first "
    "reordering with a starvation cap",
    schedTunables,
    [](const MemBackendConfig& cfg, std::uint64_t core_freq_mhz) {
        return std::make_unique<SchedDramBackend>(cfg, core_freq_mhz,
                                                  /*row_hit_first=*/true);
    }}};

const MemBackendRegistrar fcfsRegistrar{MemBackendInfo{
    "fcfs",
    "FCFS controller: bounded per-bank queue, strict arrival-order "
    "service (no row-hit reordering)",
    {{"queue", "per-bank request queue entries (default 8)"}},
    [](const MemBackendConfig& cfg, std::uint64_t core_freq_mhz) {
        return std::make_unique<SchedDramBackend>(cfg, core_freq_mhz,
                                                  /*row_hit_first=*/false);
    }}};

} // namespace

} // namespace ndpext
