#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace ndpext {

Rng::Rng(std::uint64_t seed)
{
    // Seed the four lanes through splitmix64 as recommended by the
    // xoshiro authors; avoids the all-zero state.
    std::uint64_t z = seed;
    for (auto& lane : s_) {
        z += 0x9e3779b97f4a7c15ULL;
        lane = mix64(z);
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    NDP_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    NDP_ASSERT(n > 0);
    NDP_ASSERT(theta > 0.0 && theta < 1.0, "theta=", theta);
    double zeta2 = 0.0;
    for (std::uint64_t i = 1; i <= 2 && i <= n; ++i) {
        zeta2 += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zetan_ = 0.0;
    // Exact zeta for small n; integral approximation beyond 10k terms.
    const std::uint64_t exact = n < 10000 ? n : 10000;
    for (std::uint64_t i = 1; i <= exact; ++i) {
        zetan_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > exact) {
        // integral of x^-theta from `exact` to n
        zetan_ += (std::pow(static_cast<double>(n), 1.0 - theta)
                   - std::pow(static_cast<double>(exact), 1.0 - theta))
            / (1.0 - theta);
    }
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta))
        / (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfSampler::next()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
        return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
        return 1;
    }
    const double frac =
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t v = static_cast<std::uint64_t>(
        static_cast<double>(n_) * frac);
    return v >= n_ ? n_ - 1 : v;
}

} // namespace ndpext
