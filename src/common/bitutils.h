/**
 * @file
 * Small integer helpers used throughout the address-mapping code.
 */

#ifndef NDPEXT_COMMON_BITUTILS_H
#define NDPEXT_COMMON_BITUTILS_H

#include <bit>
#include <cstdint>

namespace ndpext {

/** True iff v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be nonzero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    return 63 - static_cast<std::uint32_t>(std::countl_zero(v));
}

/** ceil(log2(v)); v must be nonzero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** ceil(a / b). */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round v down to a multiple of align (align need not be a power of 2). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return (v / align) * align;
}

/** Round v up to a multiple of align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return ceilDiv(v, align) * align;
}

} // namespace ndpext

#endif // NDPEXT_COMMON_BITUTILS_H
