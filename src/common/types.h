/**
 * @file
 * Fundamental scalar types shared by every NDPExt module.
 *
 * The simulator measures time in core cycles at the NDP core frequency
 * (2 GHz by default, see SystemConfig); all device timings are converted
 * into core cycles at construction time so the hot path never divides.
 */

#ifndef NDPEXT_COMMON_TYPES_H
#define NDPEXT_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ndpext {

/** Physical byte address (48-bit significant, stored in 64). */
using Addr = std::uint64_t;

/** Time in core cycles. */
using Cycles = std::uint64_t;

/** Identifier of an NDP unit (logic die slice + local DRAM region). */
using UnitId = std::uint32_t;

/** Identifier of a 3D memory stack. */
using StackId = std::uint32_t;

/** Identifier of an NDP core. One core per NDP unit in this model. */
using CoreId = std::uint32_t;

/** Software-defined stream identifier (9 bits in the paper, Table I). */
using StreamId = std::uint16_t;

/** Index of an element within a stream, in access order. */
using ElemId = std::uint64_t;

/** Sentinel stream id for accesses that do not belong to any stream. */
inline constexpr StreamId kNoStream = std::numeric_limits<StreamId>::max();

/** Sentinel for "no unit". */
inline constexpr UnitId kNoUnit = std::numeric_limits<UnitId>::max();

/** Sentinel tenant id for accesses outside the serving frontend. */
inline constexpr std::uint32_t kNoTenantId =
    std::numeric_limits<std::uint32_t>::max();

/** Cacheline size used by the SRAM cache hierarchy (Table II). */
inline constexpr std::uint32_t kCachelineBytes = 64;

/** Kibi/mebi/gibi byte helpers. */
inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/**
 * One memory request as seen by the memory system, produced by a workload
 * access generator running on an in-order NDP core.
 */
struct Access
{
    /** Physical byte address. */
    Addr addr = 0;
    /** Request size in bytes (<= one element / one cacheline). */
    std::uint32_t size = 8;
    /** True for stores. */
    bool isWrite = false;
    /**
     * Stream the address belongs to, or kNoStream. The generator knows the
     * stream; hardware-side membership is still validated through the SLB
     * model (base/size range match), mirroring the paper's TCAM lookup.
     */
    StreamId sid = kNoStream;
    /** Element index within the stream, in access order (Section IV-A). */
    ElemId elem = 0;
    /**
     * Compute cycles the in-order core spends before issuing this access
     * (models the non-memory instructions between loads/stores).
     */
    std::uint32_t computeCycles = 1;
    /**
     * Earliest cycle this access may start executing. The core idles
     * until then if it is ahead (open-loop serving: a request cannot be
     * served before it arrives); 0 -- the default -- never idles, so
     * closed-loop workloads are unaffected.
     */
    Cycles notBefore = 0;
    /**
     * Marks the last access of a serving request; the core reports the
     * completion cycle back to the generator (AccessGenerator::onRetire)
     * so request latency can be measured. Always false outside serving.
     */
    bool endOfRequest = false;
    /**
     * Owning serving tenant (index into the ServingConfig tenant list),
     * or kNoTenantId outside serving. Pure metadata: the memory system
     * never reads it; the request-trace observer keys its per-request
     * span accumulation on it.
     */
    std::uint32_t tenant = kNoTenantId;
};

} // namespace ndpext

#endif // NDPEXT_COMMON_TYPES_H
