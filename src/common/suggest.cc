#include "common/suggest.h"

#include <algorithm>

namespace ndpext {

std::size_t
editDistance(const std::string& a, const std::string& b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) {
        prev[j] = j;
    }
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
closestName(const std::string& name,
            const std::vector<std::string>& candidates)
{
    std::string best;
    std::size_t bestDist = std::max<std::size_t>(2, name.size() / 3) + 1;
    for (const std::string& candidate : candidates) {
        const std::size_t d = editDistance(name, candidate);
        if (d < bestDist) {
            bestDist = d;
            best = candidate;
        }
    }
    return best;
}

} // namespace ndpext
