#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace ndpext {

Histogram::Histogram(double max_value, std::size_t buckets)
    : bucketMax_(max_value), bins_(buckets, 0)
{
    NDP_ASSERT(max_value > 0.0 && buckets > 0);
}

void
Histogram::add(double v)
{
    if (std::isnan(v)) {
        return; // NaN samples would poison min/max/sum and bucket lookup
    }
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    if (v >= bucketMax_) {
        ++overflow_;
    } else if (v < 0.0) {
        ++bins_[0];
    } else {
        const auto idx = static_cast<std::size_t>(
            v / bucketMax_ * static_cast<double>(bins_.size()));
        ++bins_[std::min(idx, bins_.size() - 1)];
    }
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0 || std::isnan(q)) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    if (q <= 0.0) {
        return min_;
    }
    const double target = q * static_cast<double>(count_);
    double seen = 0.0;
    const double width = bucketMax_ / static_cast<double>(bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += static_cast<double>(bins_[i]);
        if (seen >= target) {
            // The bucket midpoint can overshoot the observed range when
            // buckets are coarse (one wide bucket, few samples); the true
            // quantile always lies within [min, max].
            return std::clamp((static_cast<double>(i) + 0.5) * width, min_,
                              max_);
        }
    }
    return max_;
}

std::string
Histogram::summary() const
{
    std::ostringstream oss;
    oss << "n=" << count_ << " mean=" << mean() << " p50=" << percentile(0.5)
        << " p99=" << percentile(0.99) << " max=" << max_;
    return oss.str();
}

} // namespace ndpext
