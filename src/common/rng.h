/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator and the workload generators is
 * drawn from seeded xoshiro256** instances so every run is reproducible.
 */

#ifndef NDPEXT_COMMON_RNG_H
#define NDPEXT_COMMON_RNG_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ndpext {

/** Finalizer from splitmix64; also used as the simulator's hash mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** 1.0 -- fast, high-quality, deterministic.
 *
 * The draw methods are defined inline: workload generation makes
 * hundreds of millions of calls and the out-of-line call overhead
 * dominated graph construction. The generated sequences are identical
 * to the previous out-of-line definitions (same state transitions).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1);

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, bound). bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        NDP_ASSERT(bound > 0);
        // Modulo bias is negligible for the bounds used here (<< 2^63).
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform in [lo, hi]. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw. */
    bool
    nextBool(double p_true)
    {
        return nextDouble() < p_true;
    }

    /** Raw generator state, for checkpoint/restore. */
    void
    state(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i) {
            out[i] = s_[i];
        }
    }

    void
    setState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i) {
            s_[i] = in[i];
        }
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Zipfian sampler over [0, n) with parameter theta, using the classic
 * Gray-et-al rejection-inversion free approximation (precomputed zeta).
 * Models the skewed popularity of embedding rows / graph vertices.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed);

    std::uint64_t next();

    std::uint64_t domain() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;
};

/** Fisher-Yates shuffle driven by the given Rng. */
template <typename T>
void
shuffle(std::vector<T>& v, Rng& rng)
{
    for (std::size_t i = v.size(); i > 1; --i) {
        std::size_t j = rng.nextBounded(i);
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace ndpext

#endif // NDPEXT_COMMON_RNG_H
