/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator and the workload generators is
 * drawn from seeded xoshiro256** instances so every run is reproducible.
 */

#ifndef NDPEXT_COMMON_RNG_H
#define NDPEXT_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace ndpext {

/** Finalizer from splitmix64; also used as the simulator's hash mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** xoshiro256** 1.0 -- fast, high-quality, deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound). bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform in [lo, hi]. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw. */
    bool nextBool(double p_true);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipfian sampler over [0, n) with parameter theta, using the classic
 * Gray-et-al rejection-inversion free approximation (precomputed zeta).
 * Models the skewed popularity of embedding rows / graph vertices.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed);

    std::uint64_t next();

    std::uint64_t domain() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;
};

/** Fisher-Yates shuffle driven by the given Rng. */
template <typename T>
void
shuffle(std::vector<T>& v, Rng& rng)
{
    for (std::size_t i = v.size(); i > 1; --i) {
        std::size_t j = rng.nextBounded(i);
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace ndpext

#endif // NDPEXT_COMMON_RNG_H
