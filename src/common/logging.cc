#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace ndpext {
namespace logging_detail {

[[noreturn]] void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string& msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string& msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace logging_detail
} // namespace ndpext
