/**
 * @file
 * Crash-safe text-file emission: write to `<path>.tmp`, then rename.
 *
 * rename(2) is atomic on POSIX filesystems, so a reader (or a run
 * resumed after a crash) only ever observes either the previous
 * complete file or the new complete file -- never a torn write. Used
 * by every JSON/JSONL emitter (--stats-json, telemetry flush, decision
 * log, bench results) so outputs stay parseable even if the process is
 * killed mid-flush.
 */

#ifndef NDPEXT_COMMON_ATOMIC_FILE_H
#define NDPEXT_COMMON_ATOMIC_FILE_H

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

namespace ndpext {

/**
 * Stream `writer`'s output into `path` atomically. On any failure the
 * temporary is removed, `error` (if non-null) describes what happened,
 * and the previous contents of `path` (if any) are left untouched.
 */
inline bool
writeFileAtomic(const std::string& path,
                const std::function<void(std::ostream&)>& writer,
                std::string* error = nullptr)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            if (error != nullptr) {
                *error = "cannot open '" + tmp + "' for writing";
            }
            return false;
        }
        writer(out);
        out.flush();
        if (!out) {
            if (error != nullptr) {
                *error = "write to '" + tmp + "' failed";
            }
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr) {
            *error = "cannot rename '" + tmp + "' to '" + path + "'";
        }
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace ndpext

#endif // NDPEXT_COMMON_ATOMIC_FILE_H
