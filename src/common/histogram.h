/**
 * @file
 * Simple sampling histogram for latency distributions and report tables.
 */

#ifndef NDPEXT_COMMON_HISTOGRAM_H
#define NDPEXT_COMMON_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace ndpext {

/**
 * Fixed-bucket histogram over [0, max) with `buckets` equal-width bins plus
 * an overflow bin; also tracks count/sum/min/max for exact means.
 */
class Histogram
{
  public:
    Histogram(double max_value, std::size_t buckets);

    void add(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double minValue() const { return min_; }
    double maxValue() const { return max_; }

    /** Value below which `q` (in [0,1]) of the samples fall (approximate). */
    double percentile(double q) const;

    /** One-line summary "n=... mean=... p50=... p99=... max=...". */
    std::string summary() const;

    /** Raw state, for checkpoint/restore (bucketMax_ is configuration). */
    const std::vector<std::uint64_t>& bins() const { return bins_; }
    std::uint64_t overflow() const { return overflow_; }

    void
    restore(std::vector<std::uint64_t> bins, std::uint64_t overflow,
            std::uint64_t count, double sum, double min, double max)
    {
        bins_ = std::move(bins);
        overflow_ = overflow;
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

  private:
    double bucketMax_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace ndpext

#endif // NDPEXT_COMMON_HISTOGRAM_H
