/**
 * @file
 * Shared did-you-mean helper for name-keyed registries and CLI flags.
 *
 * Both the memory-backend and arrival-process registries (and the
 * workload factory) reject unknown names with an edit-distance
 * suggestion; this is the one implementation they share.
 */

#ifndef NDPEXT_COMMON_SUGGEST_H
#define NDPEXT_COMMON_SUGGEST_H

#include <string>
#include <vector>

namespace ndpext {

/** Classic two-row Levenshtein distance. */
std::size_t editDistance(const std::string& a, const std::string& b);

/**
 * Closest candidate to `name` by Levenshtein distance, for did-you-mean
 * diagnostics. Empty if nothing is within max(2, len/3) edits. Ties go
 * to the earlier candidate, so pass candidates in sorted order for a
 * deterministic suggestion.
 */
std::string closestName(const std::string& name,
                        const std::vector<std::string>& candidates);

} // namespace ndpext

#endif // NDPEXT_COMMON_SUGGEST_H
