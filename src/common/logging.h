/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  -- an internal invariant was violated (a simulator bug); aborts.
 * fatal()  -- the user asked for something unsupported/inconsistent; exits.
 * warn()   -- questionable but survivable condition.
 * inform() -- plain status output.
 */

#ifndef NDPEXT_COMMON_LOGGING_H
#define NDPEXT_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace ndpext {

namespace logging_detail {

/** Concatenate all arguments with operator<< into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

} // namespace logging_detail

/** Abort with a message; use for simulator bugs that should never happen. */
template <typename... Args>
[[noreturn]] void
panic(const char* file, int line, Args&&... args)
{
    logging_detail::panicImpl(
        file, line, logging_detail::concat(std::forward<Args>(args)...));
}

/** Exit with a message; use for invalid user configuration. */
template <typename... Args>
[[noreturn]] void
fatal(const char* file, int line, Args&&... args)
{
    logging_detail::fatalImpl(
        file, line, logging_detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args&&... args)
{
    logging_detail::warnImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args&&... args)
{
    logging_detail::informImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

} // namespace ndpext

#define NDP_PANIC(...) ::ndpext::panic(__FILE__, __LINE__, __VA_ARGS__)
#define NDP_FATAL(...) ::ndpext::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Cheap always-on invariant check (simulation is not perf-critical code). */
#define NDP_ASSERT(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            NDP_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);        \
        }                                                                    \
    } while (0)

#endif // NDPEXT_COMMON_LOGGING_H
