/**
 * @file
 * Generic set-associative cache with true-LRU replacement.
 *
 * Tracks tags only (the simulator never stores data). Used for the per-core
 * L1I/L1D SRAM caches, the baselines' metadata caches, the host LLC banks,
 * and the NDPExt affine tag array.
 */

#ifndef NDPEXT_CACHE_SET_ASSOC_CACHE_H
#define NDPEXT_CACHE_SET_ASSOC_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"

namespace ndpext {

class SetAssocCache
{
  public:
    /**
     * @param sets  Number of sets (>= 1).
     * @param ways  Associativity (>= 1).
     */
    SetAssocCache(std::uint32_t sets, std::uint32_t ways);

    /** Build from capacity/line/ways; sets = capacity / line / ways. */
    static SetAssocCache fromCapacity(std::uint64_t capacity_bytes,
                                      std::uint32_t line_bytes,
                                      std::uint32_t ways);

    /** Result of an insert. */
    struct Eviction
    {
        bool valid = false;  ///< an entry was evicted
        std::uint64_t key = 0;
        bool dirty = false;
    };

    /**
     * Look up `key`; updates LRU and the dirty bit on hit.
     * @return true on hit.
     */
    bool access(std::uint64_t key, bool is_write);

    /** Look up without modifying any state. */
    bool contains(std::uint64_t key) const;

    /** Insert `key` (must not be present), evicting LRU if needed. */
    Eviction insert(std::uint64_t key, bool dirty);

    /** Remove `key` if present. @return true if it was present. */
    bool invalidate(std::uint64_t key);

    /** Drop everything (bulk invalidation). @return entries dropped. */
    std::uint64_t invalidateAll();

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    double
    hitRate() const
    {
        const double total = static_cast<double>(hits_ + misses_);
        return total == 0.0 ? 0.0 : static_cast<double>(hits_) / total;
    }

    void report(StatGroup& stats, const std::string& prefix) const;
    void resetStats();

    /** Checkpoint hooks (geometry is configuration; contents travel). */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(entries_.size());
        for (const Entry& e : entries_) {
            w.u64(e.key);
            w.u64(e.lastUse);
            w.b(e.valid);
            w.b(e.dirty);
        }
        w.u64(useClock_);
        w.u64(hits_);
        w.u64(misses_);
        w.u64(evictions_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n == entries_.size(), "cache geometry mismatch: ", n,
                   " != ", entries_.size());
        for (Entry& e : entries_) {
            e.key = r.u64();
            e.lastUse = r.u64();
            e.valid = r.b();
            e.dirty = r.b();
        }
        useClock_ = r.u64();
        hits_ = r.u64();
        misses_ = r.u64();
        evictions_ = r.u64();
    }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setOf(std::uint64_t key) const { return key % sets_; }
    Entry* find(std::uint64_t key);
    const Entry* find(std::uint64_t key) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Entry> entries_; // sets_ * ways_, row-major by set
    std::uint64_t useClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * A byte-addressed cache front-end: maps addresses to line keys and
 * performs the allocate-on-miss policy. Models the L1 caches of Table II.
 */
class SramCache
{
  public:
    SramCache(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
              std::uint32_t ways);

    /**
     * Access a byte range (must not span lines after alignment of the
     * generators; spanning ranges touch only their first line, which is
     * adequate at 8 B default request size).
     * @return true on hit; on miss the line is allocated (write-allocate).
     */
    bool access(Addr addr, bool is_write);

    /** Drop all lines. */
    void invalidateAll() { tags_.invalidateAll(); }

    std::uint32_t lineBytes() const { return lineBytes_; }
    const SetAssocCache& tags() const { return tags_; }

    void
    report(StatGroup& stats, const std::string& prefix) const
    {
        tags_.report(stats, prefix);
    }

    void serialize(ckpt::Writer& w) const { tags_.serialize(w); }
    void deserialize(ckpt::Reader& r) { tags_.deserialize(r); }

  private:
    std::uint32_t lineBytes_;
    SetAssocCache tags_;
};

} // namespace ndpext

#endif // NDPEXT_CACHE_SET_ASSOC_CACHE_H
