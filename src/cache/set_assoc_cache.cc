#include "cache/set_assoc_cache.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

SetAssocCache::SetAssocCache(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways),
      entries_(static_cast<std::size_t>(sets) * ways)
{
    NDP_ASSERT(sets > 0 && ways > 0);
}

SetAssocCache
SetAssocCache::fromCapacity(std::uint64_t capacity_bytes,
                            std::uint32_t line_bytes, std::uint32_t ways)
{
    NDP_ASSERT(line_bytes > 0 && ways > 0);
    const std::uint64_t lines = capacity_bytes / line_bytes;
    NDP_ASSERT(lines >= ways, "capacity too small: ", capacity_bytes);
    return SetAssocCache(static_cast<std::uint32_t>(lines / ways), ways);
}

SetAssocCache::Entry*
SetAssocCache::find(std::uint64_t key)
{
    const std::size_t base =
        static_cast<std::size_t>(setOf(key)) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry& e = entries_[base + w];
        if (e.valid && e.key == key) {
            return &e;
        }
    }
    return nullptr;
}

const SetAssocCache::Entry*
SetAssocCache::find(std::uint64_t key) const
{
    return const_cast<SetAssocCache*>(this)->find(key);
}

bool
SetAssocCache::access(std::uint64_t key, bool is_write)
{
    Entry* e = find(key);
    if (e != nullptr) {
        e->lastUse = ++useClock_;
        e->dirty = e->dirty || is_write;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::contains(std::uint64_t key) const
{
    return find(key) != nullptr;
}

SetAssocCache::Eviction
SetAssocCache::insert(std::uint64_t key, bool dirty)
{
    NDP_ASSERT(find(key) == nullptr, "double insert of key ", key);
    const std::size_t base =
        static_cast<std::size_t>(setOf(key)) * ways_;
    Entry* victim = &entries_[base];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry& e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }

    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.key = victim->key;
        ev.dirty = victim->dirty;
        ++evictions_;
    }
    victim->key = key;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = ++useClock_;
    return ev;
}

bool
SetAssocCache::invalidate(std::uint64_t key)
{
    Entry* e = find(key);
    if (e == nullptr) {
        return false;
    }
    e->valid = false;
    e->dirty = false;
    return true;
}

std::uint64_t
SetAssocCache::invalidateAll()
{
    std::uint64_t dropped = 0;
    for (auto& e : entries_) {
        if (e.valid) {
            ++dropped;
            e.valid = false;
            e.dirty = false;
        }
    }
    return dropped;
}

void
SetAssocCache::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".hits", static_cast<double>(hits_));
    stats.add(prefix + ".misses", static_cast<double>(misses_));
    stats.add(prefix + ".evictions", static_cast<double>(evictions_));
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = evictions_ = 0;
}

SramCache::SramCache(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
                     std::uint32_t ways)
    : lineBytes_(line_bytes),
      tags_(SetAssocCache::fromCapacity(capacity_bytes, line_bytes, ways))
{
}

bool
SramCache::access(Addr addr, bool is_write)
{
    const std::uint64_t line = addr / lineBytes_;
    if (tags_.access(line, is_write)) {
        return true;
    }
    tags_.insert(line, is_write);
    return false;
}

} // namespace ndpext
