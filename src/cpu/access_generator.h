/**
 * @file
 * The interface between workloads and cores.
 *
 * A workload supplies one AccessGenerator per core; the in-order core pulls
 * accesses one at a time, exactly like an execution-driven trace. Generators
 * are deterministic (seeded Rng) and lazy -- no trace files are ever
 * materialized.
 *
 * Open-loop serving generators additionally observe the core's clock (the
 * two-argument next() overload) to decide which queued request to serve
 * next, and learn request completion times through onRetire(). Both hooks
 * default to clock-oblivious no-ops so closed-loop generators are
 * byte-identical with pre-serving builds.
 */

#ifndef NDPEXT_CPU_ACCESS_GENERATOR_H
#define NDPEXT_CPU_ACCESS_GENERATOR_H

#include "common/types.h"

namespace ndpext {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /**
     * Produce the next access for this core.
     * @return false when the core's work is exhausted.
     */
    virtual bool next(Access& out) = 0;

    /**
     * Clock-aware variant used by the core: `now` is the core's cycle
     * count before this access executes. Serving generators use it to
     * pick among arrived requests (priority scheduling needs to know
     * what has arrived by service time); the default ignores it.
     */
    virtual bool
    next(Access& out, Cycles now)
    {
        (void)now;
        return next(out);
    }

    /**
     * Completion callback: the core reports `done` (its clock, or the
     * miss completion time for the request's last access) for every
     * access flagged endOfRequest. Called in emission order.
     */
    virtual void
    onRetire(const Access& acc, Cycles done)
    {
        (void)acc;
        (void)done;
    }

    /**
     * Checkpoint hooks. Generators whose state is a pure function of
     * the number of successful next() calls need none of this: resume
     * replays them (NdpSystem). A generator that also accumulates
     * completion-side state (latency records, queues popped by
     * onRetire) returns true from checkpointSelfContained() and
     * restores *all* of its state in deserializeExtra(); NdpSystem then
     * skips the access replay for it.
     */
    virtual bool checkpointSelfContained() const { return false; }
    virtual void serializeExtra(ckpt::Writer& w) const { (void)w; }
    virtual void deserializeExtra(ckpt::Reader& r) { (void)r; }
};

} // namespace ndpext

#endif // NDPEXT_CPU_ACCESS_GENERATOR_H
