/**
 * @file
 * The interface between workloads and cores.
 *
 * A workload supplies one AccessGenerator per core; the in-order core pulls
 * accesses one at a time, exactly like an execution-driven trace. Generators
 * are deterministic (seeded Rng) and lazy -- no trace files are ever
 * materialized.
 */

#ifndef NDPEXT_CPU_ACCESS_GENERATOR_H
#define NDPEXT_CPU_ACCESS_GENERATOR_H

#include "common/types.h"

namespace ndpext {

class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /**
     * Produce the next access for this core.
     * @return false when the core's work is exhausted.
     */
    virtual bool next(Access& out) = 0;
};

} // namespace ndpext

#endif // NDPEXT_CPU_ACCESS_GENERATOR_H
