/**
 * @file
 * In-order NDP core (Table II: 2 GHz, in-order, 32 kB L1I + 64 kB L1D).
 *
 * The core executes a stream of accesses from its generator: each access
 * first costs its computeCycles (the non-memory instructions preceding
 * it), then probes the private L1D. L1 hits cost l1HitCycles; misses
 * occupy an MSHR and overlap with further execution -- the core stalls
 * only when every MSHR is busy (or at the end of the run, to drain).
 * Dirty L1 evictions produce non-blocking writebacks. L1I is modelled as
 * always hitting (NDP kernels are small loops) and contributes only
 * static energy.
 */

#ifndef NDPEXT_CPU_CORE_H
#define NDPEXT_CPU_CORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/types.h"
#include "cpu/access_generator.h"
#include "sim/port.h"
#include "sim/stats.h"

namespace ndpext {

struct PacketSampleBuffer; // telemetry/telemetry.h

struct CoreParams
{
    Cycles l1HitCycles = 2;
    std::uint64_t l1dCapacityBytes = 64_KiB;
    std::uint32_t l1dWays = 4;
    std::uint32_t lineBytes = kCachelineBytes;
    /**
     * Outstanding L1 misses (MSHRs). The cores are in-order but the
     * paper's kernels are SIMD/unrolled streaming loops with substantial
     * memory-level parallelism; the core stalls only when all MSHRs are
     * busy. Set to 1 for strict stall-on-miss.
     */
    std::uint32_t mshrs = 8;
};

/** Completion of a request issued to the memory system. */
struct MemResult
{
    Cycles done = 0;
};

class InOrderCore : public MemObject
{
  public:
    InOrderCore(CoreId id, const CoreParams& params);

    InOrderCore(const InOrderCore&) = delete;
    InOrderCore& operator=(const InOrderCore&) = delete;
    InOrderCore(InOrderCore&&) = default;

    /**
     * The core's memory-side request port ("mem"): L1 misses and dirty
     * writebacks are sent through it as Packets. Must be bound to the
     * memory system's cpu_side port before the first step().
     */
    RequestPort& memPort() { return memPort_; }

    /**
     * Execute the next access from `gen`.
     * @return false if the generator is exhausted; the core's clock is
     *         then advanced past all outstanding misses (drain).
     */
    bool step(AccessGenerator& gen);

    CoreId id() const { return id_; }
    Cycles now() const { return now_; }

    /** Drop all L1 lines (used at reconfiguration invalidations). */
    void flushL1() { l1d_.invalidateAll(); }

    const SetAssocCache& l1dTags() const { return l1d_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l1Misses() const { return accesses_ - l1Hits_; }
    Cycles computeCycles() const { return computeCycles_; }
    Cycles memStallCycles() const { return memStallCycles_; }

    void report(StatGroup& stats, const std::string& prefix) const;

    /**
     * Attach a telemetry packet-sample sink (null detaches). The buffer
     * must be shard-private to this core; the core records every Nth
     * completed L1 miss (N = buffer's `every`). Observer-only: sampling
     * never alters timing.
     */
    void setTelemetrySink(PacketSampleBuffer* sink) { telSink_ = sink; }

    /** Registers aggregate series under "cores.*" (sums across cores). */
    void registerMetrics(MetricRegistry& registry) override;

  protected:
    MemPort* getPort(const std::string& port_name) override
    {
        (void)port_name; // the core has only the request side
        return nullptr;
    }

  private:
    CoreId id_;
    CoreParams params_;
    RequestPort memPort_;
    SetAssocCache l1d_;

    Cycles now_ = 0;
    /** Completion times of in-flight misses (one per MSHR). */
    std::vector<Cycles> mshrFree_;
    std::uint64_t accesses_ = 0;
    std::uint64_t l1Hits_ = 0;
    Cycles computeCycles_ = 0;
    Cycles memStallCycles_ = 0;
    /** Telemetry sink (null = sampling off; the default). */
    PacketSampleBuffer* telSink_ = nullptr;
};

} // namespace ndpext

#endif // NDPEXT_CPU_CORE_H
