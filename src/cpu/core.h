/**
 * @file
 * In-order NDP core (Table II: 2 GHz, in-order, 32 kB L1I + 64 kB L1D).
 *
 * The core executes a stream of accesses from its generator: each access
 * first costs its computeCycles (the non-memory instructions preceding
 * it), then probes the private L1D. L1 hits cost l1HitCycles; misses
 * occupy an MSHR and overlap with further execution -- the core stalls
 * only when every MSHR is busy (or at the end of the run, to drain).
 * Dirty L1 evictions produce non-blocking writebacks. L1I is modelled as
 * always hitting (NDP kernels are small loops) and contributes only
 * static energy.
 */

#ifndef NDPEXT_CPU_CORE_H
#define NDPEXT_CPU_CORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/types.h"
#include "cpu/access_generator.h"
#include "sim/breakdown.h"
#include "sim/packet_pool.h"
#include "sim/port.h"
#include "sim/stats.h"
#include "telemetry/request_trace.h"

namespace ndpext {

struct PacketSampleBuffer; // telemetry/telemetry.h

/**
 * Top-down split of a core's memory stall cycles (Fig. 2(a) buckets plus
 * an explicit MSHR-full queueing bucket). Each stall window is attributed
 * proportionally over the blocking packet's LatencyBreakdown with
 * deterministic largest-remainder rounding, so the integer buckets sum
 * EXACTLY to memStallCycles() (pinned by tests/test_topdown.cc).
 * `mshrQueue` absorbs wait cycles that cannot be blamed on a recorded
 * service breakdown (e.g. the blocking slot never carried a packet).
 */
struct CoreStallBreakdown
{
    Cycles metadata = 0;
    Cycles icnIntra = 0;
    Cycles icnInter = 0;
    Cycles dramCache = 0;
    Cycles extMem = 0;
    Cycles mshrQueue = 0;

    Cycles
    total() const
    {
        return metadata + icnIntra + icnInter + dramCache + extMem
            + mshrQueue;
    }

    void
    report(StatGroup& stats, const std::string& prefix) const
    {
        stats.add(prefix + ".metadata", static_cast<double>(metadata));
        stats.add(prefix + ".icnIntra", static_cast<double>(icnIntra));
        stats.add(prefix + ".icnInter", static_cast<double>(icnInter));
        stats.add(prefix + ".dramCache", static_cast<double>(dramCache));
        stats.add(prefix + ".extMem", static_cast<double>(extMem));
        stats.add(prefix + ".mshrQueue", static_cast<double>(mshrQueue));
    }
};

struct CoreParams
{
    Cycles l1HitCycles = 2;
    std::uint64_t l1dCapacityBytes = 64_KiB;
    std::uint32_t l1dWays = 4;
    std::uint32_t lineBytes = kCachelineBytes;
    /**
     * Outstanding L1 misses (MSHRs). The cores are in-order but the
     * paper's kernels are SIMD/unrolled streaming loops with substantial
     * memory-level parallelism; the core stalls only when all MSHRs are
     * busy. Set to 1 for strict stall-on-miss.
     */
    std::uint32_t mshrs = 8;
};

/** Completion of a request issued to the memory system. */
struct MemResult
{
    Cycles done = 0;
};

class InOrderCore : public MemObject
{
  public:
    InOrderCore(CoreId id, const CoreParams& params);

    InOrderCore(const InOrderCore&) = delete;
    InOrderCore& operator=(const InOrderCore&) = delete;
    InOrderCore(InOrderCore&&) = default;

    /**
     * The core's memory-side request port ("mem"): L1 misses and dirty
     * writebacks are sent through it as Packets. Must be bound to the
     * memory system's cpu_side port before the first step().
     */
    RequestPort& memPort() { return memPort_; }

    /**
     * Execute the next access from `gen`.
     * @return false if the generator is exhausted; the core's clock is
     *         then advanced past all outstanding misses (drain; the
     *         drain wait is counted as memory stall like any other).
     */
    bool step(AccessGenerator& gen);

    CoreId id() const { return id_; }
    Cycles now() const { return now_; }

    /** Drop all L1 lines (used at reconfiguration invalidations). */
    void flushL1() { l1d_.invalidateAll(); }

    const SetAssocCache& l1dTags() const { return l1d_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l1Misses() const { return accesses_ - l1Hits_; }
    Cycles computeCycles() const { return computeCycles_; }
    Cycles memStallCycles() const { return memStallCycles_; }
    /** Cycles spent waiting for open-loop request arrivals
     *  (Access::notBefore ahead of the core clock); always 0 for
     *  closed-loop workloads. */
    Cycles idleCycles() const { return idleCycles_; }
    /** L1 issue/hit pipeline cycles (every access pays l1HitCycles). */
    Cycles l1Cycles() const { return accesses_ * params_.l1HitCycles; }

    /**
     * Top-down stall attribution. Invariant (pinned by test_topdown):
     *   stallBreakdown().total() == memStallCycles()
     *   now() == computeCycles() + l1Cycles() + memStallCycles()
     *            + idleCycles()
     */
    const CoreStallBreakdown& stallBreakdown() const { return stall_; }

    /** Stall cycles attributed to the blocking packet's stream id
     *  (0 for sids this core never waited on). */
    Cycles
    streamStallCycles(StreamId sid) const
    {
        return sid < streamStall_.size() ? streamStall_[sid] : 0;
    }
    /** Stall cycles blamed on non-stream (kNoStream) packets; together
     *  with the per-stream counts this sums exactly to
     *  memStallCycles(). */
    Cycles noStreamStallCycles() const { return noStreamStall_; }

    void report(StatGroup& stats, const std::string& prefix) const;

    /**
     * Register the CPI-stack series (compute/l1/stall buckets) under an
     * arbitrary prefix. NdpSystem calls this once with "cores" (machine
     * total via duplicate-name summing) and once with "stack.<s>" for
     * the core's stack, giving per-stack stacks for free.
     */
    void registerCpiMetrics(MetricRegistry& registry,
                            const std::string& prefix);

    /**
     * Attach a telemetry packet-sample sink (null detaches). The buffer
     * must be shard-private to this core; the core records every Nth
     * completed L1 miss (N = buffer's `every`). Observer-only: sampling
     * never alters timing.
     */
    void setTelemetrySink(PacketSampleBuffer* sink) { telSink_ = sink; }

    /**
     * Attach an end-to-end request-trace sink (null detaches). The core
     * then accumulates one RequestTraceRecord per serving request
     * (accesses carrying a tenant id, delimited by endOfRequest): queue
     * wait, compute, L1 pipeline, the exact largest-remainder stall
     * shares, and the completion tail split over the final packet's
     * service breakdown -- so the record's stage sum equals its latency
     * cycle-exactly. Observer-only; must be shard-private to this core.
     */
    void setRequestTraceSink(RequestTraceBuffer* sink) { reqSink_ = sink; }

    /** Registers aggregate series under "cores.*" (sums across cores). */
    void registerMetrics(MetricRegistry& registry) override;

    /** The core's private packet pool (engine telemetry). */
    const PacketPool& packetPool() const { return pool_; }

    /**
     * Checkpoint hooks. MSHR slots keep only what later stall
     * attribution reads (owning sid + service breakdown); their packets
     * are re-acquired from the restored pool, which also reconstructs
     * the pool's inUse count.
     */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(now_);
        w.u64(accesses_);
        w.u64(l1Hits_);
        w.u64(computeCycles_);
        w.u64(memStallCycles_);
        w.u64(idleCycles_);
        w.u64(stall_.metadata);
        w.u64(stall_.icnIntra);
        w.u64(stall_.icnInter);
        w.u64(stall_.dramCache);
        w.u64(stall_.extMem);
        w.u64(stall_.mshrQueue);
        w.vecU64(streamStall_);
        w.u64(noStreamStall_);
        l1d_.serialize(w);
        pool_.serialize(w);
        w.u64(mshr_.size());
        for (const MshrSlot& slot : mshr_) {
            w.u64(slot.free);
            w.b(slot.pkt != nullptr);
            if (slot.pkt != nullptr) {
                w.u32(slot.pkt->sid);
                w.u64(slot.pkt->bd.metadata);
                w.u64(slot.pkt->bd.icnIntra);
                w.u64(slot.pkt->bd.icnInter);
                w.u64(slot.pkt->bd.dramCache);
                w.u64(slot.pkt->bd.extMem);
                w.u64(slot.pkt->bd.requests);
            }
        }
        w.b(reqOpen_);
        w.u32(req_.tenant);
        w.u64(req_.arrival);
        w.u64(req_.start);
        w.u64(req_.queueWait);
        w.u64(req_.compute);
        w.u64(req_.l1);
        w.u64(req_.metadata);
        w.u64(req_.icnIntra);
        w.u64(req_.icnInter);
        w.u64(req_.dramCache);
        w.u64(req_.extMem);
        w.u64(req_.mshrQueue);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        now_ = r.u64();
        accesses_ = r.u64();
        l1Hits_ = r.u64();
        computeCycles_ = r.u64();
        memStallCycles_ = r.u64();
        idleCycles_ = r.u64();
        stall_.metadata = r.u64();
        stall_.icnIntra = r.u64();
        stall_.icnInter = r.u64();
        stall_.dramCache = r.u64();
        stall_.extMem = r.u64();
        stall_.mshrQueue = r.u64();
        streamStall_ = r.vecU64();
        noStreamStall_ = r.u64();
        l1d_.deserialize(r);
        pool_.deserialize(r);
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n == mshr_.size(), "MSHR count mismatch");
        for (MshrSlot& slot : mshr_) {
            slot.free = r.u64();
            slot.pkt = nullptr;
            if (r.b()) {
                slot.pkt = pool_.acquire();
                slot.pkt->src = id_;
                slot.pkt->sid = static_cast<StreamId>(r.u32());
                slot.pkt->bd.metadata = r.u64();
                slot.pkt->bd.icnIntra = r.u64();
                slot.pkt->bd.icnInter = r.u64();
                slot.pkt->bd.dramCache = r.u64();
                slot.pkt->bd.extMem = r.u64();
                slot.pkt->bd.requests = r.u64();
            }
        }
        reqOpen_ = r.b();
        req_ = RequestTraceRecord{};
        req_.core = id_;
        req_.tenant = r.u32();
        req_.arrival = r.u64();
        req_.start = r.u64();
        req_.queueWait = r.u64();
        req_.compute = r.u64();
        req_.l1 = r.u64();
        req_.metadata = r.u64();
        req_.icnIntra = r.u64();
        req_.icnInter = r.u64();
        req_.dramCache = r.u64();
        req_.extMem = r.u64();
        req_.mshrQueue = r.u64();
    }

  protected:
    MemPort* getPort(const std::string& port_name) override
    {
        (void)port_name; // the core has only the request side
        return nullptr;
    }

  private:
    /**
     * One MSHR: completion time plus the occupying packet (for stall
     * attribution). The packet is acquired from the core's pool on
     * first use and recycled in place on every later miss through this
     * slot, so its identity and service breakdown stay readable until
     * the slot is reused. Null until the slot first carries a miss.
     */
    struct MshrSlot
    {
        Cycles free = 0;
        Packet* pkt = nullptr;
    };

    /**
     * Account a stall window of `wait` cycles blamed on `blocking`:
     * bump memStallCycles_, split the window over the blocking packet's
     * breakdown buckets (largest-remainder rounding; mshrQueue when the
     * slot has no recorded service), and attribute it to the blocking
     * packet's stream id.
     */
    void attributeStall(Cycles wait, const MshrSlot& blocking);

    CoreId id_;
    CoreParams params_;
    RequestPort memPort_;
    SetAssocCache l1d_;
    /** Pool behind the MSHR packets and writeback scratch packets. */
    PacketPool pool_;

    Cycles now_ = 0;
    /** In-flight misses (one entry per MSHR). */
    std::vector<MshrSlot> mshr_;
    std::uint64_t accesses_ = 0;
    std::uint64_t l1Hits_ = 0;
    Cycles computeCycles_ = 0;
    Cycles memStallCycles_ = 0;
    Cycles idleCycles_ = 0;
    CoreStallBreakdown stall_;
    /** Stall cycles per blocking stream id (resize-on-demand). */
    std::vector<Cycles> streamStall_;
    Cycles noStreamStall_ = 0;
    /** Telemetry sink (null = sampling off; the default). */
    PacketSampleBuffer* telSink_ = nullptr;
    /** Request-trace sink (null = request tracing off; the default). */
    RequestTraceBuffer* reqSink_ = nullptr;
    /** True while a traced serving request is in flight on this core. */
    bool reqOpen_ = false;
    /** The in-flight request's stage accumulator (valid iff reqOpen_). */
    RequestTraceRecord req_;
};

} // namespace ndpext

#endif // NDPEXT_CPU_CORE_H
