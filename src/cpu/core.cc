#include "cpu/core.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/packet.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"

namespace ndpext {

InOrderCore::InOrderCore(CoreId id, const CoreParams& params)
    : MemObject("core" + std::to_string(id)), id_(id), params_(params),
      memPort_("core" + std::to_string(id) + ".mem"),
      l1d_(SetAssocCache::fromCapacity(params.l1dCapacityBytes,
                                       params.lineBytes, params.l1dWays)),
      mshr_(std::max<std::uint32_t>(1, params.mshrs))
{
}

namespace {

/**
 * Split a wait window over a service breakdown into integer shares
 * (largest-remainder rounding, exact sum, tie-break lowest bucket
 * index -- a pure function of (wait, breakdown)). `out` accumulates
 * [metadata, icnIntra, icnInter, dramCache, extMem, mshrQueue]; the
 * whole window lands in mshrQueue when there is no recorded service.
 */
void
splitWait(Cycles wait, const LatencyBreakdown& bd, Cycles out[6])
{
    const Cycles service = bd.total();
    if (service == 0) {
        out[5] += wait;
        return;
    }
    const Cycles part[5] = {bd.metadata, bd.icnIntra, bd.icnInter,
                            bd.dramCache, bd.extMem};
    Cycles share[5];
    Cycles rem[5];
    Cycles assigned = 0;
    for (int i = 0; i < 5; ++i) {
        share[i] = wait * part[i] / service;
        rem[i] = wait * part[i] % service;
        assigned += share[i];
    }
    for (Cycles left = wait - assigned; left > 0; --left) {
        int best = 0;
        for (int i = 1; i < 5; ++i) {
            if (rem[i] > rem[best]) {
                best = i;
            }
        }
        ++share[best];
        rem[best] = 0;
    }
    for (int i = 0; i < 5; ++i) {
        out[i] += share[i];
    }
}

void
addShares(RequestTraceRecord& req, const Cycles shares[6])
{
    req.metadata += shares[0];
    req.icnIntra += shares[1];
    req.icnInter += shares[2];
    req.dramCache += shares[3];
    req.extMem += shares[4];
    req.mshrQueue += shares[5];
}

} // namespace

void
InOrderCore::attributeStall(Cycles wait, const MshrSlot& blocking)
{
    memStallCycles_ += wait;

    static const LatencyBreakdown kNoService{};
    const LatencyBreakdown& bd =
        blocking.pkt != nullptr ? blocking.pkt->bd : kNoService;
    const StreamId sid =
        blocking.pkt != nullptr ? blocking.pkt->sid : kNoStream;
    Cycles shares[6] = {0, 0, 0, 0, 0, 0};
    splitWait(wait, bd, shares);
    stall_.metadata += shares[0];
    stall_.icnIntra += shares[1];
    stall_.icnInter += shares[2];
    stall_.dramCache += shares[3];
    stall_.extMem += shares[4];
    stall_.mshrQueue += shares[5];
    if (reqOpen_) {
        // The same exact shares feed the in-flight request's record, so
        // its stage sum stays cycle-exact.
        addShares(req_, shares);
    }

    // Per-stream attribution: the wait is the blocking packet's fault.
    if (sid == kNoStream) {
        noStreamStall_ += wait;
    } else {
        if (streamStall_.size() <= sid) {
            streamStall_.resize(sid + 1, 0);
        }
        streamStall_[sid] += wait;
    }
}

bool
InOrderCore::step(AccessGenerator& gen)
{
    Access acc;
    if (!gen.next(acc, now_)) {
        // Drain: the run is only complete once in-flight misses land.
        // Walk the slots in completion order so each incremental wait is
        // blamed on the packet that frees at that time.
        std::vector<MshrSlot> order = mshr_;
        std::stable_sort(order.begin(), order.end(),
                         [](const MshrSlot& a, const MshrSlot& b) {
                             return a.free < b.free;
                         });
        for (const MshrSlot& slot : order) {
            if (slot.free > now_) {
                attributeStall(slot.free - now_, slot);
                now_ = slot.free;
            }
        }
        return false;
    }
    ++accesses_;
    const bool openReq =
        reqSink_ != nullptr && acc.tenant != kNoTenantId && !reqOpen_;
    if (acc.notBefore > now_) {
        // Open-loop: the request this access belongs to has not arrived
        // yet; the core sits idle until it does.
        idleCycles_ += acc.notBefore - now_;
        now_ = acc.notBefore;
    }
    if (openReq) {
        // First access of a serving request: requests are strictly
        // sequential per core, so !reqOpen_ identifies it, and only the
        // first access carries the arrival cycle in notBefore.
        reqOpen_ = true;
        req_ = RequestTraceRecord{};
        req_.tenant = acc.tenant;
        req_.core = id_;
        req_.arrival = acc.notBefore;
        req_.start = now_;
        req_.queueWait = now_ - acc.notBefore;
    }
    now_ += acc.computeCycles;
    computeCycles_ += acc.computeCycles;
    if (reqOpen_) {
        req_.compute += acc.computeCycles;
    }

    const std::uint64_t line = acc.addr / params_.lineBytes;
    if (l1d_.access(line, acc.isWrite)) {
        ++l1Hits_;
        now_ += params_.l1HitCycles;
        if (reqOpen_) {
            req_.l1 += params_.l1HitCycles;
        }
        if (acc.endOfRequest) {
            gen.onRetire(acc, now_);
            if (reqOpen_) {
                req_.done = now_;
                reqSink_->push(req_);
                reqOpen_ = false;
            }
        }
        return true;
    }

    // Miss: grab an MSHR; stall only if all of them are in flight, and
    // blame the wait on the packet occupying the earliest-freeing slot.
    auto slot = std::min_element(mshr_.begin(), mshr_.end(),
                                 [](const MshrSlot& a, const MshrSlot& b) {
                                     return a.free < b.free;
                                 });
    const Cycles issue = std::max(now_, slot->free);
    if (issue > now_) {
        attributeStall(issue - now_, *slot);
    }

    // Recycle the slot's pooled packet in place (the stall window above
    // was already blamed on its previous occupant).
    Packet* pkt = slot->pkt;
    if (pkt == nullptr) {
        pkt = pool_.acquire();
        slot->pkt = pkt;
    } else {
        *pkt = Packet{};
    }
    pkt->addr = acc.addr;
    pkt->bytes = acc.size;
    pkt->op = acc.isWrite ? MemOp::Write : MemOp::Read;
    pkt->sid = acc.sid;
    pkt->elem = acc.elem;
    pkt->src = id_;
    pkt->ready = issue;
    memPort_.sendAtomic(*pkt);
    NDP_ASSERT(pkt->ready >= issue);
    if (telSink_ != nullptr && telSink_->tick()) {
        PacketSample s;
        s.core = id_;
        s.sid = pkt->sid;
        s.start = issue;
        s.metadata = pkt->bd.metadata;
        s.icnIntra = pkt->bd.icnIntra;
        s.icnInter = pkt->bd.icnInter;
        s.dramCache = pkt->bd.dramCache;
        s.extMem = pkt->bd.extMem;
        telSink_->record(s);
    }
    slot->free = pkt->ready;
    now_ = issue + params_.l1HitCycles; // issue occupancy, then overlap
    if (reqOpen_) {
        req_.l1 += params_.l1HitCycles;
    }
    if (acc.endOfRequest) {
        // The request completes when its final miss lands, not when the
        // core moves on -- misses overlap with further execution.
        const Cycles done = std::max(now_, slot->free);
        gen.onRetire(acc, done);
        if (reqOpen_) {
            if (done > now_) {
                // Completion tail: the final miss is still in flight
                // after the core moved on. Not a core stall, but it IS
                // request latency -- split it over the final packet's
                // own service breakdown.
                Cycles shares[6] = {0, 0, 0, 0, 0, 0};
                splitWait(done - now_, pkt->bd, shares);
                addShares(req_, shares);
            }
            req_.done = done;
            reqSink_->push(req_);
            reqOpen_ = false;
        }
    }

    const auto ev = l1d_.insert(line, acc.isWrite);
    if (ev.valid && ev.dirty) {
        Packet* wb = pool_.acquire();
        wb->addr = ev.key * params_.lineBytes;
        wb->op = MemOp::Writeback;
        wb->src = id_;
        wb->ready = issue;
        memPort_.sendAtomic(*wb);
        pool_.release(wb);
    }
    return true;
}

void
InOrderCore::registerCpiMetrics(MetricRegistry& registry,
                                const std::string& prefix)
{
    registry.registerCounter(prefix + ".computeCycles",
                             [this] { return double(computeCycles_); });
    registry.registerCounter(prefix + ".l1Cycles",
                             [this] { return double(l1Cycles()); });
    registry.registerCounter(prefix + ".memStallCycles",
                             [this] { return double(memStallCycles_); });
    registry.registerCounter(prefix + ".idleCycles",
                             [this] { return double(idleCycles_); });
    registry.registerCounter(prefix + ".stall.metadata",
                             [this] { return double(stall_.metadata); });
    registry.registerCounter(prefix + ".stall.icnIntra",
                             [this] { return double(stall_.icnIntra); });
    registry.registerCounter(prefix + ".stall.icnInter",
                             [this] { return double(stall_.icnInter); });
    registry.registerCounter(prefix + ".stall.dramCache",
                             [this] { return double(stall_.dramCache); });
    registry.registerCounter(prefix + ".stall.extMem",
                             [this] { return double(stall_.extMem); });
    registry.registerCounter(prefix + ".stall.mshrQueue",
                             [this] { return double(stall_.mshrQueue); });
}

void
InOrderCore::registerMetrics(MetricRegistry& registry)
{
    // Shared names: the registry sums every core's reader, so the series
    // is the machine-wide total without 64x per-core key bloat.
    registry.registerCounter("cores.accesses",
                             [this] { return double(accesses_); });
    registry.registerCounter("cores.l1Hits",
                             [this] { return double(l1Hits_); });
    registerCpiMetrics(registry, "cores");
}

void
InOrderCore::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".accesses", static_cast<double>(accesses_));
    stats.add(prefix + ".l1Hits", static_cast<double>(l1Hits_));
    stats.add(prefix + ".cycles", static_cast<double>(now_));
    stats.add(prefix + ".computeCycles",
              static_cast<double>(computeCycles_));
    stats.add(prefix + ".l1Cycles", static_cast<double>(l1Cycles()));
    stats.add(prefix + ".memStallCycles",
              static_cast<double>(memStallCycles_));
    stats.add(prefix + ".idleCycles", static_cast<double>(idleCycles_));
    stall_.report(stats, prefix + ".stall");
}

} // namespace ndpext
