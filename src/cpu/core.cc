#include "cpu/core.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/packet.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"

namespace ndpext {

InOrderCore::InOrderCore(CoreId id, const CoreParams& params)
    : MemObject("core" + std::to_string(id)), id_(id), params_(params),
      memPort_("core" + std::to_string(id) + ".mem"),
      l1d_(SetAssocCache::fromCapacity(params.l1dCapacityBytes,
                                       params.lineBytes, params.l1dWays)),
      mshrFree_(std::max<std::uint32_t>(1, params.mshrs), 0)
{
}

bool
InOrderCore::step(AccessGenerator& gen)
{
    Access acc;
    if (!gen.next(acc)) {
        // Drain: the run is only complete once in-flight misses land.
        for (const Cycles done : mshrFree_) {
            now_ = std::max(now_, done);
        }
        return false;
    }
    ++accesses_;
    now_ += acc.computeCycles;
    computeCycles_ += acc.computeCycles;

    const std::uint64_t line = acc.addr / params_.lineBytes;
    if (l1d_.access(line, acc.isWrite)) {
        ++l1Hits_;
        now_ += params_.l1HitCycles;
        return true;
    }

    // Miss: grab an MSHR; stall only if all of them are in flight.
    auto slot = std::min_element(mshrFree_.begin(), mshrFree_.end());
    const Cycles issue = std::max(now_, *slot);
    memStallCycles_ += issue - now_;

    Packet pkt = Packet::request(acc, id_, issue);
    memPort_.sendAtomic(pkt);
    NDP_ASSERT(pkt.ready >= issue);
    if (telSink_ != nullptr && telSink_->tick()) {
        PacketSample s;
        s.core = id_;
        s.sid = pkt.sid;
        s.start = issue;
        s.metadata = pkt.bd.metadata;
        s.icnIntra = pkt.bd.icnIntra;
        s.icnInter = pkt.bd.icnInter;
        s.dramCache = pkt.bd.dramCache;
        s.extMem = pkt.bd.extMem;
        telSink_->record(s);
    }
    *slot = pkt.ready;
    now_ = issue + params_.l1HitCycles; // issue occupancy, then overlap

    const auto ev = l1d_.insert(line, acc.isWrite);
    if (ev.valid && ev.dirty) {
        Packet wb =
            Packet::writeback(ev.key * params_.lineBytes, id_, issue);
        memPort_.sendAtomic(wb);
    }
    return true;
}

void
InOrderCore::registerMetrics(MetricRegistry& registry)
{
    // Shared names: the registry sums every core's reader, so the series
    // is the machine-wide total without 64x per-core key bloat.
    registry.registerCounter("cores.accesses",
                             [this] { return double(accesses_); });
    registry.registerCounter("cores.l1Hits",
                             [this] { return double(l1Hits_); });
    registry.registerCounter("cores.computeCycles",
                             [this] { return double(computeCycles_); });
    registry.registerCounter("cores.memStallCycles",
                             [this] { return double(memStallCycles_); });
}

void
InOrderCore::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".accesses", static_cast<double>(accesses_));
    stats.add(prefix + ".l1Hits", static_cast<double>(l1Hits_));
    stats.add(prefix + ".cycles", static_cast<double>(now_));
    stats.add(prefix + ".computeCycles",
              static_cast<double>(computeCycles_));
    stats.add(prefix + ".memStallCycles",
              static_cast<double>(memStallCycles_));
}

} // namespace ndpext
