#include "workloads/gap_workloads.h"

#include <algorithm>

#include "common/logging.h"
#include "workloads/rodinia_workloads.h"
#include "workloads/tensor_workloads.h"

namespace ndpext {

void
GapWorkload::doPrepare()
{
    const std::uint64_t csr_budget =
        p_.footprintBytes * csrFootprintPercent() / 100;
    const std::uint32_t degree = 16;
    const std::uint32_t scale = scaleForFootprint(csr_budget, degree);
    graph_ = makeRmatGraph(scale, degree, p_.seed + 13);

    offsets_ = addDense("csr_offsets", StreamType::Affine,
                        (graph_.numVertices + 1) * 8, 8, true);
    edges_ = addDense("csr_edges", edgesStreamType(),
                      std::max<std::uint64_t>(64, graph_.numEdges * 4), 4,
                      true);
    addPropertyStreams();
}

GapGenerator::GapGenerator(const GapWorkload& w, CoreId core)
    : BoundedGenerator(w, core), gw_(w)
{
    // Contiguous vertex partition per core.
    const std::uint64_t per_core =
        gw_.graph().numVertices / w.params().numCores;
    vertex_ = per_core * core;
    edgeCursor_ = gw_.graph().offsets[vertex_];
    edgeEnd_ = gw_.graph().offsets[vertex_ + 1];
}

void
GapGenerator::nextVertex()
{
    const CsrGraph& g = gw_.graph();
    vertex_ = (vertex_ + 1) % g.numVertices;
    edgeCursor_ = g.offsets[vertex_];
    edgeEnd_ = g.offsets[vertex_ + 1];
}

// -------------------------------------------------------------------- bfs

void
BfsWorkload::addPropertyStreams()
{
    visited_ = addDense("visited", StreamType::Indirect,
                        graph_.numVertices * 4, 4, false);
    parent_ = addDense("parent", StreamType::Indirect,
                       graph_.numVertices * 4, 4, false);
}

class BfsGenerator : public GapGenerator
{
  public:
    BfsGenerator(const BfsWorkload& w, CoreId core)
        : GapGenerator(w, core), w_(w)
    {
    }

    void
    produce(Access& out) override
    {
        const std::uint64_t step = phase_ % 3;
        ++phase_;
        if (step == 0) {
            if (edgeCursor_ >= edgeEnd_) {
                nextVertex();
                phase_ = 1;
                emit(out, w_.offsets_, vertex_, false, 2);
                return;
            }
            emit(out, w_.edges_, edgeCursor_, false, 2);
            return;
        }
        const std::uint32_t nbr = edgeCursor_ < gw_.graph().numEdges
            ? gw_.graph().edges[edgeCursor_]
            : 0;
        if (step == 1) {
            emit(out, w_.visited_, nbr, false, 2);
            return;
        }
        // Claim roughly 1 in 4 neighbors (frontier expansion writes).
        const bool claim = (mix64(nbr + phase_) & 3) == 0;
        emit(out, w_.parent_, nbr, claim, 2);
        ++edgeCursor_;
    }

  private:
    const BfsWorkload& w_;
};

std::unique_ptr<AccessGenerator>
BfsWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<BfsGenerator>(*this, core);
}

// --------------------------------------------------------------------- pr

void
PageRankWorkload::addPropertyStreams()
{
    ranks_ = addDense("ranks", StreamType::Indirect,
                      graph_.numVertices * 8, 8, true);
    newRanks_ = addDense("new_ranks", StreamType::Indirect,
                         graph_.numVertices * 8, 8, false);
    outDeg_ = addDense("out_degrees", StreamType::Indirect,
                       graph_.numVertices * 4, 4, true);
}

class PageRankGenerator : public GapGenerator
{
  public:
    PageRankGenerator(const PageRankWorkload& w, CoreId core)
        : GapGenerator(w, core), w_(w)
    {
    }

    void
    produce(Access& out) override
    {
        // Pull-style PR: per owned vertex, gather ranks[nbr]/deg[nbr]
        // over the incoming edge list, then write new_ranks[v].
        if (stage_ == 0) {
            stage_ = 1;
            emit(out, w_.offsets_, vertex_, false, 2);
            return;
        }
        if (edgeCursor_ < edgeEnd_) {
            const std::uint64_t step = phase_ % 3;
            ++phase_;
            const std::uint32_t nbr = gw_.graph().edges[edgeCursor_];
            if (step == 0) {
                emit(out, w_.edges_, edgeCursor_, false, 2);
                return;
            }
            if (step == 1) {
                emit(out, w_.ranks_, nbr, false, 3);
                return;
            }
            emit(out, w_.outDeg_, nbr, false, 3);
            ++edgeCursor_;
            return;
        }
        emit(out, w_.newRanks_, vertex_, true, 2);
        nextVertex();
        stage_ = 0;
    }

  private:
    const PageRankWorkload& w_;
    int stage_ = 0;
};

std::unique_ptr<AccessGenerator>
PageRankWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<PageRankGenerator>(*this, core);
}

// --------------------------------------------------------------------- cc

void
CcWorkload::addPropertyStreams()
{
    comp_ = addDense("components", StreamType::Indirect,
                     graph_.numVertices * 4, 4, false);
}

class CcGenerator : public GapGenerator
{
  public:
    CcGenerator(const CcWorkload& w, CoreId core)
        : GapGenerator(w, core), w_(w)
    {
    }

    void
    produce(Access& out) override
    {
        const std::uint64_t step = phase_ % 4;
        ++phase_;
        if (step == 0) {
            if (edgeCursor_ >= edgeEnd_) {
                nextVertex();
            }
            emit(out, w_.comp_, vertex_, false, 2);
            return;
        }
        if (step == 1) {
            emit(out, w_.edges_, std::min(edgeCursor_, edgeEnd_), false,
                 2);
            return;
        }
        const std::uint32_t nbr = edgeCursor_ < gw_.graph().numEdges
            ? gw_.graph().edges[edgeCursor_]
            : 0;
        if (step == 2) {
            emit(out, w_.comp_, nbr, false, 2);
            return;
        }
        // Hook/compress writes the smaller label (~1 in 3 edges early on).
        const bool hook = (mix64(nbr ^ phase_) % 3) == 0;
        emit(out, w_.comp_, hook ? nbr : vertex_, hook, 2);
        ++edgeCursor_;
    }

  private:
    const CcWorkload& w_;
};

std::unique_ptr<AccessGenerator>
CcWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<CcGenerator>(*this, core);
}

// --------------------------------------------------------------------- bc

void
BcWorkload::addPropertyStreams()
{
    dist_ = addDense("distances", StreamType::Indirect,
                     graph_.numVertices * 4, 4, false);
    sigma_ = addDense("sigma", StreamType::Indirect,
                      graph_.numVertices * 8, 8, false);
    delta_ = addDense("delta", StreamType::Indirect,
                      graph_.numVertices * 8, 8, false);
}

class BcGenerator : public GapGenerator
{
  public:
    BcGenerator(const BcWorkload& w, CoreId core)
        : GapGenerator(w, core), w_(w)
    {
    }

    void
    produce(Access& out) override
    {
        const std::uint64_t step = phase_ % 5;
        ++phase_;
        if (step == 0) {
            if (edgeCursor_ >= edgeEnd_) {
                nextVertex();
                backward_ = !backward_;
            }
            emit(out, w_.edges_, std::min(edgeCursor_, edgeEnd_), false,
                 2);
            return;
        }
        const std::uint32_t nbr = edgeCursor_ < gw_.graph().numEdges
            ? gw_.graph().edges[edgeCursor_]
            : 0;
        switch (step) {
          case 1:
            emit(out, w_.dist_, nbr, false, 2);
            return;
          case 2:
            emit(out, w_.sigma_, nbr, !backward_, 3);
            return;
          case 3:
            emit(out, w_.delta_, backward_ ? nbr : vertex_, backward_, 3);
            return;
          default:
            emit(out, w_.dist_, vertex_, false, 2);
            ++edgeCursor_;
            return;
        }
    }

  private:
    const BcWorkload& w_;
    bool backward_ = false;
};

std::unique_ptr<AccessGenerator>
BcWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<BcGenerator>(*this, core);
}

// --------------------------------------------------------------------- tc

void
TcWorkload::addPropertyStreams()
{
    counts_ = addDense("tri_counts", StreamType::Indirect,
                       graph_.numVertices * 8, 8, false);
}

class TcGenerator : public GapGenerator
{
  public:
    TcGenerator(const TcWorkload& w, CoreId core)
        : GapGenerator(w, core), w_(w)
    {
    }

    void
    produce(Access& out) override
    {
        // Per edge (u, v): scan u's list, then binary-probe v's list --
        // random reads into the (read-only) edge array.
        const std::uint64_t step = phase_ % 4;
        ++phase_;
        if (step == 0) {
            if (edgeCursor_ >= edgeEnd_) {
                nextVertex();
            }
            emit(out, w_.edges_, std::min(edgeCursor_, edgeEnd_), false,
                 3);
            return;
        }
        const CsrGraph& g = gw_.graph();
        const std::uint32_t nbr = edgeCursor_ < g.numEdges
            ? g.edges[edgeCursor_]
            : 0;
        if (step == 1) {
            emit(out, w_.offsets_, nbr, false, 2);
            return;
        }
        if (step == 2) {
            // Binary-search probe into the neighbor's adjacency range.
            const std::uint64_t lo = g.offsets[nbr];
            const std::uint64_t hi = g.offsets[nbr + 1];
            const std::uint64_t probe = lo == hi
                ? lo
                : lo + rng_.nextBounded(hi - lo);
            emit(out, w_.edges_, std::min(probe, g.numEdges - 1), false,
                 4);
            return;
        }
        emit(out, w_.counts_, vertex_, true, 2);
        ++edgeCursor_;
    }

  private:
    const TcWorkload& w_;
};

std::unique_ptr<AccessGenerator>
TcWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<TcGenerator>(*this, core);
}

// ------------------------------------------------------------- registry

std::unique_ptr<Workload>
makeWorkload(const std::string& name)
{
    if (name == "recsys") {
        return std::make_unique<RecsysWorkload>();
    }
    if (name == "mv") {
        return std::make_unique<MvWorkload>();
    }
    if (name == "gnn") {
        return std::make_unique<GnnWorkload>();
    }
    if (name == "backprop") {
        return std::make_unique<BackpropWorkload>();
    }
    if (name == "hotspot") {
        return std::make_unique<HotspotWorkload>();
    }
    if (name == "lavaMD") {
        return std::make_unique<LavaMdWorkload>();
    }
    if (name == "lud") {
        return std::make_unique<LudWorkload>();
    }
    if (name == "pathfinder") {
        return std::make_unique<PathfinderWorkload>();
    }
    if (name == "bfs") {
        return std::make_unique<BfsWorkload>();
    }
    if (name == "pr") {
        return std::make_unique<PageRankWorkload>();
    }
    if (name == "cc") {
        return std::make_unique<CcWorkload>();
    }
    if (name == "bc") {
        return std::make_unique<BcWorkload>();
    }
    if (name == "tc") {
        return std::make_unique<TcWorkload>();
    }
    NDP_FATAL("unknown workload: ", name);
}

const std::vector<std::string>&
allWorkloadNames()
{
    static const std::vector<std::string> kNames = {
        "recsys", "mv",  "gnn", "backprop", "hotspot", "lavaMD",
        "lud",    "pathfinder", "bfs", "pr", "cc", "bc", "tc",
    };
    return kNames;
}

} // namespace ndpext
