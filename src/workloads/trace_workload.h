/**
 * @file
 * Trace-file workload: run the simulator on user-provided access traces
 * instead of the built-in generators (the adoption path for downstream
 * users with their own applications).
 *
 * Format (text, '#' comments):
 *
 *   stream <name> <affine|indirect> <base-hex> <size> <elemSize> <ro|rw>
 *   ...one line per stream, then...
 *   a <core> <sid> <elem> <r|w> [computeCycles]
 *
 * Access lines are replayed in file order per core. Example:
 *
 *   # two streams, three accesses
 *   stream edges affine 0x100000 4096 4 ro
 *   stream ranks indirect 0x200000 8192 8 rw
 *   a 0 0 12 r 2
 *   a 1 1 7 w
 *   a 0 1 3 r
 */

#ifndef NDPEXT_WORKLOADS_TRACE_WORKLOAD_H
#define NDPEXT_WORKLOADS_TRACE_WORKLOAD_H

#include <istream>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace ndpext {

class TraceWorkload : public Workload
{
  public:
    /** Parse a trace from a stream; fatal() on malformed input. */
    static std::unique_ptr<TraceWorkload> parse(std::istream& in,
                                                std::uint32_t num_cores);

    /**
     * Recoverable variant: on malformed input, returns nullptr and sets
     * *error to "<source>:<line>: <reason>" instead of aborting.
     * `source` names the input in diagnostics (file name, "<stdin>", ...).
     */
    static std::unique_ptr<TraceWorkload> parse(std::istream& in,
                                                std::uint32_t num_cores,
                                                const std::string& source,
                                                std::string* error);

    /** Parse a trace file from disk; fatal() on malformed input. */
    static std::unique_ptr<TraceWorkload>
    parseFile(const std::string& path, std::uint32_t num_cores);

    /**
     * Recoverable variant: returns nullptr and sets *error (with file
     * name and line number) on unreadable or malformed input.
     */
    static std::unique_ptr<TraceWorkload>
    parseFile(const std::string& path, std::uint32_t num_cores,
              std::string* error);

    std::string name() const override { return "trace"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

    /** Accesses recorded for one core. */
    std::size_t
    accessCount(CoreId core) const
    {
        return perCore_[core].size();
    }

    struct TraceAccess
    {
        StreamId sid;
        ElemId elem;
        bool isWrite;
        std::uint32_t computeCycles;
    };

    /** Recorded access sequence of one core. */
    const std::vector<TraceAccess>&
    coreTrace(CoreId core) const
    {
        return perCore_[core];
    }

  protected:
    void doPrepare() override;

  private:
    std::vector<std::vector<TraceAccess>> perCore_;
};

} // namespace ndpext

#endif // NDPEXT_WORKLOADS_TRACE_WORKLOAD_H
