/**
 * @file
 * Workload framework: each workload defines its data structures as
 * streams (Section VI "Workloads") and supplies one deterministic access
 * generator per core. Datasets are synthesized (R-MAT graphs, dense
 * matrices, embedding tables) but the *stream structure* -- which streams
 * exist, affine vs indirect, read-only vs read-write, per-core sharing,
 * footprint, locality -- follows each application's algorithm, which is
 * all NDPExt's mechanisms observe.
 *
 * Stream ids are assigned by registration order, so generators refer to
 * streams by their index into the workload's config list.
 */

#ifndef NDPEXT_WORKLOADS_WORKLOAD_H
#define NDPEXT_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "cpu/access_generator.h"
#include "sim/checkpoint.h"
#include "stream/stream_table.h"

namespace ndpext {

struct WorkloadParams
{
    std::uint32_t numCores = 64;
    /** Target total data footprint. */
    std::uint64_t footprintBytes = 192_MiB;
    /** Accesses each core executes per run. */
    std::uint64_t accessesPerCore = 50'000;
    std::uint64_t seed = 42;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Synthesize datasets and define stream configs. Call once. */
    void prepare(const WorkloadParams& params);

    /** Register this workload's streams into a (fresh) stream table. */
    void registerStreams(StreamTable& table) const;

    /** Per-core access generator; deterministic given (core, seed). */
    virtual std::unique_ptr<AccessGenerator>
    makeGenerator(CoreId core) const = 0;

    /**
     * Fold workload config beyond WorkloadParams into the checkpoint
     * config hash (NdpSystem::configHash). Workloads whose trajectory
     * is fully determined by (name, params) need not override.
     */
    virtual void
    hashExtra(ckpt::Writer& w) const
    {
        (void)w;
    }

    const WorkloadParams& params() const { return p_; }
    const std::vector<StreamConfig>& streamConfigs() const
    {
        return configs_;
    }
    bool prepared() const { return prepared_; }

    /**
     * Shift every stream's id and base address, for composing several
     * prepared workloads into one stream table / address space (the
     * multi-tenant serving frontend). Generators keep indexing their
     * owner's config list locally; only the emitted sid/addr change.
     */
    void rebaseStreams(StreamId sid_offset, Addr addr_offset);

    /** One past the last allocated address (the footprint extent). */
    Addr addressSpaceEnd() const { return nextAddr_; }

  protected:
    virtual void doPrepare() = 0;

    /** Bump-allocate address space (4 kB aligned). */
    Addr allocBytes(std::uint64_t bytes);

    /** Register a dense 1-D stream; returns its index (== future sid). */
    StreamId addDense(std::string name, StreamType type,
                      std::uint64_t bytes, std::uint32_t elem_size,
                      bool read_only);

    /** Register a 2-D affine matrix stream (optionally column-major). */
    StreamId addMatrix(std::string name, std::uint64_t rows,
                       std::uint64_t cols, std::uint32_t elem_size,
                       bool read_only, bool col_major = false);

    WorkloadParams p_;
    std::vector<StreamConfig> configs_;

  private:
    Addr nextAddr_ = 1_MiB;
    bool prepared_ = false;
};

/**
 * Generator base: emits exactly `accessesPerCore` accesses by cycling an
 * infinite workload-specific pattern.
 */
class BoundedGenerator : public AccessGenerator
{
  public:
    BoundedGenerator(const Workload& w, CoreId core)
        : workload_(w), core_(core), remaining_(w.params().accessesPerCore),
          rng_(mix64(w.params().seed * 7919 + core))
    {
    }

    bool
    next(Access& out) final
    {
        if (remaining_ == 0) {
            return false;
        }
        --remaining_;
        produce(out);
        return true;
    }

  protected:
    /** Emit the next access of the infinite pattern. */
    virtual void produce(Access& out) = 0;

    /** Fill an access to element `elem` of stream index `sid`. */
    void
    emit(Access& out, StreamId sid, ElemId elem, bool write,
         std::uint32_t compute = 2) const
    {
        const StreamConfig& cfg = workload_.streamConfigs()[sid];
        // cfg.sid equals the local index until the workload is rebased
        // into a composite (serving) stream space; always emitting the
        // config's id keeps sub-generators correct in both cases.
        out.sid = cfg.sid;
        out.elem = elem % cfg.numElems();
        out.addr = cfg.addrOf(out.elem);
        out.size = std::min<std::uint32_t>(cfg.elemSize, kCachelineBytes);
        out.isWrite = write;
        out.computeCycles = compute;
    }

    const StreamConfig&
    cfg(StreamId sid) const
    {
        return workload_.streamConfigs()[sid];
    }

    const Workload& workload_;
    CoreId core_;
    std::uint64_t remaining_;
    Rng rng_;
};

/** Instantiate a workload by name ("pr", "bfs", "mv", ...). */
std::unique_ptr<Workload> makeWorkload(const std::string& name);

/** All 13 workload names in the paper's order. */
const std::vector<std::string>& allWorkloadNames();

} // namespace ndpext

#endif // NDPEXT_WORKLOADS_WORKLOAD_H
