/**
 * @file
 * Rodinia-derived workloads (Section VI): backprop, hotspot, lavaMD, lud,
 * pathfinder. Each reproduces the original kernel's stream structure:
 * backprop's two phases flip the weight matrix from read-heavy
 * (replication-friendly) to write-heavy; hotspot/pathfinder have stencil
 * halo sharing; lavaMD gathers neighbor boxes; lud's working set shifts
 * along the diagonal.
 */

#ifndef NDPEXT_WORKLOADS_RODINIA_WORKLOADS_H
#define NDPEXT_WORKLOADS_RODINIA_WORKLOADS_H

#include "workloads/workload.h"

namespace ndpext {

class BackpropWorkload : public Workload
{
  public:
    std::string name() const override { return "backprop"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void doPrepare() override;

  private:
    friend class BackpropGenerator;
    StreamId input_ = 0;
    StreamId weights_ = 0; ///< read in layerforward, written in adjust
    StreamId oldWeights_ = 0;
    StreamId hidden_ = 0;
};

class HotspotWorkload : public Workload
{
  public:
    std::string name() const override { return "hotspot"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void doPrepare() override;

  private:
    friend class HotspotGenerator;
    StreamId temp_ = 0;
    StreamId power_ = 0;
    StreamId result_ = 0;
    std::uint64_t rows_ = 0;
    std::uint64_t cols_ = 0;
};

class LavaMdWorkload : public Workload
{
  public:
    std::string name() const override { return "lavaMD"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

    static constexpr std::uint32_t kParticlesPerBox = 64;
    static constexpr std::uint32_t kNeighbors = 27;

  protected:
    void doPrepare() override;

  private:
    friend class LavaMdGenerator;
    StreamId positions_ = 0;
    StreamId charges_ = 0;
    StreamId forces_ = 0;
    StreamId neighborList_ = 0;
    std::uint64_t boxesPerDim_ = 0;
    std::uint64_t numBoxes_ = 0;
};

class LudWorkload : public Workload
{
  public:
    std::string name() const override { return "lud"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void doPrepare() override;

  private:
    friend class LudGenerator;
    StreamId matrix_ = 0;
    StreamId diag_ = 0;
    std::uint64_t n_ = 0;
};

class PathfinderWorkload : public Workload
{
  public:
    std::string name() const override { return "pathfinder"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void doPrepare() override;

  private:
    friend class PathfinderGenerator;
    StreamId wall_ = 0;
    StreamId src_ = 0;
    StreamId dst_ = 0;
    std::uint64_t rows_ = 0;
    std::uint64_t cols_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_WORKLOADS_RODINIA_WORKLOADS_H
