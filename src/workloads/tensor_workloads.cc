#include "workloads/tensor_workloads.h"

#include <algorithm>

#include "common/logging.h"

namespace ndpext {

namespace {

/** Elements covered by one 64 B line for a given element size. */
constexpr std::uint64_t
elemsPerLine(std::uint32_t elem_size)
{
    return elem_size >= kCachelineBytes ? 1 : kCachelineBytes / elem_size;
}

} // namespace

// ---------------------------------------------------------------- recsys

void
RecsysWorkload::doPrepare()
{
    // ~85% of the footprint in embedding tables, a hot 1.5% MLP, outputs.
    const std::uint64_t table_bytes =
        p_.footprintBytes * 85 / 100 / kNumTables;
    rowsPerTable_ = std::max<std::uint64_t>(1024,
                                            table_bytes / kEmbeddingBytes);
    for (std::uint32_t i = 0; i < kNumTables; ++i) {
        tables_.push_back(addDense("emb" + std::to_string(i),
                                   StreamType::Indirect,
                                   rowsPerTable_ * kEmbeddingBytes,
                                   kEmbeddingBytes, true));
    }
    mlp_ = addDense("mlp_weights", StreamType::Affine,
                    std::max<std::uint64_t>(256_KiB,
                                            p_.footprintBytes / 64),
                    4, true);
    out_ = addDense("outputs", StreamType::Affine,
                    std::max<std::uint64_t>(64_KiB, p_.footprintBytes / 256),
                    4, false);
}

class RecsysGenerator : public BoundedGenerator
{
  public:
    RecsysGenerator(const RecsysWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w),
          zipf_(w.rowsPerTable_, 0.8,
                mix64(w.params().seed + 101 * core))
    {
    }

    void
    produce(Access& out) override
    {
        // One "sample": lookups into every table, an MLP scan, a write.
        const std::uint32_t lookups =
            RecsysWorkload::kNumTables * RecsysWorkload::kLookupsPerTable;
        const std::uint32_t mlp_lines = 24;
        const std::uint32_t total = lookups + mlp_lines + 1;
        const std::uint32_t step = phase_ % total;
        ++phase_;

        if (step < lookups) {
            const std::uint32_t table =
                step % RecsysWorkload::kNumTables;
            emit(out, w_.tables_[table], zipf_.next(), false, 4);
        } else if (step < lookups + mlp_lines) {
            mlpCursor_ = (mlpCursor_ + elemsPerLine(4))
                % cfg(w_.mlp_).numElems();
            emit(out, w_.mlp_, mlpCursor_, false, 8);
        } else {
            outCursor_ = (outCursor_ + elemsPerLine(4))
                % cfg(w_.out_).numElems();
            emit(out, w_.out_, outCursor_, true, 4);
        }
    }

  private:
    const RecsysWorkload& w_;
    ZipfSampler zipf_;
    std::uint64_t phase_ = 0;
    std::uint64_t mlpCursor_ = 0;
    std::uint64_t outCursor_ = 0;
};

std::unique_ptr<AccessGenerator>
RecsysWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<RecsysGenerator>(*this, core);
}

// -------------------------------------------------------------------- mv

void
MvWorkload::doPrepare()
{
    cols_ = 4096; // 16 kB rows of float32
    const std::uint64_t a_bytes = p_.footprintBytes * 92 / 100;
    const std::uint64_t total_rows =
        std::max<std::uint64_t>(kMatrixBlocks, a_bytes / (cols_ * 4));
    rowsPerBlock_ = std::max<std::uint64_t>(1, total_rows / kMatrixBlocks);
    for (std::uint32_t b = 0; b < kMatrixBlocks; ++b) {
        blocks_.push_back(addDense("A_block" + std::to_string(b),
                                   StreamType::Affine,
                                   rowsPerBlock_ * cols_ * 4, 4, true));
    }
    x_ = addDense("x", StreamType::Affine, cols_ * 4, 4, true);
    y_ = addDense("y", StreamType::Affine,
                  std::max<std::uint64_t>(4096, total_rows * 4), 4, false);
}

class MvGenerator : public BoundedGenerator
{
  public:
    MvGenerator(const MvWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w)
    {
        // Cores process rows round-robin; start staggered.
        row_ = core;
    }

    void
    produce(Access& out) override
    {
        const std::uint64_t lines_per_row =
            w_.cols_ / elemsPerLine(4); // 256 lines of A + x per row
        const std::uint64_t pos = phase_ % (2 * lines_per_row + 1);
        ++phase_;

        const std::uint64_t rows_total =
            w_.rowsPerBlock_ * MvWorkload::kMatrixBlocks;
        const std::uint64_t row = row_ % rows_total;
        const std::uint32_t block = static_cast<std::uint32_t>(
            row / w_.rowsPerBlock_);
        const std::uint64_t row_in_block = row % w_.rowsPerBlock_;

        if (pos < 2 * lines_per_row) {
            const std::uint64_t line = pos / 2;
            if (pos % 2 == 0) {
                emit(out, w_.blocks_[block],
                     row_in_block * w_.cols_ + line * elemsPerLine(4),
                     false, 6);
            } else {
                emit(out, w_.x_, line * elemsPerLine(4), false, 6);
            }
        } else {
            emit(out, w_.y_, row, true, 2);
            row_ += w_.params().numCores; // next owned row
        }
    }

  private:
    const MvWorkload& w_;
    std::uint64_t phase_ = 0;
    std::uint64_t row_ = 0;
};

std::unique_ptr<AccessGenerator>
MvWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<MvGenerator>(*this, core);
}

// ------------------------------------------------------------------- gnn

void
GnnWorkload::doPrepare()
{
    // Features dominate: V * 256 B ~ 60% of footprint.
    const std::uint64_t feat_budget = p_.footprintBytes * 60 / 100;
    std::uint32_t scale = 10;
    while ((2ULL << scale) * kFeatureBytes <= feat_budget && scale < 24) {
        ++scale;
    }
    graph_ = makeRmatGraph(scale, 16, p_.seed + 7);

    offsets_ = addDense("csr_offsets", StreamType::Affine,
                        (graph_.numVertices + 1) * 8, 8, true);
    edges_ = addDense("csr_edges", StreamType::Affine,
                      std::max<std::uint64_t>(64, graph_.numEdges * 4), 4,
                      true);
    feats_ = addDense("features", StreamType::Indirect,
                      graph_.numVertices * kFeatureBytes, kFeatureBytes,
                      true);
    weights_ = addDense("gcn_weights", StreamType::Affine, 512_KiB, 4,
                        true);
    out_ = addDense("out_features", StreamType::Indirect,
                    graph_.numVertices * kFeatureBytes, kFeatureBytes,
                    false);
}

class GnnGenerator : public BoundedGenerator
{
  public:
    GnnGenerator(const GnnWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w)
    {
        const std::uint64_t per_core =
            w_.graph_.numVertices / w.params().numCores;
        vertex_ = per_core * core;
        end_ = core + 1 == w.params().numCores ? w_.graph_.numVertices
                                               : vertex_ + per_core;
        begin_ = vertex_;
        startVertex();
    }

    void
    produce(Access& out) override
    {
        if (stage_ == 0) {
            emit(out, w_.offsets_, vertex_, false, 2);
            stage_ = 1;
            return;
        }
        if (stage_ == 1) {
            // Scan this vertex's edge list one line at a time, gathering
            // a neighbor feature row per edge seen.
            if (edgeCursor_ < edgeEnd_) {
                if (gatherPending_) {
                    gatherPending_ = false;
                    const std::uint32_t nbr =
                        w_.graph_.edges[edgeCursor_];
                    ++edgeCursor_;
                    emit(out, w_.feats_, nbr, false, 6);
                } else {
                    gatherPending_ = true;
                    emit(out, w_.edges_, edgeCursor_, false, 2);
                }
                return;
            }
            stage_ = 2;
            weightLines_ = 0;
        }
        if (stage_ == 2 && weightLines_ < 8) {
            weightCursor_ = (weightCursor_ + 16)
                % cfg(w_.weights_).numElems();
            ++weightLines_;
            emit(out, w_.weights_, weightCursor_, false, 12);
            return;
        }
        // Write the output feature row and move on.
        emit(out, w_.out_, vertex_, true, 4);
        ++vertex_;
        if (vertex_ >= end_) {
            vertex_ = begin_;
        }
        startVertex();
    }

  private:
    void
    startVertex()
    {
        stage_ = 0;
        edgeCursor_ = w_.graph_.offsets[vertex_];
        edgeEnd_ = w_.graph_.offsets[vertex_ + 1];
        gatherPending_ = false;
    }

    const GnnWorkload& w_;
    std::uint64_t vertex_ = 0;
    std::uint64_t begin_ = 0;
    std::uint64_t end_ = 0;
    int stage_ = 0;
    std::uint64_t edgeCursor_ = 0;
    std::uint64_t edgeEnd_ = 0;
    bool gatherPending_ = false;
    std::uint32_t weightLines_ = 0;
    std::uint64_t weightCursor_ = 0;
};

std::unique_ptr<AccessGenerator>
GnnWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<GnnGenerator>(*this, core);
}

} // namespace ndpext
