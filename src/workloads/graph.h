/**
 * @file
 * Synthetic power-law graph generation (R-MAT) in CSR form, standing in
 * for the GAP/Reddit datasets (see DESIGN.md substitution table). R-MAT
 * with (a, b, c) = (0.57, 0.19, 0.19) reproduces the skewed degree
 * distribution that makes graph property accesses cache-unfriendly and
 * hot vertices replication-friendly.
 */

#ifndef NDPEXT_WORKLOADS_GRAPH_H
#define NDPEXT_WORKLOADS_GRAPH_H

#include <cstdint>
#include <vector>

namespace ndpext {

struct CsrGraph
{
    std::uint64_t numVertices = 0;
    std::uint64_t numEdges = 0;
    /** offsets[v]..offsets[v+1] index into `edges`. Size V+1. */
    std::vector<std::uint64_t> offsets;
    /** Destination vertex ids. Size E. */
    std::vector<std::uint32_t> edges;

    std::uint64_t
    degree(std::uint64_t v) const
    {
        return offsets[v + 1] - offsets[v];
    }
};

/**
 * Generate an R-MAT graph with 2^scale vertices and
 * 2^scale * avg_degree directed edges (self-loops allowed, duplicates
 * kept -- both exist in real edge lists).
 */
CsrGraph makeRmatGraph(std::uint32_t scale, std::uint32_t avg_degree,
                       std::uint64_t seed);

/** Pick a scale so the CSR (8 B offsets + 4 B edges) is ~target bytes. */
std::uint32_t scaleForFootprint(std::uint64_t target_bytes,
                                std::uint32_t avg_degree);

} // namespace ndpext

#endif // NDPEXT_WORKLOADS_GRAPH_H
