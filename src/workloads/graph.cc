#include "workloads/graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace ndpext {

CsrGraph
makeRmatGraph(std::uint32_t scale, std::uint32_t avg_degree,
              std::uint64_t seed)
{
    NDP_ASSERT(scale >= 4 && scale <= 28, "scale=", scale);
    NDP_ASSERT(avg_degree >= 1);
    const std::uint64_t v_count = 1ULL << scale;
    const std::uint64_t e_count = v_count * avg_degree;

    // R-MAT quadrant probabilities (Graph500 defaults).
    constexpr double kA = 0.57;
    constexpr double kB = 0.19;
    constexpr double kC = 0.19;

    Rng rng(seed);
    std::vector<std::uint32_t> src(e_count);
    std::vector<std::uint32_t> dst(e_count);
    for (std::uint64_t e = 0; e < e_count; ++e) {
        std::uint64_t s = 0;
        std::uint64_t d = 0;
        for (std::uint32_t bit = 0; bit < scale; ++bit) {
            const double p = rng.nextDouble();
            s <<= 1;
            d <<= 1;
            if (p < kA) {
                // top-left: no bits set
            } else if (p < kA + kB) {
                d |= 1;
            } else if (p < kA + kB + kC) {
                s |= 1;
            } else {
                s |= 1;
                d |= 1;
            }
        }
        src[e] = static_cast<std::uint32_t>(s);
        dst[e] = static_cast<std::uint32_t>(d);
    }

    // Counting sort into CSR.
    CsrGraph g;
    g.numVertices = v_count;
    g.numEdges = e_count;
    g.offsets.assign(v_count + 1, 0);
    for (const auto s : src) {
        ++g.offsets[s + 1];
    }
    for (std::uint64_t v = 0; v < v_count; ++v) {
        g.offsets[v + 1] += g.offsets[v];
    }
    g.edges.resize(e_count);
    std::vector<std::uint64_t> cursor(g.offsets.begin(),
                                      g.offsets.end() - 1);
    for (std::uint64_t e = 0; e < e_count; ++e) {
        g.edges[cursor[src[e]]++] = dst[e];
    }
    return g;
}

std::uint32_t
scaleForFootprint(std::uint64_t target_bytes, std::uint32_t avg_degree)
{
    // CSR bytes ~ V * 8 + V * degree * 4.
    for (std::uint32_t scale = 26; scale > 4; --scale) {
        const std::uint64_t v = 1ULL << scale;
        const std::uint64_t bytes =
            v * 8 + v * static_cast<std::uint64_t>(avg_degree) * 4;
        if (bytes <= target_bytes) {
            return scale;
        }
    }
    return 4;
}

} // namespace ndpext
