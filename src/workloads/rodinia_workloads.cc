#include "workloads/rodinia_workloads.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ndpext {

namespace {

constexpr std::uint64_t kLine4 = kCachelineBytes / 4; // 16 floats per line

} // namespace

// ---------------------------------------------------------------backprop

void
BackpropWorkload::doPrepare()
{
    // Dense MLP: w and oldw take ~45% of the footprint each.
    const std::uint64_t w_bytes = p_.footprintBytes * 45 / 100;
    input_ = addDense("input_units", StreamType::Affine,
                      std::max<std::uint64_t>(1_MiB, p_.footprintBytes / 32),
                      4, true);
    weights_ = addDense("w", StreamType::Affine, w_bytes, 4, true);
    oldWeights_ = addDense("oldw", StreamType::Affine, w_bytes, 4, false);
    hidden_ = addDense("hidden_units", StreamType::Affine, 256_KiB, 4,
                       false);
}

class BackpropGenerator : public BoundedGenerator
{
  public:
    BackpropGenerator(const BackpropWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w),
          // First ~70% of the run is the read-heavy layerforward kernel,
          // the rest the write-heavy adjust_weights kernel.
          phase2Start_(w.params().accessesPerCore * 70 / 100)
    {
        wCursor_ = core * 4096;
    }

    void
    produce(Access& out) override
    {
        const bool adjust = issued_ >= phase2Start_;
        ++issued_;
        const std::uint64_t step = phase_ % 8;
        ++phase_;

        if (!adjust) {
            // layerforward: scan w, read input, accumulate into hidden.
            if (step < 6) {
                wCursor_ = (wCursor_ + kLine4) % cfg(w_.weights_).numElems();
                emit(out, w_.weights_, wCursor_, false, 6);
            } else if (step == 6) {
                inCursor_ = (inCursor_ + kLine4) % cfg(w_.input_).numElems();
                emit(out, w_.input_, inCursor_, false, 4);
            } else {
                emit(out, w_.hidden_,
                     rng_.nextBounded(cfg(w_.hidden_).numElems()), true, 2);
            }
        } else {
            // adjust_weights: read oldw, write w and oldw.
            if (step < 3) {
                owCursor_ =
                    (owCursor_ + kLine4) % cfg(w_.oldWeights_).numElems();
                emit(out, w_.oldWeights_, owCursor_, step == 2, 4);
            } else if (step < 7) {
                wCursor_ = (wCursor_ + kLine4) % cfg(w_.weights_).numElems();
                emit(out, w_.weights_, wCursor_, true, 4);
            } else {
                emit(out, w_.hidden_,
                     rng_.nextBounded(cfg(w_.hidden_).numElems()), false,
                     2);
            }
        }
    }

  private:
    const BackpropWorkload& w_;
    std::uint64_t phase2Start_;
    std::uint64_t issued_ = 0;
    std::uint64_t phase_ = 0;
    std::uint64_t wCursor_ = 0;
    std::uint64_t owCursor_ = 0;
    std::uint64_t inCursor_ = 0;
};

std::unique_ptr<AccessGenerator>
BackpropWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<BackpropGenerator>(*this, core);
}

// ---------------------------------------------------------------- hotspot

void
HotspotWorkload::doPrepare()
{
    // Three R x C float grids.
    const std::uint64_t grid_bytes = p_.footprintBytes / 3;
    cols_ = 4096;
    rows_ = std::max<std::uint64_t>(p_.numCores * 4,
                                    grid_bytes / (cols_ * 4));
    temp_ = addDense("temp", StreamType::Affine, rows_ * cols_ * 4, 4,
                     false);
    power_ = addDense("power", StreamType::Affine, rows_ * cols_ * 4, 4,
                      true);
    result_ = addDense("result", StreamType::Affine, rows_ * cols_ * 4, 4,
                       false);
}

class HotspotGenerator : public BoundedGenerator
{
  public:
    HotspotGenerator(const HotspotWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w)
    {
        const std::uint64_t band = w_.rows_ / w.params().numCores;
        rowBegin_ = band * core;
        rowEnd_ = core + 1 == w.params().numCores ? w_.rows_
                                                  : rowBegin_ + band;
        row_ = rowBegin_;
    }

    void
    produce(Access& out) override
    {
        // Per line of cells: temp[r], temp[r-1], temp[r+1], power, result.
        const std::uint64_t step = phase_ % 5;
        ++phase_;
        const std::uint64_t idx = row_ * w_.cols_ + col_;
        switch (step) {
          case 0:
            emit(out, w_.temp_, idx, false, 4);
            return;
          case 1: {
            const std::uint64_t up = row_ == 0 ? row_ : row_ - 1;
            emit(out, w_.temp_, up * w_.cols_ + col_, false, 4);
            return;
          }
          case 2: {
            const std::uint64_t down =
                row_ + 1 >= w_.rows_ ? row_ : row_ + 1;
            emit(out, w_.temp_, down * w_.cols_ + col_, false, 4);
            return;
          }
          case 3:
            emit(out, w_.power_, idx, false, 6);
            return;
          default:
            emit(out, w_.result_, idx, true, 4);
            col_ += kLine4;
            if (col_ >= w_.cols_) {
                col_ = 0;
                ++row_;
                if (row_ >= rowEnd_) {
                    row_ = rowBegin_;
                }
            }
            return;
        }
    }

  private:
    const HotspotWorkload& w_;
    std::uint64_t rowBegin_ = 0;
    std::uint64_t rowEnd_ = 0;
    std::uint64_t row_ = 0;
    std::uint64_t col_ = 0;
    std::uint64_t phase_ = 0;
};

std::unique_ptr<AccessGenerator>
HotspotWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<HotspotGenerator>(*this, core);
}

// ----------------------------------------------------------------- lavaMD

void
LavaMdWorkload::doPrepare()
{
    // positions (16 B) + charges (4 B) + forces (16 B) per particle.
    const std::uint64_t per_particle = 16 + 4 + 16;
    const std::uint64_t particles =
        p_.footprintBytes * 95 / 100 / per_particle;
    numBoxes_ = std::max<std::uint64_t>(p_.numCores,
                                        particles / kParticlesPerBox);
    boxesPerDim_ = static_cast<std::uint64_t>(std::cbrt(
        static_cast<double>(numBoxes_)));
    boxesPerDim_ = std::max<std::uint64_t>(4, boxesPerDim_);
    numBoxes_ = boxesPerDim_ * boxesPerDim_ * boxesPerDim_;

    const std::uint64_t n = numBoxes_ * kParticlesPerBox;
    positions_ = addDense("positions", StreamType::Indirect, n * 16, 16,
                          true);
    charges_ = addDense("charges", StreamType::Indirect, n * 4, 4, true);
    forces_ = addDense("forces", StreamType::Indirect, n * 16, 16, false);
    neighborList_ = addDense("neighbor_list", StreamType::Affine,
                             numBoxes_ * kNeighbors * 4, 4, true);
}

class LavaMdGenerator : public BoundedGenerator
{
  public:
    LavaMdGenerator(const LavaMdWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w)
    {
        box_ = core % w_.numBoxes_;
    }

    void
    produce(Access& out) override
    {
        // For each of the 27 neighbor boxes, stream its particles.
        const std::uint64_t d = w_.boxesPerDim_;
        const std::uint64_t bx = box_ % d;
        const std::uint64_t by = (box_ / d) % d;
        const std::uint64_t bz = box_ / (d * d);
        const std::uint32_t n = neighbor_;
        const std::uint64_t nx = (bx + (n % 3) + d - 1) % d;
        const std::uint64_t ny = (by + ((n / 3) % 3) + d - 1) % d;
        const std::uint64_t nz = (bz + (n / 9) + d - 1) % d;
        const std::uint64_t nbox = (nz * d + ny) * d + nx;
        const std::uint64_t pbase =
            nbox * LavaMdWorkload::kParticlesPerBox;

        const std::uint64_t step = phase_ % 4;
        ++phase_;
        switch (step) {
          case 0:
            emit(out, w_.neighborList_,
                 box_ * LavaMdWorkload::kNeighbors + n, false, 2);
            return;
          case 1:
            emit(out, w_.positions_, pbase + particle_, false, 10);
            return;
          case 2:
            emit(out, w_.charges_, pbase + particle_, false, 6);
            return;
          default:
            emit(out, w_.forces_,
                 box_ * LavaMdWorkload::kParticlesPerBox
                     + (particle_ % LavaMdWorkload::kParticlesPerBox),
                 true, 8);
            particle_ += 4; // one 64 B line of positions
            if (particle_ >= LavaMdWorkload::kParticlesPerBox) {
                particle_ = 0;
                ++neighbor_;
                if (neighbor_ >= LavaMdWorkload::kNeighbors) {
                    neighbor_ = 0;
                    box_ = (box_ + w_.params().numCores) % w_.numBoxes_;
                }
            }
            return;
        }
    }

  private:
    const LavaMdWorkload& w_;
    std::uint64_t box_ = 0;
    std::uint32_t neighbor_ = 0;
    std::uint64_t particle_ = 0;
    std::uint64_t phase_ = 0;
};

std::unique_ptr<AccessGenerator>
LavaMdWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<LavaMdGenerator>(*this, core);
}

// -------------------------------------------------------------------- lud

void
LudWorkload::doPrepare()
{
    n_ = 1024;
    while ((n_ * 2) * (n_ * 2) * 4 <= p_.footprintBytes) {
        n_ *= 2;
    }
    matrix_ = addDense("matrix", StreamType::Affine, n_ * n_ * 4, 4,
                       false);
    // The blocked implementation keeps a shadow copy of the diagonal
    // block that every core re-reads during the perimeter/internal steps.
    diag_ = addDense("diag_block", StreamType::Affine, 64_KiB, 4, false);
}

class LudGenerator : public BoundedGenerator
{
  public:
    LudGenerator(const LudWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w)
    {
        k_ = (core * 17) % (w_.n_ / 2);
    }

    void
    produce(Access& out) override
    {
        // Blocked LU step k: read row k, read column k (strided, poor
        // locality), update trailing block -- the working set shifts with
        // k, exercising reconfiguration.
        const std::uint64_t step = phase_ % 5;
        ++phase_;
        const std::uint64_t n = w_.n_;
        switch (step) {
          case 4: // shadow diagonal block re-read
            emit(out, w_.diag_,
                 (i_ * 16 + j_) % cfg(w_.diag_).numElems(), false, 4);
            return;
          case 0: // perimeter row (sequential)
            i_ = (i_ + kLine4) % (n - k_);
            emit(out, w_.matrix_, k_ * n + k_ + i_, false, 6);
            return;
          case 1: // perimeter column (strided: one element per row)
            j_ = (j_ + 1) % (n - k_);
            emit(out, w_.matrix_, (k_ + j_) * n + k_, false, 6);
            return;
          case 2: // trailing submatrix read
            emit(out, w_.matrix_,
                 (k_ + 1 + j_) * n + k_ + 1 + i_, false, 8);
            return;
          default: // trailing submatrix write
            emit(out, w_.matrix_,
                 (k_ + 1 + j_) * n + k_ + 1 + i_, true, 4);
            if (++stepsAtK_ >= 4096) {
                stepsAtK_ = 0;
                k_ = (k_ + 16) % (n / 2);
            }
            return;
        }
    }

  private:
    const LudWorkload& w_;
    std::uint64_t k_ = 0;
    std::uint64_t i_ = 0;
    std::uint64_t j_ = 0;
    std::uint64_t phase_ = 0;
    std::uint64_t stepsAtK_ = 0;
};

std::unique_ptr<AccessGenerator>
LudWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<LudGenerator>(*this, core);
}

// -------------------------------------------------------------pathfinder

void
PathfinderWorkload::doPrepare()
{
    cols_ = 1ULL << 20; // wide rows: each core owns a column chunk
    rows_ = std::max<std::uint64_t>(
        8, p_.footprintBytes * 90 / 100 / (cols_ * 4));
    wall_ = addDense("wall", StreamType::Affine, rows_ * cols_ * 4, 4,
                     true);
    src_ = addDense("src_row", StreamType::Affine, cols_ * 4, 4, false);
    dst_ = addDense("dst_row", StreamType::Affine, cols_ * 4, 4, false);
}

class PathfinderGenerator : public BoundedGenerator
{
  public:
    PathfinderGenerator(const PathfinderWorkload& w, CoreId core)
        : BoundedGenerator(w, core), w_(w)
    {
        const std::uint64_t chunk = w_.cols_ / w.params().numCores;
        colBegin_ = chunk * core;
        colEnd_ = core + 1 == w.params().numCores ? w_.cols_
                                                  : colBegin_ + chunk;
        col_ = colBegin_;
    }

    void
    produce(Access& out) override
    {
        // DP wavefront: read wall[row][col], src[col-1..col+1], write dst.
        const std::uint64_t step = phase_ % 4;
        ++phase_;
        switch (step) {
          case 0:
            emit(out, w_.wall_, row_ * w_.cols_ + col_, false, 4);
            return;
          case 1:
            emit(out, w_.src_, col_ == 0 ? 0 : col_ - 1, false, 2);
            return;
          case 2:
            emit(out, w_.src_,
                 std::min(col_ + kLine4, w_.cols_ - 1), false, 2);
            return;
          default:
            emit(out, w_.dst_, col_, true, 2);
            col_ += kLine4;
            if (col_ >= colEnd_) {
                col_ = colBegin_;
                row_ = (row_ + 1) % w_.rows_;
            }
            return;
        }
    }

  private:
    const PathfinderWorkload& w_;
    std::uint64_t colBegin_ = 0;
    std::uint64_t colEnd_ = 0;
    std::uint64_t col_ = 0;
    std::uint64_t row_ = 0;
    std::uint64_t phase_ = 0;
};

std::unique_ptr<AccessGenerator>
PathfinderWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<PathfinderGenerator>(*this, core);
}

} // namespace ndpext
