#include "workloads/trace_workload.h"

#include <exception>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace ndpext {

namespace {

/** Generator replaying one core's recorded accesses. */
class TraceGenerator : public AccessGenerator
{
  public:
    TraceGenerator(const TraceWorkload& w, CoreId core)
        : workload_(w), core_(core)
    {
    }

    bool
    next(Access& out) override
    {
        const auto& trace = workload_.coreTrace(core_);
        if (cursor_ >= trace.size()) {
            return false;
        }
        const auto& t = trace[cursor_++];
        const StreamConfig& cfg = workload_.streamConfigs()[t.sid];
        out.sid = t.sid;
        out.elem = t.elem;
        out.addr = cfg.addrOf(t.elem);
        out.size = std::min<std::uint32_t>(cfg.elemSize, kCachelineBytes);
        out.isWrite = t.isWrite;
        out.computeCycles = t.computeCycles;
        return true;
    }

  private:
    const TraceWorkload& workload_;
    CoreId core_;
    std::size_t cursor_ = 0;
};

} // namespace

void
TraceWorkload::doPrepare()
{
    // Streams and accesses were installed by parse(); nothing to build.
    NDP_ASSERT(!configs_.empty(), "trace defined no streams");
}

std::unique_ptr<AccessGenerator>
TraceWorkload::makeGenerator(CoreId core) const
{
    NDP_ASSERT(core < perCore_.size(), "core ", core, " out of range");
    return std::make_unique<TraceGenerator>(*this, core);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::parse(std::istream& in, std::uint32_t num_cores,
                     const std::string& source, std::string* error)
{
    NDP_ASSERT(num_cores > 0);
    NDP_ASSERT(error != nullptr);
    error->clear();
    auto w = std::unique_ptr<TraceWorkload>(new TraceWorkload());
    w->perCore_.resize(num_cores);

    std::uint64_t footprint = 0;
    std::string line;
    std::size_t line_no = 0;
    // Diagnostics carry the source name and line so a user can fix the
    // offending line of a multi-thousand-line trace directly.
    auto fail = [&](const std::string& what) {
        std::ostringstream os;
        os << source << ":" << line_no << ": " << what;
        *error = os.str();
        return std::unique_ptr<TraceWorkload>();
    };
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        std::istringstream ss(line);
        std::string kind;
        if (!(ss >> kind)) {
            continue; // blank line
        }
        if (kind == "stream") {
            std::string name;
            std::string type_str;
            std::string base_str;
            std::uint64_t size = 0;
            std::uint32_t elem_size = 0;
            std::string rw;
            if (!(ss >> name >> type_str >> base_str >> size >> elem_size
                  >> rw)) {
                return fail("malformed stream record (expected: stream "
                            "<name> <affine|indirect> <base-hex> <size> "
                            "<elemSize> <ro|rw>)");
            }
            StreamType type;
            if (type_str == "affine") {
                type = StreamType::Affine;
            } else if (type_str == "indirect") {
                type = StreamType::Indirect;
            } else {
                return fail("bad stream type '" + type_str
                            + "' (expected affine|indirect)");
            }
            Addr base = 0;
            try {
                std::size_t used = 0;
                base = static_cast<Addr>(
                    std::stoull(base_str, &used, 0));
                if (used != base_str.size()) {
                    return fail("bad stream base '" + base_str + "'");
                }
            } catch (const std::exception&) {
                return fail("bad stream base '" + base_str + "'");
            }
            if (rw != "ro" && rw != "rw") {
                return fail("expected ro|rw, got '" + rw + "'");
            }
            if (size == 0 || elem_size == 0 || size < elem_size) {
                return fail("bad stream geometry (size=" +
                            std::to_string(size) + " elemSize="
                            + std::to_string(elem_size) + ")");
            }
            StreamConfig cfg =
                StreamConfig::dense(name, type, base, size, elem_size);
            cfg.readOnly = rw == "ro";
            cfg.sid = static_cast<StreamId>(w->configs_.size());
            w->configs_.push_back(std::move(cfg));
            footprint += size;
        } else if (kind == "a") {
            std::uint32_t core = 0;
            std::uint32_t sid = 0;
            ElemId elem = 0;
            std::string rw;
            std::uint32_t compute = 2;
            if (!(ss >> core >> sid >> elem >> rw)) {
                return fail("malformed access record (expected: a <core> "
                            "<sid> <elem> <r|w> [computeCycles])");
            }
            ss >> compute; // optional
            if (core >= num_cores) {
                return fail("core " + std::to_string(core)
                            + " >= " + std::to_string(num_cores));
            }
            if (sid >= w->configs_.size()) {
                return fail("unknown sid " + std::to_string(sid));
            }
            if (elem >= w->configs_[sid].numElems()) {
                return fail("elem " + std::to_string(elem)
                            + " out of range for stream "
                            + w->configs_[sid].name);
            }
            if (rw != "r" && rw != "w") {
                return fail("expected r|w, got '" + rw + "'");
            }
            w->perCore_[core].push_back(TraceAccess{
                static_cast<StreamId>(sid), elem, rw == "w",
                std::max<std::uint32_t>(1, compute)});
        } else {
            return fail("unknown record '" + kind
                        + "' (expected 'stream' or 'a')");
        }
    }
    if (w->configs_.empty()) {
        line_no = 0;
        return fail("trace defined no streams");
    }

    std::size_t max_accesses = 1;
    for (const auto& core : w->perCore_) {
        max_accesses = std::max(max_accesses, core.size());
    }
    WorkloadParams params;
    params.numCores = num_cores;
    params.footprintBytes = std::max<std::uint64_t>(1, footprint);
    params.accessesPerCore = max_accesses;
    w->prepare(params);
    return w;
}

std::unique_ptr<TraceWorkload>
TraceWorkload::parse(std::istream& in, std::uint32_t num_cores)
{
    std::string error;
    auto w = parse(in, num_cores, "<trace>", &error);
    if (w == nullptr) {
        NDP_FATAL("trace ", error);
    }
    return w;
}

std::unique_ptr<TraceWorkload>
TraceWorkload::parseFile(const std::string& path, std::uint32_t num_cores,
                         std::string* error)
{
    NDP_ASSERT(error != nullptr);
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open trace file: " + path;
        return nullptr;
    }
    return parse(in, num_cores, path, error);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::parseFile(const std::string& path, std::uint32_t num_cores)
{
    std::string error;
    auto w = parseFile(path, num_cores, &error);
    if (w == nullptr) {
        NDP_FATAL("trace ", error);
    }
    return w;
}

} // namespace ndpext
