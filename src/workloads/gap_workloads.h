/**
 * @file
 * GAP benchmark graph workloads (Section VI): bfs, pr, cc, bc, tc over
 * synthetic R-MAT graphs. CSR offsets/edges are affine scans; per-vertex
 * property arrays are indirect streams indexed by the (power-law) edge
 * destinations, giving the fine-grained irregular sharing that motivates
 * a global distributed cache (Section III-A).
 */

#ifndef NDPEXT_WORKLOADS_GAP_WORKLOADS_H
#define NDPEXT_WORKLOADS_GAP_WORKLOADS_H

#include "workloads/graph.h"
#include "workloads/workload.h"

namespace ndpext {

/** Common CSR plumbing for the five graph kernels. */
class GapWorkload : public Workload
{
  public:
    const CsrGraph& graph() const { return graph_; }

  protected:
    void doPrepare() final;

    /** Register the kernel's property streams (after offsets/edges). */
    virtual void addPropertyStreams() = 0;

    /** Fraction of the footprint consumed by the CSR itself. */
    virtual std::uint32_t csrFootprintPercent() const { return 70; }

    /**
     * Stream annotation of the edge array. Most kernels scan it
     * sequentially (affine); tc overrides this because its dominant edge
     * access is the data-dependent binary-search probe, which the stream
     * model classifies as indirect (Section II-C).
     */
    virtual StreamType edgesStreamType() const
    {
        return StreamType::Affine;
    }

    CsrGraph graph_;
    StreamId offsets_ = 0;
    StreamId edges_ = 0;
};

/** Per-core traversal state shared by the graph generators. */
class GapGenerator : public BoundedGenerator
{
  public:
    GapGenerator(const GapWorkload& w, CoreId core);

  protected:
    /** Advance to the next owned vertex (round-robin partition). */
    void nextVertex();

    const GapWorkload& gw_;
    std::uint64_t vertex_ = 0;
    std::uint64_t edgeCursor_ = 0;
    std::uint64_t edgeEnd_ = 0;
    std::uint64_t phase_ = 0;
};

class BfsWorkload : public GapWorkload
{
  public:
    std::string name() const override { return "bfs"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void addPropertyStreams() override;

  private:
    friend class BfsGenerator;
    StreamId visited_ = 0;
    StreamId parent_ = 0;
};

class PageRankWorkload : public GapWorkload
{
  public:
    std::string name() const override { return "pr"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void addPropertyStreams() override;

  private:
    friend class PageRankGenerator;
    StreamId ranks_ = 0;    ///< read-only within an iteration
    StreamId newRanks_ = 0; ///< written per vertex
    StreamId outDeg_ = 0;
};

class CcWorkload : public GapWorkload
{
  public:
    std::string name() const override { return "cc"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void addPropertyStreams() override;

  private:
    friend class CcGenerator;
    StreamId comp_ = 0;
};

class BcWorkload : public GapWorkload
{
  public:
    std::string name() const override { return "bc"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void addPropertyStreams() override;

  private:
    friend class BcGenerator;
    StreamId dist_ = 0;
    StreamId sigma_ = 0;
    StreamId delta_ = 0;
};

class TcWorkload : public GapWorkload
{
  public:
    std::string name() const override { return "tc"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

  protected:
    void addPropertyStreams() override;
    std::uint32_t csrFootprintPercent() const override { return 95; }
    StreamType edgesStreamType() const override
    {
        return StreamType::Indirect;
    }

  private:
    friend class TcGenerator;
    StreamId counts_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_WORKLOADS_GAP_WORKLOADS_H
