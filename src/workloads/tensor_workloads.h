/**
 * @file
 * Tensor workloads (Section VI): DLRM-style recommendation inference
 * (recsys), matrix-vector multiplication (mv), and a GCN layer (gnn).
 *
 * Accesses are emitted at cacheline granularity (one access per touched
 * 64 B line, with computeCycles covering the arithmetic on that line), the
 * standard trace-decimation used by memory-system simulators.
 */

#ifndef NDPEXT_WORKLOADS_TENSOR_WORKLOADS_H
#define NDPEXT_WORKLOADS_TENSOR_WORKLOADS_H

#include "workloads/graph.h"
#include "workloads/workload.h"

namespace ndpext {

/**
 * recsys: embedding tables are read-only indirect streams with zipfian
 * row popularity (hot rows benefit from replication); the MLP weights are
 * a small, hot, shared read-only affine stream; per-core outputs are
 * read-write. The paper's headline workload (up to 2.43x).
 */
class RecsysWorkload : public Workload
{
  public:
    std::string name() const override { return "recsys"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

    static constexpr std::uint32_t kNumTables = 8;
    static constexpr std::uint32_t kEmbeddingBytes = 128;
    static constexpr std::uint32_t kLookupsPerTable = 2;

  protected:
    void doPrepare() override;

  private:
    friend class RecsysGenerator;
    std::vector<StreamId> tables_;
    StreamId mlp_ = 0;
    StreamId out_ = 0;
    std::uint64_t rowsPerTable_ = 0;
};

/**
 * mv: the matrix is split into many row-block affine streams ("applications
 * with many streams like mv"); the input vector is a small, shared,
 * read-only affine stream (highly replication-friendly); the output vector
 * is read-write.
 */
class MvWorkload : public Workload
{
  public:
    std::string name() const override { return "mv"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

    static constexpr std::uint32_t kMatrixBlocks = 16;

  protected:
    void doPrepare() override;

  private:
    friend class MvGenerator;
    std::vector<StreamId> blocks_;
    StreamId x_ = 0;
    StreamId y_ = 0;
    std::uint64_t rowsPerBlock_ = 0;
    std::uint64_t cols_ = 0;
};

/**
 * gnn: graph convolution via sparse-dense multiply. CSR offsets/edges are
 * affine scans; neighbor feature rows are gathered through a read-only
 * indirect stream; the weight matrix is small and hot.
 */
class GnnWorkload : public Workload
{
  public:
    std::string name() const override { return "gnn"; }
    std::unique_ptr<AccessGenerator> makeGenerator(CoreId core) const
        override;

    static constexpr std::uint32_t kFeatureBytes = 256;

  protected:
    void doPrepare() override;

  private:
    friend class GnnGenerator;
    CsrGraph graph_;
    StreamId offsets_ = 0;
    StreamId edges_ = 0;
    StreamId feats_ = 0;
    StreamId weights_ = 0;
    StreamId out_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_WORKLOADS_TENSOR_WORKLOADS_H
