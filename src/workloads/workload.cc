#include "workloads/workload.h"

#include <utility>

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

void
Workload::prepare(const WorkloadParams& params)
{
    NDP_ASSERT(!prepared_, "prepare() called twice on ", name());
    NDP_ASSERT(params.numCores > 0 && params.footprintBytes > 0
               && params.accessesPerCore > 0);
    p_ = params;
    doPrepare();
    NDP_ASSERT(!configs_.empty(), name(), " registered no streams");
    prepared_ = true;
}

void
Workload::registerStreams(StreamTable& table) const
{
    NDP_ASSERT(prepared_, "registerStreams before prepare on ", name());
    for (const StreamConfig& cfg : configs_) {
        const StreamId sid = table.configureStream(cfg);
        NDP_ASSERT(sid == cfg.sid,
                   "stream table not empty when registering ", name());
    }
}

void
Workload::rebaseStreams(StreamId sid_offset, Addr addr_offset)
{
    NDP_ASSERT(prepared_, "rebaseStreams before prepare on ", name());
    for (StreamConfig& cfg : configs_) {
        cfg.sid = static_cast<StreamId>(cfg.sid + sid_offset);
        cfg.base += addr_offset;
    }
    nextAddr_ += addr_offset;
}

Addr
Workload::allocBytes(std::uint64_t bytes)
{
    const Addr base = nextAddr_;
    nextAddr_ = alignUp(nextAddr_ + bytes, 4096);
    return base;
}

StreamId
Workload::addDense(std::string name, StreamType type, std::uint64_t bytes,
                   std::uint32_t elem_size, bool read_only)
{
    bytes = alignUp(std::max<std::uint64_t>(bytes, elem_size), elem_size);
    StreamConfig cfg = StreamConfig::dense(
        std::move(name), type, allocBytes(bytes), bytes, elem_size);
    cfg.readOnly = read_only;
    cfg.sid = static_cast<StreamId>(configs_.size());
    configs_.push_back(std::move(cfg));
    return configs_.back().sid;
}

StreamId
Workload::addMatrix(std::string name, std::uint64_t rows,
                    std::uint64_t cols, std::uint32_t elem_size,
                    bool read_only, bool col_major)
{
    const std::uint64_t bytes = rows * cols * elem_size;
    StreamConfig cfg = StreamConfig::matrix2d(
        std::move(name), allocBytes(bytes), rows, cols, elem_size,
        col_major);
    cfg.readOnly = read_only;
    cfg.sid = static_cast<StreamId>(configs_.size());
    configs_.push_back(std::move(cfg));
    return configs_.back().sid;
}

} // namespace ndpext
