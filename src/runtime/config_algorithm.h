/**
 * @file
 * The cache configuration algorithm (Section V-C, Algorithm 1).
 *
 * Co-optimizes sizing, placement, and replication in one iterative loop:
 *  - Sizing: repeatedly grow the stream whose miss curve has the steepest
 *    marginal utility (lookahead, as in UCP/Jigsaw), one geometric segment
 *    at a time, until curves flatten or space runs out.
 *  - Placement/replication: read-only streams start with one replication
 *    group per accessing unit (maximum replication, minimum distance).
 *    When a unit runs out of local rows the algorithm either *extends* the
 *    group to the nearest unit with space, or *merges* two replication
 *    groups of some stream to free duplicated rows -- whichever change has
 *    the higher utility. Utility weights cached bytes by the attenuation
 *    factor k = dramLat / (dramLat + icnLat) between accessor and holder.
 *  - Read-write streams keep a single global group (coherence).
 */

#ifndef NDPEXT_RUNTIME_CONFIG_ALGORITHM_H
#define NDPEXT_RUNTIME_CONFIG_ALGORITHM_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ndp/remap_table.h"
#include "noc/noc_model.h"
#include "sampler/miss_curve.h"
#include "sim/checkpoint.h"

namespace ndpext {

/** Sentinel for streams that belong to no serving tenant. */
inline constexpr std::uint32_t kNoQosTenant = ~0u;

/** Everything the algorithm knows about one stream. */
struct StreamDemand
{
    StreamId sid = kNoStream;
    MissCurve curve;
    /** Units that accessed the stream this epoch (the bitvectors). */
    std::vector<UnitId> accUnits;
    /** Access counts per accUnit (same order). */
    std::vector<std::uint64_t> accCounts;
    std::uint32_t granuleBytes = 64;
    bool readOnly = true;
    bool affine = false;
    /** Stream size: allocation beyond the footprint is useless. */
    std::uint64_t footprintBytes = 0;
    /**
     * QoS (multi-tenant serving, see src/serving): the owning tenant
     * and its class. Reserved tenants get `reservedRowsPerUnit` rows
     * carved out of every unit (shared among the tenant's streams);
     * best-effort streams -- including all non-serving workloads --
     * compete only for the remaining shared capacity. Defaults leave
     * the algorithm byte-identical with pre-QoS behaviour.
     */
    std::uint32_t tenant = kNoQosTenant;
    bool reserved = false;
    std::uint32_t reservedRowsPerUnit = 0;
};

/**
 * QoS attributes of one stream, precomputed by the system layer from
 * the serving config and attached to gathered demands every epoch.
 */
struct StreamQos
{
    StreamId sid = kNoStream;
    std::uint32_t tenant = kNoQosTenant;
    bool reserved = false;
    std::uint32_t reservedRowsPerUnit = 0;
};

struct ConfigParams
{
    std::uint32_t numUnits = 0;
    std::uint32_t rowsPerUnit = 0;
    std::uint32_t rowBytes = 2048;
    /** Per-unit cap on affine-stream rows (0 = unrestricted, Fig. 9c). */
    std::uint64_t affineCapBytesPerUnit = 0;
    /** Local DRAM hit latency used in the attenuation factor. */
    Cycles dramLatency = 40;
    /** Extend candidates examined per allocation failure. */
    std::uint32_t extendCandidates = 4;
    std::uint64_t maxIterations = 1 << 20;
    /**
     * Ablation switch: false forces every stream into a single global
     * replication group (placement/sizing co-optimization only).
     */
    bool allowReplication = true;
    /**
     * Anytime budget (deterministic): stop the refinement loop after
     * this many iterations and emit the best-so-far valid placement.
     * Every iteration boundary is a valid placement (the floor
     * allocation precedes the loop), so interruption never yields an
     * inconsistent configuration. 0 = unlimited. Counted, not timed,
     * so results are bit-identical across hosts.
     */
    std::uint64_t budgetIterations = 0;
    /**
     * Anytime budget (advisory): wall-clock cap in microseconds,
     * checked every 64 iterations. Host-dependent by nature -- never
     * use it where bit-identical results are required. 0 = unlimited.
     */
    std::uint64_t budgetMicros = 0;
};

class ConfigAlgorithm
{
  public:
    ConfigAlgorithm(const ConfigParams& params, const NocModel& noc);

    /**
     * Run the full optimization.
     * @return per-stream allocations (RShares/RGroups; RRowBase assigned by
     *         a per-unit bump allocator).
     */
    std::vector<std::pair<StreamId, StreamAlloc>>
    run(std::vector<StreamDemand> demands);

    /**
     * Mark units as failed: they are excluded from the capacity pool
     * (freeRows forced to 0) and from every demand's accessor set on
     * subsequent run() calls.
     */
    void setFailedUnits(std::vector<bool> failed)
    {
        failedUnits_ = std::move(failed);
    }

    /** Iterations executed by the last run (for reports/tests). */
    std::uint64_t lastIterations() const { return iterations_; }
    std::uint64_t lastExtends() const { return extends_; }
    std::uint64_t lastMerges() const { return merges_; }
    /** Runs cut short by either budget (cumulative across runs). */
    std::uint64_t budgetHits() const { return budgetHits_; }
    /** True if the last run() stopped on a budget rather than converging. */
    bool lastBudgetHit() const { return lastBudgetHit_; }
    /**
     * Placement quality of the last run(): total cache bytes placed,
     * summed over every emitted share. Deterministic, monotone in the
     * refinement loop, and directly comparable between a full solve and
     * a budget-capped one (bounded-regret checks).
     */
    std::uint64_t lastObjectiveBytes() const { return lastObjective_; }

    /**
     * Checkpoint hooks: run() rebuilds all working state from its
     * demands, so only the unit-health mask and last-run work counters
     * persist across calls.
     */
    void
    serialize(ckpt::Writer& w) const
    {
        w.vecB(failedUnits_);
        w.u64(iterations_);
        w.u64(extends_);
        w.u64(merges_);
        w.u64(budgetHits_);
        w.b(lastBudgetHit_);
        w.u64(lastObjective_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        failedUnits_ = r.vecB();
        iterations_ = r.u64();
        extends_ = r.u64();
        merges_ = r.u64();
        budgetHits_ = r.u64();
        lastBudgetHit_ = r.b();
        lastObjective_ = r.u64();
    }

  private:
    struct Group
    {
        /** Rows held per member unit. */
        std::map<UnitId, std::uint32_t> rows;
        bool dead = false;

        std::uint64_t totalRows() const;
    };

    struct SState
    {
        StreamDemand d;
        std::vector<Group> groups;
        /** Group index holding this stream's rows on a unit (-1: none). */
        std::vector<std::int32_t> groupOfUnit;
        /**
         * Initial replica group of each accessor index. Capacity headroom
         * bounds the starting degree: a stream may begin with at most as
         * many copies as half the machine could hold of its footprint, so
         * scarce capacity starts consolidated and hot small streams still
         * replicate everywhere.
         */
        std::vector<std::int32_t> initGroupOf;
        /** Current per-copy curve position in bytes. */
        std::uint64_t posBytes = 0;
        bool exhausted = false;
        std::uint64_t totalAccesses = 0;
        /** Round-robin cursor for read-write target selection. */
        std::size_t rwCursor = 0;
    };

    bool canAlloc(const StreamDemand& d, UnitId unit,
                  std::uint32_t rows) const;
    void doAlloc(SState& s, std::int32_t group, UnitId unit,
                 std::uint32_t rows);

    /**
     * QoS class accounting. Each reserved tenant owns a per-unit row
     * carve-out; everything else (best-effort tenants and non-serving
     * streams) shares `rowsPerUnit - totalReservedRows_`. A reserved
     * tenant draws from its own carve-out first and only its overflow
     * counts against the shared pool. All-zero when no demand carries
     * a reservation, making the checks no-ops.
     */
    struct TenantCap
    {
        std::uint32_t reservedRows = 0;
        /** Rows this tenant currently holds per unit. */
        std::vector<std::uint32_t> used;
    };
    /** Rows the demand would take from the shared pool on `unit`. */
    std::uint32_t sharedNeed(const StreamDemand& d, UnitId unit,
                             std::uint32_t rows) const;
    void classAlloc(const StreamDemand& d, UnitId unit,
                    std::uint32_t rows);
    void classFree(const StreamDemand& d, UnitId unit,
                   std::uint32_t rows);
    std::uint32_t sharedCapacity() const
    {
        return params_.rowsPerUnit - totalReservedRows_;
    }

    /** Weighted utility of a group for its assigned accessors. */
    double groupUtility(const SState& s, std::int32_t g) const;
    /** Accessor units currently served by group g. */
    std::vector<std::size_t> accessorsOf(const SState& s,
                                         std::int32_t g) const;
    /** Group index serving accesses from accUnits[idx]. */
    std::int32_t servingGroup(const SState& s, std::size_t acc_idx) const;

    /** Live group that new allocation for accUnits[idx] should join. */
    std::int32_t groupForUnit(SState& s, std::size_t acc_idx);

    /** Attenuation factor between two units. */
    double atten(UnitId from, UnitId to) const;

    struct ExtendPlan
    {
        UnitId unit = kNoUnit;
        double gain = -1.0;
    };
    ExtendPlan bestExtend(const SState& s, std::int32_t g, UnitId near,
                          std::uint32_t rows) const;

    struct MergePlan
    {
        std::size_t stream = 0; ///< index into states_
        std::int32_t groupA = -1;
        std::int32_t groupB = -1;
        double gain = -1.0;
        bool valid = false;
    };
    MergePlan bestMerge(UnitId uid, const SState& current,
                        std::int32_t cur_group, std::uint32_t rows_needed,
                        double place_gain);
    /** Execute the merge; returns rows freed on `uid`. */
    std::uint32_t applyMerge(const MergePlan& plan, UnitId uid);

    std::vector<std::pair<StreamId, StreamAlloc>> emit();

    ConfigParams params_;
    const NocModel& noc_;

    std::vector<SState> states_;
    std::vector<std::uint32_t> freeRows_;
    /** QoS working state, rebuilt from demands on every run(). */
    std::map<std::uint32_t, TenantCap> tenantCaps_;
    std::uint32_t totalReservedRows_ = 0;
    std::vector<std::uint32_t> sharedUsed_;
    /** Per-unit failed flag (empty = all healthy). */
    std::vector<bool> failedUnits_;
    std::vector<std::uint64_t> affineBytesUsed_;
    std::uint64_t iterations_ = 0;
    std::uint64_t extends_ = 0;
    std::uint64_t merges_ = 0;
    std::uint64_t budgetHits_ = 0;
    bool lastBudgetHit_ = false;
    std::uint64_t lastObjective_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_RUNTIME_CONFIG_ALGORITHM_H
