#include "runtime/static_config.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

std::vector<std::pair<StreamId, StreamAlloc>>
makeStaticEqualConfig(const StreamTable& streams, std::uint32_t num_units,
                      std::uint32_t rows_per_unit, std::uint32_t row_bytes,
                      std::uint64_t affine_cap_bytes_per_unit)
{
    std::vector<std::pair<StreamId, StreamAlloc>> out;
    const std::size_t n = streams.numStreams();
    if (n == 0) {
        return out;
    }

    const std::uint32_t affine_cap_rows = affine_cap_bytes_per_unit == 0
        ? rows_per_unit
        : static_cast<std::uint32_t>(
              std::min<std::uint64_t>(rows_per_unit,
                                      affine_cap_bytes_per_unit / row_bytes));

    // Equal split, but never allocate beyond a stream's footprint; the
    // remainder is redistributed by a second pass over the others.
    const std::uint32_t base_share = std::max<std::uint32_t>(
        1, rows_per_unit / static_cast<std::uint32_t>(n));

    std::vector<std::uint32_t> used(num_units, 0);
    std::vector<std::uint32_t> affine_used(num_units, 0);
    for (const StreamConfig& cfg : streams.all()) {
        StreamAlloc alloc(num_units);
        alloc.numGroups = 1;
        // Rows the stream can use per unit: equal share, clamped to the
        // footprint spread over all units.
        const std::uint64_t fp_rows =
            std::max<std::uint64_t>(1, ceilDiv(cfg.size, row_bytes));
        const std::uint32_t want = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(base_share,
                                    ceilDiv(fp_rows, num_units)));
        for (UnitId u = 0; u < num_units; ++u) {
            std::uint32_t give = std::min(want, rows_per_unit - used[u]);
            if (cfg.type == StreamType::Affine) {
                const std::uint32_t affine_left =
                    affine_cap_rows - std::min(affine_cap_rows,
                                               affine_used[u]);
                give = std::min(give, affine_left);
            }
            if (give == 0) {
                continue;
            }
            alloc.shareRows[u] = give;
            alloc.rowBase[u] = used[u];
            used[u] += give;
            if (cfg.type == StreamType::Affine) {
                affine_used[u] += give;
            }
        }
        out.emplace_back(cfg.sid, std::move(alloc));
    }
    return out;
}

} // namespace ndpext
