#include "runtime/sampler_assign.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "runtime/max_flow.h"

namespace ndpext {

namespace {

/** (edge index, unit, stream) records kept for flow extraction. */
struct Candidate
{
    std::size_t edge;
    std::uint32_t unit;
    std::uint32_t streamIdx;
};

/**
 * The bipartite graph shared by the cold and warm paths. Both build it
 * with identical edge-insertion order, so a warm solve that ends up
 * doing the full work is still bit-identical to a cold one.
 */
struct AssignGraph
{
    MaxFlow flow;
    std::uint32_t source;
    std::uint32_t sink;
    std::vector<std::size_t> sourceEdge;  ///< per unit
    std::vector<std::size_t> sinkEdge;    ///< per stream index
    std::vector<Candidate> candidates;
    /** unit * numStreams + streamIdx -> candidate edge index. */
    std::unordered_map<std::uint64_t, std::size_t> pairEdge;

    AssignGraph(const std::vector<std::vector<bool>>& accessed,
                const std::vector<StreamId>& streams,
                std::uint32_t samplers_per_unit, bool index_pairs)
        : flow(static_cast<std::uint32_t>(accessed.size())
               + static_cast<std::uint32_t>(streams.size()) + 2)
    {
        const auto num_units =
            static_cast<std::uint32_t>(accessed.size());
        const auto num_streams =
            static_cast<std::uint32_t>(streams.size());
        // Node layout: 0=source, 1..U=units, U+1..U+S=streams, last=sink.
        source = 0;
        const std::uint32_t unit0 = 1;
        const std::uint32_t stream0 = unit0 + num_units;
        sink = stream0 + num_streams;

        sourceEdge.reserve(num_units);
        for (std::uint32_t u = 0; u < num_units; ++u) {
            sourceEdge.push_back(
                flow.addEdge(source, unit0 + u, samplers_per_unit));
        }
        sinkEdge.reserve(num_streams);
        for (std::uint32_t s = 0; s < num_streams; ++s) {
            const StreamId sid = streams[s];
            for (std::uint32_t u = 0; u < num_units; ++u) {
                if (sid < accessed[u].size() && accessed[u][sid]) {
                    const std::size_t e =
                        flow.addEdge(unit0 + u, stream0 + s, 1);
                    candidates.push_back(Candidate{e, u, s});
                    if (index_pairs) {
                        pairEdge.emplace(
                            static_cast<std::uint64_t>(u) * num_streams
                                + s,
                            e);
                    }
                }
            }
            sinkEdge.push_back(flow.addEdge(stream0 + s, sink, 1));
        }
    }

    SamplerAssignment extract(const std::vector<StreamId>& streams,
                              std::uint32_t num_units) const
    {
        SamplerAssignment out;
        out.perUnit.assign(num_units, {});
        const auto num_streams =
            static_cast<std::uint32_t>(streams.size());
        std::vector<bool> stream_covered(num_streams, false);
        for (const auto& c : candidates) {
            if (flow.flowOn(c.edge) > 0) {
                out.perUnit[c.unit].push_back(streams[c.streamIdx]);
                stream_covered[c.streamIdx] = true;
                ++out.covered;
            }
        }
        for (std::uint32_t s = 0; s < num_streams; ++s) {
            if (!stream_covered[s]) {
                out.uncovered.push_back(streams[s]);
            }
        }
        return out;
    }
};

} // namespace

SamplerAssignment
SamplerAssigner::assign(const std::vector<std::vector<bool>>& accessed,
                        const std::vector<StreamId>& streams,
                        SamplerAssignStats* stats) const
{
    const auto num_units = static_cast<std::uint32_t>(accessed.size());
    if (num_units == 0 || streams.empty()) {
        SamplerAssignment out;
        out.perUnit.assign(num_units, {});
        return out;
    }
    AssignGraph g(accessed, streams, samplersPerUnit_,
                  /*index_pairs=*/false);
    g.flow.solve(g.source, g.sink);
    if (stats != nullptr) {
        stats->augmentingPaths = g.flow.augmentingPaths();
    }
    return g.extract(streams, num_units);
}

SamplerAssignment
SamplerAssigner::assignWarm(
    const std::vector<std::vector<bool>>& accessed,
    const std::vector<StreamId>& streams,
    const SamplerAssignment& previous,
    const std::vector<StreamId>& delta,
    SamplerAssignStats* stats) const
{
    const auto num_units = static_cast<std::uint32_t>(accessed.size());
    if (num_units == 0 || streams.empty()) {
        SamplerAssignment out;
        out.perUnit.assign(num_units, {});
        return out;
    }
    AssignGraph g(accessed, streams, samplersPerUnit_,
                  /*index_pairs=*/true);

    const auto num_streams = static_cast<std::uint32_t>(streams.size());
    std::unordered_map<StreamId, std::uint32_t> stream_idx;
    stream_idx.reserve(num_streams);
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        stream_idx.emplace(streams[s], s);
    }
    const std::unordered_set<StreamId> dirty(delta.begin(), delta.end());

    // Seed still-valid pairs from the previous epoch. A pair survives
    // only if the stream is still requested, outside the delta set, and
    // the unit's current bitvector still permits it (the candidate edge
    // exists); seedPath() additionally enforces the per-unit sampler
    // capacity and the one-sampler-per-stream sink edge, so a stale
    // previous assignment can never over-commit the new graph.
    std::uint64_t seeded = 0;
    for (std::uint32_t u = 0;
         u < num_units && u < previous.perUnit.size(); ++u) {
        for (const StreamId sid : previous.perUnit[u]) {
            if (dirty.count(sid) != 0) {
                continue;
            }
            const auto sit = stream_idx.find(sid);
            if (sit == stream_idx.end()) {
                continue; // stream departed
            }
            const auto eit = g.pairEdge.find(
                static_cast<std::uint64_t>(u) * num_streams
                + sit->second);
            if (eit == g.pairEdge.end()) {
                continue; // unit no longer accesses the stream
            }
            if (g.flow.seedPath({g.sourceEdge[u], eit->second,
                                 g.sinkEdge[sit->second]})) {
                ++seeded;
            }
        }
    }

    // Augment only what the seed left uncovered (arrivals, delta
    // streams, pairs invalidated by bitvector changes).
    g.flow.solve(g.source, g.sink);
    if (stats != nullptr) {
        stats->seededPairs = seeded;
        stats->augmentingPaths = g.flow.augmentingPaths();
    }
    return g.extract(streams, num_units);
}

} // namespace ndpext
