#include "runtime/sampler_assign.h"

#include <utility>

#include "common/logging.h"
#include "runtime/max_flow.h"

namespace ndpext {

SamplerAssignment
SamplerAssigner::assign(const std::vector<std::vector<bool>>& accessed,
                        const std::vector<StreamId>& streams) const
{
    const std::uint32_t num_units =
        static_cast<std::uint32_t>(accessed.size());
    const std::uint32_t num_streams =
        static_cast<std::uint32_t>(streams.size());

    SamplerAssignment out;
    out.perUnit.assign(num_units, {});
    if (num_units == 0 || num_streams == 0) {
        return out;
    }

    // Node layout: 0 = source, 1..U = units, U+1..U+S = streams, last=sink.
    const std::uint32_t source = 0;
    const std::uint32_t unit0 = 1;
    const std::uint32_t stream0 = unit0 + num_units;
    const std::uint32_t sink = stream0 + num_streams;
    MaxFlow flow(sink + 1);

    for (std::uint32_t u = 0; u < num_units; ++u) {
        flow.addEdge(source, unit0 + u, samplersPerUnit_);
    }
    // Remember (edge index, unit, stream) for extraction.
    struct Candidate
    {
        std::size_t edge;
        std::uint32_t unit;
        std::uint32_t streamIdx;
    };
    std::vector<Candidate> candidates;
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        const StreamId sid = streams[s];
        for (std::uint32_t u = 0; u < num_units; ++u) {
            if (sid < accessed[u].size() && accessed[u][sid]) {
                const std::size_t e =
                    flow.addEdge(unit0 + u, stream0 + s, 1);
                candidates.push_back(Candidate{e, u, s});
            }
        }
        flow.addEdge(stream0 + s, sink, 1);
    }

    out.covered = static_cast<std::uint64_t>(flow.solve(source, sink));

    std::vector<bool> stream_covered(num_streams, false);
    for (const auto& c : candidates) {
        if (flow.flowOn(c.edge) > 0) {
            out.perUnit[c.unit].push_back(streams[c.streamIdx]);
            stream_covered[c.streamIdx] = true;
        }
    }
    for (std::uint32_t s = 0; s < num_streams; ++s) {
        if (!stream_covered[s]) {
            out.uncovered.push_back(streams[s]);
        }
    }
    return out;
}

} // namespace ndpext
