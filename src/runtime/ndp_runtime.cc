#include "runtime/ndp_runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "runtime/static_config.h"
#include "telemetry/telemetry.h"

namespace ndpext {

namespace {

double
microsSince(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::micro>(dt).count();
}

/**
 * Default miss-rate curve for never-sampled streams. With no cache at all
 * every access misses; with any space, coarse-granule streams (affine
 * blocks) immediately capture their spatial locality, so the per-access
 * rate drops to ~1/elemsPerGranule and then declines linearly with the
 * captured fraction of the footprint.
 */
MissCurve
defaultRateCurve(const std::vector<std::uint64_t>& capacities,
                 std::uint64_t footprint, std::uint64_t elems_per_granule)
{
    const double epg =
        static_cast<double>(std::max<std::uint64_t>(1, elems_per_granule));
    std::vector<double> misses(capacities.size());
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        const double frac = footprint == 0
            ? 0.0
            : std::min(1.0,
                       static_cast<double>(capacities[i])
                           / static_cast<double>(footprint));
        misses[i] = (1.0 - frac) / epg;
    }
    MissCurve curve(capacities, std::move(misses));
    curve.setZeroMisses(1.0);
    return curve;
}

/** Divide a curve's misses by `total` to get a per-access rate curve. */
MissCurve
toRateCurve(const MissCurve& curve, std::uint64_t total)
{
    std::vector<double> rates(curve.misses().size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        rates[i] = total == 0
            ? 0.0
            : curve.misses()[i] / static_cast<double>(total);
    }
    MissCurve rate(curve.capacities(), std::move(rates));
    rate.setZeroMisses(total == 0
                           ? 1.0
                           : curve.zeroMisses()
                               / static_cast<double>(total));
    return rate;
}

/** Multiply a rate curve back to absolute misses for `total` accesses. */
MissCurve
scaleRateCurve(const MissCurve& rate, std::uint64_t total)
{
    std::vector<double> misses(rate.misses().size());
    for (std::size_t i = 0; i < misses.size(); ++i) {
        misses[i] = rate.misses()[i] * static_cast<double>(total);
    }
    MissCurve scaled(rate.capacities(), std::move(misses));
    scaled.setZeroMisses(rate.zeroMisses() * static_cast<double>(total));
    return scaled;
}

void
fnv1a(std::uint64_t& h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

} // namespace

std::uint64_t
demandFingerprint(const StreamDemand& d)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    fnv1a(h, d.sid);
    fnv1a(h, d.footprintBytes);
    fnv1a(h, d.readOnly ? 1 : 0);
    fnv1a(h, d.affine ? 1 : 0);
    for (const UnitId u : d.accUnits) {
        fnv1a(h, u);
    }
    for (const double m : d.curve.misses()) {
        fnv1a(h,
              static_cast<std::uint64_t>(
                  std::llround(std::log2(1.0 + std::max(0.0, m)) * 4.0)));
    }
    return h;
}

std::vector<std::pair<StreamId, StreamAlloc>>
StaticEqualConfigurator::configure(const std::vector<StreamDemand>& demands)
{
    (void)demands;
    return makeStaticEqualConfig(
        cache_.streams(), cache_.numUnits(), cache_.rowsPerUnit(),
        cache_.rowBytes(), cache_.params().affineCapBytesPerUnit);
}

NdpRuntime::NdpRuntime(const RuntimeParams& params,
                       StreamCacheController& cache,
                       std::unique_ptr<Configurator> configurator)
    : params_(params), cache_(cache),
      configurator_(std::move(configurator)),
      assigner_(params.samplersPerUnit)
{
    NDP_ASSERT(configurator_ != nullptr);
}

void
NdpRuntime::assignSamplers(bool first_epoch,
                           const std::vector<StreamId>* delta)
{
    const std::uint32_t num_units = cache_.numUnits();
    const StreamTable& table = cache_.streams();
    const std::size_t num_streams = table.numStreams();

    std::vector<std::vector<bool>> accessed(num_units);
    for (UnitId u = 0; u < num_units; ++u) {
        accessed[u] = cache_.samplerBank(u).accessedBitvector();
    }
    if (first_epoch) {
        // No profile yet: optimistically assume every unit may touch
        // every stream so the max-flow spreads coverage.
        for (UnitId u = 0; u < num_units; ++u) {
            for (std::size_t s = 0; s < num_streams; ++s) {
                accessed[u][s] = true;
            }
        }
    }
    // Failed units have no working samplers: give them nothing to cover.
    for (UnitId u = 0; u < num_units; ++u) {
        if (unitFailed(u)) {
            accessed[u].assign(num_streams, false);
        }
    }

    // Reserved-QoS streams claim sampler coverage first (their miss
    // curves feed carve-out sizing), then pending (previously
    // uncovered) streams, then the rest.
    std::vector<StreamId> order;
    std::set<StreamId> seen;
    for (const auto& [sid, q] : streamQos_) {
        if (q.reserved && sid < num_streams
            && seen.insert(sid).second) {
            order.push_back(sid);
        }
    }
    for (const StreamId sid : pendingUncovered_) {
        if (seen.insert(sid).second) {
            order.push_back(sid);
        }
    }
    for (std::size_t s = 0; s < num_streams; ++s) {
        const StreamId sid = static_cast<StreamId>(s);
        if (seen.insert(sid).second) {
            order.push_back(sid);
        }
    }

    // Warm-start only when enabled, past the first epoch, and with a
    // structurally compatible previous assignment to seed from.
    const bool warm = params_.solverWarmStart && !first_epoch
        && delta != nullptr
        && lastAssignment_.perUnit.size() == num_units;

    const auto t0 = std::chrono::steady_clock::now();
    SamplerAssignStats assign_stats;
    const SamplerAssignment assignment = warm
        ? assigner_.assignWarm(accessed, order, lastAssignment_, *delta,
                               &assign_stats)
        : assigner_.assign(accessed, order, &assign_stats);
    lastAssignMicros_ = microsSince(t0);
    solverWallMicros_ += lastAssignMicros_;
    if (warm) {
        solverWarmReused_ += assign_stats.seededPairs;
        solverDeltaStreams_ += delta->size();
    }
    covered_ += assignment.covered;
    pendingUncovered_ = assignment.uncovered;
    lastAssignment_ = assignment;

    for (UnitId u = 0; u < num_units; ++u) {
        std::vector<std::pair<StreamId, std::uint32_t>> slots;
        for (const StreamId sid : assignment.perUnit[u]) {
            slots.emplace_back(sid,
                               cache_.granuleOf(table.stream(sid)));
        }
        cache_.samplerBank(u).assign(slots);
    }
}

void
NdpRuntime::noteStreamChurn(const std::vector<StreamId>& sids)
{
    churnStreams_.insert(churnStreams_.end(), sids.begin(), sids.end());
}

std::vector<StreamId>
NdpRuntime::computeDelta(const std::vector<StreamDemand>& demands)
{
    std::map<StreamId, std::uint64_t> fresh;
    for (const StreamDemand& d : demands) {
        fresh[d.sid] = demandFingerprint(d);
    }

    std::set<StreamId> delta;
    for (const auto& [sid, fp] : fresh) {
        const auto it = lastFingerprints_.find(sid);
        if (it == lastFingerprints_.end() || it->second != fp) {
            delta.insert(sid); // arrived or changed beyond threshold
        }
    }
    for (const auto& [sid, fp] : lastFingerprints_) {
        (void)fp;
        if (fresh.count(sid) == 0) {
            delta.insert(sid); // departed
        }
    }
    for (const StreamId sid : churnStreams_) {
        delta.insert(sid);
    }
    churnStreams_.clear();
    lastFingerprints_ = std::move(fresh);
    return {delta.begin(), delta.end()};
}

void
NdpRuntime::noteDecision()
{
    ++solverDecisions_;
    solverIterations_ += configurator_->lastIterations();
    if (configurator_->lastBudgetHit()) {
        ++solverBudgetHits_;
    }
    solverWallMicros_ += lastConfigMicros_;
}

void
NdpRuntime::applyQos(StreamDemand& d) const
{
    const auto it = streamQos_.find(d.sid);
    if (it == streamQos_.end()) {
        return;
    }
    d.tenant = it->second.tenant;
    d.reserved = it->second.reserved;
    d.reservedRowsPerUnit = it->second.reservedRowsPerUnit;
}

std::vector<StreamDemand>
NdpRuntime::gatherDemands()
{
    const std::uint32_t num_units = cache_.numUnits();
    const StreamTable& table = cache_.streams();
    std::vector<StreamDemand> demands;

    for (const StreamConfig& cfg : table.all()) {
        StreamDemand d;
        d.sid = cfg.sid;
        d.granuleBytes = cache_.granuleOf(cfg);
        d.readOnly = cfg.readOnly;
        d.affine = cfg.type == StreamType::Affine;
        d.footprintBytes = cfg.size;
        applyQos(d);

        std::uint64_t total = 0;
        const MissCurveSampler* sampler = nullptr;
        for (UnitId u = 0; u < num_units; ++u) {
            if (unitFailed(u)) {
                continue; // sampler state died with the unit
            }
            const SamplerBank& bank = cache_.samplerBank(u);
            const std::uint64_t count = bank.accessCount(cfg.sid);
            if (count > 0) {
                d.accUnits.push_back(u);
                d.accCounts.push_back(count);
                total += count;
            }
            if (sampler == nullptr) {
                const MissCurveSampler* s = bank.samplerFor(cfg.sid);
                if (s != nullptr
                    && s->accesses() >= params_.minSamplerAccesses) {
                    sampler = s;
                }
            }
        }
        if (total == 0) {
            continue; // not accessed this epoch
        }

        // Footprint-proportional prior; blended with measurements below.
        // Sampling windows at simulation scale are orders of magnitude
        // shorter than the paper's 50M-cycle epochs, so sparse random
        // streams look reuse-free within one window. The optimistic
        // pointwise-min blend keeps sizing sane while letting confident
        // measurements (scans, hot sets) sharpen the curve.
        const MissCurve prior = scaleRateCurve(
            defaultRateCurve(
                MissCurveSampler(cache_.params().sampler).capacities(),
                d.footprintBytes, d.granuleBytes / cfg.elemSize),
            total);

        if (sampler != nullptr) {
            d.curve = MissCurve::pointwiseMin(sampler->curve(total), prior);
            // EWMA-smooth the per-access rate curve across epochs so one
            // noisy window cannot swing the whole allocation (and thrash
            // cached data through reconfigurations).
            MissCurve fresh = toRateCurve(d.curve, total);
            const auto prev = lastRateCurves_.find(cfg.sid);
            if (prev != lastRateCurves_.end()) {
                std::vector<double> mixed(fresh.misses().size());
                for (std::size_t i = 0; i < mixed.size(); ++i) {
                    mixed[i] = 0.5 * fresh.misses()[i]
                        + 0.5 * prev->second.misses()[i];
                }
                MissCurve smooth(fresh.capacities(), std::move(mixed));
                smooth.setZeroMisses(fresh.zeroMisses());
                fresh = std::move(smooth);
                d.curve = scaleRateCurve(fresh, total);
            }
            lastRateCurves_[cfg.sid] = std::move(fresh);
        } else {
            const auto it = lastRateCurves_.find(cfg.sid);
            if (it != lastRateCurves_.end()) {
                d.curve = scaleRateCurve(it->second, total);
            } else {
                d.curve = prior;
            }
        }
        demands.push_back(std::move(d));
    }
    return demands;
}

void
NdpRuntime::start()
{
    assignSamplers(/*first_epoch=*/true);

    // Initial configuration for every policy, from footprint-default
    // demands (every stream assumed accessed by every unit equally).
    // Adaptive policies refine it at each epoch end; without it the
    // entire first epoch would run uncached, which is negligible over
    // the paper's multi-billion-cycle runs but not at simulation scale.
    std::vector<StreamDemand> demands;
    const StreamTable& table = cache_.streams();
    for (const StreamConfig& cfg : table.all()) {
        StreamDemand d;
        d.sid = cfg.sid;
        d.granuleBytes = cache_.granuleOf(cfg);
        d.readOnly = cfg.readOnly;
        d.affine = cfg.type == StreamType::Affine;
        d.footprintBytes = cfg.size;
        applyQos(d);
        for (UnitId u = 0; u < cache_.numUnits(); ++u) {
            d.accUnits.push_back(u);
            d.accCounts.push_back(1);
        }
        const MissCurve rate = defaultRateCurve(
            MissCurveSampler(cache_.params().sampler).capacities(),
            d.footprintBytes, d.granuleBytes / cfg.elemSize);
        d.curve = scaleRateCurve(rate, 1000);
        demands.push_back(std::move(d));
    }
    if (!demands.empty()) {
        auto config = configurator_->configure(demands);
        noteDecision();
        cache_.applyConfiguration(config);
        configuredOnce_ = !configurator_->reconfigures();
        ++reconfigs_;
        recordDecision("initial", 0, demands, config, /*applied=*/true);
    }
}

void
NdpRuntime::recordDecision(
    const char* kind, Cycles now,
    const std::vector<StreamDemand>& demands,
    const std::vector<std::pair<StreamId, StreamAlloc>>& config,
    bool applied)
{
    if (telemetry_ == nullptr) {
        return;
    }
    DecisionRecord rec;
    rec.kind = kind;
    rec.epoch = epochIndex_;
    rec.cycles = now;
    rec.demands.reserve(demands.size());
    for (const StreamDemand& d : demands) {
        DecisionRecord::Demand out;
        out.sid = d.sid;
        out.footprintBytes = d.footprintBytes;
        out.granuleBytes = d.granuleBytes;
        out.readOnly = d.readOnly;
        out.affine = d.affine;
        out.accUnits = d.accUnits;
        out.accCounts = d.accCounts;
        out.curveCapacities = d.curve.capacities();
        out.curveMisses = d.curve.misses();
        rec.demands.push_back(std::move(out));
    }
    rec.samplerAssignment = lastAssignment_.perUnit;
    rec.uncoveredStreams = lastAssignment_.uncovered;
    rec.iterations = configurator_->lastIterations();
    rec.extends = configurator_->lastExtends();
    rec.merges = configurator_->lastMerges();
    rec.allocs.reserve(config.size());
    for (const auto& [sid, alloc] : config) {
        DecisionRecord::Alloc out;
        out.sid = sid;
        out.shareRows = alloc.shareRows;
        out.numGroups = alloc.numGroups;
        rec.allocs.push_back(std::move(out));
    }
    rec.applied = applied;
    telemetry_->decisions().add(std::move(rec));
}

void
NdpRuntime::stripFailedUnits(
    std::vector<std::pair<StreamId, StreamAlloc>>& config) const
{
    if (failedUnitCount_ == 0) {
        return;
    }
    for (auto& [sid, alloc] : config) {
        (void)sid;
        for (UnitId u = 0;
             u < alloc.shareRows.size() && u < unitFailed_.size(); ++u) {
            if (unitFailed_[u]) {
                alloc.shareRows[u] = 0;
            }
        }
    }
    // Streams whose every share sat on failed units lose their space
    // entirely; applyConfiguration treats absent streams as deallocated.
    config.erase(std::remove_if(config.begin(), config.end(),
                                [](const auto& e) {
                                    return e.second.empty();
                                }),
                 config.end());
}

void
NdpRuntime::emergencyReconfigure()
{
    const auto demands = gatherDemands();
    if (demands.empty()) {
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto config = configurator_->configure(demands);
    lastConfigMicros_ = microsSince(t0);
    noteDecision();
    stripFailedUnits(config);
    // No stability guard here: running degraded costs more than any row
    // invalidation this reconfiguration can cause.
    cache_.applyConfiguration(config);
    ++reconfigs_;
    ++emergencyReconfigs_;
    recordDecision("emergency", lastNow_, demands, config,
                   /*applied=*/true);
    if (telemetry_ != nullptr) {
        std::string args = "{\"streams\":";
        args += std::to_string(config.size());
        args += '}';
        telemetry_->trace().instant("runtime", "emergencyReconfig",
                                    TraceWriter::kPidRuntime, 0, lastNow_,
                                    args);
    }
}

void
NdpRuntime::onUnitFailure(UnitId unit, Cycles now)
{
    onUnitFailures({unit}, now);
}

void
NdpRuntime::onUnitFailures(const std::vector<UnitId>& units, Cycles now)
{
    lastNow_ = std::max(lastNow_, now);
    if (unitFailed_.size() < cache_.numUnits()) {
        unitFailed_.resize(cache_.numUnits(), false);
    }
    bool any_new = false;
    for (const UnitId unit : units) {
        NDP_ASSERT(unit < unitFailed_.size(), "unit=", unit);
        if (unitFailed_[unit]) {
            continue;
        }
        unitFailed_[unit] = true;
        ++failedUnitCount_;
        any_new = true;
        // Degrade the hardware first so redirects are live immediately.
        cache_.onUnitFailed(unit);
        if (telemetry_ != nullptr) {
            std::string args = "{\"unit\":";
            args += std::to_string(unit);
            args += '}';
            telemetry_->trace().instant("fault", "unitFailure",
                                        TraceWriter::kPidRuntime, 0,
                                        lastNow_, args);
        }
    }
    if (!any_new) {
        return;
    }
    configurator_->setUnitHealth(unitFailed_);

    // Simultaneous failures (e.g., a whole stack dying at once) are
    // re-placed with a single reconfiguration, not one per unit.
    if (configurator_->reconfigures()) {
        emergencyReconfigure();
    }
    // One-shot (static) policies cannot re-place: they stay degraded,
    // redirecting every access that hashes to the dead unit.
}

void
NdpRuntime::onEpochEnd(Cycles now)
{
    ++epochIndex_;
    lastNow_ = now;
    const bool adapt = configurator_->reconfigures()
        && (params_.method == RuntimeParams::Method::Full
            || (params_.method == RuntimeParams::Method::Partial
                && now <= params_.partialUntilCycles)
            || (params_.method == RuntimeParams::Method::Static
                && !configuredOnce_));

    std::vector<StreamDemand> demands;
    std::vector<std::pair<StreamId, StreamAlloc>> config;
    std::vector<StreamId> delta;
    bool have_delta = false;
    bool decided = false;
    bool applied = false;
    if (adapt) {
        demands = gatherDemands();
        if (!demands.empty()) {
            if (params_.solverWarmStart) {
                delta = computeDelta(demands);
                have_delta = true;
            }
            const auto t0 = std::chrono::steady_clock::now();
            config = configurator_->configure(demands);
            lastConfigMicros_ = microsSince(t0);
            noteDecision();
            stripFailedUnits(config);
            decided = true;
            // Skip reconfigurations that barely move the allocation:
            // applying them would invalidate cached rows for no benefit
            // (stability guard; DESIGN.md 4.1).
            std::uint64_t changed_rows = 0;
            std::uint64_t total_rows = 0;
            for (const auto& [sid, alloc] : config) {
                const StreamAlloc* cur = cache_.remap().alloc(sid);
                for (UnitId u = 0; u < cache_.numUnits(); ++u) {
                    const std::uint32_t now_rows = alloc.shareRows[u];
                    const std::uint32_t old_rows =
                        cur == nullptr ? 0 : cur->shareRows[u];
                    changed_rows += now_rows > old_rows
                        ? now_rows - old_rows
                        : old_rows - now_rows;
                    total_rows += now_rows;
                }
            }
            if (total_rows == 0
                || changed_rows * 10 >= total_rows) {
                cache_.applyConfiguration(config);
                ++reconfigs_;
                applied = true;
            } else {
                ++skippedReconfigs_;
            }
            configuredOnce_ = true;
        }
    }

    // Rotate sampler coverage for the next epoch, then clear counters.
    // Warm-start only with a fresh delta set (fingerprints need this
    // epoch's demands); epochs that skipped demand gathering fall back
    // to a cold solve.
    assignSamplers(/*first_epoch=*/false,
                   have_delta ? &delta : nullptr);
    for (UnitId u = 0; u < cache_.numUnits(); ++u) {
        cache_.samplerBank(u).newEpoch();
    }

    // Record after assignSamplers so the decision carries the *next*
    // epoch's sampler coverage alongside this epoch's configuration.
    if (decided) {
        recordDecision("epoch", now, demands, config, applied);
        if (telemetry_ != nullptr) {
            std::string args = "{\"streams\":";
            args += std::to_string(config.size());
            args += '}';
            telemetry_->trace().instant(
                "runtime", applied ? "reconfig" : "reconfigSkipped",
                TraceWriter::kPidRuntime, 0, now, args);
        }
    }
}

void
NdpRuntime::registerMetrics(MetricRegistry& registry)
{
    registry.registerCounter("runtime.reconfigurations",
                             [this] { return double(reconfigs_); });
    registry.registerCounter("runtime.skippedReconfigurations", [this] {
        return double(skippedReconfigs_);
    });
    registry.registerCounter("runtime.streamsCovered",
                             [this] { return double(covered_); });
    registry.registerCounter("runtime.degraded.emergencyReconfigs", [this] {
        return double(emergencyReconfigs_);
    });
    registry.registerCounter("runtime.degraded.failedUnits", [this] {
        return double(failedUnitCount_);
    });
    // Incremental-solver series. Deterministic counters only: metric
    // output is byte-compared across runs (crash recovery, serving
    // bit-identity), so wall-clock stays out of the registry and is
    // reported through StatGroup instead.
    registry.registerCounter("solver.decisions",
                             [this] { return double(solverDecisions_); });
    registry.registerCounter("solver.iterations", [this] {
        return double(solverIterations_);
    });
    registry.registerCounter("solver.budgetHits", [this] {
        return double(solverBudgetHits_);
    });
    registry.registerCounter("solver.warmStartReused", [this] {
        return double(solverWarmReused_);
    });
    registry.registerCounter("solver.deltaStreams", [this] {
        return double(solverDeltaStreams_);
    });
}

void
NdpRuntime::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".reconfigurations",
              static_cast<double>(reconfigs_));
    stats.add(prefix + ".degraded.emergencyReconfigs",
              static_cast<double>(emergencyReconfigs_));
    stats.add(prefix + ".degraded.failedUnits",
              static_cast<double>(failedUnitCount_));
    stats.add(prefix + ".streamsCovered", static_cast<double>(covered_));
    stats.add(prefix + ".solver.decisions",
              static_cast<double>(solverDecisions_));
    stats.add(prefix + ".solver.iterations",
              static_cast<double>(solverIterations_));
    stats.add(prefix + ".solver.budgetHits",
              static_cast<double>(solverBudgetHits_));
    stats.add(prefix + ".solver.warmStartReused",
              static_cast<double>(solverWarmReused_));
    stats.add(prefix + ".solver.deltaStreams",
              static_cast<double>(solverDeltaStreams_));
    // Advisory wall-clock: the Micros suffix keeps it outside the
    // determinism contract (DESIGN.md section 5.3).
    stats.set(prefix + ".solver.wallMicros", solverWallMicros_);
    stats.set(prefix + ".lastAssignMicros", lastAssignMicros_);
    stats.set(prefix + ".lastConfigMicros", lastConfigMicros_);
}

namespace {

void
writeCurve(ckpt::Writer& w, const MissCurve& curve)
{
    w.vecU64(curve.capacities());
    w.vecD(curve.misses());
    w.d(curve.zeroMisses());
}

MissCurve
readCurve(ckpt::Reader& r)
{
    std::vector<std::uint64_t> capacities = r.vecU64();
    std::vector<double> misses = r.vecD();
    const double zero = r.d();
    MissCurve curve(std::move(capacities), std::move(misses));
    // setZeroMisses clamps; a stored value (already clamped) passes
    // through unchanged, and the -1 "unset" sentinel must stay unset.
    if (zero >= 0.0) {
        curve.setZeroMisses(zero);
    }
    return curve;
}

void
writeSids(ckpt::Writer& w, const std::vector<StreamId>& sids)
{
    w.u64(sids.size());
    for (const StreamId sid : sids) {
        w.u32(sid);
    }
}

std::vector<StreamId>
readSids(ckpt::Reader& r)
{
    std::vector<StreamId> sids(r.u64(), kNoStream);
    for (StreamId& sid : sids) {
        sid = static_cast<StreamId>(r.u32());
    }
    return sids;
}

} // namespace

void
NdpRuntime::serialize(ckpt::Writer& w) const
{
    w.section(0x0707);
    configurator_->serialize(w);
    w.u64(lastRateCurves_.size());
    for (const auto& [sid, curve] : lastRateCurves_) {
        w.u32(sid);
        writeCurve(w, curve);
    }
    writeSids(w, pendingUncovered_);
    w.u64(epochIndex_);
    w.u64(lastNow_);
    w.u64(lastAssignment_.perUnit.size());
    for (const auto& sids : lastAssignment_.perUnit) {
        writeSids(w, sids);
    }
    writeSids(w, lastAssignment_.uncovered);
    w.u64(lastAssignment_.covered);
    w.vecB(unitFailed_);
    w.u64(reconfigs_);
    w.u64(emergencyReconfigs_);
    w.u64(failedUnitCount_);
    w.u64(skippedReconfigs_);
    w.u64(covered_);
    w.b(configuredOnce_);
    // Incremental-solver state. Wall-clock micros intentionally do not
    // travel (advisory, host-dependent).
    w.u64(lastFingerprints_.size());
    for (const auto& [sid, fp] : lastFingerprints_) {
        w.u32(sid);
        w.u64(fp);
    }
    writeSids(w, churnStreams_);
    w.u64(solverDecisions_);
    w.u64(solverIterations_);
    w.u64(solverBudgetHits_);
    w.u64(solverWarmReused_);
    w.u64(solverDeltaStreams_);
}

void
NdpRuntime::deserialize(ckpt::Reader& r)
{
    r.section(0x0707);
    configurator_->deserialize(r);
    lastRateCurves_.clear();
    const std::uint64_t ncurves = r.u64();
    for (std::uint64_t i = 0; i < ncurves; ++i) {
        const StreamId sid = static_cast<StreamId>(r.u32());
        lastRateCurves_.emplace(sid, readCurve(r));
    }
    pendingUncovered_ = readSids(r);
    epochIndex_ = r.u64();
    lastNow_ = r.u64();
    lastAssignment_.perUnit.assign(r.u64(), {});
    for (auto& sids : lastAssignment_.perUnit) {
        sids = readSids(r);
    }
    lastAssignment_.uncovered = readSids(r);
    lastAssignment_.covered = r.u64();
    unitFailed_ = r.vecB();
    reconfigs_ = r.u64();
    emergencyReconfigs_ = r.u64();
    failedUnitCount_ = r.u64();
    skippedReconfigs_ = r.u64();
    covered_ = r.u64();
    configuredOnce_ = r.b();
    lastFingerprints_.clear();
    const std::uint64_t nfp = r.u64();
    for (std::uint64_t i = 0; i < nfp; ++i) {
        const StreamId sid = static_cast<StreamId>(r.u32());
        lastFingerprints_[sid] = r.u64();
    }
    churnStreams_ = readSids(r);
    solverDecisions_ = r.u64();
    solverIterations_ = r.u64();
    solverBudgetHits_ = r.u64();
    solverWarmReused_ = r.u64();
    solverDeltaStreams_ = r.u64();
}

} // namespace ndpext
