/**
 * @file
 * The host-side software runtime (Section V).
 *
 * Every epoch (50 M cycles at paper scale) the runtime:
 *   1. gathers the per-unit stream-access bitvectors and counters,
 *   2. assigns samplers to streams for the *next* epoch via max-flow
 *      (Section V-B), rotating in any streams left uncovered,
 *   3. reads out the sampled miss curves (falling back to the previous
 *      epoch's curve, or a linear default, for streams without a sampler),
 *   4. invokes the configurator to produce the new stream remap table, and
 *   5. applies it to the hardware (consistent hashing preserves rows).
 *
 * The configurator is pluggable so the same epoch machinery drives NDPExt
 * (Algorithm 1), NDPExt-static, and the adapted NUCA baselines.
 */

#ifndef NDPEXT_RUNTIME_NDP_RUNTIME_H
#define NDPEXT_RUNTIME_NDP_RUNTIME_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ndp/stream_cache.h"
#include "runtime/config_algorithm.h"
#include "runtime/sampler_assign.h"
#include "sim/stats.h"

namespace ndpext {

class Telemetry;

/**
 * Demand fingerprint for delta-set derivation (incremental solver).
 * Quantizes each miss-curve point to log2(1 + misses) quarter-steps --
 * a point must move by roughly 19% before the fingerprint changes, so
 * sub-threshold per-epoch noise does not invalidate warm starts.
 * Purely a function of the gathered demand; replay tools derive
 * identical deltas from recorded DecisionLog inputs.
 */
std::uint64_t demandFingerprint(const StreamDemand& d);

/** Strategy that turns profiled demands into a cache configuration. */
class Configurator
{
  public:
    virtual ~Configurator() = default;

    virtual std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) = 0;

    /** False for one-shot (static) policies. */
    virtual bool reconfigures() const { return true; }

    /** Work counters of the last configure() (0 for non-NDPExt). */
    virtual std::uint64_t lastIterations() const { return 0; }
    virtual std::uint64_t lastExtends() const { return 0; }
    virtual std::uint64_t lastMerges() const { return 0; }
    /** Anytime-budget telemetry (0 for policies without a budget). */
    virtual std::uint64_t budgetHits() const { return 0; }
    virtual bool lastBudgetHit() const { return false; }
    virtual std::uint64_t lastObjectiveBytes() const { return 0; }

    /**
     * Unit-health update (degraded mode): `failed[u]` marks unit u dead.
     * Health-aware configurators exclude those units from capacity and
     * demand; the default ignores it (the runtime strips failed-unit
     * shares from the emitted configuration regardless).
     */
    virtual void setUnitHealth(const std::vector<bool>& failed)
    {
        (void)failed;
    }

    /**
     * Checkpoint hooks. Default: stateless between configure() calls
     * (true for every baseline except Nexus's reporting field).
     */
    virtual void serialize(ckpt::Writer& w) const { (void)w; }
    virtual void deserialize(ckpt::Reader& r) { (void)r; }

    virtual std::string name() const = 0;
};

/** NDPExt's Algorithm 1 wrapped as a Configurator. */
class NdpExtConfigurator : public Configurator
{
  public:
    NdpExtConfigurator(const ConfigParams& params, const NocModel& noc)
        : algo_(params, noc)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override
    {
        return algo_.run(demands);
    }

    void setUnitHealth(const std::vector<bool>& failed) override
    {
        algo_.setFailedUnits(failed);
    }

    std::string name() const override { return "ndpext"; }

    std::uint64_t lastIterations() const override
    {
        return algo_.lastIterations();
    }
    std::uint64_t lastExtends() const override
    {
        return algo_.lastExtends();
    }
    std::uint64_t lastMerges() const override
    {
        return algo_.lastMerges();
    }
    std::uint64_t budgetHits() const override
    {
        return algo_.budgetHits();
    }
    bool lastBudgetHit() const override
    {
        return algo_.lastBudgetHit();
    }
    std::uint64_t lastObjectiveBytes() const override
    {
        return algo_.lastObjectiveBytes();
    }

    void serialize(ckpt::Writer& w) const override { algo_.serialize(w); }
    void deserialize(ckpt::Reader& r) override { algo_.deserialize(r); }

    ConfigAlgorithm& algorithm() { return algo_; }

  private:
    ConfigAlgorithm algo_;
};

/** NDPExt-static: equal allocation, one-shot (see static_config.h). */
class StaticEqualConfigurator : public Configurator
{
  public:
    explicit StaticEqualConfigurator(const StreamCacheController& cache)
        : cache_(cache)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override;

    bool reconfigures() const override { return false; }
    std::string name() const override { return "ndpext-static"; }

  private:
    const StreamCacheController& cache_;
};

struct RuntimeParams
{
    /** Reconfiguration interval in core cycles (paper: 50 M). */
    Cycles epochCycles = 2'000'000;
    /** Reconfiguration method (Fig. 9e). */
    enum class Method
    {
        Static,  ///< configure once at start, never adapt
        Partial, ///< adapt only until partialUntilCycles
        Full,    ///< adapt every epoch
    };
    Method method = Method::Full;
    Cycles partialUntilCycles = 8'000'000;
    /** Samplers per unit (S). */
    std::uint32_t samplersPerUnit = 4;
    /**
     * Minimum accesses a sampler must have observed before its miss curve
     * is trusted; below this the runtime keeps the previous epoch's curve
     * or the footprint-proportional default. Short scaled epochs would
     * otherwise yield cold-miss-only (flat) curves and starve every
     * stream of cache space.
     */
    std::uint64_t minSamplerAccesses = 256;
    /**
     * Incremental placement control plane (all default off, keeping
     * every decision bit-identical to the non-incremental runtime):
     *
     * solverWarmStart seeds each epoch's max-flow sampler assignment
     * with the previous epoch's still-valid (unit, stream) pairs and
     * re-solves only the delta set -- streams whose demand fingerprint
     * changed beyond the quantization threshold, arrived, departed, or
     * were churn-notified by the serving layer.
     */
    bool solverWarmStart = false;
    /**
     * Deterministic per-decision iteration cap for the configuration
     * algorithm (simulated budget; 0 = unlimited). Bit-identical
     * across hosts.
     */
    std::uint64_t solverBudgetIters = 0;
    /**
     * Advisory wall-clock cap per configuration run in microseconds
     * (`--solver-budget-us`; 0 = unlimited). Host-dependent.
     */
    std::uint64_t solverBudgetMicros = 0;
};

class NdpRuntime
{
  public:
    NdpRuntime(const RuntimeParams& params, StreamCacheController& cache,
               std::unique_ptr<Configurator> configurator);

    /**
     * Called once before simulation: installs the initial sampler
     * assignment; one-shot configurators also allocate now (using
     * footprint-proportional default demands).
     */
    void start();

    /** Called at each epoch boundary. */
    void onEpochEnd(Cycles now);

    /**
     * A whole NDP unit (memory side) failed. Updates the health bitmap,
     * degrades the cache (redirects, replica collapse), informs the
     * configurator, and -- for reconfiguring policies -- immediately
     * runs an *out-of-epoch* emergency reconfiguration that re-places
     * every stream around the dead unit. Static policies stay degraded
     * (their accesses to the dead slice redirect to extended memory
     * forever -- the headline gap in bench_fault_degradation).
     * `now` (when known) timestamps the telemetry decision record.
     */
    void onUnitFailure(UnitId unit, Cycles now = 0);

    /**
     * Batch variant: units that fail at the same cycle (e.g., a whole
     * stack dying) degrade together and trigger a *single* emergency
     * reconfiguration instead of one per unit.
     */
    void onUnitFailures(const std::vector<UnitId>& units, Cycles now = 0);

    /** Per-unit health bitmap (true = failed). */
    const std::vector<bool>& unitHealth() const { return unitFailed_; }
    bool unitFailed(UnitId unit) const
    {
        return unit < unitFailed_.size() && unitFailed_[unit];
    }

    /**
     * Attach per-stream QoS attributes (multi-tenant serving). The
     * runtime stamps them onto every gathered demand so the
     * configurator can enforce class capacity constraints, and gives
     * reserved streams first claim on sampler coverage. Derived from
     * the static serving config at system construction, so this does
     * not need to travel through checkpoints.
     */
    void setStreamQos(const std::vector<StreamQos>& qos)
    {
        streamQos_.clear();
        for (const StreamQos& q : qos) {
            streamQos_[q.sid] = q;
        }
    }

    /**
     * Serving-layer churn notification: the given streams' tenants
     * changed activity at this epoch boundary (arrival or departure of
     * an open-loop tenant window), so force them into the next delta
     * set even if their demand fingerprints look unchanged. Cleared
     * after each epoch's delta computation; a no-op unless
     * solverWarmStart is enabled.
     */
    void noteStreamChurn(const std::vector<StreamId>& sids);

    /**
     * Attach (or detach with nullptr) the telemetry sink. Every
     * configuration decision -- initial, per-epoch, emergency -- is then
     * captured in its decision log, and reconfiguration/failure instants
     * land in its trace. Observer-only: decisions are identical with
     * telemetry on or off.
     */
    void setTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

    /** Registers "runtime.*" series into the epoch time-series registry. */
    void registerMetrics(MetricRegistry& registry);

    const RuntimeParams& params() const { return params_; }
    std::uint64_t reconfigurations() const { return reconfigs_; }
    /** Out-of-epoch reconfigurations triggered by unit failures. */
    std::uint64_t emergencyReconfigurations() const
    {
        return emergencyReconfigs_;
    }
    std::uint64_t failedUnits() const { return failedUnitCount_; }
    /** Epoch configs skipped because they barely changed anything. */
    std::uint64_t skippedReconfigurations() const
    {
        return skippedReconfigs_;
    }
    std::uint64_t streamsCovered() const { return covered_; }
    /** Placement decisions taken (initial + epoch + emergency). */
    std::uint64_t solverDecisions() const { return solverDecisions_; }
    /** Cumulative configuration-loop iterations across decisions. */
    std::uint64_t solverIterations() const { return solverIterations_; }
    /** Decisions cut short by the anytime budget. */
    std::uint64_t solverBudgetHits() const { return solverBudgetHits_; }
    /** Previous-epoch sampler pairs reused by warm starts. */
    std::uint64_t solverWarmReused() const { return solverWarmReused_; }
    /** Cumulative delta-set size over warm-started decisions. */
    std::uint64_t solverDeltaStreams() const
    {
        return solverDeltaStreams_;
    }
    /** Wall-clock microseconds spent in the last sampler assignment. */
    double lastAssignMicros() const { return lastAssignMicros_; }
    /** Wall-clock microseconds spent in the last configuration run. */
    double lastConfigMicros() const { return lastConfigMicros_; }

    void report(StatGroup& stats, const std::string& prefix) const;

    /**
     * Checkpoint hooks. A resumed system restores this state instead of
     * calling start(); advisory wall-clock fields (lastAssignMicros /
     * lastConfigMicros) intentionally do not travel.
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    /** Build demands from this epoch's profile. */
    std::vector<StreamDemand> gatherDemands();

    /**
     * Run max-flow assignment and install it in the sampler banks.
     * With a non-null `delta` (and a previous assignment to reuse) the
     * solve warm-starts from lastAssignment_, re-solving only the
     * delta streams; nullptr forces a cold solve.
     */
    void assignSamplers(bool first_epoch,
                        const std::vector<StreamId>* delta = nullptr);

    /**
     * Delta set for this epoch's solves: streams whose demand
     * fingerprint changed (quantized miss-curve buckets ~19% wide, so
     * sub-threshold noise does not invalidate the warm start), arrived,
     * departed, or were churn-notified. Updates lastFingerprints_ and
     * consumes churnStreams_.
     */
    std::vector<StreamId>
    computeDelta(const std::vector<StreamDemand>& demands);

    /** Roll per-decision solver counters after a configure() call. */
    void noteDecision();

    /**
     * Out-of-epoch reconfiguration after a unit failure. Applies
     * unconditionally (no stability guard): running degraded costs more
     * than any row invalidation the reconfiguration could cause.
     */
    void emergencyReconfigure();

    /**
     * Drop failed-unit shares from a configuration emitted by a
     * health-unaware configurator (e.g., the adapted NUCA baselines).
     */
    void stripFailedUnits(
        std::vector<std::pair<StreamId, StreamAlloc>>& config) const;

    /** Capture one configuration decision into the telemetry sink. */
    void recordDecision(
        const char* kind, Cycles now,
        const std::vector<StreamDemand>& demands,
        const std::vector<std::pair<StreamId, StreamAlloc>>& config,
        bool applied);

    RuntimeParams params_;
    StreamCacheController& cache_;
    std::unique_ptr<Configurator> configurator_;
    SamplerAssigner assigner_;

    /** Stamp serving QoS attributes onto a gathered demand. */
    void applyQos(StreamDemand& d) const;

    /** Last known miss-rate curve per stream (misses for 1 access). */
    std::map<StreamId, MissCurve> lastRateCurves_;
    /** Per-stream QoS attributes (empty outside serving mode). */
    std::map<StreamId, StreamQos> streamQos_;
    /** Streams the last assignment could not cover (rotated in next). */
    std::vector<StreamId> pendingUncovered_;

    Telemetry* telemetry_ = nullptr;
    /** Epoch counter for decision records (0 = initial config). */
    std::uint64_t epochIndex_ = 0;
    /** Last sim time seen (epoch boundary); stamps emergency records. */
    Cycles lastNow_ = 0;
    /** Last max-flow sampler assignment (for the decision log). */
    SamplerAssignment lastAssignment_;

    /** Health bitmap: unitFailed_[u] is true once unit u died. */
    std::vector<bool> unitFailed_;

    std::uint64_t reconfigs_ = 0;
    std::uint64_t emergencyReconfigs_ = 0;
    std::uint64_t failedUnitCount_ = 0;
    std::uint64_t skippedReconfigs_ = 0;
    std::uint64_t covered_ = 0;
    double lastAssignMicros_ = 0.0;
    double lastConfigMicros_ = 0.0;
    bool configuredOnce_ = false;

    /** Per-stream demand fingerprints from the last delta computation. */
    std::map<StreamId, std::uint64_t> lastFingerprints_;
    /** Streams churn-notified since the last delta computation. */
    std::vector<StreamId> churnStreams_;
    /**
     * solver.* counters. All deterministic (and checkpointed) except
     * the cumulative wall-clock, which is advisory and reported only
     * through StatGroup (a *Micros stat, outside the determinism
     * contract) -- never through the metric registry, whose output is
     * byte-compared across runs.
     */
    std::uint64_t solverDecisions_ = 0;
    std::uint64_t solverIterations_ = 0;
    std::uint64_t solverBudgetHits_ = 0;
    std::uint64_t solverWarmReused_ = 0;
    std::uint64_t solverDeltaStreams_ = 0;
    double solverWallMicros_ = 0.0;
};

} // namespace ndpext

#endif // NDPEXT_RUNTIME_NDP_RUNTIME_H
