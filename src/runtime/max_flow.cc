#include "runtime/max_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace ndpext {

MaxFlow::MaxFlow(std::uint32_t num_nodes) : head_(num_nodes, -1)
{
    NDP_ASSERT(num_nodes >= 2);
}

std::size_t
MaxFlow::addEdge(std::uint32_t u, std::uint32_t v, std::int64_t capacity)
{
    NDP_ASSERT(u < head_.size() && v < head_.size() && capacity >= 0);
    const std::size_t idx = edges_.size();
    edges_.push_back(
        Edge{v, capacity, head_[u]});
    head_[u] = static_cast<std::int32_t>(idx);
    edges_.push_back(Edge{u, 0, head_[v]});
    head_[v] = static_cast<std::int32_t>(idx + 1);
    originalCap_.push_back(capacity);
    originalCap_.push_back(0);
    return idx;
}

std::int64_t
MaxFlow::solve(std::uint32_t s, std::uint32_t t)
{
    NDP_ASSERT(s < head_.size() && t < head_.size() && s != t);
    std::int64_t total = seeded_; // units pushed by seedPath() count
    seeded_ = 0;
    std::vector<std::int32_t> parent_edge(head_.size());

    while (true) {
        // BFS for the shortest augmenting path.
        std::fill(parent_edge.begin(), parent_edge.end(), -1);
        std::queue<std::uint32_t> q;
        q.push(s);
        parent_edge[s] = -2;
        while (!q.empty() && parent_edge[t] == -1) {
            const std::uint32_t u = q.front();
            q.pop();
            for (std::int32_t e = head_[u]; e != -1;
                 e = edges_[static_cast<std::size_t>(e)].next) {
                const Edge& edge = edges_[static_cast<std::size_t>(e)];
                if (edge.cap > 0 && parent_edge[edge.to] == -1) {
                    parent_edge[edge.to] = e;
                    q.push(edge.to);
                }
            }
        }
        if (parent_edge[t] == -1) {
            break; // no augmenting path left
        }

        // Find bottleneck.
        std::int64_t push = std::numeric_limits<std::int64_t>::max();
        for (std::uint32_t v = t; v != s;) {
            const std::int32_t e = parent_edge[v];
            push = std::min(push, edges_[static_cast<std::size_t>(e)].cap);
            v = edges_[static_cast<std::size_t>(e) ^ 1].to;
        }
        // Apply.
        for (std::uint32_t v = t; v != s;) {
            const std::int32_t e = parent_edge[v];
            edges_[static_cast<std::size_t>(e)].cap -= push;
            edges_[static_cast<std::size_t>(e) ^ 1].cap += push;
            v = edges_[static_cast<std::size_t>(e) ^ 1].to;
        }
        total += push;
        ++augmentingPaths_;
    }
    return total;
}

bool
MaxFlow::seedPath(const std::vector<std::size_t>& path)
{
    for (const std::size_t idx : path) {
        NDP_ASSERT(idx < edges_.size());
        if (edges_[idx].cap < 1) {
            return false;
        }
    }
    for (const std::size_t idx : path) {
        edges_[idx].cap -= 1;
        edges_[idx ^ 1].cap += 1;
    }
    ++seeded_;
    return true;
}

std::int64_t
MaxFlow::flowOn(std::size_t idx) const
{
    NDP_ASSERT(idx < edges_.size());
    return originalCap_[idx] - edges_[idx].cap;
}

} // namespace ndpext
