/**
 * @file
 * Sampler-to-stream assignment as a max-flow problem (Section V-B, Fig. 4a).
 *
 * Bipartite graph: super source -> each NDP unit (capacity S = samplers per
 * unit) -> streams the unit accessed (unit capacity edges) -> super sink
 * (capacity 1 per stream). The max flow saturates one sampler per covered
 * stream; uncovered streams (rare) are reported so the runtime can rotate
 * them into the next epoch.
 */

#ifndef NDPEXT_RUNTIME_SAMPLER_ASSIGN_H
#define NDPEXT_RUNTIME_SAMPLER_ASSIGN_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ndpext {

struct SamplerAssignment
{
    /** assignment[unit] = sids that unit's samplers monitor next epoch. */
    std::vector<std::vector<StreamId>> perUnit;
    /** Streams no sampler could cover this round. */
    std::vector<StreamId> uncovered;
    /** Streams covered. */
    std::uint64_t covered = 0;
};

/** Work counters for one assignment solve (cold or warm-started). */
struct SamplerAssignStats
{
    /** Previous-epoch (unit, stream) pairs seeded into the flow. */
    std::uint64_t seededPairs = 0;
    /** BFS augmenting paths the solver still had to run. */
    std::uint64_t augmentingPaths = 0;
};

class SamplerAssigner
{
  public:
    /**
     * @param samplers_per_unit S in the paper (4).
     */
    explicit SamplerAssigner(std::uint32_t samplers_per_unit = 4)
        : samplersPerUnit_(samplers_per_unit)
    {
    }

    /**
     * @param accessed accessed[unit][sid] = unit touched the stream this
     *        epoch (the hardware bitvectors).
     * @param streams  the sids to cover (typically all streams accessed by
     *        anyone, minus those already profiled).
     */
    SamplerAssignment assign(
        const std::vector<std::vector<bool>>& accessed,
        const std::vector<StreamId>& streams,
        SamplerAssignStats* stats = nullptr) const;

    /**
     * Warm-started assignment: seed the flow with the previous epoch's
     * (unit, stream) pairs -- skipping streams in `delta` (demand
     * changed / arrived / departed) and pairs the current bitvectors no
     * longer permit -- then let the solver augment only what the seed
     * left uncovered. Coverage (max-flow value) is identical to a cold
     * solve; when `delta` is empty and the access graph is unchanged,
     * the result is bit-identical to `previous` with zero augmenting
     * paths.
     *
     * @param delta sids to re-solve from scratch (sorted not required).
     */
    SamplerAssignment assignWarm(
        const std::vector<std::vector<bool>>& accessed,
        const std::vector<StreamId>& streams,
        const SamplerAssignment& previous,
        const std::vector<StreamId>& delta,
        SamplerAssignStats* stats = nullptr) const;

  private:
    std::uint32_t samplersPerUnit_;
};

} // namespace ndpext

#endif // NDPEXT_RUNTIME_SAMPLER_ASSIGN_H
