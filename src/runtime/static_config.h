/**
 * @file
 * The NDPExt-static configuration (Section VI "Baseline designs"): cache
 * space equally allocated to every stream on every unit, one global
 * replication group per stream, never reconfigured. Exercises the stream
 * cache hardware without the runtime optimization, isolating the benefit
 * of the software side (Fig. 5 "NDPExt-static" bars, Fig. 9e "S").
 */

#ifndef NDPEXT_RUNTIME_STATIC_CONFIG_H
#define NDPEXT_RUNTIME_STATIC_CONFIG_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ndp/remap_table.h"
#include "stream/stream_table.h"

namespace ndpext {

/**
 * Build the equal-share configuration.
 *
 * @param streams        all configured streams.
 * @param num_units      NDP unit count.
 * @param rows_per_unit  cache rows per unit.
 * @param row_bytes      DRAM row size.
 * @param affine_cap_bytes_per_unit cap on affine rows per unit (0 = none).
 */
std::vector<std::pair<StreamId, StreamAlloc>>
makeStaticEqualConfig(const StreamTable& streams, std::uint32_t num_units,
                      std::uint32_t rows_per_unit, std::uint32_t row_bytes,
                      std::uint64_t affine_cap_bytes_per_unit);

} // namespace ndpext

#endif // NDPEXT_RUNTIME_STATIC_CONFIG_H
