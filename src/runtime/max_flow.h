/**
 * @file
 * Edmonds-Karp max-flow (Section V-B) used to assign per-unit hardware
 * samplers to data streams. BFS-augmented Ford-Fulkerson: O(V * E^2),
 * ample for the bipartite graphs here (<= 64 units + 512 streams).
 */

#ifndef NDPEXT_RUNTIME_MAX_FLOW_H
#define NDPEXT_RUNTIME_MAX_FLOW_H

#include <cstdint>
#include <vector>

namespace ndpext {

class MaxFlow
{
  public:
    explicit MaxFlow(std::uint32_t num_nodes);

    /**
     * Add a directed edge u -> v with the given capacity.
     * @return edge index usable with flowOn().
     */
    std::size_t addEdge(std::uint32_t u, std::uint32_t v,
                        std::int64_t capacity);

    /**
     * Compute the maximum s -> t flow. The returned value includes
     * units pushed by seedPath() since the previous solve() call, so
     * a warm-started solve reports the same total as a cold one.
     */
    std::int64_t solve(std::uint32_t s, std::uint32_t t);

    /**
     * Warm-start: push one unit of flow along a path given as forward
     * edge indices (each from addEdge). Succeeds only if every edge on
     * the path has residual capacity >= 1, so seeding can never create
     * an infeasible flow; a later solve() then only augments on top of
     * the seeded units. Max-flow value is unique, so a seeded solve
     * reaches the same total as a cold one.
     * @return true if the unit was pushed, false if any edge was full.
     */
    bool seedPath(const std::vector<std::size_t>& path);

    /** Flow pushed through edge `idx` after solve()/seedPath(). */
    std::int64_t flowOn(std::size_t idx) const;

    /** BFS augmenting paths found by solve() calls (seeding adds none). */
    std::uint64_t augmentingPaths() const { return augmentingPaths_; }

    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(head_.size());
    }

  private:
    struct Edge
    {
        std::uint32_t to;
        std::int64_t cap; ///< residual capacity
        std::int32_t next;
    };

    // Edges stored in pairs: edge 2i is forward, 2i+1 its residual twin.
    std::vector<Edge> edges_;
    std::vector<std::int32_t> head_;
    std::vector<std::int64_t> originalCap_;
    std::uint64_t augmentingPaths_ = 0;
    /** Units pushed by seedPath(), consumed by the next solve(). */
    std::int64_t seeded_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_RUNTIME_MAX_FLOW_H
