#include "runtime/config_algorithm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

namespace {

/**
 * Rows a member keeps after a merge scales its group by `scale`.
 * Nonzero members keep at least one row so rounding cannot silently
 * annihilate an allocation; the merge-plan feasibility check uses the
 * same arithmetic.
 */
std::uint32_t
scaledKeep(std::uint32_t rows, double scale)
{
    if (rows == 0) {
        return 0;
    }
    const auto kept = static_cast<std::uint32_t>(
        std::llround(static_cast<double>(rows) * scale));
    return std::max<std::uint32_t>(1, kept);
}

} // namespace

std::uint64_t
ConfigAlgorithm::Group::totalRows() const
{
    std::uint64_t total = 0;
    for (const auto& [unit, r] : rows) {
        total += r;
    }
    return total;
}

ConfigAlgorithm::ConfigAlgorithm(const ConfigParams& params,
                                 const NocModel& noc)
    : params_(params), noc_(noc)
{
    NDP_ASSERT(params.numUnits > 0 && params.rowsPerUnit > 0
               && params.rowBytes > 0);
}

double
ConfigAlgorithm::atten(UnitId from, UnitId to) const
{
    const Cycles icn = noc_.pureLatency(from, to);
    return static_cast<double>(params_.dramLatency)
        / static_cast<double>(params_.dramLatency + icn);
}

std::uint32_t
ConfigAlgorithm::sharedNeed(const StreamDemand& d, UnitId unit,
                            std::uint32_t rows) const
{
    if (!d.reserved) {
        return rows;
    }
    const auto it = tenantCaps_.find(d.tenant);
    if (it == tenantCaps_.end()) {
        return rows; // reserved tenant with a zero carve-out
    }
    const TenantCap& tc = it->second;
    const std::uint32_t ownFree = tc.reservedRows > tc.used[unit]
        ? tc.reservedRows - tc.used[unit]
        : 0;
    return rows > ownFree ? rows - ownFree : 0;
}

bool
ConfigAlgorithm::canAlloc(const StreamDemand& d, UnitId unit,
                          std::uint32_t rows) const
{
    if (freeRows_[unit] < rows) {
        return false;
    }
    if (d.affine && params_.affineCapBytesPerUnit > 0) {
        const std::uint64_t would = affineBytesUsed_[unit]
            + static_cast<std::uint64_t>(rows) * params_.rowBytes;
        if (would > params_.affineCapBytesPerUnit) {
            return false;
        }
    }
    if (totalReservedRows_ > 0
        && sharedUsed_[unit] + sharedNeed(d, unit, rows)
            > sharedCapacity()) {
        return false;
    }
    return true;
}

void
ConfigAlgorithm::classAlloc(const StreamDemand& d, UnitId unit,
                            std::uint32_t rows)
{
    if (totalReservedRows_ == 0) {
        return;
    }
    const std::uint32_t spill = sharedNeed(d, unit, rows);
    if (d.reserved) {
        const auto it = tenantCaps_.find(d.tenant);
        if (it != tenantCaps_.end()) {
            it->second.used[unit] += rows;
        }
    }
    sharedUsed_[unit] += spill;
    NDP_ASSERT(sharedUsed_[unit] <= sharedCapacity(),
               "QoS shared pool overflow on unit ", unit);
}

void
ConfigAlgorithm::classFree(const StreamDemand& d, UnitId unit,
                           std::uint32_t rows)
{
    if (totalReservedRows_ == 0) {
        return;
    }
    std::uint32_t from_shared = rows;
    if (d.reserved) {
        const auto it = tenantCaps_.find(d.tenant);
        if (it != tenantCaps_.end()) {
            TenantCap& tc = it->second;
            NDP_ASSERT(tc.used[unit] >= rows,
                       "QoS tenant accounting underflow on unit ", unit);
            const auto spillOf = [&](std::uint32_t used) {
                return used > tc.reservedRows ? used - tc.reservedRows
                                              : 0;
            };
            const std::uint32_t before = spillOf(tc.used[unit]);
            tc.used[unit] -= rows;
            from_shared = before - spillOf(tc.used[unit]);
        }
    }
    NDP_ASSERT(sharedUsed_[unit] >= from_shared,
               "QoS shared pool underflow on unit ", unit);
    sharedUsed_[unit] -= from_shared;
}

void
ConfigAlgorithm::doAlloc(SState& s, std::int32_t group, UnitId unit,
                         std::uint32_t rows)
{
    NDP_ASSERT(group >= 0
               && group < static_cast<std::int32_t>(s.groups.size()));
    NDP_ASSERT(freeRows_[unit] >= rows);
    s.groups[static_cast<std::size_t>(group)].rows[unit] += rows;
    s.groupOfUnit[unit] = group;
    freeRows_[unit] -= rows;
    if (s.d.affine) {
        affineBytesUsed_[unit] +=
            static_cast<std::uint64_t>(rows) * params_.rowBytes;
        NDP_ASSERT(params_.affineCapBytesPerUnit == 0
                       || affineBytesUsed_[unit]
                           <= params_.affineCapBytesPerUnit,
                   "affine cap violated on unit ", unit);
    }
    classAlloc(s.d, unit, rows);
}

std::int32_t
ConfigAlgorithm::groupForUnit(SState& s, std::size_t acc_idx)
{
    const UnitId uid = s.d.accUnits[acc_idx];
    const std::int32_t cur = s.groupOfUnit[uid];
    if (cur >= 0 && !s.groups[static_cast<std::size_t>(cur)].dead) {
        return cur;
    }
    // No live allocation here yet: join the accessor's initial replica
    // group (read-write streams all share group 0). If that group was
    // merged away, join the nearest live group, or resurrect it.
    std::int32_t g = s.initGroupOf[acc_idx];
    if (s.groups[static_cast<std::size_t>(g)].dead) {
        const std::int32_t live = servingGroup(s, acc_idx);
        if (live >= 0) {
            g = live;
        } else {
            s.groups[static_cast<std::size_t>(g)].dead = false;
        }
    }
    return g;
}

std::int32_t
ConfigAlgorithm::servingGroup(const SState& s, std::size_t acc_idx) const
{
    const UnitId from = s.d.accUnits[acc_idx];
    double best = -1.0;
    std::int32_t best_g = -1;
    for (std::size_t g = 0; g < s.groups.size(); ++g) {
        const Group& gr = s.groups[g];
        if (gr.dead) {
            continue;
        }
        const std::uint64_t total = gr.totalRows();
        if (total == 0) {
            continue;
        }
        double lat = 0.0;
        for (const auto& [unit, rows] : gr.rows) {
            lat += static_cast<double>(rows)
                * static_cast<double>(noc_.pureLatency(from, unit));
        }
        lat /= static_cast<double>(total);
        if (best_g == -1 || lat < best) {
            best = lat;
            best_g = static_cast<std::int32_t>(g);
        }
    }
    return best_g;
}

std::vector<std::size_t>
ConfigAlgorithm::accessorsOf(const SState& s, std::int32_t g) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < s.d.accUnits.size(); ++i) {
        if (servingGroup(s, i) == g) {
            out.push_back(i);
        }
    }
    return out;
}

double
ConfigAlgorithm::groupUtility(const SState& s, std::int32_t g) const
{
    NDP_ASSERT(g >= 0 && g < static_cast<std::int32_t>(s.groups.size()));
    const Group& gr = s.groups[static_cast<std::size_t>(g)];
    if (gr.dead) {
        return 0.0;
    }
    double util = 0.0;
    for (const std::size_t i : accessorsOf(s, g)) {
        const UnitId a = s.d.accUnits[i];
        const double w = s.totalAccesses == 0
            ? 1.0
            : static_cast<double>(s.d.accCounts[i])
                / static_cast<double>(s.totalAccesses);
        for (const auto& [unit, rows] : gr.rows) {
            util += w * static_cast<double>(rows) * params_.rowBytes
                * atten(a, unit);
        }
    }
    return util;
}

ConfigAlgorithm::ExtendPlan
ConfigAlgorithm::bestExtend(const SState& s, std::int32_t g, UnitId near,
                            std::uint32_t rows) const
{
    // Candidate units ordered by distance from the requesting unit that
    // (a) have space and (b) do not already hold this stream.
    std::vector<UnitId> candidates;
    for (UnitId u = 0; u < params_.numUnits; ++u) {
        if (u != near && s.groupOfUnit[u] < 0
            && canAlloc(s.d, u, rows)) {
            candidates.push_back(u);
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](UnitId a, UnitId b) {
                  return noc_.pureLatency(near, a)
                      < noc_.pureLatency(near, b);
              });

    ExtendPlan plan;
    const std::size_t limit =
        std::min<std::size_t>(candidates.size(), params_.extendCandidates);
    const auto accessors = accessorsOf(s, g);
    const double seg_bytes =
        static_cast<double>(rows) * params_.rowBytes;
    for (std::size_t i = 0; i < limit; ++i) {
        const UnitId cand = candidates[i];
        double gain = 0.0;
        for (const std::size_t a_idx : accessors) {
            const UnitId a = s.d.accUnits[a_idx];
            const double w = s.totalAccesses == 0
                ? 1.0
                : static_cast<double>(s.d.accCounts[a_idx])
                    / static_cast<double>(s.totalAccesses);
            gain += w * seg_bytes * atten(a, cand);
        }
        if (gain > plan.gain) {
            plan.gain = gain;
            plan.unit = cand;
        }
    }
    return plan;
}

ConfigAlgorithm::MergePlan
ConfigAlgorithm::bestMerge(UnitId uid, const SState& current,
                           std::int32_t cur_group,
                           std::uint32_t rows_needed, double place_gain)
{
    (void)cur_group;
    MergePlan best;
    for (std::size_t si = 0; si < states_.size(); ++si) {
        SState& s2 = states_[si];
        if (!s2.d.readOnly) {
            continue; // merging reduces replication; needs >= 2 groups
        }
        // Live groups.
        std::vector<std::int32_t> live;
        for (std::size_t g = 0; g < s2.groups.size(); ++g) {
            if (!s2.groups[g].dead && s2.groups[g].totalRows() > 0) {
                live.push_back(static_cast<std::int32_t>(g));
            }
        }
        if (live.size() < 2) {
            continue;
        }
        // groupA: the lowest-utility group containing uid.
        std::int32_t ga = -1;
        double ga_util = 0.0;
        for (const std::int32_t g : live) {
            if (s2.groups[static_cast<std::size_t>(g)].rows.count(uid)
                == 0) {
                continue;
            }
            const double u = groupUtility(s2, g);
            if (ga == -1 || u < ga_util) {
                ga = g;
                ga_util = u;
            }
        }
        if (ga == -1) {
            continue;
        }
        // groupB: nearest other group (min average member distance).
        std::int32_t gb = -1;
        double gb_dist = 0.0;
        const Group& a = s2.groups[static_cast<std::size_t>(ga)];
        for (const std::int32_t g : live) {
            if (g == ga) {
                continue;
            }
            const Group& b = s2.groups[static_cast<std::size_t>(g)];
            double dist = 0.0;
            std::uint64_t pairs = 0;
            for (const auto& [ua, ra] : a.rows) {
                (void)ra;
                for (const auto& [ub, rb] : b.rows) {
                    (void)rb;
                    dist += static_cast<double>(noc_.pureLatency(ua, ub));
                    ++pairs;
                }
            }
            dist /= static_cast<double>(std::max<std::uint64_t>(1, pairs));
            if (gb == -1 || dist < gb_dist) {
                gb = g;
                gb_dist = dist;
            }
        }
        if (gb == -1) {
            continue;
        }

        // Simulate the merge to estimate freed rows on uid and the
        // utility delta.
        const Group& b = s2.groups[static_cast<std::size_t>(gb)];
        const std::uint64_t bytes_a = a.totalRows() * params_.rowBytes;
        const std::uint64_t bytes_b = b.totalRows() * params_.rowBytes;
        const double scale = static_cast<double>(
                                 std::max(bytes_a, bytes_b))
            / static_cast<double>(bytes_a + bytes_b);
        const auto it = a.rows.find(uid);
        const std::uint32_t rows_at_uid =
            it == a.rows.end() ? 0 : it->second;
        const std::uint32_t kept = scaledKeep(rows_at_uid, scale);
        const std::uint32_t freed =
            rows_at_uid > kept ? rows_at_uid - kept : 0;
        if (freeRows_[uid] + freed < rows_needed) {
            continue; // merging would not unblock this allocation
        }

        const double util_before =
            groupUtility(s2, ga) + groupUtility(s2, gb);
        // Post-merge utility approximated on the scaled member rows.
        double util_after = 0.0;
        {
            // Build a scratch merged group.
            Group merged;
            for (const auto& [u, r] : a.rows) {
                merged.rows[u] += static_cast<std::uint32_t>(
                    std::floor(static_cast<double>(r) * scale));
            }
            for (const auto& [u, r] : b.rows) {
                merged.rows[u] += static_cast<std::uint32_t>(
                    std::floor(static_cast<double>(r) * scale));
            }
            // Utility over the union of both groups' accessors.
            const auto acc_a = accessorsOf(s2, ga);
            const auto acc_b = accessorsOf(s2, gb);
            std::vector<std::size_t> acc = acc_a;
            acc.insert(acc.end(), acc_b.begin(), acc_b.end());
            for (const std::size_t i : acc) {
                const UnitId from = s2.d.accUnits[i];
                const double w = s2.totalAccesses == 0
                    ? 1.0
                    : static_cast<double>(s2.d.accCounts[i])
                        / static_cast<double>(s2.totalAccesses);
                for (const auto& [u, r] : merged.rows) {
                    util_after += w * static_cast<double>(r)
                        * params_.rowBytes * atten(from, u);
                }
            }
        }
        const double gain = place_gain - (util_before - util_after);
        if (!best.valid || gain > best.gain) {
            best.valid = true;
            best.stream = si;
            best.groupA = ga;
            best.groupB = gb;
            best.gain = gain;
        }
    }
    (void)current;
    return best;
}

std::uint32_t
ConfigAlgorithm::applyMerge(const MergePlan& plan, UnitId uid)
{
    NDP_ASSERT(plan.valid);
    SState& s = states_[plan.stream];
    Group& a = s.groups[static_cast<std::size_t>(plan.groupA)];
    Group& b = s.groups[static_cast<std::size_t>(plan.groupB)];

    const std::uint64_t bytes_a = a.totalRows() * params_.rowBytes;
    const std::uint64_t bytes_b = b.totalRows() * params_.rowBytes;
    const double scale =
        static_cast<double>(std::max(bytes_a, bytes_b))
        / static_cast<double>(bytes_a + bytes_b);

    std::uint32_t freed_at_uid = 0;
    Group merged;
    auto fold = [&](Group& src) {
        for (auto& [unit, rows] : src.rows) {
            const std::uint32_t kept = scaledKeep(rows, scale);
            const std::uint32_t freed = rows > kept ? rows - kept : 0;
            freeRows_[unit] += freed;
            if (s.d.affine) {
                affineBytesUsed_[unit] -=
                    static_cast<std::uint64_t>(freed) * params_.rowBytes;
            }
            classFree(s.d, unit, freed);
            if (unit == uid) {
                freed_at_uid += freed;
            }
            if (kept > 0) {
                merged.rows[unit] += kept;
            } else {
                s.groupOfUnit[unit] = -1;
            }
        }
        src.rows.clear();
    };
    fold(a);
    fold(b);

    a.rows = std::move(merged.rows);
    b.dead = true;
    for (const auto& [unit, rows] : a.rows) {
        (void)rows;
        s.groupOfUnit[unit] = plan.groupA;
    }
    ++merges_;
    return freed_at_uid;
}

std::vector<std::pair<StreamId, StreamAlloc>>
ConfigAlgorithm::run(std::vector<StreamDemand> demands)
{
    states_.clear();
    freeRows_.assign(params_.numUnits, params_.rowsPerUnit);
    affineBytesUsed_.assign(params_.numUnits, 0);
    iterations_ = extends_ = merges_ = 0;
    lastBudgetHit_ = false;

    // Failed units contribute neither capacity nor (trustworthy) demand:
    // their sampler state died with them (Section V degraded mode).
    for (UnitId u = 0;
         u < params_.numUnits && u < failedUnits_.size(); ++u) {
        if (failedUnits_[u]) {
            freeRows_[u] = 0;
        }
    }
    for (auto& d : demands) {
        std::vector<UnitId> live_units;
        std::vector<std::uint64_t> live_counts;
        for (std::size_t i = 0; i < d.accUnits.size(); ++i) {
            const UnitId u = d.accUnits[i];
            if (u < failedUnits_.size() && failedUnits_[u]) {
                continue;
            }
            live_units.push_back(u);
            live_counts.push_back(d.accCounts[i]);
        }
        d.accUnits = std::move(live_units);
        d.accCounts = std::move(live_counts);
    }

    for (auto& d : demands) {
        NDP_ASSERT(d.accUnits.size() == d.accCounts.size());
        if (d.accUnits.empty() || d.footprintBytes == 0) {
            continue;
        }
        SState s;
        s.d = std::move(d);
        s.groupOfUnit.assign(params_.numUnits, -1);
        for (const auto c : s.d.accCounts) {
            s.totalAccesses += c;
        }
        states_.push_back(std::move(s));
    }

    // QoS carve-outs: one reservation per reserved tenant *present in
    // this run's demands* -- a departed tenant's reservation returns to
    // the shared pool automatically on the next reconfiguration.
    tenantCaps_.clear();
    totalReservedRows_ = 0;
    sharedUsed_.assign(params_.numUnits, 0);
    for (const auto& s : states_) {
        const StreamDemand& d = s.d;
        if (d.tenant == kNoQosTenant || !d.reserved
            || d.reservedRowsPerUnit == 0) {
            continue;
        }
        TenantCap& tc = tenantCaps_[d.tenant];
        if (tc.used.empty()) {
            tc.reservedRows = d.reservedRowsPerUnit;
            tc.used.assign(params_.numUnits, 0);
            totalReservedRows_ += tc.reservedRows;
        }
    }
    NDP_ASSERT(totalReservedRows_ <= params_.rowsPerUnit,
               "QoS reservations exceed unit capacity (",
               totalReservedRows_, " > ", params_.rowsPerUnit, ")");

    // Initial replication degrees. A stream starts with as many replica
    // groups as the cache space it can plausibly claim (its access share
    // of half the machine) could hold full copies of its footprint --
    // hot, small streams (e.g., shared weights/vectors) replicate widely,
    // large or lukewarm ones start consolidated. Merging still reduces
    // degrees further under pressure (Section V-C).
    {
        const std::uint64_t total_cap =
            static_cast<std::uint64_t>(params_.numUnits)
            * params_.rowsPerUnit * params_.rowBytes;
        std::uint64_t all_accesses = 0;
        for (const auto& s : states_) {
            all_accesses += s.totalAccesses;
        }
        for (auto& s : states_) {
            std::size_t k = 1;
            if (params_.allowReplication && s.d.readOnly
                && all_accesses > 0) {
                const double share = static_cast<double>(s.totalAccesses)
                    / static_cast<double>(all_accesses);
                const double affordable = share
                    * static_cast<double>(total_cap / 2)
                    / static_cast<double>(
                          std::max<std::uint64_t>(1, s.d.footprintBytes));
                k = static_cast<std::size_t>(std::min<double>(
                    std::max(1.0, affordable),
                    static_cast<double>(s.d.accUnits.size())));
            }
            s.groups.resize(std::max<std::size_t>(1, k));
            s.initGroupOf.resize(s.d.accUnits.size());
            for (std::size_t i = 0; i < s.d.accUnits.size(); ++i) {
                s.initGroupOf[i] = static_cast<std::int32_t>(
                    i * s.groups.size() / s.d.accUnits.size());
            }
        }
    }

    // Guaranteed floor: every accessed stream gets a sliver of space on
    // each accessing unit before the lookahead competition starts. This
    // prevents noisy epochs from starving a stream outright (which would
    // send all of its accesses to extended memory) and bounds epoch-to-
    // epoch allocation churn.
    {
        const std::uint32_t floor_rows = std::max<std::uint32_t>(
            1,
            params_.rowsPerUnit
                / (8
                   * std::max<std::size_t>(std::size_t{1},
                                           states_.size())));
        for (auto& s : states_) {
            for (std::size_t i = 0; i < s.d.accUnits.size(); ++i) {
                const UnitId uid = s.d.accUnits[i];
                if (canAlloc(s.d, uid, floor_rows)) {
                    doAlloc(s, groupForUnit(s, i), uid, floor_rows);
                }
            }
            s.posBytes = std::min<std::uint64_t>(
                s.d.footprintBytes,
                static_cast<std::uint64_t>(floor_rows) * params_.rowBytes);
        }
    }

    const bool trace = std::getenv("NDPEXT_TRACE_CONFIG") != nullptr;
    const auto budget_t0 = std::chrono::steady_clock::now();
    while (iterations_ < params_.maxIterations) {
        // Anytime budgets: every iteration boundary is a valid placement
        // (the floor allocation above guarantees feasibility), so we can
        // stop here and emit the best-so-far configuration. The
        // iteration cap is deterministic; the wall-clock cap is advisory
        // and only polled every 64 iterations to keep it off the hot
        // path.
        if (params_.budgetIterations != 0
            && iterations_ >= params_.budgetIterations) {
            ++budgetHits_;
            lastBudgetHit_ = true;
            break;
        }
        if (params_.budgetMicros != 0 && (iterations_ & 63u) == 0
            && iterations_ != 0) {
            const auto dt =
                std::chrono::steady_clock::now() - budget_t0;
            if (std::chrono::duration<double, std::micro>(dt).count()
                >= static_cast<double>(params_.budgetMicros)) {
                ++budgetHits_;
                lastBudgetHit_ = true;
                break;
            }
        }
        ++iterations_;
        // NextSteepestSlopeSeg: the stream with max marginal utility over
        // its whole remaining curve (UCP lookahead). A replicated stream
        // pays the segment cost once per copy, so its slope is discounted
        // by the replication degree -- this is the hit-rate-vs-hit-latency
        // balance of Section V-C: replicas stay attractive while space is
        // abundant and lose out as capacity pressure mounts.
        SState* best = nullptr;
        MissCurve::Segment best_seg;
        double best_eff = 0.0;
        for (auto& s : states_) {
            if (s.exhausted || s.posBytes >= s.d.footprintBytes) {
                continue;
            }
            const auto seg = s.d.curve.bestSegment(s.posBytes);
            if (seg.target == 0) {
                continue;
            }
            double degree = 1.0;
            if (s.d.readOnly) {
                std::size_t live = 0;
                for (const auto& gr : s.groups) {
                    live += (!gr.dead && gr.totalRows() > 0) ? 1 : 0;
                }
                degree = static_cast<double>(
                    live > 0 ? live
                             : std::max<std::size_t>(1, s.groups.size()));
                // Replication also buys hit latency: a local replica
                // avoids the mesh. Credit the average attenuation gain.
                degree = std::max(1.0, degree * 0.5);
            }
            const double eff = seg.slope / degree;
            // Near-ties (e.g., identical prior curves of sibling streams)
            // round-robin by position, otherwise the first stream would
            // monopolize the whole machine.
            constexpr double kTieRel = 1e-3;
            const bool wins = eff > best_eff * (1.0 + kTieRel);
            const bool ties = best != nullptr
                && eff >= best_eff * (1.0 - kTieRel)
                && s.posBytes < best->posBytes;
            if (best == nullptr ? eff > 0.0 : (wins || ties)) {
                best_eff = eff;
                best_seg = seg;
                best = &s;
            }
        }
        if (best == nullptr) {
            break; // all curves flat or exhausted
        }
        SState& s = *best;
        if (trace) {
            std::fprintf(stderr,
                         "[cfg] it=%llu sid=%u pos=%llu slope=%g tgt=%llu\n",
                         static_cast<unsigned long long>(iterations_),
                         s.d.sid,
                         static_cast<unsigned long long>(s.posBytes),
                         best_seg.slope,
                         static_cast<unsigned long long>(best_seg.target));
        }

        std::uint64_t next = best_seg.target;
        if (next == 0 || next > s.d.footprintBytes) {
            next = s.d.footprintBytes;
        }
        if (next <= s.posBytes) {
            s.exhausted = true;
            continue;
        }
        // Cap segments so late (geometric, hence large) curve steps can
        // still be satisfied by extend/merge freeing modest space.
        const std::uint64_t seg_bytes = next - s.posBytes;
        const std::uint32_t max_seg_rows = std::max<std::uint32_t>(
            1, params_.rowsPerUnit / 8);
        const std::uint32_t seg_rows = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(ceilDiv(seg_bytes, params_.rowBytes),
                                    max_seg_rows));

        // Which units receive this segment: one allocation request per
        // replica group (each copy grows by exactly one segment per
        // iteration, keeping group capacity in lockstep with posBytes);
        // the requesting accessor rotates within the group's cluster.
        // Read-write streams have a single group.
        std::vector<std::size_t> targets;
        if (s.d.readOnly) {
            std::map<std::int32_t, std::vector<std::size_t>> members;
            for (std::size_t i = 0; i < s.d.accUnits.size(); ++i) {
                std::int32_t g = s.groupOfUnit[s.d.accUnits[i]];
                if (g < 0
                    || s.groups[static_cast<std::size_t>(g)].dead) {
                    g = s.initGroupOf[i];
                }
                members[g].push_back(i);
            }
            for (const auto& [g, accs] : members) {
                (void)g;
                targets.push_back(accs[s.rwCursor % accs.size()]);
            }
            ++s.rwCursor;
        } else {
            targets.push_back(s.rwCursor % s.d.accUnits.size());
            ++s.rwCursor;
        }

        bool progress = false;
        for (const std::size_t acc_idx : targets) {
            const UnitId uid = s.d.accUnits[acc_idx];
            const std::int32_t g = groupForUnit(s, acc_idx);

            if (canAlloc(s.d, uid, seg_rows)) {
                doAlloc(s, g, uid, seg_rows);
                progress = true;
                continue;
            }

            // The affine space restriction cannot be relieved by merging
            // or extending near this unit never helps it; only try remote
            // placement when rows (not the tag-SRAM cap) are binding.
            const bool cap_bound = s.d.affine
                && params_.affineCapBytesPerUnit > 0
                && affineBytesUsed_[uid]
                        + static_cast<std::uint64_t>(seg_rows)
                            * params_.rowBytes
                    > params_.affineCapBytesPerUnit;

            // Local space exhausted: extend vs merge (Alg. 1 lines 9-21).
            const double place_gain =
                static_cast<double>(seg_rows) * params_.rowBytes;
            const ExtendPlan ext = bestExtend(s, g, uid, seg_rows);
            MergePlan mrg;
            if (!cap_bound) {
                mrg = bestMerge(uid, s, g, seg_rows, place_gain);
            }

            if (ext.unit != kNoUnit
                && (!mrg.valid || ext.gain >= mrg.gain)) {
                doAlloc(s, g, ext.unit, seg_rows);
                ++extends_;
                progress = true;
            } else if (mrg.valid) {
                applyMerge(mrg, uid);
                if (canAlloc(s.d, uid, seg_rows)) {
                    doAlloc(s, groupForUnit(s, acc_idx), uid, seg_rows);
                    progress = true;
                }
            }
        }

        if (progress) {
            // Advance by what was actually granted per copy; reaching
            // `next` may take several iterations with capped segments.
            s.posBytes = std::min<std::uint64_t>(
                next,
                s.posBytes
                    + static_cast<std::uint64_t>(seg_rows)
                        * params_.rowBytes);
        } else {
            s.exhausted = true;
        }
    }

    return emit();
}

std::vector<std::pair<StreamId, StreamAlloc>>
ConfigAlgorithm::emit()
{
    std::vector<std::pair<StreamId, StreamAlloc>> out;
    out.reserve(states_.size());
    for (const SState& s : states_) {
        StreamAlloc alloc(params_.numUnits);
        // Compact live groups to dense ids.
        std::vector<std::int32_t> dense(s.groups.size(), -1);
        std::uint16_t next_id = 0;
        for (std::size_t g = 0; g < s.groups.size(); ++g) {
            if (!s.groups[g].dead && s.groups[g].totalRows() > 0) {
                dense[g] = next_id++;
            }
        }
        alloc.numGroups = std::max<std::uint16_t>(next_id, 1);
        for (std::size_t g = 0; g < s.groups.size(); ++g) {
            if (dense[g] < 0) {
                continue;
            }
            for (const auto& [unit, rows] : s.groups[g].rows) {
                alloc.shareRows[unit] = rows;
                alloc.groupOf[unit] =
                    static_cast<std::uint16_t>(dense[g]);
            }
        }
        out.emplace_back(s.d.sid, std::move(alloc));
    }

    // RRowBase: bump allocation per unit over the emitted streams.
    std::vector<std::uint32_t> next_row(params_.numUnits, 0);
    lastObjective_ = 0;
    for (auto& [sid, alloc] : out) {
        (void)sid;
        for (UnitId u = 0; u < params_.numUnits; ++u) {
            if (alloc.shareRows[u] > 0) {
                alloc.rowBase[u] = next_row[u];
                next_row[u] += alloc.shareRows[u];
                NDP_ASSERT(next_row[u] <= params_.rowsPerUnit);
                lastObjective_ +=
                    static_cast<std::uint64_t>(alloc.shareRows[u])
                    * params_.rowBytes;
            }
        }
    }
    return out;
}

} // namespace ndpext
