/**
 * @file
 * Open-loop arrival processes and their self-registering factory.
 *
 * An ArrivalProcess turns a deterministic Rng into a sequence of
 * inter-arrival gaps (in core cycles); the serving frontend runs one
 * instance per (tenant, core) so arrival streams are independent across
 * cores and statistically identical across runs. Implementations live in
 * arrival_processes.cc and register themselves through ArrivalRegistrar
 * -- the same ramulator2-style pattern as MemBackendRegistry (PR 7):
 * CLI frontends enumerate the registry for `--list-arrivals`,
 * SystemConfig::validate checks names and tunable keys against it (with
 * an edit-distance did-you-mean on unknown names), and
 * createArrivalProcess() constructs by name.
 *
 * Registrars live in a static library, so arrival_registry.cc -- always
 * linked, since createArrivalProcess lives there -- anchors the process
 * TU from forceLinkArrivalProcesses() to defeat dead-stripping.
 */

#ifndef NDPEXT_SERVING_ARRIVAL_PROCESS_H
#define NDPEXT_SERVING_ARRIVAL_PROCESS_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"

namespace ndpext {

/**
 * Parameters handed to an arrival-process factory: the tenant's mean
 * inter-arrival period (cycles per request, per core) plus the
 * process-specific tunables that survived validation.
 */
struct ArrivalParams
{
    /** Mean cycles between request arrivals at one core. */
    double periodCycles = 0.0;
    /** Process-specific tunables (validated against the registry). */
    std::vector<std::pair<std::string, double>> tunables;

    double
    get(const std::string& key, double fallback) const
    {
        for (const auto& [k, v] : tunables) {
            if (k == key) {
                return v;
            }
        }
        return fallback;
    }
};

/**
 * A deterministic generator of inter-arrival gaps. Gaps are >= 1 cycle,
 * so arrival times are strictly increasing. State (including the Rng)
 * checkpoints through serialize()/deserialize() -- the serving
 * generator's state is restored exactly, never replayed.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Cycles until the next arrival after the previous one. */
    virtual Cycles nextGap() = 0;

    virtual void serialize(ckpt::Writer& w) const = 0;
    virtual void deserialize(ckpt::Reader& r) = 0;
};

/** One tunable an arrival process accepts via `--tenant=...,key=v`. */
struct ArrivalTunable
{
    std::string key;
    std::string description;
};

/** Registry record of one arrival-process implementation. */
struct ArrivalInfo
{
    std::string name;
    std::string description;
    /** Declared tunables; unknown keys are a validation error. */
    std::vector<ArrivalTunable> tunables;
    std::function<std::unique_ptr<ArrivalProcess>(const ArrivalParams&,
                                                  std::uint64_t seed)>
        factory;
};

class ArrivalRegistry
{
  public:
    static ArrivalRegistry& instance();

    /** Register a process; duplicate names are a fatal error. */
    void add(ArrivalInfo info);

    /** Lookup by exact name; nullptr if absent. */
    const ArrivalInfo* find(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Closest registered name to `name` by Levenshtein distance, for
     * did-you-mean diagnostics. Empty if nothing is within
     * max(2, len/3) edits.
     */
    std::string suggest(const std::string& name) const;

  private:
    ArrivalRegistry() = default;
    std::map<std::string, ArrivalInfo> processes_;
};

/** Static-initialization helper: constructing one registers a process. */
struct ArrivalRegistrar
{
    explicit ArrivalRegistrar(ArrivalInfo info);
};

/**
 * Construct a validated arrival process by name. Unknown names are
 * fatal here -- run SystemConfig::validate first for recoverable
 * diagnostics.
 */
std::unique_ptr<ArrivalProcess>
createArrivalProcess(const std::string& name, const ArrivalParams& params,
                     std::uint64_t seed);

/**
 * Touch the process TU's anchors so static-library links retain the
 * registrars. Called from ArrivalRegistry::instance().
 */
void forceLinkArrivalProcesses();

} // namespace ndpext

#endif // NDPEXT_SERVING_ARRIVAL_PROCESS_H
