/**
 * @file
 * The multi-tenant open-loop serving frontend.
 *
 * ServingWorkload composes one sub-workload per tenant (any archetype
 * from src/workloads: embedding lookups, graph queries, tensor kernels)
 * into a single stream table / address space, and drives each core with
 * a ServingGenerator that turns per-tenant arrival processes into
 * request traffic:
 *
 *  - Open loop: requests arrive on their own clock (Poisson / bursty /
 *    diurnal, one independent process per tenant per core). A request is
 *    `req` consecutive accesses of the tenant's workload pattern; its
 *    first access carries Access::notBefore so an idle core waits for
 *    the arrival, while a backlogged core accrues queueing delay -- the
 *    classic open-loop overload behaviour.
 *  - QoS scheduling: reserved-class requests are served before
 *    best-effort ones (FCFS within a class), mirroring the reserved
 *    NDP-cache carve-out Algorithm 1 enforces (config_algorithm.h).
 *  - Churn: each tenant is active in an epoch-aligned window
 *    [arrive, depart) and generates no arrivals outside it.
 *  - SLO telemetry: the core reports request completion through
 *    AccessGenerator::onRetire; per-tenant latency histograms, p50/p99
 *    and SLO attainment flow into --stats-json and the metrics JSONL
 *    (`ndpext_report slo`).
 *
 * Determinism: every arrival draw and scheduling decision is a pure
 * function of (config, seed, core clock), and core clocks are
 * bit-identical across thread counts, so serving runs are too. The
 * generator checkpoints self-contained (arrival processes, pending
 * queues, in-flight requests, latency records) and fast-forwards its
 * sub-generators by replay, so killed-and-resumed runs stay
 * byte-identical.
 */

#ifndef NDPEXT_SERVING_SERVING_WORKLOAD_H
#define NDPEXT_SERVING_SERVING_WORKLOAD_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "serving/serving_config.h"
#include "workloads/workload.h"

namespace ndpext {

/** Merge `src` into `dst`; both must share the same bucket config. */
void mergeHistogram(Histogram* dst, const Histogram& src);

/** Per-(tenant, core) serving counters; aggregated in core order. */
struct TenantServingStats
{
    explicit TenantServingStats(Cycles slo_cycles)
        : latency(16.0 * static_cast<double>(slo_cycles), 256)
    {
    }

    /** Requests admitted (arrival drawn inside the activity window). */
    std::uint64_t arrivals = 0;
    /** Requests whose first access was issued. */
    std::uint64_t started = 0;
    /** Requests whose completion the core reported back. */
    std::uint64_t retired = 0;
    /** Retired requests with latency above the tenant's SLO. */
    std::uint64_t sloViolations = 0;
    /** Request latency (arrival to completion), cycles. */
    Histogram latency;
};

class ServingWorkload;

/**
 * One core's open-loop request scheduler. Pulls pattern accesses from
 * per-tenant sub-generators, stamps them with arrival metadata, and
 * measures request latency via onRetire.
 */
class ServingGenerator final : public AccessGenerator
{
  public:
    ServingGenerator(const ServingWorkload& w, CoreId core);
    ~ServingGenerator() override;

    bool next(Access& out) override;
    bool next(Access& out, Cycles now) override;
    void onRetire(const Access& acc, Cycles done) override;

    bool checkpointSelfContained() const override { return true; }
    void serializeExtra(ckpt::Writer& w) const override;
    void deserializeExtra(ckpt::Reader& r) override;

    /** Per-tenant counters (index = tenant order in ServingConfig). */
    const TenantServingStats& tenantStats(std::size_t tenant) const
    {
        return tenants_[tenant].stats;
    }

  private:
    struct TenantRt
    {
        TenantRt(std::unique_ptr<AccessGenerator> sub_gen,
                 std::unique_ptr<ArrivalProcess> arrival_proc,
                 Cycles slo_cycles)
            : sub(std::move(sub_gen)), arrival(std::move(arrival_proc)),
              stats(slo_cycles)
        {
        }

        std::unique_ptr<AccessGenerator> sub;
        std::unique_ptr<ArrivalProcess> arrival;
        /** Absolute time of the last drawn arrival. */
        Cycles clock = 0;
        /** Next not-yet-queued arrival; valid iff !exhausted. */
        Cycles nextArrival = 0;
        /** No further arrivals (window or horizon exceeded). */
        bool exhausted = false;
        /** Accesses pulled from `sub` (checkpoint replay counter). */
        std::uint64_t subPulled = 0;
        /** Arrived-but-unstarted requests (arrival cycles, FIFO). */
        std::deque<Cycles> queue;
        TenantServingStats stats;
    };

    /** Draw the tenant's next arrival; sets exhausted at the window
     *  end. */
    void drawNext(TenantRt& t);
    /** Move every arrival with time <= now into its tenant's queue. */
    void pump(Cycles now);
    /** Select and dequeue the next request; false when fully drained. */
    bool startNextRequest(Cycles now);

    const ServingWorkload& workload_;
    std::vector<TenantRt> tenants_;

    static constexpr std::uint32_t kNoTenant = ~0u;
    /** Request currently being emitted. */
    std::uint32_t curTenant_ = kNoTenant;
    Cycles curArrival_ = 0;
    std::uint32_t curLeft_ = 0;
    /** True until the request's first access (carries notBefore). */
    bool curFirst_ = false;
    /** Fully emitted requests awaiting onRetire (tenant, arrival). */
    std::deque<std::pair<std::uint32_t, Cycles>> inflight_;
    /** Core clock at the last next() call (1-arg fallback only). */
    Cycles lastNow_ = 0;
};

class ServingWorkload final : public Workload
{
  public:
    /**
     * @param epoch_cycles the runtime's epoch length; tenant churn
     *        windows are specified in epochs and converted here.
     */
    ServingWorkload(ServingConfig cfg, Cycles epoch_cycles);

    std::string name() const override { return "serving"; }

    std::unique_ptr<AccessGenerator>
    makeGenerator(CoreId core) const override;

    void hashExtra(ckpt::Writer& w) const override;

    const ServingConfig& serving() const { return cfg_; }
    Cycles horizon() const { return cfg_.horizonCycles; }
    Cycles epochCycles() const { return epochCycles_; }

    /** Tenant activity window in cycles: [start, end). */
    Cycles
    activeStart(std::size_t tenant) const
    {
        return windows_[tenant].first;
    }
    Cycles
    activeEnd(std::size_t tenant) const
    {
        return windows_[tenant].second;
    }

    /** Which tenant owns stream `sid` (index into streamConfigs()). */
    std::uint32_t streamTenant(std::size_t sid) const
    {
        return owners_[sid];
    }

    /** Tenant-order view of the sub-workloads (for generators). */
    const Workload& sub(std::size_t tenant) const
    {
        return *subs_[tenant];
    }

  protected:
    void doPrepare() override;

  private:
    friend class ServingGenerator;

    ServingConfig cfg_;
    Cycles epochCycles_;
    std::vector<std::unique_ptr<Workload>> subs_;
    /** Per-tenant [start, end) activity window in cycles. */
    std::vector<std::pair<Cycles, Cycles>> windows_;
    /** Stream index -> owning tenant. */
    std::vector<std::uint32_t> owners_;
};

} // namespace ndpext

#endif // NDPEXT_SERVING_SERVING_WORKLOAD_H
