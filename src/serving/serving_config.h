/**
 * @file
 * Multi-tenant serving configuration: tenant specs and their parsing.
 *
 * A tenant is declared on the ndpext_sim command line as a repeatable
 * `--tenant=key=val,key=val,...` flag:
 *
 *   --tenant=name=emb,workload=recsys,arrival=poisson,period=1500,
 *            qos=reserved,reserve-pct=25,slo=40000,req=64
 *
 * Recognized keys: name, workload, arrival, period (mean inter-arrival
 * cycles per core), req (accesses per request), qos
 * (reserved|best-effort), reserve-pct (percent of each unit's NDP-cache
 * rows carved out for this tenant), slo (per-request latency target in
 * cycles), arrive / depart (activity window in epoch numbers -- tenant
 * churn happens at epoch barriers), footprint-mb. Any other key must be
 * a tunable declared by the chosen arrival process (e.g. burst-factor);
 * unknown keys are recoverable validation errors with a did-you-mean.
 */

#ifndef NDPEXT_SERVING_SERVING_CONFIG_H
#define NDPEXT_SERVING_SERVING_CONFIG_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"
#include "serving/arrival_process.h"

namespace ndpext {

/** One co-located tenant of the serving frontend. */
struct TenantSpec
{
    std::string name;
    /** Workload archetype (any name from allWorkloadNames()). */
    std::string workload;
    /** Arrival process (any name from ArrivalRegistry). */
    std::string arrival = "poisson";
    /** Mean cycles between request arrivals at each core. */
    double periodCycles = 0.0;
    /** Accesses per request (one request = one generator burst). */
    std::uint32_t requestAccesses = 64;
    /** QoS class: reserved tenants get a private NDP-cache carve-out. */
    bool reserved = false;
    /** Percent of each unit's cache rows reserved for this tenant. */
    double reservePct = 0.0;
    /** Per-request latency SLO in cycles (p99 target). */
    Cycles sloCycles = 100'000;
    /** Activity window in epochs: [arriveEpoch, departEpoch). */
    std::uint64_t arriveEpoch = 0;
    std::uint64_t departEpoch = std::numeric_limits<std::uint64_t>::max();
    /** Dataset footprint; 0 = even share of the run's footprint. */
    std::uint64_t footprintBytes = 0;
    /** Leftover keys, passed to the arrival-process factory. */
    std::vector<std::pair<std::string, double>> arrivalTunables;
};

/** The serving frontend's full configuration (empty = disabled). */
struct ServingConfig
{
    std::vector<TenantSpec> tenants;
    /** No requests arrive at or past this cycle; the run then drains. */
    Cycles horizonCycles = 2'000'000;

    bool enabled() const { return !tenants.empty(); }
};

/** Most tenants a single serving run will co-locate. */
inline constexpr std::size_t kMaxTenants = 64;

/**
 * Parse one `--tenant=` value. Returns false with a diagnostic naming
 * the offending key in `*error`; name/workload semantic checks happen
 * in validateServingConfig (so parsing stays order-independent).
 */
bool parseTenantSpec(const std::string& spec, TenantSpec* out,
                     std::string* error);

/**
 * Validate a full serving config: tenant count bounds, positive arrival
 * rates, workload / arrival names (with did-you-mean), per-tenant
 * tunable keys, QoS reservations summing below unit capacity, and churn
 * windows. Recoverable: returns false with a named-flag diagnostic.
 */
bool validateServingConfig(const ServingConfig& cfg, std::string* error);

/** Fold every trajectory-shaping serving field into a config hash. */
void hashServingConfig(const ServingConfig& cfg, ckpt::Writer& w);

} // namespace ndpext

#endif // NDPEXT_SERVING_SERVING_CONFIG_H
