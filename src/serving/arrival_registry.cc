#include "serving/arrival_process.h"

#include "common/logging.h"
#include "common/suggest.h"

namespace ndpext {

ArrivalRegistry&
ArrivalRegistry::instance()
{
    forceLinkArrivalProcesses();
    static ArrivalRegistry registry;
    return registry;
}

void
ArrivalRegistry::add(ArrivalInfo info)
{
    NDP_ASSERT(!info.name.empty() && info.factory,
               "arrival-process registration needs a name and a factory");
    const auto [it, inserted] =
        processes_.emplace(info.name, std::move(info));
    if (!inserted) {
        NDP_FATAL("duplicate arrival-process registration: ", it->first);
    }
}

const ArrivalInfo*
ArrivalRegistry::find(const std::string& name) const
{
    const auto it = processes_.find(name);
    return it == processes_.end() ? nullptr : &it->second;
}

std::vector<std::string>
ArrivalRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(processes_.size());
    for (const auto& [name, info] : processes_) {
        out.push_back(name);
    }
    return out; // std::map iteration is already sorted
}

std::string
ArrivalRegistry::suggest(const std::string& name) const
{
    return closestName(name, names());
}

ArrivalRegistrar::ArrivalRegistrar(ArrivalInfo info)
{
    ArrivalRegistry::instance().add(std::move(info));
}

std::unique_ptr<ArrivalProcess>
createArrivalProcess(const std::string& name, const ArrivalParams& params,
                     std::uint64_t seed)
{
    const ArrivalInfo* info = ArrivalRegistry::instance().find(name);
    if (info == nullptr) {
        NDP_FATAL("unknown arrival process: ", name,
                  " (validate configs with SystemConfig::validate first)");
    }
    std::unique_ptr<ArrivalProcess> process = info->factory(params, seed);
    NDP_ASSERT(process != nullptr, "arrival factory returned null");
    return process;
}

int linkArrivalProcesses();

void
forceLinkArrivalProcesses()
{
    // Calling an exported function from the process TU forces the linker
    // to pull that archive member (and run its registrars). A volatile
    // sink keeps the call from being optimized out.
    static volatile int anchor = linkArrivalProcesses();
    (void)anchor;
}

} // namespace ndpext
