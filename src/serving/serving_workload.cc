#include "serving/serving_workload.h"

#include <algorithm>

#include "common/logging.h"

namespace ndpext {

namespace {

/** Sub-generators must outlive any horizon: effectively unbounded. */
constexpr std::uint64_t kUnboundedAccesses = 1ULL << 62;

/** Checkpoint section tag for serving-generator extra state. */
constexpr std::uint32_t kServingGenTag = 0x5E81;

} // namespace

void
mergeHistogram(Histogram* dst, const Histogram& src)
{
    if (src.count() == 0) {
        return;
    }
    std::vector<std::uint64_t> bins = dst->bins();
    NDP_ASSERT(bins.size() == src.bins().size(),
               "histogram merge with mismatched bucket configs");
    for (std::size_t i = 0; i < bins.size(); ++i) {
        bins[i] += src.bins()[i];
    }
    const bool wasEmpty = dst->count() == 0;
    dst->restore(std::move(bins), dst->overflow() + src.overflow(),
                 dst->count() + src.count(), dst->sum() + src.sum(),
                 wasEmpty ? src.minValue()
                          : std::min(dst->minValue(), src.minValue()),
                 wasEmpty ? src.maxValue()
                          : std::max(dst->maxValue(), src.maxValue()));
}

ServingWorkload::ServingWorkload(ServingConfig cfg, Cycles epoch_cycles)
    : cfg_(std::move(cfg)), epochCycles_(epoch_cycles)
{
    NDP_ASSERT(cfg_.enabled(), "ServingWorkload needs at least one tenant");
    NDP_ASSERT(epochCycles_ > 0);
    for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
        if (cfg_.tenants[i].name.empty()) {
            cfg_.tenants[i].name = "t" + std::to_string(i);
        }
    }
}

void
ServingWorkload::doPrepare()
{
    const std::uint64_t evenShare = std::max<std::uint64_t>(
        p_.footprintBytes / cfg_.tenants.size(), 1_MiB);
    StreamId sidOff = 0;
    Addr addrOff = 0;
    for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
        const TenantSpec& t = cfg_.tenants[i];
        WorkloadParams sp;
        sp.numCores = p_.numCores;
        sp.footprintBytes =
            t.footprintBytes != 0 ? t.footprintBytes : evenShare;
        sp.accessesPerCore = kUnboundedAccesses;
        sp.seed = mix64(p_.seed ^ (0x5E711234ULL + i));

        std::unique_ptr<Workload> sub = makeWorkload(t.workload);
        sub->prepare(sp);
        sub->rebaseStreams(sidOff, addrOff);
        for (const StreamConfig& cfg : sub->streamConfigs()) {
            StreamConfig copy = cfg;
            copy.name = t.name + "." + copy.name;
            configs_.push_back(std::move(copy));
            owners_.push_back(static_cast<std::uint32_t>(i));
        }
        sidOff = static_cast<StreamId>(configs_.size());
        addrOff = sub->addressSpaceEnd();
        subs_.push_back(std::move(sub));

        // Churn windows are epoch-aligned and capped by the horizon.
        const Cycles cap = cfg_.horizonCycles;
        const auto toCycles = [&](std::uint64_t epoch) {
            if (epoch > cap / epochCycles_) {
                return cap;
            }
            return std::min<Cycles>(cap, epoch * epochCycles_);
        };
        windows_.emplace_back(toCycles(t.arriveEpoch),
                              toCycles(t.departEpoch));
    }
}

std::unique_ptr<AccessGenerator>
ServingWorkload::makeGenerator(CoreId core) const
{
    return std::make_unique<ServingGenerator>(*this, core);
}

void
ServingWorkload::hashExtra(ckpt::Writer& w) const
{
    hashServingConfig(cfg_, w);
    w.u64(epochCycles_);
}

ServingGenerator::ServingGenerator(const ServingWorkload& w, CoreId core)
    : workload_(w)
{
    const std::vector<TenantSpec>& specs = w.serving().tenants;
    tenants_.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const TenantSpec& spec = specs[i];
        ArrivalParams ap;
        ap.periodCycles = spec.periodCycles;
        ap.tunables = spec.arrivalTunables;
        const std::uint64_t seed =
            mix64(mix64(w.params().seed ^ (0xA2210000ULL + i)) + core);
        tenants_.emplace_back(w.sub(i).makeGenerator(core),
                              createArrivalProcess(spec.arrival, ap, seed),
                              spec.sloCycles);
        TenantRt& rt = tenants_.back();
        rt.clock = w.activeStart(i);
        drawNext(rt);
    }
}

ServingGenerator::~ServingGenerator() = default;

void
ServingGenerator::drawNext(TenantRt& t)
{
    if (t.exhausted) {
        return;
    }
    const std::size_t idx = static_cast<std::size_t>(&t - tenants_.data());
    t.clock += t.arrival->nextGap();
    if (t.clock >= workload_.activeEnd(idx)) {
        t.exhausted = true;
        return;
    }
    t.nextArrival = t.clock;
    ++t.stats.arrivals;
}

void
ServingGenerator::pump(Cycles now)
{
    for (TenantRt& t : tenants_) {
        while (!t.exhausted && t.nextArrival <= now) {
            t.queue.push_back(t.nextArrival);
            drawNext(t);
        }
    }
}

bool
ServingGenerator::startNextRequest(Cycles now)
{
    pump(now);

    // Arrived requests first: reserved class before best-effort, FCFS
    // by arrival time within a class (ties to the lowest tenant index).
    const std::vector<TenantSpec>& specs = workload_.serving().tenants;
    std::size_t best = tenants_.size();
    for (const bool wantReserved : {true, false}) {
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            if (specs[i].reserved != wantReserved
                || tenants_[i].queue.empty()) {
                continue;
            }
            if (best == tenants_.size()
                || tenants_[i].queue.front()
                    < tenants_[best].queue.front()) {
                best = i;
            }
        }
        if (best != tenants_.size()) {
            break;
        }
    }

    Cycles arrival = 0;
    if (best != tenants_.size()) {
        arrival = tenants_[best].queue.front();
        tenants_[best].queue.pop_front();
    } else {
        // Core is idle: jump to the earliest future arrival (reserved
        // wins exact-time ties, then the lowest tenant index).
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            if (tenants_[i].exhausted) {
                continue;
            }
            if (best == tenants_.size()
                || tenants_[i].nextArrival
                    < tenants_[best].nextArrival
                || (tenants_[i].nextArrival
                        == tenants_[best].nextArrival
                    && specs[i].reserved && !specs[best].reserved)) {
                best = i;
            }
        }
        if (best == tenants_.size()) {
            return false; // fully drained: the run is over
        }
        arrival = tenants_[best].nextArrival;
        drawNext(tenants_[best]);
    }

    curTenant_ = static_cast<std::uint32_t>(best);
    curArrival_ = arrival;
    curLeft_ = specs[best].requestAccesses;
    curFirst_ = true;
    ++tenants_[best].stats.started;
    return true;
}

bool
ServingGenerator::next(Access& out)
{
    return next(out, lastNow_);
}

bool
ServingGenerator::next(Access& out, Cycles now)
{
    lastNow_ = now;
    if (curLeft_ == 0 && !startNextRequest(now)) {
        return false;
    }
    TenantRt& t = tenants_[curTenant_];
    const bool ok = t.sub->next(out);
    NDP_ASSERT(ok, "serving sub-generator exhausted");
    ++t.subPulled;
    out.notBefore = curFirst_ ? curArrival_ : 0;
    out.tenant = curTenant_;
    curFirst_ = false;
    --curLeft_;
    out.endOfRequest = curLeft_ == 0;
    if (out.endOfRequest) {
        inflight_.emplace_back(curTenant_, curArrival_);
    }
    return true;
}

void
ServingGenerator::onRetire(const Access& acc, Cycles done)
{
    (void)acc;
    NDP_ASSERT(!inflight_.empty(), "retire without an in-flight request");
    const auto [tenant, arrival] = inflight_.front();
    inflight_.pop_front();
    TenantRt& t = tenants_[tenant];
    const Cycles lat = done > arrival ? done - arrival : 0;
    t.stats.latency.add(static_cast<double>(lat));
    ++t.stats.retired;
    if (lat > workload_.serving().tenants[tenant].sloCycles) {
        ++t.stats.sloViolations;
    }
}

void
ServingGenerator::serializeExtra(ckpt::Writer& w) const
{
    w.section(kServingGenTag);
    w.u64(tenants_.size());
    for (const TenantRt& t : tenants_) {
        t.arrival->serialize(w);
        w.u64(t.clock);
        w.u64(t.nextArrival);
        w.b(t.exhausted);
        w.u64(t.subPulled);
        w.u64(t.queue.size());
        for (const Cycles a : t.queue) {
            w.u64(a);
        }
        w.u64(t.stats.arrivals);
        w.u64(t.stats.started);
        w.u64(t.stats.retired);
        w.u64(t.stats.sloViolations);
        w.vecU64(t.stats.latency.bins());
        w.u64(t.stats.latency.overflow());
        w.u64(t.stats.latency.count());
        w.d(t.stats.latency.sum());
        w.d(t.stats.latency.minValue());
        w.d(t.stats.latency.maxValue());
    }
    w.u32(curTenant_);
    w.u64(curArrival_);
    w.u32(curLeft_);
    w.b(curFirst_);
    w.u64(inflight_.size());
    for (const auto& [tenant, arrival] : inflight_) {
        w.u32(tenant);
        w.u64(arrival);
    }
    w.u64(lastNow_);
}

void
ServingGenerator::deserializeExtra(ckpt::Reader& r)
{
    r.section(kServingGenTag);
    const std::uint64_t n = r.u64();
    NDP_ASSERT(n == tenants_.size(), "serving tenant count mismatch");
    for (TenantRt& t : tenants_) {
        t.arrival->deserialize(r);
        t.clock = r.u64();
        t.nextArrival = r.u64();
        t.exhausted = r.b();
        t.subPulled = r.u64();
        t.queue.clear();
        const std::uint64_t qn = r.u64();
        for (std::uint64_t i = 0; i < qn; ++i) {
            t.queue.push_back(r.u64());
        }
        t.stats.arrivals = r.u64();
        t.stats.started = r.u64();
        t.stats.retired = r.u64();
        t.stats.sloViolations = r.u64();
        std::vector<std::uint64_t> bins = r.vecU64();
        const std::uint64_t overflow = r.u64();
        const std::uint64_t count = r.u64();
        const double sum = r.d();
        const double lo = r.d();
        const double hi = r.d();
        NDP_ASSERT(bins.size() == t.stats.latency.bins().size(),
                   "latency histogram shape mismatch");
        t.stats.latency.restore(std::move(bins), overflow, count, sum,
                                lo, hi);
    }
    curTenant_ = r.u32();
    curArrival_ = r.u64();
    curLeft_ = r.u32();
    curFirst_ = r.b();
    inflight_.clear();
    const std::uint64_t fn = r.u64();
    for (std::uint64_t i = 0; i < fn; ++i) {
        const std::uint32_t tenant = r.u32();
        const Cycles arrival = r.u64();
        inflight_.emplace_back(tenant, arrival);
    }
    lastNow_ = r.u64();

    // The sub-generators' state is a pure function of how many accesses
    // they produced; fast-forward them by replay (the same mechanism
    // NdpSystem uses for non-serving generators).
    for (TenantRt& t : tenants_) {
        Access dummy;
        for (std::uint64_t i = 0; i < t.subPulled; ++i) {
            const bool ok = t.sub->next(dummy);
            NDP_ASSERT(ok, "sub-generator exhausted during resume replay");
        }
    }
}

} // namespace ndpext
