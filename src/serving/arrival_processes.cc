/**
 * @file
 * Built-in arrival processes: fixed, poisson, bursty (MMPP-2), diurnal.
 *
 * All of them draw from a seeded xoshiro Rng and emit integer cycle gaps
 * (>= 1), so a process is a pure function of (params, seed, #draws) and
 * serving runs are bit-identical across thread counts and kill-resume.
 */

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "serving/arrival_process.h"

namespace ndpext {
namespace {

/** Round a positive double gap to an integer cycle count >= 1. */
Cycles
toGap(double cycles)
{
    if (!(cycles > 1.0)) {
        return 1;
    }
    return static_cast<Cycles>(std::llround(cycles));
}

/** Standard-exponential draw (mean 1), strictly positive. */
double
expDraw(Rng& rng)
{
    // 1 - nextDouble() is in (0, 1], so the log argument never hits 0.
    return -std::log(1.0 - rng.nextDouble());
}

void
serializeRng(ckpt::Writer& w, const Rng& rng)
{
    std::uint64_t s[4];
    rng.state(s);
    for (int i = 0; i < 4; ++i) {
        w.u64(s[i]);
    }
}

void
deserializeRng(ckpt::Reader& r, Rng& rng)
{
    std::uint64_t s[4];
    for (int i = 0; i < 4; ++i) {
        s[i] = r.u64();
    }
    rng.setState(s);
}

/** Deterministic constant inter-arrival gap (tests, calibration). */
class FixedArrival final : public ArrivalProcess
{
  public:
    FixedArrival(const ArrivalParams& p, std::uint64_t seed)
        : gap_(toGap(p.periodCycles))
    {
        (void)seed;
    }

    Cycles nextGap() override { return gap_; }

    void serialize(ckpt::Writer& w) const override { w.u64(gap_); }
    void deserialize(ckpt::Reader& r) override { gap_ = r.u64(); }

  private:
    Cycles gap_;
};

/** Memoryless arrivals: exponential gaps with the configured mean. */
class PoissonArrival final : public ArrivalProcess
{
  public:
    PoissonArrival(const ArrivalParams& p, std::uint64_t seed)
        : period_(p.periodCycles), rng_(seed)
    {
    }

    Cycles
    nextGap() override
    {
        return toGap(period_ * expDraw(rng_));
    }

    void
    serialize(ckpt::Writer& w) const override
    {
        w.d(period_);
        serializeRng(w, rng_);
    }

    void
    deserialize(ckpt::Reader& r) override
    {
        period_ = r.d();
        deserializeRng(r, rng_);
    }

  private:
    double period_;
    Rng rng_;
};

/**
 * Two-state Markov-modulated Poisson process: exponential dwell times in
 * a calm and a burst state, Poisson arrivals at a state-dependent rate.
 * Rates are scaled so the long-run mean rate equals 1/period:
 *   rate_calm * (1 - frac + frac * factor) = 1 / period.
 */
class BurstyArrival final : public ArrivalProcess
{
  public:
    BurstyArrival(const ArrivalParams& p, std::uint64_t seed) : rng_(seed)
    {
        const double factor = p.get("burst-factor", 8.0);
        const double frac = p.get("burst-frac", 0.15);
        const double burstDwell = p.get("burst-cycles", 100'000.0);
        rateCalm_ = (1.0 / p.periodCycles)
            / (1.0 - frac + frac * factor);
        rateBurst_ = factor * rateCalm_;
        meanBurstDwell_ = burstDwell;
        // Calm dwell chosen so the burst state occupies `frac` of time.
        meanCalmDwell_ = burstDwell * (1.0 - frac) / frac;
        dwellLeft_ = meanCalmDwell_ * expDraw(rng_);
    }

    Cycles
    nextGap() override
    {
        // One exponential unit of "arrival work", consumed across the
        // piecewise-constant rate -- an exact MMPP sample.
        double work = expDraw(rng_);
        double gap = 0.0;
        for (;;) {
            const double rate = burst_ ? rateBurst_ : rateCalm_;
            const double needed = work / rate;
            if (needed <= dwellLeft_) {
                gap += needed;
                dwellLeft_ -= needed;
                return toGap(gap);
            }
            work -= dwellLeft_ * rate;
            gap += dwellLeft_;
            burst_ = !burst_;
            dwellLeft_ = (burst_ ? meanBurstDwell_ : meanCalmDwell_)
                * expDraw(rng_);
        }
    }

    void
    serialize(ckpt::Writer& w) const override
    {
        w.d(rateCalm_);
        w.d(rateBurst_);
        w.d(meanCalmDwell_);
        w.d(meanBurstDwell_);
        w.d(dwellLeft_);
        w.b(burst_);
        serializeRng(w, rng_);
    }

    void
    deserialize(ckpt::Reader& r) override
    {
        rateCalm_ = r.d();
        rateBurst_ = r.d();
        meanCalmDwell_ = r.d();
        meanBurstDwell_ = r.d();
        dwellLeft_ = r.d();
        burst_ = r.b();
        deserializeRng(r, rng_);
    }

  private:
    double rateCalm_ = 0.0;
    double rateBurst_ = 0.0;
    double meanCalmDwell_ = 0.0;
    double meanBurstDwell_ = 0.0;
    double dwellLeft_ = 0.0;
    bool burst_ = false;
    Rng rng_;
};

/**
 * Diurnal rate trace: a non-homogeneous Poisson process whose rate
 * follows 1/period * (1 + amp * sin(2*pi*t / day-cycles)), sampled with
 * Lewis-Shedler thinning against the peak rate.
 */
class DiurnalArrival final : public ArrivalProcess
{
  public:
    DiurnalArrival(const ArrivalParams& p, std::uint64_t seed)
        : baseRate_(1.0 / p.periodCycles),
          amp_(p.get("amp", 0.8)),
          dayCycles_(p.get("day-cycles", 2'000'000.0)),
          rng_(seed)
    {
    }

    Cycles
    nextGap() override
    {
        const double rateMax = baseRate_ * (1.0 + amp_);
        const double start = t_;
        for (;;) {
            t_ += expDraw(rng_) / rateMax;
            const double rate = baseRate_
                * (1.0
                   + amp_
                       * std::sin(2.0 * 3.141592653589793 * t_
                                  / dayCycles_));
            if (rng_.nextDouble() * rateMax < rate) {
                const Cycles gap = toGap(t_ - start);
                t_ = start + static_cast<double>(gap);
                return gap;
            }
        }
    }

    void
    serialize(ckpt::Writer& w) const override
    {
        w.d(baseRate_);
        w.d(amp_);
        w.d(dayCycles_);
        w.d(t_);
        serializeRng(w, rng_);
    }

    void
    deserialize(ckpt::Reader& r) override
    {
        baseRate_ = r.d();
        amp_ = r.d();
        dayCycles_ = r.d();
        t_ = r.d();
        deserializeRng(r, rng_);
    }

  private:
    double baseRate_;
    double amp_;
    double dayCycles_;
    double t_ = 0.0;
    Rng rng_;
};

template <typename T>
std::function<std::unique_ptr<ArrivalProcess>(const ArrivalParams&,
                                              std::uint64_t)>
factoryOf()
{
    return [](const ArrivalParams& p, std::uint64_t seed) {
        return std::make_unique<T>(p, seed);
    };
}

const ArrivalRegistrar registerFixed{{
    "fixed",
    "deterministic constant inter-arrival gap",
    {},
    factoryOf<FixedArrival>(),
}};

const ArrivalRegistrar registerPoisson{{
    "poisson",
    "memoryless arrivals with exponential inter-arrival gaps",
    {},
    factoryOf<PoissonArrival>(),
}};

const ArrivalRegistrar registerBursty{{
    "bursty",
    "two-state MMPP: calm/burst phases with exponential dwell",
    {
        {"burst-factor", "rate multiplier while bursting (default 8)"},
        {"burst-frac", "long-run fraction of time bursting (default "
                       "0.15)"},
        {"burst-cycles", "mean burst dwell in cycles (default 100000)"},
    },
    factoryOf<BurstyArrival>(),
}};

const ArrivalRegistrar registerDiurnal{{
    "diurnal",
    "sinusoidal rate trace (non-homogeneous Poisson, thinned)",
    {
        {"amp", "peak-to-mean rate modulation in [0,1) (default 0.8)"},
        {"day-cycles", "diurnal period in cycles (default 2000000)"},
    },
    factoryOf<DiurnalArrival>(),
}};

} // namespace

int
linkArrivalProcesses()
{
    return 1;
}

} // namespace ndpext
