#include "serving/serving_config.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/suggest.h"
#include "workloads/workload.h"

namespace ndpext {

namespace {

/** Split "a=1,b=2" into key/value pairs; empty value is an error. */
bool
splitPairs(const std::string& spec,
           std::vector<std::pair<std::string, std::string>>* out,
           std::string* error)
{
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty()) {
            continue;
        }
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
            *error = "--tenant: expected key=value, got '" + item + "'";
            return false;
        }
        out->emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    if (out->empty()) {
        *error = "--tenant: empty spec";
        return false;
    }
    return true;
}

bool
parseNum(const std::string& key, const std::string& val, double* out,
         std::string* error)
{
    char* end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || !std::isfinite(v)) {
        *error = "--tenant: " + key + " expects a number, got '" + val
            + "'";
        return false;
    }
    *out = v;
    return true;
}

bool
parseUint(const std::string& key, const std::string& val,
          std::uint64_t* out, std::string* error)
{
    double v = 0.0;
    if (!parseNum(key, val, &v, error)) {
        return false;
    }
    if (v < 0.0 || v != std::floor(v)) {
        *error = "--tenant: " + key + " expects a non-negative integer, "
            + "got '" + val + "'";
        return false;
    }
    *out = static_cast<std::uint64_t>(v);
    return true;
}

} // namespace

bool
parseTenantSpec(const std::string& spec, TenantSpec* out,
                std::string* error)
{
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!splitPairs(spec, &pairs, error)) {
        return false;
    }
    for (const auto& [key, val] : pairs) {
        if (key == "name") {
            out->name = val;
        } else if (key == "workload") {
            out->workload = val;
        } else if (key == "arrival") {
            out->arrival = val;
        } else if (key == "qos") {
            if (val == "reserved") {
                out->reserved = true;
            } else if (val == "best-effort") {
                out->reserved = false;
            } else {
                *error = "--tenant: qos must be 'reserved' or "
                    "'best-effort', got '" + val + "'";
                return false;
            }
        } else if (key == "period") {
            if (!parseNum(key, val, &out->periodCycles, error)) {
                return false;
            }
        } else if (key == "reserve-pct") {
            if (!parseNum(key, val, &out->reservePct, error)) {
                return false;
            }
        } else if (key == "req") {
            std::uint64_t v = 0;
            if (!parseUint(key, val, &v, error)) {
                return false;
            }
            out->requestAccesses = static_cast<std::uint32_t>(v);
        } else if (key == "slo") {
            if (!parseUint(key, val, &out->sloCycles, error)) {
                return false;
            }
        } else if (key == "arrive") {
            if (!parseUint(key, val, &out->arriveEpoch, error)) {
                return false;
            }
        } else if (key == "depart") {
            if (!parseUint(key, val, &out->departEpoch, error)) {
                return false;
            }
        } else if (key == "footprint-mb") {
            std::uint64_t mb = 0;
            if (!parseUint(key, val, &mb, error)) {
                return false;
            }
            out->footprintBytes = mb * 1_MiB;
        } else {
            // Everything else must be an arrival-process tunable;
            // validateServingConfig checks the key against the registry
            // once the arrival name is known.
            double v = 0.0;
            if (!parseNum(key, val, &v, error)) {
                return false;
            }
            out->arrivalTunables.emplace_back(key, v);
        }
    }
    if (out->workload.empty()) {
        *error = "--tenant: missing required key 'workload'";
        return false;
    }
    return true;
}

bool
validateServingConfig(const ServingConfig& cfg, std::string* error)
{
    const auto fail = [error](const std::string& why) {
        if (error != nullptr) {
            *error = why;
        }
        return false;
    };
    if (!cfg.enabled()) {
        return true;
    }
    if (cfg.tenants.size() > kMaxTenants) {
        return fail("--tenant: tenant count " +
                    std::to_string(cfg.tenants.size()) + " exceeds the "
                    "limit of " + std::to_string(kMaxTenants));
    }
    if (cfg.horizonCycles == 0) {
        return fail("--horizon: arrival horizon must be > 0 cycles");
    }
    double reservedPctSum = 0.0;
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        const TenantSpec& t = cfg.tenants[i];
        const std::string flag =
            "--tenant[" + std::to_string(i) + "]"
            + (t.name.empty() ? "" : " (" + t.name + ")");
        bool known = false;
        for (const std::string& w : allWorkloadNames()) {
            known = known || w == t.workload;
        }
        if (!known) {
            std::string why = flag + ": unknown workload '" + t.workload
                + "'";
            const std::string hint =
                closestName(t.workload, allWorkloadNames());
            if (!hint.empty()) {
                why += " (did you mean '" + hint + "'?)";
            }
            return fail(why);
        }
        const ArrivalInfo* info =
            ArrivalRegistry::instance().find(t.arrival);
        if (info == nullptr) {
            std::string why =
                flag + ": unknown arrival process '" + t.arrival + "'";
            const std::string hint =
                ArrivalRegistry::instance().suggest(t.arrival);
            if (!hint.empty()) {
                why += " (did you mean '" + hint + "'?)";
            }
            return fail(why);
        }
        for (const auto& [key, val] : t.arrivalTunables) {
            bool declared = false;
            for (const ArrivalTunable& tun : info->tunables) {
                declared = declared || tun.key == key;
            }
            if (!declared) {
                std::vector<std::string> keys;
                for (const ArrivalTunable& tun : info->tunables) {
                    keys.push_back(tun.key);
                }
                std::string why = flag + ": arrival '" + t.arrival
                    + "' has no tunable '" + key + "'";
                const std::string hint = closestName(key, keys);
                if (!hint.empty()) {
                    why += " (did you mean '" + hint + "'?)";
                }
                return fail(why);
            }
        }
        // Tenant names become metric-key segments ("tenant.<name>.p99"),
        // so the separator characters are off limits.
        for (const char c : t.name) {
            const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9') || c == '_' || c == '-';
            if (!ok) {
                return fail(flag + ": tenant names may only use letters, "
                            "digits, '_' and '-' (got '" + t.name + "')");
            }
        }
        if (!(t.periodCycles > 0.0)) {
            return fail(flag + ": arrival rate must be positive -- set "
                        "period=<mean inter-arrival cycles> > 0 (got "
                        + std::to_string(t.periodCycles) + ")");
        }
        if (t.requestAccesses == 0) {
            return fail(flag + ": req (accesses per request) must be "
                        ">= 1");
        }
        if (t.sloCycles == 0) {
            return fail(flag + ": slo must be > 0 cycles");
        }
        if (t.reservePct < 0.0 || t.reservePct > 100.0) {
            return fail(flag + ": reserve-pct must be in [0, 100]");
        }
        if (!t.reserved && t.reservePct > 0.0) {
            return fail(flag + ": reserve-pct requires qos=reserved");
        }
        if (t.arriveEpoch >= t.departEpoch) {
            return fail(flag + ": churn window is empty (arrive epoch "
                        + std::to_string(t.arriveEpoch)
                        + " >= depart epoch "
                        + std::to_string(t.departEpoch) + ")");
        }
        if (t.reserved) {
            reservedPctSum += t.reservePct;
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (!t.name.empty() && cfg.tenants[j].name == t.name) {
                return fail(flag + ": duplicate tenant name");
            }
        }
    }
    if (reservedPctSum > 90.0) {
        return fail("--tenant: reserved capacity carve-outs sum to "
                    + std::to_string(reservedPctSum)
                    + "% of each unit; at most 90% may be reserved");
    }
    return true;
}

void
hashServingConfig(const ServingConfig& cfg, ckpt::Writer& w)
{
    w.u64(cfg.tenants.size());
    w.u64(cfg.horizonCycles);
    for (const TenantSpec& t : cfg.tenants) {
        w.str(t.name);
        w.str(t.workload);
        w.str(t.arrival);
        w.d(t.periodCycles);
        w.u32(t.requestAccesses);
        w.b(t.reserved);
        w.d(t.reservePct);
        w.u64(t.sloCycles);
        w.u64(t.arriveEpoch);
        w.u64(t.departEpoch);
        w.u64(t.footprintBytes);
        w.u64(t.arrivalTunables.size());
        for (const auto& [key, val] : t.arrivalTunables) {
            w.str(key);
            w.d(val);
        }
    }
}

} // namespace ndpext
