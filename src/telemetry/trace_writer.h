/**
 * @file
 * Chrome/Perfetto trace-event exporter (the JSON "Trace Event Format").
 *
 * The writer buffers events and serializes them as
 * {"displayTimeUnit":"ms","traceEvents":[...]} -- a file that loads
 * directly in https://ui.perfetto.dev or chrome://tracing. Timestamps are
 * simulated core cycles written into the format's microsecond field (1
 * cycle == 1 "us" of trace time), so track lengths are proportional to
 * simulated time and the trace is bit-identical for any --threads value.
 *
 * Track layout (pid/tid are synthetic):
 *   pid 1 "runtime"  -- epoch spans, reconfiguration/fault instants
 *   pid 2 "shards"   -- tid = shard: execute + barrier_wait spans
 *   pid 3 "packets"  -- tid = core: sampled per-packet stage slices
 *   pid 4 "requests" -- tid = tenant: exemplar request span trees,
 *                       flow-linked arrival -> start -> done
 *
 * Event categories ("cat"): "epoch", "shard", "runtime", "fault",
 * "packet", "request". The ctest schema check (tools/ndpext_report
 * check) pins the exact field set.
 *
 * When checkpointing with a telemetry output prefix, already-emitted
 * events are flushed to a side file (<prefix>.trace.part, one rendered
 * event per line) before each snapshot so the checkpoint image does not
 * grow with run length; writeStitched() re-joins the flushed lines with
 * the in-memory remainder into a byte-identical final file.
 */

#ifndef NDPEXT_TELEMETRY_TRACE_WRITER_H
#define NDPEXT_TELEMETRY_TRACE_WRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"

namespace ndpext {

class TraceWriter
{
  public:
    /** Well-known synthetic process ids (see file comment). */
    static constexpr std::uint32_t kPidRuntime = 1;
    static constexpr std::uint32_t kPidShards = 2;
    static constexpr std::uint32_t kPidPackets = 3;
    static constexpr std::uint32_t kPidRequests = 4;

    /** Complete span (ph "X"): [ts, ts+dur) on (pid, tid). */
    void completeSpan(const std::string& cat, const std::string& name,
                      std::uint32_t pid, std::uint32_t tid, Cycles ts,
                      Cycles dur, const std::string& args_json = "");

    /** Instant event (ph "i", scope "g"). */
    void instant(const std::string& cat, const std::string& name,
                 std::uint32_t pid, std::uint32_t tid, Cycles ts,
                 const std::string& args_json = "");

    /** Counter event (ph "C"): args must be {"name":value,...}. */
    void counter(const std::string& name, std::uint32_t pid, Cycles ts,
                 const std::string& args_json);

    /**
     * Flow events (ph "s"/"t"/"f") -- arrows linking spans across
     * tracks. All three phases of one arrow share `id`; the end is
     * emitted with "bp":"e" so the arrow binds to the enclosing slice.
     */
    void flowStart(const std::string& cat, const std::string& name,
                   std::uint32_t pid, std::uint32_t tid, Cycles ts,
                   std::uint64_t id);
    void flowStep(const std::string& cat, const std::string& name,
                  std::uint32_t pid, std::uint32_t tid, Cycles ts,
                  std::uint64_t id);
    void flowEnd(const std::string& cat, const std::string& name,
                 std::uint32_t pid, std::uint32_t tid, Cycles ts,
                 std::uint64_t id);

    /** Metadata: names a process/thread track in the viewer. */
    void processName(std::uint32_t pid, const std::string& name);
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string& name);

    /** Total events emitted so far, flushed lines included. */
    std::size_t numEvents() const { return flushed_ + events_.size(); }

    /** Events already flushed out via flushEventsTo(). */
    std::uint64_t flushedEvents() const { return flushed_; }

    /** Serialize the whole trace; requires no prior flush. */
    void write(std::ostream& os) const;

    /**
     * Serialize with `part_lines` (the flushed per-event renderings, in
     * emission order) stitched in front of the in-memory remainder.
     * Byte-identical to what write() on a never-flushed writer with the
     * same event sequence would produce.
     */
    void writeStitched(std::ostream& os,
                       const std::vector<std::string>& part_lines) const;

    /**
     * Append one rendered line per buffered event to `os`, clear the
     * buffer and advance the flushed count. Keeps checkpoint images
     * flat across epochs; the owner persists the lines.
     */
    void flushEventsTo(std::ostream& os);

    /**
     * Checkpoint hooks. The event list is replaced wholesale at restore
     * (it includes the metadata events the original process emitted, so
     * restore must run after this process's constructor-time metadata
     * would otherwise duplicate them -- the owner replaces, not merges).
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    struct Event
    {
        char ph = 'X';
        std::string cat;
        std::string name;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        Cycles ts = 0;
        Cycles dur = 0;
        std::uint64_t id = 0; ///< flow id (ph "s"/"t"/"f" only)
        std::string argsJson; ///< pre-rendered {"k":v} or empty
    };

    static void renderEvent(std::ostream& os, const Event& e);

    std::vector<Event> events_;
    std::uint64_t flushed_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_TELEMETRY_TRACE_WRITER_H
