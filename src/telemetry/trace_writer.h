/**
 * @file
 * Chrome/Perfetto trace-event exporter (the JSON "Trace Event Format").
 *
 * The writer buffers events and serializes them as
 * {"displayTimeUnit":"ms","traceEvents":[...]} -- a file that loads
 * directly in https://ui.perfetto.dev or chrome://tracing. Timestamps are
 * simulated core cycles written into the format's microsecond field (1
 * cycle == 1 "us" of trace time), so track lengths are proportional to
 * simulated time and the trace is bit-identical for any --threads value.
 *
 * Track layout (pid/tid are synthetic):
 *   pid 1 "runtime"  -- epoch spans, reconfiguration/fault instants
 *   pid 2 "shards"   -- tid = shard: execute + barrier_wait spans
 *   pid 3 "packets"  -- tid = core: sampled per-packet stage slices
 *
 * Event categories ("cat"): "epoch", "shard", "runtime", "fault",
 * "packet". The ctest schema check (tools/ndpext_report check) pins the
 * exact field set.
 */

#ifndef NDPEXT_TELEMETRY_TRACE_WRITER_H
#define NDPEXT_TELEMETRY_TRACE_WRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"

namespace ndpext {

class TraceWriter
{
  public:
    /** Well-known synthetic process ids (see file comment). */
    static constexpr std::uint32_t kPidRuntime = 1;
    static constexpr std::uint32_t kPidShards = 2;
    static constexpr std::uint32_t kPidPackets = 3;

    /** Complete span (ph "X"): [ts, ts+dur) on (pid, tid). */
    void completeSpan(const std::string& cat, const std::string& name,
                      std::uint32_t pid, std::uint32_t tid, Cycles ts,
                      Cycles dur, const std::string& args_json = "");

    /** Instant event (ph "i", scope "g"). */
    void instant(const std::string& cat, const std::string& name,
                 std::uint32_t pid, std::uint32_t tid, Cycles ts,
                 const std::string& args_json = "");

    /** Counter event (ph "C"): args must be {"name":value,...}. */
    void counter(const std::string& name, std::uint32_t pid, Cycles ts,
                 const std::string& args_json);

    /** Metadata: names a process/thread track in the viewer. */
    void processName(std::uint32_t pid, const std::string& name);
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string& name);

    std::size_t numEvents() const { return events_.size(); }

    /** Serialize the whole trace; the stream's state reports errors. */
    void write(std::ostream& os) const;

    /**
     * Checkpoint hooks. The event list is replaced wholesale at restore
     * (it includes the metadata events the original process emitted, so
     * restore must run after this process's constructor-time metadata
     * would otherwise duplicate them -- the owner replaces, not merges).
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    struct Event
    {
        char ph = 'X';
        std::string cat;
        std::string name;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        Cycles ts = 0;
        Cycles dur = 0;
        std::string argsJson; ///< pre-rendered {"k":v} or empty
    };

    std::vector<Event> events_;
};

} // namespace ndpext

#endif // NDPEXT_TELEMETRY_TRACE_WRITER_H
