#include "telemetry/metric_registry.h"

#include "common/logging.h"
#include "telemetry/json_out.h"

namespace ndpext {

MetricRegistry::MetricRegistry(std::size_t ring_capacity)
    : capacity_(ring_capacity)
{
    NDP_ASSERT(ring_capacity > 0);
}

void
MetricRegistry::registerMetric(const std::string& name, MetricKind kind,
                               std::function<double()> read)
{
    NDP_ASSERT(read != nullptr, "metric ", name, " has no reader");
    NDP_ASSERT(ring_.empty(),
               "metric ", name, " registered after the first sample()");
    const auto it = index_.find(name);
    if (it != index_.end()) {
        NDP_ASSERT(metrics_[it->second].kind == kind,
                   "metric ", name, " re-registered with a different kind");
        metrics_[it->second].sources.push_back(std::move(read));
        return;
    }
    index_.emplace(name, metrics_.size());
    Metric m;
    m.name = name;
    m.kind = kind;
    m.sources.push_back(std::move(read));
    metrics_.push_back(std::move(m));
}

void
MetricRegistry::registerCounter(const std::string& name,
                                std::function<double()> read)
{
    registerMetric(name, MetricKind::Counter, std::move(read));
}

void
MetricRegistry::registerGauge(const std::string& name,
                              std::function<double()> read)
{
    registerMetric(name, MetricKind::Gauge, std::move(read));
}

void
MetricRegistry::registerHistogram(const std::string& name,
                                  const Histogram* hist)
{
    NDP_ASSERT(hist != nullptr, "histogram ", name, " is null");
    hists_.push_back({name, hist});
}

void
MetricRegistry::sample(std::uint64_t epoch, Cycles cycles)
{
    EpochSample s;
    s.epoch = epoch;
    s.cycles = cycles;
    s.values.reserve(metrics_.size());
    for (const Metric& m : metrics_) {
        double v = 0.0;
        for (const auto& src : m.sources) {
            v += src();
        }
        s.values.push_back(v);
    }
    s.hists.reserve(hists_.size());
    for (const HistEntry& h : hists_) {
        EpochSample::HistSnapshot snap;
        snap.count = h.hist->count();
        snap.mean = h.hist->mean();
        snap.p50 = h.hist->percentile(0.5);
        snap.p99 = h.hist->percentile(0.99);
        snap.max = h.hist->maxValue();
        s.hists.push_back(snap);
    }
    if (ring_.size() == capacity_) {
        ring_.pop_front();
        ++dropped_;
    }
    ring_.push_back(std::move(s));
}

double
MetricRegistry::latest(const std::string& name) const
{
    const auto it = index_.find(name);
    if (it == index_.end() || ring_.empty()) {
        return 0.0;
    }
    return ring_.back().values[it->second];
}

void
MetricRegistry::writeSampleLine(std::ostream& os, const EpochSample& s) const
{
    os << "{\"epoch\":" << s.epoch << ",\"cycles\":" << s.cycles
       << ",\"metrics\":{";
    bool first = true;
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << jsonout::str(metrics_[i].name) << ":"
           << jsonout::num(s.values[i]);
    }
    os << "}";
    if (!s.hists.empty()) {
        os << ",\"histograms\":{";
        for (std::size_t i = 0; i < hists_.size(); ++i) {
            if (i > 0) {
                os << ",";
            }
            const auto& h = s.hists[i];
            os << jsonout::str(hists_[i].name) << ":{\"count\":" << h.count
               << ",\"mean\":" << jsonout::num(h.mean)
               << ",\"p50\":" << jsonout::num(h.p50)
               << ",\"p99\":" << jsonout::num(h.p99)
               << ",\"max\":" << jsonout::num(h.max) << "}";
        }
        os << "}";
    }
    os << "}\n";
}

void
MetricRegistry::writeJsonl(std::ostream& os) const
{
    for (const EpochSample& s : ring_) {
        writeSampleLine(os, s);
    }
}

void
MetricRegistry::flushJsonl(std::ostream& os)
{
    writeJsonl(os);
    flushedSamples_ += ring_.size();
    ring_.clear();
}

void
MetricRegistry::serialize(ckpt::Writer& w) const
{
    w.u64(ring_.size());
    for (const EpochSample& s : ring_) {
        w.u64(s.epoch);
        w.u64(s.cycles);
        w.vecD(s.values);
        w.u64(s.hists.size());
        for (const EpochSample::HistSnapshot& h : s.hists) {
            w.u64(h.count);
            w.d(h.mean);
            w.d(h.p50);
            w.d(h.p99);
            w.d(h.max);
        }
    }
    w.u64(dropped_);
    w.u64(flushedSamples_);
}

void
MetricRegistry::deserialize(ckpt::Reader& r)
{
    ring_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        EpochSample s;
        s.epoch = r.u64();
        s.cycles = r.u64();
        s.values = r.vecD();
        s.hists.assign(r.u64(), EpochSample::HistSnapshot{});
        for (EpochSample::HistSnapshot& h : s.hists) {
            h.count = r.u64();
            h.mean = r.d();
            h.p50 = r.d();
            h.p99 = r.d();
            h.max = r.d();
        }
        ring_.push_back(std::move(s));
    }
    dropped_ = r.u64();
    flushedSamples_ = r.u64();
}

} // namespace ndpext
