/**
 * @file
 * Minimal recursive-descent JSON parser for the telemetry consumers
 * (tools/ndpext_report, the ctest schema check, tests). Parses the full
 * JSON grammar into a small value tree; errors carry byte offsets. This
 * is a reader for files *we* emit -- it favors simplicity over speed and
 * keeps the repo free of external JSON dependencies.
 */

#ifndef NDPEXT_TELEMETRY_TINY_JSON_H
#define NDPEXT_TELEMETRY_TINY_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ndpext {
namespace json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Type : std::uint8_t
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object,
};

class Value
{
  public:
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<ValuePtr> array;
    /** Insertion-ordered object members. */
    std::vector<std::pair<std::string, ValuePtr>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member by key; nullptr when absent or not an object. */
    const Value* get(const std::string& key) const;

    /** Member that must exist; returns nullptr AND sets err otherwise. */
    const Value* require(const std::string& key, std::string* err) const;

    /** Convenience readers (0/""/false when type mismatches). */
    double num(const std::string& key, double fallback = 0.0) const;
    std::string str(const std::string& key,
                    const std::string& fallback = "") const;
};

/**
 * Parse one JSON document. Returns nullptr and fills `error` (with a byte
 * offset) on malformed input or trailing garbage.
 */
ValuePtr parse(const std::string& text, std::string* error = nullptr);

/**
 * Parse a JSONL file body: one JSON object per non-empty line. Returns
 * false on the first bad line (error names the 1-based line number).
 */
bool parseLines(const std::string& text, std::vector<ValuePtr>& out,
                std::string* error = nullptr);

} // namespace json
} // namespace ndpext

#endif // NDPEXT_TELEMETRY_TINY_JSON_H
