/**
 * @file
 * End-to-end serving-request tracing with tail-based exemplar sampling.
 *
 * Every serving request carries an implicit trace context on its core:
 * the core accumulates causal stage cycles from arrival to completion --
 * queue wait (arrival to first issue), compute, L1 pipeline, and the
 * stall attribution over the blocking packets' service breakdowns
 * (stream-cache metadata lookup, NoC intra/inter hops, DRAM-cache
 * service, CXL-link + ext-memory backend service, MSHR queueing). The
 * accounting reuses the core's exact largest-remainder stall split, so
 * the integer stage cycles of a completed RequestTraceRecord sum
 * EXACTLY to its latency (done - arrival); tests/test_request_trace.cc
 * pins the identity.
 *
 * Completed records land in shard-private per-core RequestTraceBuffers
 * (the core is stepped only by its shard thread) and are drained at
 * epoch barriers in core-id order -- the same discipline as the packet
 * sampler -- so the drain order, and everything derived from it, is
 * bit-identical for any --threads value and across kill+resume.
 *
 * Tail-based exemplar sampling: per tenant and per epoch the collector
 * keeps the K slowest requests plus a size-U uniform sample (reservoir
 * sampling with a counter-hashed deterministic RNG -- no global RNG
 * state, no wall clock), so p99 exemplars are always retained at
 * bounded memory regardless of request count. Finalized exemplars are
 * exported to the Perfetto writer as flow-linked span trees (pid 4
 * "requests", one track per tenant; the child stage slices are an
 * attribution tree laid out sequentially, not the true interleaving)
 * and to a JSONL exemplar file (<prefix>.exemplars.jsonl, schema in
 * DESIGN.md section 6).
 *
 * Observer-only: nothing here feeds back into timing, placement or RNG
 * state; stats/stdout are byte-identical with tracing on or off.
 */

#ifndef NDPEXT_TELEMETRY_REQUEST_TRACE_H
#define NDPEXT_TELEMETRY_REQUEST_TRACE_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"
#include "telemetry/trace_writer.h"

namespace ndpext {

/** One completed request's causal stage breakdown (cycles). */
struct RequestTraceRecord
{
    std::uint32_t tenant = 0;
    CoreId core = 0;
    /** Arrival cycle (queue entry). */
    Cycles arrival = 0;
    /** Cycle the core began executing the first access. */
    Cycles start = 0;
    /** Completion cycle (final miss landed). */
    Cycles done = 0;

    /** Stage cycles; invariant: stageSum() == latency(). */
    Cycles queueWait = 0;
    Cycles compute = 0;
    Cycles l1 = 0;
    Cycles metadata = 0;
    Cycles icnIntra = 0;
    Cycles icnInter = 0;
    Cycles dramCache = 0;
    Cycles extMem = 0;
    Cycles mshrQueue = 0;

    Cycles latency() const { return done - arrival; }

    Cycles
    stageSum() const
    {
        return queueWait + compute + l1 + metadata + icnIntra + icnInter
            + dramCache + extMem + mshrQueue;
    }
};

/**
 * Shard-private sink handed to one core: the core pushes every
 * completed request; the main thread drains at barriers. Always empty
 * at an epoch barrier after the drain, so checkpoints stay small.
 */
struct RequestTraceBuffer
{
    std::vector<RequestTraceRecord> records;

    void push(const RequestTraceRecord& r) { records.push_back(r); }
};

class RequestTraceCollector
{
  public:
    struct Params
    {
        /** Slowest requests retained per tenant per epoch. */
        std::uint64_t slowK = 8;
        /** Uniform-sample size per tenant per epoch. */
        std::uint64_t uniformK = 8;
        /** Seed for the counter-hashed reservoir RNG. */
        std::uint64_t seed = 0x7ACE5EED;
    };

    /** Static per-tenant facts (exemplar lines, track names). */
    struct TenantMeta
    {
        std::string name;
        bool reserved = false;
        Cycles sloCycles = 0;
    };

    /** A retained request trace. */
    struct Exemplar
    {
        RequestTraceRecord rec;
        std::uint64_t epoch = 0;
        /** True: one of the epoch's K slowest; false: uniform sample. */
        bool slow = true;
        /** Flow id linking the exported span tree (unique per run). */
        std::uint64_t flowId = 0;
    };

    explicit RequestTraceCollector(const Params& params) : p_(params) {}

    RequestTraceCollector(const RequestTraceCollector&) = delete;
    RequestTraceCollector& operator=(const RequestTraceCollector&) = delete;

    /**
     * Arm the collector: one buffer per core, tenant metadata, and the
     * trace writer exemplar spans are emitted into (may be null for
     * JSONL-only collection). Names the pid-4 tracks.
     */
    void init(std::uint32_t num_cores, std::vector<TenantMeta> tenants,
              TraceWriter* trace);

    /** True once init() armed it (buffers exist). */
    bool active() const { return !buffers_.empty(); }

    const std::vector<TenantMeta>& tenants() const { return tenants_; }

    /** The buffer core `c` writes into (null when inactive). */
    RequestTraceBuffer* buffer(CoreId c);

    /**
     * Barrier-side: feed every new completed record into its tenant's
     * epoch reservoir, in core-id order, and clear the buffers.
     */
    void drain();

    /**
     * Epoch barrier: select this epoch's exemplars (slow-K first, then
     * the uniform sample minus duplicates), emit their span trees and
     * flow events, append them to the retained list, and reset the
     * reservoirs for the next epoch.
     */
    void finalizeEpoch(std::uint64_t epoch);

    /** Retained exemplars not yet flushed to disk. */
    const std::vector<Exemplar>& retained() const { return retained_; }

    /** Exemplar lines already flushed to the .part file. */
    std::uint64_t flushedExemplars() const { return flushed_; }

    /** One JSON object per retained exemplar (schema: DESIGN.md §6). */
    void writeJsonl(std::ostream& os) const;

    /** writeJsonl + clear: the flushed count advances. */
    void flushJsonl(std::ostream& os);

    /**
     * Checkpoint hooks (own section tag). Reservoirs, retained
     * exemplars, the flush cursor and the flow-id counter travel;
     * params and tenant metadata are reconstructed by the restoring
     * process (they are part of the config hash).
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    struct Reservoir
    {
        /** Sorted: latency desc, then (arrival, core) asc. */
        std::vector<RequestTraceRecord> slow;
        std::vector<RequestTraceRecord> uniform;
        /** Completed requests seen this epoch. */
        std::uint64_t count = 0;
    };

    void offer(const RequestTraceRecord& r);
    void emitExemplarTrace(const Exemplar& e);
    void writeExemplarLine(std::ostream& os, const Exemplar& e) const;

    Params p_;
    std::vector<TenantMeta> tenants_;
    TraceWriter* trace_ = nullptr;
    std::vector<std::unique_ptr<RequestTraceBuffer>> buffers_;
    std::vector<Reservoir> cur_;
    std::vector<Exemplar> retained_;
    std::uint64_t flushed_ = 0;
    std::uint64_t nextFlowId_ = 1;
};

} // namespace ndpext

#endif // NDPEXT_TELEMETRY_REQUEST_TRACE_H
