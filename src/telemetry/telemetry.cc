#include "telemetry/telemetry.h"

#include <fstream>

#include "common/logging.h"
#include "telemetry/json_out.h"

namespace ndpext {

Telemetry::Telemetry(const TelemetryConfig& config)
    : cfg_(config), metrics_(config.ringCapacity),
      latencyHist_(config.latencyHistMax, config.latencyHistBuckets)
{
    trace_.processName(TraceWriter::kPidRuntime, "runtime");
    trace_.processName(TraceWriter::kPidShards, "shards");
    trace_.processName(TraceWriter::kPidPackets, "packets");
    metrics_.registerHistogram("telemetry.packetLatency", &latencyHist_);
    metrics_.registerCounter("telemetry.packetSamples", [this] {
        return static_cast<double>(drained_.size());
    });
}

void
Telemetry::initPacketSampling(std::uint32_t num_cores)
{
    NDP_ASSERT(buffers_.empty(), "packet sampling initialized twice");
    if (cfg_.packetSampleEvery == 0) {
        return;
    }
    buffers_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        auto buf = std::make_unique<PacketSampleBuffer>();
        buf->every = cfg_.packetSampleEvery;
        buffers_.push_back(std::move(buf));
    }
    drainedUpTo_.assign(num_cores, 0);
}

PacketSampleBuffer*
Telemetry::packetBuffer(CoreId c)
{
    return c < buffers_.size() ? buffers_[c].get() : nullptr;
}

void
Telemetry::emitPacketTrace(const PacketSample& s)
{
    const std::string name = s.sid == kNoStream
        ? std::string("pkt")
        : "pkt s" + std::to_string(s.sid);
    trace_.completeSpan("packet", name, TraceWriter::kPidPackets, s.core,
                        s.start, s.total(),
                        "{\"sid\":" + std::to_string(s.sid) + "}");
    // Stage slices stack under the parent by enclosure: sequential
    // children in LatencyBreakdown bucket order.
    Cycles t = s.start;
    const std::pair<const char*, Cycles> stages[] = {
        {"metadata", s.metadata}, {"icnIntra", s.icnIntra},
        {"icnInter", s.icnInter}, {"dramCache", s.dramCache},
        {"extMem", s.extMem},
    };
    for (const auto& [stage, dur] : stages) {
        if (dur == 0) {
            continue;
        }
        trace_.completeSpan("packet", stage, TraceWriter::kPidPackets,
                            s.core, t, dur);
        t += dur;
    }
}

void
Telemetry::drainPacketSamples()
{
    for (std::size_t c = 0; c < buffers_.size(); ++c) {
        const auto& samples = buffers_[c]->samples;
        for (std::size_t i = drainedUpTo_[c]; i < samples.size(); ++i) {
            const PacketSample& s = samples[i];
            latencyHist_.add(static_cast<double>(s.total()));
            emitPacketTrace(s);
            drained_.push_back(s);
        }
        drainedUpTo_[c] = samples.size();
    }
}

void
Telemetry::sampleEpoch(std::uint64_t epoch, Cycles cycles)
{
    metrics_.sample(epoch, cycles);
}

bool
Telemetry::writeAll(std::string* error)
{
    if (cfg_.outPrefix.empty()) {
        return true;
    }
    const auto writeTo = [&](const std::string& suffix,
                             const auto& writer) -> bool {
        const std::string path = cfg_.outPrefix + suffix;
        std::ofstream out(path);
        if (out) {
            writer(out);
        }
        if (!out) {
            if (error != nullptr) {
                *error = "cannot write telemetry file '" + path + "'";
            }
            return false;
        }
        return true;
    };
    return writeTo(".metrics.jsonl",
                   [this](std::ostream& os) { metrics_.writeJsonl(os); })
        && writeTo(".trace.json",
                   [this](std::ostream& os) { trace_.write(os); })
        && writeTo(".decisions.jsonl",
                   [this](std::ostream& os) { decisions_.writeJsonl(os); });
}

} // namespace ndpext
