#include "telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/logging.h"
#include "telemetry/json_out.h"

namespace ndpext {

Telemetry::Telemetry(const TelemetryConfig& config)
    : cfg_(config), metrics_(config.ringCapacity),
      reqTrace_(RequestTraceCollector::Params{config.traceSlowK,
                                              config.traceUniformK,
                                              config.traceSeed}),
      latencyHist_(config.latencyHistMax, config.latencyHistBuckets)
{
    trace_.processName(TraceWriter::kPidRuntime, "runtime");
    trace_.processName(TraceWriter::kPidShards, "shards");
    trace_.processName(TraceWriter::kPidPackets, "packets");
    metrics_.registerHistogram("telemetry.packetLatency", &latencyHist_);
    metrics_.registerCounter("telemetry.packetSamples", [this] {
        return static_cast<double>(drainedCount_);
    });
}

void
Telemetry::initPacketSampling(std::uint32_t num_cores)
{
    NDP_ASSERT(buffers_.empty(), "packet sampling initialized twice");
    if (cfg_.packetSampleEvery == 0) {
        return;
    }
    buffers_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        auto buf = std::make_unique<PacketSampleBuffer>();
        buf->every = cfg_.packetSampleEvery;
        buffers_.push_back(std::move(buf));
    }
    drainedUpTo_.assign(num_cores, 0);
}

PacketSampleBuffer*
Telemetry::packetBuffer(CoreId c)
{
    return c < buffers_.size() ? buffers_[c].get() : nullptr;
}

void
Telemetry::emitPacketTrace(const PacketSample& s)
{
    const std::string name = s.sid == kNoStream
        ? std::string("pkt")
        : "pkt s" + std::to_string(s.sid);
    trace_.completeSpan("packet", name, TraceWriter::kPidPackets, s.core,
                        s.start, s.total(),
                        "{\"sid\":" + std::to_string(s.sid) + "}");
    // Stage slices stack under the parent by enclosure: sequential
    // children in LatencyBreakdown bucket order.
    Cycles t = s.start;
    const std::pair<const char*, Cycles> stages[] = {
        {"metadata", s.metadata}, {"icnIntra", s.icnIntra},
        {"icnInter", s.icnInter}, {"dramCache", s.dramCache},
        {"extMem", s.extMem},
    };
    for (const auto& [stage, dur] : stages) {
        if (dur == 0) {
            continue;
        }
        trace_.completeSpan("packet", stage, TraceWriter::kPidPackets,
                            s.core, t, dur);
        t += dur;
    }
}

void
Telemetry::drainPacketSamples()
{
    for (std::size_t c = 0; c < buffers_.size(); ++c) {
        const auto& samples = buffers_[c]->samples;
        for (std::size_t i = drainedUpTo_[c]; i < samples.size(); ++i) {
            const PacketSample& s = samples[i];
            latencyHist_.add(static_cast<double>(s.total()));
            emitPacketTrace(s);
            drained_.push_back(s);
            ++drainedCount_;
        }
        drainedUpTo_[c] = samples.size();
    }
}

void
Telemetry::initRequestTracing(
    std::uint32_t num_cores,
    std::vector<RequestTraceCollector::TenantMeta> tenants)
{
    if (!cfg_.traceRequests || tenants.empty()) {
        return;
    }
    reqTrace_.init(num_cores, std::move(tenants), &trace_);
}

RequestTraceBuffer*
Telemetry::requestBuffer(CoreId c)
{
    return reqTrace_.buffer(c);
}

void
Telemetry::drainRequestTraces()
{
    if (reqTrace_.active()) {
        reqTrace_.drain();
    }
}

void
Telemetry::finalizeRequestEpoch(std::uint64_t epoch)
{
    if (reqTrace_.active()) {
        reqTrace_.finalizeEpoch(epoch);
    }
}

void
Telemetry::sampleEpoch(std::uint64_t epoch, Cycles cycles)
{
    metrics_.sample(epoch, cycles);
}

std::string
Telemetry::partPath(const char* suffix) const
{
    return cfg_.outPrefix + suffix;
}

bool
Telemetry::appendPart(const char* suffix,
                      const std::function<void(std::ostream&)>& writer,
                      std::string* error)
{
    const std::string path = partPath(suffix);
    // The first flush of a fresh (non-resumed) run truncates, so stale
    // side files from an earlier crashed run with the same prefix can
    // never leak into this run's output.
    const auto mode = partFresh_ ? std::ios::trunc : std::ios::app;
    std::ofstream os(path, std::ios::out | mode);
    writer(os);
    os.flush();
    if (!os) {
        if (error != nullptr) {
            *error = "cannot append to telemetry side file '" + path + "'";
        }
        return false;
    }
    return true;
}

bool
Telemetry::flushToDisk(std::string* error)
{
    if (cfg_.outPrefix.empty()) {
        return true;
    }
    const bool ok =
        appendPart(".metrics.part",
                   [this](std::ostream& os) { metrics_.flushJsonl(os); },
                   error)
        && appendPart(".trace.part",
                      [this](std::ostream& os) { trace_.flushEventsTo(os); },
                      error)
        && appendPart(
            ".decisions.part",
            [this](std::ostream& os) { decisions_.flushJsonl(os); }, error)
        && appendPart(".exemplars.part",
                      [this](std::ostream& os) { reqTrace_.flushJsonl(os); },
                      error);
    partFresh_ = false;
    if (!ok) {
        return false;
    }
    // Drop the drained-sample copies too (only the cumulative counter
    // and histogram feed metrics); the undrained per-core suffixes stay.
    for (std::size_t c = 0; c < buffers_.size(); ++c) {
        auto& samples = buffers_[c]->samples;
        samples.erase(samples.begin(),
                      samples.begin()
                          + static_cast<std::ptrdiff_t>(drainedUpTo_[c]));
        drainedUpTo_[c] = 0;
    }
    drained_.clear();
    return true;
}

bool
Telemetry::readPartText(const char* suffix, std::uint64_t expected_lines,
                        std::string* out, std::string* error) const
{
    out->clear();
    if (expected_lines == 0) {
        return true;
    }
    const std::string path = partPath(suffix);
    std::ifstream is(path, std::ios::in | std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is) {
        if (error != nullptr) {
            *error = "cannot read telemetry side file '" + path + "'";
        }
        return false;
    }
    *out = buf.str();
    const std::uint64_t lines = static_cast<std::uint64_t>(
        std::count(out->begin(), out->end(), '\n'));
    if (lines != expected_lines) {
        if (error != nullptr) {
            *error = "telemetry side file '" + path + "' has "
                + std::to_string(lines) + " lines, expected "
                + std::to_string(expected_lines);
        }
        return false;
    }
    return true;
}

void
Telemetry::truncatePartFiles()
{
    // Resume-time normalization: a kill between a flush append and the
    // next checkpoint save leaves extra (possibly torn) trailing lines
    // beyond the restored flush cursors; rewrite each side file down to
    // exactly its cursor so appends are idempotent across retries.
    const auto truncate = [this](const char* suffix, std::uint64_t keep) {
        const std::string path = partPath(suffix);
        std::string text;
        if (keep > 0) {
            std::ifstream is(path, std::ios::in | std::ios::binary);
            std::ostringstream buf;
            buf << is.rdbuf();
            NDP_ASSERT(static_cast<bool>(is),
                       "telemetry side file missing at resume: ", path);
            text = buf.str();
            std::size_t pos = 0;
            for (std::uint64_t i = 0; i < keep; ++i) {
                pos = text.find('\n', pos);
                NDP_ASSERT(pos != std::string::npos,
                           "telemetry side file too short at resume: ",
                           path);
                ++pos;
            }
            text.resize(pos);
        }
        std::string why;
        const bool ok = writeFileAtomic(
            path, [&](std::ostream& os) { os << text; }, &why);
        NDP_ASSERT(ok, "cannot rewrite telemetry side file ", path, ": ",
                   why);
    };
    truncate(".metrics.part", metrics_.flushedSamples());
    truncate(".trace.part", trace_.flushedEvents());
    truncate(".decisions.part", decisions_.flushedRecords());
    truncate(".exemplars.part", reqTrace_.flushedExemplars());
}

void
Telemetry::removePartFiles() const
{
    std::remove(partPath(".metrics.part").c_str());
    std::remove(partPath(".trace.part").c_str());
    std::remove(partPath(".decisions.part").c_str());
    std::remove(partPath(".exemplars.part").c_str());
}

bool
Telemetry::writeAll(std::string* error)
{
    if (cfg_.outPrefix.empty()) {
        return true;
    }
    const auto writeTo = [&](const std::string& suffix,
                             const auto& writer) -> bool {
        // temp-file + rename so a crash mid-flush cannot leave a torn
        // (unparseable) telemetry file behind.
        const std::string path = cfg_.outPrefix + suffix;
        std::string why;
        if (!writeFileAtomic(path, writer, &why)) {
            if (error != nullptr) {
                *error =
                    "cannot write telemetry file '" + path + "': " + why;
            }
            return false;
        }
        return true;
    };
    // Stitch flushed side-file content back in front of the in-memory
    // remainder; byte-identical to a run that never flushed.
    std::string metricsPart;
    std::string decisionsPart;
    std::string exemplarsPart;
    std::string tracePart;
    if (!readPartText(".metrics.part", metrics_.flushedSamples(),
                      &metricsPart, error)
        || !readPartText(".decisions.part", decisions_.flushedRecords(),
                         &decisionsPart, error)
        || !readPartText(".exemplars.part", reqTrace_.flushedExemplars(),
                         &exemplarsPart, error)
        || !readPartText(".trace.part", trace_.flushedEvents(), &tracePart,
                         error)) {
        return false;
    }
    std::vector<std::string> traceLines;
    traceLines.reserve(trace_.flushedEvents());
    for (std::size_t pos = 0; pos < tracePart.size();) {
        const std::size_t nl = tracePart.find('\n', pos);
        traceLines.push_back(tracePart.substr(pos, nl - pos));
        pos = nl + 1;
    }
    bool ok = writeTo(".metrics.jsonl",
                      [&](std::ostream& os) {
                          os << metricsPart;
                          metrics_.writeJsonl(os);
                      })
        && writeTo(".trace.json",
                   [&](std::ostream& os) {
                       trace_.writeStitched(os, traceLines);
                   })
        && writeTo(".decisions.jsonl", [&](std::ostream& os) {
               os << decisionsPart;
               decisions_.writeJsonl(os);
           });
    if (ok && reqTrace_.active()) {
        ok = writeTo(".exemplars.jsonl", [&](std::ostream& os) {
            os << exemplarsPart;
            reqTrace_.writeJsonl(os);
        });
    }
    if (ok) {
        removePartFiles();
    }
    return ok;
}

namespace {

void
writeSample(ckpt::Writer& w, const PacketSample& s)
{
    w.u32(s.core);
    w.u32(s.sid);
    w.u64(s.start);
    w.u64(s.metadata);
    w.u64(s.icnIntra);
    w.u64(s.icnInter);
    w.u64(s.dramCache);
    w.u64(s.extMem);
}

PacketSample
readSample(ckpt::Reader& r)
{
    PacketSample s;
    s.core = static_cast<CoreId>(r.u32());
    s.sid = static_cast<StreamId>(r.u32());
    s.start = r.u64();
    s.metadata = r.u64();
    s.icnIntra = r.u64();
    s.icnInter = r.u64();
    s.dramCache = r.u64();
    s.extMem = r.u64();
    return s;
}

} // namespace

void
Telemetry::serialize(ckpt::Writer& w) const
{
    w.section(0x7E7E);
    metrics_.serialize(w);
    trace_.serialize(w);
    decisions_.serialize(w);
    w.vecU64(latencyHist_.bins());
    w.u64(latencyHist_.overflow());
    w.u64(latencyHist_.count());
    w.d(latencyHist_.sum());
    w.d(latencyHist_.minValue());
    w.d(latencyHist_.maxValue());
    w.u64(buffers_.size());
    for (const auto& buf : buffers_) {
        w.u64(buf->every);
        w.u64(buf->seen);
        w.u64(buf->samples.size());
        for (const PacketSample& s : buf->samples) {
            writeSample(w, s);
        }
    }
    w.vecU64(drainedUpTo_);
    w.u64(drained_.size());
    for (const PacketSample& s : drained_) {
        writeSample(w, s);
    }
    w.u64(drainedCount_);
    reqTrace_.serialize(w);
}

void
Telemetry::deserialize(ckpt::Reader& r)
{
    r.section(0x7E7E);
    metrics_.deserialize(r);
    trace_.deserialize(r);
    decisions_.deserialize(r);
    std::vector<std::uint64_t> bins = r.vecU64();
    const std::uint64_t overflow = r.u64();
    const std::uint64_t count = r.u64();
    const double sum = r.d();
    const double min = r.d();
    const double max = r.d();
    latencyHist_.restore(std::move(bins), overflow, count, sum, min, max);
    const std::uint64_t nbuf = r.u64();
    NDP_ASSERT(nbuf == buffers_.size(),
               "packet-sample buffer count mismatch");
    for (auto& buf : buffers_) {
        buf->every = r.u64();
        buf->seen = r.u64();
        buf->samples.assign(r.u64(), PacketSample{});
        for (PacketSample& s : buf->samples) {
            s = readSample(r);
        }
    }
    drainedUpTo_ = r.vecU64();
    const std::uint64_t ndrained = r.u64();
    drained_.assign(ndrained, PacketSample{});
    for (PacketSample& s : drained_) {
        s = readSample(r);
    }
    drainedCount_ = r.u64();
    reqTrace_.deserialize(r);
    if (!cfg_.outPrefix.empty()) {
        truncatePartFiles();
        // The side files now end exactly at the restored cursors; the
        // next flush must append, not truncate.
        partFresh_ = false;
    }
}

} // namespace ndpext
