#include "telemetry/telemetry.h"

#include <fstream>

#include "common/atomic_file.h"
#include "common/logging.h"
#include "telemetry/json_out.h"

namespace ndpext {

Telemetry::Telemetry(const TelemetryConfig& config)
    : cfg_(config), metrics_(config.ringCapacity),
      latencyHist_(config.latencyHistMax, config.latencyHistBuckets)
{
    trace_.processName(TraceWriter::kPidRuntime, "runtime");
    trace_.processName(TraceWriter::kPidShards, "shards");
    trace_.processName(TraceWriter::kPidPackets, "packets");
    metrics_.registerHistogram("telemetry.packetLatency", &latencyHist_);
    metrics_.registerCounter("telemetry.packetSamples", [this] {
        return static_cast<double>(drained_.size());
    });
}

void
Telemetry::initPacketSampling(std::uint32_t num_cores)
{
    NDP_ASSERT(buffers_.empty(), "packet sampling initialized twice");
    if (cfg_.packetSampleEvery == 0) {
        return;
    }
    buffers_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        auto buf = std::make_unique<PacketSampleBuffer>();
        buf->every = cfg_.packetSampleEvery;
        buffers_.push_back(std::move(buf));
    }
    drainedUpTo_.assign(num_cores, 0);
}

PacketSampleBuffer*
Telemetry::packetBuffer(CoreId c)
{
    return c < buffers_.size() ? buffers_[c].get() : nullptr;
}

void
Telemetry::emitPacketTrace(const PacketSample& s)
{
    const std::string name = s.sid == kNoStream
        ? std::string("pkt")
        : "pkt s" + std::to_string(s.sid);
    trace_.completeSpan("packet", name, TraceWriter::kPidPackets, s.core,
                        s.start, s.total(),
                        "{\"sid\":" + std::to_string(s.sid) + "}");
    // Stage slices stack under the parent by enclosure: sequential
    // children in LatencyBreakdown bucket order.
    Cycles t = s.start;
    const std::pair<const char*, Cycles> stages[] = {
        {"metadata", s.metadata}, {"icnIntra", s.icnIntra},
        {"icnInter", s.icnInter}, {"dramCache", s.dramCache},
        {"extMem", s.extMem},
    };
    for (const auto& [stage, dur] : stages) {
        if (dur == 0) {
            continue;
        }
        trace_.completeSpan("packet", stage, TraceWriter::kPidPackets,
                            s.core, t, dur);
        t += dur;
    }
}

void
Telemetry::drainPacketSamples()
{
    for (std::size_t c = 0; c < buffers_.size(); ++c) {
        const auto& samples = buffers_[c]->samples;
        for (std::size_t i = drainedUpTo_[c]; i < samples.size(); ++i) {
            const PacketSample& s = samples[i];
            latencyHist_.add(static_cast<double>(s.total()));
            emitPacketTrace(s);
            drained_.push_back(s);
        }
        drainedUpTo_[c] = samples.size();
    }
}

void
Telemetry::sampleEpoch(std::uint64_t epoch, Cycles cycles)
{
    metrics_.sample(epoch, cycles);
}

bool
Telemetry::writeAll(std::string* error)
{
    if (cfg_.outPrefix.empty()) {
        return true;
    }
    const auto writeTo = [&](const std::string& suffix,
                             const auto& writer) -> bool {
        // temp-file + rename so a crash mid-flush cannot leave a torn
        // (unparseable) telemetry file behind.
        const std::string path = cfg_.outPrefix + suffix;
        std::string why;
        if (!writeFileAtomic(path, writer, &why)) {
            if (error != nullptr) {
                *error =
                    "cannot write telemetry file '" + path + "': " + why;
            }
            return false;
        }
        return true;
    };
    return writeTo(".metrics.jsonl",
                   [this](std::ostream& os) { metrics_.writeJsonl(os); })
        && writeTo(".trace.json",
                   [this](std::ostream& os) { trace_.write(os); })
        && writeTo(".decisions.jsonl",
                   [this](std::ostream& os) { decisions_.writeJsonl(os); });
}

namespace {

void
writeSample(ckpt::Writer& w, const PacketSample& s)
{
    w.u32(s.core);
    w.u32(s.sid);
    w.u64(s.start);
    w.u64(s.metadata);
    w.u64(s.icnIntra);
    w.u64(s.icnInter);
    w.u64(s.dramCache);
    w.u64(s.extMem);
}

PacketSample
readSample(ckpt::Reader& r)
{
    PacketSample s;
    s.core = static_cast<CoreId>(r.u32());
    s.sid = static_cast<StreamId>(r.u32());
    s.start = r.u64();
    s.metadata = r.u64();
    s.icnIntra = r.u64();
    s.icnInter = r.u64();
    s.dramCache = r.u64();
    s.extMem = r.u64();
    return s;
}

} // namespace

void
Telemetry::serialize(ckpt::Writer& w) const
{
    w.section(0x7E7E);
    metrics_.serialize(w);
    trace_.serialize(w);
    decisions_.serialize(w);
    w.vecU64(latencyHist_.bins());
    w.u64(latencyHist_.overflow());
    w.u64(latencyHist_.count());
    w.d(latencyHist_.sum());
    w.d(latencyHist_.minValue());
    w.d(latencyHist_.maxValue());
    w.u64(buffers_.size());
    for (const auto& buf : buffers_) {
        w.u64(buf->every);
        w.u64(buf->seen);
        w.u64(buf->samples.size());
        for (const PacketSample& s : buf->samples) {
            writeSample(w, s);
        }
    }
    w.vecU64(drainedUpTo_);
    w.u64(drained_.size());
    for (const PacketSample& s : drained_) {
        writeSample(w, s);
    }
}

void
Telemetry::deserialize(ckpt::Reader& r)
{
    r.section(0x7E7E);
    metrics_.deserialize(r);
    trace_.deserialize(r);
    decisions_.deserialize(r);
    std::vector<std::uint64_t> bins = r.vecU64();
    const std::uint64_t overflow = r.u64();
    const std::uint64_t count = r.u64();
    const double sum = r.d();
    const double min = r.d();
    const double max = r.d();
    latencyHist_.restore(std::move(bins), overflow, count, sum, min, max);
    const std::uint64_t nbuf = r.u64();
    NDP_ASSERT(nbuf == buffers_.size(),
               "packet-sample buffer count mismatch");
    for (auto& buf : buffers_) {
        buf->every = r.u64();
        buf->seen = r.u64();
        buf->samples.assign(r.u64(), PacketSample{});
        for (PacketSample& s : buf->samples) {
            s = readSample(r);
        }
    }
    drainedUpTo_ = r.vecU64();
    const std::uint64_t ndrained = r.u64();
    drained_.assign(ndrained, PacketSample{});
    for (PacketSample& s : drained_) {
        s = readSample(r);
    }
}

} // namespace ndpext
