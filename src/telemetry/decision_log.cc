#include "telemetry/decision_log.h"

#include "telemetry/json_out.h"

namespace ndpext {

namespace {

template <typename T>
void
writeNumArray(std::ostream& os, const std::vector<T>& v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) {
            os << ",";
        }
        os << jsonout::num(static_cast<double>(v[i]));
    }
    os << "]";
}

} // namespace

void
DecisionLog::writeJsonl(std::ostream& os) const
{
    for (const DecisionRecord& r : records_) {
        writeRecordLine(os, r);
    }
}

void
DecisionLog::flushJsonl(std::ostream& os)
{
    writeJsonl(os);
    flushedRecords_ += records_.size();
    records_.clear();
}

void
DecisionLog::writeRecordLine(std::ostream& os, const DecisionRecord& r) const
{
    os << "{\"kind\":" << jsonout::str(r.kind)
       << ",\"epoch\":" << r.epoch << ",\"cycles\":" << r.cycles
       << ",\"applied\":" << (r.applied ? "true" : "false")
       << ",\"iterations\":" << r.iterations
       << ",\"extends\":" << r.extends << ",\"merges\":" << r.merges;

    os << ",\"demands\":[";
    for (std::size_t i = 0; i < r.demands.size(); ++i) {
        const auto& d = r.demands[i];
        if (i > 0) {
            os << ",";
        }
        os << "{\"sid\":" << d.sid
           << ",\"footprintBytes\":" << d.footprintBytes
           << ",\"granuleBytes\":" << d.granuleBytes
           << ",\"readOnly\":" << (d.readOnly ? "true" : "false")
           << ",\"affine\":" << (d.affine ? "true" : "false")
           << ",\"accUnits\":";
        writeNumArray(os, d.accUnits);
        os << ",\"accCounts\":";
        writeNumArray(os, d.accCounts);
        os << ",\"curve\":{\"capacities\":";
        writeNumArray(os, d.curveCapacities);
        os << ",\"misses\":";
        writeNumArray(os, d.curveMisses);
        os << "}}";
    }
    os << "]";

    os << ",\"samplerAssignment\":[";
    for (std::size_t u = 0; u < r.samplerAssignment.size(); ++u) {
        if (u > 0) {
            os << ",";
        }
        writeNumArray(os, r.samplerAssignment[u]);
    }
    os << "],\"uncovered\":";
    writeNumArray(os, r.uncoveredStreams);

    os << ",\"allocs\":[";
    for (std::size_t i = 0; i < r.allocs.size(); ++i) {
        const auto& a = r.allocs[i];
        if (i > 0) {
            os << ",";
        }
        os << "{\"sid\":" << a.sid << ",\"numGroups\":" << a.numGroups
           << ",\"shareRows\":";
        writeNumArray(os, a.shareRows);
        os << "}";
    }
    os << "]}\n";
}

namespace {

void
writeSidVec(ckpt::Writer& w, const std::vector<StreamId>& sids)
{
    w.u64(sids.size());
    for (const StreamId sid : sids) {
        w.u32(sid);
    }
}

std::vector<StreamId>
readSidVec(ckpt::Reader& r)
{
    std::vector<StreamId> sids(r.u64(), 0);
    for (StreamId& sid : sids) {
        sid = static_cast<StreamId>(r.u32());
    }
    return sids;
}

} // namespace

void
DecisionLog::serialize(ckpt::Writer& w) const
{
    w.u64(records_.size());
    for (const DecisionRecord& rec : records_) {
        w.str(rec.kind);
        w.u64(rec.epoch);
        w.u64(rec.cycles);
        w.u64(rec.demands.size());
        for (const DecisionRecord::Demand& d : rec.demands) {
            w.u32(d.sid);
            w.u64(d.footprintBytes);
            w.u32(d.granuleBytes);
            w.b(d.readOnly);
            w.b(d.affine);
            w.vecU32(d.accUnits);
            w.vecU64(d.accCounts);
            w.vecU64(d.curveCapacities);
            w.vecD(d.curveMisses);
        }
        w.u64(rec.samplerAssignment.size());
        for (const std::vector<StreamId>& sids : rec.samplerAssignment) {
            writeSidVec(w, sids);
        }
        writeSidVec(w, rec.uncoveredStreams);
        w.u64(rec.iterations);
        w.u64(rec.extends);
        w.u64(rec.merges);
        w.u64(rec.allocs.size());
        for (const DecisionRecord::Alloc& a : rec.allocs) {
            w.u32(a.sid);
            w.vecU32(a.shareRows);
            w.u32(a.numGroups);
        }
        w.b(rec.applied);
    }
    w.u64(flushedRecords_);
}

void
DecisionLog::deserialize(ckpt::Reader& r)
{
    records_.clear();
    const std::uint64_t n = r.u64();
    records_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        DecisionRecord rec;
        rec.kind = r.str();
        rec.epoch = r.u64();
        rec.cycles = r.u64();
        rec.demands.assign(r.u64(), DecisionRecord::Demand{});
        for (DecisionRecord::Demand& d : rec.demands) {
            d.sid = static_cast<StreamId>(r.u32());
            d.footprintBytes = r.u64();
            d.granuleBytes = r.u32();
            d.readOnly = r.b();
            d.affine = r.b();
            d.accUnits = r.vecU32();
            d.accCounts = r.vecU64();
            d.curveCapacities = r.vecU64();
            d.curveMisses = r.vecD();
        }
        rec.samplerAssignment.assign(r.u64(), {});
        for (std::vector<StreamId>& sids : rec.samplerAssignment) {
            sids = readSidVec(r);
        }
        rec.uncoveredStreams = readSidVec(r);
        rec.iterations = r.u64();
        rec.extends = r.u64();
        rec.merges = r.u64();
        rec.allocs.assign(r.u64(), DecisionRecord::Alloc{});
        for (DecisionRecord::Alloc& a : rec.allocs) {
            a.sid = static_cast<StreamId>(r.u32());
            a.shareRows = r.vecU32();
            a.numGroups = static_cast<std::uint16_t>(r.u32());
        }
        rec.applied = r.b();
        records_.push_back(std::move(rec));
    }
    flushedRecords_ = r.u64();
}

} // namespace ndpext
