#include "telemetry/decision_log.h"

#include "telemetry/json_out.h"

namespace ndpext {

namespace {

template <typename T>
void
writeNumArray(std::ostream& os, const std::vector<T>& v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) {
            os << ",";
        }
        os << jsonout::num(static_cast<double>(v[i]));
    }
    os << "]";
}

} // namespace

void
DecisionLog::writeJsonl(std::ostream& os) const
{
    for (const DecisionRecord& r : records_) {
        os << "{\"kind\":" << jsonout::str(r.kind)
           << ",\"epoch\":" << r.epoch << ",\"cycles\":" << r.cycles
           << ",\"applied\":" << (r.applied ? "true" : "false")
           << ",\"iterations\":" << r.iterations
           << ",\"extends\":" << r.extends << ",\"merges\":" << r.merges;

        os << ",\"demands\":[";
        for (std::size_t i = 0; i < r.demands.size(); ++i) {
            const auto& d = r.demands[i];
            if (i > 0) {
                os << ",";
            }
            os << "{\"sid\":" << d.sid
               << ",\"footprintBytes\":" << d.footprintBytes
               << ",\"granuleBytes\":" << d.granuleBytes
               << ",\"readOnly\":" << (d.readOnly ? "true" : "false")
               << ",\"affine\":" << (d.affine ? "true" : "false")
               << ",\"accUnits\":";
            writeNumArray(os, d.accUnits);
            os << ",\"accCounts\":";
            writeNumArray(os, d.accCounts);
            os << ",\"curve\":{\"capacities\":";
            writeNumArray(os, d.curveCapacities);
            os << ",\"misses\":";
            writeNumArray(os, d.curveMisses);
            os << "}}";
        }
        os << "]";

        os << ",\"samplerAssignment\":[";
        for (std::size_t u = 0; u < r.samplerAssignment.size(); ++u) {
            if (u > 0) {
                os << ",";
            }
            writeNumArray(os, r.samplerAssignment[u]);
        }
        os << "],\"uncovered\":";
        writeNumArray(os, r.uncoveredStreams);

        os << ",\"allocs\":[";
        for (std::size_t i = 0; i < r.allocs.size(); ++i) {
            const auto& a = r.allocs[i];
            if (i > 0) {
                os << ",";
            }
            os << "{\"sid\":" << a.sid << ",\"numGroups\":" << a.numGroups
               << ",\"shareRows\":";
            writeNumArray(os, a.shareRows);
            os << "}";
        }
        os << "]}\n";
    }
}

} // namespace ndpext
