/**
 * @file
 * Runtime-decision introspection log (Section V / Algorithm 1 replay).
 *
 * Every configuration decision the host runtime takes -- the initial
 * placement, each epoch's reconfiguration, and out-of-epoch emergency
 * reconfigurations after unit failures -- is captured as one record:
 * the sampled per-stream miss curves that went *in*, the max-flow
 * sampler-to-stream assignment chosen for the next epoch, the extend/
 * merge/iteration counts Algorithm 1 performed, and the stream->unit
 * share allocation that came *out* (plus whether the stability guard
 * applied or skipped it). Two runs of Algorithm 1 can then be replayed
 * and diffed offline without rerunning the simulator.
 *
 * The log is deliberately decoupled from runtime types (plain structs)
 * so the telemetry library stays at the bottom of the dependency stack.
 * Serialization is JSONL: one record per line, schema pinned by the
 * ctest check (tools/ndpext_report check) and documented in DESIGN.md §6.
 */

#ifndef NDPEXT_TELEMETRY_DECISION_LOG_H
#define NDPEXT_TELEMETRY_DECISION_LOG_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/checkpoint.h"

namespace ndpext {

struct DecisionRecord
{
    /** "initial" | "epoch" | "emergency". */
    std::string kind = "epoch";
    /** Epoch index (0 = initial configuration before cycle 0). */
    std::uint64_t epoch = 0;
    Cycles cycles = 0;

    /** One profiled input stream (what gatherDemands produced). */
    struct Demand
    {
        StreamId sid = 0;
        std::uint64_t footprintBytes = 0;
        std::uint32_t granuleBytes = 0;
        bool readOnly = true;
        bool affine = false;
        std::vector<UnitId> accUnits;
        std::vector<std::uint64_t> accCounts;
        /** Sampled miss curve: misses[i] expected at capacities[i] bytes. */
        std::vector<std::uint64_t> curveCapacities;
        std::vector<double> curveMisses;
    };
    std::vector<Demand> demands;

    /** Next epoch's sampler coverage: assignment[unit] = monitored sids. */
    std::vector<std::vector<StreamId>> samplerAssignment;
    std::vector<StreamId> uncoveredStreams;

    /** Algorithm 1 work counters (zero for non-NDPExt configurators). */
    std::uint64_t iterations = 0;
    std::uint64_t extends = 0;
    std::uint64_t merges = 0;

    /** The emitted configuration: rows per unit for each stream. */
    struct Alloc
    {
        StreamId sid = 0;
        std::vector<std::uint32_t> shareRows;
        std::uint16_t numGroups = 0;
    };
    std::vector<Alloc> allocs;

    /** False when the stability guard skipped applying the config. */
    bool applied = true;
};

class DecisionLog
{
  public:
    void add(DecisionRecord record) { records_.push_back(std::move(record)); }

    std::size_t numRecords() const { return records_.size(); }
    const std::vector<DecisionRecord>& records() const { return records_; }

    /** One JSON object per record, schema in DESIGN.md §6. */
    void writeJsonl(std::ostream& os) const;

    /**
     * writeJsonl + clear: records move to `os` (a .part side file),
     * only the flushed-count cursor stays, so checkpoint images do not
     * grow with the number of logged decisions.
     */
    void flushJsonl(std::ostream& os);

    /** Records already moved out via flushJsonl(). */
    std::uint64_t flushedRecords() const { return flushedRecords_; }

    /** Checkpoint hooks: the record list is replaced wholesale. */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    void writeRecordLine(std::ostream& os, const DecisionRecord& r) const;

    std::vector<DecisionRecord> records_;
    std::uint64_t flushedRecords_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_TELEMETRY_DECISION_LOG_H
